lib/isa/disasm.mli: Opcode
