(** Disassembler for the byte-coded instruction stream. *)

val decode_range :
  fetch:(int -> int) -> start:int -> stop:int -> (int * Opcode.t) list
(** [decode_range ~fetch ~start ~stop] decodes instructions from byte offset
    [start] (inclusive) until [stop] (exclusive), returning each with its
    offset.  Raises [Invalid_argument] on an illegal opcode. *)

val render : (int * Opcode.t) list -> string
(** Listing with one ["offset: MNEMONIC"] line per instruction. *)

val of_bytes : bytes -> string
(** Convenience: disassemble a whole byte buffer. *)
