lib/compiler/lower.mli: Fpc_lang
