let engines =
  [
    ("I1", Fpc_core.Engine.i1);
    ("I2", Fpc_core.Engine.i2);
    ("I3", Fpc_core.Engine.i3 ());
    ("I4", Fpc_core.Engine.i4 ());
  ]

let engine name = List.assoc name engines

let image_of ?(convention = Fpc_compiler.Convention.external_) ~program () =
  let src = Fpc_workload.Programs.find program in
  match Fpc_compiler.Compile.image ~convention src with
  | Ok image -> image
  | Error msg -> failwith (Printf.sprintf "compile %s: %s" program msg)

let must_halt (st : Fpc_core.State.t) =
  match st.status with
  | Fpc_core.State.Halted -> ()
  | Fpc_core.State.Running -> failwith "program still running"
  | Fpc_core.State.Trapped r ->
    failwith ("program trapped: " ^ Fpc_core.State.trap_reason_to_string r)

let run_one ?(engine = Fpc_core.Engine.i2) ~program () =
  let convention = Fpc_compiler.Convention.for_engine engine in
  let image = image_of ~convention ~program () in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  must_halt st;
  st

let run_suite ?(engine = Fpc_core.Engine.i2)
    ?(programs = Fpc_workload.Programs.names) () =
  List.map (fun p -> (p, run_one ~engine ~program:p ())) programs

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b
