lib/interp/report.ml: Cost Fpc_core Fpc_ifu Fpc_machine Fpc_regbank Fpc_util Histogram Printf Tablefmt
