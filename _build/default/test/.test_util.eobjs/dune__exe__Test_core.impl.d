test/test_core.ml: Alcotest Array Cost Fpc_core Fpc_frames Fpc_ifu Fpc_machine Fpc_regbank Fun Gen Hashtbl List Memory Option QCheck QCheck_alcotest
