lib/baseline/stack_machine.ml: Fpc_machine List Memory
