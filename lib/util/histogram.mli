(** Integer-valued histograms with moment and percentile queries.

    Used for frame-size distributions (§7.1 of the paper), call-depth
    profiles, and dynamic instruction mixes. *)

type t

val create : unit -> t
(** An empty histogram. *)

val add : t -> int -> unit
(** Record one observation.  Allocation-free for values in [0, 255] (the
    per-transfer call-depth / run-length hot path). *)

val reset : t -> unit
(** Forget all observations, keeping the structure for reuse. *)

val add_many : t -> int -> count:int -> unit
(** Record [count] observations of the same value. *)

val count : t -> int
(** Total number of observations. *)

val total : t -> int
(** Sum of all observed values. *)

val mean : t -> float
(** Mean of observations; 0 when empty. *)

val min_value : t -> int
(** Smallest observation.  Raises [Invalid_argument] when empty. *)

val max_value : t -> int
(** Largest observation.  Raises [Invalid_argument] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [\[0, 100\]]: the smallest observed value
    [v] such that at least [p]% of observations are [<= v].  Raises
    [Invalid_argument] when empty. *)

val fraction_le : t -> int -> float
(** Fraction of observations [<= v]; 0 when empty. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f value count] for every distinct value, ascending. *)

val to_sorted_list : t -> (int * int) list
(** All (value, count) pairs, ascending by value. *)
