test/test_interp.ml: Alcotest Builder Bytes Char Fpc_core Fpc_interp Fpc_isa Fpc_machine Fpc_mesa Hashtbl List Opcode
