open Fpc_machine
open Fpc_core

type outcome = {
  o_status : State.status;
  o_output : int list;
  o_stack : int list;
  o_instructions : int;
  o_cycles : int;
  o_mem_refs : int;
}

let boot ~image ~engine ~instance ~proc ~args =
  let st = State.create ~image ~engine in
  Transfer.start st ~instance ~proc ~args;
  st

let signed v = Fpc_util.Bits.signed_of_unsigned ~width:16 v
let word v = Fpc_util.Bits.to_word v

let exec (st : State.t) ~instr_pc (op : Fpc_isa.Opcode.t) =
  let push v = Eval_stack.push st.stack v in
  let pop () = Eval_stack.pop st.stack in
  let binop f =
    let b = pop () in
    let a = pop () in
    push (word (f (signed a) (signed b)))
  in
  let cmp f =
    let b = pop () in
    let a = pop () in
    push (if f (signed a) (signed b) then 1 else 0)
  in
  let taken target =
    st.metrics.jumps_taken <- st.metrics.jumps_taken + 1;
    Cost.jump st.cost;
    st.pc_abs <- target
  in
  match op with
  | Li n -> push n
  | Lpd w -> push w
  | Ll n -> push (State.read_local st n)
  | Sl n -> State.write_local st n (pop ())
  | Lg n -> push (State.read_global st n)
  | Sg n -> State.write_global st n (pop ())
  | Lla n -> push (State.local_addr st n)
  | Lga n -> push (State.global_addr st n)
  | Llx n ->
    let i = pop () in
    push (State.read_local st (n + i))
  | Slx n ->
    let v = pop () in
    let i = pop () in
    State.write_local st (n + i) v
  | Lgx n ->
    let i = pop () in
    push (State.read_global st (n + i))
  | Sgx n ->
    let v = pop () in
    let i = pop () in
    State.write_global st (n + i) v
  | Rload ->
    let a = pop () in
    push (State.data_read st ~addr:a)
  | Rstore ->
    let v = pop () in
    let a = pop () in
    State.data_write st ~addr:a v
  | Ldfld i ->
    let a = pop () in
    push (State.data_read st ~addr:(a + i))
  | Stfld i ->
    let v = pop () in
    let a = Eval_stack.peek st.stack in
    State.data_write st ~addr:(a + i) v
  | Newrec n -> (
    (* Long argument records and other heap records come from the same
       frame allocator (§5.3). *)
    match Fpc_frames.Alloc_vector.alloc_words st.allocator ~cost:st.cost ~body_words:n with
    | lf -> push lf
    | exception Fpc_frames.Alloc_vector.Out_of_frame_heap ->
      raise (Transfer.Machine_trap State.Frame_heap_exhausted))
  | Freerec ->
    let a = pop () in
    Fpc_frames.Alloc_vector.free st.allocator ~cost:st.cost ~lf:a
  | Dup -> push (Eval_stack.peek st.stack)
  | Drop -> ignore (pop ())
  | Swap ->
    let b = pop () in
    let a = pop () in
    push b;
    push a
  | Over ->
    let b = pop () in
    let a = Eval_stack.peek st.stack in
    push b;
    push a
  | Add -> binop ( + )
  | Sub -> binop ( - )
  | Mul -> binop ( * )
  | Div ->
    let b = pop () in
    let a = pop () in
    if signed b = 0 then raise (Transfer.Machine_trap State.Div_zero);
    push (word (signed a / signed b))
  | Mod ->
    let b = pop () in
    let a = pop () in
    if signed b = 0 then raise (Transfer.Machine_trap State.Div_zero);
    push (word (signed a mod signed b))
  | Neg -> push (word (-signed (pop ())))
  | Band ->
    let b = pop () in
    push (pop () land b)
  | Bor ->
    let b = pop () in
    push (pop () lor b)
  | Bxor ->
    let b = pop () in
    push (pop () lxor b)
  | Bnot -> push (pop () lxor 0xFFFF)
  | Lt -> cmp ( < )
  | Le -> cmp ( <= )
  | Eq -> cmp ( = )
  | Ne -> cmp ( <> )
  | Ge -> cmp ( >= )
  | Gt -> cmp ( > )
  | J d -> taken (instr_pc + d)
  | Jz d -> if pop () = 0 then taken (instr_pc + d)
  | Jnz d -> if pop () <> 0 then taken (instr_pc + d)
  | Efc n -> Transfer.call_external st ~lv_index:n
  | Lfc n -> Transfer.call_local st ~ev_index:n
  | Dfc a -> Transfer.call_direct st ~target_abs:a
  | Sdfc d -> Transfer.call_direct st ~target_abs:(instr_pc + d)
  | Xf ->
    let w = pop () in
    Transfer.xfer st ~dest_word:w
  | Ret -> Transfer.return_ st
  | Lrc -> push st.return_ctx
  | Fork n -> Transfer.fork st ~nargs:n
  | Yield -> Transfer.yield st
  | Stopproc -> Transfer.stop_process st
  | Out -> State.emit st (pop ())
  | Nop -> ()
  | Brk -> raise (Transfer.Machine_trap State.Break)
  | Halt -> st.status <- State.Halted

let step (st : State.t) =
  if st.status = State.Running then begin
    st.metrics.instructions <- st.metrics.instructions + 1;
    Cost.dispatch st.cost;
    let instr_pc = st.pc_abs in
    let fetch pc = Memory.peek_code_byte st.mem ~code_base:0 ~pc in
    match Fpc_isa.Opcode.decode ~fetch ~pc:instr_pc with
    | exception Invalid_argument _ ->
      Transfer.trap st (State.Illegal_instruction (fetch instr_pc))
    | op, len -> (
      st.pc_abs <- instr_pc + len;
      try exec st ~instr_pc op with
      | Eval_stack.Overflow -> Transfer.trap st State.Eval_overflow
      | Eval_stack.Underflow -> Transfer.trap st State.Eval_underflow
      | Transfer.Machine_trap reason -> Transfer.trap st reason)
  end

let run_traced ?(max_steps = 20_000_000) st ~on_step =
  let fetch pc = Memory.peek_code_byte st.State.mem ~code_base:0 ~pc in
  let rec go remaining =
    if st.State.status = State.Running then
      if remaining = 0 then st.status <- State.Trapped State.Step_limit
      else begin
        (match Fpc_isa.Opcode.decode ~fetch ~pc:st.pc_abs with
        | op, _ -> on_step ~pc_abs:st.pc_abs op st
        | exception Invalid_argument _ -> ());
        step st;
        go (remaining - 1)
      end
  in
  go max_steps

let run ?(max_steps = 20_000_000) st =
  let rec go remaining =
    if st.State.status = State.Running then
      if remaining = 0 then st.status <- State.Trapped State.Step_limit
      else begin
        step st;
        go (remaining - 1)
      end
  in
  go max_steps

let outcome (st : State.t) =
  {
    o_status = st.status;
    o_output = State.output st;
    o_stack = Array.to_list (Eval_stack.contents st.stack);
    o_instructions = st.metrics.instructions;
    o_cycles = Cost.cycles st.cost;
    o_mem_refs = Cost.mem_refs st.cost;
  }

let run_program ?max_steps ~image ~engine ~instance ~proc ~args () =
  let st = boot ~image ~engine ~instance ~proc ~args in
  run ?max_steps st;
  st
