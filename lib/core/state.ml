open Fpc_machine
open Fpc_mesa

type trap_reason =
  | Div_zero
  | Eval_overflow
  | Eval_underflow
  | Illegal_instruction of int
  | Break
  | Nil_context
  | Frame_heap_exhausted
  | Step_limit

let trap_code = function
  | Div_zero -> 1
  | Eval_overflow -> 2
  | Eval_underflow -> 3
  | Illegal_instruction _ -> 4
  | Break -> 5
  | Nil_context -> 6
  | Frame_heap_exhausted -> 7
  | Step_limit -> 8

let trap_reason_to_string = function
  | Div_zero -> "division by zero"
  | Eval_overflow -> "evaluation stack overflow"
  | Eval_underflow -> "evaluation stack underflow"
  | Illegal_instruction b -> Printf.sprintf "illegal instruction 0x%02X" b
  | Break -> "BRK"
  | Nil_context -> "XFER to NIL context"
  | Frame_heap_exhausted -> "frame heap exhausted"
  | Step_limit -> "step limit exceeded"

type status = Running | Halted | Trapped of trap_reason

type metrics = {
  mutable instructions : int;
  mutable calls : int;
  mutable returns : int;
  mutable other_xfers : int;
  mutable jumps_taken : int;
  mutable fast_transfers : int;
  mutable slow_transfers : int;
  mutable local_refs : int;
  mutable global_refs : int;
  mutable indirect_refs : int;
  mutable arg_words_stored : int;
  mutable arg_words_renamed : int;
  mutable ff_hits : int;
  mutable ff_misses : int;
  mutable frame_allocs : int;
  mutable frame_frees : int;
  mutable call_depth : int;
  mutable run_length : int;  (* consecutive same-direction transfers *)
  mutable run_dir : int;  (* +1 call run, -1 return run, 0 none *)
  mutable procs_forked : int;  (* processes queued by FORK *)
  mutable procs_ended : int;  (* processes retired (root return or STOP) *)
  mutable peak_live_procs : int;  (* running + ready high-water mark *)
  mutable tier_fast_instrs : int;  (* retired on the compiled tier's fused path *)
  mutable tier_super_instrs : int;  (* of those, inside multi-op superinstructions *)
  mutable tier_deopts : int;  (* compiled-tier falls back to the interpreter *)
  mutable tier_fused_calls : int;  (* calls retired through a fused call site *)
  mutable tier_lazy_translations : int;  (* procedures translated during this run *)
}

let fresh_metrics () =
  {
    instructions = 0;
    calls = 0;
    returns = 0;
    other_xfers = 0;
    jumps_taken = 0;
    fast_transfers = 0;
    slow_transfers = 0;
    local_refs = 0;
    global_refs = 0;
    indirect_refs = 0;
    arg_words_stored = 0;
    arg_words_renamed = 0;
    ff_hits = 0;
    ff_misses = 0;
    frame_allocs = 0;
    frame_frees = 0;
    call_depth = 0;
    run_length = 0;
    run_dir = 0;
    procs_forked = 0;
    procs_ended = 0;
    peak_live_procs = 1;
    tier_fast_instrs = 0;
    tier_super_instrs = 0;
    tier_deopts = 0;
    tier_fused_calls = 0;
    tier_lazy_translations = 0;
  }

let zero_metrics m =
  m.instructions <- 0;
  m.calls <- 0;
  m.returns <- 0;
  m.other_xfers <- 0;
  m.jumps_taken <- 0;
  m.fast_transfers <- 0;
  m.slow_transfers <- 0;
  m.local_refs <- 0;
  m.global_refs <- 0;
  m.indirect_refs <- 0;
  m.arg_words_stored <- 0;
  m.arg_words_renamed <- 0;
  m.ff_hits <- 0;
  m.ff_misses <- 0;
  m.frame_allocs <- 0;
  m.frame_frees <- 0;
  m.call_depth <- 0;
  m.run_length <- 0;
  m.run_dir <- 0;
  m.procs_forked <- 0;
  m.procs_ended <- 0;
  m.peak_live_procs <- 1;
  m.tier_fast_instrs <- 0;
  m.tier_super_instrs <- 0;
  m.tier_deopts <- 0;
  m.tier_fused_calls <- 0;
  m.tier_lazy_translations <- 0

type process = { p_id : int; p_lf : int; p_stack : int array; p_rctx : int }

let no_cb = -1

type t = {
  image : Image.t;
  mem : Memory.t;
  predecode : Fpc_isa.Predecode.t;
  cost : Cost.t;
  allocator : Fpc_frames.Alloc_vector.t;
  engine : Engine.t;
  simple : Simple_links.t option;
  rstack : Fpc_ifu.Return_stack.t option;
  banks : Fpc_regbank.Bank_file.t option;
  free_frames : int array;
  mutable ff_top : int;
  ff_fsi : int;
  mutable lf : int;
  mutable gf : int;
  mutable cb : int;
  mutable pc_abs : int;
  mutable fuel_limit : int;
  (* Host-side step budget for the compiled tier's self-looping nodes:
     the absolute [metrics.instructions] bound the current [Tier.run]
     call enforces, mirrored here so a node whose back-edge targets its
     own boundary can iterate in place under exactly the admission check
     the dispatch loop would have applied.  Not part of the simulated
     machine: never read by the interpreter, no effect on meters. *)
  mutable return_ctx : int;
  (* Scratch destination registers written by the transfer engine's
     resolver and consumed by procedure entry — a [resolved] record per
     call would be a per-call allocation.  [xr_cb] = {!no_cb} means the
     DIRECTCALL fast path never materialised the code base. *)
  mutable xr_gf : int;
  mutable xr_cb : int;
  mutable xr_pc : int;
  mutable xr_fsi : int;
  stack : Eval_stack.t;
  mutable status : status;
  mutable output_rev : int list;
  metrics : metrics;
  ready : process Queue.t;
  mutable next_pid : int;
  mutable current_pid : int;
  data_trace : (int * bool) Queue.t option;
  depth_hist : Fpc_util.Histogram.t;
  run_hist : Fpc_util.Histogram.t;  (** lengths of same-direction transfer runs *)
  mutable tracer : Fpc_trace.Sink.t option;
}

(* Sub-events arrive from the frame allocator, IFU return stack and bank
   file, which know only what happened — the machine stamps where (PC,
   depth) and when (the cumulative meters).  Their deltas are zero: the
   cost of the work they describe is part of the enclosing transfer's
   delta. *)
let emit_sub t kind =
  match t.tracer with
  | None -> ()
  | Some sink ->
    Fpc_trace.Sink.emit_fields sink ~kind ~pc:t.pc_abs ~target:(-1)
      ~depth:t.metrics.call_depth ~fast:false ~cycles:(Cost.cycles t.cost)
      ~mem_refs:(Cost.mem_refs t.cost) ~d_cycles:0 ~d_mem_refs:0

let wire_hooks t =
  let hook =
    match t.tracer with None -> None | Some _ -> Some (fun kind -> emit_sub t kind)
  in
  Fpc_frames.Alloc_vector.set_on_event t.allocator hook;
  Option.iter (fun rs -> Fpc_ifu.Return_stack.set_on_event rs hook) t.rstack;
  Option.iter (fun b -> Fpc_regbank.Bank_file.set_on_event b hook) t.banks

let create ?tracer ~image ~engine () =
  let cost = image.Image.cost in
  Cost.reset cost;
  let layout = image.Image.layout in
  let ladder = Fpc_frames.Alloc_vector.ladder image.Image.allocator in
  let mode =
    match engine.Engine.kind with
    | Engine.Simple -> Fpc_frames.Alloc_vector.Software_only
    | Engine.Mesa -> Fpc_frames.Alloc_vector.Fast
  in
  let allocator =
    Fpc_frames.Alloc_vector.create ~mode ~mem:image.Image.mem ~ladder
      ~av_base:layout.Layout.av_base ~heap_base:layout.Layout.heap_base
      ~heap_limit:layout.Layout.heap_limit ()
  in
  let simple =
    match engine.Engine.kind with
    | Engine.Simple -> Some (Simple_links.install image)
    | Engine.Mesa -> None
  in
  let rstack =
    if engine.Engine.return_stack_depth > 0 then
      Some (Fpc_ifu.Return_stack.create ~depth:engine.Engine.return_stack_depth)
    else None
  in
  let banks =
    Option.map
      (fun config ->
        Fpc_regbank.Bank_file.create ~config ~mem:image.Image.mem ~cost ~ladder ())
      engine.Engine.banks
  in
  let ff_fsi =
    if engine.Engine.free_frame_stack_depth > 0 then
      Fpc_frames.Alloc_vector.fsi_for_locals allocator engine.Engine.free_frame_payload_words
    else -1
  in
  let t = {
    image;
    mem = image.Image.mem;
    predecode = Image.predecode image;
    cost;
    allocator;
    engine;
    simple;
    rstack;
    banks;
    free_frames = Array.make (max 0 engine.Engine.free_frame_stack_depth) 0;
    ff_top = 0;
    ff_fsi;
    lf = 0;
    gf = 0;
    cb = no_cb;
    pc_abs = 0;
    fuel_limit = max_int;
    return_ctx = 0;
    xr_gf = 0;
    xr_cb = no_cb;
    xr_pc = 0;
    xr_fsi = 0;
    stack = Eval_stack.create ();
    status = Running;
    output_rev = [];
    metrics = fresh_metrics ();
    ready = Queue.create ();
    next_pid = 1;
    current_pid = 0;
    data_trace = (if engine.Engine.collect_data_trace then Some (Queue.create ()) else None);
    depth_hist = Fpc_util.Histogram.create ();
    run_hist = Fpc_util.Histogram.create ();
    tracer;
  }
  in
  (match tracer with None -> () | Some _ -> wire_hooks t);
  t

(* Reset must reproduce [create]'s observable initial state exactly over a
   recycled machine: the arena path calls [Image.clone_into] (store back to
   pristine, cost/allocator reset) and then this, so a reused machine is
   indistinguishable — status, meters, histograms, fastpath counters and
   event hooks included — from a freshly created one. *)
let reset ?tracer t =
  Cost.reset t.cost;
  Fpc_frames.Alloc_vector.reset t.allocator;
  (* The reset store lost the I1 link tables (the static region reverted
     to pristine and the cursor rewound); rebuild them exactly where
     [create]'s install put them. *)
  (match t.simple with Some sl -> Simple_links.reinstall sl t.image | None -> ());
  Option.iter Fpc_ifu.Return_stack.reset t.rstack;
  Option.iter Fpc_regbank.Bank_file.reset t.banks;
  t.ff_top <- 0;
  t.lf <- 0;
  t.gf <- 0;
  t.cb <- no_cb;
  t.pc_abs <- 0;
  t.fuel_limit <- max_int;
  t.return_ctx <- 0;
  t.xr_gf <- 0;
  t.xr_cb <- no_cb;
  t.xr_pc <- 0;
  t.xr_fsi <- 0;
  Eval_stack.clear t.stack;
  t.status <- Running;
  t.output_rev <- [];
  zero_metrics t.metrics;
  Queue.clear t.ready;
  Option.iter Queue.clear t.data_trace;
  t.next_pid <- 1;
  t.current_pid <- 0;
  Fpc_util.Histogram.reset t.depth_hist;
  Fpc_util.Histogram.reset t.run_hist;
  t.tracer <- tracer;
  wire_hooks t

let output t = List.rev t.output_rev
let emit t v = t.output_rev <- Fpc_util.Bits.to_word v :: t.output_rev

let ensure_cb t =
  if t.cb >= 0 then t.cb
  else begin
    let cb = Memory.read t.mem t.gf in
    t.cb <- cb;
    cb
  end

let pc_rel t = t.pc_abs - (2 * ensure_cb t)

let set_pc_rel t ~cb rel =
  t.cb <- cb;
  t.pc_abs <- (2 * cb) + rel

let trace t addr ~write =
  match t.data_trace with
  | Some q -> Queue.add (addr, write) q
  | None -> ()

let read_local t n =
  t.metrics.local_refs <- t.metrics.local_refs + 1;
  trace t (t.lf + n) ~write:false;
  match t.banks with
  | Some banks -> Fpc_regbank.Bank_file.read_local banks ~lf:t.lf ~index:n
  | None -> Memory.read t.mem (t.lf + n)

let write_local t n v =
  t.metrics.local_refs <- t.metrics.local_refs + 1;
  trace t (t.lf + n) ~write:true;
  match t.banks with
  | Some banks -> Fpc_regbank.Bank_file.write_local banks ~lf:t.lf ~index:n v
  | None -> Memory.write t.mem (t.lf + n) v

let read_global t n =
  t.metrics.global_refs <- t.metrics.global_refs + 1;
  trace t (t.gf + Image.global_base + n) ~write:false;
  Memory.read t.mem (t.gf + Image.global_base + n)

let write_global t n v =
  t.metrics.global_refs <- t.metrics.global_refs + 1;
  trace t (t.gf + Image.global_base + n) ~write:true;
  Memory.write t.mem (t.gf + Image.global_base + n) v

let local_addr t n =
  (match t.banks with
  | Some banks -> Fpc_regbank.Bank_file.flag_frame banks ~lf:t.lf
  | None -> ());
  t.lf + n

let global_addr t n = t.gf + Image.global_base + n

let data_read t ~addr =
  t.metrics.indirect_refs <- t.metrics.indirect_refs + 1;
  trace t addr ~write:false;
  match t.banks with
  | Some banks -> Fpc_regbank.Bank_file.data_read banks ~addr
  | None -> Memory.read t.mem addr

let data_write t ~addr v =
  t.metrics.indirect_refs <- t.metrics.indirect_refs + 1;
  trace t addr ~write:true;
  match t.banks with
  | Some banks -> Fpc_regbank.Bank_file.data_write banks ~addr v
  | None -> Memory.write t.mem addr v

(* Depth and run-length bookkeeping for calls (+1) and returns (-1): the
   section 7.1 locality measurements. *)
let note_transfer_direction t dir =
  let m = t.metrics in
  m.call_depth <- max 0 (m.call_depth + dir);
  Fpc_util.Histogram.add t.depth_hist m.call_depth;
  if m.run_dir = dir then m.run_length <- m.run_length + 1
  else begin
    if m.run_length > 0 then Fpc_util.Histogram.add t.run_hist m.run_length;
    m.run_dir <- dir;
    m.run_length <- 1
  end

let meter_transfer t thunk =
  let before = Cost.mem_refs t.cost in
  thunk ();
  if Cost.mem_refs t.cost = before then
    t.metrics.fast_transfers <- t.metrics.fast_transfers + 1
  else t.metrics.slow_transfers <- t.metrics.slow_transfers + 1
