lib/compiler/compile.mli: Convention Fpc_core Fpc_interp Fpc_lang Fpc_mesa
