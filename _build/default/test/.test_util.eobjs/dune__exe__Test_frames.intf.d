test/test_frames.mli:
