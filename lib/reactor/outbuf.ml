type t = {
  mutable buf : Bytes.t;
  mutable off : int;  (** first unwritten byte *)
  mutable fill : int;  (** end of valid data *)
  mutable hwm : int;
}

let create ?(initial = 4096) () =
  if initial < 1 then invalid_arg "Outbuf.create: initial must be positive";
  { buf = Bytes.create initial; off = 0; fill = 0; hwm = 0 }

let length t = t.fill - t.off
let is_empty t = t.fill = t.off
let high_water t = t.hwm

let reserve t extra =
  if t.fill + extra > Bytes.length t.buf then begin
    let used = length t in
    (* compact first; grow only if the hole was not enough *)
    if t.off > 0 then begin
      Bytes.blit t.buf t.off t.buf 0 used;
      t.off <- 0;
      t.fill <- used
    end;
    if used + extra > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while used + extra > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 used;
      t.buf <- bigger
    end
  end

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf t.fill n;
  t.fill <- t.fill + n;
  if length t > t.hwm then t.hwm <- length t

type status = Flushed | Partial | Error

(* Write as much as the socket takes right now.  [Partial] means the
   kernel buffer is full — the caller arms write-readiness and comes
   back; [Error] means the peer is gone. *)
let flush t fd =
  let rec go () =
    let n = length t in
    if n = 0 then begin
      t.off <- 0;
      t.fill <- 0;
      Flushed
    end
    else
      match Unix.write fd t.buf t.off n with
      | written ->
        t.off <- t.off + written;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Partial
      | exception (Unix.Unix_error _ | Sys_error _) -> Error
  in
  go ()
