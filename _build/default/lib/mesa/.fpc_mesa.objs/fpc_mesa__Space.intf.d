lib/mesa/space.mli: Image
