(** The TCP front-end over {!Fpc_svc.Pool}: newline-delimited
    {!Fpc_svc.Job} request lines in, one JSON result line per job out.

    Thread/domain layout — the point of the design is that it is {e
    constant in the connection count}: one reactor thread
    ({!Fpc_reactor.Loop}) owns the listening socket, every connection
    socket, all routing state and all timers; the jobs themselves execute
    on the {!Fpc_svc.Pool}'s worker domains.  A connection is a small
    state machine (push-mode {!Framing} in, {!Fpc_reactor.Outbuf} out)
    driven by readiness callbacks, so ten connections and ten thousand
    cost the same number of threads.  Results travel from worker to loop
    through the pool's [deliver] hook: the worker renders the JSON line
    and posts it to the loop's self-pipe; the loop routes it to its
    connection.

    Per connection, job results come back in the order the requests were
    sent — protocol pipelining is first-class — so a single connection's
    output for a jobfile is byte-identical to [fpc batch --json] on the
    same file.  Refusals (bad request, overlong line, shed) and admin
    responses are written as soon as the offending line is read, and may
    therefore interleave ahead of earlier jobs' results; they carry
    [id:null] so clients can tell.

    Admission control ({!Limiter}): over the connection cap, the
    connection is answered with one shed line and closed; over the
    pending-jobs bound, the request is answered with a shed line and not
    executed.  Nothing queues without bound: a connection whose client
    stops reading accumulates at most ~1MB of responses before the
    reactor stops reading its requests.

    Deadlines ([deadline_ms=] on a request) are armed on the loop's
    timer wheel {e at admission}, so they cover queue wait as well as
    execution: if the wheel fires first, the client receives the
    deadline-exceeded reply in that job's ordered slot and the pool's
    eventual result is dropped.  The pool's own fuel-sliced deadline
    enforcement still runs (it is what keeps a hot job from wedging a
    worker); whichever side answers first wins the route.

    Graceful drain ({!request_drain}, a [shutdown] admin line, or — wired
    in [bin/fpc] — SIGTERM): stop accepting, mark every live
    connection's input as over, flush every in-flight job's result in
    order, then {!wait} returns the final metrics. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?domains:int ->
  ?max_connections:int ->
  ?max_pending:int ->
  ?max_line:int ->
  ?times:bool ->
  ?tier:Fpc_svc.Job.tier ->
  ?devirt:bool ->
  ?backend:Fpc_reactor.Backend.t ->
  ?sndbuf:int ->
  unit ->
  t
(** Bind, listen and start serving.  Defaults: host ["127.0.0.1"], port
    [0] (ephemeral — read it back with {!port}), {!Fpc_svc.Pool}'s
    recommended domain count, {!Limiter}'s caps,
    {!Framing.default_max_line}, [times:true] (include host timings in
    result JSON; [false] gives fully deterministic output), [tier:Auto]
    (the default execution tier for requests that carry no explicit
    [tier=] key; an explicit key always wins), [devirt:true] (the default
    link-time-devirtualization choice for requests that carry no explicit
    [devirt=] key),
    [backend:{!Fpc_reactor.Backend.default}] (the readiness backend —
    [select] today, shaped so an epoll backend slots in), [sndbuf] unset
    (a test hook: SO_SNDBUF for accepted sockets, to force partial
    writes).  Installs a SIGPIPE-ignore handler (a dead peer must read
    as an I/O error, not kill the process). *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val request_drain : t -> unit
(** Begin a graceful drain; idempotent, non-blocking, callable from any
    thread (one atomic swap and a loop post — from a dedicated
    signal-relay thread, not a raw signal handler). *)

val draining : t -> bool

val stats_json : t -> Fpc_util.Jsonout.t
(** The [/stats] payload: a ["server"] object (port, reactor backend,
    draining flag, limiter counters) and a ["pool"] object
    ({!Fpc_svc.Metrics.to_json} of the live tally, shed /
    pending-watermark / timer-deadline counters folded in). *)

val wait : t -> Fpc_svc.Metrics.snapshot
(** Block until a drain is requested and completes: every accepted
    request answered, the reactor stopped, the pool shut down.  Returns
    the final metrics (the "stats line" of the drain protocol).  Call
    once. *)
