type t = {
  engine : string;
  ring : Event.t array;  (* distinct records, rewritten in place *)
  mutable next : int;  (* write cursor *)
  mutable len : int;  (* valid entries *)
  mutable seq : int;
  mutable dropped : int;
  mutable listener : (Event.t -> unit) option;
}

let create ?(capacity = 65536) ~engine () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    engine;
    (* Array.init, not Array.make: every slot must be its own record so
       in-place writes to one cannot alias another. *)
    ring = Array.init capacity (fun _ -> Event.copy Event.zero);
    next = 0;
    len = 0;
    seq = 0;
    dropped = 0;
    listener = None;
  }

let engine t = t.engine
let capacity t = Array.length t.ring

(* The hot path: overwrite the next slot's fields, no allocation.  The
   listener is fed the live slot after the fields are final; it must not
   retain it (Event.copy if it needs to). *)
let emit_fields t ~kind ~pc ~target ~depth ~fast ~cycles ~mem_refs ~d_cycles
    ~d_mem_refs =
  let slot = Array.unsafe_get t.ring t.next in
  slot.Event.seq <- t.seq;
  slot.Event.kind <- kind;
  slot.Event.pc <- pc;
  slot.Event.target <- target;
  slot.Event.depth <- depth;
  slot.Event.fast <- fast;
  slot.Event.cycles <- cycles;
  slot.Event.mem_refs <- mem_refs;
  slot.Event.d_cycles <- d_cycles;
  slot.Event.d_mem_refs <- d_mem_refs;
  t.seq <- t.seq + 1;
  (match t.listener with Some f -> f slot | None -> ());
  let cap = Array.length t.ring in
  t.next <- (t.next + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let emit t (e : Event.t) =
  emit_fields t ~kind:e.Event.kind ~pc:e.Event.pc ~target:e.Event.target
    ~depth:e.Event.depth ~fast:e.Event.fast ~cycles:e.Event.cycles
    ~mem_refs:e.Event.mem_refs ~d_cycles:e.Event.d_cycles
    ~d_mem_refs:e.Event.d_mem_refs

let set_listener t f = t.listener <- f

let events t =
  let cap = Array.length t.ring in
  let first = (t.next - t.len + cap) mod cap in
  (* Copies: the ring rewrites its slots, handed-out events must not
     change under the caller. *)
  List.init t.len (fun i -> Event.copy t.ring.((first + i) mod cap))

let total t = t.seq
let dropped t = t.dropped

let clear t =
  t.next <- 0;
  t.len <- 0;
  t.seq <- 0;
  t.dropped <- 0
