(* Tests for the TCP serving stack: framing, admission control, and the
   full loopback path through a live server — byte-stable results,
   concurrent connections, shedding, deadlines, graceful drain.

   Every server here binds port 0 (an ephemeral port) on 127.0.0.1 and
   is torn down inside the test, so the suite is safe to run in
   parallel with anything. *)

open Fpc_net

(* ---- framing ---- *)

let items_of_string ?max_line s =
  let fr = Framing.of_string ?max_line s in
  let rec go acc =
    match Framing.next fr with
    | Framing.Eof -> List.rev acc
    | item -> go (item :: acc)
  in
  go []

let line l = Framing.Line l
let overlong n = Framing.Overlong n

let item_str = function
  | Framing.Line l -> Printf.sprintf "Line %S" l
  | Framing.Overlong n -> Printf.sprintf "Overlong %d" n
  | Framing.Eof -> "Eof"

let check_items msg expected actual =
  Alcotest.(check (list string))
    msg
    (List.map item_str expected)
    (List.map item_str actual)

let test_framing_lines () =
  (* of_string feeds one byte per read: every partial-read path runs *)
  check_items "plain lines" [ line "a"; line "bc" ] (items_of_string "a\nbc\n");
  check_items "CRLF stripped" [ line "a"; line "b" ] (items_of_string "a\r\nb\r\n");
  check_items "unterminated tail still delivered" [ line "a"; line "tail" ]
    (items_of_string "a\ntail");
  check_items "empty lines preserved" [ line ""; line "x"; line "" ]
    (items_of_string "\nx\n\n");
  check_items "empty input" [] (items_of_string "")

let test_framing_overlong_resync () =
  (* an overlong line is discarded to the next newline and reported
     with its size; the stream then resyncs onto good lines *)
  check_items "overlong then resync"
    [ line "ok"; overlong 10; line "fine" ]
    (items_of_string ~max_line:4 "ok\n0123456789\nfine\n");
  check_items "overlong tail without newline"
    [ overlong 8 ]
    (items_of_string ~max_line:4 "01234567");
  check_items "boundary: exactly max fits"
    [ line "1234" ]
    (items_of_string ~max_line:4 "1234\n")

let test_framing_large_random () =
  (* a big random-ish stream reassembles exactly, whatever the read
     granularity *)
  let lines = List.init 200 (fun i -> String.make (i mod 97) 'x') in
  let s = String.concat "\n" lines ^ "\n" in
  check_items "200 lines reassembled"
    (List.map line lines)
    (items_of_string s)

let test_framing_push_mode () =
  (* push mode must produce the same items as pull mode for the same
     bytes, with None whenever the buffered input runs dry *)
  let fr = Framing.pushable ~max_line:4 () in
  Alcotest.(check (option string)) "empty framing has nothing" None
    (Option.map item_str (Framing.poll fr));
  Framing.feed fr "ok\n01" 0 5;
  Alcotest.(check (option string)) "first line out" (Some (item_str (line "ok")))
    (Option.map item_str (Framing.poll fr));
  Alcotest.(check (option string)) "mid-overlong: need more" None
    (Option.map item_str (Framing.poll fr));
  Framing.feed fr "23456789\nfi" 0 11;
  Alcotest.(check (option string)) "overlong flushed on resync"
    (Some (item_str (overlong 10)))
    (Option.map item_str (Framing.poll fr));
  Alcotest.(check (option string)) "partial good line: need more" None
    (Option.map item_str (Framing.poll fr));
  Framing.feed fr "ne" 0 2;
  Framing.input_closed fr;
  Alcotest.(check (option string)) "unterminated tail flushed at close"
    (Some (item_str (line "fine")))
    (Option.map item_str (Framing.poll fr));
  Alcotest.(check (option string)) "then Eof" (Some "Eof")
    (Option.map item_str (Framing.poll fr));
  Alcotest.check_raises "next on push mode is misuse"
    (Invalid_argument "Framing.next: push-mode framing needs poll") (fun () ->
      ignore (Framing.next (Framing.pushable ())))

(* ---- limiter ---- *)

let test_limiter () =
  let l = Limiter.create ~max_connections:2 ~max_pending:2 () in
  Alcotest.(check bool) "conn 1" true (Limiter.try_admit_connection l);
  Alcotest.(check bool) "conn 2" true (Limiter.try_admit_connection l);
  Alcotest.(check bool) "conn 3 shed" false (Limiter.try_admit_connection l);
  Limiter.release_connection l;
  Alcotest.(check bool) "slot freed" true (Limiter.try_admit_connection l);
  Alcotest.(check (option int)) "job 1" (Some 1) (Limiter.try_admit_job l);
  Alcotest.(check (option int)) "job 2" (Some 2) (Limiter.try_admit_job l);
  Alcotest.(check (option int)) "job 3 shed" None (Limiter.try_admit_job l);
  Limiter.release_job l;
  Alcotest.(check (option int)) "pending freed" (Some 2) (Limiter.try_admit_job l);
  let s = Limiter.stats l in
  Alcotest.(check int) "watermark" 2 s.Limiter.max_pending_observed;
  Alcotest.(check int) "shed jobs" 1 s.Limiter.shed_jobs;
  Alcotest.(check int) "shed connections" 1 s.Limiter.shed_connections

(* ---- end-to-end over loopback ---- *)

let with_server ?domains ?max_connections ?max_pending ?max_line f =
  let server =
    Server.create ?domains ?max_connections ?max_pending ?max_line
      ~times:false ()
  in
  let finally () =
    Server.request_drain server;
    ignore (Server.wait server)
  in
  Fun.protect ~finally (fun () -> f server)

let send_and_collect client lines n =
  List.iter (Client.send_line client) lines;
  List.init n (fun _ ->
      match Client.recv_line client with
      | Some l -> l
      | None -> Alcotest.fail "connection closed before all responses")

let test_byte_stable_vs_batch () =
  let lines =
    List.concat_map
      (fun prog ->
        List.map
          (fun e -> Printf.sprintf "prog=%s engine=%s" prog e)
          [ "i1"; "i2"; "i3"; "i4" ])
      [ "fib"; "hanoi"; "bsearch" ]
  in
  let specs =
    List.map
      (fun l ->
        match Fpc_svc.Job.parse_request l with
        | Ok s -> s
        | Error m -> Alcotest.fail m)
      lines
  in
  let batch_results, _ = Fpc_svc.Pool.run_jobs ~domains:2 specs in
  let expected =
    List.map
      (fun r ->
        Fpc_util.Jsonout.to_string
          (Fpc_svc.Job.result_to_json ~times:false r))
      batch_results
  in
  with_server ~domains:2 (fun server ->
      let client =
        Client.connect ~host:"127.0.0.1" ~port:(Server.port server) ()
      in
      let got = send_and_collect client lines (List.length lines) in
      Client.close client;
      List.iteri
        (fun i (want, have) ->
          Alcotest.(check string)
            (Printf.sprintf "line %d byte-identical to batch" i)
            want have)
        (List.combine expected got))

let test_concurrent_clients () =
  (* 4 clients, each pipelining its own distinguishable jobs; every
     client must get exactly its own answers, in its own send order *)
  let n_clients = 4 and per_client = 6 in
  with_server ~domains:2 (fun server ->
      let port = Server.port server in
      let answers = Array.make n_clients [] in
      let threads =
        Array.init n_clients (fun c ->
            Thread.create
              (fun () ->
                let client = Client.connect ~host:"127.0.0.1" ~port () in
                let lines =
                  (* fuel encodes (client, seq) so replies are attributable *)
                  List.init per_client (fun i ->
                      Printf.sprintf "prog=fib fuel=%d"
                        (1_000_000 + (c * 1000) + i))
                in
                answers.(c) <- send_and_collect client lines per_client;
                Client.close client)
              ())
      in
      Array.iter Thread.join threads;
      let all_ids = ref [] in
      Array.iteri
        (fun c got ->
          List.iteri
            (fun i resp ->
              let contains needle =
                let n = String.length needle and h = String.length resp in
                let rec at k =
                  k + n <= h && (String.sub resp k n = needle || at (k + 1))
                in
                at 0
              in
              Alcotest.(check bool)
                (Printf.sprintf "client %d reply %d is its own job" c i)
                true
                (contains
                   (Printf.sprintf "\"fuel\":%d" (1_000_000 + (c * 1000) + i)));
              Alcotest.(check bool)
                (Printf.sprintf "client %d reply %d succeeded" c i)
                true
                (contains "\"status\":\"ok\"");
              (* collect the global job id *)
              Scanf.sscanf resp "{\"id\":%d," (fun id ->
                  all_ids := id :: !all_ids))
            got)
        answers;
      let sorted = List.sort compare !all_ids in
      Alcotest.(check (list int)) "every job id answered exactly once"
        (List.init (n_clients * per_client) Fun.id)
        sorted)

(* ~1.5M simulated steps of nested looping: slow enough (tens of ms)
   that pipelined requests pile up behind it, small enough to finish. *)
let slow_src =
  {|
MODULE Main;
PROC main() =
  VAR i: INT := 0;
  VAR j: INT := 0;
  VAR n: INT := 0;
  i := 0;
  WHILE i < 600 DO
    j := 0;
    WHILE j < 600 DO
      j := j + 1;
      n := n + 1;
    END;
    i := i + 1;
  END;
  OUTPUT 1;
END;
END;
|}

let slow_line =
  Fpc_svc.Job.request_of_spec
    (Fpc_svc.Job.spec ~fuel:200_000_000 (Fpc_svc.Job.Inline slow_src))

let test_shed_under_tiny_limiter () =
  let n = 8 in
  let server = Server.create ~domains:1 ~max_pending:1 ~times:false () in
  let client = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) () in
  let got = send_and_collect client (List.init n (fun _ -> slow_line)) n in
  Client.close client;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec at k = k + n <= h && (String.sub hay k n = needle || at (k + 1)) in
    at 0
  in
  let ok = List.length (List.filter (fun r -> contains r "\"status\":\"ok\"") got)
  and shed =
    List.length (List.filter (fun r -> contains r "\"status\":\"shed\"") got)
  in
  Alcotest.(check int) "every request answered" n (ok + shed);
  Alcotest.(check bool) "at least one executed" true (ok >= 1);
  Alcotest.(check bool) "at least one shed" true (shed >= 1);
  (* the server is still healthy after shedding *)
  let c2 = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) () in
  (match send_and_collect c2 [ "prog=fib" ] 1 with
  | [ r ] ->
    Alcotest.(check bool) "post-shed job runs" true
      (contains r "\"status\":\"ok\"")
  | _ -> Alcotest.fail "no response");
  Client.close c2;
  Server.request_drain server;
  let snap = Server.wait server in
  Alcotest.(check int) "final metrics count the sheds" shed
    snap.Fpc_svc.Metrics.shed

let test_deadline_over_tcp () =
  let hung_line =
    Fpc_svc.Job.request_of_spec
      (Fpc_svc.Job.spec ~fuel:2_000_000_000 ~deadline_ms:100
         (Fpc_svc.Job.Inline
            "MODULE Main;\nPROC main() =\n  VAR i: INT := 0;\n  WHILE 0 < 1 \
             DO\n    i := i + 1;\n  END;\nEND;\nEND;\n"))
  in
  with_server ~domains:1 (fun server ->
      let client =
        Client.connect ~host:"127.0.0.1" ~port:(Server.port server) ()
      in
      match send_and_collect client [ hung_line; "prog=fib" ] 2 with
      | [ first; second ] ->
        let contains hay needle =
          let n = String.length needle and h = String.length hay in
          let rec at k =
            k + n <= h && (String.sub hay k n = needle || at (k + 1))
          in
          at 0
        in
        Alcotest.(check bool) "runaway came back deadline-exceeded" true
          (contains first "\"error\":\"deadline-exceeded\"");
        Alcotest.(check bool) "worker survived to run the next job" true
          (contains second "\"status\":\"ok\"");
        Client.close client
      | _ -> Alcotest.fail "expected two responses")

let test_graceful_drain () =
  let server = Server.create ~domains:1 ~times:false () in
  let port = Server.port server in
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  (* two in-flight jobs, then the drain command on the same wire *)
  Client.send_line client slow_line;
  Client.send_line client "prog=fib";
  Client.send_line client "shutdown";
  let responses =
    List.init 3 (fun _ ->
        match Client.recv_line client with
        | Some l -> l
        | None -> Alcotest.fail "closed before in-flight jobs were flushed")
  in
  Alcotest.(check bool) "drain acknowledged" true
    (List.mem {|{"status":"draining"}|} responses);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec at k = k + n <= h && (String.sub hay k n = needle || at (k + 1)) in
    at 0
  in
  Alcotest.(check int) "both in-flight jobs flushed before close" 2
    (List.length (List.filter (fun r -> contains r "\"status\":\"ok\"") responses));
  (match Client.recv_line client with
  | None -> ()
  | Some l -> Alcotest.failf "expected EOF after drain, got %s" l);
  Client.close client;
  let snap = Server.wait server in
  Alcotest.(check int) "no job lost in the drain" 2 snap.Fpc_svc.Metrics.jobs;
  Alcotest.(check int) "all answered ok" 2 snap.Fpc_svc.Metrics.succeeded;
  (* the port is really closed: a fresh connection must fail *)
  match Client.connect ~host:"127.0.0.1" ~port () with
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _) -> ()
  | client ->
    (* a TIME_WAIT race can still accept; the server must at least not
       answer — EOF or nothing *)
    Client.close client

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at k = k + n <= h && (String.sub hay k n = needle || at (k + 1)) in
  at 0

let test_partial_writes_over_tcp () =
  (* tiny socket buffers on both sides, and a client that sends its
     whole pipeline before reading a byte: the server's write path must
     ride Partial -> write-readiness -> resume, and every response must
     still arrive complete and in request order *)
  let n = 200 in
  let server =
    Server.create ~domains:2 ~max_pending:(n + 10) ~times:false ~sndbuf:4096 ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      ignore (Server.wait server))
    (fun () ->
      let client =
        Client.connect ~rcvbuf:4096 ~host:"127.0.0.1"
          ~port:(Server.port server) ()
      in
      List.iter (Client.send_line client) (List.init n (fun _ -> "prog=fib"));
      let got = List.init n (fun _ ->
          match Client.recv_line client with
          | Some l -> l
          | None -> Alcotest.fail "closed before all responses") in
      Client.close client;
      List.iteri
        (fun i resp ->
          Alcotest.(check bool)
            (Printf.sprintf "reply %d ok" i)
            true
            (contains resp "\"status\":\"ok\"");
          Scanf.sscanf resp "{\"id\":%d," (fun id ->
              Alcotest.(check int)
                (Printf.sprintf "reply %d in request order" i)
                i id))
        got)

let test_overlong_shed_midstream () =
  (* an overlong request in the middle of a pipelined stream is refused
     and discarded; the requests on either side of it still run *)
  with_server ~max_line:64 (fun server ->
      let client =
        Client.connect ~host:"127.0.0.1" ~port:(Server.port server) ()
      in
      Client.send_line client "prog=fib";
      Client.send_line client (String.make 200 'x');
      Client.send_line client "prog=fib";
      Client.shutdown_send client;
      let rec collect acc =
        match Client.recv_line client with
        | Some l -> collect (l :: acc)
        | None -> List.rev acc
      in
      let got = collect [] in
      Client.close client;
      Alcotest.(check int) "three responses" 3 (List.length got);
      Alcotest.(check int) "both good jobs ran" 2
        (List.length
           (List.filter (fun r -> contains r "\"status\":\"ok\"") got));
      Alcotest.(check int) "the overlong line was refused" 1
        (List.length
           (List.filter (fun r -> contains r "\"error\":\"overlong-line\"") got)))

let test_half_close_drains () =
  (* SHUT_WR with jobs still in flight: the server sees EOF, keeps the
     connection open until every owed response is flushed, then closes *)
  with_server ~domains:1 (fun server ->
      let client =
        Client.connect ~host:"127.0.0.1" ~port:(Server.port server) ()
      in
      Client.send_line client slow_line;
      Client.send_line client "prog=fib";
      Client.send_line client "prog=hanoi";
      Client.shutdown_send client;
      let got =
        List.init 3 (fun _ ->
            match Client.recv_line client with
            | Some l -> l
            | None -> Alcotest.fail "closed before owed responses were flushed")
      in
      Alcotest.(check int) "all three answered after half-close" 3
        (List.length
           (List.filter (fun r -> contains r "\"status\":\"ok\"") got));
      (match Client.recv_line client with
      | None -> ()
      | Some l -> Alcotest.failf "expected EOF after the drain, got %s" l);
      Client.close client)

let test_ordering_under_reordered_completion () =
  (* domains=2 and alternating slow/fast jobs on one connection: the
     fast job finishes first on the other domain, but the wire order
     must still be the request order *)
  let lines = [ slow_line; "prog=fib"; slow_line; "prog=fib" ] in
  with_server ~domains:2 (fun server ->
      let client =
        Client.connect ~host:"127.0.0.1" ~port:(Server.port server) ()
      in
      let got = send_and_collect client lines (List.length lines) in
      Client.close client;
      List.iteri
        (fun i resp ->
          Scanf.sscanf resp "{\"id\":%d," (fun id ->
              Alcotest.(check int)
                (Printf.sprintf "reply %d carries job id %d" i i)
                i id))
        got)

(* ~12M simulated steps: long enough (hundreds of ms) to pin the single
   worker while the timer wheel answers a queued job's deadline. *)
let hog_src =
  {|
MODULE Main;
PROC main() =
  VAR i: INT := 0;
  VAR j: INT := 0;
  VAR n: INT := 0;
  i := 0;
  WHILE i < 1700 DO
    j := 0;
    WHILE j < 1700 DO
      j := j + 1;
      n := n + 1;
    END;
    i := i + 1;
  END;
  OUTPUT 1;
END;
END;
|}

let test_timer_answers_queued_deadline () =
  (* one worker, pinned by a hog on connection A: connection B's
     deadlined job never starts executing, so only the reactor's timer
     wheel (armed at admission) can answer it on time *)
  let hog_line =
    Fpc_svc.Job.request_of_spec
      (Fpc_svc.Job.spec ~fuel:200_000_000 (Fpc_svc.Job.Inline hog_src))
  in
  let server = Server.create ~domains:1 ~times:false () in
  let port = Server.port server in
  let hog_done = ref 0.0 in
  let hog_thread =
    Thread.create
      (fun () ->
        let a = Client.connect ~host:"127.0.0.1" ~port () in
        (match send_and_collect a [ hog_line ] 1 with
        | [ r ] ->
          Alcotest.(check bool) "hog completed ok" true
            (contains r "\"status\":\"ok\"")
        | _ -> Alcotest.fail "hog got no response");
        hog_done := Unix.gettimeofday ();
        Client.close a)
      ()
  in
  Thread.delay 0.05 (* let the hog occupy the only worker *);
  let b = Client.connect ~host:"127.0.0.1" ~port () in
  let b_answered =
    match send_and_collect b [ "prog=fib deadline_ms=20" ] 1 with
    | [ r ] ->
      Alcotest.(check bool) "queued job answered deadline-exceeded" true
        (contains r "\"error\":\"deadline-exceeded\"");
      Unix.gettimeofday ()
    | _ -> Alcotest.fail "no response for the deadlined job"
  in
  Client.close b;
  Thread.join hog_thread;
  Alcotest.(check bool) "the timer beat the pool to the answer" true
    (b_answered < !hog_done);
  Server.request_drain server;
  let snap = Server.wait server in
  Alcotest.(check int) "counted as a timer-answered deadline" 1
    snap.Fpc_svc.Metrics.timer_deadlines

let () =
  Alcotest.run "net"
    [
      ( "framing",
        [
          Alcotest.test_case "line assembly (1-byte reads)" `Quick
            test_framing_lines;
          Alcotest.test_case "overlong discard and resync" `Quick
            test_framing_overlong_resync;
          Alcotest.test_case "200-line reassembly" `Quick
            test_framing_large_random;
          Alcotest.test_case "push mode feeds and polls" `Quick
            test_framing_push_mode;
        ] );
      ("limiter", [ Alcotest.test_case "caps and counters" `Quick test_limiter ]);
      ( "server",
        [
          Alcotest.test_case "byte-stable with fpc batch" `Quick
            test_byte_stable_vs_batch;
          Alcotest.test_case "concurrent clients, ids exactly once" `Quick
            test_concurrent_clients;
          Alcotest.test_case "shed under a tiny limiter" `Quick
            test_shed_under_tiny_limiter;
          Alcotest.test_case "deadline over TCP" `Quick test_deadline_over_tcp;
          Alcotest.test_case "graceful drain flushes in-flight" `Quick
            test_graceful_drain;
          Alcotest.test_case "partial writes under tiny buffers" `Quick
            test_partial_writes_over_tcp;
          Alcotest.test_case "overlong refusal mid-stream" `Quick
            test_overlong_shed_midstream;
          Alcotest.test_case "half-close drains owed responses" `Quick
            test_half_close_drains;
          Alcotest.test_case "request order survives reordered completion"
            `Quick test_ordering_under_reordered_completion;
          Alcotest.test_case "timer wheel answers a queued deadline" `Quick
            test_timer_answers_queued_deadline;
        ] );
    ]
