exception Overflow
exception Underflow

type t = { data : int array; mutable depth : int }

let create ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Eval_stack.create";
  { data = Array.make capacity 0; depth = 0 }

let capacity t = Array.length t.data
let depth t = t.depth

let push t v =
  if t.depth >= Array.length t.data then raise Overflow;
  t.data.(t.depth) <- Fpc_util.Bits.to_word v;
  t.depth <- t.depth + 1

let pop t =
  if t.depth = 0 then raise Underflow;
  t.depth <- t.depth - 1;
  t.data.(t.depth)

let peek t =
  if t.depth = 0 then raise Underflow;
  t.data.(t.depth - 1)

let clear t = t.depth <- 0
let contents t = Array.sub t.data 0 t.depth

let buffer t = t.data

let replace t values =
  if Array.length values > Array.length t.data then raise Overflow;
  Array.blit values 0 t.data 0 (Array.length values);
  t.depth <- Array.length values
