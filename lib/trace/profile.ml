type row = {
  r_name : string;
  mutable r_calls : int;
  mutable r_fast : int;
  mutable r_slow : int;
  mutable r_excl_cycles : int;
  mutable r_incl_cycles : int;
  mutable r_excl_refs : int;
  mutable r_incl_refs : int;
}

type totals = {
  mutable t_cycles : int;
  mutable t_mem_refs : int;
  mutable t_calls : int;
  mutable t_returns : int;
  mutable t_other_xfers : int;
  mutable t_traps : int;
  mutable t_fast_transfers : int;
  mutable t_slow_transfers : int;
}

type fastpath = {
  mutable fp_rs_pushes : int;
  mutable fp_rs_hits : int;
  mutable fp_rs_flushes : int;
  mutable fp_rs_flushed_entries : int;
  mutable fp_rs_spills : int;
  mutable fp_bank_loads : int;
  mutable fp_bank_load_words : int;
  mutable fp_bank_spills : int;
  mutable fp_bank_spill_words : int;
  mutable fp_frame_allocs : int;
  mutable fp_ff_allocs : int;
  mutable fp_sw_allocs : int;
  mutable fp_frame_frees : int;
  mutable fp_ff_frees : int;
}

(* One open activation on the shadow stack.  [f_recursive] marks re-entry
   of a procedure already on the stack: its inclusive time is already
   covered by the outer activation, so the inner one must not add to it. *)
type frame = {
  f_id : int;
  f_start_cycles : int;
  f_start_refs : int;
  f_recursive : bool;
}

let outside_id = -2

type t = {
  procs : Procmap.t;
  engine : string;
  rows : (int, row) Hashtbl.t;
  mutable stack : frame list;
  mutable last_cycles : int;
  mutable last_refs : int;
  totals : totals;
  fastpath : fastpath;
  depth_hist : Fpc_util.Histogram.t;
  mutable events : int;
  mutable finished : bool;
}

let create ~procs ~engine =
  {
    procs;
    engine;
    rows = Hashtbl.create 64;
    stack = [];
    last_cycles = 0;
    last_refs = 0;
    totals =
      {
        t_cycles = 0;
        t_mem_refs = 0;
        t_calls = 0;
        t_returns = 0;
        t_other_xfers = 0;
        t_traps = 0;
        t_fast_transfers = 0;
        t_slow_transfers = 0;
      };
    fastpath =
      {
        fp_rs_pushes = 0;
        fp_rs_hits = 0;
        fp_rs_flushes = 0;
        fp_rs_flushed_entries = 0;
        fp_rs_spills = 0;
        fp_bank_loads = 0;
        fp_bank_load_words = 0;
        fp_bank_spills = 0;
        fp_bank_spill_words = 0;
        fp_frame_allocs = 0;
        fp_ff_allocs = 0;
        fp_sw_allocs = 0;
        fp_frame_frees = 0;
        fp_ff_frees = 0;
      };
    depth_hist = Fpc_util.Histogram.create ();
    events = 0;
    finished = false;
  }

let row t id =
  match Hashtbl.find_opt t.rows id with
  | Some r -> r
  | None ->
    let r_name =
      if id = outside_id then "(outside)" else Procmap.name t.procs id
    in
    let r =
      {
        r_name;
        r_calls = 0;
        r_fast = 0;
        r_slow = 0;
        r_excl_cycles = 0;
        r_incl_cycles = 0;
        r_excl_refs = 0;
        r_incl_refs = 0;
      }
    in
    Hashtbl.add t.rows id r;
    r

let cur_id t = match t.stack with f :: _ -> f.f_id | [] -> outside_id

let add_excl t id cycles refs =
  if cycles <> 0 || refs <> 0 then begin
    let r = row t id in
    r.r_excl_cycles <- r.r_excl_cycles + cycles;
    r.r_excl_refs <- r.r_excl_refs + refs
  end

let push t id ~start_cycles ~start_refs =
  let f_recursive = List.exists (fun f -> f.f_id = id) t.stack in
  t.stack <-
    { f_id = id; f_start_cycles = start_cycles; f_start_refs = start_refs; f_recursive }
    :: t.stack

let close_frame t f ~cycles ~refs =
  if not f.f_recursive then begin
    let r = row t f.f_id in
    r.r_incl_cycles <- r.r_incl_cycles + max 0 (cycles - f.f_start_cycles);
    r.r_incl_refs <- r.r_incl_refs + max 0 (refs - f.f_start_refs)
  end

let pop t ~cycles ~refs =
  match t.stack with
  | [] -> None
  | f :: rest ->
    close_frame t f ~cycles ~refs;
    t.stack <- rest;
    Some f

let close_all t ~cycles ~refs =
  List.iter (fun f -> close_frame t f ~cycles ~refs) t.stack;
  t.stack <- []

let enter t ~target ~fast ~count ~start_cycles ~start_refs =
  let id = Procmap.id_of_pc t.procs target in
  push t id ~start_cycles ~start_refs;
  if count then begin
    let r = row t id in
    r.r_calls <- r.r_calls + 1;
    if fast then r.r_fast <- r.r_fast + 1 else r.r_slow <- r.r_slow + 1
  end

let classify t fast =
  if fast then t.totals.t_fast_transfers <- t.totals.t_fast_transfers + 1
  else t.totals.t_slow_transfers <- t.totals.t_slow_transfers + 1

let record t (e : Event.t) =
  t.events <- t.events + 1;
  (* Partition the meter movement since the previous event into the
     straight-line span before this operation and the operation itself.
     Sub-events emitted mid-operation can leave the watermark past the
     operation's nominal start, hence the clamp: whatever the span cannot
     absorb belongs to the operation. *)
  let until_c = e.cycles - e.d_cycles and until_r = e.mem_refs - e.d_mem_refs in
  let span_c = max 0 (until_c - t.last_cycles) in
  let op_c = e.cycles - t.last_cycles - span_c in
  let span_r = max 0 (until_r - t.last_refs) in
  let op_r = e.mem_refs - t.last_refs - span_r in
  add_excl t (cur_id t) span_c span_r;
  let start_cycles = t.last_cycles + span_c and start_refs = t.last_refs + span_r in
  (match e.kind with
  | Event.Begin ->
    (* Boot cost (frame allocation, argument setup) lands on the entry
       procedure. *)
    enter t ~target:e.target ~fast:e.fast ~count:true ~start_cycles ~start_refs;
    add_excl t (cur_id t) op_c op_r
  | Event.Call ->
    t.totals.t_calls <- t.totals.t_calls + 1;
    classify t e.fast;
    Fpc_util.Histogram.add t.depth_hist e.depth;
    enter t ~target:e.target ~fast:e.fast ~count:true ~start_cycles ~start_refs;
    add_excl t (cur_id t) op_c op_r
  | Event.Return ->
    t.totals.t_returns <- t.totals.t_returns + 1;
    classify t e.fast;
    (match pop t ~cycles:e.cycles ~refs:e.mem_refs with
    | Some f -> add_excl t f.f_id op_c op_r
    | None ->
      (* Stack underflow: the profiler attached mid-run, or control
         escaped through a path it does not model.  Charge the transfer
         where we stand and re-sync on the destination. *)
      add_excl t (cur_id t) op_c op_r;
      if e.target >= 0 then
        push t (Procmap.id_of_pc t.procs e.target) ~start_cycles:e.cycles
          ~start_refs:e.mem_refs)
  | Event.Coroutine | Event.Switch ->
    t.totals.t_other_xfers <- t.totals.t_other_xfers + 1;
    (* The departing context's frames are closed: inclusive time measures
       presence on the running stack, and a suspended coroutine or
       descheduled process is not running. *)
    close_all t ~cycles:start_cycles ~refs:start_refs;
    if e.target >= 0 then
      enter t ~target:e.target ~fast:e.fast ~count:false ~start_cycles ~start_refs;
    add_excl t (cur_id t) op_c op_r
  | Event.Fork ->
    t.totals.t_other_xfers <- t.totals.t_other_xfers + 1;
    add_excl t (cur_id t) op_c op_r
  | Event.Trap _ ->
    t.totals.t_traps <- t.totals.t_traps + 1;
    (* A handled trap enters its handler like a call (the handler RETURNs
       through the normal path); an unhandled one ends the run. *)
    if e.target >= 0 then
      enter t ~target:e.target ~fast:false ~count:false ~start_cycles ~start_refs;
    add_excl t (cur_id t) op_c op_r
  | Event.Frame_alloc { via_ff; software; _ } ->
    t.fastpath.fp_frame_allocs <- t.fastpath.fp_frame_allocs + 1;
    if via_ff then t.fastpath.fp_ff_allocs <- t.fastpath.fp_ff_allocs + 1;
    if software then t.fastpath.fp_sw_allocs <- t.fastpath.fp_sw_allocs + 1;
    add_excl t (cur_id t) op_c op_r
  | Event.Frame_free { to_ff; _ } ->
    t.fastpath.fp_frame_frees <- t.fastpath.fp_frame_frees + 1;
    if to_ff then t.fastpath.fp_ff_frees <- t.fastpath.fp_ff_frees + 1;
    add_excl t (cur_id t) op_c op_r
  | Event.Rs_push ->
    t.fastpath.fp_rs_pushes <- t.fastpath.fp_rs_pushes + 1;
    add_excl t (cur_id t) op_c op_r
  | Event.Rs_hit ->
    t.fastpath.fp_rs_hits <- t.fastpath.fp_rs_hits + 1;
    add_excl t (cur_id t) op_c op_r
  | Event.Rs_flush n ->
    t.fastpath.fp_rs_flushes <- t.fastpath.fp_rs_flushes + 1;
    t.fastpath.fp_rs_flushed_entries <- t.fastpath.fp_rs_flushed_entries + n;
    add_excl t (cur_id t) op_c op_r
  | Event.Rs_spill ->
    t.fastpath.fp_rs_spills <- t.fastpath.fp_rs_spills + 1;
    add_excl t (cur_id t) op_c op_r
  | Event.Bank_load n ->
    t.fastpath.fp_bank_loads <- t.fastpath.fp_bank_loads + 1;
    t.fastpath.fp_bank_load_words <- t.fastpath.fp_bank_load_words + n;
    add_excl t (cur_id t) op_c op_r
  | Event.Bank_spill n ->
    t.fastpath.fp_bank_spills <- t.fastpath.fp_bank_spills + 1;
    t.fastpath.fp_bank_spill_words <- t.fastpath.fp_bank_spill_words + n;
    add_excl t (cur_id t) op_c op_r);
  t.last_cycles <- e.cycles;
  t.last_refs <- e.mem_refs

let finish t ~cycles ~mem_refs =
  if not t.finished then begin
    t.finished <- true;
    add_excl t (cur_id t) (max 0 (cycles - t.last_cycles))
      (max 0 (mem_refs - t.last_refs));
    t.last_cycles <- max t.last_cycles cycles;
    t.last_refs <- max t.last_refs mem_refs;
    close_all t ~cycles:t.last_cycles ~refs:t.last_refs;
    t.totals.t_cycles <- t.last_cycles;
    t.totals.t_mem_refs <- t.last_refs
  end;
  t

let totals t = t.totals
let fastpath t = t.fastpath
let depth_hist t = t.depth_hist

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.rows []
  |> List.sort (fun a b ->
         match compare b.r_excl_cycles a.r_excl_cycles with
         | 0 -> compare a.r_name b.r_name
         | c -> c)

type proc_stat = {
  ps_name : string;
  ps_calls : int;
  ps_fast : int;
  ps_slow : int;
  ps_excl_cycles : int;
  ps_incl_cycles : int;
  ps_excl_refs : int;
  ps_incl_refs : int;
}

type summary = {
  s_engine : string;
  s_cycles : int;
  s_mem_refs : int;
  s_calls : int;
  s_returns : int;
  s_other_xfers : int;
  s_traps : int;
  s_fast_transfers : int;
  s_slow_transfers : int;
  s_events : int;
  s_procs : proc_stat list;
  s_depth_max : int;
  s_depth_mean : float;
}

let summary t =
  {
    s_engine = t.engine;
    s_cycles = t.totals.t_cycles;
    s_mem_refs = t.totals.t_mem_refs;
    s_calls = t.totals.t_calls;
    s_returns = t.totals.t_returns;
    s_other_xfers = t.totals.t_other_xfers;
    s_traps = t.totals.t_traps;
    s_fast_transfers = t.totals.t_fast_transfers;
    s_slow_transfers = t.totals.t_slow_transfers;
    s_events = t.events;
    s_procs =
      List.map
        (fun r ->
          {
            ps_name = r.r_name;
            ps_calls = r.r_calls;
            ps_fast = r.r_fast;
            ps_slow = r.r_slow;
            ps_excl_cycles = r.r_excl_cycles;
            ps_incl_cycles = r.r_incl_cycles;
            ps_excl_refs = r.r_excl_refs;
            ps_incl_refs = r.r_incl_refs;
          })
        (rows t);
    s_depth_max =
      (if Fpc_util.Histogram.count t.depth_hist = 0 then 0
       else Fpc_util.Histogram.max_value t.depth_hist);
    s_depth_mean = Fpc_util.Histogram.mean t.depth_hist;
  }

let summary_to_json s =
  let open Fpc_util.Jsonout in
  Obj
    [
      ("engine", String s.s_engine);
      ("cycles", Int s.s_cycles);
      ("mem_refs", Int s.s_mem_refs);
      ("calls", Int s.s_calls);
      ("returns", Int s.s_returns);
      ("other_xfers", Int s.s_other_xfers);
      ("traps", Int s.s_traps);
      ("fast_transfers", Int s.s_fast_transfers);
      ("slow_transfers", Int s.s_slow_transfers);
      ("events", Int s.s_events);
      ("depth_max", Int s.s_depth_max);
      ("depth_mean", Float s.s_depth_mean);
      ( "procs",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("name", String p.ps_name);
                   ("calls", Int p.ps_calls);
                   ("fast", Int p.ps_fast);
                   ("slow", Int p.ps_slow);
                   ("excl_cycles", Int p.ps_excl_cycles);
                   ("incl_cycles", Int p.ps_incl_cycles);
                   ("excl_refs", Int p.ps_excl_refs);
                   ("incl_refs", Int p.ps_incl_refs);
                 ])
             s.s_procs) );
    ]

let render ?dropped t =
  let open Fpc_util.Tablefmt in
  let tot = t.totals in
  let fp = t.fastpath in
  let table =
    create
      ~title:(Printf.sprintf "profile (%s)" t.engine)
      ~columns:
        [
          ("procedure", Left);
          ("calls", Right);
          ("excl cycles", Right);
          ("%", Right);
          ("incl cycles", Right);
          ("excl refs", Right);
          ("incl refs", Right);
          ("fast", Right);
        ]
  in
  List.iter
    (fun r ->
      let pct =
        if tot.t_cycles = 0 then 0.
        else float_of_int r.r_excl_cycles /. float_of_int tot.t_cycles
      in
      let fast =
        if r.r_calls = 0 then "-"
        else cell_pct (float_of_int r.r_fast /. float_of_int r.r_calls)
      in
      add_row table
        [
          r.r_name;
          cell_int r.r_calls;
          cell_int r.r_excl_cycles;
          cell_pct pct;
          cell_int r.r_incl_cycles;
          cell_int r.r_excl_refs;
          cell_int r.r_incl_refs;
          fast;
        ])
    (rows t);
  add_note table
    (Printf.sprintf "totals: %d cycles, %d storage refs, %d calls, %d returns, %d other xfers, %d traps"
       tot.t_cycles tot.t_mem_refs tot.t_calls tot.t_returns tot.t_other_xfers
       tot.t_traps);
  let transfers = tot.t_fast_transfers + tot.t_slow_transfers in
  if transfers > 0 then
    add_note table
      (Printf.sprintf "fast path: %d/%d call+return transfers with no storage reference (%s)"
         tot.t_fast_transfers transfers
         (cell_pct (float_of_int tot.t_fast_transfers /. float_of_int transfers)));
  add_note table
    (Printf.sprintf
       "return stack: %d pushes, %d hits, %d flushes (%d entries), %d spills"
       fp.fp_rs_pushes fp.fp_rs_hits fp.fp_rs_flushes fp.fp_rs_flushed_entries
       fp.fp_rs_spills);
  add_note table
    (Printf.sprintf "banks: %d loads (%d words), %d spills (%d words)"
       fp.fp_bank_loads fp.fp_bank_load_words fp.fp_bank_spills
       fp.fp_bank_spill_words);
  add_note table
    (Printf.sprintf
       "frames: %d allocs (%d via free-frame stack, %d software), %d frees (%d to free-frame stack)"
       fp.fp_frame_allocs fp.fp_ff_allocs fp.fp_sw_allocs fp.fp_frame_frees
       fp.fp_ff_frees);
  (if Fpc_util.Histogram.count t.depth_hist > 0 then
     let h = t.depth_hist in
     add_note table
       (Printf.sprintf "call depth: mean %.1f, p50 %d, p90 %d, max %d"
          (Fpc_util.Histogram.mean h)
          (Fpc_util.Histogram.percentile h 50.)
          (Fpc_util.Histogram.percentile h 90.)
          (Fpc_util.Histogram.max_value h)));
  (match dropped with
  | Some n when n > 0 ->
    add_note table
      (Printf.sprintf
         "warning: ring dropped %d events (profile is still exact; exports cover the tail only)"
         n)
  | _ -> ());
  Fpc_util.Tablefmt.render table
