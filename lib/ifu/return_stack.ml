type entry = {
  r_lf : int;
  r_gf : int;
  r_cb : int option;
  r_pc_abs : int;
  r_bank : int option;
}

type t = {
  entries : entry option array;
  mutable top : int;
  mutable pushes : int;
  mutable fast_pops : int;
  mutable empty_pops : int;
  mutable flushes : int;
  mutable flushed_entries : int;
  mutable spills : int;
  mutable on_event : (Fpc_trace.Event.kind -> unit) option;
}

let create ~depth =
  if depth <= 0 then invalid_arg "Return_stack.create: depth must be positive";
  {
    entries = Array.make depth None;
    top = 0;
    pushes = 0;
    fast_pops = 0;
    empty_pops = 0;
    flushes = 0;
    flushed_entries = 0;
    spills = 0;
    on_event = None;
  }

let set_on_event t f = t.on_event <- f
let fire t k = match t.on_event with Some f -> f k | None -> ()

let depth t = Array.length t.entries
let length t = t.top
let is_empty t = t.top = 0
let is_full t = t.top = Array.length t.entries

let push t e =
  if is_full t then invalid_arg "Return_stack.push: full (flush first)";
  t.entries.(t.top) <- Some e;
  t.top <- t.top + 1;
  t.pushes <- t.pushes + 1;
  fire t Fpc_trace.Event.Rs_push

let pop t =
  if t.top = 0 then begin
    t.empty_pops <- t.empty_pops + 1;
    None
  end
  else begin
    t.top <- t.top - 1;
    let e = t.entries.(t.top) in
    t.entries.(t.top) <- None;
    t.fast_pops <- t.fast_pops + 1;
    fire t Fpc_trace.Event.Rs_hit;
    e
  end

let peek t = if t.top = 0 then None else t.entries.(t.top - 1)

let to_list t =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1) (match t.entries.(i) with Some e -> e :: acc | None -> acc)
  in
  List.rev (go (t.top - 1) [])

let second_oldest t = if t.top < 2 then None else t.entries.(1)

let drop_oldest t =
  if t.top = 0 then None
  else begin
    let e = t.entries.(0) in
    for i = 0 to t.top - 2 do
      t.entries.(i) <- t.entries.(i + 1)
    done;
    t.top <- t.top - 1;
    t.entries.(t.top) <- None;
    t.spills <- t.spills + 1;
    fire t Fpc_trace.Event.Rs_spill;
    e
  end

let flush t ~f =
  if t.top > 0 then begin
    t.flushes <- t.flushes + 1;
    let n = ref 0 in
    for i = t.top - 1 downto 0 do
      (match t.entries.(i) with
      | Some e ->
        f e;
        t.flushed_entries <- t.flushed_entries + 1;
        incr n
      | None -> ());
      t.entries.(i) <- None
    done;
    t.top <- 0;
    fire t (Fpc_trace.Event.Rs_flush !n)
  end

let pushes t = t.pushes
let fast_pops t = t.fast_pops
let empty_pops t = t.empty_pops
let flushes t = t.flushes
let flushed_entries t = t.flushed_entries
let spills t = t.spills
