lib/experiments/e01_fastpath.ml: Cost Exp Fpc_core Fpc_machine Fpc_util Harness List Printf Tablefmt
