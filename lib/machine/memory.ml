type address = int

type t = { store : int array; mutable cost : Cost.t option }

let create ?cost ~size_words () =
  if size_words <= 0 then invalid_arg "Memory.create: size must be positive";
  { store = Array.make size_words 0; cost }

let clone ?cost t =
  { store = Array.copy t.store;
    cost = (match cost with Some _ -> cost | None -> t.cost) }

let size t = Array.length t.store
let set_cost t c = t.cost <- Some c
let cost t = t.cost

let check t addr what =
  if addr < 0 || addr >= Array.length t.store then
    invalid_arg (Printf.sprintf "Memory.%s: address %d out of range" what addr)

let peek t addr =
  check t addr "peek";
  t.store.(addr)

let poke t addr v =
  check t addr "poke";
  t.store.(addr) <- Fpc_util.Bits.to_word v

let charge_read t = match t.cost with Some c -> Cost.mem_read c | None -> ()
let charge_write t = match t.cost with Some c -> Cost.mem_write c | None -> ()

let read t addr =
  charge_read t;
  peek t addr

let write t addr v =
  charge_write t;
  poke t addr v

let byte_of_word ~pc w =
  if pc land 1 = 0 then Fpc_util.Bits.byte_high w else Fpc_util.Bits.byte_low w

let peek_code_byte t ~code_base ~pc =
  byte_of_word ~pc (peek t (code_base + (pc lsr 1)))

let read_code_byte t ~code_base ~pc =
  charge_read t;
  peek_code_byte t ~code_base ~pc

let poke_code_byte t ~code_base ~pc b =
  let addr = code_base + (pc lsr 1) in
  let w = peek t addr in
  let w' =
    if pc land 1 = 0 then Fpc_util.Bits.word_of_bytes ~high:b ~low:(Fpc_util.Bits.byte_low w)
    else Fpc_util.Bits.word_of_bytes ~high:(Fpc_util.Bits.byte_high w) ~low:b
  in
  poke t addr w'

let blit_bytes t ~code_base bytes =
  Bytes.iteri (fun i b -> poke_code_byte t ~code_base ~pc:i (Char.code b)) bytes

let words_for_bytes n = (n + 1) / 2
