open Fpc_machine
open Fpc_core
module Opcode = Fpc_isa.Opcode
module Predecode = Fpc_isa.Predecode
module Image = Fpc_mesa.Image
module Descriptor = Fpc_mesa.Descriptor
module Frame = Fpc_frames.Frame
module Alloc_vector = Fpc_frames.Alloc_vector
module Return_stack = Fpc_ifu.Return_stack
module Bank_file = Fpc_regbank.Bank_file
module Interp = Fpc_interp.Interp

let word = Fpc_util.Bits.to_word
let signed v = Fpc_util.Bits.signed_of_unsigned ~width:16 v

(* A node covers the straight-line block starting at its boundary: at
   most [block_cap] instructions, ending early at a terminator (anything
   that moves control) or at undecodable bytes.  Every byte boundary gets
   its own node (suffix blocks overlap), so a fuel-sliced resume or a
   computed transfer always lands on compiled code. *)
let block_cap = 24

type t = {
  base : int;  (** first byte PC covered *)
  counts : int array;
      (** instructions the node at [pc - base] can retire; 0 = no node *)
  nodes : (State.t -> unit) array;
  mutable n_boundaries : int;
  mutable n_fused : int;
}

(* ------------------------------------------------------------------ *)
(* Instruction classification.

   A terminator moves control (or always traps) and so ends a block; it
   may still execute inside the node, as its final instruction.  A pure
   instruction touches only the evaluation stack, variables and meters:
   it cannot raise a machine trap (the only exceptions it can produce
   are stack bounds — discharged by the block guard — and a storage
   [Invalid_argument], which aborts the whole job identically in both
   tiers), cannot move the PC and cannot change the status.  Pure
   instructions are the fusable ones: their per-instruction accounting
   can be batched and their stack traffic collapsed.  [Div]/[Mod]/
   [Newrec]/[Freerec] are excluded because they can trap mid-block, and
   a catchable trap suspends the current frame with the {e exact} PC of
   the next instruction — so they must run with per-instruction PC
   updates (an "exact chain"). *)

let is_terminator (op : Opcode.t) =
  match op with
  | J _ | Jz _ | Jnz _ | Efc _ | Lfc _ | Dfc _ | Sdfc _ | Xf | Ret | Fork _
  | Yield | Stopproc | Halt | Brk ->
    true
  | _ -> false

let is_pure (op : Opcode.t) =
  match op with
  | Li _ | Lpd _ | Ll _ | Sl _ | Lg _ | Sg _ | Lla _ | Lga _ | Llx _ | Slx _
  | Lgx _ | Sgx _ | Rload | Rstore | Ldfld _ | Stfld _ | Dup | Drop | Swap
  | Over | Add | Sub | Mul | Neg | Band | Bor | Bxor | Bnot | Lt | Le | Eq
  | Ne | Ge | Gt | Lrc | Out | Nop ->
    true
  | _ -> false

(* Terminators that are still fusable inline: they end the block but
   need no transfer machinery, so they can be the last instruction of a
   fully fused fast path. *)
let is_fused_terminator (op : Opcode.t) =
  match op with J _ | Jz _ | Jnz _ | Halt -> true | _ -> false

(* Stack-depth effect of a fusable instruction: [(need, delta)] — words
   that must be on the stack before it, and its net depth change.  For
   every fusable instruction the transient depth during execution never
   exceeds the boundary depths (pops precede pushes, except the pushes
   of [Dup]/[Over] whose result depth {e is} the maximum), so checking
   boundary depths once per block is a sound guard for a whole run of
   unchecked pushes and pops. *)
let depth_effect (op : Opcode.t) =
  match op with
  | Li _ | Lpd _ | Ll _ | Lg _ | Lla _ | Lga _ | Lrc -> (0, 1)
  | Sl _ | Sg _ | Drop | Out | Jz _ | Jnz _ -> (1, -1)
  | Llx _ | Lgx _ | Rload | Ldfld _ | Neg | Bnot -> (1, 0)
  | Slx _ | Sgx _ | Rstore -> (2, -2)
  | Stfld _ -> (2, -1)
  | Dup -> (1, 1)
  | Swap -> (2, 0)
  | Over -> (2, 1)
  | Add | Sub | Mul | Band | Bor | Bxor | Lt | Le | Eq | Ne | Ge | Gt -> (2, -1)
  | Nop | J _ | Halt -> (0, 0)
  | _ -> invalid_arg "Tier.depth_effect: not fusable"

let guard_params ops =
  let need = ref 0 and maxd = ref 0 and d = ref 0 in
  List.iter
    (fun (_, op, _) ->
      let n, delta = depth_effect op in
      if n - !d > !need then need := n - !d;
      d := !d + delta;
      if !d > !maxd then maxd := !d)
    ops;
  (!need, !maxd)

(* ------------------------------------------------------------------ *)
(* Static accounting for a prepaid block.

   A fusable run's storage traffic splits into two kinds.  Ops with
   {e static} addresses (LL/SL/LG/SG at fixed frame offsets) have their
   whole bill — storage references, local/global ref counters — computable
   at translate time; when the block's runtime guard holds (no data
   trace, no register banks shadowing the touched frame, every static
   address in range) the bill is charged in one batch and the ops touch
   the store raw.  Ops with {e dynamic} addresses (indexed, indirect)
   still have a {e static} bill — one reference, one local/global/indirect
   counter tick — with only the address unknown; they join the batch too,
   going through the unmetered {!Memory.peek}/{!poke}, whose bounds check
   aborts exactly like the metered access (which charges before
   checking, so the prepaid batch matches even on the abort path). *)

type acct = {
  a_reads : int;
  a_writes : int;
  a_lrefs : int;
  a_grefs : int;
  a_irefs : int;
  a_max_l : int;  (** highest static local offset dereferenced; -1 none *)
  a_max_g : int;  (** highest static global offset dereferenced; -1 none *)
  a_no_banks : bool;
      (** block touches locals or data space raw: banks must be absent *)
}

let acct_of ops =
  let reads = ref 0
  and writes = ref 0
  and lrefs = ref 0
  and grefs = ref 0
  and irefs = ref 0
  and max_l = ref (-1)
  and max_g = ref (-1)
  and nb = ref false in
  List.iter
    (fun (_, (op : Opcode.t), _) ->
      match op with
      | Ll n ->
        incr reads;
        incr lrefs;
        if n > !max_l then max_l := n;
        nb := true
      | Sl n ->
        incr writes;
        incr lrefs;
        if n > !max_l then max_l := n;
        nb := true
      | Lg n ->
        incr reads;
        incr grefs;
        if n > !max_g then max_g := n
      | Sg n ->
        incr writes;
        incr grefs;
        if n > !max_g then max_g := n
      | Lla _ -> nb := true  (* flag_frame under banks: address formation only *)
      | Llx _ ->
        incr reads;
        incr lrefs;
        nb := true
      | Slx _ ->
        incr writes;
        incr lrefs;
        nb := true
      | Lgx _ ->
        incr reads;
        incr grefs
      | Sgx _ ->
        incr writes;
        incr grefs
      | Rload | Ldfld _ ->
        incr reads;
        incr irefs;
        nb := true
      | Rstore | Stfld _ ->
        incr writes;
        incr irefs;
        nb := true
      | _ -> ())
    ops;
  {
    a_reads = !reads;
    a_writes = !writes;
    a_lrefs = !lrefs;
    a_grefs = !grefs;
    a_irefs = !irefs;
    a_max_l = !max_l;
    a_max_g = !max_g;
    a_no_banks = !nb;
  }

(* ------------------------------------------------------------------ *)
(* Peephole dataflow for fused runs.  A "source" is an instruction whose
   value is known without touching the stack; when a peephole consumes
   it directly the elided push must still truncate to a word, exactly as
   {!Eval_stack.push} would have.  [raw] selects the prepaid access plane
   (bill already charged, addresses already guarded); the branch on it is
   perfectly predicted, and stored words are already truncated. *)

type sval = Sconst of int | Slocal of int | Sglobal of int

let sval_of (op : Opcode.t) =
  match op with
  | Li n -> Some (Sconst (word n))
  | Lpd w -> Some (Sconst (word w))
  | Ll n -> Some (Slocal n)
  | Lg n -> Some (Sglobal n)
  | _ -> None

let is_src op = sval_of op <> None
let sval op = match sval_of op with Some s -> s | None -> assert false

let load ~raw (st : State.t) = function
  | Sconst n -> n
  | Slocal n ->
    if raw then Memory.prepaid_read st.mem (st.lf + n)
    else word (State.read_local st n)
  | Sglobal n ->
    if raw then Memory.prepaid_read st.mem (st.gf + Image.global_base + n)
    else word (State.read_global st n)

let arith_fn (op : Opcode.t) : (int -> int -> int) option =
  match op with
  | Add -> Some (fun a b -> word (signed a + signed b))
  | Sub -> Some (fun a b -> word (signed a - signed b))
  | Mul -> Some (fun a b -> word (signed a * signed b))
  | Band -> Some (fun a b -> a land b)
  | Bor -> Some (fun a b -> a lor b)
  | Bxor -> Some (fun a b -> a lxor b)
  | _ -> None

let is_arith op = arith_fn op <> None
let arithf op = match arith_fn op with Some f -> f | None -> assert false

let cmp_fn (op : Opcode.t) : (int -> int -> bool) option =
  match op with
  | Lt -> Some (fun a b -> signed a < signed b)
  | Le -> Some (fun a b -> signed a <= signed b)
  | Eq -> Some (fun a b -> signed a = signed b)
  | Ne -> Some (fun a b -> signed a <> signed b)
  | Ge -> Some (fun a b -> signed a >= signed b)
  | Gt -> Some (fun a b -> signed a > signed b)
  | _ -> None

let is_cmp op = cmp_fn op <> None
let cmpf op = match cmp_fn op with Some f -> f | None -> assert false

let is_cond (op : Opcode.t) = match op with Jz _ | Jnz _ -> true | _ -> false

(* [(jump_if_true, displacement)]: JZ jumps when the (elided) comparison
   came out false, JNZ when it came out true. *)
let cond (op : Opcode.t) =
  match op with Jz d -> (false, d) | Jnz d -> (true, d) | _ -> assert false

(* Exactly {!Interp}'s [taken]. *)
let take_jump (st : State.t) target =
  st.metrics.jumps_taken <- st.metrics.jumps_taken + 1;
  Cost.jump st.cost;
  st.pc_abs <- target

let stop (_ : State.t) = ()

(* One fusable instruction as a direct closure over unchecked stack
   access — semantics identical to {!Interp.exec} under the block guard
   ([unsafe_push] still truncates to a word).  Static-address variable
   ops come in two planes: accessor-metered, or raw under a prepaid
   bill; dynamic-address ops always meter themselves. *)
let compile_one ~raw ((pc, (op : Opcode.t), _) : int * Opcode.t * int)
    (k : State.t -> unit) : State.t -> unit =
  match op with
  | Li n ->
    let n = word n in
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack n;
      k st
  | Lpd w ->
    let w = word w in
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack w;
      k st
  | Ll n ->
    if raw then fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (Memory.prepaid_read st.mem (st.lf + n));
      k st
    else fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (State.read_local st n);
      k st
  | Sl n ->
    if raw then fun (st : State.t) ->
      Memory.prepaid_write st.mem (st.lf + n) (Eval_stack.unsafe_pop st.stack);
      k st
    else fun (st : State.t) ->
      State.write_local st n (Eval_stack.unsafe_pop st.stack);
      k st
  | Lg n ->
    if raw then fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack
        (Memory.prepaid_read st.mem (st.gf + Image.global_base + n));
      k st
    else fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (State.read_global st n);
      k st
  | Sg n ->
    if raw then fun (st : State.t) ->
      Memory.prepaid_write st.mem
        (st.gf + Image.global_base + n)
        (Eval_stack.unsafe_pop st.stack);
      k st
    else fun (st : State.t) ->
      State.write_global st n (Eval_stack.unsafe_pop st.stack);
      k st
  | Lla n ->
    if raw then fun (st : State.t) ->
      (* banks are absent under the prepaid guard, so no frame to flag *)
      Eval_stack.unsafe_push st.stack (st.lf + n);
      k st
    else fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (State.local_addr st n);
      k st
  | Lga n ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (State.global_addr st n);
      k st
  | Llx n ->
    if raw then fun (st : State.t) ->
      let i = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (Memory.peek st.mem (st.lf + n + i));
      k st
    else fun (st : State.t) ->
      let i = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (State.read_local st (n + i));
      k st
  | Slx n ->
    if raw then fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let i = Eval_stack.unsafe_pop st.stack in
      Memory.poke st.mem (st.lf + n + i) v;
      k st
    else fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let i = Eval_stack.unsafe_pop st.stack in
      State.write_local st (n + i) v;
      k st
  | Lgx n ->
    if raw then fun (st : State.t) ->
      let i = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack
        (Memory.peek st.mem (st.gf + Image.global_base + n + i));
      k st
    else fun (st : State.t) ->
      let i = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (State.read_global st (n + i));
      k st
  | Sgx n ->
    if raw then fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let i = Eval_stack.unsafe_pop st.stack in
      Memory.poke st.mem (st.gf + Image.global_base + n + i) v;
      k st
    else fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let i = Eval_stack.unsafe_pop st.stack in
      State.write_global st (n + i) v;
      k st
  | Rload ->
    if raw then fun (st : State.t) ->
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (Memory.peek st.mem a);
      k st
    else fun (st : State.t) ->
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (State.data_read st ~addr:a);
      k st
  | Rstore ->
    if raw then fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Memory.poke st.mem a v;
      k st
    else fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      State.data_write st ~addr:a v;
      k st
  | Ldfld i ->
    if raw then fun (st : State.t) ->
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (Memory.peek st.mem (a + i));
      k st
    else fun (st : State.t) ->
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (State.data_read st ~addr:(a + i));
      k st
  | Stfld i ->
    if raw then fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_peek st.stack in
      Memory.poke st.mem (a + i) v;
      k st
    else fun (st : State.t) ->
      let v = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_peek st.stack in
      State.data_write st ~addr:(a + i) v;
      k st
  | Dup ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (Eval_stack.unsafe_peek st.stack);
      k st
  | Drop ->
    fun (st : State.t) ->
      ignore (Eval_stack.unsafe_pop st.stack);
      k st
  | Swap ->
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack b;
      Eval_stack.unsafe_push st.stack a;
      k st
  | Over ->
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_peek st.stack in
      Eval_stack.unsafe_push st.stack b;
      Eval_stack.unsafe_push st.stack a;
      k st
  | Add | Sub | Mul | Band | Bor | Bxor ->
    let f = arithf op in
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (f a b);
      k st
  | Neg ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (-signed (Eval_stack.unsafe_pop st.stack));
      k st
  | Bnot ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (Eval_stack.unsafe_pop st.stack lxor 0xFFFF);
      k st
  | Lt | Le | Eq | Ne | Ge | Gt ->
    let f = cmpf op in
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (if f a b then 1 else 0);
      k st
  | Lrc ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack st.return_ctx;
      k st
  | Out ->
    fun (st : State.t) ->
      State.emit st (Eval_stack.unsafe_pop st.stack);
      k st
  | Nop -> k
  | J d ->
    let target = pc + d in
    fun (st : State.t) -> take_jump st target
  | Jz d ->
    let target = pc + d in
    fun (st : State.t) ->
      if Eval_stack.unsafe_pop st.stack = 0 then take_jump st target
  | Jnz d ->
    let target = pc + d in
    fun (st : State.t) ->
      if Eval_stack.unsafe_pop st.stack <> 0 then take_jump st target
  | Halt -> fun (st : State.t) -> st.status <- State.Halted
  | _ -> invalid_arg "Tier.compile_one: not fusable"

(* The fused fast path for a run of fusable instructions: a closure
   chain with peephole-collapsed idioms.  Side-effect order (variable
   reads, output, data refs) is exactly the interpreter's; elided stack
   crossings apply [word] wherever a push would have truncated. *)
let rec compile ~raw (ops : (int * Opcode.t * int) list) : State.t -> unit =
  match ops with
  | [] -> stop
  (* LOAD a; LOAD b; CMP; Jcond — the compare-and-branch idiom *)
  | (_, o1, _) :: (_, o2, _) :: (_, o3, _) :: [ (jp, jop, _) ]
    when is_src o1 && is_src o2 && is_cmp o3 && is_cond jop ->
    let a = sval o1 and b = sval o2 and f = cmpf o3 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      let av = load ~raw st a in
      let bv = load ~raw st b in
      if f av bv = jnz then take_jump st target
  (* LOAD b; CMP; Jcond — left operand from the stack *)
  | (_, o1, _) :: (_, o2, _) :: [ (jp, jop, _) ]
    when is_src o1 && is_cmp o2 && is_cond jop ->
    let b = sval o1 and f = cmpf o2 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      let bv = load ~raw st b in
      let av = Eval_stack.unsafe_pop st.stack in
      if f av bv = jnz then take_jump st target
  (* CMP; Jcond — both operands from the stack *)
  | (_, o1, _) :: [ (jp, jop, _) ] when is_cmp o1 && is_cond jop ->
    let f = cmpf o1 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      if f a b = jnz then take_jump st target
  (* LOAD a; LOAD b; ARITH *)
  | (_, o1, _) :: (_, o2, _) :: (_, o3, _) :: rest
    when is_src o1 && is_src o2 && is_arith o3 ->
    let a = sval o1 and b = sval o2 and f = arithf o3 in
    let k = compile ~raw rest in
    fun (st : State.t) ->
      let av = load ~raw st a in
      let bv = load ~raw st b in
      Eval_stack.unsafe_push st.stack (f av bv);
      k st
  (* LOAD b; ARITH — left operand from the stack *)
  | (_, o1, _) :: (_, o2, _) :: rest when is_src o1 && is_arith o2 ->
    let b = sval o1 and f = arithf o2 in
    let k = compile ~raw rest in
    fun (st : State.t) ->
      let bv = load ~raw st b in
      let av = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (f av bv);
      k st
  (* LOAD; store — straight-through variable copy *)
  | (_, o1, _) :: (_, Sl n, _) :: rest when is_src o1 ->
    let a = sval o1 in
    let k = compile ~raw rest in
    if raw then fun (st : State.t) ->
      Memory.prepaid_write st.mem (st.lf + n) (load ~raw:true st a);
      k st
    else fun (st : State.t) ->
      State.write_local st n (load ~raw:false st a);
      k st
  | (_, o1, _) :: (_, Sg n, _) :: rest when is_src o1 ->
    let a = sval o1 in
    let k = compile ~raw rest in
    if raw then fun (st : State.t) ->
      Memory.prepaid_write st.mem
        (st.gf + Image.global_base + n)
        (load ~raw:true st a);
      k st
    else fun (st : State.t) ->
      State.write_global st n (load ~raw:false st a);
      k st
  (* LOAD; Jcond — loop latches like LL n; JNZ *)
  | (_, o1, _) :: [ (jp, jop, _) ] when is_src o1 && is_cond jop ->
    let a = sval o1 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      if (load ~raw st a <> 0) = jnz then take_jump st target
  (* A followed jump mid-chain: the jump's accounting without the PC
     move — the successor closure is the target's code. *)
  | (_, J _, _) :: (_ :: _ as rest) ->
    let k = compile ~raw rest in
    fun (st : State.t) ->
      st.metrics.jumps_taken <- st.metrics.jumps_taken + 1;
      Cost.jump st.cost;
      k st
  | o :: rest -> compile_one ~raw o (compile ~raw rest)

(* ------------------------------------------------------------------ *)
(* Exact chains: per-instruction accounting identical to [Interp.step]
   over a predecoded instruction — counter, dispatch cost, PC advanced
   {e before} the effect, then the single authoritative [Interp.exec].
   No inter-instruction checks are needed: a fusable instruction cannot
   move control, a trap-capable one signals by raising (unwinding the
   rest of the chain to the node's handler), and terminators are last. *)
let rec exact_chain (ops : (int * Opcode.t * int) list) : State.t -> unit =
  match ops with
  | [] -> stop
  | (pc, op, len) :: rest ->
    let next = pc + len in
    let k = exact_chain rest in
    fun (st : State.t) ->
      st.metrics.instructions <- st.metrics.instructions + 1;
      Cost.dispatch st.cost;
      st.pc_abs <- next;
      Interp.exec st ~instr_pc:pc op;
      k st

(* ------------------------------------------------------------------ *)
(* Specialised transfer nodes.

   The interpreter's call path resolves its destination at run time: an
   entry-vector read, a code-byte fetch for the frame-size index, a
   DIRECTCALL header fetch.  All of those inputs live in the code region,
   which is immutable once linked — the same assumption the predecode
   table already rests on — so a translate-time node can bake in the
   resolved destination and charge the elided fetches as a batch.  Every
   counter, metered reference and sub-event of the interpreter's path is
   reproduced; anything off the specialised shape (wrong engine flavour,
   unmaterialised CB, a full return stack, a rebound or NIL link) falls
   back to the generic [Interp.exec] {e before} mutating anything.  The
   specialised bodies run only under the fast path's tracer-absent
   branch, where transfer event emission is a no-op by construction. *)

(* Code bases of all linked modules, sorted: the module owning a byte PC
   is the one with the greatest [2 * code_base <= pc]. *)
let code_bases (image : Image.t) =
  Array.of_list
    (List.sort_uniq compare
       (List.map
          (fun ii -> ii.Image.ii_code_base)
          image.Image.dir.instances))

let cb_of_pc cbs pc =
  let best = ref (-1) in
  Array.iter (fun cb -> if 2 * cb <= pc then best := max !best cb) cbs;
  if !best >= 0 then Some !best else None

(* Prepaid frame traffic: [Transfer.alloc_frame]/[free_frame] with the
   AV fast path's storage references batch-charged inside the allocator
   ({!Alloc_vector.alloc_fsi_prepaid}/{!free_prepaid}).  These run only
   under the tracer-absent branch, where the sub-events the metered
   paths would emit are no-ops by construction; every counter total is
   identical. *)
let av_alloc_prepaid (st : State.t) fsi =
  match Alloc_vector.alloc_fsi_prepaid st.allocator ~cost:st.cost ~fsi with
  | lf -> (lf lsl 8) lor fsi
  | exception Alloc_vector.Out_of_frame_heap ->
    raise (Transfer.Machine_trap State.Frame_heap_exhausted)

let alloc_frame_prepaid (st : State.t) ~fsi =
  let m = st.metrics in
  m.frame_allocs <- m.frame_allocs + 1;
  if st.ff_fsi >= 0 && fsi <= st.ff_fsi then
    if st.ff_top > 0 then begin
      st.ff_top <- st.ff_top - 1;
      let lf = st.free_frames.(st.ff_top) in
      m.ff_hits <- m.ff_hits + 1;
      (lf lsl 8) lor st.ff_fsi
    end
    else begin
      m.ff_misses <- m.ff_misses + 1;
      av_alloc_prepaid st st.ff_fsi
    end
  else av_alloc_prepaid st fsi

let free_frame_prepaid (st : State.t) ~lf =
  st.metrics.frame_frees <- st.metrics.frame_frees + 1;
  (match st.banks with
  | Some b -> Bank_file.release_frame b ~lf
  | None -> ());
  if
    st.ff_fsi >= 0
    && Frame.peek_fsi st.mem ~lf = st.ff_fsi
    && st.ff_top < Array.length st.free_frames
  then begin
    st.free_frames.(st.ff_top) <- lf;
    st.ff_top <- st.ff_top + 1
  end
  else Alloc_vector.free_prepaid st.allocator ~cost:st.cost ~lf

(* RETURN via the IFU return stack, or the plain frame-link return of the
   stackless engines.  The empty-rstack and non-frame-link shapes go
   generic: they carry their own bookkeeping (empty-pop counts, process
   end, fresh-activation links). *)
let spec_ret ~tpc =
  fun (st : State.t) ->
    let m = st.metrics in
    match st.rstack with
    | Some rs when Return_stack.length rs > 0 ->
      m.returns <- m.returns + 1;
      State.note_transfer_direction st (-1);
      let before = Cost.mem_refs st.cost in
      let returning = st.lf in
      ignore (Return_stack.try_pop rs : bool);
      free_frame_prepaid st ~lf:returning;
      let e = Return_stack.popped rs in
      st.lf <- e.Return_stack.r_lf;
      st.gf <- e.Return_stack.r_gf;
      st.cb <- e.Return_stack.r_cb;
      st.pc_abs <- e.Return_stack.r_pc_abs;
      st.return_ctx <- 0;
      (match st.banks with
      | Some b -> Bank_file.ensure_bank b ~lf:st.lf
      | None -> ());
      Cost.jump st.cost;
      Transfer.classify st before
    | Some _ -> Interp.exec st ~instr_pc:tpc Ret
    | None ->
      let returning = st.lf in
      let rl = Frame.peek_return_link st.mem ~lf:returning in
      if rl <> 0 && Descriptor.word_kind rl = Descriptor.word_frame then begin
        m.returns <- m.returns + 1;
        State.note_transfer_direction st (-1);
        (* the returnLink fetch plus resume's pc/gf/cb fetches, one batch;
           references are charged, so this is statically a slow transfer *)
        Memory.charge st.mem ~reads:4 ~writes:0;
        free_frame_prepaid st ~lf:returning;
        st.return_ctx <- 0;
        let pc = Frame.peek_pc st.mem ~lf:rl in
        let gf = Frame.peek_global_frame st.mem ~lf:rl in
        let cb = Memory.peek st.mem gf in
        st.lf <- rl;
        st.gf <- gf;
        st.cb <- cb;
        st.pc_abs <- (2 * cb) + pc;
        (match st.banks with
        | Some b -> Bank_file.ensure_bank b ~lf:rl
        | None -> ());
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1
      end
      else Interp.exec st ~instr_pc:tpc Ret

(* LOCALCALL with the destination resolved at translate time: same
   environment, same code base, entry offset and callee size class read
   from the (immutable) entry vector once.  Mesa flavour without a return
   stack or banks — the shape the external-linkage convention emits. *)
let spec_lfc ~tpc ~ev_index ~cb ~fsi ~target_pc =
  fun (st : State.t) ->
    match (st.engine.Engine.kind, st.rstack, st.banks) with
    | Engine.Mesa, None, None when st.cb = cb ->
      let m = st.metrics in
      m.calls <- m.calls + 1;
      State.note_transfer_direction st 1;
      let ret_word = st.lf in
      (* the elided resolution (EV word + entry's fsi byte) plus the PC
         save and the callee's returnLink/globalFrame stores, one batch;
         references are charged, so this is statically a slow transfer *)
      Memory.charge st.mem ~reads:2 ~writes:3;
      Memory.poke st.mem (st.lf + Frame.off_pc) (st.pc_abs - (2 * cb));
      let packed = alloc_frame_prepaid st ~fsi in
      let lf_new = packed lsr 8 in
      Memory.poke st.mem (lf_new + Frame.off_return_link) ret_word;
      Memory.poke st.mem (lf_new + Frame.off_global_frame) st.gf;
      m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack;
      st.return_ctx <- ret_word;
      st.lf <- lf_new;
      st.pc_abs <- target_pc;
      Cost.jump st.cost;
      m.slow_transfers <- m.slow_transfers + 1
    | _ -> Interp.exec st ~instr_pc:tpc (Lfc ev_index)

(* DIRECTCALL with the header (gf, fsi) folded in: under a return stack
   the header rides the IFU prefetch (peeked, uncharged), which is
   exactly what baking it in reproduces.  The no-rstack flavour pays
   metered header fetches and goes generic. *)
let spec_dfc ~tpc ~(op : Opcode.t) ~gf_t ~fsi ~target_pc =
  fun (st : State.t) ->
    match st.rstack with
    | Some rs when not (Return_stack.is_full rs) ->
      let m = st.metrics in
      m.calls <- m.calls + 1;
      State.note_transfer_direction st 1;
      let before = Cost.mem_refs st.cost in
      (match st.banks with
      | Some bk -> Bank_file.on_leave bk ~lf:st.lf
      | None -> ());
      let ret_word = st.lf in
      let e_bank =
        match st.banks with
        | Some bk -> Bank_file.bank_index bk ~lf:st.lf
        | None -> Return_stack.no_bank
      in
      Return_stack.push rs ~lf:st.lf ~gf:st.gf ~cb:st.cb ~pc_abs:st.pc_abs
        ~bank:e_bank;
      let packed = alloc_frame_prepaid st ~fsi in
      let lf_new = packed lsr 8 and granted_fsi = packed land 0xFF in
      (match st.banks with
      | Some banks ->
        let depth = Eval_stack.depth st.stack in
        m.arg_words_renamed <- m.arg_words_renamed + depth;
        Bank_file.on_call_n banks ~nargs:depth ~callee_lf:lf_new
          ~payload_words:(Transfer.payload_of_fsi st granted_fsi)
          ~args:(Eval_stack.buffer st.stack);
        Eval_stack.clear st.stack
      | None ->
        m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack);
      st.return_ctx <- ret_word;
      st.lf <- lf_new;
      st.gf <- gf_t;
      st.cb <- State.no_cb;
      st.pc_abs <- target_pc;
      Cost.jump st.cost;
      Transfer.classify st before
    | _ -> Interp.exec st ~instr_pc:tpc op

(* Build the specialised node for a block-ending transfer, or [None] when
   the shape (or its translate-time resolution) is not specialisable. *)
let specialize (image : Image.t) cbs ~tpc (op : Opcode.t) =
  let mem = image.Image.mem in
  match op with
  | Ret -> Some (spec_ret ~tpc)
  | Lfc n -> (
    match cb_of_pc cbs tpc with
    | None -> None
    | Some cb -> (
      try
        let entry_off = Memory.peek mem (cb + n) in
        let fsi = Memory.peek_code_byte mem ~code_base:cb ~pc:entry_off in
        Some
          (spec_lfc ~tpc ~ev_index:n ~cb ~fsi
             ~target_pc:((2 * cb) + entry_off + 1))
      with Invalid_argument _ -> None))
  | Dfc _ | Sdfc _ -> (
    let target_abs =
      match op with Dfc t -> t | Sdfc d -> tpc + d | _ -> assert false
    in
    try
      let b0 = Memory.peek_code_byte mem ~code_base:0 ~pc:target_abs in
      let b1 = Memory.peek_code_byte mem ~code_base:0 ~pc:(target_abs + 1) in
      let b2 = Memory.peek_code_byte mem ~code_base:0 ~pc:(target_abs + 2) in
      Some
        (spec_dfc ~tpc ~op ~gf_t:((b0 lsl 8) lor b1) ~fsi:b2
           ~target_pc:(target_abs + 3))
    with Invalid_argument _ -> None)
  | _ -> None

(* A followed unconditional jump (one with more instructions collected
   after it) is fusable: inside a chain it costs its dispatch and jump
   accounting but moves no PC — the chain {e is} the jump.  In final
   position it is the ordinary fused terminator. *)
let rec split_fusable acc (ops : (int * Opcode.t * int) list) =
  match ops with
  | [] -> (List.rev acc, [])
  | [ ((_, Opcode.J _, _) as o) ] -> (List.rev (o :: acc), [])
  | ((_, Opcode.J _, _) as o) :: rest -> split_fusable (o :: acc) rest
  | ((_, op, _) as o) :: rest ->
    if is_pure op then split_fusable (o :: acc) rest
    else if is_fused_terminator op then (List.rev (o :: acc), [])
    else (List.rev acc, ops)

(* Superblock formation: an unconditional jump to a decodable target does
   not end collection — the block continues at the target, turning a loop
   body's back-edge or a forward hop into straight-line code.  [block_cap]
   bounds the chase (a self-jump simply fills the block with jumps). *)
let collect_block pd pc0 =
  let rec go pc n acc =
    if n >= block_cap then List.rev acc
    else
      let len = Predecode.len_at pd pc in
      if len = 0 then List.rev acc
      else
        let op = Predecode.op_at pd pc in
        let acc = (pc, op, len) :: acc in
        match op with
        | Opcode.J d when n + 1 < block_cap && Predecode.len_at pd (pc + d) > 0
          ->
          go (pc + d) (n + 1) acc
        | _ -> if is_terminator op then List.rev acc else go (pc + len) (n + 1) acc
  in
  go pc0 0 []

let has_banks (st : State.t) = match st.banks with Some _ -> true | None -> false
let has_data_trace (st : State.t) =
  match st.data_trace with Some _ -> true | None -> false

(* Build the node for one boundary.  [fused] is true when the fast path
   covers two or more instructions in one batch. *)
let build_node image cbs ops : int * bool * (State.t -> unit) =
  let n_ops = List.length ops in
  let fusable, tail = split_fusable [] ops in
  let f = List.length fusable in
  (* Guard-failure / tracer fallback: the whole block, exactly. *)
  let exact_all = exact_chain ops in
  let body =
    if f = 0 then
      match tail with
      | [ (tpc, top, tlen) ] -> (
        match specialize image cbs ~tpc top with
        | Some sp ->
          (* A lone transfer at the boundary (a jump target landing on a
             RET or a call): same per-instruction accounting as the exact
             chain, then the specialised transfer. *)
          let t_next = tpc + tlen in
          fun (st : State.t) ->
            (match st.tracer with
            | Some _ -> exact_all st
            | None ->
              let m = st.metrics in
              m.instructions <- m.instructions + 1;
              m.tier_fast_instrs <- m.tier_fast_instrs + 1;
              Cost.dispatch st.cost;
              st.pc_abs <- t_next;
              sp st)
        | None -> exact_all)
      | _ -> exact_all
    else begin
      let need, maxd = guard_params fusable in
      let a = acct_of fusable in
      let fused_mid = compile ~raw:false fusable in
      let fused_raw = compile ~raw:true fusable in
      (* The first non-fusable instruction (a transfer terminator, or a
         trap-capable op like DIV) still joins the batch: the interpreter
         counts an instruction before executing it, so pre-counting the
         batch leaves every meter exactly right even if it traps — but
         its PC must be exact, so it runs via [Interp.exec] after the
         fused prefix, never inside it. *)
      let batch = if tail = [] then f else f + 1 in
      let super = if batch >= 2 then batch else 0 in
      let reads = a.a_reads and writes = a.a_writes in
      let lrefs = a.a_lrefs and grefs = a.a_grefs and irefs = a.a_irefs in
      let max_l = a.a_max_l and max_g = a.a_max_g in
      let no_banks = a.a_no_banks in
      (* The prepaid plane applies when nothing can observe or alter the
         batched accesses: no data trace, no bank shadowing the touched
         locals, and every static address proven in range (dynamic
         addresses bounds-check themselves in the chain). *)
      let prepaid_ok (st : State.t) =
        (not (has_data_trace st))
        && ((not no_banks) || not (has_banks st))
        &&
        let sz = Memory.size st.mem in
        (max_l < 0 || st.lf + max_l < sz)
        && (max_g < 0 || st.gf + Image.global_base + max_g < sz)
      in
      match tail with
      | [] ->
        (* Fully fused block: PC goes to the block end up front (only a
           final fused jump may overwrite it), exactly where the
           interpreter's per-instruction advances would leave it. *)
        let p_end =
          match List.rev fusable with
          | (pc, _, len) :: _ -> pc + len
          | [] -> assert false
        in
        fun (st : State.t) ->
          (match st.tracer with
          | Some _ -> exact_all st
          | None ->
            let d = Eval_stack.depth st.stack in
            if d >= need && d + maxd <= Eval_stack.capacity st.stack then begin
              let m = st.metrics in
              m.instructions <- m.instructions + batch;
              m.tier_fast_instrs <- m.tier_fast_instrs + batch;
              m.tier_super_instrs <- m.tier_super_instrs + super;
              if prepaid_ok st then begin
                Cost.block_bill st.cost ~instrs:batch ~reads ~writes;
                m.local_refs <- m.local_refs + lrefs;
                m.global_refs <- m.global_refs + grefs;
                m.indirect_refs <- m.indirect_refs + irefs;
                st.pc_abs <- p_end;
                fused_raw st
              end
              else begin
                Cost.dispatch_n st.cost batch;
                st.pc_abs <- p_end;
                fused_mid st
              end
            end
            else exact_all st)
      | (tpc, top, tlen) :: rest ->
        let t_next = tpc + tlen in
        let term =
          match rest with
          | [] -> (
            match specialize image cbs ~tpc top with
            | Some sp -> sp
            | None -> fun (st : State.t) -> Interp.exec st ~instr_pc:tpc top)
          | _ ->
            let rest_chain = exact_chain rest in
            fun (st : State.t) ->
              Interp.exec st ~instr_pc:tpc top;
              rest_chain st
        in
        fun (st : State.t) ->
          (match st.tracer with
          | Some _ -> exact_all st
          | None ->
            let d = Eval_stack.depth st.stack in
            if d >= need && d + maxd <= Eval_stack.capacity st.stack then begin
              let m = st.metrics in
              m.instructions <- m.instructions + batch;
              m.tier_fast_instrs <- m.tier_fast_instrs + batch;
              m.tier_super_instrs <- m.tier_super_instrs + super;
              if prepaid_ok st then begin
                Cost.block_bill st.cost ~instrs:batch ~reads ~writes;
                m.local_refs <- m.local_refs + lrefs;
                m.global_refs <- m.global_refs + grefs;
                m.indirect_refs <- m.indirect_refs + irefs;
                fused_raw st
              end
              else begin
                Cost.dispatch_n st.cost batch;
                fused_mid st
              end;
              st.pc_abs <- t_next;
              term st
            end
            else exact_all st)
    end
  in
  let fused_node = f >= 2 || (f >= 1 && tail <> []) in
  let exec (st : State.t) =
    try body st with
    | Eval_stack.Overflow -> Transfer.trap st State.Eval_overflow
    | Eval_stack.Underflow -> Transfer.trap st State.Eval_underflow
    | Transfer.Machine_trap reason -> Transfer.trap st reason
  in
  (n_ops, fused_node, exec)

(* ------------------------------------------------------------------ *)

let translate image =
  let pd = Image.predecode image in
  let cbs = code_bases image in
  let base = Predecode.base pd and limit = Predecode.limit pd in
  let size = max 0 (limit - base) in
  let t =
    {
      base;
      counts = Array.make size 0;
      nodes = Array.make size stop;
      n_boundaries = 0;
      n_fused = 0;
    }
  in
  for pc = base to limit - 1 do
    if Predecode.len_at pd pc > 0 then begin
      let n, fused, exec = build_node image cbs (collect_block pd pc) in
      t.counts.(pc - base) <- n;
      t.nodes.(pc - base) <- exec;
      t.n_boundaries <- t.n_boundaries + 1;
      if fused then t.n_fused <- t.n_fused + 1
    end
  done;
  t

type Image.attachment += Translation of t

let of_image (image : Image.t) =
  match image.dir.attachment with
  | Some (Translation t) -> (t, true)
  | _ ->
    let t = translate image in
    image.dir.attachment <- Some (Translation t);
    (t, false)

let boundaries t = t.n_boundaries
let fused_boundaries t = t.n_fused

let run ?(max_steps = 20_000_000) t (st : State.t) =
  let m = st.metrics in
  let limit = m.instructions + max_steps in
  let base = t.base in
  let counts = t.counts and nodes = t.nodes in
  let size = Array.length counts in
  let rec go () =
    if st.status = State.Running then
      if m.instructions >= limit then st.status <- State.Trapped State.Step_limit
      else begin
        let idx = st.pc_abs - base in
        if
          idx >= 0 && idx < size
          && (let n = Array.unsafe_get counts idx in
              n > 0 && m.instructions + n <= limit)
        then (Array.unsafe_get nodes idx) st
        else begin
          (* No node (undecodable or uncovered PC), or the remaining
             budget cannot cover a whole block: one interpreter step —
             by construction it lands back on an exact boundary. *)
          m.tier_deopts <- m.tier_deopts + 1;
          Interp.step st
        end;
        go ()
      end
  in
  go ()
