(** Common shape of an experiment result.

    Each experiment renders one or more tables (the reproduction of a
    figure or of the paper's quantitative claims) and reports {e headline
    numbers}: named scalars that EXPERIMENTS.md records and the test suite
    asserts against the paper's claimed values. *)

type result = {
  id : string;  (** e.g. "E6" *)
  key : string;  (** bench-target key, e.g. "bank_overflow" *)
  title : string;
  paper_claim : string;  (** the sentence of the paper being reproduced *)
  tables : string list;  (** rendered tables / figures *)
  headlines : (string * float) list;
}

val render : result -> string

val headline : result -> string -> float
(** Raises [Not_found]. *)
