exception Overflow
exception Underflow

type t = { data : int array; mutable depth : int }

let create ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Eval_stack.create";
  { data = Array.make capacity 0; depth = 0 }

let capacity t = Array.length t.data
let depth t = t.depth

let push t v =
  if t.depth >= Array.length t.data then raise Overflow;
  t.data.(t.depth) <- Fpc_util.Bits.to_word v;
  t.depth <- t.depth + 1

let pop t =
  if t.depth = 0 then raise Underflow;
  t.depth <- t.depth - 1;
  t.data.(t.depth)

let peek t =
  if t.depth = 0 then raise Underflow;
  t.data.(t.depth - 1)

(* The unchecked variants back the compiled tier's fused fast path, which
   proves [depth] bounds for a whole run of instructions before executing
   any of them; word truncation still applies so a value read back later
   is bit-identical to one that went through [push]. *)
let unsafe_push t v =
  Array.unsafe_set t.data t.depth (Fpc_util.Bits.to_word v);
  t.depth <- t.depth + 1

let unsafe_pop t =
  t.depth <- t.depth - 1;
  Array.unsafe_get t.data t.depth

let unsafe_peek t = Array.unsafe_get t.data (t.depth - 1)

let clear t = t.depth <- 0
let contents t = Array.sub t.data 0 t.depth

let buffer t = t.data

let replace t values =
  if Array.length values > Array.length t.data then raise Overflow;
  Array.blit values 0 t.data 0 (Array.length values);
  t.depth <- Array.length values
