open Fpc_svc

(* One live connection.  [expected] is the submission-order queue of pool
   job ids this connection is still owed; [ready] holds results that have
   been delivered but whose turn has not come.  The writer thread blocks
   on [cond] until the head of [expected] shows up in [ready], keeping
   responses in request order however the pool reorders completion. *)
type conn = {
  c_id : int;
  fd : Unix.file_descr;
  m : Mutex.t;
  cond : Condition.t;
  expected : int Queue.t;
  ready : (int, Job.result) Hashtbl.t;
  mutable no_more : bool;  (** reader finished; writer exits once drained *)
  out_m : Mutex.t;
  mutable dead : bool;  (** a write failed; keep consuming, stop writing *)
}

type t = {
  pool : Pool.t;
  limiter : Limiter.t;
  listen_fd : Unix.file_descr;
  port : int;
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  stopping : bool Atomic.t;
  times : bool;
  tier : Job.tier;  (** default for requests without an explicit tier= *)
  max_line : int;
  (* accepted sockets waiting for a handler; None is the stop sentinel *)
  conn_queue : Unix.file_descr option Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  (* job id -> connection awaiting that result *)
  routes : (int, conn) Hashtbl.t;
  routes_m : Mutex.t;
  live : (int, conn) Hashtbl.t;
  live_m : Mutex.t;
  conn_ids : int Atomic.t;
  (* server-side counters (sheds, pending watermark) folded into the
     pool tally at snapshot time *)
  server_metrics : Metrics.t;
  sm_m : Mutex.t;
  mutable acceptor : Thread.t option;
  mutable handlers : Thread.t array;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* All writes to a connection go through here: serialized by [out_m], and
   a failed write (peer gone) marks the connection dead rather than
   raising — the reader and writer keep draining so bookkeeping stays
   consistent. *)
let conn_write conn line =
  Mutex.lock conn.out_m;
  (if not conn.dead then
     try write_all conn.fd (line ^ "\n")
     with Unix.Unix_error _ | Sys_error _ -> conn.dead <- true);
  Mutex.unlock conn.out_m

let port t = t.port
let draining t = Atomic.get t.stopping

let request_drain t =
  if Atomic.compare_and_set t.stopping false true then
    try ignore (Unix.write t.pipe_wr (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

let merged_tally t =
  let tally = Pool.metrics_tally t.pool in
  Mutex.lock t.sm_m;
  Metrics.merge_into ~src:t.server_metrics ~into:tally;
  Mutex.unlock t.sm_m;
  tally

let snapshot_now t =
  let tally = merged_tally t in
  Metrics.snapshot tally
    ~wall_s:(Unix.gettimeofday () -. Pool.started_at t.pool)
    ~cache:(Image_cache.stats (Pool.cache t.pool))

let stats_json t =
  let open Fpc_util.Jsonout in
  let ls = Limiter.stats t.limiter in
  Obj
    [
      ( "server",
        Obj
          [
            ("port", Int t.port);
            ("draining", Bool (Atomic.get t.stopping));
            ("connections", Int ls.connections);
            ("max_connections", Int ls.max_connections);
            ("pending", Int ls.pending);
            ("max_pending", Int ls.max_pending);
            ("shed_connections", Int ls.shed_connections);
          ] );
      ("pool", Metrics.to_json (snapshot_now t));
    ]

let note_shed t =
  Mutex.lock t.sm_m;
  Metrics.note_shed t.server_metrics;
  Mutex.unlock t.sm_m

let handle_job t conn line =
  match Job.parse_request line with
  | Error msg -> conn_write conn (Protocol.error_line ~error:"bad-request" ~message:msg)
  | Ok spec ->
    (* A request that left the tier to the service gets the server's
       default; an explicit tier= always wins. *)
    let spec =
      match spec.Job.tier with
      | Job.Auto -> { spec with Job.tier = t.tier }
      | _ -> spec
    in
    if Atomic.get t.stopping then begin
      note_shed t;
      conn_write conn (Protocol.shed_line ~message:"server is draining")
    end
    else begin
      match Limiter.try_admit_job t.limiter with
      | None ->
        note_shed t;
        conn_write conn
          (Protocol.shed_line ~message:"pending-jobs limit reached")
      | Some depth ->
        Mutex.lock t.sm_m;
        Metrics.observe_pending t.server_metrics depth;
        Mutex.unlock t.sm_m;
        (* Register the route and the expected id under both locks
           before any worker can deliver the result, so delivery never
           races registration.  Pool.submit takes the pool's own lock
           inside; lock order is routes_m -> conn.m -> pool, same
           everywhere. *)
        Mutex.lock t.routes_m;
        Mutex.lock conn.m;
        let id = Pool.submit t.pool spec in
        Hashtbl.replace t.routes id conn;
        Queue.push id conn.expected;
        Mutex.unlock conn.m;
        Mutex.unlock t.routes_m
    end

let reader_loop t conn =
  let fr = Framing.of_fd ~max_line:t.max_line conn.fd in
  let rec loop () =
    match Framing.next fr with
    | Framing.Eof -> ()
    | Framing.Overlong n ->
      conn_write conn
        (Protocol.error_line ~error:"overlong-line"
           ~message:(Protocol.overlong_message ~bytes_discarded:n ~limit:t.max_line));
      loop ()
    | Framing.Line line ->
      let s = String.trim line in
      if String.length s = 0 || s.[0] = '#' then loop ()
      else begin
        (match Protocol.admin_of_line s with
        | Some Protocol.Stats ->
          conn_write conn (Fpc_util.Jsonout.to_string (stats_json t))
        | Some Protocol.Shutdown ->
          conn_write conn Protocol.draining_line;
          request_drain t
        | None -> handle_job t conn s);
        loop ()
      end
  in
  loop ()

let writer_loop t conn =
  let rec next_result () =
    Mutex.lock conn.m;
    let rec wait () =
      if Queue.is_empty conn.expected then
        if conn.no_more then None
        else begin
          Condition.wait conn.cond conn.m;
          wait ()
        end
      else
        let id = Queue.peek conn.expected in
        match Hashtbl.find_opt conn.ready id with
        | Some r ->
          Hashtbl.remove conn.ready id;
          ignore (Queue.pop conn.expected);
          Some r
        | None ->
          Condition.wait conn.cond conn.m;
          wait ()
    in
    let r = wait () in
    Mutex.unlock conn.m;
    match r with
    | None -> ()
    | Some r ->
      conn_write conn
        (Fpc_util.Jsonout.to_string (Job.result_to_json ~times:t.times r));
      next_result ()
  in
  next_result ()

let shutdown_receive fd =
  try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ()

let serve_connection t fd =
  let conn =
    {
      c_id = Atomic.fetch_and_add t.conn_ids 1;
      fd;
      m = Mutex.create ();
      cond = Condition.create ();
      expected = Queue.create ();
      ready = Hashtbl.create 16;
      no_more = false;
      out_m = Mutex.create ();
      dead = false;
    }
  in
  Mutex.lock t.live_m;
  Hashtbl.replace t.live conn.c_id conn;
  Mutex.unlock t.live_m;
  (* A drain may have swept [live] between our pop and the registration
     above; re-check so this connection's read side is shut too. *)
  if Atomic.get t.stopping then shutdown_receive fd;
  let writer = Thread.create (fun () -> writer_loop t conn) () in
  (try reader_loop t conn with _ -> ());
  Mutex.lock conn.m;
  conn.no_more <- true;
  Condition.signal conn.cond;
  Mutex.unlock conn.m;
  Thread.join writer;
  Mutex.lock t.live_m;
  Hashtbl.remove t.live conn.c_id;
  Mutex.unlock t.live_m;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Limiter.release_connection t.limiter

let handler_loop t =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.conn_queue do
      Condition.wait t.qc t.qm
    done;
    let item = Queue.pop t.conn_queue in
    Mutex.unlock t.qm;
    match item with
    | None -> ()
    | Some fd ->
      (if Atomic.get t.stopping then begin
         (* accepted before the drain, never served: shed, don't wedge *)
         (try write_all fd (Protocol.shed_line ~message:"server is draining" ^ "\n")
          with Unix.Unix_error _ | Sys_error _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Limiter.release_connection t.limiter
       end
       else serve_connection t fd);
      loop ()
  in
  loop ()

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ t.listen_fd; t.pipe_rd ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        if Atomic.get t.stopping || List.mem t.pipe_rd readable then ()
        else begin
          (match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            ()
          | fd, _ ->
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            if Limiter.try_admit_connection t.limiter then begin
              Mutex.lock t.qm;
              Queue.push (Some fd) t.conn_queue;
              Condition.signal t.qc;
              Mutex.unlock t.qm
            end
            else begin
              (try
                 write_all fd
                   (Protocol.shed_line ~message:"connection limit reached" ^ "\n")
               with Unix.Unix_error _ | Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end);
          loop ()
        end
  in
  loop ();
  (* Drain begins: stop listening, wake every blocked reader by shutting
     the read side of live connections (their in-flight jobs still
     flush), and release the handler threads. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.live_m;
  Hashtbl.iter (fun _ conn -> shutdown_receive conn.fd) t.live;
  Mutex.unlock t.live_m;
  Mutex.lock t.qm;
  Array.iter (fun _ -> Queue.push None t.conn_queue) t.handlers;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      invalid_arg (Printf.sprintf "Server.create: cannot resolve host %S" host))

let create ?(host = "127.0.0.1") ?(port = 0) ?domains ?max_connections
    ?max_pending ?(max_line = Framing.default_max_line) ?(times = true)
    ?(tier = Fpc_svc.Job.Auto) () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let limiter = Limiter.create ?max_connections ?max_pending () in
  let routes = Hashtbl.create 64 in
  let routes_m = Mutex.create () in
  (* The zero-copy handoff: the worker domain hands the result record to
     the owning connection and pokes its writer.  Runs on the execution
     path, so it is a couple of table operations under short locks. *)
  let deliver (r : Job.result) =
    Limiter.release_job limiter;
    Mutex.lock routes_m;
    (match Hashtbl.find_opt routes r.Job.id with
    | Some conn ->
      Hashtbl.remove routes r.Job.id;
      Mutex.lock conn.m;
      Hashtbl.replace conn.ready r.Job.id r;
      Condition.signal conn.cond;
      Mutex.unlock conn.m
    | None -> ());
    Mutex.unlock routes_m
  in
  let pool = Pool.create ?domains ~deliver () in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (resolve_host host, port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Pool.shutdown pool;
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let pipe_rd, pipe_wr = Unix.pipe () in
  let t =
    {
      pool;
      limiter;
      listen_fd;
      port;
      pipe_rd;
      pipe_wr;
      stopping = Atomic.make false;
      times;
      tier;
      max_line;
      conn_queue = Queue.create ();
      qm = Mutex.create ();
      qc = Condition.create ();
      routes;
      routes_m;
      live = Hashtbl.create 16;
      live_m = Mutex.create ();
      conn_ids = Atomic.make 0;
      server_metrics = Metrics.create ~domains:1;
      sm_m = Mutex.create ();
      acceptor = None;
      handlers = [||];
    }
  in
  let n_handlers = (Limiter.stats limiter).Limiter.max_connections in
  t.handlers <- Array.init n_handlers (fun _ -> Thread.create handler_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let wait t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  Array.iter Thread.join t.handlers;
  Pool.drain t.pool;
  let snap = snapshot_now t in
  Pool.shutdown t.pool;
  (try Unix.close t.pipe_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_wr with Unix.Unix_error _ -> ());
  snap
