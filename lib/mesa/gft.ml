open Fpc_machine

let capacity = 1024

type t = { mem : Memory.t; base : int }

let create ~mem ~base =
  if base + capacity > Memory.size mem then invalid_arg "Gft.create: table beyond memory";
  { mem; base }

let base t = t.base

let pack_entry ~gf_addr ~bias =
  if gf_addr land 3 <> 0 || gf_addr < 0 || gf_addr > 0xFFFF then
    invalid_arg (Printf.sprintf "Gft.pack_entry: bad global frame address %d" gf_addr);
  if bias < 0 || bias > 3 then invalid_arg "Gft.pack_entry: bias out of range";
  gf_addr lor bias

let unpack_entry w = (w land 0xFFFC, w land 3)

let check_gfi gfi =
  if gfi < 1 || gfi >= capacity then
    invalid_arg (Printf.sprintf "Gft: gfi %d out of range" gfi)

let set_entry t ~gfi ~gf_addr ~bias =
  check_gfi gfi;
  Memory.poke t.mem (t.base + gfi) (pack_entry ~gf_addr ~bias)

let read_entry_word t ~cost_mem_read ~gfi =
  check_gfi gfi;
  if cost_mem_read then Memory.read t.mem (t.base + gfi)
  else Memory.peek t.mem (t.base + gfi)

let read_entry t ~cost_mem_read ~gfi = unpack_entry (read_entry_word t ~cost_mem_read ~gfi)
