type align = Left | Right

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : string list list;
  mutable notes : string list;
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row: expected %d cells, got %d"
         (List.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let aligns = List.map snd t.columns in
  let fmt_row cells =
    let padded =
      List.map2 (fun (cell, align) w -> pad align w cell)
        (List.combine cells aligns) widths
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (fmt_row headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (fmt_row row ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)
let cell_int n = string_of_int n
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_pct ?(decimals = 1) f = Printf.sprintf "%.*f%%" decimals (100.0 *. f)
let cell_ratio ?(decimals = 2) f = Printf.sprintf "%.*fx" decimals f
