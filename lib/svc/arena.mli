(** Per-worker reusable execution contexts: reset-per-job instead of
    clone-per-job.

    The pool's original discipline gave every job a private
    {!Fpc_mesa.Image.clone} and a fresh {!Fpc_core.State.create} — a full
    64 K-word store copy plus a constellation of fresh arrays, stacks and
    hash tables, all minor-heap garbage the moment the job ended.  Under
    OCaml 5 every minor collection stops {e all} domains, so that garbage
    was not a private cost: it is what kept the pool from scaling.

    An arena keeps, per (cached image × engine) pair, one long-lived
    clone and one long-lived machine state.  A repeat job {e resets}
    them: the image blits back only the pages the previous run dirtied
    (tracked by {!Fpc_machine.Memory} at 256-word granularity), and the
    state rewinds its stacks, registers and meters in place.  The analogy
    is the classic allocator trick of reusing a pooled buffer instead of
    allocating: the steady-state cost becomes proportional to what the
    job {e touched}, not to the size of the machine.

    An arena is deliberately {b not} thread-safe — each worker domain
    owns exactly one and nothing else ever sees it, so the hot path has
    no lock, no atomic and (on a hit) no allocation beyond the few words
    the reset itself touches.

    Slots are keyed by the image cache's content key plus the engine
    name.  Content addressing makes slots safe across cache eviction:
    if the pristine is evicted and later recompiled, the new pristine is
    word-identical, so resetting an old slot from it is still exact. *)

type t

type slot
(** One reusable context: a private image clone plus a machine state. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 32) bounds the number of live slots; beyond it
    the least-recently-used slot is dropped (its image and state become
    garbage — correct, just no longer zero-allocation for that key). *)

val capacity : t -> int

val acquire :
  t ->
  key:string ->
  engine:Fpc_core.Engine.t ->
  engine_name:string ->
  ?tier_name:string ->
  pristine:Fpc_mesa.Image.t ->
  unit ->
  slot
(** Find or build the slot for [(key, engine_name, tier_name)].  On a
    hit the slot's image is reset from [pristine] (dirty pages only); on
    a miss a fresh clone and state are built and cached.  Either way the
    returned slot's image equals [pristine] word-for-word.  The slot's
    {e state} is not yet reset — build any tracer against {!image} first,
    then {!checkout}.  [key] must be [pristine]'s content key
    (see {!Image_cache.find_pristine}); [engine_name] distinguishes
    engine configurations sharing an image, and [tier_name] (default
    [""]) keeps compiled-tier slots — whose images carry the shared
    translation attachment — apart from interpreter-tier ones. *)

val image : slot -> Fpc_mesa.Image.t
(** The slot's private runnable image (for {!Fpc_interp.Profiler.create}
    and the interpreter). *)

val checkout : ?tracer:Fpc_trace.Sink.t -> slot -> Fpc_core.State.t
(** Reset the slot's state ({!Fpc_core.State.reset}) — stacks, registers,
    meters, link tables — and hand it back ready for
    [Fpc_core.Transfer.start].  Must be called after {!acquire} restored
    the image (the reset reinstalls I1's link tables into the store). *)

type stats = {
  hits : int;  (** acquisitions served by resetting an existing slot *)
  misses : int;  (** acquisitions that had to clone *)
  evictions : int;
  entries : int;  (** currently cached slots *)
  pages_blitted : int;
      (** dirty 256-word pages restored across all hits — the work the
          reset actually did, versus a full store copy per job *)
}

val stats : t -> stats
