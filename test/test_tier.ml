(* The compiled tier's contract: bit-identical to the interpreter — on
   outcome, output, every simulated meter, traps, fuel slicing and (under
   a tracer) the per-procedure profile — across all four engines, for the
   whole suite and for random synthetic programs.  The speedup is allowed
   to vary; the semantics are not. *)

let engines () =
  [
    ("i1", Fpc_core.Engine.i1);
    ("i2", Fpc_core.Engine.i2);
    ("i3", Fpc_core.Engine.i3 ());
    ("i4", Fpc_core.Engine.i4 ());
  ]

let image_for ~engine source =
  match Fpc_compiler.Compile.image_for_engine ~engine source with
  | Ok image -> image
  | Error m -> Alcotest.fail ("compile: " ^ m)

let boot ?tracer ~engine image =
  Fpc_interp.Interp.boot ?tracer ~image ~engine ~instance:"Main" ~proc:"main"
    ~args:[] ()

(* Everything observable about a finished run: the interpreter outcome
   record plus the metrics the outcome does not fold in.  The tier's own
   host-speed counters (the tier_ fields) are deliberately excluded —
   they are the only fields allowed to differ. *)
let observe (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( Fpc_interp.Interp.outcome st,
    ( m.jumps_taken,
      m.local_refs,
      m.global_refs,
      m.indirect_refs,
      m.arg_words_stored,
      m.arg_words_renamed,
      m.call_depth ) )

let interp_observe ?handler ~engine ~max_steps source =
  let image = image_for ~engine source in
  (match handler with
  | Some proc ->
    Fpc_mesa.Image.set_trap_handler image
      (Fpc_mesa.Image.descriptor_of image ~instance:"Main" ~proc)
  | None -> ());
  let st = boot ~engine image in
  Fpc_interp.Interp.run ~max_steps st;
  observe st

let tier_observe ?handler ~engine ~max_steps source =
  let image = image_for ~engine source in
  (match handler with
  | Some proc ->
    Fpc_mesa.Image.set_trap_handler image
      (Fpc_mesa.Image.descriptor_of image ~instance:"Main" ~proc)
  | None -> ());
  let st = boot ~engine image in
  let tier, hit = Fpc_tier.Tier.of_image image in
  let tier2, hit2 = Fpc_tier.Tier.of_image image in
  Alcotest.(check bool) "first of_image builds" false hit;
  Alcotest.(check bool) "second of_image reuses" true hit2;
  Alcotest.(check bool) "cached translation is shared" true (tier == tier2);
  Fpc_tier.Tier.run ~max_steps tier st;
  (observe st, st.metrics)

let check_equiv ?handler ?(max_steps = 2_000_000) ~name source =
  List.iter
    (fun (en, engine) ->
      let reference = interp_observe ?handler ~engine ~max_steps source in
      let got, _m = tier_observe ?handler ~engine ~max_steps source in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: tier == interp" name en)
        true
        (got = reference))
    (engines ())

(* ---- whole-suite equivalence, all four engines ---- *)

let test_suite_equivalence () =
  List.iter
    (fun prog -> check_equiv ~name:prog (Fpc_workload.Programs.find prog))
    Fpc_workload.Programs.names

(* The fast path must actually engage: fib is straight-line enough that
   most retired instructions should ride fused superinstructions. *)
let test_fusion_engages () =
  let src = Fpc_workload.Programs.find "fib" in
  let _obs, m = tier_observe ~engine:Fpc_core.Engine.i2 ~max_steps:2_000_000 src in
  Alcotest.(check bool) "fast-path instructions retired" true
    (m.Fpc_core.State.tier_fast_instrs > 0);
  Alcotest.(check bool) "superinstructions retired" true
    (m.Fpc_core.State.tier_super_instrs > 0);
  Alcotest.(check bool) "fast path dominates" true
    (2 * m.Fpc_core.State.tier_fast_instrs > m.Fpc_core.State.instructions)

(* ---- traps ---- *)

let div_zero_src =
  "MODULE Main;\nPROC f(n: INT): INT =\n  RETURN n / (n - n);\nEND;\n\
   PROC main() =\n  OUTPUT f(7);\nEND;\nEND;\n"

let handled_trap_src =
  "MODULE Main;\n\
   PROC handler(code: INT) =\n  OUTPUT 9000 + code;\n  STOP;\nEND;\n\
   PROC f(n: INT): INT =\n  RETURN n / (n - n);\nEND;\n\
   PROC main() =\n  OUTPUT f(7);\nEND;\nEND;\n"

let test_trap_equivalence () =
  (* Uncaught: the machine parks in [Trapped Div_zero] mid-block. *)
  check_equiv ~name:"div-zero-fatal" div_zero_src;
  (* Caught: the trap XFERs into the handler — a deopt at an exact
     boundary with the handler observing exact meters. *)
  check_equiv ~handler:"handler" ~name:"div-zero-handled" handled_trap_src

(* ---- fuel expiry and slicing ---- *)

let infinite_loop_src =
  "MODULE Main;\nPROC main() =\n  VAR i: INT := 0;\n  WHILE TRUE DO\n    i := i + 1;\n  END;\nEND;\nEND;\n"

let test_fuel_exhaustion_equivalence () =
  (* Exact budgets, including ones that expire mid-superinstruction. *)
  List.iter
    (fun max_steps ->
      check_equiv ~max_steps
        ~name:(Printf.sprintf "fuel-%d" max_steps)
        infinite_loop_src)
    [ 1; 7; 100; 1_001; 50_000 ]

(* The pool's deadline path: run in slices, resetting [Step_limit]
   between them.  The tier must resume at the exact boundary where the
   previous slice ran out. *)
let run_sliced runner st ~fuel ~slice =
  let rec go remaining =
    let s = min slice remaining in
    runner ~max_steps:s st;
    match st.Fpc_core.State.status with
    | Fpc_core.State.Trapped Fpc_core.State.Step_limit when remaining > s ->
      st.Fpc_core.State.status <- Fpc_core.State.Running;
      go (remaining - s)
    | _ -> ()
  in
  if fuel > 0 then go fuel

let test_sliced_resume_equivalence () =
  List.iter
    (fun (prog, fuel, slice) ->
      let source =
        match prog with
        | `Suite p -> Fpc_workload.Programs.find p
        | `Inline s -> s
      in
      List.iter
        (fun (en, engine) ->
          let reference =
            let st = boot ~engine (image_for ~engine source) in
            run_sliced (fun ~max_steps st -> Fpc_interp.Interp.run ~max_steps st)
              st ~fuel ~slice;
            observe st
          in
          let got =
            let image = image_for ~engine source in
            let st = boot ~engine image in
            let tier, _ = Fpc_tier.Tier.of_image image in
            run_sliced (fun ~max_steps st -> Fpc_tier.Tier.run ~max_steps tier st)
              st ~fuel ~slice;
            observe st
          in
          Alcotest.(check bool)
            (Printf.sprintf "sliced %s/%s" en
               (match prog with `Suite p -> p | `Inline _ -> "loop"))
            true (got = reference))
        (engines ()))
    [
      (`Suite "fib", 2_000_000, 777);
      (`Inline infinite_loop_src, 20_000, 133);
    ]

(* ---- traced runs: the profile is part of the contract ---- *)

let profile_of runner ~engine source =
  let image = image_for ~engine source in
  let p = Fpc_interp.Profiler.create ~image ~engine () in
  let st = boot ~tracer:p.Fpc_interp.Profiler.sink ~engine image in
  runner image st;
  let o = Fpc_interp.Interp.outcome st in
  ignore
    (Fpc_trace.Profile.finish p.Fpc_interp.Profiler.profile
       ~cycles:o.Fpc_interp.Interp.o_cycles
       ~mem_refs:o.Fpc_interp.Interp.o_mem_refs);
  (observe st, Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile)

let test_traced_profile_equivalence () =
  List.iter
    (fun source ->
      List.iter
        (fun (en, engine) ->
          let ro, rp =
            profile_of
              (fun _image st -> Fpc_interp.Interp.run ~max_steps:500_000 st)
              ~engine source
          in
          let go, gp =
            profile_of
              (fun image st ->
                let tier, _ = Fpc_tier.Tier.of_image image in
                Fpc_tier.Tier.run ~max_steps:500_000 tier st)
              ~engine source
          in
          Alcotest.(check bool) ("traced outcome/" ^ en) true (go = ro);
          Alcotest.(check bool) ("traced profile/" ^ en) true (gp = rp))
        (engines ()))
    [ Fpc_workload.Programs.find "fib"; div_zero_src ]

(* ---- the differential property: random programs, all engines ---- *)

let tier_differential_prop =
  QCheck.Test.make ~count:40
    ~name:"compiled tier == interpreter on random programs (all engines)"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 10_000))
    (fun seed ->
      (* odd seeds add coroutine round-trips so the same differential
         sweep also covers non-LIFO XFER and RETCTX; every third seed
         tilts call-dense so fusable and unfusable call shapes both
         appear (rate 0.0 keeps the historical programs byte-identical) *)
      let coroutine_rate = if seed mod 2 = 0 then 0.0 else 0.5 in
      let leaf_call_rate = if seed mod 3 = 0 then 0.0 else 0.4 in
      let source =
        Fpc_workload.Synthetic.random_program ~coroutine_rate ~leaf_call_rate
          ~seed ()
      in
      List.for_all
        (fun (en, engine) ->
          let reference = interp_observe ~engine ~max_steps:300_000 source in
          let got, _ = tier_observe ~engine ~max_steps:300_000 source in
          if got <> reference then
            QCheck.Test.fail_reportf "seed %d diverged under %s" seed en
          else
            let r_traced, r_prof =
              profile_of
                (fun _image st -> Fpc_interp.Interp.run ~max_steps:300_000 st)
                ~engine source
            in
            let g_traced, g_prof =
              profile_of
                (fun image st ->
                  let tier, _ = Fpc_tier.Tier.of_image image in
                  Fpc_tier.Tier.run ~max_steps:300_000 tier st)
                ~engine source
            in
            if (g_traced, g_prof) <> (r_traced, r_prof) then
              QCheck.Test.fail_reportf "seed %d traced run diverged under %s"
                seed en
            else true)
        (engines ()))

(* ---- cross-call fusion engages on the call-dense kernels ---- *)

(* Every engine must retire fused calls on the kernels built for them —
   coverage is exact (simulated counters), so this pins the optimisation
   on rather than trusting the wall clock. *)
let test_fused_calls_engage () =
  List.iter
    (fun prog ->
      let src = Fpc_workload.Programs.find prog in
      List.iter
        (fun (en, engine) ->
          let _obs, m = tier_observe ~engine ~max_steps:2_000_000 src in
          let label what = Printf.sprintf "%s/%s: %s" prog en what in
          Alcotest.(check bool) (label "fused calls retired") true
            (m.Fpc_core.State.tier_fused_calls > 0);
          Alcotest.(check bool) (label "fused within calls") true
            (m.Fpc_core.State.tier_fused_calls <= m.Fpc_core.State.calls))
        (engines ()))
    Fpc_workload.Programs.call_dense;
  (* The fully-fusable kernels reach 100% coverage: every call retires
     through a spliced leaf. *)
  List.iter
    (fun prog ->
      let src = Fpc_workload.Programs.find prog in
      let _obs, m =
        tier_observe ~engine:Fpc_core.Engine.i2 ~max_steps:2_000_000 src
      in
      Alcotest.(check int)
        (prog ^ ": full fused-call coverage")
        m.Fpc_core.State.calls m.Fpc_core.State.tier_fused_calls)
    [ "fibleaf"; "xleaf"; "polyleaf" ]

(* ---- lazy per-procedure translation ---- *)

(* A procedure nothing calls must never be translated; procedures are
   translated on first entry (cold) and found already filled on the next
   run over the shared attachment (warm). *)
let lazy_src =
  "MODULE Main;\n\
   PROC used(x: INT): INT =\n  RETURN x + 1;\nEND;\n\
   PROC unused(x: INT): INT =\n  RETURN x * 37;\nEND;\n\
   PROC main() =\n  OUTPUT used(41);\nEND;\nEND;\n"

let test_lazy_translation () =
  let engine = Fpc_core.Engine.i2 in
  let image = image_for ~engine lazy_src in
  let tier, _ = Fpc_tier.Tier.of_image image in
  Alcotest.(check int) "nothing translated at attach" 0
    (Fpc_tier.Tier.procs_translated tier);
  let cold = boot ~engine image in
  Fpc_tier.Tier.run tier cold;
  Alcotest.(check bool) "cold run translates on entry" true
    (cold.Fpc_core.State.metrics.Fpc_core.State.tier_lazy_translations > 0);
  Alcotest.(check bool) "translation count < procedure count" true
    (Fpc_tier.Tier.procs_translated tier < Fpc_tier.Tier.procs tier);
  let warm = boot ~engine image in
  Fpc_tier.Tier.run tier warm;
  Alcotest.(check int) "warm run translates nothing" 0
    (warm.Fpc_core.State.metrics.Fpc_core.State.tier_lazy_translations);
  Alcotest.(check bool) "both runs halted" true
    (cold.Fpc_core.State.status = Fpc_core.State.Halted
    && warm.Fpc_core.State.status = Fpc_core.State.Halted)

(* ---- relink after translate: the deopt protocol ---- *)

(* External-linkage conventions for every engine, so each has a live LV
   table to rebind mid-run. *)
let relink_engines () =
  [
    ("i1", Fpc_core.Engine.i1, Fpc_compiler.Convention.external_);
    ("i2", Fpc_core.Engine.i2, Fpc_compiler.Convention.external_);
    ("i3", Fpc_core.Engine.i3 (), Fpc_compiler.Convention.external_);
    ( "i4",
      Fpc_core.Engine.i4 (),
      Fpc_compiler.Convention.banked ~linkage:Fpc_mesa.Image.External () );
  ]

let relink_source ~n ~c =
  Printf.sprintf
    "MODULE Lib;\n\
     PROC inc(x: INT): INT =\n  RETURN x + %d;\nEND;\n\
     PROC trip(x: INT): INT =\n  RETURN x * 3 + 1;\nEND;\nEND;\n\n\
     MODULE Main;\nIMPORT Lib;\n\
     PROC main() =\n\
     \  VAR acc: INT := 1;\n\
     \  VAR i: INT := 0;\n\
     \  WHILE i < %d DO\n\
     \    acc := Lib.inc(acc);\n\
     \    i := i + 1;\n\
     \  END;\n\
     \  OUTPUT acc;\n\
     END;\nEND;\n"
    c n

let relink_image ~convention source =
  match Fpc_compiler.Compile.image ~convention source with
  | Ok image -> image
  | Error m -> Alcotest.fail ("relink compile: " ^ m)

let lv_index_of image ~instance ~target =
  let ii = Fpc_mesa.Image.find_instance image instance in
  let imports = ii.Fpc_mesa.Image.ii_imports in
  let rec go i =
    if i >= Array.length imports then
      Alcotest.fail "relink: import not found"
    else if imports.(i) = target then i
    else go (i + 1)
  in
  go 0

(* Pause the run at [pause] retired instructions, re-point Main's import
   of Lib.inc at Lib.trip, and continue to completion. *)
let run_with_relink ~pause runner image (st : Fpc_core.State.t) =
  runner ~max_steps:pause st;
  (match st.status with
  | Fpc_core.State.Trapped Fpc_core.State.Step_limit ->
    st.status <- Fpc_core.State.Running
  | _ -> ());
  let lv_index = lv_index_of image ~instance:"Main" ~target:("Lib", "inc") in
  (match st.simple with
  | Some sl ->
    Fpc_core.Simple_links.rebind sl image ~instance:"Main" ~lv_index
      ~target:("Lib", "trip")
  | None ->
    Fpc_mesa.Linker.rebind_lv image ~instance:"Main" ~lv_index
      ~target:("Lib", "trip"));
  runner ~max_steps:2_000_000 st

let relink_deopt_prop =
  QCheck.Test.make ~count:25
    ~name:"mid-run relink deopts cleanly (all engines, both tiers)"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 10_000))
    (fun seed ->
      let n = 40 + (seed mod 120) in
      let c = 1 + (seed mod 9) in
      let pause = 20 + (7 * seed mod 700) in
      let source = relink_source ~n ~c in
      List.for_all
        (fun (en, engine, convention) ->
          let reference =
            let image = relink_image ~convention source in
            let st = boot ~engine image in
            run_with_relink ~pause
              (fun ~max_steps st -> Fpc_interp.Interp.run ~max_steps st)
              image st;
            observe st
          in
          let image = relink_image ~convention source in
          let st = boot ~engine image in
          let tier, _ = Fpc_tier.Tier.of_image image in
          run_with_relink ~pause
            (fun ~max_steps st -> Fpc_tier.Tier.run ~max_steps tier st)
            image st;
          if observe st <> reference then
            QCheck.Test.fail_reportf "seed %d relink diverged under %s" seed en
          else true)
        (relink_engines ()))

(* The deterministic half of the protocol: the rebind really lands (the
   output changes) and really invalidates the baked resolutions. *)
let test_relink_invalidates () =
  let convention = Fpc_compiler.Convention.external_ in
  let engine = Fpc_core.Engine.i2 in
  let source = relink_source ~n:50 ~c:1 in
  let plain =
    let image = relink_image ~convention source in
    let st = boot ~engine image in
    let tier, _ = Fpc_tier.Tier.of_image image in
    Fpc_tier.Tier.run tier st;
    Fpc_core.State.output st
  in
  let image = relink_image ~convention source in
  let st = boot ~engine image in
  let tier, _ = Fpc_tier.Tier.of_image image in
  Alcotest.(check bool) "fusion valid before relink" true
    (Fpc_tier.Tier.fusion_valid tier);
  run_with_relink ~pause:100
    (fun ~max_steps st -> Fpc_tier.Tier.run ~max_steps tier st)
    image st;
  Alcotest.(check bool) "relink invalidated fused resolutions" false
    (Fpc_tier.Tier.fusion_valid tier);
  Alcotest.(check bool) "invalidation counted" true
    (Fpc_tier.Tier.invalidations tier > 0);
  Alcotest.(check bool) "rebound run halts" true
    (st.Fpc_core.State.status = Fpc_core.State.Halted);
  Alcotest.(check bool) "rebind changed the output" true
    (Fpc_core.State.output st <> plain)

(* ---- translation bookkeeping ---- *)

let test_translation_shape () =
  let src = Fpc_workload.Programs.find "fib" in
  let image = image_for ~engine:Fpc_core.Engine.i2 src in
  let tier = Fpc_tier.Tier.translate image in
  Alcotest.(check bool) "has boundaries" true (Fpc_tier.Tier.boundaries tier > 0);
  Alcotest.(check bool) "has fused blocks" true
    (Fpc_tier.Tier.fused_boundaries tier > 0);
  Alcotest.(check bool) "fused subset of boundaries" true
    (Fpc_tier.Tier.fused_boundaries tier <= Fpc_tier.Tier.boundaries tier);
  (* A clone shares the pristine image's attached translation. *)
  let t1, _ = Fpc_tier.Tier.of_image image in
  let clone = Fpc_mesa.Image.clone image in
  let t2, hit = Fpc_tier.Tier.of_image clone in
  Alcotest.(check bool) "clone hits the shared translation" true hit;
  Alcotest.(check bool) "same translation object" true (t1 == t2)

let () =
  Alcotest.run "tier"
    [
      ( "equivalence",
        [
          Alcotest.test_case "whole suite, all engines" `Slow
            test_suite_equivalence;
          Alcotest.test_case "fusion engages on fib" `Quick test_fusion_engages;
          Alcotest.test_case "traps, caught and fatal" `Quick
            test_trap_equivalence;
          Alcotest.test_case "fuel exhaustion at exact budgets" `Quick
            test_fuel_exhaustion_equivalence;
          Alcotest.test_case "sliced resume (deadline path)" `Quick
            test_sliced_resume_equivalence;
          Alcotest.test_case "traced profiles" `Slow
            test_traced_profile_equivalence;
          QCheck_alcotest.to_alcotest tier_differential_prop;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "fused calls engage (call-dense suite)" `Quick
            test_fused_calls_engage;
          Alcotest.test_case "relink invalidates fused resolutions" `Quick
            test_relink_invalidates;
          QCheck_alcotest.to_alcotest relink_deopt_prop;
        ] );
      ( "translation",
        [
          Alcotest.test_case "shape and sharing" `Quick test_translation_shape;
          Alcotest.test_case "lazy per-procedure translation" `Quick
            test_lazy_translation;
        ] );
    ]
