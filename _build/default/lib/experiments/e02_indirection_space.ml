(** E2 — the space arithmetic of table indirection (§5, point T1).

    "If the full address takes f bits, the table index takes i bits, and
    the address is used n times, then the space changes from nf to ni+f.
    For example, if n=3, i=10 (1024 table entries) and f=32, then
    96-62 = 34 bits are saved, or about one-third."

    The analytic table sweeps (n, i, f); the measured table compares, on
    the real linked suite, the I1 full-width descriptor tables installed
    by {!Fpc_core.Simple_links} against the Mesa tables (LV + GFT + EV). *)

open Fpc_util

let analytic () =
  let t =
    Tablefmt.create ~title:"T1: n*f vs n*i+f bits per referenced object"
      ~columns:
        [
          ("uses n", Tablefmt.Right);
          ("index i", Tablefmt.Right);
          ("address f", Tablefmt.Right);
          ("direct n*f", Tablefmt.Right);
          ("indirect n*i+f", Tablefmt.Right);
          ("saved", Tablefmt.Right);
          ("saved frac", Tablefmt.Right);
        ]
  in
  let paper_row = ref 0.0 in
  List.iter
    (fun (n, i, f) ->
      let direct = n * f in
      let indirect = (n * i) + f in
      let saved = direct - indirect in
      let frac = Harness.ratio saved direct in
      if n = 3 && i = 10 && f = 32 then paper_row := frac;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int n;
          Tablefmt.cell_int i;
          Tablefmt.cell_int f;
          Tablefmt.cell_int direct;
          Tablefmt.cell_int indirect;
          Tablefmt.cell_int saved;
          Tablefmt.cell_pct frac;
        ])
    [
      (1, 10, 32); (2, 10, 32); (3, 10, 32); (5, 10, 32); (10, 10, 32);
      (3, 5, 32); (3, 14, 32); (3, 10, 16); (3, 10, 24);
    ];
  Tablefmt.add_note t "the paper's worked example is the (3, 10, 32) row";
  (t, !paper_row)

let measured () =
  let t =
    Tablefmt.create
      ~title:"Measured descriptor-table words: I1 full-width vs I2 packed"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("I1 table words", Tablefmt.Right);
          ("I2 LV words", Tablefmt.Right);
          ("I2 GFT+EV words", Tablefmt.Right);
          ("I1/I2 ratio", Tablefmt.Right);
        ]
  in
  let total1 = ref 0 and total2 = ref 0 in
  List.iter
    (fun program ->
      let image = Harness.image_of ~program () in
      let simple = Fpc_core.Simple_links.install image in
      let report = Fpc_mesa.Space.measure image in
      let i1 = Fpc_core.Simple_links.table_words simple in
      let gft_ev = report.gft_entries_used + (report.ev_bytes / 2) in
      let i2 = report.lv_words + gft_ev in
      total1 := !total1 + i1;
      total2 := !total2 + i2;
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int i1;
          Tablefmt.cell_int report.lv_words;
          Tablefmt.cell_int gft_ev;
          Tablefmt.cell_ratio (Harness.ratio i1 i2);
        ])
    [ "fib"; "callchain"; "leafcalls"; "processes" ];
  (t, Harness.ratio !total1 !total2)

let run () =
  let t1, paper_frac = analytic () in
  let t2, measured_ratio = measured () in
  {
    Exp.id = "E2";
    key = "indirection_space";
    title = "Space saved by table indirection";
    paper_claim =
      "n=3, i=10, f=32 saves 34 of 96 bits, about one-third (\xC2\xA75 T1)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2 ];
    headlines =
      [
        ("paper_example_saved_fraction", paper_frac);
        ("measured_i1_over_i2_table_words", measured_ratio);
      ];
  }
