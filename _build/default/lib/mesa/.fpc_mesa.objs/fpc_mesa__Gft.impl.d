lib/mesa/gft.ml: Fpc_machine Memory Printf
