lib/mesa/space.ml: Array Compiled Fpc_isa Fpc_machine Fpc_util Image List Memory String
