(** Pretty-printer producing valid mini-Mesa source: [parse (print ast)]
    yields [ast] again (the round-trip property tested by the suite). *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val module_to_string : Ast.module_decl -> string
val program_to_string : Ast.program -> string
