(** E9 — §7.3: why register banks rather than just a cache.

    "A register bank is faster than a cache... it is possible to read one
    register and write another in a single cycle, while two cycles are
    needed for a cache access"; "Half or more of all data memory
    references may be to local variables.  Removing this burden from the
    cache effectively doubles its bandwidth."

    We collect the data-reference stream of the compiled suite (engine I2,
    every local/global/pointer reference with its address), classify
    frame-region references, and replay the stream through a cache model
    twice: all references through the cache, and local-frame references
    diverted to one-cycle banks. *)

open Fpc_util
open Fpc_machine

let collect program =
  let engine = { Fpc_core.Engine.i2 with collect_data_trace = true } in
  let st = Harness.run_one ~engine ~program () in
  let layout = st.Fpc_core.State.image.Fpc_mesa.Image.layout in
  let refs =
    match st.Fpc_core.State.data_trace with
    | Some q -> List.of_seq (Queue.to_seq q)
    | None -> []
  in
  (layout, refs)

let run () =
  let params = Cost.default_params in
  let t =
    Tablefmt.create ~title:"Data references: cache alone vs banks + cache"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("data refs", Tablefmt.Right);
          ("frame-region share", Tablefmt.Right);
          ("cache-only cycles", Tablefmt.Right);
          ("banks+cache cycles", Tablefmt.Right);
          ("speedup", Tablefmt.Right);
          ("cache load shed", Tablefmt.Right);
        ]
  in
  let shares = ref [] and speedups = ref [] in
  List.iter
    (fun program ->
      let layout, refs = collect program in
      let total = List.length refs in
      let locals =
        List.length
          (List.filter (fun (a, _) -> Fpc_mesa.Layout.in_frame_region layout a) refs)
      in
      let share = Harness.ratio locals total in
      (* Pass 1: everything through one cache. *)
      let cache_all = Cache.create () in
      List.iter (fun (a, w) -> ignore (Cache.access cache_all ~address:a ~write:w)) refs;
      let cycles_all = Cache.cycles cache_all ~params in
      (* Pass 2: frame-region references served by banks at one cycle. *)
      let cache_rest = Cache.create () in
      let bank_cycles = ref 0 in
      List.iter
        (fun (a, w) ->
          if Fpc_mesa.Layout.in_frame_region layout a then
            bank_cycles := !bank_cycles + params.bank_ref_cycles
          else ignore (Cache.access cache_rest ~address:a ~write:w))
        refs;
      let cycles_banked = Cache.cycles cache_rest ~params + !bank_cycles in
      let speedup = Harness.ratio cycles_all cycles_banked in
      shares := share :: !shares;
      speedups := speedup :: !speedups;
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int total;
          Tablefmt.cell_pct share;
          Tablefmt.cell_int cycles_all;
          Tablefmt.cell_int cycles_banked;
          Tablefmt.cell_ratio speedup;
          Tablefmt.cell_pct share;
        ])
    Fpc_workload.Programs.sequential;
  Tablefmt.add_note t
    (Printf.sprintf
       "bank reference = %d cycle, cache hit = %d cycles (\xC2\xA77.3's \
        relationship); shed load = cache accesses eliminated"
       params.bank_ref_cycles params.cache_hit_cycles);
  let mean l =
    match l with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  {
    Exp.id = "E9";
    key = "bank_vs_cache";
    title = "Register banks vs a data cache";
    paper_claim =
      "half or more of data references are to locals; serving them from \
       banks frees the cache and wins on latency (\xC2\xA77.3)";
    tables = [ Tablefmt.render t ];
    headlines =
      [
        ("mean_local_share", mean !shares);
        ("mean_speedup", mean !speedups);
      ];
  }
