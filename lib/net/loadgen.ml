type report = {
  connections : int;
  pipeline : int;
  sent : int;
  answered : int;
  ok : int;
  failed : int;
  shed : int;
  in_flight_hwm : int;
  wall_s : float;
  jobs_per_sec : float;
  latency_us : Fpc_util.Histogram.t;
}

type thread_tally = {
  mutable t_sent : int;
  mutable t_ok : int;
  mutable t_failed : int;
  mutable t_shed : int;
  mutable t_hwm : int;
  t_latency : Fpc_util.Histogram.t;
}

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let classify tally line =
  if contains_sub line "\"status\":\"ok\"" then tally.t_ok <- tally.t_ok + 1
  else if contains_sub line "\"status\":\"shed\"" then
    tally.t_shed <- tally.t_shed + 1
  else tally.t_failed <- tally.t_failed + 1

(* One connection's run: keep up to [pipeline] requests on the wire,
   reading responses as they come.  [pipeline = 1] is the classic closed
   loop (send, wait, repeat).  Each response is timed against the send
   of the {e oldest} outstanding request — the server answers a
   connection's jobs in request order, so the pairing is exact. *)
let worker ~host ~port ~requests ~pipeline ~request_line tally =
  match Client.connect ~host ~port () with
  | exception Unix.Unix_error _ -> ()
  | client ->
    let stamps = Queue.create () in
    let sent = ref 0 and in_flight = ref 0 in
    (try
       while !sent < requests || !in_flight > 0 do
         while !in_flight < pipeline && !sent < requests do
           Client.send_line client request_line;
           Queue.push (Unix.gettimeofday ()) stamps;
           incr sent;
           incr in_flight;
           tally.t_sent <- tally.t_sent + 1;
           if !in_flight > tally.t_hwm then tally.t_hwm <- !in_flight
         done;
         match Client.recv_line client with
         | Some line ->
           let t0 = Queue.pop stamps in
           let us =
             int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6))
           in
           Fpc_util.Histogram.add tally.t_latency (max 0 us);
           classify tally line;
           decr in_flight
         | None -> raise Exit
       done
     with Exit | Unix.Unix_error _ | Sys_error _ -> ());
    Client.close client

let run ~host ~port ~connections ~requests ?(pipeline = 1) ~request_line () =
  if connections < 1 then invalid_arg "Loadgen.run: connections must be positive";
  if pipeline < 1 then invalid_arg "Loadgen.run: pipeline must be positive";
  (* Fail fast (and loudly) if the server is not there at all. *)
  let probe = Client.connect ~host ~port () in
  Client.close probe;
  let tallies =
    Array.init connections (fun _ ->
        {
          t_sent = 0;
          t_ok = 0;
          t_failed = 0;
          t_shed = 0;
          t_hwm = 0;
          t_latency = Fpc_util.Histogram.create ();
        })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.map
      (fun tally ->
        Thread.create
          (fun () -> worker ~host ~port ~requests ~pipeline ~request_line tally)
          ())
      tallies
  in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let latency_us = Fpc_util.Histogram.create () in
  let sent = ref 0 and ok = ref 0 and failed = ref 0 and shed = ref 0 in
  let hwm = ref 0 in
  Array.iter
    (fun tally ->
      sent := !sent + tally.t_sent;
      ok := !ok + tally.t_ok;
      failed := !failed + tally.t_failed;
      shed := !shed + tally.t_shed;
      hwm := max !hwm tally.t_hwm;
      Fpc_util.Histogram.iter tally.t_latency (fun v c ->
          Fpc_util.Histogram.add_many latency_us v ~count:c))
    tallies;
  let answered = !ok + !failed + !shed in
  {
    connections;
    pipeline;
    sent = !sent;
    answered;
    ok = !ok;
    failed = !failed;
    shed = !shed;
    in_flight_hwm = !hwm;
    wall_s;
    jobs_per_sec = (if wall_s > 0.0 then float answered /. wall_s else 0.0);
    latency_us;
  }
