(** Word-addressed simulated main storage.

    The machine is the 16-bit-word Mesa-style processor of the paper.  All
    runtime structures — frames, the GFT, link vectors, entry vectors,
    global frames, the AV allocation vector, code segments — live in this
    one store, so the experiments measure real memory-reference counts
    rather than asserted ones.

    Two access planes are provided:
    - {e metered} ([read]/[write]): charge the supplied {!Cost.t}; used by
      the interpreter and runtime machinery.
    - {e unmetered} ([peek]/[poke]): free; used by the linker to build the
      initial image, by tests, and by display code.

    Code is byte-granular (instructions are 1–3 bytes): bytes are packed two
    per word, high byte first, addressed by a word-aligned [code_base] plus
    a byte offset — exactly the [code base + PC] addressing of §5. *)

type address = int
(** A word address. *)

type t

val create : ?cost:Cost.t -> size_words:int -> unit -> t
(** Fresh zeroed storage.  When [cost] is given, metered accesses charge it;
    it can be replaced later with {!set_cost}. *)

val clone : ?cost:Cost.t -> t -> t
(** An independent copy of the store: same contents, its own word array.
    Metered accesses on the copy charge [cost] (default: the original's
    meter).  This is what lets a linked image be cached and re-run — each
    execution works on a clone, leaving the pristine store untouched. *)

val size : t -> int
val set_cost : t -> Cost.t -> unit
val cost : t -> Cost.t option

(** {1 Metered access} *)

val read : t -> address -> int
val write : t -> address -> int -> unit
(** Values are truncated to 16 bits.  Out-of-range addresses raise
    [Invalid_argument]. *)

val read_code_byte : t -> code_base:address -> pc:int -> int
(** Fetch the byte at byte-offset [pc] from [code_base].  Charges one
    storage reference (the word containing the byte). *)

(** {1 Unmetered access} *)

val peek : t -> address -> int
val poke : t -> address -> int -> unit
val peek_code_byte : t -> code_base:address -> pc:int -> int
val poke_code_byte : t -> code_base:address -> pc:int -> int -> unit

val blit_bytes : t -> code_base:address -> bytes -> unit
(** Unmetered copy of a code segment's bytes into storage starting at
    [code_base] (byte offset 0). *)

val words_for_bytes : int -> int
(** Number of words needed to hold [n] code bytes. *)
