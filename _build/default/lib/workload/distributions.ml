let paper_call_density = 10.0
let paper_frame_p95_words = 40

(* Mixture: mostly small frames (a handful of locals), a modest band of
   medium frames, and a rare large tail.  Calibrated so the 95th
   percentile is 40 words. *)
let frame_payload_words rng =
  let open Fpc_util in
  let bucket = Prng.float rng in
  if bucket < 0.70 then Prng.int_in rng ~lo:2 ~hi:12
  else if bucket < 0.95 then Prng.int_in rng ~lo:13 ~hi:40
  else if bucket < 0.995 then Prng.int_in rng ~lo:41 ~hi:200
  else Prng.int_in rng ~lo:201 ~hi:1000

let sample_histogram ~seed ~samples =
  let open Fpc_util in
  let rng = Prng.create ~seed in
  let h = Histogram.create () in
  for _ = 1 to samples do
    Histogram.add h (frame_payload_words rng)
  done;
  h
