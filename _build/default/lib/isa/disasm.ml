let decode_range ~fetch ~start ~stop =
  let rec go pc acc =
    if pc >= stop then List.rev acc
    else
      let op, len = Opcode.decode ~fetch ~pc in
      go (pc + len) ((pc, op) :: acc)
  in
  go start []

let render listing =
  listing
  |> List.map (fun (pc, op) -> Printf.sprintf "%5d: %s" pc (Opcode.to_string op))
  |> String.concat "\n"

let of_bytes code =
  render
    (decode_range
       ~fetch:(fun i -> Char.code (Bytes.get code i))
       ~start:0 ~stop:(Bytes.length code))
