lib/workload/distributions.mli: Fpc_util
