(* A session-workload generator: the whole workload is one self-driving
   mini-Mesa program, so admission, think-time and completion are decided
   by machine instructions — identical under every engine and both tiers —
   rather than by host-side scheduling code whose interleaving could
   differ.  See sessions.mli for the lifecycle. *)

type config = {
  total : int;
  window : int;
  seed : int;
  think_lo : int;
  think_hi : int;
  depth_lo : int;
  depth_hi : int;
}

let default ~total =
  {
    total;
    window = 32;
    seed = 42;
    think_lo = 1;
    think_hi = 4;
    depth_lo = 1;
    depth_hi = 4;
  }

let validate c =
  if c.total < 1 then invalid_arg "Sessions: total < 1";
  if c.window < 1 then invalid_arg "Sessions: window < 1";
  if c.total > 30000 then invalid_arg "Sessions: total exceeds 16-bit counters";
  if c.think_lo < 1 || c.think_hi < c.think_lo then
    invalid_arg "Sessions: bad think range";
  if c.depth_lo < 0 || c.depth_hi < c.depth_lo then
    invalid_arg "Sessions: bad depth range"

(* All arithmetic in the generated program stays inside [0, 8191) so the
   16-bit signed machine words never wrap and MOD never sees a negative
   operand; the check word is updated commutatively (modular add) so its
   final value is independent of session interleaving.  A session commits
   its check contribution BEFORE bumping [finished]: main's exit condition
   is [finished = total], and a switch between the two statements is legal
   under any yield placement, so the reverse order would let main read the
   checksum with one session's contribution still pending. *)
let program c =
  validate c;
  let think_span = c.think_hi - c.think_lo + 1 in
  let depth_span = c.depth_hi - c.depth_lo + 1 in
  Printf.sprintf
    {|MODULE Main;
VAR started: INT := 0;
VAR finished: INT := 0;
VAR check: INT := 0;

PROC work(d: INT, x: INT): INT =
  IF d < 1 THEN
    RETURN (x + 1) MOD 8191;
  END;
  RETURN (work(d - 1, x + d) + d) MOD 8191;
END;

PROC peer(n: INT, x: INT): INT =
  VAR who: CONTEXT := RETCTX;
  VAR acc: INT := x MOD 8191;
  WHILE n > 1 DO
    acc := TRANSFER(who, (acc + 3) MOD 8191);
    who := RETCTX;
    n := n - 1;
  END;
  RETURN acc;
END;

PROC session(id: INT) =
  VAR r: INT := ((id MOD 251) * 13 + %d) MOD 997;
  VAR thinks: INT := %d + (r MOD %d);
  VAR d: INT := %d + ((r / 7) MOD %d);
  VAR x: INT := TRANSFER(@peer, thinks + 1, id MOD 8191);
  VAR co: CONTEXT := RETCTX;
  VAR i: INT := 0;
  VAR acc: INT := 0;
  WHILE i < thinks DO
    acc := (acc + work(d, x)) MOD 8191;
    x := TRANSFER(co, (x + i) MOD 8191);
    co := RETCTX;
    i := i + 1;
  END;
  check := (check + acc + x) MOD 8191;
  finished := finished + 1;
END;

PROC main() =
  WHILE started < %d DO
    IF started - finished < %d THEN
      FORK session(started);
      started := started + 1;
    ELSE
      YIELD;
    END;
  END;
  WHILE finished < %d DO
    YIELD;
  END;
  OUTPUT finished;
  OUTPUT check;
END;
END;
|}
    (c.seed mod 997) c.think_lo think_span c.depth_lo depth_span c.total
    c.window c.total

(* A dedicated per-session LIFO stack would have to reserve the worst
   case: the session frame, its peer frame (live for the whole
   conversation), and a full [work] chain at the deepest drawn depth.  The
   block sizes come from the compiled image's own frame-size indices —
   frame layout is convention-dependent (banked engines pad differently),
   so hand-counted payloads would understate some engines. *)
let worst_extent_words c ~image =
  validate c;
  let ladder =
    Fpc_frames.Alloc_vector.ladder image.Fpc_mesa.Image.allocator
  in
  let block proc =
    let info = Fpc_mesa.Image.find_proc image ~instance:"Main" ~proc in
    Fpc_frames.Size_class.block_words ladder info.Fpc_mesa.Image.pi_fsi
  in
  block "session" + block "peer" + ((c.depth_hi + 1) * block "work")
