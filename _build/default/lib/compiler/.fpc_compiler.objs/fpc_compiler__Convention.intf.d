lib/compiler/convention.mli: Fpc_core Fpc_mesa
