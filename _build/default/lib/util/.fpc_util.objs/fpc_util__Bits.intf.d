lib/util/bits.mli:
