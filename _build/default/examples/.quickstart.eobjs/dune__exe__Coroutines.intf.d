examples/coroutines.mli:
