lib/util/tablefmt.mli:
