lib/isa/builder.mli: Opcode
