type config = { line_words : int; sets : int; ways : int }

let default_config = { line_words = 4; sets = 64; ways = 2 }

type line = { mutable tag : int; mutable valid : bool; mutable age : int }

type t = {
  config : config;
  lines : line array array; (* sets x ways *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(config = default_config) () =
  if not (is_pow2 config.line_words && is_pow2 config.sets) then
    invalid_arg "Cache.create: line_words and sets must be powers of two";
  if config.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    config;
    lines =
      Array.init config.sets (fun _ ->
          Array.init config.ways (fun _ -> { tag = -1; valid = false; age = 0 }));
    clock = 0;
    hits = 0;
    misses = 0;
  }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let access t ~address ~write:_ =
  t.clock <- t.clock + 1;
  let line_bits = log2 t.config.line_words in
  let set_bits = log2 t.config.sets in
  let block = address lsr line_bits in
  let set_idx = block land ((1 lsl set_bits) - 1) in
  let tag = block lsr set_bits in
  let set = t.lines.(set_idx) in
  let rec find i =
    if i >= Array.length set then None
    else if set.(i).valid && set.(i).tag = tag then Some set.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some line ->
    line.age <- t.clock;
    t.hits <- t.hits + 1;
    `Hit
  | None ->
    (* Evict the least recently used way (an invalid line has age 0 and is
       therefore chosen first). *)
    let victim =
      Array.fold_left (fun best l -> if l.age < best.age then l else best)
        set.(0) set
    in
    victim.tag <- tag;
    victim.valid <- true;
    victim.age <- t.clock;
    t.misses <- t.misses + 1;
    `Miss

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let hit_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let cycles t ~params =
  let p : Cost.params = params in
  (t.hits * p.cache_hit_cycles)
  + (t.misses * (p.cache_hit_cycles + (p.mem_ref_cycles * t.config.line_words)))

let reset t =
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0;
  Array.iter
    (Array.iter (fun l ->
         l.valid <- false;
         l.tag <- -1;
         l.age <- 0))
    t.lines
