open Fpc_machine

type linkage = External | Direct | Short_direct

type proc_info = {
  pi_instance : string;
  pi_proc : string;
  pi_ev : int;
  pi_entry_offset : int;
  pi_direct_offset : int option;
  pi_fsi : int;
  pi_locals_words : int;
  pi_nargs : int;
  pi_body_bytes : int;
}

type instance_info = {
  ii_name : string;
  ii_module : string;
  ii_gfi : int;
  ii_gfi_count : int;
  mutable ii_gf_addr : int;
  mutable ii_lv_base : int;
  mutable ii_code_base : int;
  ii_imports : (string * string) array;
}

(* The OCaml-side directory: everything written at link time and read-only
   afterwards.  One directory is shared by a pristine image and all its
   clones — cloning an image copies simulated storage, never this. *)

type attachment = ..

type devirt_stats = {
  dv_sites : int;
  dv_proven : int;
  dv_rewritten : int;
  dv_short : int;
  dv_abstained : int;
}

type directory = {
  mutable instances : instance_info list;
  procs : (string * string, proc_info) Hashtbl.t;
  source : Compiled.t list;
  mutable code_cursor : int;
  mutable gfi_cursor : int;
  mutable predecode : Fpc_isa.Predecode.t option;
  mutable attachment : attachment option;
  mutable on_relink : (addr:int -> word:int -> unit) option;
  mutable devirt : devirt_stats option;
}

type t = {
  mem : Memory.t;
  cost : Cost.t;
  allocator : Fpc_frames.Alloc_vector.t;
  gft : Gft.t;
  layout : Layout.t;
  linkage : linkage;
  dir : directory;
  mutable static_cursor : int;
}

let predecode t =
  match t.dir.predecode with
  | Some pd -> pd
  | None ->
    (* Code bytes are fixed once linking is done, so the table is built
       over exactly the carved code region.  Racing domains may both
       build it; the tables are identical and either wins benignly. *)
    let lo = 2 * t.layout.Layout.code_region_base in
    let hi = 2 * t.dir.code_cursor in
    let fetch pc = Memory.peek_code_byte t.mem ~code_base:0 ~pc in
    let pd = Fpc_isa.Predecode.decode_range ~fetch ~lo ~hi in
    t.dir.predecode <- Some pd;
    pd

let clone t =
  (* Force the table on the source first: a cached pristine image pays
     the decode once and every per-execution clone shares it (the whole
     directory is shared — it is immutable once linked). *)
  ignore (predecode t);
  let cost = Cost.create ~params:(Cost.params t.cost) () in
  let mem = Memory.clone t.mem in
  Memory.set_cost mem cost;
  let layout = t.layout in
  let allocator =
    Fpc_frames.Alloc_vector.create ~mem
      ~ladder:(Fpc_frames.Alloc_vector.ladder t.allocator)
      ~av_base:layout.Layout.av_base ~heap_base:layout.Layout.heap_base
      ~heap_limit:layout.Layout.heap_limit ()
  in
  {
    mem;
    cost;
    allocator;
    gft = Gft.create ~mem ~base:(Gft.base t.gft);
    layout;
    linkage = t.linkage;
    dir = t.dir;
    static_cursor = t.static_cursor;
  }

let clone_into ~arena pristine =
  (* Reset-in-place: undo exactly what the last run wrote.  [arena] must
     be a clone of an image content-identical to [pristine] (same cache
     key ⇒ same deterministic compilation), so blitting back the dirty
     pages restores pristine storage; allocator and meter are recycled
     rather than reallocated. *)
  if Memory.size arena.mem <> Memory.size pristine.mem then
    invalid_arg "Image.clone_into: image size mismatch";
  (* The allocator reset pokes the class-head slots, so it must precede
     the store reset: the blit then restores those words from [pristine]
     (they are identical — empty free lists) and the image ends with a
     completely clean dirty bitmap. *)
  Fpc_frames.Alloc_vector.reset arena.allocator;
  Memory.reset_from arena.mem ~pristine:pristine.mem;
  Cost.reset arena.cost;
  arena.static_cursor <- pristine.static_cursor

let find_instance t name =
  match List.find_opt (fun i -> String.equal i.ii_name name) t.dir.instances with
  | Some i -> i
  | None -> raise Not_found

let find_proc t ~instance ~proc = Hashtbl.find t.dir.procs (instance, proc)

let find_module t name =
  match
    List.find_opt (fun (m : Compiled.t) -> String.equal m.m_name name) t.dir.source
  with
  | Some m -> m
  | None -> raise Not_found

let descriptor_of t ~instance ~proc =
  let ii = find_instance t instance in
  let pi = find_proc t ~instance ~proc in
  Descriptor.Proc { gfi = ii.ii_gfi + (pi.pi_ev / 32); ev = pi.pi_ev mod 32 }

let direct_address t ~instance ~proc =
  let ii = find_instance t instance in
  let pi = find_proc t ~instance ~proc in
  Option.map (fun off -> (ii.ii_code_base * 2) + off) pi.pi_direct_offset

let entry_byte_address t ~instance ~proc =
  let ii = find_instance t instance in
  let pi = find_proc t ~instance ~proc in
  (ii.ii_code_base * 2) + pi.pi_entry_offset

let set_trap_handler t d =
  Memory.poke t.mem t.layout.Layout.trap_handler_addr (Descriptor.pack d)

let trap_handler t =
  Descriptor.unpack (Memory.peek t.mem t.layout.Layout.trap_handler_addr)

let global_base = 2
let gf_code_base t ~instance = Memory.peek t.mem (find_instance t instance).ii_gf_addr

let alloc_static t ~words ~quad =
  let base = if quad then (t.static_cursor + 3) land lnot 3 else t.static_cursor in
  if base + words > t.layout.Layout.heap_base then
    invalid_arg "Image.alloc_static: static region exhausted";
  t.static_cursor <- base + words;
  base

let set_relink_hook t hook = t.dir.on_relink <- hook

let notify_relink t ~addr ~word =
  match t.dir.on_relink with
  | None -> ()
  | Some f -> f ~addr ~word

let alloc_code t ~words =
  let base = t.dir.code_cursor in
  if base + words > t.layout.Layout.memory_words then
    invalid_arg "Image.alloc_code: code region exhausted";
  t.dir.code_cursor <- base + words;
  base
