open Fpc_mesa

type t = { if_addr : int; if_slots : (string * string) array }

let fill image addr slots =
  Array.iteri
    (fun i (instance, proc) ->
      let d = Image.descriptor_of image ~instance ~proc in
      Fpc_machine.Memory.poke image.Image.mem (addr + i) (Descriptor.pack d))
    slots

let create (image : Image.t) ~slots =
  if Array.length slots = 0 then invalid_arg "Interface.create: empty interface";
  let addr = Image.alloc_static image ~words:(Array.length slots) ~quad:false in
  fill image addr slots;
  { if_addr = addr; if_slots = Array.copy slots }

let address t = t.if_addr

let slot_index t ~proc =
  let found = ref (-1) in
  Array.iteri
    (fun i (_, p) -> if !found < 0 && String.equal p proc then found := i)
    t.if_slots;
  if !found < 0 then raise Not_found else !found

let rebind (image : Image.t) t ~slot ~target:(instance, proc) =
  if slot < 0 || slot >= Array.length t.if_slots then
    invalid_arg "Interface.rebind: slot out of range";
  let d = Image.descriptor_of image ~instance ~proc in
  let word = Descriptor.pack d in
  Fpc_machine.Memory.poke image.Image.mem (t.if_addr + slot) word;
  Image.notify_relink image ~addr:(t.if_addr + slot) ~word;
  t.if_slots.(slot) <- (instance, proc)

let call_sequence t ~slot =
  if slot < 0 || slot >= Array.length t.if_slots then
    invalid_arg "Interface.call_sequence: slot out of range";
  [ Fpc_isa.Opcode.Li t.if_addr; Fpc_isa.Opcode.Ldfld slot; Fpc_isa.Opcode.Xf ]
