(** E1 — calls and returns as fast as unconditional jumps.

    Abstract/§1/§6: "simple Pascal-style calls and returns can be executed
    as fast as in the most specialized mechanism.  Indeed, they can be as
    fast as unconditional jumps at least 95% of the time."

    A transfer is {e at jump speed} when it completes with zero storage
    references — the only remaining cost is the IFU redirect, which is
    what a taken jump costs.  We run the call-intensive suite under each
    implementation.  Two of the five programs (ackermann, deep) are
    deliberate stressors of the paper's own caveat — "long runs of calls
    nearly uninterrupted by returns, or vice versa" (§7.1) — so the claim
    is reported both over typical programs and over everything. *)

open Fpc_util

let typical = [ "fib"; "callchain"; "leafcalls" ]
let stress = [ "ackermann"; "deep" ]

let run () =
  let open Fpc_machine in
  let t =
    Tablefmt.create ~title:"Call/return transfers at jump speed (0 storage refs)"
      ~columns:
        [
          ("engine", Tablefmt.Left);
          ("program", Tablefmt.Left);
          ("transfers", Tablefmt.Right);
          ("fast", Tablefmt.Right);
          ("fast fraction", Tablefmt.Right);
          ("refs/transfer", Tablefmt.Right);
          ("cycles/transfer", Tablefmt.Right);
        ]
  in
  let headline = ref [] in
  List.iter
    (fun (name, engine) ->
      let add_rows programs label =
        let fast = ref 0 and slow = ref 0 and refs = ref 0 and cycles = ref 0 in
        List.iter
          (fun (program, (st : Fpc_core.State.t)) ->
            let m = st.metrics in
            let tr = m.fast_transfers + m.slow_transfers in
            fast := !fast + m.fast_transfers;
            slow := !slow + m.slow_transfers;
            refs := !refs + Cost.mem_refs st.cost;
            cycles := !cycles + Cost.cycles st.cost;
            Tablefmt.add_row t
              [
                name;
                program;
                Tablefmt.cell_int tr;
                Tablefmt.cell_int m.fast_transfers;
                Tablefmt.cell_pct (Harness.ratio m.fast_transfers tr);
                Tablefmt.cell_float (Harness.ratio (Cost.mem_refs st.cost) tr);
                Tablefmt.cell_float (Harness.ratio (Cost.cycles st.cost) tr);
              ])
          (Harness.run_suite ~engine ~programs ());
        let transfers = !fast + !slow in
        let fraction = Harness.ratio !fast transfers in
        Tablefmt.add_row t
          [
            name;
            "= " ^ label;
            Tablefmt.cell_int transfers;
            Tablefmt.cell_int !fast;
            Tablefmt.cell_pct fraction;
            Tablefmt.cell_float (Harness.ratio !refs transfers);
            Tablefmt.cell_float (Harness.ratio !cycles transfers);
          ];
        fraction
      in
      let f_typical = add_rows typical "TYPICAL" in
      let f_stress = add_rows stress "deep-recursion stress" in
      headline :=
        (Printf.sprintf "fast_fraction_%s_typical" name, f_typical)
        :: (Printf.sprintf "fast_fraction_%s_stress" name, f_stress)
        :: !headline)
    Harness.engines;
  Tablefmt.add_note t
    "a transfer with zero storage references costs exactly an IFU redirect \
     = one taken jump; the stress programs manufacture the deep \
     uninterrupted call runs \xC2\xA77.1 calls rare";
  {
    Exp.id = "E1";
    key = "fastpath";
    title = "Calls as fast as unconditional jumps";
    paper_claim =
      "calls and returns can be as fast as unconditional jumps at least 95% \
       of the time (abstract, \xC2\xA71, \xC2\xA76-7)";
    tables = [ Tablefmt.render t ];
    headlines = List.rev !headline;
  }
