(** A unit of work for the execution service: what to run, on which
    engine, with how much fuel — and the structured result that comes
    back.

    A job's {e simulated} effects (OUTPUT words, instruction / cycle /
    storage-reference counts) are deterministic: they depend only on the
    spec, never on which domain ran the job, whether the image came from
    the {!Image_cache}, or how many workers the pool had.  Host-side
    timings ([compile_s], [run_s]) and [cache_hit] are observations about
    {e this} execution and are excluded from {!result_line} so that batch
    output is byte-identical at any domain count. *)

type source =
  | Suite of string  (** a built-in workload program, by name *)
  | Inline of string  (** mini-Mesa source text *)
  | Sessions of Fpc_workload.Sessions.config
      (** a generated session workload ({!Fpc_workload.Sessions.program});
          deterministic in the config, so its image caches like a suite
          program *)

(** Which execution strategy runs the job.  [Interp] is the dispatch-loop
    interpreter; [Compiled] is the threaded-code tier ({!Fpc_tier.Tier}),
    bit-identical on every simulated meter; [Auto] (the default) lets the
    pool choose — compiled, except for traced jobs, where the tier would
    deopt every instruction anyway. *)
type tier = Interp | Compiled | Auto

type spec = {
  source : source;
  engine : string;  (** "i1".."i4" (case-insensitive) *)
  tier : tier;
  fuel : int;  (** interpreter step budget; exhausting it fails the job *)
  trace : bool;  (** run under the XFER tracer, returning a profile summary *)
  deadline_ms : int option;
      (** wall-clock budget, measured from the start of execution.  The
          pool runs deadlined jobs in fuel slices and checks the clock
          between slices, so a hung or hot job degrades to
          [Failed Deadline_exceeded] instead of wedging a worker.  A job
          that completes within its current slice is returned even if it
          finished marginally late (slice granularity, not a host timer). *)
  sched : Fpc_sched.Sched.policy option;
      (** run under the green-thread scheduler ({!Fpc_sched.Sched.run})
          with this switching policy; any job may ask for it, and a
          [Sessions] job defaults to run-to-yield even without it *)
  devirt : bool option;
      (** run on a link-time-devirtualized image
          ({!Fpc_cfa.Cfa.devirtualize}): [None] leaves the choice to the
          service, whose default is {e on} — the pass only rewrites
          provably single-target sites, so outputs never change, only
          meters improve.  [Some false] forces the late-bound baseline
          (what the relink experiments need). *)
}

val default_fuel : int
(** 20 million steps, matching [fpc run]'s default. *)

val spec :
  ?engine:string ->
  ?tier:tier ->
  ?fuel:int ->
  ?trace:bool ->
  ?deadline_ms:int ->
  ?sched:Fpc_sched.Sched.policy ->
  ?devirt:bool ->
  source ->
  spec
(** Defaults: engine ["i2"], tier [Auto], fuel {!default_fuel}, trace
    [false], no deadline, no explicit scheduling policy, devirt left to
    the service (which defaults it on). *)

val effective_sched : spec -> Fpc_sched.Sched.policy option
(** The policy the pool will actually schedule under: the spec's own, or
    run-to-yield for a [Sessions] source, or none. *)

val tier_of_name : string -> (tier, string) Stdlib.result
(** ["interp"], ["compiled"] or ["auto"] (case-insensitive). *)

val tier_to_string : tier -> string

type error_kind =
  | Bad_request  (** unparseable request, unknown engine or suite program *)
  | Compile_error  (** lexer / parser / typechecker / linker rejection *)
  | Trapped of string  (** the machine trapped (div-zero, heap exhausted, ...) *)
  | Fuel_exhausted  (** the step budget ran out (runaway loop) *)
  | Deadline_exceeded  (** the wall-clock deadline fired mid-run *)
  | Internal  (** unexpected exception; a bug, but isolated to the job *)

val error_kind_to_string : error_kind -> string

type outcome =
  | Output of int list  (** halted normally; the OUTPUT words in order *)
  | Failed of error_kind * string

(** Whether the job ran on the compiled tier, and what the translation
    cost this execution: [hit] means the image's shared translation was
    already attached (translate-once, like predecode), so [translate_s]
    is just the lookup.  A host observation like [run_s] — the simulated
    meters are identical across tiers by construction.  The counts
    describe lazy translation and cross-call fusion: [lazy_translated]
    and [fused_calls] accrued during {e this} run; [procs],
    [procs_translated] and [invalidations] describe the shared
    translation as of this job's completion. *)
type translation =
  | No_translation  (** the job ran on the interpreter tier *)
  | Translated of {
      hit : bool;
      translate_s : float;
      lazy_translated : int;
      fused_calls : int;
      procs : int;
      procs_translated : int;
      invalidations : int;
    }

type stats = {
  cache_hit : bool;  (** the image came from the cache (no compile) *)
  compile_s : float;  (** host seconds spent compiling; 0.0 on a hit *)
  run_s : float;  (** host seconds spent executing *)
  minor_words : int;
      (** OCaml minor-heap words allocated executing this job (image
          reset/clone through boot, run and outcome extraction) — the
          arena's figure of merit.  A host observation like [run_s]: it
          depends on whether the worker's arena had a warm slot, so it is
          excluded from deterministic output ([result_line],
          [result_to_json ~times:false]). *)
  translation : translation;
  instructions : int;  (** simulated instructions executed *)
  cycles : int;  (** simulated cycles (the paper's cost model) *)
  mem_refs : int;  (** simulated storage references *)
  fastpath : Fpc_interp.Interp.fastpath;
      (** where the engine's fast paths hit and missed (deterministic) *)
  devirt_stats : Fpc_mesa.Image.devirt_stats option;
      (** what link-time devirtualization did to the image this job ran
          on: present iff the job's image was linked with the pass
          enabled.  Deterministic in the spec, but reported with the
          host-side fields ([result_to_json ~times:true] only) because
          which image variant ran is a service choice like the tier. *)
}

val no_stats : stats
(** All-zero stats, for jobs that failed before reaching the machine. *)

type result = {
  id : int;
  spec : spec;
  outcome : outcome;
  stats : stats;
  profile : Fpc_trace.Profile.summary option;
      (** present iff the spec asked for [trace] and the job reached the
          machine *)
  sched : Fpc_sched.Sched.report option;
      (** present iff the job ran under the scheduler; every field is a
          simulated meter, so it is as deterministic as [stats.fastpath] *)
}

val engine_of_name : string -> (Fpc_core.Engine.t, string) Stdlib.result

val source_text : source -> (string, string) Stdlib.result
(** The mini-Mesa text to compile; [Error] for an unknown suite name. *)

val source_label : source -> string
(** ["fib"] for a suite program, ["inline:<digest-prefix>"] for source
    text — a stable, short display name. *)

val outcome_equal : outcome -> outcome -> bool

(** {1 The request line format}

    [fpc serve] and [fpc batch] jobfiles use one line per job:
    whitespace-separated [key=value] fields.  Keys: [prog] (suite program
    name), [src] (inline source, with [\n] [\t] [\s] [\\] escapes for
    newline, tab, space and backslash) or [sessions] (session-workload
    total, with optional [window] and [seed]), plus optional [engine],
    [tier] (interp/compiled/auto), [fuel], [trace] (0/1: run under the
    XFER tracer), [deadline_ms] (wall-clock budget for the execution),
    [sched] (yield / preempt / preempt:N), [quantum] (preemption
    quantum in steps; requires [sched=preempt]) and [devirt] (0/1: force
    the link-time devirtualization pass off/on; omitted, the service
    default — on — applies).  Blank lines and lines starting with [#]
    are skipped by callers. *)

val parse_request : string -> (spec, string) Stdlib.result

val request_of_spec : spec -> string
(** Renders a spec back into a request line ([parse_request] inverse). *)

(** {1 Rendering results} *)

val result_line : result -> string
(** One-line, fully deterministic summary (no host timings, no cache
    bit): id, source label, engine, outcome, simulated counters. *)

val result_to_json : ?times:bool -> result -> Fpc_util.Jsonout.t
(** The full result as JSON.  [times:false] (default [true]) omits the
    host-time and cache-hit fields, leaving only deterministic ones. *)
