open Ast

exception Parse_error of string

type cursor = { toks : Lexer.positioned array; mutable pos : int }

let peek cur = cur.toks.(cur.pos).Lexer.tok

let fail cur msg =
  let p = cur.toks.(cur.pos) in
  raise
    (Parse_error
       (Printf.sprintf "%d:%d: %s (found %s)" p.Lexer.line p.Lexer.col msg
          (Lexer.token_to_string p.Lexer.tok)))

let advance cur = cur.pos <- cur.pos + 1

let eat_kw cur kw =
  match peek cur with
  | Lexer.KW k when String.equal k kw -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %s" kw)

let eat_punct cur p =
  match peek cur with
  | Lexer.PUNCT q when String.equal q p -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %S" p)

let try_punct cur p =
  match peek cur with
  | Lexer.PUNCT q when String.equal q p ->
    advance cur;
    true
  | _ -> false

let try_kw cur kw =
  match peek cur with
  | Lexer.KW k when String.equal k kw ->
    advance cur;
    true
  | _ -> false

let ident cur =
  match peek cur with
  | Lexer.IDENT s ->
    advance cur;
    s
  | _ -> fail cur "expected identifier"

let typ cur =
  match peek cur with
  | Lexer.KW "INT" ->
    advance cur;
    Tint
  | Lexer.KW "BOOL" ->
    advance cur;
    Tbool
  | Lexer.KW "CONTEXT" ->
    advance cur;
    Tcontext
  | Lexer.KW "ARRAY" -> (
    advance cur;
    match peek cur with
    | Lexer.INT_LIT n when n > 0 ->
      advance cur;
      eat_kw cur "OF";
      eat_kw cur "INT";
      Tarray n
    | _ -> fail cur "expected a positive array size")
  | _ -> fail cur "expected a type (INT, BOOL, CONTEXT or ARRAY)"

let callee_after_ident cur name =
  if try_punct cur "." then { c_module = Some name; c_proc = ident cur }
  else { c_module = None; c_proc = name }

(* ---------------- expressions ---------------- *)

let rec expr cur = or_level cur

and or_level cur =
  let lhs = ref (and_level cur) in
  while try_kw cur "OR" do
    lhs := Binop (Bor, !lhs, and_level cur)
  done;
  !lhs

and and_level cur =
  let lhs = ref (not_level cur) in
  while try_kw cur "AND" do
    lhs := Binop (Band, !lhs, not_level cur)
  done;
  !lhs

and not_level cur =
  if try_kw cur "NOT" then Unop (Unot, not_level cur) else comparison cur

and comparison cur =
  let lhs = additive cur in
  let op =
    match peek cur with
    | Lexer.PUNCT "<" -> Some Blt
    | Lexer.PUNCT "<=" -> Some Ble
    | Lexer.PUNCT "=" -> Some Beq
    | Lexer.PUNCT "#" -> Some Bne
    | Lexer.PUNCT ">=" -> Some Bge
    | Lexer.PUNCT ">" -> Some Bgt
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance cur;
    Binop (op, lhs, additive cur)

and additive cur =
  let lhs = ref (multiplicative cur) in
  let rec loop () =
    if try_punct cur "+" then begin
      lhs := Binop (Badd, !lhs, multiplicative cur);
      loop ()
    end
    else if try_punct cur "-" then begin
      lhs := Binop (Bsub, !lhs, multiplicative cur);
      loop ()
    end
  in
  loop ();
  !lhs

and multiplicative cur =
  let lhs = ref (unary cur) in
  let rec loop () =
    if try_punct cur "*" then begin
      lhs := Binop (Bmul, !lhs, unary cur);
      loop ()
    end
    else if try_punct cur "/" then begin
      lhs := Binop (Bdiv, !lhs, unary cur);
      loop ()
    end
    else if try_kw cur "MOD" then begin
      lhs := Binop (Bmod, !lhs, unary cur);
      loop ()
    end
  in
  loop ();
  !lhs

and unary cur = if try_punct cur "-" then Unop (Uneg, unary cur) else primary cur

and arg_list cur =
  eat_punct cur "(";
  if try_punct cur ")" then []
  else begin
    let rec more acc =
      let e = expr cur in
      if try_punct cur "," then more (e :: acc)
      else begin
        eat_punct cur ")";
        List.rev (e :: acc)
      end
    in
    more []
  end

and primary cur =
  match peek cur with
  | Lexer.INT_LIT v ->
    advance cur;
    Int v
  | Lexer.KW "TRUE" ->
    advance cur;
    Bool true
  | Lexer.KW "FALSE" ->
    advance cur;
    Bool false
  | Lexer.KW "NIL" ->
    advance cur;
    Nil
  | Lexer.KW "RETCTX" ->
    advance cur;
    Retctx
  | Lexer.KW "TRANSFER" -> (
    advance cur;
    match arg_list cur with
    | ctx :: values -> Transfer (ctx, values)
    | [] -> fail cur "TRANSFER needs a destination context")
  | Lexer.PUNCT "@" ->
    advance cur;
    let name = ident cur in
    ProcVal (callee_after_ident cur name)
  | Lexer.PUNCT "(" ->
    advance cur;
    let e = expr cur in
    eat_punct cur ")";
    e
  | Lexer.IDENT name -> (
    advance cur;
    let c = callee_after_ident cur name in
    match (peek cur, c.c_module) with
    | Lexer.PUNCT "(", _ -> Call (c, arg_list cur)
    | Lexer.PUNCT "[", None ->
      advance cur;
      let i = expr cur in
      eat_punct cur "]";
      Index (name, i)
    | _, Some _ -> fail cur "qualified name must be a call"
    | _, None -> Var name)
  | _ -> fail cur "expected an expression"

(* ---------------- statements ---------------- *)

let rec stmt_list cur ~stop =
  let stop_here () =
    match peek cur with
    | Lexer.KW k -> List.mem k stop
    | _ -> false
  in
  let rec loop acc = if stop_here () then List.rev acc else loop (stmt cur :: acc) in
  loop []

and stmt cur =
  match peek cur with
  | Lexer.KW "VAR" ->
    advance cur;
    let name = ident cur in
    eat_punct cur ":";
    let t = typ cur in
    let init = if try_punct cur ":=" then Some (expr cur) else None in
    eat_punct cur ";";
    Local (name, t, init)
  | Lexer.KW "IF" ->
    advance cur;
    let cond = expr cur in
    eat_kw cur "THEN";
    let then_ = stmt_list cur ~stop:[ "ELSE"; "END" ] in
    let else_ = if try_kw cur "ELSE" then stmt_list cur ~stop:[ "END" ] else [] in
    eat_kw cur "END";
    eat_punct cur ";";
    If (cond, then_, else_)
  | Lexer.KW "WHILE" ->
    advance cur;
    let cond = expr cur in
    eat_kw cur "DO";
    let body = stmt_list cur ~stop:[ "END" ] in
    eat_kw cur "END";
    eat_punct cur ";";
    While (cond, body)
  | Lexer.KW "RETURN" ->
    advance cur;
    let e = if try_punct cur ";" then None else Some (expr cur) in
    if e <> None then eat_punct cur ";";
    Return e
  | Lexer.KW "OUTPUT" ->
    advance cur;
    let e = expr cur in
    eat_punct cur ";";
    Output e
  | Lexer.KW "YIELD" ->
    advance cur;
    eat_punct cur ";";
    YieldS
  | Lexer.KW "STOP" ->
    advance cur;
    eat_punct cur ";";
    StopS
  | Lexer.KW "FORK" ->
    advance cur;
    let name = ident cur in
    let c = callee_after_ident cur name in
    let args = arg_list cur in
    eat_punct cur ";";
    ForkS (c, args)
  | Lexer.KW "TRANSFER" -> (
    advance cur;
    match arg_list cur with
    | ctx :: values ->
      eat_punct cur ";";
      TransferS (ctx, values)
    | [] -> fail cur "TRANSFER needs a destination context")
  | Lexer.IDENT name -> (
    advance cur;
    let c = callee_after_ident cur name in
    match peek cur with
    | Lexer.PUNCT "(" ->
      let args = arg_list cur in
      eat_punct cur ";";
      CallS (c, args)
    | Lexer.PUNCT ":=" when c.c_module = None ->
      advance cur;
      let e = expr cur in
      eat_punct cur ";";
      Assign (name, e)
    | Lexer.PUNCT "[" when c.c_module = None ->
      advance cur;
      let i = expr cur in
      eat_punct cur "]";
      eat_punct cur ":=";
      let e = expr cur in
      eat_punct cur ";";
      AssignIdx (name, i, e)
    | _ -> fail cur "expected \":=\", \"[\" or a call"
  )
  | _ -> fail cur "expected a statement"

(* ---------------- declarations ---------------- *)

let param cur =
  let var = try_kw cur "VAR" in
  let name = ident cur in
  eat_punct cur ":";
  let t = typ cur in
  { prm_name = name; prm_type = t; prm_var = var }

let proc_decl cur =
  eat_kw cur "PROC";
  let name = ident cur in
  eat_punct cur "(";
  let params =
    if try_punct cur ")" then []
    else begin
      let rec more acc =
        let p = param cur in
        if try_punct cur "," then more (p :: acc)
        else begin
          eat_punct cur ")";
          List.rev (p :: acc)
        end
      in
      more []
    end
  in
  let result = if try_punct cur ":" then Some (typ cur) else None in
  eat_punct cur "=";
  let body = stmt_list cur ~stop:[ "END" ] in
  eat_kw cur "END";
  eat_punct cur ";";
  { pr_name = name; pr_params = params; pr_result = result; pr_body = body }

let module_decl cur =
  eat_kw cur "MODULE";
  let name = ident cur in
  eat_punct cur ";";
  let imports = ref [] in
  while try_kw cur "IMPORT" do
    let rec more () =
      imports := ident cur :: !imports;
      if try_punct cur "," then more () else eat_punct cur ";"
    in
    more ()
  done;
  let globals = ref [] and procs = ref [] in
  let rec decls () =
    match peek cur with
    | Lexer.KW "VAR" ->
      advance cur;
      let gname = ident cur in
      eat_punct cur ":";
      let t = typ cur in
      let init =
        if try_punct cur ":=" then begin
          match peek cur with
          | Lexer.INT_LIT v ->
            advance cur;
            Some v
          | Lexer.KW "TRUE" ->
            advance cur;
            Some 1
          | Lexer.KW "FALSE" ->
            advance cur;
            Some 0
          | _ -> fail cur "global initialiser must be a literal"
        end
        else None
      in
      eat_punct cur ";";
      globals := { g_name = gname; g_type = t; g_init = init } :: !globals;
      decls ()
    | Lexer.KW "PROC" ->
      procs := proc_decl cur :: !procs;
      decls ()
    | _ -> ()
  in
  decls ();
  eat_kw cur "END";
  eat_punct cur ";";
  {
    md_name = name;
    md_imports = List.rev !imports;
    md_globals = List.rev !globals;
    md_procs = List.rev !procs;
  }

let parse src =
  match Lexer.tokenize src with
  | exception Lexer.Lex_error msg -> Error msg
  | toks -> (
    let cur = { toks = Array.of_list toks; pos = 0 } in
    try
      let rec modules acc =
        match peek cur with
        | Lexer.EOF -> List.rev acc
        | _ -> modules (module_decl cur :: acc)
      in
      Ok (modules [])
    with Parse_error msg -> Error msg)

let parse_module src =
  match parse src with
  | Error _ as e -> e
  | Ok [ m ] -> Ok m
  | Ok ms -> Error (Printf.sprintf "expected one module, found %d" (List.length ms))
