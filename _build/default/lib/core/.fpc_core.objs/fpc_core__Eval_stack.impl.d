lib/core/eval_stack.ml: Array Fpc_util
