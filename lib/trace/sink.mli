(** Where events go: a bounded ring buffer plus an optional streaming
    listener.

    The ring keeps the most recent [capacity] events for after-the-fact
    export (a Chrome trace of the tail of a run is still loadable); once it
    wraps, overwritten events are counted in {!dropped} rather than
    silently lost.  Consumers that must see {e every} event — the profiler,
    whose conservation property (profile totals = machine totals) only
    holds over the complete stream — attach a {!set_listener} callback,
    which is invoked synchronously on each emit regardless of ring
    occupancy.

    The null sink is simply the absence of one: the machine stores a
    [Sink.t option] and every instrumentation site is guarded by a single
    match on it, so a tracing-off run pays one branch per {e transfer}
    (not per instruction) — near-zero cost, measured by the
    [trace/overhead] bench entry.

    The ring's slots are distinct mutable {!Event.t} records reused in
    place: {!emit_fields}, the path the machine core uses, allocates
    nothing in steady state.  {!events} hands out private copies; a
    listener sees the live slot and must {!Event.copy} anything it
    retains past the callback. *)

type t

val create : ?capacity:int -> engine:string -> unit -> t
(** [capacity] (default 65536) must be positive; [engine] is the engine
    label ("I1".."I4") stamped on exports and profiles built from this
    sink. *)

val engine : t -> string
val capacity : t -> int

val emit_fields :
  t ->
  kind:Event.kind ->
  pc:int ->
  target:int ->
  depth:int ->
  fast:bool ->
  cycles:int ->
  mem_refs:int ->
  d_cycles:int ->
  d_mem_refs:int ->
  unit
(** The allocation-free emit: writes the next ring slot in place (seq is
    assigned by the sink), feeds the listener the live slot, then
    advances the cursor, evicting the oldest entry when full.  The
    listener must copy the record if it retains it. *)

val emit : t -> Event.t -> unit
(** [emit_fields] with the fields of [e]; [e.seq] is ignored and
    reassigned, and [e] itself is never stored, so the caller keeps
    ownership.  Convenience for tests and cold paths. *)

val set_listener : t -> (Event.t -> unit) option -> unit
(** The streaming consumer; it sees every event with its final sequence
    number, before ring eviction is applied.  The record it receives is
    the reused ring slot — read it synchronously, {!Event.copy} to
    retain. *)

val events : t -> Event.t list
(** Retained events, oldest first, as private copies (safe to keep).
    At most [capacity]; the head of the run is missing iff
    [dropped > 0]. *)

val total : t -> int
(** Events emitted over the sink's lifetime. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val clear : t -> unit
(** Empty the ring and reset the counters (the listener stays). *)
