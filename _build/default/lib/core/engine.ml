type kind = Simple | Mesa

type t = {
  kind : kind;
  return_stack_depth : int;
  banks : Fpc_regbank.Bank_file.config option;
  free_frame_stack_depth : int;
  free_frame_payload_words : int;
  collect_data_trace : bool;
}

let i1 =
  {
    kind = Simple;
    return_stack_depth = 0;
    banks = None;
    free_frame_stack_depth = 0;
    free_frame_payload_words = 40;
    collect_data_trace = false;
  }

let i2 = { i1 with kind = Mesa }

let i3 ?(return_stack_depth = 8) () =
  { i2 with return_stack_depth }

let i4 ?(return_stack_depth = 16)
    ?(bank_config =
      { Fpc_regbank.Bank_file.default_config with bank_count = 8 })
    ?(free_frame_stack_depth = 32) () =
  {
    kind = Mesa;
    return_stack_depth;
    banks = Some bank_config;
    free_frame_stack_depth;
    free_frame_payload_words = 40;
    collect_data_trace = false;
  }

let args_in_place t = t.banks <> None

let name t =
  match (t.kind, t.return_stack_depth, t.banks) with
  | Simple, _, _ -> "I1"
  | Mesa, 0, None -> "I2"
  | Mesa, d, None -> Printf.sprintf "I3(d=%d)" d
  | Mesa, d, Some b ->
    Printf.sprintf "I4(b=%dx%d,d=%d)" b.Fpc_regbank.Bank_file.bank_count
      b.Fpc_regbank.Bank_file.bank_words d
