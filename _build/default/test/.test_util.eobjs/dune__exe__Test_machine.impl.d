test/test_machine.ml: Alcotest Bytes Cache Cost Fpc_machine Gen List Memory Printf QCheck QCheck_alcotest
