type t = {
  memory_words : int;
  trap_handler_addr : int;
  gft_base : int;
  av_base : int;
  static_base : int;
  heap_base : int;
  heap_limit : int;
  code_region_base : int;
}

let make ?(memory_words = 65536) ~ladder () =
  if memory_words < 16384 || memory_words > 65536 then
    invalid_arg "Layout.make: memory_words must be within [16384, 65536]";
  let gft_base = 16 in
  let av_base = gft_base + Gft.capacity in
  let static_base = (av_base + Fpc_frames.Size_class.class_count ladder + 3) land lnot 3 in
  (* Give an eighth of storage to static structures, three eighths to the
     frame heap, and the remaining half to code. *)
  let heap_base = memory_words / 8 in
  let heap_limit = memory_words / 2 in
  let code_region_base = heap_limit in
  if static_base >= heap_base then invalid_arg "Layout.make: static region too small";
  {
    memory_words;
    trap_handler_addr = 2;
    gft_base;
    av_base;
    static_base;
    heap_base;
    heap_limit;
    code_region_base;
  }

let in_frame_region t addr = addr >= t.heap_base && addr < t.heap_limit
