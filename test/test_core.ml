(* Tests for the core transfer machinery: evaluation stack, return stack,
   bank file, simple links, engines. *)

open Fpc_machine

let qtest = QCheck_alcotest.to_alcotest

(* ---- Eval_stack ---- *)

let test_eval_stack_basic () =
  let s = Fpc_core.Eval_stack.create ~capacity:4 () in
  Fpc_core.Eval_stack.push s 1;
  Fpc_core.Eval_stack.push s 2;
  Alcotest.(check int) "peek" 2 (Fpc_core.Eval_stack.peek s);
  Alcotest.(check int) "pop" 2 (Fpc_core.Eval_stack.pop s);
  Alcotest.(check int) "depth" 1 (Fpc_core.Eval_stack.depth s);
  Alcotest.(check (array int)) "contents bottom-first" [| 1 |]
    (Fpc_core.Eval_stack.contents s)

let test_eval_stack_limits () =
  let s = Fpc_core.Eval_stack.create ~capacity:2 () in
  Fpc_core.Eval_stack.push s 1;
  Fpc_core.Eval_stack.push s 2;
  Alcotest.check_raises "overflow" Fpc_core.Eval_stack.Overflow (fun () ->
      Fpc_core.Eval_stack.push s 3);
  Fpc_core.Eval_stack.clear s;
  Alcotest.check_raises "underflow" Fpc_core.Eval_stack.Underflow (fun () ->
      ignore (Fpc_core.Eval_stack.pop s))

let test_eval_stack_truncates () =
  let s = Fpc_core.Eval_stack.create () in
  Fpc_core.Eval_stack.push s 0x1FFFF;
  Alcotest.(check int) "16-bit" 0xFFFF (Fpc_core.Eval_stack.pop s)

(* ---- Return_stack ---- *)

let entry lf =
  {
    Fpc_ifu.Return_stack.r_lf = lf;
    r_gf = 100;
    r_cb = 200;
    r_pc_abs = 300;
    r_bank = Fpc_ifu.Return_stack.no_bank;
  }

let test_return_stack_lifo () =
  let rs = Fpc_ifu.Return_stack.create ~depth:4 in
  Fpc_ifu.Return_stack.push_entry rs (entry 4);
  Fpc_ifu.Return_stack.push_entry rs (entry 8);
  (match Fpc_ifu.Return_stack.pop rs with
  | Some e -> Alcotest.(check int) "LIFO" 8 e.r_lf
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check int) "fast pops" 1 (Fpc_ifu.Return_stack.fast_pops rs);
  ignore (Fpc_ifu.Return_stack.pop rs);
  Alcotest.(check bool) "empty pop" true (Fpc_ifu.Return_stack.pop rs = None);
  Alcotest.(check int) "empty pops counted" 1 (Fpc_ifu.Return_stack.empty_pops rs)

let test_return_stack_flush_order () =
  let rs = Fpc_ifu.Return_stack.create ~depth:4 in
  List.iter (fun lf -> Fpc_ifu.Return_stack.push_entry rs (entry lf)) [ 4; 8; 12 ];
  let seen = ref [] in
  Fpc_ifu.Return_stack.flush rs ~f:(fun e -> seen := e.r_lf :: !seen);
  (* Flush drains newest first; so the accumulated list is oldest first. *)
  Alcotest.(check (list int)) "newest first" [ 4; 8; 12 ] !seen;
  Alcotest.(check bool) "empty after" true (Fpc_ifu.Return_stack.is_empty rs);
  Alcotest.(check int) "flush events" 1 (Fpc_ifu.Return_stack.flushes rs);
  Alcotest.(check int) "flushed entries" 3 (Fpc_ifu.Return_stack.flushed_entries rs)

let test_return_stack_spill () =
  let rs = Fpc_ifu.Return_stack.create ~depth:3 in
  List.iter (fun lf -> Fpc_ifu.Return_stack.push_entry rs (entry lf)) [ 4; 8; 12 ];
  Alcotest.(check bool) "full" true (Fpc_ifu.Return_stack.is_full rs);
  (match Fpc_ifu.Return_stack.second_oldest rs with
  | Some e -> Alcotest.(check int) "second oldest" 8 e.r_lf
  | None -> Alcotest.fail "expected entry");
  (match Fpc_ifu.Return_stack.drop_oldest rs with
  | Some e -> Alcotest.(check int) "oldest dropped" 4 e.r_lf
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check int) "spills counted" 1 (Fpc_ifu.Return_stack.spills rs);
  (* The hot top is untouched. *)
  match Fpc_ifu.Return_stack.pop rs with
  | Some e -> Alcotest.(check int) "top still newest" 12 e.r_lf
  | None -> Alcotest.fail "expected entry"

let prop_return_stack_matches_list_model =
  QCheck.Test.make ~count:200 ~name:"return stack: matches a list model"
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let rs = Fpc_ifu.Return_stack.create ~depth:6 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            if Fpc_ifu.Return_stack.is_full rs then begin
              ignore (Fpc_ifu.Return_stack.drop_oldest rs);
              model := List.filteri (fun i _ -> i < List.length !model - 1) !model
            end;
            Fpc_ifu.Return_stack.push_entry rs (entry (4 * (1 + List.length !model)));
            model := 4 * (1 + List.length !model) :: !model;
            true
          | 1 -> (
            let got = Fpc_ifu.Return_stack.pop rs in
            match (got, !model) with
            | None, [] -> true
            | Some e, m :: rest ->
              model := rest;
              e.r_lf = m
            | _ -> false)
          | _ ->
            Fpc_ifu.Return_stack.flush rs ~f:(fun _ -> ());
            model := [];
            true)
        ops)

(* ---- Bank_file ---- *)

let make_banks ?(count = 4) () =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 16) () in
  let ladder = Fpc_frames.Size_class.default in
  let config = { Fpc_regbank.Bank_file.default_config with bank_count = count } in
  let bf = Fpc_regbank.Bank_file.create ~config ~mem ~cost ~ladder () in
  (bf, mem, cost)

(* Lay down a frame block at [block] with a ladder-true fsi for [payload]. *)
let plant_frame mem ~block ~payload =
  let ladder = Fpc_frames.Size_class.default in
  let fsi =
    Option.get
      (Fpc_frames.Size_class.index_for_block ladder
         (Fpc_frames.Frame.block_words_for_locals payload))
  in
  Memory.poke mem block fsi;
  Fpc_frames.Frame.lf_of_block block

let test_bank_rename_delivers_args () =
  let bf, mem, _ = make_banks () in
  let lf = plant_frame mem ~block:8192 ~payload:8 in
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args:[| 7; 9 |];
  Alcotest.(check int) "arg0 = local0" 7 (Fpc_regbank.Bank_file.read_local bf ~lf ~index:0);
  Alcotest.(check int) "arg1 = local1" 9 (Fpc_regbank.Bank_file.read_local bf ~lf ~index:1);
  (* And no storage write happened for them. *)
  Alcotest.(check int) "memory copy stale" 0 (Memory.peek mem (lf + 0))

let test_bank_write_back_on_eviction () =
  let bf, mem, _ = make_banks ~count:2 () in
  (* One stack bank + one local bank: a second call must evict the first
     frame's bank, writing its dirty words back. *)
  let lf1 = plant_frame mem ~block:8192 ~payload:8 in
  let lf2 = plant_frame mem ~block:8256 ~payload:8 in
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf1 ~payload_words:8 ~args:[| 42 |];
  Fpc_regbank.Bank_file.write_local bf ~lf:lf1 ~index:3 77;
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf2 ~payload_words:8 ~args:[||];
  let s = Fpc_regbank.Bank_file.stats bf in
  Alcotest.(check bool) "eviction happened" true (s.overflows >= 1);
  Alcotest.(check int) "dirty arg written back" 42 (Memory.peek mem (lf1 + 0));
  Alcotest.(check int) "dirty local written back" 77 (Memory.peek mem (lf1 + 3));
  (* Reads of the evicted frame now come from storage. *)
  Alcotest.(check int) "storage read" 42
    (Fpc_regbank.Bank_file.read_local bf ~lf:lf1 ~index:0)

let test_bank_underflow_reload () =
  let bf, mem, _ = make_banks () in
  let lf = plant_frame mem ~block:8192 ~payload:8 in
  Memory.poke mem (lf + 2) 123;
  Fpc_regbank.Bank_file.ensure_bank bf ~lf;
  let s = Fpc_regbank.Bank_file.stats bf in
  Alcotest.(check int) "underflow counted" 1 s.underflows;
  Alcotest.(check int) "loaded from storage" 123
    (Fpc_regbank.Bank_file.read_local bf ~lf ~index:2)

let test_bank_release_discards () =
  let bf, mem, _ = make_banks () in
  let lf = plant_frame mem ~block:8192 ~payload:8 in
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args:[| 5 |];
  Fpc_regbank.Bank_file.write_local bf ~lf ~index:1 99;
  Fpc_regbank.Bank_file.release_frame bf ~lf;
  Alcotest.(check bool) "bank freed" false (Fpc_regbank.Bank_file.has_bank bf ~lf);
  (* "its contents are unimportant, and never need to be saved" *)
  Alcotest.(check int) "nothing written back" 0 (Memory.peek mem (lf + 1))

let test_bank_flush_all () =
  let bf, mem, _ = make_banks () in
  let lf = plant_frame mem ~block:8192 ~payload:8 in
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args:[| 11 |];
  Fpc_regbank.Bank_file.flush_all bf;
  Alcotest.(check int) "written back on process switch" 11 (Memory.peek mem (lf + 0));
  Alcotest.(check bool) "released" false (Fpc_regbank.Bank_file.has_bank bf ~lf)

let test_bank_flagged_flush_on_leave () =
  let bf, mem, _ = make_banks () in
  let lf = plant_frame mem ~block:8192 ~payload:8 in
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args:[| 3 |];
  Fpc_regbank.Bank_file.on_leave bf ~lf;
  Alcotest.(check bool) "unflagged frames keep banks" true
    (Fpc_regbank.Bank_file.has_bank bf ~lf);
  Fpc_regbank.Bank_file.flag_frame bf ~lf;
  Fpc_regbank.Bank_file.on_leave bf ~lf;
  Alcotest.(check bool) "flagged frame flushed" false
    (Fpc_regbank.Bank_file.has_bank bf ~lf);
  Alcotest.(check int) "storage current" 3 (Memory.peek mem (lf + 0))

let test_bank_diversion () =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 16) () in
  let config =
    { Fpc_regbank.Bank_file.default_config with pointer_policy = Fpc_regbank.Bank_file.Divert }
  in
  let bf =
    Fpc_regbank.Bank_file.create ~config ~mem ~cost ~ladder:Fpc_frames.Size_class.default ()
  in
  let lf = plant_frame mem ~block:8192 ~payload:8 in
  Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args:[| 21 |];
  (* A pointer dereference into the shadowed window reads the register. *)
  Alcotest.(check int) "diverted read" 21 (Fpc_regbank.Bank_file.data_read bf ~addr:lf);
  Fpc_regbank.Bank_file.data_write bf ~addr:(lf + 1) 63;
  Alcotest.(check int) "diverted write visible in bank" 63
    (Fpc_regbank.Bank_file.read_local bf ~lf ~index:1);
  let s = Fpc_regbank.Bank_file.stats bf in
  Alcotest.(check int) "diversions counted" 2 s.diversions;
  (* Outside any window: plain storage. *)
  Memory.poke mem 300 5;
  Alcotest.(check int) "storage fallthrough" 5
    (Fpc_regbank.Bank_file.data_read bf ~addr:300)

(* Property: under random call/return traffic, forcing a flush always
   leaves storage holding exactly what the banks held. *)
let prop_bank_flush_coherence =
  QCheck.Test.make ~count:100 ~name:"banks: flush restores storage coherence"
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 9))
    (fun ops ->
      let bf, mem, _ = make_banks () in
      let next_block = ref 8192 in
      let stack = ref [] in
      let model : (int, int array) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun op ->
          if op < 5 then begin
            let lf = plant_frame mem ~block:!next_block ~payload:8 in
            next_block := !next_block + 16;
            let args = [| op; op * 3 |] in
            Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args;
            Hashtbl.replace model lf [| op; op * 3; 0; 0; 0; 0; 0; 0 |];
            stack := lf :: !stack
          end
          else if op < 8 then begin
            match !stack with
            | lf :: _ ->
              let idx = op mod 8 in
              Fpc_regbank.Bank_file.write_local bf ~lf ~index:idx (op * 11);
              (Hashtbl.find model lf).(idx) <- op * 11
            | [] -> ()
          end
          else
            match !stack with
            | lf :: rest ->
              (* Leave the frame alive (coroutine-style) and hop away. *)
              Fpc_regbank.Bank_file.on_leave bf ~lf;
              stack := rest
            | [] -> ())
        ops;
      Fpc_regbank.Bank_file.flush_all bf;
      (match Fpc_regbank.Bank_file.check_coherence bf with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      Hashtbl.fold
        (fun lf expected acc ->
          acc
          && Array.for_all Fun.id
               (Array.mapi (fun i v -> Memory.peek mem (lf + i) = v) expected))
        model true)

(* ---- Engine ---- *)

let test_engine_names () =
  Alcotest.(check string) "i1" "I1" (Fpc_core.Engine.name Fpc_core.Engine.i1);
  Alcotest.(check string) "i2" "I2" (Fpc_core.Engine.name Fpc_core.Engine.i2);
  Alcotest.(check string) "i3" "I3(d=8)" (Fpc_core.Engine.name (Fpc_core.Engine.i3 ()));
  Alcotest.(check string) "i4" "I4(b=8x16,d=16)"
    (Fpc_core.Engine.name (Fpc_core.Engine.i4 ()));
  Alcotest.(check bool) "args in place" true
    (Fpc_core.Engine.args_in_place (Fpc_core.Engine.i4 ()));
  Alcotest.(check bool) "i2 not" false (Fpc_core.Engine.args_in_place Fpc_core.Engine.i2)

let () =
  Alcotest.run "core"
    [
      ( "eval_stack",
        [
          Alcotest.test_case "basics" `Quick test_eval_stack_basic;
          Alcotest.test_case "limits" `Quick test_eval_stack_limits;
          Alcotest.test_case "truncates" `Quick test_eval_stack_truncates;
        ] );
      ( "return_stack",
        [
          Alcotest.test_case "LIFO" `Quick test_return_stack_lifo;
          Alcotest.test_case "flush order" `Quick test_return_stack_flush_order;
          Alcotest.test_case "spill oldest" `Quick test_return_stack_spill;
          qtest prop_return_stack_matches_list_model;
        ] );
      ( "bank_file",
        [
          Alcotest.test_case "rename delivers args" `Quick test_bank_rename_delivers_args;
          Alcotest.test_case "eviction writes back" `Quick test_bank_write_back_on_eviction;
          Alcotest.test_case "underflow reload" `Quick test_bank_underflow_reload;
          Alcotest.test_case "release discards" `Quick test_bank_release_discards;
          Alcotest.test_case "flush_all" `Quick test_bank_flush_all;
          Alcotest.test_case "flagged flush" `Quick test_bank_flagged_flush_on_leave;
          Alcotest.test_case "diversion" `Quick test_bank_diversion;
          qtest prop_bank_flush_coherence;
        ] );
      ( "engine",
        [ Alcotest.test_case "names and pairing" `Quick test_engine_names ] );
    ]
