exception Fail of int * string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad hex digit in \\u escape"

(* Encode one Unicode scalar value as UTF-8; surrogate pairs in the input
   are combined by the caller. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_u16 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
      v := (!v lsl 4) lor hex_digit st c;
      advance st
    | None -> fail st "truncated \\u escape"
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "truncated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = parse_u16 st in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            expect st '\\';
            expect st 'u';
            let lo = parse_u16 st in
            if lo < 0xDC00 || lo > 0xDFFF then fail st "unpaired surrogate";
            add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if hi >= 0xDC00 && hi <= 0xDFFF then fail st "unpaired surrogate"
          else add_utf8 buf hi
        | _ -> fail st (Printf.sprintf "bad escape \\%c" c)));
      go ()
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let digits () =
    let seen = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
        seen := true;
        advance st;
        go ()
      | _ -> if not !seen then fail st "expected digit"
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  digits ();
  let fractional = ref false in
  (match peek st with
  | Some '.' ->
    fractional := true;
    advance st;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    fractional := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if !fractional then Jsonout.Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Jsonout.Int n
    | None -> Jsonout.Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "expected a JSON value"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Jsonout.Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | _ -> expect st '}'
      in
      members ();
      Jsonout.Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Jsonout.List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | _ -> expect st ']'
      in
      elements ();
      Jsonout.List (List.rev !items)
    end
  | Some '"' -> Jsonout.String (parse_string st)
  | Some 't' -> literal st "true" (Jsonout.Bool true)
  | Some 'f' -> literal st "false" (Jsonout.Bool false)
  | Some 'n' -> literal st "null" Jsonout.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "at offset %d: trailing input" st.pos)
    else Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)
  | exception Failure _ -> Error "unrepresentable number"

let parse_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse s
