(** The wire framing shared by every transport: newline-delimited lines
    with a maximum length, assembled from arbitrary partial reads.

    Both [fpc serve] transports (TCP and stdin) and the {!Client} read
    through this codec, so their tolerance is identical: a line longer
    than the limit is {e discarded to the next newline} and reported as
    {!item.Overlong} — the stream resynchronizes instead of wedging or
    buffering without bound, and the bytes of one bad line can never leak
    into the next request.  Trailing [\r] is stripped ([\r\n] clients
    work); a final unterminated line is returned before [Eof]. *)

type t

val default_max_line : int
(** 65536 bytes — comfortably above any suite request, far below any
    memory concern. *)

type item =
  | Line of string  (** one line, newline (and trailing [\r]) stripped *)
  | Overlong of int
      (** a line exceeded the limit; its [n] bytes (excluding the
          newline) were discarded and the stream is resynchronized *)
  | Eof

val create : ?max_line:int -> read:(bytes -> int -> int -> int) -> unit -> t
(** [read buf pos len] must behave like [Unix.read]: block until at least
    one byte is available, return [0] at end of stream.  Short reads are
    fine — that is the point. *)

val of_fd : ?max_line:int -> Unix.file_descr -> t
(** Framing over a file descriptor.  [EINTR] is retried; connection-reset
    errors read as end-of-stream (a dead peer is an [Eof], not an
    exception). *)

val of_string : ?max_line:int -> string -> t
(** Framing over an in-memory string, delivered one byte per read — the
    worst-case partial-read schedule, for tests. *)

val next : t -> item
(** The next line, blocking on [read] as needed. *)

val max_line : t -> int
