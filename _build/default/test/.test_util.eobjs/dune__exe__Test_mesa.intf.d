test/test_mesa.mli:
