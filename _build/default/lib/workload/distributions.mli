(** Empirical distributions quoted by the paper, synthesised.

    §7.1: "Mesa statistics suggest that 95% of all frames allocated are
    smaller than 80 bytes" (40 of our 16-bit words).  The frame-size
    sampler below is a mixture calibrated so its 95th percentile sits at
    40 words, with a realistic small-frame mode and a long tail up to a
    few KB.  §1: "one call or return for every 10 instructions executed is
    not uncommon". *)

val frame_payload_words : Fpc_util.Prng.t -> int
(** Sample a frame payload (arguments + locals), in words; P95 = 40. *)

val sample_histogram :
  seed:int -> samples:int -> Fpc_util.Histogram.t
(** A histogram of {!frame_payload_words} draws. *)

val paper_call_density : float
(** Instructions per call-or-return the paper quotes (10.0). *)

val paper_frame_p95_words : int
(** 40 (= 80 bytes). *)
