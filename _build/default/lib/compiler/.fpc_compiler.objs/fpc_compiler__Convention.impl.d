lib/compiler/convention.ml: Bool Fpc_core Fpc_mesa
