(** Word-addressed simulated main storage.

    The machine is the 16-bit-word Mesa-style processor of the paper.  All
    runtime structures — frames, the GFT, link vectors, entry vectors,
    global frames, the AV allocation vector, code segments — live in this
    one store, so the experiments measure real memory-reference counts
    rather than asserted ones.

    Two access planes are provided:
    - {e metered} ([read]/[write]): charge the supplied {!Cost.t}; used by
      the interpreter and runtime machinery.
    - {e unmetered} ([peek]/[poke]): free; used by the linker to build the
      initial image, by tests, and by display code.

    Code is byte-granular (instructions are 1–3 bytes): bytes are packed two
    per word, high byte first, addressed by a word-aligned [code_base] plus
    a byte offset — exactly the [code base + PC] addressing of §5. *)

type address = int
(** A word address. *)

type t

val create : ?cost:Cost.t -> size_words:int -> unit -> t
(** Fresh zeroed storage.  When [cost] is given, metered accesses charge it;
    it can be replaced later with {!set_cost}. *)

val clone : t -> t
(** An independent copy of the store: same contents, its own word array,
    charging the original's meter (override with {!set_cost} /
    {!clear_cost}).  This is what lets a linked image be cached and
    re-run — each execution works on a clone, leaving the pristine store
    untouched.  The copy's dirty map starts clean: it is content-identical
    to [t], so a later {!reset_from} against [t]'s store (or any
    content-equal pristine) has nothing to undo yet. *)

val size : t -> int
val set_cost : t -> Cost.t -> unit
val clear_cost : t -> unit
val cost : t -> Cost.t option

(** {1 Dirty tracking and reset}

    Every mutation ([write], [poke], [poke_code_byte], [blit_bytes]) marks
    the containing 256-word page dirty.  [reset_from] blits only dirty
    pages back from a pristine store and clears the map, so restoring a
    store to pristine costs time proportional to memory {e touched}, not
    to image size — the arena analogue of the paper's AV frame heap, where
    recycling beats general-purpose (re)allocation. *)

val reset_from : t -> pristine:t -> unit
(** Restore [t]'s store to [pristine]'s contents by copying back the dirty
    pages, then mark everything clean.  [t] must have been cloned (directly
    or transitively) from a store content-identical to [pristine]; sizes
    must match or [Invalid_argument] is raised.  The cost meter is left
    untouched — reset it separately ({!set_cost} / [Cost.reset]). *)

val dirty_pages : t -> int
(** Number of 256-word pages written since creation / the last
    [reset_from].  Exposed for tests and diagnostics. *)

(** {1 Metered access} *)

val read : t -> address -> int
val write : t -> address -> int -> unit
(** Values are truncated to 16 bits.  Out-of-range addresses raise
    [Invalid_argument]. *)

val read_code_byte : t -> code_base:address -> pc:int -> int
(** Fetch the byte at byte-offset [pc] from [code_base].  Charges one
    storage reference (the word containing the byte). *)

(** {1 Prepaid access}

    The compiled tier batches a block's storage bill into one {!charge}
    and then touches the store with [prepaid_read]/[prepaid_write], whose
    addresses its guard has already proven in range.  Prepaid writes still
    truncate to a word and mark the page dirty, so {!reset_from} remains
    sound; the only things skipped are the per-access meter and bounds
    check.  Totals equal the same accesses made through {!read}/{!write}
    exactly. *)

val charge : t -> reads:int -> writes:int -> unit
(** Charge [reads] + [writes] storage references against the attached
    meter (no-op when unmetered), without touching the store. *)

val prepaid_read : t -> address -> int
(** Unmetered, unchecked word fetch; the caller guarantees the address is
    in range and already charged. *)

val prepaid_write : t -> address -> int -> unit
(** Unmetered, unchecked word store (truncated, page marked dirty); the
    caller guarantees the address is in range and already charged. *)

(** {1 Unmetered access} *)

val peek : t -> address -> int
val poke : t -> address -> int -> unit
val peek_code_byte : t -> code_base:address -> pc:int -> int
val poke_code_byte : t -> code_base:address -> pc:int -> int -> unit

val blit_bytes : t -> code_base:address -> bytes -> unit
(** Unmetered copy of a code segment's bytes into storage starting at
    [code_base] (byte offset 0). *)

val words_for_bytes : int -> int
(** Number of words needed to hold [n] code bytes. *)
