examples/linkage_migration.ml: Array Fpc_compiler Fpc_core Fpc_interp Fpc_mesa Fpc_workload List Printf String
