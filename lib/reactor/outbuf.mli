(** A per-connection write buffer for non-blocking sockets: append
    whole response lines, flush as much as the kernel will take, keep
    the rest for the next write-readiness event.  One linear byte
    buffer, compacted in place — steady state writes allocate nothing. *)

type t

val create : ?initial:int -> unit -> t

val add_string : t -> string -> unit

val length : t -> int
(** Bytes buffered and not yet accepted by the socket. *)

val is_empty : t -> bool

val high_water : t -> int
(** The largest backlog this buffer ever held — the per-connection
    memory the serving stack actually risked. *)

type status =
  | Flushed  (** everything out; write interest can be dropped *)
  | Partial  (** kernel buffer full; arm write-readiness and return *)
  | Error  (** the peer is gone; close the connection *)

val flush : t -> Unix.file_descr -> status
(** Write until empty, [EAGAIN], or a hard error.  [EINTR] is retried. *)
