type event = Call of int | Return | Coroutine_switch | Process_switch

type profile = {
  target_depth : int;
  pull : float;
  run_bias : float;
  leaf_rate : float;
  coroutine_rate : float;
  process_rate : float;
  max_depth : int;
}

let default_profile =
  {
    target_depth = 8;
    pull = 0.25;
    run_bias = 0.1;
    leaf_rate = 0.6;
    coroutine_rate = 0.0;
    process_rate = 0.0;
    max_depth = 64;
  }

let generate ~seed ?(profile = default_profile) ~length () =
  let open Fpc_util in
  let rng = Prng.create ~seed in
  let depth = ref 1 in
  let last_was_call = ref true in
  let events = ref [] in
  let pending_leaf_return = ref false in
  for _ = 1 to length do
    let event =
      if !pending_leaf_return then begin
        pending_leaf_return := false;
        Return
      end
      else if Prng.chance rng ~p:profile.process_rate then Process_switch
      else if Prng.chance rng ~p:profile.coroutine_rate then Coroutine_switch
      else if
        (* Leaf call/return pairs: the dominant pattern of procedure-heavy
           code — call a small leaf, come straight back. *)
        Prng.chance rng ~p:profile.leaf_rate && !depth < profile.max_depth
      then begin
        pending_leaf_return := true;
        Call (Distributions.frame_payload_words rng)
      end
      else begin
        let p_call =
          if Prng.chance rng ~p:profile.run_bias then
            if !last_was_call then 1.0 else 0.0
          else begin
            let drift =
              profile.pull *. float_of_int (profile.target_depth - !depth)
            in
            min 0.95 (max 0.05 (0.5 +. drift))
          end
        in
        if (Prng.chance rng ~p:p_call || !depth <= 1) && !depth < profile.max_depth
        then Call (Distributions.frame_payload_words rng)
        else Return
      end
    in
    (match event with
    | Call _ ->
      incr depth;
      last_was_call := true
    | Return ->
      decr depth;
      last_was_call := false
    | Coroutine_switch | Process_switch -> ());
    events := event :: !events
  done;
  List.rev !events

let depth_profile events =
  let h = Fpc_util.Histogram.create () in
  let depth = ref 1 in
  List.iter
    (fun e ->
      (match e with
      | Call _ -> incr depth
      | Return -> decr depth
      | Coroutine_switch | Process_switch -> ());
      Fpc_util.Histogram.add h !depth)
    events;
  h
