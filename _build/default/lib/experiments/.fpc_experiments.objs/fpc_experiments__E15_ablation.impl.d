lib/experiments/e15_ablation.ml: Cost Exp Fpc_core Fpc_machine Fpc_regbank Fpc_util Harness List Tablefmt
