lib/mesa/linker.ml: Alloc_vector Array Bytes Char Compiled Cost Descriptor Fpc_frames Fpc_isa Fpc_machine Gft Hashtbl Image Layout List Memory Printf Result Size_class String
