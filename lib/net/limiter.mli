(** Admission control for the TCP server: a cap on concurrent
    connections and a bound on jobs admitted but not yet answered.

    The paper's discipline applied one layer up: the XFER fast path only
    pays off because the slow path is engineered, and a serving front-end
    only stays fast under overload if the overload is {e refused} at the
    door rather than queued without bound.  Over either limit the caller
    sends a structured shed response and moves on; nothing blocks, and
    the pool's queue depth stays bounded by [max_pending].

    Thread-safe; one internal mutex, held for a few loads and stores. *)

type t

val create : ?max_connections:int -> ?max_pending:int -> unit -> t
(** Defaults: 16 connections, 64 pending jobs.  Raises
    [Invalid_argument] if either is < 1. *)

val try_admit_connection : t -> bool
(** Claim a connection slot; [false] (and a shed counted) when full. *)

val release_connection : t -> unit

val try_admit_job : t -> int option
(** Claim a pending-job slot.  [Some pending] — the depth {e after}
    admission, feeding the high-water mark — on success; [None] (and a
    shed counted) when the bound is hit. *)

val release_job : t -> unit
(** A previously admitted job was answered (result delivered or the
    connection it belonged to died). *)

type stats = {
  connections : int;  (** currently admitted *)
  max_connections : int;
  pending : int;  (** jobs admitted, not yet answered *)
  max_pending : int;
  max_pending_observed : int;  (** high-water mark of [pending] *)
  shed_jobs : int;  (** job admissions refused *)
  shed_connections : int;  (** connection admissions refused *)
}

val stats : t -> stats
