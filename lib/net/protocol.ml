type admin = Stats | Shutdown

let admin_of_line = function
  | "/stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

let error_line ~error ~message =
  let open Fpc_util.Jsonout in
  to_string
    (Obj
       [
         ("id", Null);
         ("status", String "error");
         ("error", String error);
         ("message", String message);
       ])

let shed_line ~message =
  let open Fpc_util.Jsonout in
  to_string
    (Obj [ ("id", Null); ("status", String "shed"); ("message", String message) ])

let draining_line =
  Fpc_util.Jsonout.(to_string (Obj [ ("status", String "draining") ]))

let overlong_message ~bytes_discarded ~limit =
  Printf.sprintf "line of %d bytes exceeds the %d-byte limit" bytes_discarded
    limit
