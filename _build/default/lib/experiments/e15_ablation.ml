(** E15 — ablation of the fast-path mechanisms (extension).

    The paper presents I3/I4 as a bundle; this experiment turns each
    mechanism off in isolation to show where the speed actually comes
    from: the IFU return stack (§6), the register banks (§7.1), the
    free-frame stack (§7.1), dirty-word tracking on bank flushes (§7.1's
    "it may be worthwhile to keep track of which registers have been
    written"), and the sizing knobs (bank count/width, return-stack
    depth).  Run over the typical call-intensive programs. *)

open Fpc_util

let programs = [ "fib"; "callchain"; "leafcalls" ]

let configs =
  let banks ?(count = 8) ?(words = 16) ?(dirty = true) () =
    {
      Fpc_regbank.Bank_file.default_config with
      bank_count = count;
      bank_words = words;
      track_dirty = dirty;
    }
  in
  [
    ("I2 (baseline Mesa)", Fpc_core.Engine.i2);
    ("I4 full", Fpc_core.Engine.i4 ());
    ("I4 without return stack",
     { (Fpc_core.Engine.i4 ()) with return_stack_depth = 0 });
    ("I4 without banks", Fpc_core.Engine.i3 ());
    ("I4 without free-frame stack",
     { (Fpc_core.Engine.i4 ()) with free_frame_stack_depth = 0 });
    ("I4 without dirty tracking",
     Fpc_core.Engine.i4 ~bank_config:(banks ~dirty:false ()) ());
    ("I4 with 4 banks", Fpc_core.Engine.i4 ~bank_config:(banks ~count:4 ()) ());
    ("I4 with 2 banks", Fpc_core.Engine.i4 ~bank_config:(banks ~count:2 ()) ());
    ("I4 with 8-word banks", Fpc_core.Engine.i4 ~bank_config:(banks ~words:8 ()) ());
    ("I4 with 32-word banks", Fpc_core.Engine.i4 ~bank_config:(banks ~words:32 ()) ());
    ("I4 with 4-deep return stack",
     Fpc_core.Engine.i4 ~return_stack_depth:4 ());
  ]

let run () =
  let open Fpc_machine in
  let t =
    Tablefmt.create ~title:"Ablation: cycles and storage refs per transfer"
      ~columns:
        [
          ("configuration", Tablefmt.Left);
          ("cycles", Tablefmt.Right);
          ("refs/transfer", Tablefmt.Right);
          ("fast fraction", Tablefmt.Right);
          ("vs I4 full", Tablefmt.Right);
        ]
  in
  let full_cycles = ref 0 in
  let results =
    List.map
      (fun (label, engine) ->
        let runs = Harness.run_suite ~engine ~programs () in
        let cycles =
          List.fold_left (fun acc (_, st) -> acc + Cost.cycles st.Fpc_core.State.cost) 0 runs
        in
        let refs =
          List.fold_left (fun acc (_, st) -> acc + Cost.mem_refs st.Fpc_core.State.cost) 0 runs
        in
        let fast, slow =
          List.fold_left
            (fun (f, s) (_, (st : Fpc_core.State.t)) ->
              (f + st.metrics.fast_transfers, s + st.metrics.slow_transfers))
            (0, 0) runs
        in
        if label = "I4 full" then full_cycles := cycles;
        (label, cycles, refs, fast, slow))
      configs
  in
  List.iter
    (fun (label, cycles, refs, fast, slow) ->
      Tablefmt.add_row t
        [
          label;
          Tablefmt.cell_int cycles;
          Tablefmt.cell_float (Harness.ratio refs (fast + slow));
          Tablefmt.cell_pct (Harness.ratio fast (fast + slow));
          Tablefmt.cell_ratio (Harness.ratio cycles !full_cycles);
        ])
    results;
  Tablefmt.add_note t
    "each row removes or resizes one mechanism; the bundle is needed for \
     the jump-speed fast path, but banks carry most of the cycle win";
  let cycles_of name =
    let _, c, _, _, _ = List.find (fun (l, _, _, _, _) -> l = name) results in
    c
  in
  let ratio name = Harness.ratio (cycles_of name) !full_cycles in
  {
    Exp.id = "E15";
    key = "ablation";
    title = "Ablating the fast-path mechanisms";
    paper_claim =
      "extension: decompose the I3+I4 bundle into its mechanisms (\xC2\xA76, \
       \xC2\xA77)";
    tables = [ Tablefmt.render t ];
    headlines =
      [
        ("i2_over_i4", ratio "I2 (baseline Mesa)");
        ("no_return_stack_over_i4", ratio "I4 without return stack");
        ("no_banks_over_i4", ratio "I4 without banks");
        ("no_free_frames_over_i4", ratio "I4 without free-frame stack");
      ];
  }
