lib/compiler/codegen.ml: Array Builder Convention Fpc_isa Fpc_lang Fpc_mesa Hashtbl List Opcode Option Printf String
