type t = {
  sink : Fpc_trace.Sink.t;
  procs : Fpc_trace.Procmap.t;
  profile : Fpc_trace.Profile.t;
}

let create ?capacity ~image ~engine () =
  let name = Fpc_core.Engine.name engine in
  let sink = Fpc_trace.Sink.create ?capacity ~engine:name () in
  let procs = Interp.procmap_of_image image in
  let profile = Fpc_trace.Profile.create ~procs ~engine:name in
  Fpc_trace.Sink.set_listener sink (Some (Fpc_trace.Profile.record profile));
  { sink; procs; profile }

let run ?max_steps t ~image ~engine ~instance ~proc ~args =
  let st =
    Interp.boot ~tracer:t.sink ~image ~engine ~instance ~proc ~args ()
  in
  Interp.run ?max_steps st;
  let o = Interp.outcome st in
  ignore
    (Fpc_trace.Profile.finish t.profile ~cycles:o.Interp.o_cycles
       ~mem_refs:o.Interp.o_mem_refs);
  (st, o)

let render t =
  Fpc_trace.Profile.render ~dropped:(Fpc_trace.Sink.dropped t.sink) t.profile

let chrome ?final_cycles t =
  Fpc_trace.Export.chrome ~procs:t.procs
    ~engine:(Fpc_trace.Sink.engine t.sink)
    ?final_cycles
    (Fpc_trace.Sink.events t.sink)

let folded ?final_cycles t =
  Fpc_trace.Export.folded ~procs:t.procs ?final_cycles
    (Fpc_trace.Sink.events t.sink)
