(* Stress and interaction tests: coroutines inside processes, traps under
   every engine, extreme engine configurations, small-memory images.  The
   invariant throughout: behaviour is identical whatever the machinery
   underneath (F-properties + §2's levels of abstraction). *)

let engines =
  [
    ("I1", Fpc_core.Engine.i1);
    ("I2", Fpc_core.Engine.i2);
    ("I3", Fpc_core.Engine.i3 ());
    ("I4", Fpc_core.Engine.i4 ());
  ]

let run_engine ~engine src =
  match Fpc_compiler.Compile.run ~engine src with
  | Error m -> Alcotest.fail m
  | Ok o -> (
    match o.Fpc_interp.Interp.o_status with
    | Fpc_core.State.Halted -> o.o_output
    | Fpc_core.State.Running -> Alcotest.fail "still running"
    | Fpc_core.State.Trapped r ->
      Alcotest.fail ("trapped: " ^ Fpc_core.State.trap_reason_to_string r))

let all_engines_agree ?expected src () =
  let reference = run_engine ~engine:Fpc_core.Engine.i2 src in
  (match expected with
  | Some e -> Alcotest.(check (list int)) "reference output" e reference
  | None -> ());
  List.iter
    (fun (name, engine) ->
      Alcotest.(check (list int)) name reference (run_engine ~engine src))
    engines

(* Each forked process spins up its own coroutine partner: frame heaps,
   banks, return stacks and the scheduler all interleave. *)
let coroutines_in_processes =
  {|
MODULE Main;
VAR finished: INT := 0;
PROC gen(start: INT) =
  VAR who: CONTEXT := RETCTX;
  VAR n: INT := start;
  WHILE TRUE DO
    TRANSFER(who, n);
    who := RETCTX;
    n := n + 10;
  END;
END;
PROC worker(id: INT) =
  VAR v: INT := TRANSFER(@gen, id * 100);
  VAR co: CONTEXT := RETCTX;
  VAR i: INT := 0;
  WHILE i < 3 DO
    OUTPUT v;
    YIELD;
    v := TRANSFER(co, 0);
    co := RETCTX;
    i := i + 1;
  END;
  finished := finished + 1;
END;
PROC main() =
  FORK worker(1);
  FORK worker(2);
  WHILE finished < 2 DO
    YIELD;
  END;
  OUTPUT 9999;
END;
END;
|}

(* Mutual recursion across a module boundary. *)
let mutual_recursion =
  {|
MODULE Odd;
IMPORT Even;
PROC odd(n: INT): INT =
  IF n = 0 THEN
    RETURN 0;
  END;
  RETURN Even.even(n - 1);
END;
END;

MODULE Even;
IMPORT Odd;
PROC even(n: INT): INT =
  IF n = 0 THEN
    RETURN 1;
  END;
  RETURN Odd.odd(n - 1);
END;
END;

MODULE Main;
IMPORT Odd, Even;
PROC main() =
  OUTPUT Odd.odd(11);
  OUTPUT Even.even(10);
  OUTPUT Odd.odd(40);
END;
END;
|}

(* A procedure value passed between processes and TRANSFERred to. *)
let proc_values_across_processes =
  {|
MODULE Main;
VAR done_count: INT := 0;
PROC helper(x: INT) =
  OUTPUT x * 2;
  TRANSFER(RETCTX, 0);
END;
PROC worker(which: INT) =
  TRANSFER(@helper, which + 5);
  done_count := done_count + 1;
END;
PROC main() =
  FORK worker(10);
  FORK worker(20);
  WHILE done_count < 2 DO
    YIELD;
  END;
  OUTPUT done_count;
END;
END;
|}

let test_trap_handler_all_engines () =
  (* A source-level handler procedure installed as the machine's trap
     context; the faulting division resumes with the handler's value. *)
  let src =
    {|
MODULE Main;
PROC handler(code: INT): INT =
  OUTPUT 7000 + code;
  RETURN 5555;
END;
PROC main() =
  VAR zero: INT := 0;
  OUTPUT 100 / (zero + 1);
  OUTPUT 200 / zero;
  OUTPUT 300;
END;
END;
|}
  in
  List.iter
    (fun (name, engine) ->
      let convention = Fpc_compiler.Convention.for_engine engine in
      let image =
        match Fpc_compiler.Compile.image ~convention src with
        | Ok i -> i
        | Error m -> Alcotest.fail m
      in
      Fpc_mesa.Image.set_trap_handler image
        (Fpc_mesa.Image.descriptor_of image ~instance:"Main" ~proc:"handler");
      let st =
        Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
          ~args:[] ()
      in
      let o = Fpc_interp.Interp.outcome st in
      (match o.o_status with
      | Fpc_core.State.Halted -> ()
      | _ -> Alcotest.fail (name ^ ": did not halt"));
      Alcotest.(check (list int)) name
        [ 100; 7000 + Fpc_core.State.trap_code Fpc_core.State.Div_zero; 5555; 300 ]
        o.o_output)
    engines

let test_extreme_engine_configs () =
  (* Degenerate configurations must still be correct, only slower. *)
  let src = Fpc_workload.Programs.find "fib" in
  let reference = run_engine ~engine:Fpc_core.Engine.i2 src in
  let configs =
    [
      ("1-deep return stack", Fpc_core.Engine.i3 ~return_stack_depth:1 ());
      ("2 banks", Fpc_core.Engine.i4
         ~bank_config:{ Fpc_regbank.Bank_file.default_config with bank_count = 2 } ());
      ("4-word banks", Fpc_core.Engine.i4
         ~bank_config:{ Fpc_regbank.Bank_file.default_config with bank_words = 4 } ());
      ("64-word banks", Fpc_core.Engine.i4
         ~bank_config:{ Fpc_regbank.Bank_file.default_config with bank_words = 64 } ());
      ("no dirty tracking", Fpc_core.Engine.i4
         ~bank_config:{ Fpc_regbank.Bank_file.default_config with track_dirty = false } ());
      ("tiny free-frame stack", Fpc_core.Engine.i4 ~free_frame_stack_depth:1 ());
      ("divert policy", Fpc_core.Engine.i4
         ~bank_config:{ Fpc_regbank.Bank_file.default_config with
                        pointer_policy = Fpc_regbank.Bank_file.Divert } ());
    ]
  in
  List.iter
    (fun (name, engine) ->
      Alcotest.(check (list int)) name reference (run_engine ~engine src))
    configs

let test_extreme_configs_whole_suite () =
  (* The brutal configuration (1 bank beyond the stack bank, 1-deep return
     stack) over every sequential suite program. *)
  let engine =
    Fpc_core.Engine.i4 ~return_stack_depth:1
      ~bank_config:{ Fpc_regbank.Bank_file.default_config with bank_count = 2 }
      ~free_frame_stack_depth:1 ()
  in
  List.iter
    (fun program ->
      let src = Fpc_workload.Programs.find program in
      let reference = run_engine ~engine:Fpc_core.Engine.i2 src in
      Alcotest.(check (list int)) program reference (run_engine ~engine src))
    Fpc_workload.Programs.sequential

let test_small_memory_image () =
  let src = Fpc_workload.Programs.find "fib" in
  match
    Fpc_compiler.Compile.image ~memory_words:16384 src
  with
  | Error m -> Alcotest.fail m
  | Ok image ->
    let st =
      Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2
        ~instance:"Main" ~proc:"main" ~args:[] ()
    in
    Alcotest.(check (list int)) "fib in 16K words" [ 377 ]
      (Fpc_core.State.output st)

let test_var_params_through_deep_calls () =
  (* A pointer to main's local threads through three call levels and is
     written at the bottom — C2 machinery under banks. *)
  let src =
    {|
MODULE Main;
PROC c(VAR x: INT) =
  x := x + 100;
END;
PROC b(VAR x: INT) =
  c(x);
  x := x + 10;
END;
PROC a(VAR x: INT) =
  b(x);
  x := x + 1;
END;
PROC main() =
  VAR v: INT := 0;
  a(v);
  OUTPUT v;
  a(v);
  OUTPUT v;
END;
END;
|}
  in
  all_engines_agree ~expected:[ 111; 222 ] src ()

let test_outputs_inside_coroutine_bodies () =
  all_engines_agree coroutines_in_processes ()

let test_mutual_recursion () =
  all_engines_agree ~expected:[ 1; 1; 0 ] mutual_recursion ()

let test_proc_values_across_processes () =
  all_engines_agree proc_values_across_processes ()

let () =
  Alcotest.run "stress"
    [
      ( "interaction",
        [
          Alcotest.test_case "coroutines inside processes" `Quick
            test_outputs_inside_coroutine_bodies;
          Alcotest.test_case "mutual recursion across modules" `Quick
            test_mutual_recursion;
          Alcotest.test_case "procedure values across processes" `Quick
            test_proc_values_across_processes;
          Alcotest.test_case "VAR params through deep calls" `Quick
            test_var_params_through_deep_calls;
          Alcotest.test_case "trap handler on all engines" `Quick
            test_trap_handler_all_engines;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "degenerate engine configs" `Quick
            test_extreme_engine_configs;
          Alcotest.test_case "brutal config, whole suite" `Quick
            test_extreme_configs_whole_suite;
          Alcotest.test_case "16K-word image" `Quick test_small_memory_image;
        ] );
    ]
