(* Tests for the Mesa tables: descriptors, GFT, layout, linker, space. *)

open Fpc_mesa
open Fpc_machine

let qtest = QCheck_alcotest.to_alcotest

(* ---- Descriptor ---- *)

let test_descriptor_cases () =
  Alcotest.(check int) "nil packs to 0" 0 (Descriptor.pack Descriptor.Nil);
  let d = Descriptor.Proc { gfi = 513; ev = 17 } in
  Alcotest.(check bool) "proc roundtrip" true
    (Descriptor.equal d (Descriptor.unpack (Descriptor.pack d)));
  let f = Descriptor.Frame 8192 in
  Alcotest.(check bool) "frame roundtrip" true
    (Descriptor.equal f (Descriptor.unpack (Descriptor.pack f)));
  Alcotest.(check bool) "tag bit distinguishes" true
    (Descriptor.pack d land 1 = 1 && Descriptor.pack f land 1 = 0)

let test_descriptor_rejects () =
  let invalid f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "unaligned frame" true
    (invalid (fun () -> Descriptor.pack (Descriptor.Frame 8193)));
  Alcotest.(check bool) "gfi 0" true
    (invalid (fun () -> Descriptor.pack (Descriptor.Proc { gfi = 0; ev = 0 })));
  Alcotest.(check bool) "gfi too big" true
    (invalid (fun () -> Descriptor.pack (Descriptor.Proc { gfi = 1024; ev = 0 })));
  Alcotest.(check bool) "ev too big" true
    (invalid (fun () -> Descriptor.pack (Descriptor.Proc { gfi = 1; ev = 32 })));
  Alcotest.(check bool) "malformed word" true
    (invalid (fun () -> Descriptor.unpack 0x0006))

let prop_descriptor_roundtrip =
  QCheck.Test.make ~name:"descriptor: pack/unpack roundtrip"
    QCheck.(pair (int_range 1 1023) (int_range 0 31))
    (fun (gfi, ev) ->
      let d = Descriptor.Proc { gfi; ev } in
      Descriptor.equal d (Descriptor.unpack (Descriptor.pack d)))

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"descriptor: frame context roundtrip"
    QCheck.(int_range 1 16383)
    (fun q ->
      let lf = q * 4 in
      Descriptor.equal (Descriptor.Frame lf)
        (Descriptor.unpack (Descriptor.pack (Descriptor.Frame lf))))

(* ---- Gft ---- *)

let test_gft_roundtrip () =
  let mem = Memory.create ~size_words:4096 () in
  let g = Gft.create ~mem ~base:16 in
  Gft.set_entry g ~gfi:5 ~gf_addr:2048 ~bias:3;
  Alcotest.(check (pair int int)) "entry" (2048, 3)
    (Gft.read_entry g ~cost_mem_read:false ~gfi:5)

let test_gft_metered () =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:4096 () in
  let g = Gft.create ~mem ~base:16 in
  Gft.set_entry g ~gfi:1 ~gf_addr:1024 ~bias:0;
  ignore (Gft.read_entry g ~cost_mem_read:true ~gfi:1);
  Alcotest.(check int) "one reference" 1 (Cost.mem_refs cost);
  ignore (Gft.read_entry g ~cost_mem_read:false ~gfi:1);
  Alcotest.(check int) "peek free" 1 (Cost.mem_refs cost)

(* ---- a hand-built two-module program for linker tests ---- *)

let leaf_module =
  let open Fpc_isa.Opcode in
  let b = Fpc_isa.Builder.create () in
  List.iter (Fpc_isa.Builder.emit b) [ Sl 0; Ll 0; Li 1; Add; Ret ];
  {
    Compiled.m_name = "Leaf";
    m_globals_words = 1;
    m_global_init = [ (0, 7) ];
    m_imports = [||];
    m_procs =
      [
        {
          Compiled.p_name = "inc";
          p_body = Fpc_isa.Builder.to_bytes b;
          p_locals_words = 1;
          p_nargs = 1;
          p_dfc_fixups = [];
          p_lpd_fixups = [];
          p_efc_sites = [];
        };
      ];
  }

let main_module =
  let open Fpc_isa.Opcode in
  let b = Fpc_isa.Builder.create () in
  List.iter (Fpc_isa.Builder.emit b) [ Li 41; Efc 0; Out; Ret ];
  {
    Compiled.m_name = "Main";
    m_globals_words = 0;
    m_global_init = [];
    m_imports = [| ("Leaf", "inc") |];
    m_procs =
      [
        {
          Compiled.p_name = "main";
          p_body = Fpc_isa.Builder.to_bytes b;
          p_locals_words = 1;
          p_nargs = 0;
          p_dfc_fixups = [];
          p_lpd_fixups = [];
          p_efc_sites = [];
        };
      ];
  }

let link_exn ?linkage ?extra_instances modules =
  match Linker.link ?linkage ?extra_instances modules with
  | Ok image -> image
  | Error m -> Alcotest.fail m

let test_link_layout () =
  let image = link_exn [ leaf_module; main_module ] in
  let leaf = Image.find_instance image "Leaf" in
  let main = Image.find_instance image "Main" in
  Alcotest.(check bool) "distinct gfis" true (leaf.ii_gfi <> main.ii_gfi);
  Alcotest.(check int) "gf quad aligned" 0 (leaf.ii_gf_addr land 3);
  Alcotest.(check int) "code base in GF" leaf.ii_code_base
    (Memory.peek image.mem leaf.ii_gf_addr);
  Alcotest.(check int) "global init" 7
    (Memory.peek image.mem (leaf.ii_gf_addr + Image.global_base));
  (* Main's LV entry 0 sits at gf-1 and holds Leaf.inc's descriptor. *)
  let lv_word = Memory.peek image.mem (main.ii_gf_addr - 1) in
  let expected = Image.descriptor_of image ~instance:"Leaf" ~proc:"inc" in
  Alcotest.(check int) "LV binds import" (Descriptor.pack expected) lv_word

let test_link_entry_vector () =
  let image = link_exn [ leaf_module; main_module ] in
  let leaf = Image.find_instance image "Leaf" in
  let pi = Image.find_proc image ~instance:"Leaf" ~proc:"inc" in
  let ev0 = Memory.peek image.mem leaf.ii_code_base in
  Alcotest.(check int) "EV[0]" pi.pi_entry_offset ev0;
  let fsi = Memory.peek_code_byte image.mem ~code_base:leaf.ii_code_base ~pc:ev0 in
  Alcotest.(check int) "fsi byte" pi.pi_fsi fsi

let test_link_rejects_bad_import () =
  let bad = { main_module with Compiled.m_imports = [| ("Nowhere", "x") |] } in
  match Linker.link [ leaf_module; bad ] with
  | Ok _ -> Alcotest.fail "should reject"
  | Error m -> Alcotest.(check bool) "has message" true (String.length m > 0)

let test_link_duplicate_module () =
  match Linker.link [ leaf_module; leaf_module ] with
  | Ok _ -> Alcotest.fail "should reject duplicates"
  | Error _ -> ()

(* A module with 40 entry points exercises the GFT bias mechanism. *)
let big_module =
  let proc i =
    let b = Fpc_isa.Builder.create () in
    Fpc_isa.Builder.emit b (Fpc_isa.Opcode.Li (i mod 11));
    Fpc_isa.Builder.emit b Fpc_isa.Opcode.Ret;
    {
      Compiled.p_name = Printf.sprintf "p%d" i;
      p_body = Fpc_isa.Builder.to_bytes b;
      p_locals_words = 1;
      p_nargs = 0;
      p_dfc_fixups = [];
      p_lpd_fixups = [];
          p_efc_sites = [];
    }
  in
  {
    Compiled.m_name = "Big";
    m_globals_words = 0;
    m_global_init = [];
    m_imports = [||];
    m_procs = List.init 40 proc;
  }

let test_bias_for_many_entry_points () =
  let image = link_exn [ big_module ] in
  let big = Image.find_instance image "Big" in
  Alcotest.(check int) "two gfis (40 > 32 entries)" 2 big.ii_gfi_count;
  let d = Image.descriptor_of image ~instance:"Big" ~proc:"p35" in
  (match d with
  | Descriptor.Proc { gfi; ev } ->
    Alcotest.(check int) "gfi biased" (big.ii_gfi + 1) gfi;
    Alcotest.(check int) "ev mod 32" 3 ev
  | Descriptor.Frame _ | Descriptor.Nil -> Alcotest.fail "expected proc descriptor");
  let gf0, b0 = Gft.read_entry image.gft ~cost_mem_read:false ~gfi:big.ii_gfi in
  let gf1, b1 = Gft.read_entry image.gft ~cost_mem_read:false ~gfi:(big.ii_gfi + 1) in
  Alcotest.(check int) "same GF" gf0 gf1;
  Alcotest.(check (pair int int)) "biases 0 and 1" (0, 1) (b0, b1)

let test_too_many_entry_points () =
  let over =
    {
      big_module with
      Compiled.m_procs =
        List.init 129 (fun i ->
            { (List.nth big_module.m_procs (i mod 40)) with
              Compiled.p_name = Printf.sprintf "q%d" i });
    }
  in
  match Compiled.validate over with
  | Ok () -> Alcotest.fail "129 entry points should be rejected"
  | Error _ -> ()

let test_instantiate () =
  let image = link_exn [ leaf_module; main_module ] in
  (match Linker.instantiate image ~module_name:"Leaf" with
  | Error m -> Alcotest.fail m
  | Ok name ->
    Alcotest.(check string) "instance name" "Leaf#1" name;
    let i0 = Image.find_instance image "Leaf" in
    let i1 = Image.find_instance image "Leaf#1" in
    Alcotest.(check int) "shared code" i0.ii_code_base i1.ii_code_base;
    Alcotest.(check bool) "separate globals" true (i0.ii_gf_addr <> i1.ii_gf_addr);
    Alcotest.(check int) "fresh instance initialised" 7
      (Memory.peek image.mem (i1.ii_gf_addr + Image.global_base)));
  let direct = link_exn ~linkage:Image.Direct [ leaf_module; main_module ] in
  match Linker.instantiate direct ~module_name:"Leaf" with
  | Ok _ -> Alcotest.fail "direct image must refuse new instances"
  | Error _ -> ()

let test_direct_headers () =
  let image = link_exn ~linkage:Image.Direct [ leaf_module; main_module ] in
  let leaf = Image.find_instance image "Leaf" in
  match Image.direct_address image ~instance:"Leaf" ~proc:"inc" with
  | None -> Alcotest.fail "expected a direct header"
  | Some abs ->
    let hi = Memory.peek_code_byte image.mem ~code_base:0 ~pc:abs in
    let lo = Memory.peek_code_byte image.mem ~code_base:0 ~pc:(abs + 1) in
    Alcotest.(check int) "header GF" leaf.ii_gf_addr ((hi lsl 8) lor lo);
    let pi = Image.find_proc image ~instance:"Leaf" ~proc:"inc" in
    Alcotest.(check int) "fsi follows" pi.pi_fsi
      (Memory.peek_code_byte image.mem ~code_base:0 ~pc:(abs + 2))

let test_multi_instance_gets_no_headers () =
  let image =
    link_exn ~linkage:Image.Direct ~extra_instances:[ "Leaf" ]
      [ leaf_module; main_module ]
  in
  Alcotest.(check (option int)) "no header under D2 fallback" None
    (Image.direct_address image ~instance:"Leaf" ~proc:"inc")

let test_relocations_refused_when_direct () =
  let image = link_exn ~linkage:Image.Direct [ leaf_module; main_module ] in
  (match Linker.move_code_segment image ~module_name:"Leaf" with
  | Ok _ -> Alcotest.fail "D3: direct linkage freezes code"
  | Error _ -> ());
  match Linker.move_global_frame image ~instance:"Leaf" with
  | Ok _ -> Alcotest.fail "D3 for global frames too"
  | Error _ -> ()

let test_space_measure () =
  let image = link_exn [ leaf_module; main_module ] in
  let r = Space.measure image in
  Alcotest.(check int) "EV bytes: 2 procs" 4 r.ev_bytes;
  Alcotest.(check int) "no headers external" 0 r.header_bytes;
  Alcotest.(check int) "fsi bytes = procs" 2 r.fsi_bytes;
  Alcotest.(check int) "one 1-byte EFC" 1 r.call_sites.efc_one_byte;
  Alcotest.(check int) "gft entries" 2 r.gft_entries_used;
  Alcotest.(check bool) "code accounted" true
    (r.code_bytes = r.ev_bytes + r.header_bytes + r.fsi_bytes + r.body_bytes)

let test_layout_regions () =
  let ladder = Fpc_frames.Size_class.default in
  let l = Layout.make ~ladder () in
  Alcotest.(check bool) "regions ordered" true
    (l.gft_base < l.av_base && l.av_base < l.static_base
    && l.static_base < l.heap_base && l.heap_base < l.heap_limit
    && l.heap_limit <= l.code_region_base
    && l.code_region_base < l.memory_words);
  Alcotest.(check bool) "frame region test" true
    (Layout.in_frame_region l l.heap_base
    && (not (Layout.in_frame_region l (l.heap_base - 1)))
    && not (Layout.in_frame_region l l.heap_limit))

let () =
  Alcotest.run "mesa"
    [
      ( "descriptor",
        [
          Alcotest.test_case "cases" `Quick test_descriptor_cases;
          Alcotest.test_case "rejects" `Quick test_descriptor_rejects;
          qtest prop_descriptor_roundtrip;
          qtest prop_frame_roundtrip;
        ] );
      ( "gft",
        [
          Alcotest.test_case "roundtrip" `Quick test_gft_roundtrip;
          Alcotest.test_case "metered read" `Quick test_gft_metered;
        ] );
      ( "linker",
        [
          Alcotest.test_case "layout" `Quick test_link_layout;
          Alcotest.test_case "entry vector" `Quick test_link_entry_vector;
          Alcotest.test_case "bad import" `Quick test_link_rejects_bad_import;
          Alcotest.test_case "duplicate module" `Quick test_link_duplicate_module;
          Alcotest.test_case "bias >32 entries" `Quick test_bias_for_many_entry_points;
          Alcotest.test_case "129 entries rejected" `Quick test_too_many_entry_points;
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "direct headers" `Quick test_direct_headers;
          Alcotest.test_case "D2 fallback" `Quick test_multi_instance_gets_no_headers;
          Alcotest.test_case "D3 refusals" `Quick test_relocations_refused_when_direct;
        ] );
      ( "space",
        [
          Alcotest.test_case "measure" `Quick test_space_measure;
          Alcotest.test_case "layout regions" `Quick test_layout_regions;
        ] );
    ]
