(** Procedure identity: mapping code addresses back to names.

    Events carry raw PCs; profiles and exports want ["Main.fib"].  A
    procmap is built once per image from (name, first byte, limit byte)
    code ranges — see [Fpc_interp.Interp.procmap_of_image] — and answers
    point queries by binary search.  Procedures are identified by dense
    integer ids so profile folding is array-indexed; id [-1] means "no
    known procedure covers that address". *)

type t

val create : (string * int * int) list -> t
(** [(name, lo, hi)] ranges, [lo] inclusive, [hi] exclusive, in absolute
    byte addresses.  Ranges are sorted internally; when two ranges start at
    the same address (several instances of one module share code) the
    first listed wins.  Overlapping ranges other than exact duplicates
    raise [Invalid_argument]. *)

val count : t -> int
(** Number of distinct procedures (valid ids are [0 .. count-1]). *)

val id_of_pc : t -> int -> int
(** The procedure whose code range contains the byte address, or -1. *)

val name : t -> int -> string
(** Name for an id; ["(unknown)"] for -1 or out-of-range. *)

val find : t -> string -> int option
(** Id for an exact name, if present. *)
