(** The compiled execution tier: threaded code over the predecoded image.

    The interpreter pays a fetch/decode dispatch per instruction even
    though the predecode table already did the decoding at link time.
    This tier goes one step further and translates the code region into
    an array of OCaml closures — one per reachable instruction boundary —
    so steady-state execution is a chain of direct calls with {e no}
    dispatch loop at all.  Straight-line runs of pure stack/variable
    instructions are fused into superinstructions: one stack-depth guard,
    one batched meter update ({!Fpc_machine.Cost.block_bill}), and
    peephole-collapsed dataflow (load/load/arith, compare-and-branch)
    that keeps intermediate values in OCaml locals instead of bouncing
    them through the evaluation stack.

    {2 Cross-call fusion}

    Call sites whose destination is resolvable at translate time —
    DIRECTCALL / SHORTDIRECTCALL headers, LOCALCALL entry-vector slots,
    EXTERNALCALL descriptors chased through the link vector and GFT —
    are compiled into specialised transfer nodes with the resolution
    baked in.  When the callee is a {e known leaf} (a straight run of
    pure instructions ending in RETURN, with a bounded frame and no
    trap-capable op), its body is spliced into the caller's node: one
    combined stack-depth guard admits body-plus-RETURN, and the meters
    are charged in one batch — batched, but never {e reordered} across
    the call's frame-allocation trap point, which the specialised call
    has already passed.  Baked resolutions that read link words outside
    the immutable code region (LV descriptors, GFT entries, environment
    code-base words, I1 pair tables) are re-checked against the live
    store on every execution, and a host-side rebind
    ({!Fpc_mesa.Linker.rebind_lv}, {!Fpc_core.Simple_links.rebind})
    that overwrites a depended-on word invalidates the translation's
    fused external calls via the image's relink observer — subsequent
    executions deopt to the interpreter's live resolution.

    {2 Lazy per-procedure translation}

    Translation is performed per procedure, on the first XFER into it,
    rather than for the whole image at attach time: a served job that
    touches three procedures of a fifty-procedure image translates
    three.  Procedure body ranges come from the image directory; every
    PC the machine dispatches lies inside one (control enters a
    procedure at its entry and jumps/returns/resumes stay inside
    bodies).  The translation — slots, procedure table, and translated
    flags — is shared by the pristine image and every clone; filling is
    serialised by a mutex and published per-boundary as immutable node
    records, so concurrent domains race safely (a stale read costs one
    deopted interpreter step, never an error).

    Equivalence is the contract: a translated run is {e bit-identical} to
    the interpreter — outcome, output, cycle / storage-reference /
    transfer meters, trap behaviour, and (under a tracer) the exact event
    stream.  Anything the fast path cannot prove — a stack-depth guard
    failure, an installed tracer, a trap-capable instruction, undecodable
    bytes, an invalidated or mismatched baked resolution, fuel expiry
    mid-block — deopts to the interpreter's own semantics at an exact
    instruction boundary.  Host-speed only: simulated meters are
    unaffected by whether a run used this tier (that is the whole
    point). *)

type t

val translate : Fpc_mesa.Image.t -> t
(** Translate the image's carved code region {e eagerly}: every
    procedure's boundaries are filled up front (tests and tools; the
    serving path uses {!of_image}'s lazy filling).  Does not consult or
    update the image's cached attachment. *)

val of_image : Fpc_mesa.Image.t -> t * bool
(** The image's shared translation skeleton: reuses the one cached on
    the image directory or builds, attaches it, and registers the relink
    observer that invalidates fused calls.  Procedures translate lazily
    on first entry.  Returns [true] iff it was already attached (a
    translation-cache hit). *)

val run : ?max_steps:int -> t -> Fpc_core.State.t -> unit
(** Drive [st] to completion on the compiled tier: exactly
    {!Fpc_interp.Interp.run} (default [max_steps] 20 million, recording a
    [Step_limit] trap on expiry), including resumability — a fuel-sliced
    caller may reset the status to [Running] and call again, and the next
    instruction executes at the exact boundary where the budget ran out.
    The first XFER into an untranslated procedure translates it (counted
    in [metrics.tier_lazy_translations]) and retries the same PC without
    retiring an instruction.  Instructions whose remaining budget cannot
    cover a whole block, and PCs without a node, are stepped by the
    interpreter (counted in [metrics.tier_deopts]); fast-path
    instructions are counted in [metrics.tier_fast_instrs] /
    [tier_super_instrs], and each fused-call execution in
    [metrics.tier_fused_calls].  A node's instruction count is an upper
    bound (block plus spliced callee), so fuel admission is conservative
    and expiry stays exact. *)

val boundaries : t -> int
(** Number of byte boundaries with a compiled node (translated so far). *)

val fused_boundaries : t -> int
(** Of {!boundaries}, how many have a multi-instruction fused fast path
    (a superinstruction of two or more instructions). *)

val fused_call_sites : t -> int
(** Distinct call sites whose known-leaf callee was spliced into the
    caller's node. *)

val procs : t -> int
(** Procedure bodies the translation covers (deduplicated across
    instances sharing a module's code). *)

val procs_translated : t -> int
(** Of {!procs}, how many have been translated so far — under lazy
    filling, the procedures actually entered. *)

val invalidations : t -> int
(** Relink notifications that overwrote a word some fused call site's
    baked resolution depends on (each clears {!fusion_valid}). *)

val fusion_valid : t -> bool
(** False once a relink invalidated the baked external-call resolutions;
    fused external calls then deopt to live resolution. *)
