test/test_frames.ml: Alcotest Alloc_vector Array Cost Fpc_frames Fpc_machine Frame Gen List Memory Printf QCheck QCheck_alcotest Size_class
