test/test_stress.ml: Alcotest Fpc_compiler Fpc_core Fpc_interp Fpc_mesa Fpc_regbank Fpc_workload List
