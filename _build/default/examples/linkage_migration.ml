(* Early binding as a performance dial (§6, §8).

   "Note that with either linkage the program behaves identically (except
   for space and speed), so changing between them only changes the balance
   among space, speed of execution, and speed of changing the linkage."
   §8 suggests a programming environment could convert between the
   representations automatically; here we recompile the same source under
   each encoding and measure the balance, then exercise the run-time
   rebinding that only the flexible encoding permits.

   Run with:  dune exec examples/linkage_migration.exe *)

let source = Fpc_workload.Programs.find "callchain"

let measure convention engine =
  match Fpc_compiler.Compile.image ~convention source with
  | Error m -> failwith m
  | Ok image ->
    let st =
      Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
        ~args:[] ()
    in
    assert (st.Fpc_core.State.status = Fpc_core.State.Halted);
    let space = Fpc_mesa.Space.measure image in
    let o = Fpc_interp.Interp.outcome st in
    (o.o_output, o.o_cycles, o.o_mem_refs, space)

let () =
  print_endline "-- one source, three encodings (the \xC2\xA78 dial) --";
  Printf.printf "  %-10s %10s %14s %12s %12s\n" "linkage" "cycles"
    "storage refs" "call bytes" "LV words";
  let reference = ref None in
  List.iter
    (fun (name, convention, engine) ->
      let output, cycles, refs, space = measure convention engine in
      (match !reference with
      | None -> reference := Some output
      | Some r -> assert (r = output));
      Printf.printf "  %-10s %10d %14d %12d %12d\n" name cycles refs
        (Fpc_mesa.Space.call_site_bytes space.call_sites)
        space.lv_words)
    [
      ("external", Fpc_compiler.Convention.external_, Fpc_core.Engine.i3 ());
      ("direct", Fpc_compiler.Convention.direct, Fpc_core.Engine.i3 ());
      ("short", Fpc_compiler.Convention.short_direct, Fpc_core.Engine.i3 ());
    ];
  print_endline "  (identical outputs asserted)";
  print_endline "";
  print_endline "-- run-time rebinding, which only the LV encoding allows --";
  (match Fpc_compiler.Compile.image source with
  | Error m -> failwith m
  | Ok image ->
    (* Swap Main's import of AMid.step for CLeaf.leaf mid-image: no code
       bytes change, only one LV word. *)
    let main = Fpc_mesa.Image.find_instance image "Main" in
    let step_index = ref (-1) in
    Array.iteri
      (fun i (m, p) -> if m = "AMid" && p = "step" then step_index := i)
      main.ii_imports;
    Fpc_mesa.Linker.rebind_lv image ~instance:"Main" ~lv_index:!step_index
      ~target:("CLeaf", "leaf");
    let st =
      Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2
        ~instance:"Main" ~proc:"main" ~args:[] ()
    in
    assert (st.Fpc_core.State.status = Fpc_core.State.Halted);
    Printf.printf
      "  after rebinding Main's AMid.step -> CLeaf.leaf: output = %s\n"
      (String.concat " "
         (List.map string_of_int (Fpc_core.State.output st))));
  print_endline
    "  \"LV permits external procedure references to be bound without any \
     change to the code\" (\xC2\xA75.1) \xE2\x80\x94 a direct-linked image \
     would have to patch every call site."
