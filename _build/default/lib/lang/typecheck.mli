(** Static checks for mini-Mesa programs, and the signature tables the code
    generator consumes.

    Beyond ordinary scoping/typing, two rules protect machine-level
    invariants:
    - a VAR (by-reference) argument must be a variable, so the compiler can
      take its address (LLA/LGA — the §7.4 pointer cases);
    - FORK may not pass VAR parameters: the pointer would outlive the
      forking frame. *)

type proc_sig = {
  ps_params : (Ast.typ * bool) list;  (** (type, is-VAR) in order *)
  ps_result : Ast.typ option;
}

type module_env = {
  me_globals : (string * Ast.typ) list;  (** in declaration order *)
  me_procs : (string * proc_sig) list;  (** in declaration (entry-vector) order *)
  me_imports : string list;
}

type env = (string * module_env) list

val check : Ast.program -> (env, string) result

val find_sig : env -> current:string -> Ast.callee -> proc_sig
(** Resolve a callee's signature (assumes a checked program).  Raises
    [Not_found] otherwise. *)
