(** Human-readable machine statistics after a run: the dynamic instruction
    mix, transfer counts and fast-path share, storage traffic, frame-heap
    activity, and (when configured) return-stack and register-bank
    behaviour.  Backs [fpc run --stats]. *)

val render : Fpc_core.State.t -> string
