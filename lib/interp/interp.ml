open Fpc_machine
open Fpc_core

type fastpath = {
  f_fast_transfers : int;
  f_slow_transfers : int;
  f_rs_pushes : int;
  f_rs_hits : int;
  f_rs_empty_pops : int;
  f_rs_flushes : int;
  f_rs_flushed_entries : int;
  f_rs_spills : int;
  f_bank_underflows : int;
  f_bank_overflows : int;
  f_bank_words_loaded : int;
  f_bank_words_spilled : int;
  f_ff_hits : int;
  f_ff_misses : int;
  f_frame_allocs : int;
  f_frame_frees : int;
}

let no_fastpath =
  {
    f_fast_transfers = 0;
    f_slow_transfers = 0;
    f_rs_pushes = 0;
    f_rs_hits = 0;
    f_rs_empty_pops = 0;
    f_rs_flushes = 0;
    f_rs_flushed_entries = 0;
    f_rs_spills = 0;
    f_bank_underflows = 0;
    f_bank_overflows = 0;
    f_bank_words_loaded = 0;
    f_bank_words_spilled = 0;
    f_ff_hits = 0;
    f_ff_misses = 0;
    f_frame_allocs = 0;
    f_frame_frees = 0;
  }

type outcome = {
  o_status : State.status;
  o_output : int list;
  o_stack : int list;
  o_instructions : int;
  o_cycles : int;
  o_mem_refs : int;
  o_calls : int;
  o_returns : int;
  o_other_xfers : int;
  o_fastpath : fastpath;
}

let boot ?tracer ~image ~engine ~instance ~proc ~args () =
  let st = State.create ?tracer ~image ~engine () in
  Transfer.start st ~instance ~proc ~args;
  st

let signed v = Fpc_util.Bits.signed_of_unsigned ~width:16 v
let word v = Fpc_util.Bits.to_word v

(* The dispatch loop is steady-state allocation-free: helpers are
   top-level functions (never per-instruction closures), operand plumbing
   is plain ints, and the decoded instruction comes from the image's
   shared predecode table.  OCaml 5 minor collections are stop-the-world
   across every domain, so allocation here is not just a single-domain
   cost — it is what made the service pool scale negatively. *)

let taken (st : State.t) target =
  st.metrics.jumps_taken <- st.metrics.jumps_taken + 1;
  Cost.jump st.cost;
  st.pc_abs <- target

let div_or_mod (st : State.t) ~is_div =
  let b = Eval_stack.pop st.stack in
  let a = Eval_stack.pop st.stack in
  if signed b = 0 then raise (Transfer.Machine_trap State.Div_zero);
  Eval_stack.push st.stack
    (word (if is_div then signed a / signed b else signed a mod signed b))

let exec (st : State.t) ~instr_pc (op : Fpc_isa.Opcode.t) =
  let stack = st.stack in
  match op with
  | Li n -> Eval_stack.push stack n
  | Lpd w -> Eval_stack.push stack w
  | Ll n -> Eval_stack.push stack (State.read_local st n)
  | Sl n -> State.write_local st n (Eval_stack.pop stack)
  | Lg n -> Eval_stack.push stack (State.read_global st n)
  | Sg n -> State.write_global st n (Eval_stack.pop stack)
  | Lla n -> Eval_stack.push stack (State.local_addr st n)
  | Lga n -> Eval_stack.push stack (State.global_addr st n)
  | Llx n ->
    let i = Eval_stack.pop stack in
    Eval_stack.push stack (State.read_local st (n + i))
  | Slx n ->
    let v = Eval_stack.pop stack in
    let i = Eval_stack.pop stack in
    State.write_local st (n + i) v
  | Lgx n ->
    let i = Eval_stack.pop stack in
    Eval_stack.push stack (State.read_global st (n + i))
  | Sgx n ->
    let v = Eval_stack.pop stack in
    let i = Eval_stack.pop stack in
    State.write_global st (n + i) v
  | Rload ->
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (State.data_read st ~addr:a)
  | Rstore ->
    let v = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    State.data_write st ~addr:a v
  | Ldfld i ->
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (State.data_read st ~addr:(a + i))
  | Stfld i ->
    let v = Eval_stack.pop stack in
    let a = Eval_stack.peek stack in
    State.data_write st ~addr:(a + i) v
  | Newrec n -> (
    (* Long argument records and other heap records come from the same
       frame allocator (§5.3). *)
    match Fpc_frames.Alloc_vector.alloc_words st.allocator ~cost:st.cost ~body_words:n with
    | lf -> Eval_stack.push stack lf
    | exception Fpc_frames.Alloc_vector.Out_of_frame_heap ->
      raise (Transfer.Machine_trap State.Frame_heap_exhausted))
  | Freerec ->
    let a = Eval_stack.pop stack in
    Fpc_frames.Alloc_vector.free st.allocator ~cost:st.cost ~lf:a
  | Dup -> Eval_stack.push stack (Eval_stack.peek stack)
  | Drop -> ignore (Eval_stack.pop stack)
  | Swap ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack b;
    Eval_stack.push stack a
  | Over ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.peek stack in
    Eval_stack.push stack b;
    Eval_stack.push stack a
  | Add ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (word (signed a + signed b))
  | Sub ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (word (signed a - signed b))
  | Mul ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (word (signed a * signed b))
  | Div -> div_or_mod st ~is_div:true
  | Mod -> div_or_mod st ~is_div:false
  | Neg -> Eval_stack.push stack (word (-signed (Eval_stack.pop stack)))
  | Band ->
    let b = Eval_stack.pop stack in
    Eval_stack.push stack (Eval_stack.pop stack land b)
  | Bor ->
    let b = Eval_stack.pop stack in
    Eval_stack.push stack (Eval_stack.pop stack lor b)
  | Bxor ->
    let b = Eval_stack.pop stack in
    Eval_stack.push stack (Eval_stack.pop stack lxor b)
  | Bnot -> Eval_stack.push stack (Eval_stack.pop stack lxor 0xFFFF)
  | Lt ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (if signed a < signed b then 1 else 0)
  | Le ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (if signed a <= signed b then 1 else 0)
  | Eq ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (if signed a = signed b then 1 else 0)
  | Ne ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (if signed a <> signed b then 1 else 0)
  | Ge ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (if signed a >= signed b then 1 else 0)
  | Gt ->
    let b = Eval_stack.pop stack in
    let a = Eval_stack.pop stack in
    Eval_stack.push stack (if signed a > signed b then 1 else 0)
  | J d -> taken st (instr_pc + d)
  | Jz d -> if Eval_stack.pop stack = 0 then taken st (instr_pc + d)
  | Jnz d -> if Eval_stack.pop stack <> 0 then taken st (instr_pc + d)
  | Efc n -> Transfer.call_external st ~lv_index:n
  | Lfc n -> Transfer.call_local st ~ev_index:n
  | Dfc a -> Transfer.call_direct st ~target_abs:a
  | Sdfc d -> Transfer.call_direct st ~target_abs:(instr_pc + d)
  | Xf ->
    let w = Eval_stack.pop stack in
    Transfer.xfer st ~dest_word:w
  | Ret -> Transfer.return_ st
  | Lrc -> Eval_stack.push stack st.return_ctx
  | Fork n -> Transfer.fork st ~nargs:n
  | Yield -> Transfer.yield st
  | Stopproc -> Transfer.stop_process st
  | Out -> State.emit st (Eval_stack.pop stack)
  | Nop -> ()
  | Brk -> raise (Transfer.Machine_trap State.Break)
  | Halt -> st.status <- State.Halted

let exec_guarded (st : State.t) ~instr_pc op =
  try exec st ~instr_pc op with
  | Eval_stack.Overflow -> Transfer.trap st State.Eval_overflow
  | Eval_stack.Underflow -> Transfer.trap st State.Eval_underflow
  | Transfer.Machine_trap reason -> Transfer.trap st reason

(* A PC the predecode table cannot answer — outside the carved code
   region, or bytes that do not decode — takes the original live-decode
   path, reproducing its behaviour (including the illegal-instruction
   trap) exactly. *)
let step_slow (st : State.t) ~instr_pc =
  let fetch pc = Memory.peek_code_byte st.State.mem ~code_base:0 ~pc in
  match Fpc_isa.Opcode.decode ~fetch ~pc:instr_pc with
  | exception Invalid_argument _ ->
    Transfer.trap st (State.Illegal_instruction (fetch instr_pc))
  | op, len ->
    st.pc_abs <- instr_pc + len;
    exec_guarded st ~instr_pc op

let step (st : State.t) =
  if st.status = State.Running then begin
    st.metrics.instructions <- st.metrics.instructions + 1;
    Cost.dispatch st.cost;
    let instr_pc = st.pc_abs in
    let len = Fpc_isa.Predecode.len_at st.predecode instr_pc in
    if len > 0 then begin
      st.pc_abs <- instr_pc + len;
      exec_guarded st ~instr_pc (Fpc_isa.Predecode.op_at st.predecode instr_pc)
    end
    else step_slow st ~instr_pc
  end

let run_traced ?(max_steps = 20_000_000) st ~on_step =
  let fetch pc = Memory.peek_code_byte st.State.mem ~code_base:0 ~pc in
  let rec go remaining =
    if st.State.status = State.Running then
      if remaining = 0 then st.status <- State.Trapped State.Step_limit
      else begin
        let pc_abs = st.State.pc_abs in
        (if Fpc_isa.Predecode.len_at st.predecode pc_abs > 0 then
           on_step ~pc_abs (Fpc_isa.Predecode.op_at st.predecode pc_abs) st
         else
           match Fpc_isa.Opcode.decode ~fetch ~pc:pc_abs with
           | op, _ -> on_step ~pc_abs op st
           | exception Invalid_argument _ -> ());
        step st;
        go (remaining - 1)
      end
  in
  go max_steps

let run ?(max_steps = 20_000_000) st =
  let rec go remaining =
    if st.State.status = State.Running then
      if remaining = 0 then st.status <- State.Trapped State.Step_limit
      else begin
        step st;
        go (remaining - 1)
      end
  in
  go max_steps

(* One Bank_file.stats call, not one per field: the stats record is an
   allocation, and [outcome] sits on the service's per-job path. *)
let no_bank_stats =
  {
    Fpc_regbank.Bank_file.xfers = 0;
    overflows = 0;
    underflows = 0;
    words_written_back = 0;
    words_loaded = 0;
    flush_events = 0;
    flagged_flushes = 0;
    diversions = 0;
    c2_violations = 0;
  }

let outcome (st : State.t) =
  let m = st.metrics in
  let bs =
    match st.banks with
    | Some b -> Fpc_regbank.Bank_file.stats b
    | None -> no_bank_stats
  in
  let rs_pushes, rs_hits, rs_empty_pops, rs_flushes, rs_flushed, rs_spills =
    match st.rstack with
    | Some rs ->
      Fpc_ifu.Return_stack.
        ( pushes rs,
          fast_pops rs,
          empty_pops rs,
          flushes rs,
          flushed_entries rs,
          spills rs )
    | None -> (0, 0, 0, 0, 0, 0)
  in
  {
    o_status = st.status;
    o_output = State.output st;
    o_stack = Array.to_list (Eval_stack.contents st.stack);
    o_instructions = m.instructions;
    o_cycles = Cost.cycles st.cost;
    o_mem_refs = Cost.mem_refs st.cost;
    o_calls = m.calls;
    o_returns = m.returns;
    o_other_xfers = m.other_xfers;
    o_fastpath =
      {
        f_fast_transfers = m.fast_transfers;
        f_slow_transfers = m.slow_transfers;
        f_rs_pushes = rs_pushes;
        f_rs_hits = rs_hits;
        f_rs_empty_pops = rs_empty_pops;
        f_rs_flushes = rs_flushes;
        f_rs_flushed_entries = rs_flushed;
        f_rs_spills = rs_spills;
        f_bank_underflows = bs.Fpc_regbank.Bank_file.underflows;
        f_bank_overflows = bs.Fpc_regbank.Bank_file.overflows;
        f_bank_words_loaded = bs.Fpc_regbank.Bank_file.words_loaded;
        f_bank_words_spilled = bs.Fpc_regbank.Bank_file.words_written_back;
        f_ff_hits = m.ff_hits;
        f_ff_misses = m.ff_misses;
        f_frame_allocs = m.frame_allocs;
        f_frame_frees = m.frame_frees;
      };
  }

(* Code ranges for trace attribution: each procedure covers its fsi byte
   through the end of its body.  Instances of one module share code, so
   shared ranges are named after the module and deduplicated. *)
let procmap_of_image (image : Fpc_mesa.Image.t) =
  let ranges =
    Hashtbl.fold
      (fun (_inst, proc) (pi : Fpc_mesa.Image.proc_info) acc ->
        let ii = Fpc_mesa.Image.find_instance image pi.Fpc_mesa.Image.pi_instance in
        let lo = (2 * ii.Fpc_mesa.Image.ii_code_base) + pi.Fpc_mesa.Image.pi_entry_offset in
        let hi = lo + 1 + pi.Fpc_mesa.Image.pi_body_bytes in
        (ii.Fpc_mesa.Image.ii_module ^ "." ^ proc, lo, hi) :: acc)
      image.Fpc_mesa.Image.dir.Fpc_mesa.Image.procs []
    |> List.sort_uniq compare
  in
  Fpc_trace.Procmap.create ranges

let run_program ?max_steps ?tracer ~image ~engine ~instance ~proc ~args () =
  let st = boot ?tracer ~image ~engine ~instance ~proc ~args () in
  run ?max_steps st;
  st
