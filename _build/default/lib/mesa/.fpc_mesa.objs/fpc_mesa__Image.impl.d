lib/mesa/image.ml: Compiled Cost Descriptor Fpc_frames Fpc_machine Gft Hashtbl Layout List Memory Option String
