type t = {
  m : Mutex.t;
  max_connections : int;
  max_pending : int;
  mutable connections : int;
  mutable pending : int;
  mutable max_pending_observed : int;
  mutable shed_jobs : int;
  mutable shed_connections : int;
}

let create ?(max_connections = 16) ?(max_pending = 64) () =
  if max_connections < 1 then
    invalid_arg "Limiter.create: max_connections must be positive";
  if max_pending < 1 then
    invalid_arg "Limiter.create: max_pending must be positive";
  {
    m = Mutex.create ();
    max_connections;
    max_pending;
    connections = 0;
    pending = 0;
    max_pending_observed = 0;
    shed_jobs = 0;
    shed_connections = 0;
  }

let with_lock t f =
  Mutex.lock t.m;
  let r = f () in
  Mutex.unlock t.m;
  r

let try_admit_connection t =
  with_lock t (fun () ->
      if t.connections >= t.max_connections then begin
        t.shed_connections <- t.shed_connections + 1;
        false
      end
      else begin
        t.connections <- t.connections + 1;
        true
      end)

let release_connection t =
  with_lock t (fun () -> t.connections <- max 0 (t.connections - 1))

let try_admit_job t =
  with_lock t (fun () ->
      if t.pending >= t.max_pending then begin
        t.shed_jobs <- t.shed_jobs + 1;
        None
      end
      else begin
        t.pending <- t.pending + 1;
        if t.pending > t.max_pending_observed then
          t.max_pending_observed <- t.pending;
        Some t.pending
      end)

let release_job t = with_lock t (fun () -> t.pending <- max 0 (t.pending - 1))

type stats = {
  connections : int;
  max_connections : int;
  pending : int;
  max_pending : int;
  max_pending_observed : int;
  shed_jobs : int;
  shed_connections : int;
}

let stats t =
  with_lock t (fun () ->
      {
        connections = t.connections;
        max_connections = t.max_connections;
        pending = t.pending;
        max_pending = t.max_pending;
        max_pending_observed = t.max_pending_observed;
        shed_jobs = t.shed_jobs;
        shed_connections = t.shed_connections;
      })
