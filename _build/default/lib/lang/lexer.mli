(** Tokeniser for mini-Mesa source text.

    Comments run from ["--"] to end of line.  Keywords are upper-case, in
    the Mesa style. *)

type token =
  | INT_LIT of int
  | IDENT of string
  | KW of string  (** one of the reserved words *)
  | PUNCT of string  (** ; , : := . ( ) [ ] + - * / < <= = # >= > @ *)
  | EOF

type positioned = { tok : token; line : int; col : int }

exception Lex_error of string
(** Message includes the position. *)

val keywords : string list

val tokenize : string -> positioned list
(** Raises {!Lex_error} on an illegal character or malformed number. *)

val token_to_string : token -> string
