lib/experiments/e11_nonlifo.ml: Array Exp Fpc_core Fpc_frames Fpc_util Fpc_workload Harness List Printf Tablefmt
