examples/quickstart.mli:
