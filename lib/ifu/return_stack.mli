(** The IFU return stack of §6.

    "The IFU can keep a small stack of return information: frame pointer,
    global frame pointer GF and PC.  As long as calls and returns follow a
    LIFO discipline this allows returns to be handled as fast as calls."

    Each entry remembers how to resume a caller without touching main
    storage: its frame, global frame, code base, resume PC, and (for §7.1)
    the register bank shadowing its frame.  While an entry lives here, the
    caller's PC and the callee's returnLink have {e not} been written to
    memory — those stores are exactly what the fast path elides — so on any
    non-LIFO event the stack must be flushed through a writer that performs
    the deferred stores ("the frame pointer LF goes into the returnLink
    component of the next higher frame, and the PC goes into the PC
    component of LF").

    The stack stores entries and statistics; flush orchestration (who is
    the next-higher frame) belongs to the transfer engine, which passes a
    writer to {!flush}.

    Entries are preallocated records rewritten in place, so the hot
    push/pop pair never touches the OCaml allocator.  "Absent" fields use
    sentinels ({!no_cb}, {!no_bank}) rather than options for the same
    reason. *)

type entry = {
  mutable r_lf : int;  (** caller frame pointer *)
  mutable r_gf : int;  (** caller global frame address *)
  mutable r_cb : int;
      (** caller code base (word address); {!no_cb} when the caller itself
          was entered by a DIRECTCALL and never had to materialise its
          code base (it is recovered from the global frame on demand) *)
  mutable r_pc_abs : int;  (** caller resume PC as an absolute byte address *)
  mutable r_bank : int;  (** bank shadowing [r_lf], or {!no_bank} (§7.1) *)
}

val no_cb : int
(** Sentinel (-1) for "code base not materialised". *)

val no_bank : int
(** Sentinel (-1) for "no register bank". *)

type t

val create : depth:int -> t
(** [depth] must be positive (the paper contemplates a small stack, ~4–16
    entries). *)

val depth : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val reset : t -> unit
(** Empty the stack and zero all statistics (arena reuse across jobs). *)

val set_on_event : t -> (Fpc_trace.Event.kind -> unit) option -> unit
(** Tracing hook: pushes, fast pops, flushes (with entry counts) and
    spills fire [Rs_*] events.  No-op when unset. *)

val push : t -> lf:int -> gf:int -> cb:int -> pc_abs:int -> bank:int -> unit
(** Raises [Invalid_argument] when full — the caller must flush first.
    Allocation-free. *)

val push_entry : t -> entry -> unit
(** [push] from an existing entry record (replay, tests). *)

val try_pop : t -> bool
(** The fast return path, allocation-free: [true] popped an entry — read
    it with {!popped} {e before the next push} — [false] means fall back
    to the general scheme (counted as an empty pop). *)

val popped : t -> entry
(** The slot just vacated by a successful {!try_pop}.  Valid until the
    next [push]. *)

val pop : t -> entry option
(** Option-returning wrapper over {!try_pop}/{!popped} (replay, tests).
    The returned entry is the live slot — copy it if it must survive a
    later push. *)

val peek : t -> entry option

val to_list : t -> entry list
(** Oldest first; fresh copies, safe to retain. *)

val second_oldest : t -> entry option
(** The entry just above the oldest, i.e. the frame that was called from
    the oldest entry's context. *)

val second_oldest_slot : t -> entry
(** As {!second_oldest}, but the live slot with no option wrapping; raises
    [Invalid_argument] with fewer than two entries.  Allocation-free. *)

val drop_oldest_slot : t -> entry
(** Remove and return the {e bottom} entry, making room without touching
    the hot top — the engine performs its deferred stores (a partial
    spill).  The stack must be non-empty; the slot stays valid until the
    next push.  Counted in {!spills}.  Allocation-free. *)

val drop_oldest : t -> entry option
(** Option-returning wrapper over {!drop_oldest_slot}. *)

val flush : t -> f:(entry -> unit) -> unit
(** Drain every entry, {e newest first} (so the writer can chain each
    caller to the frame above it), emptying the stack.  Counted as one
    flush event.  The entries passed to [f] are live slots. *)

(** {1 Statistics for experiment E1/E11} *)

val pushes : t -> int
val fast_pops : t -> int
val empty_pops : t -> int  (** returns that had to take the slow path *)

val flushes : t -> int
val flushed_entries : t -> int

val spills : t -> int
(** Oldest-entry spills caused by overflow. *)
