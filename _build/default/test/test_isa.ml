(* Tests for the instruction set: encoding, decoding, builder, disassembly. *)

open Fpc_isa

let qtest = QCheck_alcotest.to_alcotest

let encode_one op =
  let b = Buffer.create 8 in
  Opcode.encode op b;
  Buffer.to_bytes b

let decode_bytes bytes ~pc =
  Opcode.decode ~fetch:(fun i -> Char.code (Bytes.get bytes i)) ~pc

(* A generator covering every instruction form with valid operands. *)
let arbitrary_op =
  let open QCheck.Gen in
  let g_small = int_bound 255 in
  let g_word = int_bound 65535 in
  let g_s8 = int_range (-128) 127 in
  let g_s16 = int_range (-32768) 32767 in
  let g_s20 = int_range (-(1 lsl 19)) ((1 lsl 19) - 1) in
  let g =
    oneof
      [
        map (fun n -> Opcode.Li n) g_word;
        map (fun n -> Opcode.Lpd n) g_word;
        map (fun n -> Opcode.Ll n) g_small;
        map (fun n -> Opcode.Sl n) g_small;
        map (fun n -> Opcode.Lg n) g_small;
        map (fun n -> Opcode.Sg n) g_small;
        map (fun n -> Opcode.Lla n) g_small;
        map (fun n -> Opcode.Lga n) g_small;
        map (fun n -> Opcode.Llx n) g_small;
        map (fun n -> Opcode.Slx n) g_small;
        map (fun n -> Opcode.Lgx n) g_small;
        map (fun n -> Opcode.Sgx n) g_small;
        map (fun n -> Opcode.Ldfld n) g_small;
        map (fun n -> Opcode.Stfld n) g_small;
        map (fun n -> Opcode.Newrec (1 + (n mod 255))) g_small;
        map (fun d -> Opcode.J d) g_s16;
        map (fun d -> Opcode.Jz d) g_s8;
        map (fun d -> Opcode.Jnz d) g_s16;
        map (fun n -> Opcode.Efc n) g_small;
        map (fun n -> Opcode.Lfc n) g_small;
        map (fun a -> Opcode.Dfc a) (int_bound 0xFFFFFF);
        map (fun d -> Opcode.Sdfc d) g_s20;
        map (fun n -> Opcode.Fork n) g_small;
        oneofl
          Opcode.
            [
              Rload; Rstore; Freerec; Dup; Drop; Swap; Over; Add; Sub; Mul; Div;
              Mod; Neg; Band; Bor; Bxor; Bnot; Lt; Le; Eq; Ne; Ge; Gt; Xf; Ret;
              Lrc; Yield; Stopproc; Out; Nop; Brk; Halt;
            ];
      ]
  in
  QCheck.make ~print:Opcode.to_string g

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"opcode: encode/decode roundtrip" arbitrary_op
    (fun op ->
      let bytes = encode_one op in
      let op', len = decode_bytes bytes ~pc:0 in
      Opcode.equal op op' && len = Bytes.length bytes)

let prop_encoded_length_agrees =
  QCheck.Test.make ~count:2000 ~name:"opcode: encoded_length = real length"
    arbitrary_op (fun op -> Opcode.encoded_length op = Bytes.length (encode_one op))

let prop_stream_roundtrip =
  QCheck.Test.make ~count:200 ~name:"opcode: instruction stream roundtrip"
    QCheck.(list_of_size (Gen.int_range 1 40) arbitrary_op)
    (fun ops ->
      let buf = Buffer.create 64 in
      List.iter (fun op -> Opcode.encode op buf) ops;
      let bytes = Buffer.to_bytes buf in
      let decoded =
        Disasm.decode_range
          ~fetch:(fun i -> Char.code (Bytes.get bytes i))
          ~start:0 ~stop:(Bytes.length bytes)
      in
      List.length decoded = List.length ops
      && List.for_all2 (fun (_, a) b -> Opcode.equal a b) decoded ops)

let test_key_encodings () =
  (* The encodings the paper's space arithmetic depends on. *)
  Alcotest.(check int) "EFC 0 is one byte" 1 (Opcode.encoded_length (Opcode.Efc 0));
  Alcotest.(check int) "EFC 15 is one byte" 1 (Opcode.encoded_length (Opcode.Efc 15));
  Alcotest.(check int) "EFC 16 is two bytes" 2 (Opcode.encoded_length (Opcode.Efc 16));
  Alcotest.(check int) "LFC is two bytes" 2 (Opcode.encoded_length (Opcode.Lfc 3));
  Alcotest.(check int) "DFC is four bytes" 4 (Opcode.encoded_length (Opcode.Dfc 0xABCDEF));
  Alcotest.(check int) "SDFC is three bytes" 3 (Opcode.encoded_length (Opcode.Sdfc (-100000)));
  Alcotest.(check int) "RET is one byte" 1 (Opcode.encoded_length Opcode.Ret);
  Alcotest.(check int) "LI 10 is one byte" 1 (Opcode.encoded_length (Opcode.Li 10));
  Alcotest.(check int) "LI 11 is two bytes" 2 (Opcode.encoded_length (Opcode.Li 11));
  Alcotest.(check int) "LI 256 is three bytes" 3 (Opcode.encoded_length (Opcode.Li 256))

let test_operand_range_checks () =
  Alcotest.check_raises "EFC 256"
    (Invalid_argument "Opcode.encode: EFC operand 256 out of [0,255]") (fun () ->
      ignore (encode_one (Opcode.Efc 256)));
  Alcotest.check_raises "SDFC out of range"
    (Invalid_argument
       (Printf.sprintf "Opcode.encode: SDFC operand %d out of [%d,%d]" (1 lsl 19)
          (-(1 lsl 19))
          ((1 lsl 19) - 1)))
    (fun () -> ignore (encode_one (Opcode.Sdfc (1 lsl 19))))

let test_illegal_opcode () =
  let bytes = Bytes.of_string "\xFF" in
  Alcotest.(check bool) "raises" true
    (match decode_bytes bytes ~pc:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_is_transfer () =
  Alcotest.(check bool) "EFC" true (Opcode.is_transfer (Opcode.Efc 0));
  Alcotest.(check bool) "RET" true (Opcode.is_transfer Opcode.Ret);
  Alcotest.(check bool) "XF" true (Opcode.is_transfer Opcode.Xf);
  Alcotest.(check bool) "ADD" false (Opcode.is_transfer Opcode.Add);
  Alcotest.(check bool) "J" false (Opcode.is_transfer (Opcode.J 4))

(* ---- Builder ---- *)

let test_builder_forward_jump () =
  let b = Builder.create () in
  let l = Builder.new_label b in
  Builder.emit b (Opcode.Li 1);
  Builder.jump b `Jz l;
  Builder.emit b (Opcode.Li 2);
  Builder.place b l;
  Builder.emit b Opcode.Halt;
  let code = Builder.to_bytes b in
  (* Layout: LI1(1) JZW(3) LI2(1) HALT(1); the jump targets offset 5 from
     its own offset 1 => displacement +4. *)
  let op, _ = decode_bytes code ~pc:1 in
  Alcotest.(check string) "resolved" "JZ +4" (Opcode.to_string op)

let test_builder_backward_jump () =
  let b = Builder.create () in
  let l = Builder.new_label b in
  Builder.place b l;
  Builder.emit b (Opcode.Li 1);
  Builder.jump b `J l;
  let code = Builder.to_bytes b in
  let op, _ = decode_bytes code ~pc:1 in
  Alcotest.(check string) "backward" "J -1" (Opcode.to_string op)

let test_builder_unplaced_label () =
  let b = Builder.create () in
  let l = Builder.new_label b in
  Builder.jump b `J l;
  Alcotest.check_raises "unplaced" (Invalid_argument "Builder.to_bytes: unplaced label")
    (fun () -> ignore (Builder.to_bytes b))

let test_builder_double_place () =
  let b = Builder.create () in
  let l = Builder.new_label b in
  Builder.place b l;
  Alcotest.check_raises "twice" (Invalid_argument "Builder.place: label placed twice")
    (fun () -> Builder.place b l)

let test_patch_dfc () =
  let b = Builder.create () in
  let pos = Builder.emit_placeholder b (Opcode.Dfc 0) in
  let code = Builder.to_bytes b in
  Builder.patch_dfc code ~pos ~target:0x123456;
  let op, _ = decode_bytes code ~pc:pos in
  Alcotest.(check bool) "patched" true (Opcode.equal op (Opcode.Dfc 0x123456))

let test_rewrite_dfc_to_sdfc () =
  let b = Builder.create () in
  let pos = Builder.emit_placeholder b (Opcode.Dfc 0) in
  Builder.emit b Opcode.Halt;
  let code = Builder.to_bytes b in
  Builder.rewrite_dfc_to_sdfc code ~pos ~displacement:(-42);
  let op, len = decode_bytes code ~pc:pos in
  Alcotest.(check bool) "short form" true (Opcode.equal op (Opcode.Sdfc (-42)));
  let pad, _ = decode_bytes code ~pc:(pos + len) in
  Alcotest.(check bool) "nop pad" true (Opcode.equal pad Opcode.Nop);
  let halt, _ = decode_bytes code ~pc:(pos + len + 1) in
  Alcotest.(check bool) "stream continues" true (Opcode.equal halt Opcode.Halt)

let test_patch_wrong_site () =
  let b = Builder.create () in
  Builder.emit b Opcode.Nop;
  let code = Builder.to_bytes b in
  Alcotest.(check bool) "refuses" true
    (match Builder.patch_dfc code ~pos:0 ~target:1 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_disasm_render () =
  let b = Builder.create () in
  Builder.emit b (Opcode.Li 7);
  Builder.emit b Opcode.Out;
  Builder.emit b Opcode.Halt;
  let s = Disasm.of_bytes (Builder.to_bytes b) in
  Alcotest.(check string) "listing" "    0: LI 7\n    1: OUT\n    2: HALT" s

let () =
  Alcotest.run "isa"
    [
      ( "opcode",
        [
          qtest prop_encode_decode_roundtrip;
          qtest prop_encoded_length_agrees;
          qtest prop_stream_roundtrip;
          Alcotest.test_case "key encodings" `Quick test_key_encodings;
          Alcotest.test_case "operand ranges" `Quick test_operand_range_checks;
          Alcotest.test_case "illegal opcode" `Quick test_illegal_opcode;
          Alcotest.test_case "is_transfer" `Quick test_is_transfer;
        ] );
      ( "builder",
        [
          Alcotest.test_case "forward jump" `Quick test_builder_forward_jump;
          Alcotest.test_case "backward jump" `Quick test_builder_backward_jump;
          Alcotest.test_case "unplaced label" `Quick test_builder_unplaced_label;
          Alcotest.test_case "double place" `Quick test_builder_double_place;
          Alcotest.test_case "patch DFC" `Quick test_patch_dfc;
          Alcotest.test_case "rewrite DFC->SDFC" `Quick test_rewrite_dfc_to_sdfc;
          Alcotest.test_case "patch wrong site" `Quick test_patch_wrong_site;
          Alcotest.test_case "disasm render" `Quick test_disasm_render;
        ] );
    ]
