(* Small non-negative values (call depths, run lengths — the per-transfer
   hot path) are counted in a dense array; everything else falls back to a
   hashtable of refs.  [add] on the dense path touches no allocator, which
   keeps per-transfer bookkeeping allocation-free. *)

let dense_limit = 256

type t = {
  dense : int array; (* counts for values 0 .. dense_limit-1 *)
  sparse : (int, int ref) Hashtbl.t; (* everything else *)
  mutable count : int;
  mutable total : int;
}

let create () =
  { dense = Array.make dense_limit 0; sparse = Hashtbl.create 16; count = 0; total = 0 }

let add_many t v ~count =
  if count < 0 then invalid_arg "Histogram.add_many: negative count";
  if v >= 0 && v < dense_limit then t.dense.(v) <- t.dense.(v) + count
  else begin
    match Hashtbl.find_opt t.sparse v with
    | Some r -> r := !r + count
    | None -> Hashtbl.add t.sparse v (ref count)
  end;
  t.count <- t.count + count;
  t.total <- t.total + (v * count)

let add t v =
  if v >= 0 && v < dense_limit then begin
    t.dense.(v) <- t.dense.(v) + 1;
    t.count <- t.count + 1;
    t.total <- t.total + v
  end
  else add_many t v ~count:1

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let reset t =
  Array.fill t.dense 0 dense_limit 0;
  Hashtbl.reset t.sparse;
  t.count <- 0;
  t.total <- 0

let to_sorted_list t =
  let sparse = Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.sparse [] in
  let dense = ref [] in
  for v = dense_limit - 1 downto 0 do
    if t.dense.(v) > 0 then dense := (v, t.dense.(v)) :: !dense
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) (List.rev_append !dense sparse)

let min_value t =
  match to_sorted_list t with
  | [] -> invalid_arg "Histogram.min_value: empty"
  | (v, _) :: _ -> v

let max_value t =
  match List.rev (to_sorted_list t) with
  | [] -> invalid_arg "Histogram.max_value: empty"
  | (v, _) :: _ -> v

let percentile t p =
  if t.count = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: bad p";
  let threshold = p /. 100.0 *. float_of_int t.count in
  let rec scan seen = function
    | [] -> max_value t
    | (v, c) :: rest ->
      let seen = seen + c in
      if float_of_int seen >= threshold then v else scan seen rest
  in
  scan 0 (to_sorted_list t)

let fraction_le t v =
  if t.count = 0 then 0.0
  else begin
    let seen = ref 0 in
    for value = 0 to min (dense_limit - 1) v do
      seen := !seen + t.dense.(value)
    done;
    Hashtbl.iter (fun value r -> if value <= v then seen := !seen + !r) t.sparse;
    float_of_int !seen /. float_of_int t.count
  end

let iter t f = List.iter (fun (v, c) -> f v c) (to_sorted_list t)
