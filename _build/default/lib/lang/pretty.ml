open Ast

let binop_str = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "MOD"
  | Blt -> "<"
  | Ble -> "<="
  | Beq -> "="
  | Bne -> "#"
  | Bge -> ">="
  | Bgt -> ">"
  | Band -> "AND"
  | Bor -> "OR"

(* Everything below binds through parentheses, so emitting fully
   parenthesised operator expressions keeps the round trip exact. *)
let rec expr_to_string = function
  | Int v -> string_of_int v
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Nil -> "NIL"
  | Retctx -> "RETCTX"
  | Var name -> name
  | Index (name, i) -> Printf.sprintf "%s[%s]" name (expr_to_string i)
  | ProcVal c -> "@" ^ callee_to_string c
  | Unop (Uneg, e) -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Unop (Unot, e) -> Printf.sprintf "(NOT %s)" (expr_to_string e)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op) (expr_to_string b)
  | Call (c, args) -> Printf.sprintf "%s(%s)" (callee_to_string c) (args_to_string args)
  | Transfer (ctx, values) ->
    Printf.sprintf "TRANSFER(%s)" (args_to_string (ctx :: values))

and args_to_string args = String.concat ", " (List.map expr_to_string args)

let rec stmt_to_string ?(indent = 1) s =
  let pad = String.make (2 * indent) ' ' in
  let block stmts =
    String.concat "" (List.map (fun s -> stmt_to_string ~indent:(indent + 1) s) stmts)
  in
  match s with
  | Local (name, t, init) ->
    let init_str =
      match init with None -> "" | Some e -> " := " ^ expr_to_string e
    in
    Printf.sprintf "%sVAR %s: %s%s;\n" pad name (typ_to_string t) init_str
  | Assign (name, e) -> Printf.sprintf "%s%s := %s;\n" pad name (expr_to_string e)
  | AssignIdx (name, i, e) ->
    Printf.sprintf "%s%s[%s] := %s;\n" pad name (expr_to_string i) (expr_to_string e)
  | If (cond, then_, []) ->
    Printf.sprintf "%sIF %s THEN\n%s%sEND;\n" pad (expr_to_string cond) (block then_) pad
  | If (cond, then_, else_) ->
    Printf.sprintf "%sIF %s THEN\n%s%sELSE\n%s%sEND;\n" pad (expr_to_string cond)
      (block then_) pad (block else_) pad
  | While (cond, body) ->
    Printf.sprintf "%sWHILE %s DO\n%s%sEND;\n" pad (expr_to_string cond) (block body) pad
  | Return None -> Printf.sprintf "%sRETURN;\n" pad
  | Return (Some e) -> Printf.sprintf "%sRETURN %s;\n" pad (expr_to_string e)
  | Output e -> Printf.sprintf "%sOUTPUT %s;\n" pad (expr_to_string e)
  | CallS (c, args) ->
    Printf.sprintf "%s%s(%s);\n" pad (callee_to_string c) (args_to_string args)
  | TransferS (ctx, values) ->
    Printf.sprintf "%sTRANSFER(%s);\n" pad (args_to_string (ctx :: values))
  | ForkS (c, args) ->
    Printf.sprintf "%sFORK %s(%s);\n" pad (callee_to_string c) (args_to_string args)
  | YieldS -> Printf.sprintf "%sYIELD;\n" pad
  | StopS -> Printf.sprintf "%sSTOP;\n" pad

let param_to_string p =
  Printf.sprintf "%s%s: %s"
    (if p.prm_var then "VAR " else "")
    p.prm_name (typ_to_string p.prm_type)

let proc_to_string p =
  let params = String.concat ", " (List.map param_to_string p.pr_params) in
  let result =
    match p.pr_result with None -> "" | Some t -> ": " ^ typ_to_string t
  in
  Printf.sprintf "PROC %s(%s)%s =\n%sEND;\n" p.pr_name params result
    (String.concat "" (List.map stmt_to_string p.pr_body))

let global_to_string g =
  let init = match g.g_init with None -> "" | Some v -> Printf.sprintf " := %d" v in
  Printf.sprintf "VAR %s: %s%s;\n" g.g_name (typ_to_string g.g_type) init

let module_to_string m =
  let imports =
    match m.md_imports with
    | [] -> ""
    | names -> Printf.sprintf "IMPORT %s;\n" (String.concat ", " names)
  in
  Printf.sprintf "MODULE %s;\n%s%s%sEND;\n" m.md_name imports
    (String.concat "" (List.map global_to_string m.md_globals))
    (String.concat "" (List.map proc_to_string m.md_procs))

let program_to_string prog = String.concat "\n" (List.map module_to_string prog)
