lib/regbank/bank_file.ml: Array Cost Fpc_frames Fpc_machine Fpc_util Hashtbl Memory Printf Result
