(** Session workloads: thousands of users inside the machine.

    The paper's setting is a timesharing system where "a large number of
    processes" share one processor and the frame heap replaces per-process
    contiguous stacks (§5).  This generator reproduces that shape as a
    single self-driving mini-Mesa program:

    - a driver ([main]) FORKs up to [window] concurrent sessions, admitting
      a new one whenever a slot frees, until [total] sessions have run —
      an open/burst/close lifecycle rather than [total] simultaneous
      processes, which a 64K-word store could never hold;
    - each session derives a think count and a call depth from its id (a
      tiny in-program hash seeded by [seed]), opens a {e channel} — a
      bounded-life echo coroutine built on XFER — and alternates guarded
      recursive [work] calls with channel round-trips;
    - the peer coroutine is handed its exact receive budget at creation and
      RETURNs when it is spent, so its frame is freed through the ordinary
      return path and nothing leaks across ten thousand sessions;
    - completion updates a commutative checksum, so the program's OUTPUT is
      one [finished] count and one [check] word whose values do not depend
      on the interleaving of sessions.

    Because the whole lifecycle is machine instructions, running the same
    config on any engine under either tier produces byte-identical outputs
    when context switches happen at program-defined points (the scheduler's
    run-to-yield policy). *)

type config = {
  total : int;  (** sessions over the whole run *)
  window : int;  (** maximum concurrently-live sessions *)
  seed : int;  (** perturbs every session's think/depth draw *)
  think_lo : int;
  think_hi : int;  (** channel round-trips per session, inclusive range *)
  depth_lo : int;
  depth_hi : int;  (** [work] recursion depth, inclusive range *)
}

val default : total:int -> config
(** Window 32, seed 42, 1-4 thinks, depth 1-4. *)

val program : config -> string
(** The mini-Mesa source.  Deterministic in [config] (the seed is baked
    into the text), so compiled images cache across jobs.  Raises
    [Invalid_argument] on an empty or oversized config ([total] must fit
    comfortably in a 16-bit counter). *)

val worst_extent_words : config -> image:Fpc_mesa.Image.t -> int
(** The LIFO-reservation model: the block words a dedicated per-session
    stack would reserve for one session's worst case (session frame + peer
    frame + deepest [work] chain), using the compiled image's actual
    frame-size classes.  Multiply by peak live processes to get what
    contiguous per-process stacks would cost where the frame heap holds
    only what is actually live.  Raises [Not_found] if [image] was not
    compiled from {!program}. *)
