lib/mesa/descriptor.ml: Printf
