lib/experiments/e10_call_density.ml: Exp Fpc_core Fpc_util Fpc_workload Harness List Printf Tablefmt
