lib/mesa/layout.mli: Fpc_frames
