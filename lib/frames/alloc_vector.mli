(** The AV frame-heap allocator of §5.3 (Figure 2).

    The allocation vector AV is an array of free-list heads indexed by
    frame-size index (fsi), living in simulated memory so reference counts
    are measured, not asserted.  The fast path is exactly the paper's:

    - allocate: fetch list head from AV, fetch next pointer from the first
      node, store it into the list head — {e three} storage references;
    - free: fetch the frame's fsi word, fetch the list head, store it into
      the node, store the node into the list head — {e four} references.

    When a free list is empty the allocator traps to a software allocator
    which carves fresh blocks of that class out of the wilderness; its cost
    is charged as a single [software_alloc] constant (its own loads and
    stores are folded into that constant, as they belong to the trap
    handler, not the architectural fast path).

    The same allocator serves long argument records (§4) and, in
    [Software_only] mode, models the general-purpose heap of the simple
    implementation I1 (§4), where every allocation pays the software cost.

    Free-list links are kept in the node's pc slot (block word 1); block
    word 0 always holds the fsi, "so that the size need not be specified
    when it is freed". *)

type mode = Fast | Software_only

type t

exception Out_of_frame_heap

val create :
  ?mode:mode ->
  ?replenish_count:int ->
  mem:Fpc_machine.Memory.t ->
  ladder:Size_class.t ->
  av_base:int ->
  heap_base:int ->
  heap_limit:int ->
  unit ->
  t
(** [av_base] must leave [Size_class.class_count ladder] words free;
    [heap_base] must be quad-aligned.  [replenish_count] (default 8) is how
    many blocks the software allocator carves per trap. *)

val ladder : t -> Size_class.t

val set_on_event : t -> (Fpc_trace.Event.kind -> unit) option -> unit
(** Tracing hook: each allocation fires [Frame_alloc] (with [software]
    marking the I1 path or a replenish trap) and each free fires
    [Frame_free].  No-op when unset. *)

val alloc_fsi : t -> cost:Fpc_machine.Cost.t -> fsi:int -> int
(** Allocate a block of class [fsi]; returns the frame pointer LF
    (block + 4, quad-aligned).  Raises [Out_of_frame_heap] when the
    wilderness is exhausted. *)

val alloc_words : t -> cost:Fpc_machine.Cost.t -> body_words:int -> int
(** Allocate the smallest class able to hold [body_words] words of payload
    (arguments/locals/fields) plus the four overhead words.  Raises
    [Invalid_argument] if no class is large enough. *)

val free : t -> cost:Fpc_machine.Cost.t -> lf:int -> unit
(** Return the block at LF to its free list.  Raises [Invalid_argument] if
    [lf] is not currently allocated (double free, wild pointer). *)

val alloc_fsi_prepaid : t -> cost:Fpc_machine.Cost.t -> fsi:int -> int
(** [alloc_fsi] with the fast path's three storage references charged as
    one batch and performed raw.  For the compiled tier's specialised
    call nodes, which only run untraced; counter totals are identical to
    {!alloc_fsi}, and any non-fast shape (software mode, empty free
    list) falls back to the metered path. *)

val free_prepaid : t -> cost:Fpc_machine.Cost.t -> lf:int -> unit
(** [free] with the fast path's four storage references batch-charged;
    same contract as {!alloc_fsi_prepaid}. *)

val fsi_for_locals : t -> int -> int
(** The fsi the compiler should store for a procedure with [n] words of
    arguments + locals.  Raises [Invalid_argument] if too large. *)

val is_live : t -> lf:int -> bool

val reset : t -> unit
(** Return the allocator to its just-created state over the same memory:
    AV heads zeroed, no live blocks, wilderness back at [heap_base], all
    counters zero.  Used by the execution arena to recycle an allocator
    across jobs after the backing store has been reset to pristine. *)

(** {1 Accounting} *)

type stats = {
  fast_allocs : int;
  frees : int;
  software_traps : int;  (** free-list refills *)
  live_blocks : int;
  live_words : int;  (** block words currently allocated *)
  peak_live_words : int;
      (** high-water mark of [live_words] over the run — what the frame
          heap actually had to hold.  Frames parked on the processor
          free-frame stack still count as live (they were never freed to
          the AV), a bounded over-count of at most the stack's depth times
          its block size. *)
  requested_words : int;  (** exact need of the live blocks *)
  free_pool_words : int;  (** words parked on free lists *)
  wilderness_used : int;  (** heap words ever carved *)
}

val stats : t -> stats

val internal_fragmentation : t -> float
(** [1 - requested/live] over live blocks; 0 when nothing is live. *)

val check_invariants : t -> (unit, string) result
(** Walk every free list (unmetered) and verify: heads and links stay in
    the heap, each node's fsi matches its list, lists are acyclic, and no
    free node is also live.  For property tests. *)
