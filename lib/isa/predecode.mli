(** A predecoded view of a byte-code region: every byte offset decoded
    once, up front, into immutable arrays the dispatch loop can index
    instead of re-parsing 1–3-byte encodings on every visit.

    The table decodes {e every} byte position independently (not just
    instruction starts — entry points are only known at run time), so any
    PC the machine can reach inside the covered range is answered without
    touching simulated storage.  Positions that do not decode — an
    illegal opcode byte, or an instruction whose operands would run past
    the end of storage — report {!len_at} = 0 and the interpreter falls
    back to live decoding, which reproduces the exact trap the
    un-predecoded machine would take.

    A table is immutable after construction and safe to share read-only
    across domains; it is built from code bytes that are fixed at link
    time (nothing writes the code region at run time), so one table
    serves an image and every {!Fpc_mesa.Image.clone} of it.

    Predecoding is invisible to the simulated cost model: instruction
    fetch was already unmetered (see {!Fpc_interp}), so cycle and
    storage-reference meters are bit-identical with and without it. *)

type t

val decode_range : fetch:(int -> int) -> lo:int -> hi:int -> t
(** Decode byte positions [lo..hi-1], reading bytes through [fetch]
    (which may raise [Invalid_argument] past the end of storage). *)

val base : t -> int
(** First byte PC covered. *)

val limit : t -> int
(** One past the last byte PC covered. *)

val len_at : t -> int -> int
(** Encoded length of the instruction starting at [pc], or 0 when [pc]
    is outside the covered range or does not decode — callers must then
    decode live.  Never raises. *)

val op_at : t -> int -> Opcode.t
(** The instruction starting at [pc].  Only meaningful when
    [len_at t pc > 0]; unchecked otherwise. *)

val straight_run :
  t -> pc:int -> cap:int -> ends:(Opcode.t -> bool) -> (int * Opcode.t * int) list option
(** The straight-line run starting at [pc]: instructions followed by
    their encoded lengths only (no jump targets), ending at — and
    including — the first instruction satisfying [ends].  [None] when an
    undecodable position is reached first, or no ending instruction
    appears within [cap] instructions.  This is the leaf analysis the
    compiled tier's cross-call fusion rests on: a procedure body that is
    one such run ending in RETURN can be spliced into its caller. *)

val decoded : t -> (int * Opcode.t * int) list
(** Every decodable position as [(pc, op, len)], ascending — the whole
    table, for tests and tools. *)
