lib/util/histogram.ml: Hashtbl List
