lib/baseline/stack_machine.mli: Fpc_machine
