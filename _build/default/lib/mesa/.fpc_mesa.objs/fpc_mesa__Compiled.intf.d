lib/mesa/compiled.mli:
