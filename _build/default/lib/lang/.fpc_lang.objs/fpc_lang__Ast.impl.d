lib/lang/ast.ml: Printf
