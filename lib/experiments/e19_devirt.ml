(** E19 — link-time devirtualization: late-bound calls onto the
    DIRECTCALL fast path (extension).

    §5's external calls buy independent binding with an extra level of
    indirection — the EFC's link-vector load on every call — and §6's
    answer is DIRECTCALL, which §5.2 prices at half the storage
    references.  The lib/cfa pass takes the §6 deal at link time without
    giving up §5's source model: a call-graph scan over the linked image
    proves which EXTERNALCALL sites can only ever reach one target and
    rewrites exactly those, in place, to SHORTDIRECTCALL or DIRECTCALL.

    Two claims are measured.  Soundness: a devirtualized image produces
    the same OUTPUT as the late-bound one, and the compiled tier stays
    bit-identical to the interpreter on the rewritten image — on the
    suite, and on random cross-module programs.  Profit: on the
    cross-module kernels the dynamically executed late-bound calls all
    but disappear (the acceptance floor is 80%), and the simulated
    storage references drop with them — the paper's own meter, so the
    win is exact, not a wall clock.  Abstention is free: single-module
    programs have no EXTERNALCALL sites and their meters are untouched. *)

open Fpc_util

let fingerprint (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( Fpc_core.State.output st,
    m.instructions,
    Fpc_machine.Cost.cycles st.cost,
    Fpc_machine.Cost.mem_refs st.cost,
    (m.calls, m.returns, m.other_xfers, m.fast_transfers) )

let boot ~image ~engine =
  let image = Fpc_mesa.Image.clone image in
  Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main" ~args:[]
    ()

let compile ~convention ~devirt source =
  match Fpc_compiler.Compile.image ~convention ~devirt source with
  | Ok image -> image
  | Error m -> failwith ("E19 compile: " ^ m)

(* ---- differential: suite + synthetic, all engines, both tiers ---- *)

(* The devirtualized image must (a) answer exactly what the late-bound
   image answers — meters may differ, that is the point — and (b) be
   executed bit-identically by both tiers, meters included. *)
let check ~engine source =
  let convention = Fpc_compiler.Convention.for_engine engine in
  let base = compile ~convention ~devirt:false source in
  let dv = compile ~convention ~devirt:true source in
  let base_out =
    let st = boot ~image:base ~engine in
    Fpc_interp.Interp.run st;
    Fpc_core.State.output st
  in
  let sti = boot ~image:dv ~engine in
  Fpc_interp.Interp.run sti;
  let tr = Fpc_tier.Tier.translate dv in
  let stc = boot ~image:dv ~engine in
  Fpc_tier.Tier.run tr stc;
  if Fpc_core.State.output sti = base_out && fingerprint stc = fingerprint sti
  then 0
  else 1

let suite_mismatches engine =
  List.fold_left
    (fun acc program -> acc + check ~engine (Fpc_workload.Programs.find program))
    0 Fpc_workload.Programs.names

let synthetic_seeds = List.init 12 (fun i -> (5 * i) + 2)

let synthetic_mismatches engine =
  List.fold_left
    (fun acc seed ->
      acc
      + check ~engine
          (Fpc_workload.Synthetic.random_program ~late_bound_rate:0.5 ~seed ()))
    0 synthetic_seeds

(* ---- dynamic classification of retired calls ---- *)

(* Every Call event stamps the PC the machine had already advanced to —
   the byte *after* the call instruction.  A linear decode over every
   procedure body (the same walk the CFA pass makes) maps each
   post-instruction PC back to the opcode that retired there, telling us
   what the call *was*: EXTERNALCALL (the late-bound §5 path) or
   DIRECTCALL/SHORTDIRECTCALL (the §6 fast path the rewrite produced). *)
type calls = { mutable late : int; mutable direct : int; mutable other : int }

let call_class_by_next_pc image =
  let fetch pc = Fpc_machine.Memory.peek_code_byte image.Fpc_mesa.Image.mem ~code_base:0 ~pc in
  let table = Hashtbl.create 256 in
  List.iter
    (fun (m : Fpc_mesa.Compiled.t) ->
      let ii = Fpc_mesa.Image.find_instance image m.m_name in
      List.iter
        (fun (p : Fpc_mesa.Compiled.proc) ->
          let pi =
            Fpc_mesa.Image.find_proc image ~instance:m.m_name ~proc:p.p_name
          in
          let entry = (2 * ii.ii_code_base) + pi.pi_entry_offset + 1 in
          let limit = entry + pi.pi_body_bytes in
          let pc = ref entry in
          while !pc < limit do
            let op, n = Fpc_isa.Opcode.decode ~fetch ~pc:!pc in
            pc := !pc + n;
            match op with
            | Fpc_isa.Opcode.Efc _ -> Hashtbl.replace table !pc `Late
            | Fpc_isa.Opcode.Dfc _ | Fpc_isa.Opcode.Sdfc _ ->
              Hashtbl.replace table !pc `Direct
            | Fpc_isa.Opcode.Lfc _ -> Hashtbl.replace table !pc `Local
            | _ -> ()
          done)
        m.m_procs)
    image.Fpc_mesa.Image.dir.Fpc_mesa.Image.source;
  table

let dynamic_calls ~image ~engine =
  let image = Fpc_mesa.Image.clone image in
  let classes = call_class_by_next_pc image in
  let counts = { late = 0; direct = 0; other = 0 } in
  let sink = Fpc_trace.Sink.create ~capacity:1 ~engine:"E19" () in
  Fpc_trace.Sink.set_listener sink
    (Some
       (fun (e : Fpc_trace.Event.t) ->
         if e.kind = Fpc_trace.Event.Call then
           match Hashtbl.find_opt classes e.pc with
           | Some `Late -> counts.late <- counts.late + 1
           | Some `Direct -> counts.direct <- counts.direct + 1
           | Some `Local | None -> counts.other <- counts.other + 1));
  let st =
    Fpc_interp.Interp.boot ~tracer:sink ~image ~engine ~instance:"Main"
      ~proc:"main" ~args:[] ()
  in
  Fpc_interp.Interp.run st;
  Harness.must_halt st;
  (counts, Fpc_machine.Cost.mem_refs st.Fpc_core.State.cost)

(* ---- the run ---- *)

(* The engines whose natural convention links externally — the only ones
   with late-bound sites to devirtualize. *)
let external_engines = [ ("I1", Fpc_core.Engine.i1); ("I2", Fpc_core.Engine.i2) ]

let cross_module_kernels = [ "callchain"; "leafcalls"; "xleaf" ]

let run () =
  let diff =
    Tablefmt.create
      ~title:"Devirtualized image vs late-bound image: differential (per engine)"
      ~columns:
        [
          ("engine", Tablefmt.Left);
          ("suite", Tablefmt.Right);
          ("synthetic", Tablefmt.Right);
          ("mismatches", Tablefmt.Right);
        ]
  in
  let total_mismatches = ref 0 in
  List.iter
    (fun (name, engine) ->
      let s = suite_mismatches engine in
      let y = synthetic_mismatches engine in
      total_mismatches := !total_mismatches + s + y;
      Tablefmt.add_row diff
        [
          name;
          Printf.sprintf "%d progs" (List.length Fpc_workload.Programs.names);
          Printf.sprintf "%d seeds" (List.length synthetic_seeds);
          Tablefmt.cell_int (s + y);
        ])
    Harness.engines;
  Tablefmt.add_note diff
    "per program: the devirtualized image must OUTPUT exactly what the \
     late-bound image outputs, and the compiled tier must execute the \
     rewritten image bit-identically to the interpreter (meters included)";
  (* static: what the pass proved, per cross-module program *)
  let static =
    Tablefmt.create
      ~title:"CFA verdicts on the cross-module programs (\xC2\xA75 encoding)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("sites", Tablefmt.Right);
          ("proven", Tablefmt.Right);
          ("rewritten", Tablefmt.Right);
          ("short form", Tablefmt.Right);
          ("abstained", Tablefmt.Right);
        ]
  in
  let sites_total = ref 0 and rewritten_total = ref 0 in
  List.iter
    (fun program ->
      let image =
        compile ~convention:Fpc_compiler.Convention.external_ ~devirt:true
          (Fpc_workload.Programs.find program)
      in
      match image.Fpc_mesa.Image.dir.Fpc_mesa.Image.devirt with
      | None -> failwith ("E19: no devirt stats on " ^ program)
      | Some d ->
        sites_total := !sites_total + d.Fpc_mesa.Image.dv_sites;
        rewritten_total := !rewritten_total + d.dv_rewritten;
        Tablefmt.add_row static
          [
            program;
            Tablefmt.cell_int d.Fpc_mesa.Image.dv_sites;
            Tablefmt.cell_int d.dv_proven;
            Tablefmt.cell_int d.dv_rewritten;
            Tablefmt.cell_int d.dv_short;
            Tablefmt.cell_int d.dv_abstained;
          ])
    cross_module_kernels;
  Tablefmt.add_note static
    "proven = store-safe image, single-instance target with a DIRECTCALL \
     header, site bytes intact; every rewrite is re-verified by decoding \
     the patched bytes back";
  (* dynamic: retired late-bound calls before/after, and the refs bill *)
  let dyn =
    Tablefmt.create
      ~title:
        "Dynamic late-bound calls and storage references, before \xe2\x86\x92 after"
      ~columns:
        [
          ("kernel", Tablefmt.Left);
          ("engine", Tablefmt.Left);
          ("EFC calls", Tablefmt.Right);
          ("direct calls", Tablefmt.Right);
          ("devirtualized", Tablefmt.Right);
          ("refs", Tablefmt.Right);
          ("refs saved", Tablefmt.Right);
        ]
  in
  let rate_sum = ref 0.0 and rate_n = ref 0 in
  let saved_sum = ref 0.0 in
  List.iter
    (fun program ->
      let source = Fpc_workload.Programs.find program in
      List.iter
        (fun (ename, engine) ->
          let convention = Fpc_compiler.Convention.for_engine engine in
          let base = compile ~convention ~devirt:false source in
          let dv = compile ~convention ~devirt:true source in
          let cb, refs_b = dynamic_calls ~image:base ~engine in
          let cd, refs_d = dynamic_calls ~image:dv ~engine in
          let rate =
            if cb.late = 0 then 0.0
            else 1.0 -. (float_of_int cd.late /. float_of_int cb.late)
          in
          let saved = Harness.ratio (refs_b - refs_d) refs_b in
          rate_sum := !rate_sum +. rate;
          saved_sum := !saved_sum +. saved;
          incr rate_n;
          Tablefmt.add_row dyn
            [
              program;
              ename;
              Printf.sprintf "%d \xe2\x86\x92 %d" cb.late cd.late;
              Printf.sprintf "%d \xe2\x86\x92 %d" cb.direct cd.direct;
              Printf.sprintf "%.0f%%" (100.0 *. rate);
              Printf.sprintf "%d \xe2\x86\x92 %d" refs_b refs_d;
              Printf.sprintf "%.1f%%" (100.0 *. saved);
            ])
        external_engines)
    cross_module_kernels;
  Tablefmt.add_note dyn
    "each retired Call event is mapped back to the call opcode that \
     produced it by a linear decode of every procedure body; refs are the \
     paper's simulated storage references (exact) \xe2\x80\x94 I3/I4 bind \
     early by construction and have no late-bound sites to count";
  let devirt_pct = 100.0 *. !rate_sum /. float_of_int (max 1 !rate_n) in
  let saved_pct = 100.0 *. !saved_sum /. float_of_int (max 1 !rate_n) in
  {
    Exp.id = "E19";
    key = "devirt";
    title = "Link-time devirtualization: EXTERNALCALL to DIRECTCALL";
    paper_claim =
      "an external call takes one more level of indirection than a local \
       call (\xC2\xA75); with DIRECTCALL the procedure descriptor is in the \
       instruction and the linkage costs half the references (\xC2\xA75.2, \
       \xC2\xA76); with either linkage the program behaves identically \
       (except for space and speed) (\xC2\xA76)";
    tables =
      [ Tablefmt.render diff; Tablefmt.render static; Tablefmt.render dyn ];
    headlines =
      [
        ("mismatches", float_of_int !total_mismatches);
        ("devirt_dynamic_pct", devirt_pct);
        ("refs_saved_pct", saved_pct);
        ( "sites_rewritten_pct",
          100.0 *. Harness.ratio !rewritten_total !sites_total );
      ];
  }
