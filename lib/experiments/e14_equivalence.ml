(** E14 — §2/§8: behavioural identity across implementations and bindings.

    "With either linkage the program behaves identically (except for space
    and speed), so changing between them only changes the balance among
    space, speed of execution, and speed of changing the linkage."  And
    §2: changing the interpreter does not affect the encoding; changing
    the encoding requires recompilation but not source changes.

    Differential runs: every suite program under every engine and every
    compatible linkage; plus, for External images, the §5.1 relocation
    freedoms applied mid-flight (rebind, move global frame, move code
    segment, move procedure, instantiate) with outputs compared. *)

open Fpc_util

let engine_matrix () =
  let t =
    Tablefmt.create ~title:"Outputs across engines and linkages"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("configurations run", Tablefmt.Right);
          ("agreeing", Tablefmt.Right);
        ]
  in
  let open Fpc_compiler in
  let configurations =
    [
      ("I1/ext", Fpc_core.Engine.i1, Convention.external_);
      ("I2/ext", Fpc_core.Engine.i2, Convention.external_);
      ("I2/direct", Fpc_core.Engine.i2, Convention.direct);
      ("I3/ext", Fpc_core.Engine.i3 (), Convention.external_);
      ("I3/direct", Fpc_core.Engine.i3 (), Convention.direct);
      ("I3/short", Fpc_core.Engine.i3 (), Convention.short_direct);
      ("I4/direct", Fpc_core.Engine.i4 (), Convention.banked ());
      ("I4/ext", Fpc_core.Engine.i4 (),
       Convention.banked ~linkage:Fpc_mesa.Image.External ());
    ]
  in
  let mismatches = ref 0 in
  List.iter
    (fun program ->
      let outputs =
        List.map
          (fun (label, engine, convention) ->
            let image = Harness.image_of ~convention ~program () in
            let st =
              Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main"
                ~proc:"main" ~args:[] ()
            in
            Harness.must_halt st;
            (label, Fpc_core.State.output st))
          configurations
      in
      let reference = snd (List.hd outputs) in
      let agreeing = List.length (List.filter (fun (_, o) -> o = reference) outputs) in
      if agreeing <> List.length outputs then incr mismatches;
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int (List.length outputs);
          Tablefmt.cell_int agreeing;
        ])
    Fpc_workload.Programs.names;
  (t, !mismatches)

let relocation_table () =
  let t =
    Tablefmt.create ~title:"\xC2\xA75.1 relocation freedoms preserve behaviour"
      ~columns:
        [ ("operation", Tablefmt.Left); ("program", Tablefmt.Left); ("ok", Tablefmt.Left) ]
  in
  let failures = ref 0 in
  let check op program f =
    let reference =
      Fpc_core.State.output (Harness.run_one ~engine:Fpc_core.Engine.i2 ~program ())
    in
    let image = Harness.image_of ~program () in
    (match f image with
    | Ok _ -> ()
    | Error m -> failwith (op ^ ": " ^ m));
    let st =
      Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2
        ~instance:"Main" ~proc:"main" ~args:[] ()
    in
    Harness.must_halt st;
    let ok = Fpc_core.State.output st = reference in
    if not ok then incr failures;
    Tablefmt.add_row t [ op; program; (if ok then "yes" else "NO") ]
  in
  let open Fpc_mesa in
  check "move_global_frame Main" "callchain" (fun image ->
      Linker.move_global_frame image ~instance:"Main");
  check "move_code_segment CLeaf" "callchain" (fun image ->
      Linker.move_code_segment image ~module_name:"CLeaf");
  check "move_procedure CLeaf.leaf" "callchain" (fun image ->
      Linker.move_procedure image ~module_name:"CLeaf" ~proc:"leaf");
  check "move_procedure Main.fib" "fib" (fun image ->
      Linker.move_procedure image ~module_name:"Main" ~proc:"fib");
  check "rebind_lv to same target" "leafcalls" (fun image ->
      let main = Image.find_instance image "Main" in
      Array.iteri
        (fun i target -> Linker.rebind_lv image ~instance:"Main" ~lv_index:i ~target)
        main.ii_imports;
      Ok ());
  (t, !failures)

let instance_table () =
  (* Two instances of a stateful module keep independent globals over one
     shared code segment (T3). *)
  let src =
    {|
MODULE Counter;
VAR n: INT := 0;
PROC bump(): INT =
  n := n + 1;
  RETURN n;
END;
END;

MODULE Main;
IMPORT Counter;
PROC main() =
  OUTPUT Counter.bump();
  OUTPUT Counter.bump();
END;
END;
|}
  in
  let t =
    Tablefmt.create ~title:"Module instances: shared code, private globals"
      ~columns:[ ("check", Tablefmt.Left); ("result", Tablefmt.Left) ]
  in
  let image =
    match Fpc_compiler.Compile.image src with Ok i -> i | Error m -> failwith m
  in
  let second =
    match Fpc_mesa.Linker.instantiate image ~module_name:"Counter" with
    | Ok name -> name
    | Error m -> failwith m
  in
  let engine = Fpc_core.Engine.i2 in
  let st = Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main" ~args:[] () in
  Fpc_interp.Interp.run st;
  Harness.must_halt st;
  let run_bump instance =
    let st = Fpc_core.State.create ~image ~engine () in
    Fpc_core.Transfer.start st ~instance ~proc:"bump" ~args:[];
    Fpc_interp.Interp.run st;
    Harness.must_halt st;
    match Fpc_interp.Interp.(outcome st).o_stack with
    | [ v ] -> v
    | other -> failwith (Printf.sprintf "unexpected stack depth %d" (List.length other))
  in
  (* Main already bumped instance 0 twice; the fresh instance starts at 0. *)
  let v_second = run_bump second in
  let v_first = run_bump "Counter" in
  let ok = v_second = 1 && v_first = 3 in
  Tablefmt.add_row t
    [ "instance Counter#1 counts from scratch"; string_of_int v_second ];
  Tablefmt.add_row t [ "instance Counter continues"; string_of_int v_first ];
  (t, ok)

let run () =
  let t1, mismatches = engine_matrix () in
  let t2, reloc_failures = relocation_table () in
  let t3, instances_ok = instance_table () in
  {
    Exp.id = "E14";
    key = "equivalence";
    title = "Behavioural identity across engines, linkages and relocations";
    paper_claim =
      "with either linkage the program behaves identically, except for \
       space and speed (\xC2\xA76, \xC2\xA78; levels of abstraction, \xC2\xA72)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2; Tablefmt.render t3 ];
    headlines =
      [
        ("program_mismatches", float_of_int mismatches);
        ("relocation_failures", float_of_int reloc_failures);
        ("instances_ok", if instances_ok then 1.0 else 0.0);
      ];
  }
