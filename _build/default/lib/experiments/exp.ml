type result = {
  id : string;
  key : string;
  title : string;
  paper_claim : string;
  tables : string list;
  headlines : (string * float) list;
}

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "### %s [%s] %s\n" r.id r.key r.title);
  Buffer.add_string buf (Printf.sprintf "paper: %s\n\n" r.paper_claim);
  List.iter
    (fun t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n')
    r.tables;
  if r.headlines <> [] then begin
    Buffer.add_string buf "headlines:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %.4f\n" k v))
      r.headlines
  end;
  Buffer.contents buf

let headline r name = List.assoc name r.headlines
