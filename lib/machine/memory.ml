type address = int

(* Dirty tracking granularity: one byte of [dirty] per 256-word page.
   Every mutation funnels through [poke] (metered writes and code-byte
   stores included), so the bitmap is a sound over-approximation of the
   words that differ from any content-identical pristine store. *)
let page_words_log2 = 8
let page_words = 1 lsl page_words_log2

type t = { store : int array; dirty : Bytes.t; mutable cost : Cost.t option }

let pages_for size_words = (size_words + page_words - 1) lsr page_words_log2

let create ?cost ~size_words () =
  if size_words <= 0 then invalid_arg "Memory.create: size must be positive";
  {
    store = Array.make size_words 0;
    dirty = Bytes.make (pages_for size_words) '\000';
    cost;
  }

let clone t =
  (* The copy starts content-identical to [t], so its dirty map is clean:
     dirtiness is always relative to the store a reset would blit from. *)
  {
    store = Array.copy t.store;
    dirty = Bytes.make (Bytes.length t.dirty) '\000';
    cost = t.cost;
  }

let size t = Array.length t.store
let set_cost t c = t.cost <- Some c
let clear_cost t = t.cost <- None
let cost t = t.cost

let check t addr what =
  if addr < 0 || addr >= Array.length t.store then
    invalid_arg (Printf.sprintf "Memory.%s: address %d out of range" what addr)

let peek t addr =
  check t addr "peek";
  t.store.(addr)

let poke t addr v =
  check t addr "poke";
  Bytes.unsafe_set t.dirty (addr lsr page_words_log2) '\001';
  t.store.(addr) <- Fpc_util.Bits.to_word v

let dirty_pages t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.dirty - 1 do
    if Bytes.unsafe_get t.dirty i <> '\000' then incr n
  done;
  !n

let reset_from t ~pristine =
  if Array.length t.store <> Array.length pristine.store then
    invalid_arg "Memory.reset_from: size mismatch";
  let size = Array.length t.store in
  for page = 0 to Bytes.length t.dirty - 1 do
    if Bytes.unsafe_get t.dirty page <> '\000' then begin
      let base = page lsl page_words_log2 in
      let len = min page_words (size - base) in
      Array.blit pristine.store base t.store base len;
      Bytes.unsafe_set t.dirty page '\000'
    end
  done

let charge_read t = match t.cost with Some c -> Cost.mem_read c | None -> ()
let charge_write t = match t.cost with Some c -> Cost.mem_write c | None -> ()

let charge t ~reads ~writes =
  match t.cost with Some c -> Cost.refs_n c ~reads ~writes | None -> ()

(* Prepaid access: the caller has already charged the reference (via
   [charge]) and proven the address in range, so both the meter and the
   bounds check are skipped.  Writes still truncate and mark the page
   dirty — the reset invariant does not bend for speed. *)
let prepaid_read t addr = Array.unsafe_get t.store addr

let prepaid_write t addr v =
  Bytes.unsafe_set t.dirty (addr lsr page_words_log2) '\001';
  Array.unsafe_set t.store addr (Fpc_util.Bits.to_word v)

let read t addr =
  charge_read t;
  peek t addr

let write t addr v =
  charge_write t;
  poke t addr v

let byte_of_word ~pc w =
  if pc land 1 = 0 then Fpc_util.Bits.byte_high w else Fpc_util.Bits.byte_low w

let peek_code_byte t ~code_base ~pc =
  byte_of_word ~pc (peek t (code_base + (pc lsr 1)))

let read_code_byte t ~code_base ~pc =
  charge_read t;
  peek_code_byte t ~code_base ~pc

let poke_code_byte t ~code_base ~pc b =
  let addr = code_base + (pc lsr 1) in
  let w = peek t addr in
  let w' =
    if pc land 1 = 0 then Fpc_util.Bits.word_of_bytes ~high:b ~low:(Fpc_util.Bits.byte_low w)
    else Fpc_util.Bits.word_of_bytes ~high:(Fpc_util.Bits.byte_high w) ~low:b
  in
  poke t addr w'

let blit_bytes t ~code_base bytes =
  Bytes.iteri (fun i b -> poke_code_byte t ~code_base ~pc:i (Char.code b)) bytes

let words_for_bytes n = (n + 1) / 2
