(** The benchmark-program suite: mini-Mesa sources exercising the paper's
    workload space — recursion, cross-module call chains, array crunching,
    coroutines, processes, VAR-parameter pointers, and deep call stacks.

    Every program defines [Main.main()] taking no arguments and OUTPUTs a
    deterministic sequence of words, so differential runs across engines
    and linkages can compare behaviour exactly. *)

val all : (string * string) list
(** (name, source) pairs, in a stable order. *)

val find : string -> string
(** Raises [Not_found]. *)

val names : string list

val call_intensive : string list
(** Subset suited to call-cost experiments (E1, E3, E10). *)

val call_dense : string list
(** The leaf-call kernels (fibleaf, ackerlite, xleaf): tight loops whose
    work is almost entirely calls to small pure leaves — the shapes
    cross-call fusion targets (E18). *)

val sequential : string list
(** Programs without FORK/YIELD (usable where process switches would
    perturb the measurement). *)
