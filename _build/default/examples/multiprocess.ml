(* Multiple processes over one frame heap (§1, §5.3).

   Because frames are heap-allocated, "it requires no special cases to
   handle the frames of multiple processes or coroutines, retained frames,
   or argument records, since it does not depend on a last-in first-out
   discipline."  Here a small fork/join pipeline runs on the same machine
   and heap as everything else; on a conventional LIFO architecture each
   of these processes would need its own pre-reserved contiguous stack.

   Run with:  dune exec examples/multiprocess.exe *)

let source =
  {|
MODULE Main;
VAR finished: INT := 0;
VAR total: INT := 0;

PROC fib(n: INT): INT =
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;

PROC worker(id: INT, n: INT) =
  VAR r: INT := fib(n);
  OUTPUT id * 10000 + r;
  total := total + r;
  finished := finished + 1;
END;

PROC ticker(rounds: INT) =
  VAR i: INT := 0;
  WHILE i < rounds DO
    OUTPUT 9000 + i;
    i := i + 1;
    YIELD;
  END;
  finished := finished + 1;
END;

PROC main() =
  FORK worker(1, 10);
  FORK worker(2, 12);
  FORK ticker(3);
  WHILE finished < 3 DO
    YIELD;
  END;
  OUTPUT total;
END;
END;
|}

let () =
  print_endline "-- multiple processes on the frame heap --";
  List.iter
    (fun (name, engine) ->
      match Fpc_compiler.Compile.run ~engine source with
      | Error msg -> failwith msg
      | Ok o ->
        Printf.printf "%s: %s\n" name
          (String.concat " " (List.map string_of_int o.o_output)))
    [
      ("I1", Fpc_core.Engine.i1);
      ("I2", Fpc_core.Engine.i2);
      ("I3", Fpc_core.Engine.i3 ());
      ("I4", Fpc_core.Engine.i4 ());
    ];
  print_endline
    "every YIELD is a process switch: banks and the return stack flush \
     (\xC2\xA77.1 \"when life gets complicated ... fall back to the general \
     scheme\"), yet the schedule and results are identical on every engine."
