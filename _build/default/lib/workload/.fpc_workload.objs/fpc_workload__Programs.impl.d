lib/workload/programs.ml: List
