lib/util/bits.ml: Printf
