(* Coroutines through the raw XFER model (§3).

   A producer and a filter cooperate as symmetric coroutines: neither is
   subordinate to the other, and the same XFER primitive that implements
   calls moves control (and an argument record) between their retained
   frames.  The destination context — not the transfer instruction —
   decides the discipline (property F3).

   Run with:  dune exec examples/coroutines.exe *)

let source =
  {|
MODULE Main;

-- Generates 2, 3, 4, ... each time it is resumed.
PROC naturals(start: INT) =
  VAR consumer: CONTEXT := RETCTX;
  VAR n: INT := start;
  WHILE TRUE DO
    TRANSFER(consumer, n);
    consumer := RETCTX;
    n := n + 1;
  END;
END;

-- Passes through only values not divisible by its parameter, pulling
-- from its own upstream coroutine.
PROC sieve_stage(divisor: INT, v0: INT) =
  VAR downstream: CONTEXT := RETCTX;
  VAR v: INT := v0;
  WHILE TRUE DO
    IF v MOD divisor # 0 THEN
      TRANSFER(downstream, v);
      downstream := RETCTX;
    END;
    v := v + 1;
  END;
END;

PROC main() =
  -- First resume creates the coroutine's frame (an XFER to a procedure
  -- descriptor); later resumes land in the retained frame.
  VAR v: INT := TRANSFER(@naturals, 2);
  VAR gen: CONTEXT := RETCTX;
  VAR i: INT := 0;
  WHILE i < 10 DO
    OUTPUT v;
    v := TRANSFER(gen, 0);
    gen := RETCTX;
    i := i + 1;
  END;

  -- An independent filtering coroutine: odd numbers from 91.
  VAR w: INT := TRANSFER(@sieve_stage, 2, 91);
  VAR odd: CONTEXT := RETCTX;
  i := 0;
  WHILE i < 5 DO
    OUTPUT w;
    w := TRANSFER(odd, 0);
    odd := RETCTX;
    i := i + 1;
  END;
END;
END;
|}

let run engine name =
  match Fpc_compiler.Compile.run ~engine source with
  | Error msg -> failwith msg
  | Ok o ->
    Printf.printf "%s: %s\n" name
      (String.concat " " (List.map string_of_int o.o_output));
    o.o_output

let () =
  print_endline "-- coroutines via XFER: every engine, same behaviour --";
  let reference = run Fpc_core.Engine.i2 "I2" in
  List.iter
    (fun (name, engine) -> assert (run engine name = reference))
    [
      ("I1", Fpc_core.Engine.i1);
      ("I3", Fpc_core.Engine.i3 ());
      ("I4", Fpc_core.Engine.i4 ());
    ];
  print_endline
    "note: under I3 every coroutine TRANSFER flushes the return stack \
     (\xC2\xA76's fallback), and under I4 the partner's frame usually still \
     has its register bank when control comes back (\xC2\xA77.1)."
