type watcher = {
  w_fd : Unix.file_descr;
  mutable on_readable : unit -> unit;
  mutable on_writable : unit -> unit;
  mutable want_read : bool;
  mutable want_write : bool;
  mutable alive : bool;
}

type t = {
  backend : Backend.t;
  watchers : (Unix.file_descr, watcher) Hashtbl.t;
  wheel : Wheel.t;
  posted : (unit -> unit) Queue.t;
  posted_m : Mutex.t;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  finished : bool Atomic.t;  (** run has returned; posts are dropped *)
  mutable stop_requested : bool;
  mutable in_run : bool;
  mutable iterations : int;
  mutable posts : int;
  wake_buf : Bytes.t;
}

let now = Unix.gettimeofday

let create ?backend () =
  let backend =
    match backend with Some b -> b | None -> Backend.default ()
  in
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  let t =
    {
      backend;
      watchers = Hashtbl.create 64;
      wheel = Wheel.create ~now:(now ()) ();
      posted = Queue.create ();
      posted_m = Mutex.create ();
      wake_rd;
      wake_wr;
      finished = Atomic.make false;
      stop_requested = false;
      in_run = false;
      iterations = 0;
      posts = 0;
      wake_buf = Bytes.create 256;
    }
  in
  (* the self-pipe is a watcher like any other; its payload bytes carry
     no information (the posted queue does), so just drain them *)
  backend.Backend.add wake_rd;
  backend.Backend.modify wake_rd ~read:true ~write:false;
  t

let backend_name t = t.backend.Backend.name

let watch t fd ?(on_readable = ignore) ?(on_writable = ignore) () =
  let w =
    { w_fd = fd; on_readable; on_writable; want_read = false;
      want_write = false; alive = true }
  in
  t.backend.Backend.add fd;
  Hashtbl.replace t.watchers fd w;
  w

let interest t w ~read ~write =
  if w.alive && (w.want_read <> read || w.want_write <> write) then begin
    w.want_read <- read;
    w.want_write <- write;
    t.backend.Backend.modify w.w_fd ~read ~write
  end

let unwatch t w =
  if w.alive then begin
    w.alive <- false;
    t.backend.Backend.remove w.w_fd;
    Hashtbl.remove t.watchers w.w_fd
  end

let after t ~ms f =
  Wheel.add t.wheel ~at:(now () +. (float_of_int ms /. 1000.0)) f

let cancel t timer = Wheel.cancel t.wheel timer

(* Thread-safe injection: enqueue the thunk and poke the self-pipe so a
   loop blocked in the backend wakes up.  The byte is only written on an
   empty->non-empty transition, so a burst of posts costs one wake.  A
   full or already-closed pipe is fine — the loop is awake or gone. *)
let post t f =
  if not (Atomic.get t.finished) then begin
    Mutex.lock t.posted_m;
    let was_empty = Queue.is_empty t.posted in
    Queue.push f t.posted;
    t.posts <- t.posts + 1;
    Mutex.unlock t.posted_m;
    if was_empty then
      try ignore (Unix.write t.wake_wr (Bytes.make 1 '!') 0 1)
      with Unix.Unix_error _ | Sys_error _ -> ()
  end

let stop t = t.stop_requested <- true
let request_stop t = post t (fun () -> stop t)

let drain_wake t =
  let rec go () =
    match Unix.read t.wake_rd t.wake_buf 0 (Bytes.length t.wake_buf) with
    | n when n = Bytes.length t.wake_buf -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let run_posted t =
  let batch =
    Mutex.lock t.posted_m;
    if Queue.is_empty t.posted then None
    else begin
      let q = Queue.copy t.posted in
      Queue.clear t.posted;
      Some q
    end
  in
  Mutex.unlock t.posted_m;
  match batch with
  | None -> ()
  | Some q -> Queue.iter (fun f -> f ()) q

let has_posted t =
  Mutex.lock t.posted_m;
  let r = not (Queue.is_empty t.posted) in
  Mutex.unlock t.posted_m;
  r

let run t =
  if t.in_run then invalid_arg "Loop.run: already running";
  t.in_run <- true;
  while not t.stop_requested do
    t.iterations <- t.iterations + 1;
    let timeout =
      if has_posted t then 0.0
      else
        match Wheel.next_due t.wheel ~now:(now ()) with
        | Some s -> s
        | None -> -1.0
    in
    let ready = t.backend.Backend.wait timeout in
    List.iter
      (fun (r : Backend.ready) ->
        if r.Backend.r_fd = t.wake_rd then drain_wake t
        else
          (* look the watcher up at dispatch time: an earlier callback in
             this same batch may have unwatched (or replaced) the fd *)
          match Hashtbl.find_opt t.watchers r.Backend.r_fd with
          | None -> ()
          | Some w ->
            if w.alive && w.want_read && r.Backend.r_readable then
              w.on_readable ();
            if w.alive && w.want_write && r.Backend.r_writable then
              w.on_writable ())
      ready;
    run_posted t;
    Wheel.advance t.wheel ~now:(now ())
  done;
  Atomic.set t.finished true;
  (try Unix.close t.wake_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_wr with Unix.Unix_error _ -> ());
  t.in_run <- false

type stats = {
  iterations : int;
  posts : int;
  timers_fired : int;
  timers_live : int;
  watched : int;
}

let stats (t : t) =
  {
    iterations = t.iterations;
    posts = t.posts;
    timers_fired = Wheel.fired t.wheel;
    timers_live = Wheel.live t.wheel;
    watched = Hashtbl.length t.watchers;
  }
