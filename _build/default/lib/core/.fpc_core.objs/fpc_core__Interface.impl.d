lib/core/interface.ml: Array Descriptor Fpc_isa Fpc_machine Fpc_mesa Image String
