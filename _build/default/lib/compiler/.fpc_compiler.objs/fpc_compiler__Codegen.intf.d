lib/compiler/codegen.mli: Convention Fpc_lang Fpc_mesa
