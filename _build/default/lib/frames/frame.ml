let overhead_words = 4
let off_fsi = -4
let off_pc = -3
let off_return_link = -2
let off_global_frame = -1
let lf_of_block block = block + overhead_words
let block_of_lf lf = lf - overhead_words
let block_words_for_locals n = overhead_words + n

open Fpc_machine

let read_pc mem ~lf = Memory.read mem (lf + off_pc)
let write_pc mem ~lf v = Memory.write mem (lf + off_pc) v
let read_return_link mem ~lf = Memory.read mem (lf + off_return_link)
let write_return_link mem ~lf v = Memory.write mem (lf + off_return_link) v
let read_global_frame mem ~lf = Memory.read mem (lf + off_global_frame)
let write_global_frame mem ~lf v = Memory.write mem (lf + off_global_frame) v
let read_fsi mem ~lf = Memory.read mem (lf + off_fsi)
let peek_pc mem ~lf = Memory.peek mem (lf + off_pc)
let peek_return_link mem ~lf = Memory.peek mem (lf + off_return_link)
let peek_global_frame mem ~lf = Memory.peek mem (lf + off_global_frame)
let peek_fsi mem ~lf = Memory.peek mem (lf + off_fsi)
