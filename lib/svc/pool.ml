(* Per-worker shard: everything a worker touches on the completion path.
   The worker is the only writer; poll/await/metrics readers take the
   shard mutex only to swap the batch out or merge the counters, so a
   completing job never contends on pool-wide state and never wakes
   waiters (the drain condition is signaled only on an actual drain). *)
type shard = {
  s_mutex : Mutex.t;
  mutable s_completed_rev : Job.result list;  (** since the last poll/await *)
  s_metrics : Metrics.t;  (** single-writer; merged on [metrics] *)
}

type t = {
  mutex : Mutex.t;  (** guards queue / active / stopping / next_id *)
  work_available : Condition.t;  (** queue non-empty, or stopping *)
  drained : Condition.t;  (** no job queued or executing *)
  queue : (int * Job.spec) Queue.t;
  mutable next_id : int;
  mutable active : int;  (** jobs currently executing *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
  shards : shard array;  (** one per worker *)
  cache : Image_cache.t;
  deliver : (Job.result -> unit) option;
      (** when set, completed results are handed here (on the worker
          domain) instead of accumulating for poll/await *)
  started_at : float;
}

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

(* ---- executing one job (never raises) ---- *)

let now = Unix.gettimeofday

let failed ?(stats = Job.no_stats) id spec kind msg =
  {
    Job.id;
    spec;
    outcome = Job.Failed (kind, msg);
    stats;
    profile = None;
    sched = None;
  }

(* Deadlined jobs run in slices of this many steps, with a wall-clock
   check between slices.  Small enough for few-ms deadline granularity,
   large enough that the per-slice overhead (one clock read, one status
   reset) vanishes against the interpreter loop. *)
let deadline_slice = 50_000

(* Run [st] for up to [fuel] steps with [step] (one tier's run function).
   With a deadline, run in slices and check the clock between them;
   returns [true] iff the deadline fired while the program was still
   running.  [Step_limit] is only ever set by the tier's own step counter
   (the trap machinery never raises it), so a mid-slice [Step_limit] with
   fuel remaining is safely resumed by resetting the status to [Running]
   — both tiers resume at the exact boundary where the budget ran out. *)
let run_with_deadline ?deadline_at ~step ~fuel st =
  match deadline_at with
  | None ->
    step fuel st;
    false
  | Some deadline ->
    let rec go remaining =
      let s = min deadline_slice remaining in
      step s st;
      match st.Fpc_core.State.status with
      | Fpc_core.State.Trapped Fpc_core.State.Step_limit when remaining > s ->
        if now () > deadline then true
        else begin
          st.Fpc_core.State.status <- Fpc_core.State.Running;
          go (remaining - s)
        end
      | _ -> false
    in
    if fuel <= 0 then false else go fuel

let interp_step fuel st = Fpc_interp.Interp.run ~max_steps:fuel st

let execute ?arena cache id (spec : Job.spec) =
  match (Job.engine_of_name spec.engine, Job.source_text spec.source) with
  | Error m, _ | _, Error m -> failed id spec Job.Bad_request m
  | Ok engine, Ok source -> (
    let convention = Fpc_compiler.Convention.for_engine engine in
    (* Auto resolves to the compiled tier except under a tracer, where
       every instruction deopts to the exact chain anyway; an explicit
       tier=compiled trace=1 still runs compiled (the event stream is
       bit-identical, just slower). *)
    let compiled_tier =
      match spec.tier with
      | Job.Interp -> false
      | Job.Compiled -> true
      | Job.Auto -> not spec.trace
    in
    let tier_name = if compiled_tier then "compiled" else "interp" in
    (* The service default is devirt on: the pass only rewrites provably
       single-target sites, so outputs are unchanged and meters improve.
       An explicit devirt=0 gets the late-bound baseline. *)
    let devirt = Option.value spec.devirt ~default:true in
    match
      Image_cache.find_pristine cache ~tier:tier_name ~devirt ~convention
        ~source
    with
    | Error m -> failed id spec Job.Compile_error m
    | exception e -> failed id spec Job.Internal (Printexc.to_string e)
    | Ok (pristine, key, cache_hit, compile_s) -> (
      let t0 = now () in
      let mw0 = Gc.minor_words () in
      let deadline_at =
        Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) spec.deadline_ms
      in
      let translation = ref Job.No_translation in
      let tier_used = ref None in
      (* Scheduled jobs (an explicit policy, or any Sessions workload)
         drive the machine through the green-thread scheduler instead of
         the plain deadline slicer; both leave the same terminal status
         on [st], so the outcome classification below is shared. *)
      let sched_policy = Job.effective_sched spec in
      let drive ~step st =
        match sched_policy with
        | None -> (run_with_deadline ?deadline_at ~step ~fuel:spec.fuel st, None)
        | Some policy ->
          let s =
            Fpc_sched.Sched.run ~policy ?deadline_at ~step ~fuel:spec.fuel st
          in
          (s.Fpc_sched.Sched.deadline_hit, Some s)
      in
      (* The compiled tier's run function for [image]: reuses the
         translation attached to the image's shared directory or builds
         and attaches it (a translation-cache miss, once per pristine). *)
      let tier_step image =
        let tt0 = now () in
        let tr, hit = Fpc_tier.Tier.of_image image in
        tier_used := Some tr;
        (* Counts that accrue during the run (lazy translations, fused
           calls) are filled in after it completes. *)
        translation :=
          Job.Translated
            {
              hit;
              translate_s = now () -. tt0;
              lazy_translated = 0;
              fused_calls = 0;
              procs = Fpc_tier.Tier.procs tr;
              procs_translated = Fpc_tier.Tier.procs_translated tr;
              invalidations = Fpc_tier.Tier.invalidations tr;
            };
        fun fuel st -> Fpc_tier.Tier.run ~max_steps:fuel tr st
      in
      (* With an arena (the worker's private one), reuse its slot for
         this (image, engine, tier) triple: dirty-page image reset +
         in-place state reset.  Without one, fall back to clone-per-job.
         The steady-state branch is written flat — no [go]/[boot]
         closures, no shared [image] binding — because every capture here
         is a per-job minor allocation the arena exists to eliminate. *)
      match
        if spec.trace then begin
          let slot =
            match arena with
            | Some a ->
              Some
                (Arena.acquire a ~key ~engine ~engine_name:spec.engine
                   ~tier_name ~pristine ())
            | None -> None
          in
          let image =
            match slot with
            | Some s -> Arena.image s
            | None -> Fpc_mesa.Image.clone pristine
          in
          let p = Fpc_interp.Profiler.create ~image ~engine () in
          let st =
            match slot with
            | Some s ->
              let st = Arena.checkout ~tracer:p.Fpc_interp.Profiler.sink s in
              Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
              st
            | None ->
              Fpc_interp.Interp.boot ~tracer:p.Fpc_interp.Profiler.sink ~image
                ~engine ~instance:"Main" ~proc:"main" ~args:[] ()
          in
          let step = if compiled_tier then tier_step image else interp_step in
          let deadline_hit, sstats = drive ~step st in
          let o = Fpc_interp.Interp.outcome st in
          ignore
            (Fpc_trace.Profile.finish p.Fpc_interp.Profiler.profile
               ~cycles:o.Fpc_interp.Interp.o_cycles
               ~mem_refs:o.Fpc_interp.Interp.o_mem_refs);
          ( st,
            Some (Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile),
            deadline_hit,
            sstats )
        end
        else if compiled_tier then begin
          let slot_image, st =
            match arena with
            | Some a ->
              let slot =
                Arena.acquire a ~key ~engine ~engine_name:spec.engine
                  ~tier_name ~pristine ()
              in
              let st = Arena.checkout slot in
              Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
              (Arena.image slot, st)
            | None ->
              let image = Fpc_mesa.Image.clone pristine in
              ( image,
                Fpc_interp.Interp.boot ~image ~engine ~instance:"Main"
                  ~proc:"main" ~args:[] () )
          in
          let deadline_hit, sstats = drive ~step:(tier_step slot_image) st in
          (st, None, deadline_hit, sstats)
        end
        else begin
          let st =
            match arena with
            | Some a ->
              let st =
                Arena.checkout
                  (Arena.acquire a ~key ~engine ~engine_name:spec.engine
                     ~tier_name ~pristine ())
              in
              Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
              st
            | None ->
              Fpc_interp.Interp.boot ~image:(Fpc_mesa.Image.clone pristine)
                ~engine ~instance:"Main" ~proc:"main" ~args:[] ()
          in
          let deadline_hit, sstats = drive ~step:interp_step st in
          (st, None, deadline_hit, sstats)
        end
      with
      | exception Not_found ->
        failed id spec Job.Compile_error "program has no Main.main()"
      | exception e -> failed id spec Job.Internal (Printexc.to_string e)
      | st, profile, deadline_hit, sstats ->
        let o = Fpc_interp.Interp.outcome st in
        let minor_words = int_of_float (Gc.minor_words () -. mw0) in
        (match (!translation, !tier_used) with
        | Job.Translated rec_, Some tr ->
          let m = st.Fpc_core.State.metrics in
          translation :=
            Job.Translated
              {
                rec_ with
                lazy_translated = m.Fpc_core.State.tier_lazy_translations;
                fused_calls = m.Fpc_core.State.tier_fused_calls;
                procs_translated = Fpc_tier.Tier.procs_translated tr;
                invalidations = Fpc_tier.Tier.invalidations tr;
              }
        | _ -> ());
        let stats =
          {
            Job.cache_hit;
            compile_s;
            run_s = now () -. t0;
            minor_words;
            translation = !translation;
            instructions = o.o_instructions;
            cycles = o.o_cycles;
            mem_refs = o.o_mem_refs;
            fastpath = o.o_fastpath;
            devirt_stats = pristine.Fpc_mesa.Image.dir.Fpc_mesa.Image.devirt;
          }
        in
        let outcome =
          if deadline_hit then
            Job.Failed
              ( Job.Deadline_exceeded,
                Printf.sprintf "deadline of %d ms exceeded"
                  (Option.value spec.deadline_ms ~default:0) )
          else
            match o.o_status with
            | Fpc_core.State.Halted -> Job.Output o.o_output
            | Fpc_core.State.Running ->
              Job.Failed (Job.Internal, "interpreter stopped while still running")
            | Fpc_core.State.Trapped Fpc_core.State.Step_limit ->
              Job.Failed
                ( Job.Fuel_exhausted,
                  Printf.sprintf "step budget of %d exhausted" spec.fuel )
            | Fpc_core.State.Trapped r ->
              Job.Failed
                (Job.Trapped (Fpc_core.State.trap_reason_to_string r), "machine trap")
        in
        let sched =
          match sstats with
          | None -> None
          | Some stats ->
            (* The LIFO-reservation baseline only exists for session
               workloads, whose generator knows its own worst case. *)
            let lifo_reserved =
              match spec.source with
              | Job.Sessions c ->
                st.Fpc_core.State.metrics.peak_live_procs
                * Fpc_workload.Sessions.worst_extent_words c
                    ~image:st.Fpc_core.State.image
              | Job.Suite _ | Job.Inline _ -> 0
            in
            Some (Fpc_sched.Sched.report ~lifo_reserved ~stats st)
        in
        { Job.id; spec; outcome; stats; profile; sched }))

(* ---- the worker loop ---- *)

let rec worker_loop t shard arena =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then (* stopping, queue drained *)
    Mutex.unlock t.mutex
  else begin
    let id, spec = Queue.pop t.queue in
    t.active <- t.active + 1;
    Mutex.unlock t.mutex;
    let result = execute ?arena t.cache id spec in
    (* Publish before the job stops counting as active, so a woken
       awaiter (or a drain) is guaranteed to observe the result.  With a
       [deliver] consumer the record itself is handed over directly —
       no shard list, no sort, no second copy — and only the metrics
       fold touches the shard. *)
    Mutex.lock shard.s_mutex;
    (match t.deliver with
    | None -> shard.s_completed_rev <- result :: shard.s_completed_rev
    | Some _ -> ());
    Metrics.record shard.s_metrics result;
    Mutex.unlock shard.s_mutex;
    (match t.deliver with
    | None -> ()
    | Some f -> ( try f result with _ -> ()));
    Mutex.lock t.mutex;
    t.active <- t.active - 1;
    if t.active = 0 && Queue.is_empty t.queue then Condition.broadcast t.drained;
    Mutex.unlock t.mutex;
    worker_loop t shard arena
  end

let create ?domains ?cache ?deliver ?(arena_reuse = true) () =
  let domains = Option.value domains ~default:(recommended_domains ()) in
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let cache = match cache with Some c -> c | None -> Image_cache.create () in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      next_id = 0;
      active = 0;
      stopping = false;
      workers = [];
      n_domains = domains;
      shards =
        Array.init domains (fun _ ->
            {
              s_mutex = Mutex.create ();
              s_completed_rev = [];
              s_metrics = Metrics.create ~domains;
            });
      cache;
      deliver;
      started_at = now ();
    }
  in
  t.workers <-
    Array.to_list
      (Array.map
         (fun shard ->
           Domain.spawn (fun () ->
               (* The arena lives on the worker's own domain: created
                  here, seen by nobody else, no lock ever taken. *)
               let arena = if arena_reuse then Some (Arena.create ()) else None in
               worker_loop t shard arena))
         t.shards);
  t

let domains t = t.n_domains
let cache t = t.cache

let submit t spec =
  Mutex.lock t.mutex;
  if t.stopping then (
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down");
  let id = t.next_id in
  t.next_id <- id + 1;
  Queue.push (id, spec) t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex;
  id

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue + t.active in
  Mutex.unlock t.mutex;
  n

(* Swap every shard's batch out and present one id-sorted list — the
   deterministic order poll/await guarantee. *)
let take_completed t =
  let rs =
    Array.fold_left
      (fun acc shard ->
        Mutex.lock shard.s_mutex;
        let batch = shard.s_completed_rev in
        shard.s_completed_rev <- [];
        Mutex.unlock shard.s_mutex;
        List.rev_append batch acc)
      [] t.shards
  in
  List.sort (fun (a : Job.result) b -> compare a.id b.id) rs

let poll t = take_completed t

let drain t =
  Mutex.lock t.mutex;
  while not (Queue.is_empty t.queue && t.active = 0) do
    Condition.wait t.drained t.mutex
  done;
  Mutex.unlock t.mutex

let await t =
  drain t;
  take_completed t

let metrics_tally t =
  let merged = Metrics.create ~domains:t.n_domains in
  Array.iter
    (fun shard ->
      Mutex.lock shard.s_mutex;
      Metrics.merge_into ~src:shard.s_metrics ~into:merged;
      Mutex.unlock shard.s_mutex)
    t.shards;
  merged

let metrics t =
  let merged = metrics_tally t in
  let wall_s = now () -. t.started_at in
  Metrics.snapshot merged ~wall_s ~cache:(Image_cache.stats t.cache)

let started_at t = t.started_at

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let run_jobs ?domains ?cache ?arena_reuse specs =
  let t = create ?domains ?cache ?arena_reuse () in
  List.iter (fun spec -> ignore (submit t spec)) specs;
  let results = await t in
  let snapshot = metrics t in
  shutdown t;
  (results, snapshot)
