open Fpc_machine

type pointer_policy = Flush_flagged | Divert

type config = {
  bank_count : int;
  bank_words : int;
  track_dirty : bool;
  pointer_policy : pointer_policy;
  divert_penalty_cycles : int;
}

let default_config =
  {
    bank_count = 4;
    bank_words = 16;
    track_dirty = true;
    pointer_policy = Flush_flagged;
    divert_penalty_cycles = 4;
  }

(* Owner encoding, kept as an immediate int so ownership changes never
   allocate: [owner_free], [owner_stack], or the shadowed frame's LF. *)
let owner_free = -2
let owner_stack = -1

type bank = {
  id : int;
  data : int array;
  dirty : bool array;
  mutable owner : int;
  mutable shadow_len : int;
  mutable age : int;
}

type stats = {
  xfers : int;
  overflows : int;
  underflows : int;
  words_written_back : int;
  words_loaded : int;
  flush_events : int;
  flagged_flushes : int;
  diversions : int;
  c2_violations : int;
}

(* Frame→bank lookup is a linear scan over the (≤8) banks — exactly the
   hardware comparator of §7.4, and unlike the Hashtbl it replaced it
   allocates nothing on the per-local-reference hot path. *)
type t = {
  cfg : config;
  mem : Memory.t;
  cost : Cost.t;
  ladder : Fpc_frames.Size_class.t;
  banks : bank array;
  flagged : (int, unit) Hashtbl.t;
  mutable stack_bank : int; (* bank id, or -1 *)
  mutable last_bi : int;
      (* one-entry [bank_index] cache: straight-line code touches the
         same frame's bank access after access, so remembering the last
         hit skips the comparator scan.  Self-validating — a hit counts
         only if that bank still owns the requested lf — so owner
         changes never need to invalidate it.  Host-side only: the
         simulated comparator cost is unchanged. *)
  mutable clock : int;
  mutable s_xfers : int;
  mutable s_overflows : int;
  mutable s_underflows : int;
  mutable s_written_back : int;
  mutable s_loaded : int;
  mutable s_flush_events : int;
  mutable s_flagged_flushes : int;
  mutable s_diversions : int;
  mutable s_c2 : int;
  mutable on_event : (Fpc_trace.Event.kind -> unit) option;
}

let create ?(config = default_config) ~mem ~cost ~ladder () =
  if config.bank_count <= 0 || config.bank_words <= 0 then
    invalid_arg "Bank_file.create: bad configuration";
  {
    cfg = config;
    mem;
    cost;
    ladder;
    banks =
      Array.init config.bank_count (fun id ->
          {
            id;
            data = Array.make config.bank_words 0;
            dirty = Array.make config.bank_words false;
            owner = owner_free;
            shadow_len = 0;
            age = 0;
          });
    flagged = Hashtbl.create 16;
    stack_bank = -1;
    last_bi = -1;
    clock = 0;
    s_xfers = 0;
    s_overflows = 0;
    s_underflows = 0;
    s_written_back = 0;
    s_loaded = 0;
    s_flush_events = 0;
    s_flagged_flushes = 0;
    s_diversions = 0;
    s_c2 = 0;
    on_event = None;
  }

let config t = t.cfg
let set_on_event t f = t.on_event <- f

let reset t =
  Array.iter
    (fun b ->
      b.owner <- owner_free;
      b.shadow_len <- 0;
      b.age <- 0;
      Array.fill b.dirty 0 (Array.length b.dirty) false)
    t.banks;
  Hashtbl.reset t.flagged;
  t.stack_bank <- -1;
  t.clock <- 0;
  t.s_xfers <- 0;
  t.s_overflows <- 0;
  t.s_underflows <- 0;
  t.s_written_back <- 0;
  t.s_loaded <- 0;
  t.s_flush_events <- 0;
  t.s_flagged_flushes <- 0;
  t.s_diversions <- 0;
  t.s_c2 <- 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* The scans below are toplevel recursive functions, not local ones: a
   [let rec] nested inside the lookup would capture its environment and
   allocate a closure on every per-reference call. *)
let rec scan_owner banks n target i =
  if i >= n then -1
  else if banks.(i).owner = target then i
  else scan_owner banks n target (i + 1)

(* Index of the bank shadowing [lf], or -1.  Allocation-free; the
   one-entry cache makes the common straight-line case a single
   compare. *)
let bank_index t ~lf =
  let bi = t.last_bi in
  if bi >= 0 && t.banks.(bi).owner = lf then bi
  else begin
    let bi = scan_owner t.banks (Array.length t.banks) lf 0 in
    if bi >= 0 then t.last_bi <- bi;
    bi
  end

(* Write a bank's shadow back to its frame.  Dirty tracking lets the
   machine skip registers that were never written (§7.1). *)
let write_back t bank =
  if bank.owner >= 0 then begin
    let lf = bank.owner in
    let n = ref 0 in
    for i = 0 to bank.shadow_len - 1 do
      if (not t.cfg.track_dirty) || bank.dirty.(i) then begin
        Memory.write t.mem (lf + i) bank.data.(i);
        t.s_written_back <- t.s_written_back + 1;
        incr n
      end
    done;
    if !n > 0 then
      match t.on_event with
      | Some f -> f (Fpc_trace.Event.Bank_spill !n)
      | None -> ()
  end

let detach t bank =
  if bank.owner = owner_stack && t.stack_bank = bank.id then t.stack_bank <- -1;
  bank.owner <- owner_free;
  bank.shadow_len <- 0;
  Array.fill bank.dirty 0 (Array.length bank.dirty) false

(* Find a bank to use: a free one, else evict the oldest local bank.  The
   current stack bank is never a victim.  Raises if every bank is the
   stack bank (bank_count = 0 is rejected at create). *)
(* Oldest local-owning bank (ties keep the first), or -1. *)
let rec scan_victim banks n best i =
  if i >= n then best
  else
    let best =
      if banks.(i).owner >= 0 && (best < 0 || banks.(i).age < banks.(best).age)
      then i
      else best
    in
    scan_victim banks n best (i + 1)

let acquire t =
  let n = Array.length t.banks in
  let fi = scan_owner t.banks n owner_free 0 in
  if fi >= 0 then begin
    let b = t.banks.(fi) in
    b.age <- tick t;
    b
  end
  else begin
    let vi = scan_victim t.banks n (-1) 0 in
    if vi < 0 then invalid_arg "Bank_file.acquire: no evictable bank"
    else begin
      let b = t.banks.(vi) in
      t.s_overflows <- t.s_overflows + 1;
      write_back t b;
      detach t b;
      b.age <- tick t;
      b
    end
  end

let shadow_len_for t ~payload_words = min t.cfg.bank_words payload_words

let assign t bank ~lf ~payload_words =
  bank.owner <- lf;
  bank.shadow_len <- shadow_len_for t ~payload_words;
  Array.fill bank.dirty 0 (Array.length bank.dirty) false;
  bank.age <- tick t

(* [on_call_n] is the transfer engine's entry point: a plain [nargs]
   argument, because wrapping it in an option at the call site would be a
   per-call allocation. *)
let on_call_n t ~nargs ~callee_lf ~payload_words ~args =
  t.s_xfers <- t.s_xfers + 1;
  (* Rename the stack bank (or a fresh one if no stack bank exists, e.g.
     right after a flush) into the callee's local bank. *)
  let bank =
    if t.stack_bank >= 0 then begin
      let b = t.banks.(t.stack_bank) in
      t.stack_bank <- -1;
      b.age <- tick t;
      b
    end
    else acquire t
  in
  assign t bank ~lf:callee_lf ~payload_words;
  for i = 0 to nargs - 1 do
    let v = args.(i) in
    if i < bank.shadow_len then begin
      bank.data.(i) <- v;
      bank.dirty.(i) <- true
    end
    else
      (* The argument record overflows the bank window: the excess words
         go straight to the frame in storage. *)
      Memory.write t.mem (callee_lf + i) v
  done;
  (* A fresh stack bank for the callee's expression evaluation. *)
  let sb = acquire t in
  sb.owner <- owner_stack;
  sb.shadow_len <- 0;
  t.stack_bank <- sb.id

let on_call ?nargs t ~callee_lf ~payload_words ~args =
  let nargs = match nargs with Some n -> n | None -> Array.length args in
  on_call_n t ~nargs ~callee_lf ~payload_words ~args

let load_bank t bank ~lf =
  for i = 0 to bank.shadow_len - 1 do
    bank.data.(i) <- Memory.read t.mem (lf + i);
    bank.dirty.(i) <- false;
    t.s_loaded <- t.s_loaded + 1
  done;
  if bank.shadow_len > 0 then
    match t.on_event with
    | Some f -> f (Fpc_trace.Event.Bank_load bank.shadow_len)
    | None -> ()

let ensure_bank t ~lf =
  t.s_xfers <- t.s_xfers + 1;
  let bi = bank_index t ~lf in
  if bi >= 0 then t.banks.(bi).age <- tick t
  else begin
    t.s_underflows <- t.s_underflows + 1;
    (* The frame's payload size comes from its fsi word — one storage
       reference, part of the underflow cost. *)
    let fsi = Memory.read t.mem (lf + Fpc_frames.Frame.off_fsi) in
    let payload_words =
      Fpc_frames.Size_class.block_words t.ladder fsi - Fpc_frames.Frame.overhead_words
    in
    let b = acquire t in
    assign t b ~lf ~payload_words;
    load_bank t b ~lf
  end

let release_frame t ~lf =
  let bi = bank_index t ~lf in
  if bi >= 0 then detach t t.banks.(bi);
  if Hashtbl.length t.flagged > 0 then Hashtbl.remove t.flagged lf

let flag_frame t ~lf = Hashtbl.replace t.flagged lf ()
let is_flagged t ~lf = Hashtbl.mem t.flagged lf

let on_leave t ~lf =
  match t.cfg.pointer_policy with
  | Divert -> ()
  | Flush_flagged ->
    if Hashtbl.length t.flagged > 0 && is_flagged t ~lf then begin
      let bi = bank_index t ~lf in
      if bi >= 0 then begin
        let b = t.banks.(bi) in
        t.s_flagged_flushes <- t.s_flagged_flushes + 1;
        write_back t b;
        detach t b
      end
    end

let flush_all t =
  t.s_flush_events <- t.s_flush_events + 1;
  Array.iter
    (fun b ->
      if b.owner >= 0 then begin
        write_back t b;
        detach t b
      end
      else if b.owner = owner_stack then detach t b)
    t.banks

let read_local t ~lf ~index =
  let bi = bank_index t ~lf in
  if bi >= 0 && index < t.banks.(bi).shadow_len then begin
    Cost.bank_ref t.cost;
    t.banks.(bi).data.(index)
  end
  else Memory.read t.mem (lf + index)

let write_local t ~lf ~index v =
  let v = Fpc_util.Bits.to_word v in
  let bi = bank_index t ~lf in
  if bi >= 0 && index < t.banks.(bi).shadow_len then begin
    Cost.bank_ref t.cost;
    t.banks.(bi).data.(index) <- v;
    t.banks.(bi).dirty.(index) <- true
  end
  else Memory.write t.mem (lf + index) v

(* Locate the shadowed window containing [addr], if any: the hardware
   comparator of §7.4.  Windows of distinct live frames never overlap
   (they sit inside disjoint frame blocks), so first hit = only hit.
   Returns the bank index, or -1. *)
let rec scan_window banks n addr i =
  if i >= n then -1
  else
    let lf = banks.(i).owner in
    if lf >= 0 && addr >= lf && addr < lf + banks.(i).shadow_len then i
    else scan_window banks n addr (i + 1)

let window_index t addr = scan_window t.banks (Array.length t.banks) addr 0

let data_read t ~addr =
  let bi = window_index t addr in
  if bi < 0 then Memory.read t.mem addr
  else begin
    let b = t.banks.(bi) in
    (match t.cfg.pointer_policy with
    | Flush_flagged -> t.s_c2 <- t.s_c2 + 1
    | Divert -> ());
    t.s_diversions <- t.s_diversions + 1;
    Cost.bank_ref t.cost;
    Cost.add_cycles t.cost t.cfg.divert_penalty_cycles;
    let lf = b.owner in
    assert (lf >= 0);
    b.data.(addr - lf)
  end

let data_write t ~addr v =
  let v = Fpc_util.Bits.to_word v in
  let bi = window_index t addr in
  if bi < 0 then Memory.write t.mem addr v
  else begin
    let b = t.banks.(bi) in
    (match t.cfg.pointer_policy with
    | Flush_flagged -> t.s_c2 <- t.s_c2 + 1
    | Divert -> ());
    t.s_diversions <- t.s_diversions + 1;
    Cost.bank_ref t.cost;
    Cost.add_cycles t.cost t.cfg.divert_penalty_cycles;
    let lf = b.owner in
    assert (lf >= 0);
    b.data.(addr - lf) <- v;
    b.dirty.(addr - lf) <- true
  end

(* Raw window access for a prepaid compiled block: the caller has already
   checked residency with {!resident_len} (and nothing between the check
   and the accesses can change bank ownership), charged the bank
   references as a batch, and counted the metric — so these touch the
   shadow directly.  Identical data movement to {!read_local}/
   [write_local] on their bank-hit path, with the accounting hoisted. *)
let raw_read t ~lf ~index = t.banks.(bank_index t ~lf).data.(index)

let raw_write t ~lf ~index v =
  let b = t.banks.(bank_index t ~lf) in
  b.data.(index) <- Fpc_util.Bits.to_word v;
  b.dirty.(index) <- true

(* Words of [lf]'s resident shadow window, or -1 when no bank owns it:
   the residency guard for the raw accessors above. *)
let resident_len t ~lf =
  let bi = bank_index t ~lf in
  if bi < 0 then -1 else t.banks.(bi).shadow_len

let has_bank t ~lf = bank_index t ~lf >= 0

let bank_id t ~lf =
  let bi = bank_index t ~lf in
  if bi < 0 then None else Some bi

let shadow_words t ~lf =
  let bi = bank_index t ~lf in
  if bi < 0 then None else Some (Array.sub t.banks.(bi).data 0 t.banks.(bi).shadow_len)

let stats t =
  {
    xfers = t.s_xfers;
    overflows = t.s_overflows;
    underflows = t.s_underflows;
    words_written_back = t.s_written_back;
    words_loaded = t.s_loaded;
    flush_events = t.s_flush_events;
    flagged_flushes = t.s_flagged_flushes;
    diversions = t.s_diversions;
    c2_violations = t.s_c2;
  }

let check_coherence t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    Array.fold_left
      (fun acc b ->
        let* () = acc in
        let lf = b.owner in
        if lf >= 0 && bank_index t ~lf <> b.id then
          Error
            (Printf.sprintf "bank %d owns frame %d but lookup finds bank %d" b.id lf
               (bank_index t ~lf))
        else Ok ())
      (Ok ()) t.banks
  in
  if t.stack_bank >= 0 && t.banks.(t.stack_bank).owner <> owner_stack then
    Error (Printf.sprintf "stack bank %d has non-stack owner" t.stack_bank)
  else Ok ()
