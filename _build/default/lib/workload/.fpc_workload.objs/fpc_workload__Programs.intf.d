lib/workload/programs.mli:
