lib/experiments/e09_bank_vs_cache.ml: Cache Cost Exp Fpc_core Fpc_machine Fpc_mesa Fpc_util Fpc_workload Harness List Printf Queue Tablefmt
