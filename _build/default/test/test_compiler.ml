(* Source-level end-to-end tests: parse -> check -> lower -> codegen ->
   link -> run, under every engine. *)

let fib_src =
  {|
MODULE Main;
PROC fib(n: INT): INT =
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROC main() =
  OUTPUT fib(12);
END;
END;
|}

let cross_module_src =
  {|
MODULE Math;
VAR calls: INT := 0;
PROC square(x: INT): INT =
  calls := calls + 1;
  RETURN x * x;
END;
PROC count(): INT =
  RETURN calls;
END;
END;

MODULE Main;
IMPORT Math;
PROC main() =
  OUTPUT Math.square(7);
  OUTPUT Math.square(3);
  OUTPUT Math.count();
END;
END;
|}

let var_param_src =
  {|
MODULE Main;
PROC bump(VAR x: INT, by: INT) =
  x := x + by;
END;
PROC main() =
  VAR v: INT := 10;
  bump(v, 5);
  bump(v, 1);
  OUTPUT v;
END;
END;
|}

let coroutine_src =
  {|
MODULE Main;
VAR co: CONTEXT;
PROC counter(start: INT) =
  VAR n: INT := start;
  VAR caller: CONTEXT := RETCTX;
  WHILE TRUE DO
    TRANSFER(caller, n);
    caller := RETCTX;
    n := n + 1;
  END;
END;
PROC main() =
  OUTPUT TRANSFER(@counter, 100);
  co := RETCTX;
  OUTPUT TRANSFER(co, 0);
  co := RETCTX;
  OUTPUT TRANSFER(co, 0);
END;
END;
|}

let process_src =
  {|
MODULE Main;
VAR done: INT := 0;
PROC worker(id: INT, n: INT) =
  VAR i: INT := 0;
  WHILE i < n DO
    OUTPUT id * 100 + i;
    i := i + 1;
    YIELD;
  END;
  done := done + 1;
END;
PROC main() =
  FORK worker(1, 2);
  FORK worker(2, 2);
  WHILE done < 2 DO
    YIELD;
  END;
  OUTPUT done;
END;
END;
|}

let nested_call_src =
  {|
MODULE Main;
PROC add(a: INT, b: INT): INT =
  RETURN a + b;
END;
PROC main() =
  OUTPUT add(add(1, 2), add(3, add(4, 5)));
END;
END;
|}

let engines =
  [
    ("I1", Fpc_core.Engine.i1);
    ("I2", Fpc_core.Engine.i2);
    ("I3", Fpc_core.Engine.i3 ());
    ("I4", Fpc_core.Engine.i4 ());
  ]

let run_ok ?(engine = Fpc_core.Engine.i2) src =
  match Fpc_compiler.Compile.run ~engine src with
  | Error msg -> Alcotest.fail msg
  | Ok o -> (
    match o.Fpc_interp.Interp.o_status with
    | Fpc_core.State.Halted -> o
    | Fpc_core.State.Running -> Alcotest.fail "still running"
    | Fpc_core.State.Trapped r ->
      Alcotest.fail ("trapped: " ^ Fpc_core.State.trap_reason_to_string r))

let check_output ~src ~expected () =
  List.iter
    (fun (name, engine) ->
      let o = run_ok ~engine src in
      Alcotest.(check (list int)) name expected o.o_output)
    engines

let test_linkage_variants () =
  (* The same source behaves identically under every linkage: §8's point
     that converting between representations only changes space/speed. *)
  List.iter
    (fun conv ->
      let image =
        match Fpc_compiler.Compile.image ~convention:conv cross_module_src with
        | Ok i -> i
        | Error m -> Alcotest.fail m
      in
      let engine = Fpc_core.Engine.i3 () in
      let st =
        Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
          ~args:[] ()
      in
      let o = Fpc_interp.Interp.outcome st in
      Alcotest.(check (list int)) "output" [ 49; 9; 2 ] o.o_output)
    [
      Fpc_compiler.Convention.external_;
      Fpc_compiler.Convention.direct;
      Fpc_compiler.Convention.short_direct;
    ]

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      match Fpc_lang.Parser.parse src with
      | Error m -> Alcotest.fail m
      | Ok prog -> (
        let printed = Fpc_lang.Pretty.program_to_string prog in
        match Fpc_lang.Parser.parse printed with
        | Error m -> Alcotest.fail ("reparse: " ^ m)
        | Ok prog' ->
          Alcotest.(check bool) "round trip" true (prog = prog')))
    [ fib_src; cross_module_src; var_param_src; coroutine_src; process_src ]

let test_type_errors () =
  let cases =
    [
      ("MODULE M; PROC f() = RETURN 1; END; END;", "returns no value");
      ("MODULE M; PROC f() = x := 1; END; END;", "unknown variable");
      ("MODULE M; PROC f() = OUTPUT g(); END; END;", "no procedure");
      ( "MODULE M; PROC f(VAR x: INT) = END; PROC g() = f(3); END; END;",
        "needs a variable" );
      ("MODULE M; PROC f() = IF 3 THEN END; END; END;", "IF condition");
    ]
  in
  List.iter
    (fun (src, _fragment) ->
      match Fpc_compiler.Compile.front_end src with
      | Ok _ -> Alcotest.fail ("should not typecheck: " ^ src)
      | Error _ -> ())
    cases

(* ------------------------------------------------------------------ *)
(* Differential testing: random programs evaluated by an OCaml reference
   interpreter with the machine's 16-bit semantics, compared against the
   compiled program running under I2 and I4.  This is the broad-spectrum
   check that the whole pipeline — parser, typechecker, lowering, codegen,
   linker, transfer engines — computes the right answers. *)

let word v = v land 0xFFFF
let signed v = if v land 0x8000 <> 0 then v - 65536 else v

type rexpr =
  | RLit of int
  | RVar of int
  | RBin of [ `Add | `Sub | `Mul | `Div of int | `Mod of int ] * rexpr * rexpr

type rstmt =
  | RAssign of int * rexpr
  | ROutput of rexpr
  | RIf of [ `Lt | `Eq ] * rexpr * rexpr * rstmt list * rstmt list

let nvars = 4

let rec gen_expr rng depth =
  let open Fpc_util.Prng in
  if depth = 0 || chance rng ~p:0.4 then
    if bool rng then RLit (int rng ~bound:200) else RVar (int rng ~bound:nvars)
  else
    let op =
      match int rng ~bound:5 with
      | 0 -> `Add
      | 1 -> `Sub
      | 2 -> `Mul
      | 3 -> `Div (1 + int rng ~bound:9)
      | _ -> `Mod (1 + int rng ~bound:9)
    in
    RBin (op, gen_expr rng (depth - 1), gen_expr rng (depth - 1))

let rec gen_stmt rng depth =
  let open Fpc_util.Prng in
  match int rng ~bound:(if depth = 0 then 2 else 3) with
  | 0 -> RAssign (int rng ~bound:nvars, gen_expr rng 3)
  | 1 -> ROutput (gen_expr rng 3)
  | _ ->
    let cmp = if bool rng then `Lt else `Eq in
    RIf
      ( cmp,
        gen_expr rng 2,
        gen_expr rng 2,
        [ gen_stmt rng (depth - 1) ],
        [ gen_stmt rng (depth - 1) ] )

let gen_program seed =
  let rng = Fpc_util.Prng.create ~seed in
  let inits = Array.init nvars (fun _ -> Fpc_util.Prng.int rng ~bound:100) in
  let n = 4 + Fpc_util.Prng.int rng ~bound:8 in
  (inits, List.init n (fun _ -> gen_stmt rng 2))

(* Reference evaluation with the machine's wrap-around semantics. *)
let rec eval_expr env = function
  | RLit v -> word v
  | RVar i -> env.(i)
  | RBin (op, a, b) -> (
    let x = signed (eval_expr env a) and y = signed (eval_expr env b) in
    match op with
    | `Add -> word (x + y)
    | `Sub -> word (x - y)
    | `Mul -> word (x * y)
    | `Div d -> word (x / d)
    | `Mod d -> word (x mod d))

let rec eval_stmt env out = function
  | RAssign (i, e) -> env.(i) <- eval_expr env e
  | ROutput e -> out := eval_expr env e :: !out
  | RIf (cmp, a, b, then_, else_) ->
    let x = signed (eval_expr env a) and y = signed (eval_expr env b) in
    let taken = match cmp with `Lt -> x < y | `Eq -> x = y in
    List.iter (eval_stmt env out) (if taken then then_ else else_)

let reference (inits, stmts) =
  let env = Array.copy inits in
  let out = ref [] in
  List.iter (eval_stmt env out) stmts;
  List.rev !out

(* Render to mini-Mesa.  Division needs care: the machine divides signed
   values, matching the reference, and divisors are non-zero literals. *)
let rec render_expr = function
  | RLit v -> string_of_int v
  | RVar i -> Printf.sprintf "x%d" i
  | RBin (op, a, b) ->
    let sym, rhs =
      match op with
      | `Add -> ("+", render_expr b)
      | `Sub -> ("-", render_expr b)
      | `Mul -> ("*", render_expr b)
      | `Div d -> ("/", string_of_int d)
      | `Mod d -> ("MOD", string_of_int d)
    in
    (* Div/Mod ignore the generated right operand in favour of the literal
       divisor, mirroring the reference evaluator. *)
    Printf.sprintf "(%s %s %s)" (render_expr a) sym rhs

let rec render_stmt buf indent = function
  | RAssign (i, e) ->
    Buffer.add_string buf (Printf.sprintf "%sx%d := %s;\n" indent i (render_expr e))
  | ROutput e ->
    Buffer.add_string buf (Printf.sprintf "%sOUTPUT %s;\n" indent (render_expr e))
  | RIf (cmp, a, b, then_, else_) ->
    let sym = match cmp with `Lt -> "<" | `Eq -> "=" in
    Buffer.add_string buf
      (Printf.sprintf "%sIF %s %s %s THEN\n" indent (render_expr a) sym (render_expr b));
    List.iter (render_stmt buf (indent ^ "  ")) then_;
    Buffer.add_string buf (indent ^ "ELSE\n");
    List.iter (render_stmt buf (indent ^ "  ")) else_;
    Buffer.add_string buf (indent ^ "END;\n")

let render_program (inits, stmts) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "MODULE Main;\nPROC main() =\n";
  Array.iteri
    (fun i v -> Buffer.add_string buf (Printf.sprintf "  VAR x%d: INT := %d;\n" i v))
    inits;
  List.iter (render_stmt buf "  ") stmts;
  Buffer.add_string buf "END;\nEND;\n";
  Buffer.contents buf

let prop_random_programs_match_reference =
  QCheck.Test.make ~count:150 ~name:"random programs: machine = reference, all engines"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = gen_program seed in
      let expected = reference prog in
      let src = render_program prog in
      List.for_all
        (fun (_, engine) ->
          match Fpc_compiler.Compile.run ~engine src with
          | Error m -> QCheck.Test.fail_report (m ^ "\n" ^ src)
          | Ok o -> (
            match o.Fpc_interp.Interp.o_status with
            | Fpc_core.State.Halted ->
              if o.o_output <> expected then
                QCheck.Test.fail_report
                  (Printf.sprintf "mismatch on:\n%s\nexpected %s got %s" src
                     (String.concat "," (List.map string_of_int expected))
                     (String.concat "," (List.map string_of_int o.o_output)))
              else true
            | Fpc_core.State.Running -> QCheck.Test.fail_report "still running"
            | Fpc_core.State.Trapped r ->
              QCheck.Test.fail_report
                (Fpc_core.State.trap_reason_to_string r ^ "\n" ^ src)))
        engines)





(* ------------------------------------------------------------------ *)
(* Second differential generator: random acyclic call graphs.  Procedure
   p_i may call p_j only for j > i, so programs terminate; calls appear
   nested inside expressions, exercising the lowering pass, prologue
   conventions, frame allocation and every engine's transfer machinery. *)

type cexpr =
  | CLit of int
  | CVar of int  (** 0,1 = params; 2,3 = locals *)
  | CBin of [ `Add | `Sub | `Mul ] * cexpr * cexpr
  | CCall of int * cexpr * cexpr  (** callee index, two arguments *)

type cstmt = CAssign of int * cexpr | COut of cexpr

type cproc = { cp_body : cstmt list; cp_ret : cexpr }

type cprog = { procs : cproc array; main_body : cstmt list }

let gen_cexpr rng ~self ~nprocs depth =
  let open Fpc_util.Prng in
  let rec go depth =
    if depth = 0 then
      if bool rng then CLit (int rng ~bound:50) else CVar (int rng ~bound:4)
    else
      match int rng ~bound:5 with
      | 0 | 1 ->
        let op = match int rng ~bound:3 with 0 -> `Add | 1 -> `Sub | _ -> `Mul in
        CBin (op, go (depth - 1), go (depth - 1))
      | 2 when self + 1 < nprocs ->
        CCall (self + 1 + int rng ~bound:(nprocs - self - 1), go (depth - 1), go (depth - 1))
      | _ ->
        if bool rng then CLit (int rng ~bound:50) else CVar (int rng ~bound:4)
  in
  go depth

let gen_cprog seed =
  let open Fpc_util.Prng in
  let rng = create ~seed in
  let nprocs = 3 in
  let gen_body ~self =
    List.init
      (1 + int rng ~bound:3)
      (fun _ ->
        if chance rng ~p:0.5 then
          CAssign (2 + int rng ~bound:2, gen_cexpr rng ~self ~nprocs 2)
        else COut (gen_cexpr rng ~self ~nprocs 2))
  in
  {
    procs =
      Array.init nprocs (fun self ->
          { cp_body = gen_body ~self; cp_ret = gen_cexpr rng ~self ~nprocs 2 });
    main_body =
      List.init
        (2 + int rng ~bound:3)
        (fun _ -> COut (gen_cexpr rng ~self:(-1) ~nprocs 2));
  }

let rec ceval prog env out (e : cexpr) =
  match e with
  | CLit v -> word v
  | CVar i -> env.(i)
  | CBin (op, a, b) -> (
    (* Left to right, exactly like the generated code. *)
    let x = signed (ceval prog env out a) in
    let y = signed (ceval prog env out b) in
    match op with `Add -> word (x + y) | `Sub -> word (x - y) | `Mul -> word (x * y))
  | CCall (j, a, b) ->
    (* Argument order matters: left to right, like the machine. *)
    let x = ceval prog env out a in
    let y = ceval prog env out b in
    let p = prog.procs.(j) in
    let env' = [| x; y; 0; 0 |] in
    List.iter
      (fun s ->
        match s with
        | CAssign (i, e) -> env'.(i) <- ceval prog env' out e
        | COut e ->
          (* Bind first: the cons cell must see the inner outputs the
             evaluation itself appends. *)
          let v = ceval prog env' out e in
          out := v :: !out)
      p.cp_body;
    ceval prog env' out p.cp_ret

let creference prog =
  let out = ref [] in
  let env = [| 0; 0; 0; 0 |] in
  List.iter
    (fun s ->
      match s with
      | CAssign _ -> ()
      | COut e ->
        let v = ceval prog env out e in
        out := v :: !out)
    prog.main_body;
  List.rev !out

let rec render_cexpr = function
  | CLit v -> string_of_int v
  | CVar 0 -> "a"
  | CVar 1 -> "b"
  | CVar i -> Printf.sprintf "v%d" i
  | CBin (op, x, y) ->
    let sym = match op with `Add -> "+" | `Sub -> "-" | `Mul -> "*" in
    Printf.sprintf "(%s %s %s)" (render_cexpr x) sym (render_cexpr y)
  | CCall (j, x, y) ->
    Printf.sprintf "p%d(%s, %s)" j (render_cexpr x) (render_cexpr y)

let render_cstmt buf = function
  | CAssign (i, e) ->
    Buffer.add_string buf (Printf.sprintf "  v%d := %s;\n" i (render_cexpr e))
  | COut e -> Buffer.add_string buf (Printf.sprintf "  OUTPUT %s;\n" (render_cexpr e))

let render_cprog prog =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "MODULE Main;\n";
  (* Declare in reverse so calls are forward references?  Mini-Mesa allows
     any order within a module, so declaration order is free. *)
  Array.iteri
    (fun i p ->
      Buffer.add_string buf (Printf.sprintf "PROC p%d(a: INT, b: INT): INT =\n" i);
      Buffer.add_string buf "  VAR v2: INT := 0;\n  VAR v3: INT := 0;\n";
      List.iter (render_cstmt buf) p.cp_body;
      Buffer.add_string buf (Printf.sprintf "  RETURN %s;\nEND;\n" (render_cexpr p.cp_ret)))
    prog.procs;
  Buffer.add_string buf "PROC main() =\n";
  List.iter
    (fun s ->
      match s with
      | CAssign _ -> ()
      | COut e -> Buffer.add_string buf (Printf.sprintf "  OUTPUT %s;\n" (render_cexpr e)))
    prog.main_body;
  Buffer.add_string buf "END;\nEND;\n";
  Buffer.contents buf

(* In main, CVar references are undefined; replace them by literals during
   generation instead: regenerate with self = -1 ensures no params...  but
   CVar can still appear.  Guard: rewrite main-body vars to literals. *)
let rec devar = function
  | CVar _ -> CLit 1
  | CLit v -> CLit v
  | CBin (op, a, b) -> CBin (op, devar a, devar b)
  | CCall (j, a, b) -> CCall (j, devar a, devar b)

let sanitize prog =
  {
    prog with
    main_body =
      List.map
        (function COut e -> COut (devar e) | CAssign (i, e) -> CAssign (i, devar e))
        prog.main_body;
  }

let prop_random_call_graphs_match_reference =
  QCheck.Test.make ~count:120 ~name:"random call graphs: machine = reference, all engines"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = sanitize (gen_cprog seed) in
      let expected = creference prog in
      let src = render_cprog prog in
      List.for_all
        (fun (_, engine) ->
          match Fpc_compiler.Compile.run ~engine src with
          | Error m -> QCheck.Test.fail_report (m ^ "\n" ^ src)
          | Ok o -> (
            match o.Fpc_interp.Interp.o_status with
            | Fpc_core.State.Halted ->
              if o.o_output <> expected then
                QCheck.Test.fail_report
                  (Printf.sprintf "mismatch on:\n%s\nexpected %s got %s" src
                     (String.concat "," (List.map string_of_int expected))
                     (String.concat "," (List.map string_of_int o.o_output)))
              else true
            | Fpc_core.State.Running -> QCheck.Test.fail_report "still running"
            | Fpc_core.State.Trapped r ->
              QCheck.Test.fail_report
                (Fpc_core.State.trap_reason_to_string r ^ "\n" ^ src)))
        engines)


(* Cost-ordering invariant: on pure call/return programs the optimized
   engines never lose to their less-optimized bases (small slack for
   boot-time noise on tiny programs). *)
let prop_cost_ordering =
  QCheck.Test.make ~count:60 ~name:"random call graphs: I4 <= I3 <= I2 cycles"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = render_cprog (sanitize (gen_cprog seed)) in
      let cycles engine =
        match Fpc_compiler.Compile.run ~engine src with
        | Ok o when o.Fpc_interp.Interp.o_status = Fpc_core.State.Halted ->
          o.o_cycles
        | _ -> QCheck.Test.fail_report ("bad run\n" ^ src)
      in
      let i2 = cycles Fpc_core.Engine.i2 in
      let i3 = cycles (Fpc_core.Engine.i3 ()) in
      let i4 = cycles (Fpc_core.Engine.i4 ()) in
      let leq a b = float_of_int a <= (1.05 *. float_of_int b) +. 50.0 in
      if not (leq i3 i2) then
        QCheck.Test.fail_report (Printf.sprintf "I3 %d > I2 %d\n%s" i3 i2 src)
      else if not (leq i4 i3) then
        QCheck.Test.fail_report (Printf.sprintf "I4 %d > I3 %d\n%s" i4 i3 src)
      else true)

(* Lowering is idempotent: once the stack discipline holds, re-lowering
   changes nothing. *)
let prop_lowering_idempotent =
  QCheck.Test.make ~count:100 ~name:"lowering: idempotent"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = render_cprog (sanitize (gen_cprog seed)) in
      match Fpc_lang.Parser.parse src with
      | Error m -> QCheck.Test.fail_report m
      | Ok prog ->
        let once = Fpc_compiler.Lower.program prog in
        let twice = Fpc_compiler.Lower.program once in
        once = twice)

let () =
  Alcotest.run "compiler"
    [
      ( "programs",
        [
          Alcotest.test_case "fib 12 on all engines" `Quick
            (check_output ~src:fib_src ~expected:[ 144 ]);
          Alcotest.test_case "cross-module state" `Quick
            (check_output ~src:cross_module_src ~expected:[ 49; 9; 2 ]);
          Alcotest.test_case "var params" `Quick
            (check_output ~src:var_param_src ~expected:[ 16 ]);
          Alcotest.test_case "coroutines" `Quick
            (check_output ~src:coroutine_src ~expected:[ 100; 101; 102 ]);
          Alcotest.test_case "processes" `Quick
            (check_output ~src:process_src ~expected:[ 100; 200; 101; 201; 2 ]);
          Alcotest.test_case "nested calls hoisted" `Quick
            (check_output ~src:nested_call_src ~expected:[ 15 ]);
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "linkage variants agree" `Quick test_linkage_variants;
          Alcotest.test_case "pretty round trip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "type errors rejected" `Quick test_type_errors;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_random_programs_match_reference;
          QCheck_alcotest.to_alcotest prop_random_call_graphs_match_reference;
          QCheck_alcotest.to_alcotest prop_cost_ordering;
          QCheck_alcotest.to_alcotest prop_lowering_idempotent;
        ] );
    ]
