(** A closed-loop load generator for {!Server}, driving [bench net] and
    the CI serve-smoke step.

    [connections] client threads each open one TCP connection and play
    the same request line [requests] times, synchronously: send, block
    for the response, record the round-trip.  Closed-loop means offered
    load tracks service rate — the numbers measure the server, not a
    queue exploding in the generator. *)

type report = {
  connections : int;
  sent : int;
  answered : int;  (** responses received (any status) *)
  ok : int;  (** [status:"ok"] results *)
  failed : int;  (** job results with a non-ok status *)
  shed : int;  (** [status:"shed"] refusals *)
  wall_s : float;
  jobs_per_sec : float;  (** answered / wall_s *)
  latency_us : Fpc_util.Histogram.t;
      (** per-request round-trip times, microseconds *)
}

val run :
  host:string ->
  port:int ->
  connections:int ->
  requests:int ->
  request_line:string ->
  unit ->
  report
(** Raises [Unix.Unix_error] if the server cannot be reached at all; a
    connection dying mid-run just stops that thread's remaining
    requests. *)
