lib/util/histogram.mli:
