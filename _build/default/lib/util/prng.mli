(** Deterministic pseudo-random number generation (splitmix64).

    Every workload generator in the reproduction draws from this PRNG so
    experiment tables are bit-for-bit reproducible across runs.  The state
    is explicit; there is no hidden global. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** A fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** An independent generator with the same current state. *)

val next : t -> int
(** The next raw value, a non-negative 62-bit integer. *)

val int : t -> bound:int -> int
(** Uniform integer in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** A fair coin. *)

val chance : t -> p:float -> bool
(** True with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** Choice from a non-empty list of (weight, value) pairs, with probability
    proportional to weight.  Weights must be non-negative and not all zero. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p]) trial;
    mean [(1-p)/p].  Requires [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
