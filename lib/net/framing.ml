type item = Line of string | Overlong of int | Eof

let default_max_line = 65536

(* Push-mode input staging: bytes arrive via [feed], are consumed by the
   codec's [read], and [closed] latches once the producer says so. *)
type push = {
  pending : Buffer.t;
  mutable pq_off : int;  (** consumed prefix of [pending] *)
  mutable closed : bool;
}

type t = {
  read : bytes -> int -> int -> int;
  max_line : int;
  line : Buffer.t;  (** the partial line being assembled *)
  chunk : Bytes.t;
  mutable pos : int;  (** next unconsumed byte in [chunk] *)
  mutable len : int;  (** valid bytes in [chunk] *)
  mutable discarding : int;  (** >0: inside an overlong line; bytes dropped *)
  mutable eof : bool;
  push : push option;  (** [Some _] iff built by {!pushable} *)
}

let make ?(max_line = default_max_line) ~read ~push () =
  if max_line < 1 then invalid_arg "Framing.create: max_line must be positive";
  {
    read;
    max_line;
    line = Buffer.create 256;
    chunk = Bytes.create 8192;
    pos = 0;
    len = 0;
    discarding = 0;
    eof = false;
    push;
  }

let create ?max_line ~read () = make ?max_line ~read ~push:None ()

let of_fd ?max_line fd =
  let read buf pos len =
    let rec go () =
      match Unix.read fd buf pos len with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
        0
    in
    go ()
  in
  create ?max_line ~read ()

let of_string ?max_line s =
  let cursor = ref 0 in
  let read buf pos _len =
    if !cursor >= String.length s then 0
    else begin
      Bytes.set buf pos s.[!cursor];
      incr cursor;
      1
    end
  in
  create ?max_line ~read ()

let pushable ?max_line () =
  let p = { pending = Buffer.create 1024; pq_off = 0; closed = false } in
  let read buf pos len =
    let avail = Buffer.length p.pending - p.pq_off in
    if avail = 0 then begin
      (* fully drained: reclaim the buffer before the next burst *)
      if Buffer.length p.pending > 0 then begin
        Buffer.clear p.pending;
        p.pq_off <- 0
      end;
      if p.closed then 0 else -1
    end
    else begin
      let n = min avail len in
      Buffer.blit p.pending p.pq_off buf pos n;
      p.pq_off <- p.pq_off + n;
      n
    end
  in
  make ?max_line ~read ~push:(Some p) ()

let feed t s off len =
  match t.push with
  | None -> invalid_arg "Framing.feed: not a push-mode framing"
  | Some p ->
    if p.closed then invalid_arg "Framing.feed: input already closed";
    Buffer.add_substring p.pending s off len

let input_closed t =
  match t.push with
  | None -> invalid_arg "Framing.input_closed: not a push-mode framing"
  | Some p -> p.closed <- true

let max_line t = t.max_line

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* [read] returning a negative count means "no bytes right now" — the
   push-mode would-block signal.  It must NOT latch [eof]. *)
let refill t =
  if t.eof then 0
  else begin
    let n = t.read t.chunk 0 (Bytes.length t.chunk) in
    if n >= 0 then begin
      t.pos <- 0;
      t.len <- n;
      if n = 0 then t.eof <- true
    end;
    n
  end

let rec poll t =
  if t.pos >= t.len then begin
    if refill t < 0 then None
    else if t.eof then
      (* Flush whatever the truncated stream left behind. *)
      if t.discarding > 0 then begin
        let n = t.discarding in
        t.discarding <- 0;
        Some (Overlong n)
      end
      else if Buffer.length t.line > 0 then begin
        let s = strip_cr (Buffer.contents t.line) in
        Buffer.clear t.line;
        Some (Line s)
      end
      else Some Eof
    else poll t
  end
  else begin
    let nl = Bytes.index_from_opt t.chunk t.pos '\n' in
    let stop =
      match nl with Some i when i < t.len -> i | Some _ | None -> t.len
    in
    let found = match nl with Some i -> i < t.len | None -> false in
    let avail = stop - t.pos in
    if t.discarding > 0 then begin
      t.discarding <- t.discarding + avail;
      t.pos <- stop + if found then 1 else 0;
      if found then begin
        let n = t.discarding in
        t.discarding <- 0;
        Some (Overlong n)
      end
      else poll t
    end
    else begin
      Buffer.add_subbytes t.line t.chunk t.pos avail;
      t.pos <- stop + if found then 1 else 0;
      if Buffer.length t.line > t.max_line then begin
        (* Over the limit: dump the assembled prefix and discard to the
           next newline (which may already be in hand). *)
        t.discarding <- Buffer.length t.line;
        Buffer.clear t.line;
        if found then begin
          let n = t.discarding in
          t.discarding <- 0;
          Some (Overlong n)
        end
        else poll t
      end
      else if found then begin
        let s = strip_cr (Buffer.contents t.line) in
        Buffer.clear t.line;
        Some (Line s)
      end
      else poll t
    end
  end

let next t =
  match poll t with
  | Some item -> item
  | None ->
    (* only a push-mode [read] can would-block; blocking pull is misuse *)
    invalid_arg "Framing.next: push-mode framing needs poll"
