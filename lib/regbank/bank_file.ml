open Fpc_machine

type pointer_policy = Flush_flagged | Divert

type config = {
  bank_count : int;
  bank_words : int;
  track_dirty : bool;
  pointer_policy : pointer_policy;
  divert_penalty_cycles : int;
}

let default_config =
  {
    bank_count = 4;
    bank_words = 16;
    track_dirty = true;
    pointer_policy = Flush_flagged;
    divert_penalty_cycles = 4;
  }

type owner = Free | Stack | Local of int

type bank = {
  id : int;
  data : int array;
  dirty : bool array;
  mutable owner : owner;
  mutable shadow_len : int;
  mutable age : int;
}

type stats = {
  xfers : int;
  overflows : int;
  underflows : int;
  words_written_back : int;
  words_loaded : int;
  flush_events : int;
  flagged_flushes : int;
  diversions : int;
  c2_violations : int;
}

type t = {
  cfg : config;
  mem : Memory.t;
  cost : Cost.t;
  ladder : Fpc_frames.Size_class.t;
  banks : bank array;
  by_frame : (int, int) Hashtbl.t;
  flagged : (int, unit) Hashtbl.t;
  mutable stack_bank : int option;
  mutable clock : int;
  mutable s_xfers : int;
  mutable s_overflows : int;
  mutable s_underflows : int;
  mutable s_written_back : int;
  mutable s_loaded : int;
  mutable s_flush_events : int;
  mutable s_flagged_flushes : int;
  mutable s_diversions : int;
  mutable s_c2 : int;
  mutable on_event : (Fpc_trace.Event.kind -> unit) option;
}

let create ?(config = default_config) ~mem ~cost ~ladder () =
  if config.bank_count <= 0 || config.bank_words <= 0 then
    invalid_arg "Bank_file.create: bad configuration";
  {
    cfg = config;
    mem;
    cost;
    ladder;
    banks =
      Array.init config.bank_count (fun id ->
          {
            id;
            data = Array.make config.bank_words 0;
            dirty = Array.make config.bank_words false;
            owner = Free;
            shadow_len = 0;
            age = 0;
          });
    by_frame = Hashtbl.create 16;
    flagged = Hashtbl.create 16;
    stack_bank = None;
    clock = 0;
    s_xfers = 0;
    s_overflows = 0;
    s_underflows = 0;
    s_written_back = 0;
    s_loaded = 0;
    s_flush_events = 0;
    s_flagged_flushes = 0;
    s_diversions = 0;
    s_c2 = 0;
    on_event = None;
  }

let config t = t.cfg
let set_on_event t f = t.on_event <- f
let fire t k = match t.on_event with Some f -> f k | None -> ()

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Write a bank's shadow back to its frame.  Dirty tracking lets the
   machine skip registers that were never written (§7.1). *)
let write_back t bank =
  match bank.owner with
  | Local lf ->
    let n = ref 0 in
    for i = 0 to bank.shadow_len - 1 do
      if (not t.cfg.track_dirty) || bank.dirty.(i) then begin
        Memory.write t.mem (lf + i) bank.data.(i);
        t.s_written_back <- t.s_written_back + 1;
        incr n
      end
    done;
    if !n > 0 then fire t (Fpc_trace.Event.Bank_spill !n)
  | Free | Stack -> ()

let detach t bank =
  (match bank.owner with
  | Local lf -> Hashtbl.remove t.by_frame lf
  | Stack -> if t.stack_bank = Some bank.id then t.stack_bank <- None
  | Free -> ());
  bank.owner <- Free;
  bank.shadow_len <- 0;
  Array.fill bank.dirty 0 (Array.length bank.dirty) false

(* Find a bank to use: a free one, else evict the oldest local bank.  The
   current stack bank is never a victim.  Raises if every bank is the
   stack bank (bank_count = 0 is rejected at create). *)
let acquire t =
  let free = Array.fold_left (fun acc b -> match acc with
      | Some _ -> acc
      | None -> if b.owner = Free then Some b else None) None t.banks
  in
  match free with
  | Some b ->
    b.age <- tick t;
    b
  | None ->
    let victim =
      Array.fold_left
        (fun acc b ->
          match b.owner with
          | Local _ -> (
            match acc with
            | Some v when v.age <= b.age -> acc
            | _ -> Some b)
          | Stack | Free -> acc)
        None t.banks
    in
    (match victim with
    | None -> invalid_arg "Bank_file.acquire: no evictable bank"
    | Some b ->
      t.s_overflows <- t.s_overflows + 1;
      write_back t b;
      detach t b;
      b.age <- tick t;
      b)

let shadow_len_for t ~payload_words = min t.cfg.bank_words payload_words

let bank_of t ~lf =
  match Hashtbl.find_opt t.by_frame lf with
  | Some id -> Some t.banks.(id)
  | None -> None

let assign t bank ~lf ~payload_words =
  bank.owner <- Local lf;
  bank.shadow_len <- shadow_len_for t ~payload_words;
  Array.fill bank.dirty 0 (Array.length bank.dirty) false;
  Hashtbl.replace t.by_frame lf bank.id;
  bank.age <- tick t

let on_call t ~callee_lf ~payload_words ~args =
  t.s_xfers <- t.s_xfers + 1;
  (* Rename the stack bank (or a fresh one if no stack bank exists, e.g.
     right after a flush) into the callee's local bank. *)
  let bank =
    match t.stack_bank with
    | Some id ->
      let b = t.banks.(id) in
      t.stack_bank <- None;
      b.age <- tick t;
      b
    | None -> acquire t
  in
  assign t bank ~lf:callee_lf ~payload_words;
  Array.iteri
    (fun i v ->
      if i < bank.shadow_len then begin
        bank.data.(i) <- v;
        bank.dirty.(i) <- true
      end
      else
        (* The argument record overflows the bank window: the excess words
           go straight to the frame in storage. *)
        Memory.write t.mem (callee_lf + i) v)
    args;
  (* A fresh stack bank for the callee's expression evaluation. *)
  let sb = acquire t in
  sb.owner <- Stack;
  sb.shadow_len <- 0;
  t.stack_bank <- Some sb.id

let load_bank t bank ~lf =
  for i = 0 to bank.shadow_len - 1 do
    bank.data.(i) <- Memory.read t.mem (lf + i);
    bank.dirty.(i) <- false;
    t.s_loaded <- t.s_loaded + 1
  done;
  if bank.shadow_len > 0 then fire t (Fpc_trace.Event.Bank_load bank.shadow_len)

let ensure_bank t ~lf =
  t.s_xfers <- t.s_xfers + 1;
  match bank_of t ~lf with
  | Some b -> b.age <- tick t
  | None ->
    t.s_underflows <- t.s_underflows + 1;
    (* The frame's payload size comes from its fsi word — one storage
       reference, part of the underflow cost. *)
    let fsi = Memory.read t.mem (lf + Fpc_frames.Frame.off_fsi) in
    let payload_words =
      Fpc_frames.Size_class.block_words t.ladder fsi - Fpc_frames.Frame.overhead_words
    in
    let b = acquire t in
    assign t b ~lf ~payload_words;
    load_bank t b ~lf

let release_frame t ~lf =
  (match bank_of t ~lf with
  | Some b -> detach t b
  | None -> ());
  Hashtbl.remove t.flagged lf

let flag_frame t ~lf = Hashtbl.replace t.flagged lf ()
let is_flagged t ~lf = Hashtbl.mem t.flagged lf

let on_leave t ~lf =
  match t.cfg.pointer_policy with
  | Divert -> ()
  | Flush_flagged -> (
    if is_flagged t ~lf then
      match bank_of t ~lf with
      | Some b ->
        t.s_flagged_flushes <- t.s_flagged_flushes + 1;
        write_back t b;
        detach t b
      | None -> ())

let flush_all t =
  t.s_flush_events <- t.s_flush_events + 1;
  Array.iter
    (fun b ->
      match b.owner with
      | Local _ ->
        write_back t b;
        detach t b
      | Stack -> detach t b
      | Free -> ())
    t.banks

let read_local t ~lf ~index =
  match bank_of t ~lf with
  | Some b when index < b.shadow_len ->
    Cost.bank_ref t.cost;
    b.data.(index)
  | Some _ | None -> Memory.read t.mem (lf + index)

let write_local t ~lf ~index v =
  let v = Fpc_util.Bits.to_word v in
  match bank_of t ~lf with
  | Some b when index < b.shadow_len ->
    Cost.bank_ref t.cost;
    b.data.(index) <- v;
    b.dirty.(index) <- true
  | Some _ | None -> Memory.write t.mem (lf + index) v

(* Locate the shadowed window containing [addr], if any.  With at most
   eight banks a linear scan is exactly the hardware comparator of §7.4. *)
let window_of t addr =
  let hit = ref None in
  Array.iter
    (fun b ->
      match b.owner with
      | Local lf when addr >= lf && addr < lf + b.shadow_len ->
        hit := Some (b, addr - lf)
      | Local _ | Stack | Free -> ())
    t.banks;
  !hit

let data_read t ~addr =
  match window_of t addr with
  | None -> Memory.read t.mem addr
  | Some (b, i) ->
    (match t.cfg.pointer_policy with
    | Flush_flagged -> t.s_c2 <- t.s_c2 + 1
    | Divert -> ());
    t.s_diversions <- t.s_diversions + 1;
    Cost.bank_ref t.cost;
    Cost.add_cycles t.cost t.cfg.divert_penalty_cycles;
    b.data.(i)

let data_write t ~addr v =
  let v = Fpc_util.Bits.to_word v in
  match window_of t addr with
  | None -> Memory.write t.mem addr v
  | Some (b, i) ->
    (match t.cfg.pointer_policy with
    | Flush_flagged -> t.s_c2 <- t.s_c2 + 1
    | Divert -> ());
    t.s_diversions <- t.s_diversions + 1;
    Cost.bank_ref t.cost;
    Cost.add_cycles t.cost t.cfg.divert_penalty_cycles;
    b.data.(i) <- v;
    b.dirty.(i) <- true

let has_bank t ~lf = Hashtbl.mem t.by_frame lf
let bank_id t ~lf = Hashtbl.find_opt t.by_frame lf

let shadow_words t ~lf =
  match bank_of t ~lf with
  | None -> None
  | Some b -> Some (Array.sub b.data 0 b.shadow_len)

let stats t =
  {
    xfers = t.s_xfers;
    overflows = t.s_overflows;
    underflows = t.s_underflows;
    words_written_back = t.s_written_back;
    words_loaded = t.s_loaded;
    flush_events = t.s_flush_events;
    flagged_flushes = t.s_flagged_flushes;
    diversions = t.s_diversions;
    c2_violations = t.s_c2;
  }

let check_coherence t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    Hashtbl.fold
      (fun lf id acc ->
        let* () = acc in
        match t.banks.(id).owner with
        | Local lf' when lf' = lf -> Ok ()
        | _ -> Error (Printf.sprintf "by_frame maps %d to bank %d with wrong owner" lf id))
      t.by_frame (Ok ())
  in
  let* () =
    Array.fold_left
      (fun acc b ->
        let* () = acc in
        match b.owner with
        | Local lf when Hashtbl.find_opt t.by_frame lf <> Some b.id ->
          Error (Printf.sprintf "bank %d owns frame %d but map disagrees" b.id lf)
        | _ -> Ok ())
      (Ok ()) t.banks
  in
  match t.stack_bank with
  | Some id when t.banks.(id).owner <> Stack ->
    Error (Printf.sprintf "stack bank %d has non-stack owner" id)
  | _ -> Ok ()
