lib/isa/opcode.mli: Buffer
