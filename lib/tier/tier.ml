open Fpc_machine
open Fpc_core
module Opcode = Fpc_isa.Opcode
module Predecode = Fpc_isa.Predecode
module Image = Fpc_mesa.Image
module Descriptor = Fpc_mesa.Descriptor
module Gft = Fpc_mesa.Gft
module Frame = Fpc_frames.Frame
module Alloc_vector = Fpc_frames.Alloc_vector
module Return_stack = Fpc_ifu.Return_stack
module Bank_file = Fpc_regbank.Bank_file
module Interp = Fpc_interp.Interp

let word = Fpc_util.Bits.to_word
let signed v = Fpc_util.Bits.signed_of_unsigned ~width:16 v

(* A node covers the straight-line block starting at its boundary: at
   most [block_cap] instructions, ending early at a terminator (anything
   that moves control) or at undecodable bytes.  Calls do {e not} end
   collection: a fused call returns to the next instruction, so the
   caller's continuation rides the same node (see the segment chain in
   [build_node]).  Every byte boundary gets its own node (suffix blocks
   overlap), so a fuel-sliced resume or a computed transfer always lands
   on compiled code. *)
let block_cap = 32

(* A known-leaf callee of at most this many body instructions may be
   spliced into its caller's node (cross-call fusion).  Lampson reports
   procedures averaging ~20 instructions; the cap sits just above that
   so a realistic straight-line leaf (argument-store prologue included)
   still qualifies, while staying under [block_cap]. *)
let leaf_cap = 24

let stop (_ : State.t) = ()

(* One translated boundary.  Count and closure travel in one immutable
   record so lazily published slots are read with a single load: a racing
   domain sees either the sentinel or a fully initialised node, never a
   count without its code. *)
type node = { n_count : int; n_exec : State.t -> unit }

let no_node = { n_count = 0; n_exec = stop }

(* A memoised leaf callee, kept in pieces rather than as one finished
   continuation: the RETURN shape depends on the {e call site} (a
   store-free leaf's return can bake the link words the call itself just
   wrote — see [spec_ret_baked]), so each site assembles its own
   continuation from the shared pieces. *)
type leaf = {
  lf_batch : int;  (** body + RETURN instruction count *)
  lf_need : int;  (** stack words required on entry *)
  lf_maxd : int;  (** peak extra depth of the body *)
  lf_run : State.t -> unit;  (** the charged body batch *)
  lf_ret_pc : int;  (** byte PC of the RETURN *)
  lf_p_end : int;  (** byte PC just past the RETURN *)
  lf_store_free : bool;  (** body contains no store of any kind *)
}

type t = {
  base : int;  (** first byte PC covered *)
  slots : node array;  (** per byte boundary; [no_node] = untranslated *)
  image : Image.t;  (** translate-time resolutions peek this store *)
  pd : Predecode.t;
  cbs : int array;
  proc_of : int array;  (** byte PC - base -> procedure id, or -1 *)
  ranges : (int * int) array;  (** proc id -> body [first_pc, limit_pc) *)
  translated : bool array;  (** per procedure, set under [lock] *)
  lock : Mutex.t;
  fuse_valid : bool ref;
      (** cleared when a relink overwrites a word some fused call site's
          baked resolution depends on; fused external calls check it *)
  deps_tbl : (int, int) Hashtbl.t;  (** addr -> baked word (under lock) *)
  seen_sites : (int, unit) Hashtbl.t;  (** call-site PCs already counted *)
  leaf_memo : (int, leaf option) Hashtbl.t;
      (** callee entry PC -> compiled leaf pieces (under lock): every
          suffix block containing a call site resolves the same leaf *)
  mutable deps : (int * int) array;
      (** published snapshot of [deps_tbl] for the relink observer *)
  mutable n_boundaries : int;
  mutable n_fused : int;
  mutable n_fused_calls : int;
  mutable n_translated : int;
  mutable n_invalidations : int;
}

(* ------------------------------------------------------------------ *)
(* Instruction classification.

   A terminator moves control (or always traps) and so ends a block; it
   may still execute inside the node, as its final instruction.  A pure
   instruction touches only the evaluation stack, variables and meters:
   it cannot raise a machine trap (the only exceptions it can produce
   are stack bounds — discharged by the block guard — and a storage
   [Invalid_argument], which aborts the whole job identically in both
   tiers), cannot move the PC and cannot change the status.  Pure
   instructions are the fusable ones: their per-instruction accounting
   can be batched and their stack traffic collapsed.  [Div]/[Mod]/
   [Newrec]/[Freerec] are excluded because they can trap mid-block, and
   a catchable trap suspends the current frame with the {e exact} PC of
   the next instruction — so they must run with per-instruction PC
   updates (an "exact chain"). *)

let is_terminator (op : Opcode.t) =
  match op with
  | J _ | Jz _ | Jnz _ | Efc _ | Lfc _ | Dfc _ | Sdfc _ | Xf | Ret | Fork _
  | Yield | Stopproc | Halt | Brk ->
    true
  | _ -> false

(* Calls are terminators (they move control), but distinguished ones:
   when the callee splices, control is known to come straight back to the
   next instruction, so block collection continues through them and the
   node chains into the caller's continuation. *)
let is_call (op : Opcode.t) =
  match op with Lfc _ | Efc _ | Dfc _ | Sdfc _ -> true | _ -> false

let is_pure (op : Opcode.t) =
  match op with
  | Li _ | Lpd _ | Ll _ | Sl _ | Lg _ | Sg _ | Lla _ | Lga _ | Llx _ | Slx _
  | Lgx _ | Sgx _ | Rload | Rstore | Ldfld _ | Stfld _ | Dup | Drop | Swap
  | Over | Add | Sub | Mul | Neg | Band | Bor | Bxor | Bnot | Lt | Le | Eq
  | Ne | Ge | Gt | Lrc | Out | Nop ->
    true
  | _ -> false

(* Terminators that are still fusable inline: they end the block but
   need no transfer machinery, so they can be the last instruction of a
   fully fused fast path. *)
let is_fused_terminator (op : Opcode.t) =
  match op with J _ | Jz _ | Jnz _ | Halt -> true | _ -> false

(* Stack-depth effect of a fusable instruction: [(need, delta)] — words
   that must be on the stack before it, and its net depth change.  For
   every fusable instruction the transient depth during execution never
   exceeds the boundary depths (pops precede pushes, except the pushes
   of [Dup]/[Over] whose result depth {e is} the maximum), so checking
   boundary depths once per block is a sound guard for a whole run of
   unchecked pushes and pops. *)
let depth_effect (op : Opcode.t) =
  match op with
  | Li _ | Lpd _ | Ll _ | Lg _ | Lla _ | Lga _ | Lrc -> (0, 1)
  | Sl _ | Sg _ | Drop | Out | Jz _ | Jnz _ -> (1, -1)
  | Llx _ | Lgx _ | Rload | Ldfld _ | Neg | Bnot -> (1, 0)
  | Slx _ | Sgx _ | Rstore -> (2, -2)
  | Stfld _ -> (2, -1)
  | Dup -> (1, 1)
  | Swap -> (2, 0)
  | Over -> (2, 1)
  | Add | Sub | Mul | Band | Bor | Bxor | Lt | Le | Eq | Ne | Ge | Gt -> (2, -1)
  | Nop | J _ | Halt -> (0, 0)
  | _ -> invalid_arg "Tier.depth_effect: not fusable"

let guard_params ops =
  let need = ref 0 and maxd = ref 0 and d = ref 0 in
  List.iter
    (fun (_, op, _) ->
      let n, delta = depth_effect op in
      if n - !d > !need then need := n - !d;
      d := !d + delta;
      if !d > !maxd then maxd := !d)
    ops;
  (!need, !maxd)

(* ------------------------------------------------------------------ *)
(* Static accounting for a prepaid block.

   A fusable run's storage traffic splits into two kinds.  Ops with
   {e static} addresses (LL/SL/LG/SG at fixed frame offsets) have their
   whole bill — storage references, local/global ref counters — computable
   at translate time; when the block's runtime guard holds (no data
   trace, no register banks shadowing the touched frame, every static
   address in range) the bill is charged in one batch and the ops touch
   the store raw.  Ops with {e dynamic} addresses (indexed, indirect)
   still have a {e static} bill — one reference, one local/global/indirect
   counter tick — with only the address unknown; they join the batch too,
   going through the unmetered {!Memory.peek}/{!poke}, whose bounds check
   aborts exactly like the metered access (which charges before
   checking, so the prepaid batch matches even on the abort path). *)

type acct = {
  a_reads : int;
  a_writes : int;
  a_g_reads : int;  (** the global-frame share of [a_reads] *)
  a_g_writes : int;  (** the global-frame share of [a_writes] *)
  a_lrefs : int;
  a_grefs : int;
  a_irefs : int;
  a_max_l : int;  (** highest static local offset dereferenced; -1 none *)
  a_max_g : int;  (** highest static global offset dereferenced; -1 none *)
  a_no_banks : bool;
      (** block touches locals or data space raw: banks must be absent *)
  a_bankable : bool;
      (** local traffic is entirely static Ll/Sl: under banks, a resident
          shadow window covering [a_max_l] admits the prepaid bank plane
          (dynamic local offsets, indirect refs and LLA disqualify) *)
}

let acct_of ops =
  let reads = ref 0
  and writes = ref 0
  and g_reads = ref 0
  and g_writes = ref 0
  and lrefs = ref 0
  and grefs = ref 0
  and irefs = ref 0
  and max_l = ref (-1)
  and max_g = ref (-1)
  and nb = ref false
  and bankable = ref true in
  List.iter
    (fun (_, (op : Opcode.t), _) ->
      match op with
      | Ll n ->
        incr reads;
        incr lrefs;
        if n > !max_l then max_l := n;
        nb := true
      | Sl n ->
        incr writes;
        incr lrefs;
        if n > !max_l then max_l := n;
        nb := true
      | Lg n ->
        incr reads;
        incr g_reads;
        incr grefs;
        if n > !max_g then max_g := n
      | Sg n ->
        incr writes;
        incr g_writes;
        incr grefs;
        if n > !max_g then max_g := n
      | Lla _ ->
        (* flag_frame under banks: address formation only *)
        nb := true;
        bankable := false
      | Llx _ ->
        incr reads;
        incr lrefs;
        nb := true;
        bankable := false
      | Slx _ ->
        incr writes;
        incr lrefs;
        nb := true;
        bankable := false
      | Lgx _ ->
        incr reads;
        incr g_reads;
        incr grefs
      | Sgx _ ->
        incr writes;
        incr g_writes;
        incr grefs
      | Rload | Ldfld _ ->
        incr reads;
        incr irefs;
        nb := true;
        bankable := false
      | Rstore | Stfld _ ->
        incr writes;
        incr irefs;
        nb := true;
        bankable := false
      | _ -> ())
    ops;
  {
    a_reads = !reads;
    a_writes = !writes;
    a_g_reads = !g_reads;
    a_g_writes = !g_writes;
    a_lrefs = !lrefs;
    a_grefs = !grefs;
    a_irefs = !irefs;
    a_max_l = !max_l;
    a_max_g = !max_g;
    a_no_banks = !nb;
    a_bankable = !bankable;
  }

(* ------------------------------------------------------------------ *)
(* Peephole dataflow for fused runs.  A "source" is an instruction whose
   value is known without touching the stack; when a peephole consumes
   it directly the elided push must still truncate to a word, exactly as
   {!Eval_stack.push} would have.  [plane] selects the access plane the
   compiled closures touch variables through — chosen per batch at run
   time, after the bill for that plane has been charged:

   - [Mid]: the metered accessors, each reference charging itself (the
     fallback when no static bill applies);
   - [Raw]: the prepaid storage plane — bill already charged, addresses
     already guarded, banks absent;
   - [Bank]: the prepaid {e bank} plane for banked engines: every static
     local offset proven inside the frame's resident shadow window, the
     bank references charged as a batch ({!Cost.bank_ref_n}), locals
     touching the bank registers raw and globals the prepaid store (the
     global frame is never shadowed).  Only batches whose local traffic
     is entirely static Ll/Sl qualify: dynamic local offsets can fall
     outside the window mid-batch, indirect refs consult the window
     comparator, and LLA flags the frame — all excluded statically.

   The branch on the plane is resolved at closure-build time, and stored
   words are already truncated. *)

type plane = Mid | Raw | Bank

(* The bank file, on a plane the guard proved banked.  [assert false] is
   unreachable: the [Bank] variants run only after the residency check
   matched on [Some]. *)
let bank_of (st : State.t) =
  match st.banks with Some b -> b | None -> assert false

type sval = Sconst of int | Slocal of int | Sglobal of int

let sval_of (op : Opcode.t) =
  match op with
  | Li n -> Some (Sconst (word n))
  | Lpd w -> Some (Sconst (word w))
  | Ll n -> Some (Slocal n)
  | Lg n -> Some (Sglobal n)
  | _ -> None

let is_src op = sval_of op <> None
let sval op = match sval_of op with Some s -> s | None -> assert false

let load ~plane (st : State.t) = function
  | Sconst n -> n
  | Slocal n -> (
    match plane with
    | Mid -> word (State.read_local st n)
    | Raw -> Memory.prepaid_read st.mem (st.lf + n)
    | Bank -> Bank_file.raw_read (bank_of st) ~lf:st.lf ~index:n)
  | Sglobal n -> (
    match plane with
    | Mid -> word (State.read_global st n)
    | Raw | Bank -> Memory.prepaid_read st.mem (st.gf + Image.global_base + n))

(* Operator dispatch through a known function: the operator is a
   translation-time constant, so each call is a direct entry into a
   short jump table — where calling a stored [int -> int -> int]
   closure would go through the runtime's unknown-arity apply path on
   every fused ALU op (measurably hot on the call-dense kernels). *)
let exec_arith (op : Opcode.t) a b =
  match op with
  | Add -> word (signed a + signed b)
  | Sub -> word (signed a - signed b)
  | Mul -> word (signed a * signed b)
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | _ -> assert false

let is_arith (op : Opcode.t) =
  match op with Add | Sub | Mul | Band | Bor | Bxor -> true | _ -> false

let exec_cmp (op : Opcode.t) a b =
  match op with
  | Lt -> signed a < signed b
  | Le -> signed a <= signed b
  | Eq -> signed a = signed b
  | Ne -> signed a <> signed b
  | Ge -> signed a >= signed b
  | Gt -> signed a > signed b
  | _ -> assert false

let is_cmp (op : Opcode.t) =
  match op with Lt | Le | Eq | Ne | Ge | Gt -> true | _ -> false

let is_cond (op : Opcode.t) = match op with Jz _ | Jnz _ -> true | _ -> false

(* [(jump_if_true, displacement)]: JZ jumps when the (elided) comparison
   came out false, JNZ when it came out true. *)
let cond (op : Opcode.t) =
  match op with Jz d -> (false, d) | Jnz d -> (true, d) | _ -> assert false

(* Exactly {!Interp}'s [taken]. *)
let take_jump (st : State.t) target =
  st.metrics.jumps_taken <- st.metrics.jumps_taken + 1;
  Cost.jump st.cost;
  st.pc_abs <- target

(* One fusable instruction as a direct closure over unchecked stack
   access — semantics identical to {!Interp.exec} under the block guard
   ([unsafe_push] still truncates to a word).  Static-address variable
   ops come in three planes (see [plane] above); dynamic-address and
   indirect ops never qualify for [Bank] and compile its arm to the raw
   shape, which that plane's static eligibility keeps unreachable. *)
let compile_one ~plane ((pc, (op : Opcode.t), _) : int * Opcode.t * int)
    (k : State.t -> unit) : State.t -> unit =
  match op with
  | Li n ->
    let n = word n in
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack n;
      k st
  | Lpd w ->
    let w = word w in
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack w;
      k st
  | Ll n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        Eval_stack.unsafe_push st.stack (State.read_local st n);
        k st
    | Raw ->
      fun (st : State.t) ->
        Eval_stack.unsafe_push st.stack (Memory.prepaid_read st.mem (st.lf + n));
        k st
    | Bank ->
      fun (st : State.t) ->
        Eval_stack.unsafe_push st.stack
          (Bank_file.raw_read (bank_of st) ~lf:st.lf ~index:n);
        k st)
  | Sl n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        State.write_local st n (Eval_stack.unsafe_pop st.stack);
        k st
    | Raw ->
      fun (st : State.t) ->
        Memory.prepaid_write st.mem (st.lf + n) (Eval_stack.unsafe_pop st.stack);
        k st
    | Bank ->
      fun (st : State.t) ->
        Bank_file.raw_write (bank_of st) ~lf:st.lf ~index:n
          (Eval_stack.unsafe_pop st.stack);
        k st)
  | Lg n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        Eval_stack.unsafe_push st.stack (State.read_global st n);
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        Eval_stack.unsafe_push st.stack
          (Memory.prepaid_read st.mem (st.gf + Image.global_base + n));
        k st)
  | Sg n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        State.write_global st n (Eval_stack.unsafe_pop st.stack);
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        Memory.prepaid_write st.mem
          (st.gf + Image.global_base + n)
          (Eval_stack.unsafe_pop st.stack);
        k st)
  | Lla n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        Eval_stack.unsafe_push st.stack (State.local_addr st n);
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        (* banks are absent under the prepaid guard, so no frame to flag *)
        Eval_stack.unsafe_push st.stack (st.lf + n);
        k st)
  | Lga n ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (State.global_addr st n);
      k st
  | Llx n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let i = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (State.read_local st (n + i));
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let i = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (Memory.peek st.mem (st.lf + n + i));
        k st)
  | Slx n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let i = Eval_stack.unsafe_pop st.stack in
        State.write_local st (n + i) v;
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let i = Eval_stack.unsafe_pop st.stack in
        Memory.poke st.mem (st.lf + n + i) v;
        k st)
  | Lgx n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let i = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (State.read_global st (n + i));
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let i = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack
          (Memory.peek st.mem (st.gf + Image.global_base + n + i));
        k st)
  | Sgx n -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let i = Eval_stack.unsafe_pop st.stack in
        State.write_global st (n + i) v;
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let i = Eval_stack.unsafe_pop st.stack in
        Memory.poke st.mem (st.gf + Image.global_base + n + i) v;
        k st)
  | Rload -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let a = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (State.data_read st ~addr:a);
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let a = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (Memory.peek st.mem a);
        k st)
  | Rstore -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let a = Eval_stack.unsafe_pop st.stack in
        State.data_write st ~addr:a v;
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let a = Eval_stack.unsafe_pop st.stack in
        Memory.poke st.mem a v;
        k st)
  | Ldfld i -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let a = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (State.data_read st ~addr:(a + i));
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let a = Eval_stack.unsafe_pop st.stack in
        Eval_stack.unsafe_push st.stack (Memory.peek st.mem (a + i));
        k st)
  | Stfld i -> (
    match plane with
    | Mid ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let a = Eval_stack.unsafe_peek st.stack in
        State.data_write st ~addr:(a + i) v;
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        let v = Eval_stack.unsafe_pop st.stack in
        let a = Eval_stack.unsafe_peek st.stack in
        Memory.poke st.mem (a + i) v;
        k st)
  | Dup ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (Eval_stack.unsafe_peek st.stack);
      k st
  | Drop ->
    fun (st : State.t) ->
      ignore (Eval_stack.unsafe_pop st.stack);
      k st
  | Swap ->
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack b;
      Eval_stack.unsafe_push st.stack a;
      k st
  | Over ->
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_peek st.stack in
      Eval_stack.unsafe_push st.stack b;
      Eval_stack.unsafe_push st.stack a;
      k st
  | Add | Sub | Mul | Band | Bor | Bxor ->
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (exec_arith op a b);
      k st
  | Neg ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (-signed (Eval_stack.unsafe_pop st.stack));
      k st
  | Bnot ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (Eval_stack.unsafe_pop st.stack lxor 0xFFFF);
      k st
  | Lt | Le | Eq | Ne | Ge | Gt ->
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (if exec_cmp op a b then 1 else 0);
      k st
  | Lrc ->
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack st.return_ctx;
      k st
  | Out ->
    fun (st : State.t) ->
      State.emit st (Eval_stack.unsafe_pop st.stack);
      k st
  | Nop -> k
  | J d ->
    let target = pc + d in
    fun (st : State.t) -> take_jump st target
  | Jz d ->
    let target = pc + d in
    fun (st : State.t) ->
      if Eval_stack.unsafe_pop st.stack = 0 then take_jump st target
  | Jnz d ->
    let target = pc + d in
    fun (st : State.t) ->
      if Eval_stack.unsafe_pop st.stack <> 0 then take_jump st target
  | Halt -> fun (st : State.t) -> st.status <- State.Halted
  | _ -> invalid_arg "Tier.compile_one: not fusable"

(* The fused fast path for a run of fusable instructions: a closure
   chain with peephole-collapsed idioms.  Side-effect order (variable
   reads, output, data refs) is exactly the interpreter's; elided stack
   crossings apply [word] wherever a push would have truncated. *)
let rec compile ~plane (ops : (int * Opcode.t * int) list) : State.t -> unit =
  match ops with
  | [] -> stop
  (* LOAD a; LOAD b; CMP; Jcond — the compare-and-branch idiom *)
  | (_, o1, _) :: (_, o2, _) :: (_, o3, _) :: [ (jp, jop, _) ]
    when is_src o1 && is_src o2 && is_cmp o3 && is_cond jop ->
    let a = sval o1 and b = sval o2 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      let av = load ~plane st a in
      let bv = load ~plane st b in
      if exec_cmp o3 av bv = jnz then take_jump st target
  (* LOAD b; CMP; Jcond — left operand from the stack *)
  | (_, o1, _) :: (_, o2, _) :: [ (jp, jop, _) ]
    when is_src o1 && is_cmp o2 && is_cond jop ->
    let b = sval o1 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      let bv = load ~plane st b in
      let av = Eval_stack.unsafe_pop st.stack in
      if exec_cmp o2 av bv = jnz then take_jump st target
  (* CMP; Jcond — both operands from the stack *)
  | (_, o1, _) :: [ (jp, jop, _) ] when is_cmp o1 && is_cond jop ->
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      let b = Eval_stack.unsafe_pop st.stack in
      let a = Eval_stack.unsafe_pop st.stack in
      if exec_cmp o1 a b = jnz then take_jump st target
  (* LOAD a; LOAD b; ARITH; store — the assignment statement idiom
     (x := a OP b), with no stack traffic at all *)
  | (_, o1, _) :: (_, o2, _) :: (_, o3, _) :: (_, Sl n, _) :: rest
    when is_src o1 && is_src o2 && is_arith o3 ->
    let a = sval o1 and b = sval o2 in
    let k = compile ~plane rest in
    (match plane with
    | Mid ->
      fun (st : State.t) ->
        State.write_local st n
          (exec_arith o3 (load ~plane:Mid st a) (load ~plane:Mid st b));
        k st
    | Raw ->
      fun (st : State.t) ->
        Memory.prepaid_write st.mem (st.lf + n)
          (exec_arith o3 (load ~plane:Raw st a) (load ~plane:Raw st b));
        k st
    | Bank ->
      fun (st : State.t) ->
        Bank_file.raw_write (bank_of st) ~lf:st.lf ~index:n
          (exec_arith o3 (load ~plane:Bank st a) (load ~plane:Bank st b));
        k st)
  | (_, o1, _) :: (_, o2, _) :: (_, o3, _) :: (_, Sg n, _) :: rest
    when is_src o1 && is_src o2 && is_arith o3 ->
    let a = sval o1 and b = sval o2 in
    let k = compile ~plane rest in
    (match plane with
    | Mid ->
      fun (st : State.t) ->
        State.write_global st n
          (exec_arith o3 (load ~plane:Mid st a) (load ~plane:Mid st b));
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        Memory.prepaid_write st.mem
          (st.gf + Image.global_base + n)
          (exec_arith o3 (load ~plane st a) (load ~plane st b));
        k st)
  (* LOAD a; LOAD b; ARITH *)
  | (_, o1, _) :: (_, o2, _) :: (_, o3, _) :: rest
    when is_src o1 && is_src o2 && is_arith o3 ->
    let a = sval o1 and b = sval o2 in
    let k = compile ~plane rest in
    fun (st : State.t) ->
      let av = load ~plane st a in
      let bv = load ~plane st b in
      Eval_stack.unsafe_push st.stack (exec_arith o3 av bv);
      k st
  (* LOAD b; ARITH — left operand from the stack *)
  | (_, o1, _) :: (_, o2, _) :: rest when is_src o1 && is_arith o2 ->
    let b = sval o1 in
    let k = compile ~plane rest in
    fun (st : State.t) ->
      let bv = load ~plane st b in
      let av = Eval_stack.unsafe_pop st.stack in
      Eval_stack.unsafe_push st.stack (exec_arith o2 av bv);
      k st
  (* LOAD; store — straight-through variable copy *)
  | (_, o1, _) :: (_, Sl n, _) :: rest when is_src o1 ->
    let a = sval o1 in
    let k = compile ~plane rest in
    (match plane with
    | Mid ->
      fun (st : State.t) ->
        State.write_local st n (load ~plane:Mid st a);
        k st
    | Raw ->
      fun (st : State.t) ->
        Memory.prepaid_write st.mem (st.lf + n) (load ~plane:Raw st a);
        k st
    | Bank ->
      fun (st : State.t) ->
        Bank_file.raw_write (bank_of st) ~lf:st.lf ~index:n
          (load ~plane:Bank st a);
        k st)
  | (_, o1, _) :: (_, Sg n, _) :: rest when is_src o1 ->
    let a = sval o1 in
    let k = compile ~plane rest in
    (match plane with
    | Mid ->
      fun (st : State.t) ->
        State.write_global st n (load ~plane:Mid st a);
        k st
    | Raw | Bank ->
      fun (st : State.t) ->
        Memory.prepaid_write st.mem
          (st.gf + Image.global_base + n)
          (load ~plane st a);
        k st)
  (* LOAD; Jcond — loop latches like LL n; JNZ *)
  | (_, o1, _) :: [ (jp, jop, _) ] when is_src o1 && is_cond jop ->
    let a = sval o1 in
    let jnz, d = cond jop in
    let target = jp + d in
    fun (st : State.t) ->
      if (load ~plane st a <> 0) = jnz then take_jump st target
  (* LOAD a; LOAD b — paired pushes (argument staging before a call) *)
  | (_, o1, _) :: (_, o2, _) :: rest when is_src o1 && is_src o2 ->
    let a = sval o1 and b = sval o2 in
    let k = compile ~plane rest in
    fun (st : State.t) ->
      Eval_stack.unsafe_push st.stack (load ~plane st a);
      Eval_stack.unsafe_push st.stack (load ~plane st b);
      k st
  (* A followed jump mid-chain: the jump's accounting without the PC
     move — the successor closure is the target's code. *)
  | (_, J _, _) :: (_ :: _ as rest) ->
    let k = compile ~plane rest in
    fun (st : State.t) ->
      st.metrics.jumps_taken <- st.metrics.jumps_taken + 1;
      Cost.jump st.cost;
      k st
  | o :: rest -> compile_one ~plane o (compile ~plane rest)

(* ------------------------------------------------------------------ *)
(* Exact chains: per-instruction accounting identical to [Interp.step]
   over a predecoded instruction — counter, dispatch cost, PC advanced
   {e before} the effect, then the single authoritative [Interp.exec].
   No inter-instruction checks are needed: a fusable instruction cannot
   move control, a trap-capable one signals by raising (unwinding the
   rest of the chain to the node's handler), and terminators are last. *)
let rec exact_chain (ops : (int * Opcode.t * int) list) : State.t -> unit =
  match ops with
  | [] -> stop
  | (pc, op, len) :: rest ->
    let next = pc + len in
    let k = exact_chain rest in
    fun (st : State.t) ->
      st.metrics.instructions <- st.metrics.instructions + 1;
      Cost.dispatch st.cost;
      st.pc_abs <- next;
      Interp.exec st ~instr_pc:pc op;
      k st

(* ------------------------------------------------------------------ *)
(* Specialised transfer nodes.

   The interpreter's call path resolves its destination at run time: an
   entry-vector read, a code-byte fetch for the frame-size index, a
   DIRECTCALL header fetch, a link-vector descriptor chased through the
   GFT.  The inputs in the code region are immutable once linked — the
   same assumption the predecode table already rests on — so a
   translate-time node can bake in the resolved destination and charge
   the elided fetches as a batch.  Inputs {e outside} the code region
   (the LV descriptor word, the GFT entry, the environment's code-base
   word, I1's link-table pairs) are writable at run time: the fused path
   re-peeks them and compares against the baked resolution — a host
   observation, with the metered reads still charged in the batch — and
   the relink observer invalidates the whole translation's fused
   external calls when a host-side rebind overwrites a depended-on word.
   Every counter, metered reference and sub-event of the interpreter's
   path is reproduced; anything off the specialised shape falls back to
   the generic [Interp.exec] {e before} mutating anything.  The
   specialised bodies run only under the fast path's tracer-absent
   branch, where transfer event emission is a no-op by construction. *)

(* Code bases of all linked modules, sorted: the module owning a byte PC
   is the one with the greatest [2 * code_base <= pc]. *)
let code_bases (image : Image.t) =
  Array.of_list
    (List.sort_uniq compare
       (List.map
          (fun ii -> ii.Image.ii_code_base)
          image.Image.dir.instances))

let cb_of_pc cbs pc =
  let best = ref (-1) in
  Array.iter (fun cb -> if 2 * cb <= pc then best := max !best cb) cbs;
  if !best >= 0 then Some !best else None

(* Prepaid frame traffic: [Transfer.alloc_frame]/[free_frame] with the
   AV fast path's storage references batch-charged inside the allocator
   ({!Alloc_vector.alloc_fsi_prepaid}/{!free_prepaid}).  These run only
   under the tracer-absent branch, where the sub-events the metered
   paths would emit are no-ops by construction; every counter total is
   identical. *)
let av_alloc_prepaid (st : State.t) fsi =
  match Alloc_vector.alloc_fsi_prepaid st.allocator ~cost:st.cost ~fsi with
  | lf -> (lf lsl 8) lor fsi
  | exception Alloc_vector.Out_of_frame_heap ->
    raise (Transfer.Machine_trap State.Frame_heap_exhausted)

let alloc_frame_prepaid (st : State.t) ~fsi =
  let m = st.metrics in
  m.frame_allocs <- m.frame_allocs + 1;
  if st.ff_fsi >= 0 && fsi <= st.ff_fsi then
    if st.ff_top > 0 then begin
      st.ff_top <- st.ff_top - 1;
      let lf = st.free_frames.(st.ff_top) in
      m.ff_hits <- m.ff_hits + 1;
      (lf lsl 8) lor st.ff_fsi
    end
    else begin
      m.ff_misses <- m.ff_misses + 1;
      av_alloc_prepaid st st.ff_fsi
    end
  else av_alloc_prepaid st fsi

let free_frame_prepaid (st : State.t) ~lf =
  st.metrics.frame_frees <- st.metrics.frame_frees + 1;
  (match st.banks with
  | Some b -> Bank_file.release_frame b ~lf
  | None -> ());
  if
    st.ff_fsi >= 0
    && Frame.peek_fsi st.mem ~lf = st.ff_fsi
    && st.ff_top < Array.length st.free_frames
  then begin
    st.free_frames.(st.ff_top) <- lf;
    st.ff_top <- st.ff_top + 1
  end
  else Alloc_vector.free_prepaid st.allocator ~cost:st.cost ~lf

let has_banks (st : State.t) = match st.banks with Some _ -> true | None -> false
let has_data_trace (st : State.t) =
  match st.data_trace with Some _ -> true | None -> false

(* Count one admitted batch, charge its static bill on the widest plane
   the runtime guard allows, and run the matching compiled variant.  The
   caller has already passed the depth guard.

   Plane choice, in order:
   - prepaid storage ([Raw]): nothing can observe or alter the batched
     accesses — no data trace, no bank shadowing the touched locals,
     every static address proven in range (dynamic addresses
     bounds-check themselves in the chain);
   - prepaid bank ([Bank]): a banked engine whose batch's local traffic
     is all static Ll/Sl, with the frame's resident shadow window
     covering the highest offset — every local access would have hit
     the bank and every global access the store, so the bill is the
     globals' storage references plus one batch of bank references;
   - metered ([Mid]): everything else — each reference charges itself.

   Within a batch nothing changes bank ownership or window sizes (the
   ops are pure), so residency checked at the head holds for every
   access, and the batched bill equals the interpreter's per-access sum
   exactly. *)
let charge_and_run ~batch ~super ~(a : acct) ~fused_mid ~fused_raw ~fused_bank
    =
  let reads = a.a_reads and writes = a.a_writes in
  let g_reads = a.a_g_reads and g_writes = a.a_g_writes in
  let lrefs = a.a_lrefs and grefs = a.a_grefs and irefs = a.a_irefs in
  let max_l = a.a_max_l and max_g = a.a_max_g in
  let no_banks = a.a_no_banks in
  let bankable = a.a_bankable && lrefs > 0 in
  fun (st : State.t) ->
    let m = st.metrics in
    m.instructions <- m.instructions + batch;
    m.tier_fast_instrs <- m.tier_fast_instrs + batch;
    m.tier_super_instrs <- m.tier_super_instrs + super;
    let sz = Memory.size st.mem in
    let trace_free = not (has_data_trace st) in
    let globals_ok = max_g < 0 || st.gf + Image.global_base + max_g < sz in
    if
      trace_free
      && ((not no_banks) || not (has_banks st))
      && (max_l < 0 || st.lf + max_l < sz)
      && globals_ok
    then begin
      Cost.block_bill st.cost ~instrs:batch ~reads ~writes;
      m.local_refs <- m.local_refs + lrefs;
      m.global_refs <- m.global_refs + grefs;
      m.indirect_refs <- m.indirect_refs + irefs;
      fused_raw st
    end
    else if
      bankable && trace_free && globals_ok
      &&
      match st.banks with
      | Some bf -> max_l < Bank_file.resident_len bf ~lf:st.lf
      | None -> false
    then begin
      Cost.block_bill st.cost ~instrs:batch ~reads:g_reads ~writes:g_writes;
      Cost.bank_ref_n st.cost lrefs;
      m.local_refs <- m.local_refs + lrefs;
      m.global_refs <- m.global_refs + grefs;
      fused_bank st
    end
    else begin
      Cost.dispatch_n st.cost batch;
      fused_mid st
    end

(* The bank-plane variant of a batch, or its metered fallback when the
   shape can never qualify (no static-Ll/Sl local traffic to hoist). *)
let compile_bank ~(a : acct) ops ~fallback =
  if a.a_bankable && a.a_lrefs > 0 then compile ~plane:Bank ops else fallback

(* RETURN via the IFU return stack, or the plain frame-link return of the
   stackless engines.  The empty-rstack and non-frame-link shapes go
   generic: they carry their own bookkeeping (empty-pop counts, process
   end, fresh-activation links). *)
let spec_ret ~tpc =
  fun (st : State.t) ->
    let m = st.metrics in
    match st.rstack with
    | Some rs when Return_stack.length rs > 0 ->
      m.returns <- m.returns + 1;
      State.note_transfer_direction st (-1);
      let before = Cost.mem_refs st.cost in
      let returning = st.lf in
      ignore (Return_stack.try_pop rs : bool);
      free_frame_prepaid st ~lf:returning;
      let e = Return_stack.popped rs in
      st.lf <- e.Return_stack.r_lf;
      st.gf <- e.Return_stack.r_gf;
      st.cb <- e.Return_stack.r_cb;
      st.pc_abs <- e.Return_stack.r_pc_abs;
      st.return_ctx <- 0;
      (match st.banks with
      | Some b -> Bank_file.ensure_bank b ~lf:st.lf
      | None -> ());
      Cost.jump st.cost;
      Transfer.classify st before
    | Some _ -> Interp.exec st ~instr_pc:tpc Ret
    | None ->
      let returning = st.lf in
      let rl = Frame.peek_return_link st.mem ~lf:returning in
      if rl <> 0 && Descriptor.word_kind rl = Descriptor.word_frame then begin
        m.returns <- m.returns + 1;
        State.note_transfer_direction st (-1);
        (* the returnLink fetch plus resume's pc/gf/cb fetches, one batch;
           references are charged, so this is statically a slow transfer *)
        Memory.charge st.mem ~reads:4 ~writes:0;
        free_frame_prepaid st ~lf:returning;
        st.return_ctx <- 0;
        let pc = Frame.peek_pc st.mem ~lf:rl in
        let gf = Frame.peek_global_frame st.mem ~lf:rl in
        let cb = Memory.peek st.mem gf in
        st.lf <- rl;
        st.gf <- gf;
        st.cb <- cb;
        st.pc_abs <- (2 * cb) + pc;
        (match st.banks with
        | Some b -> Bank_file.ensure_bank b ~lf:rl
        | None -> ());
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1
      end
      else Interp.exec st ~instr_pc:tpc Ret

(* The stackless return of a fused {e store-free} leaf, with two of the
   four link-word fetches resolved at translate time: the returnLink is
   whatever the fused call just stored (mirrored in [st.return_ctx]) and
   the saved PC is the word the call's own PC save wrote — a
   translate-time constant of the call site ([next instruction - 2 x the
   site's code base]).  A store-free body cannot overwrite either frame
   word between call and return, and leaves are straight-line (no
   intervening transfer touches [return_ctx]), so the baked values equal
   what [spec_ret] would re-fetch.  The caller's globalFrame word and
   code base are still peeked — they were written when the {e caller}
   was activated, unknown at translate time.  All four reads stay
   charged: the meters are interpreter-exact, only host-side peeks are
   saved.  Anything but the plain stackless frame-link shape delegates
   to the generic [spec_ret]. *)
let spec_ret_baked ~tpc ~pc_word =
  let generic = spec_ret ~tpc in
  fun (st : State.t) ->
    match st.rstack with
    | None ->
      let rl = st.return_ctx in
      if rl <> 0 && Descriptor.word_kind rl = Descriptor.word_frame then begin
        let m = st.metrics in
        m.returns <- m.returns + 1;
        State.note_transfer_direction st (-1);
        Memory.charge st.mem ~reads:4 ~writes:0;
        free_frame_prepaid st ~lf:st.lf;
        st.return_ctx <- 0;
        let gf = Frame.peek_global_frame st.mem ~lf:rl in
        let cb = Memory.peek st.mem gf in
        st.lf <- rl;
        st.gf <- gf;
        st.cb <- cb;
        st.pc_abs <- (2 * cb) + pc_word;
        (match st.banks with
        | Some b -> Bank_file.ensure_bank b ~lf:rl
        | None -> ());
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1
      end
      else generic st
    | Some _ -> generic st

(* ------------------------------------------------------------------ *)
(* Cross-call fusion: splicing a known-leaf callee into the call site.

   A leaf procedure is a straight-line run of pure instructions ending
   in RETURN — no outgoing transfer, no trap-capable op, at most
   [leaf_cap] body instructions.  Its body can ride the caller's node:
   after the specialised call completes (machine exactly at the callee's
   entry boundary), one combined stack-depth guard admits the whole
   body-plus-RETURN batch, the meters are billed in one
   {!Cost.block_bill} — batched, but {e not} reordered across the call's
   allocation trap point, which already fired — and the RETURN runs the
   same specialised shape a lone RET node would.  If the depth guard
   fails the continuation simply returns: the call has completed at an
   exact boundary, and the dispatch loop carries on at the callee's
   entry with nothing to undo. *)

let leaf_body t ~entry_pc =
  match
    Predecode.straight_run t.pd ~pc:entry_pc ~cap:(leaf_cap + 1)
      ~ends:is_terminator
  with
  | None -> None
  | Some run -> (
    match List.rev run with
    | (rpc, Opcode.Ret, rlen) :: rev_body
      when List.for_all (fun (_, op, _) -> is_pure op) rev_body ->
      Some (List.rev rev_body, rpc, rlen)
    | _ -> None)

let is_store (op : Opcode.t) =
  match op with
  | Sl _ | Sg _ | Slx _ | Sgx _ | Stfld _ | Rstore -> true
  | _ -> false

let compile_callee t ~entry_pc =
  match leaf_body t ~entry_pc with
  | None -> None
  | Some (body, ret_pc, ret_len) ->
    let n_body = List.length body in
    let need, maxd = guard_params body in
    let a = acct_of body in
    let body_mid = compile ~plane:Mid body in
    let body_raw = compile ~plane:Raw body in
    let body_bank = compile_bank ~a body ~fallback:body_mid in
    let batch = n_body + 1 (* the RETURN joins the batch *) in
    let super = if batch >= 2 then batch else 0 in
    let run =
      charge_and_run ~batch ~super ~a ~fused_mid:body_mid ~fused_raw:body_raw
        ~fused_bank:body_bank
    in
    Some
      {
        lf_batch = batch;
        lf_need = need;
        lf_maxd = maxd;
        lf_run = run;
        lf_ret_pc = ret_pc;
        lf_p_end = ret_pc + ret_len;
        lf_store_free = not (List.exists (fun (_, op, _) -> is_store op) body);
      }

(* LOCALCALL with the destination resolved at translate time: same
   environment, same code base, entry offset and callee size class read
   from the (immutable) entry vector once.  Two stackless flavours share
   the site — the external-linkage image is cached by convention, so I1
   and I2 jobs can run the same translation:

   - Mesa: EV word and fsi byte elided (code region); the reference
     batch interleaves with the allocation trap point exactly as the
     interpreter does — resolution reads and the PC save precede the
     allocation, the callee's returnLink/globalFrame stores follow it.
   - Simple (I1): resolution reads the own-entry pair (two words) then
     the environment's code-base word; both live outside the code region
     and are re-peeked against the baked resolution. *)
let spec_lfc ~tpc ~ev_index ~cb ~fsi ~target_pc ~spair ~callee =
  fun (st : State.t) ->
    match (st.engine.Engine.kind, st.rstack, st.banks) with
    | Engine.Mesa, None, None when st.cb = cb ->
      let m = st.metrics in
      m.calls <- m.calls + 1;
      State.note_transfer_direction st 1;
      let ret_word = st.lf in
      (* EV word + entry's fsi byte reads, and the PC save *)
      Memory.charge st.mem ~reads:2 ~writes:1;
      Memory.poke st.mem (st.lf + Frame.off_pc) (st.pc_abs - (2 * cb));
      let packed = alloc_frame_prepaid st ~fsi in
      let lf_new = packed lsr 8 in
      Memory.charge st.mem ~reads:0 ~writes:2;
      Memory.poke st.mem (lf_new + Frame.off_return_link) ret_word;
      Memory.poke st.mem (lf_new + Frame.off_global_frame) st.gf;
      m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack;
      st.return_ctx <- ret_word;
      st.lf <- lf_new;
      st.pc_abs <- target_pc;
      Cost.jump st.cost;
      m.slow_transfers <- m.slow_transfers + 1;
      callee st
    | Engine.Simple, None, None -> (
      match st.simple with
      | Some sl
        when st.cb = cb && spair >= 0
             && Simple_links.peek_resolve_own_by_gf sl st.image ~gf:st.gf
                  ~ev_index
                = spair
             && Memory.peek st.mem st.gf = cb ->
        let m = st.metrics in
        m.calls <- m.calls + 1;
        State.note_transfer_direction st 1;
        let ret_word = st.lf in
        (* pair (2) + environment's code-base word + fsi byte reads, and
           the PC save *)
        Memory.charge st.mem ~reads:4 ~writes:1;
        Memory.poke st.mem (st.lf + Frame.off_pc) (st.pc_abs - (2 * cb));
        let packed = alloc_frame_prepaid st ~fsi in
        let lf_new = packed lsr 8 in
        Memory.charge st.mem ~reads:0 ~writes:2;
        Memory.poke st.mem (lf_new + Frame.off_return_link) ret_word;
        Memory.poke st.mem (lf_new + Frame.off_global_frame) st.gf;
        m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack;
        st.return_ctx <- ret_word;
        st.lf <- lf_new;
        st.pc_abs <- target_pc;
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1;
        callee st
      | _ -> Interp.exec st ~instr_pc:tpc (Lfc ev_index))
    | _ -> Interp.exec st ~instr_pc:tpc (Lfc ev_index)

(* EXTERNALCALL baked through the whole Figure-1 chain (Mesa) or the I1
   pair tables.  Every input outside the code region — the LV descriptor
   word, the GFT entry, the target environment's code-base word, the I1
   pair — is re-peeked and compared against the baked resolution, so a
   program that overwrites any of them (RSTORE into link space) or a
   host-side rebind gets the generic path and exact interpreter
   semantics.  The Mesa flavour additionally honours [valid]: the relink
   observer clears it when a rebind overwrites a depended-on word. *)
type efc_mesa = {
  em_lv_word : int;  (** the import's descriptor word, as linked *)
  em_gft_addr : int;
  em_gft_word : int;
  em_gf : int;  (** target global frame *)
  em_cb : int;  (** target code base *)
  em_fsi : int;
  em_target : int;  (** byte PC of the callee's first instruction *)
}

type efc_simple = {
  es_pair : int;  (** expected packed (entry, gf) pair *)
  es_gf : int;
  es_cb : int;
  es_fsi : int;
  es_target : int;
}

let spec_efc ~tpc ~lv_index ~cb ~valid ~(mesa : efc_mesa option)
    ~(simple : efc_simple option) ~callee =
  fun (st : State.t) ->
    match (st.engine.Engine.kind, st.rstack, st.banks) with
    | Engine.Mesa, None, None -> (
      match mesa with
      | Some em
        when st.cb = cb && !valid
             && st.gf - 1 - lv_index >= 0
             && Memory.peek st.mem (st.gf - 1 - lv_index) = em.em_lv_word
             && Memory.peek st.mem em.em_gft_addr = em.em_gft_word
             && Memory.peek st.mem em.em_gf = em.em_cb ->
        let m = st.metrics in
        m.calls <- m.calls + 1;
        State.note_transfer_direction st 1;
        let ret_word = st.lf in
        (* LV word + GFT entry + environment's code base + EV word + fsi
           byte reads, and the PC save; the returnLink/globalFrame
           stores follow the allocation, as the interpreter interleaves
           them — the batch is never reordered across the trap point *)
        Memory.charge st.mem ~reads:5 ~writes:1;
        Memory.poke st.mem (st.lf + Frame.off_pc) (st.pc_abs - (2 * cb));
        let packed = alloc_frame_prepaid st ~fsi:em.em_fsi in
        let lf_new = packed lsr 8 in
        Memory.charge st.mem ~reads:0 ~writes:2;
        Memory.poke st.mem (lf_new + Frame.off_return_link) ret_word;
        Memory.poke st.mem (lf_new + Frame.off_global_frame) em.em_gf;
        m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack;
        st.return_ctx <- ret_word;
        st.lf <- lf_new;
        st.gf <- em.em_gf;
        st.cb <- em.em_cb;
        st.pc_abs <- em.em_target;
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1;
        callee st
      | _ -> Interp.exec st ~instr_pc:tpc (Efc lv_index))
    | Engine.Simple, None, None -> (
      match (simple, st.simple) with
      | Some es, Some sl
        when st.cb = cb
             && Simple_links.peek_resolve_import_by_gf sl st.image ~gf:st.gf
                  ~lv_index
                = es.es_pair
             && Memory.peek st.mem es.es_gf = es.es_cb ->
        let m = st.metrics in
        m.calls <- m.calls + 1;
        State.note_transfer_direction st 1;
        let ret_word = st.lf in
        (* pair (2) + target environment's code base + fsi byte reads,
           and the PC save *)
        Memory.charge st.mem ~reads:4 ~writes:1;
        Memory.poke st.mem (st.lf + Frame.off_pc) (st.pc_abs - (2 * cb));
        let packed = alloc_frame_prepaid st ~fsi:es.es_fsi in
        let lf_new = packed lsr 8 in
        Memory.charge st.mem ~reads:0 ~writes:2;
        Memory.poke st.mem (lf_new + Frame.off_return_link) ret_word;
        Memory.poke st.mem (lf_new + Frame.off_global_frame) es.es_gf;
        m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack;
        st.return_ctx <- ret_word;
        st.lf <- lf_new;
        st.gf <- es.es_gf;
        st.cb <- es.es_cb;
        st.pc_abs <- es.es_target;
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1;
        callee st
      | _ -> Interp.exec st ~instr_pc:tpc (Efc lv_index))
    | _ -> Interp.exec st ~instr_pc:tpc (Efc lv_index)

(* DIRECTCALL with the header (gf, fsi) folded in: under a return stack
   the header rides the IFU prefetch (peeked, uncharged), which is
   exactly what baking it in reproduces.  Direct linkage froze the
   addresses at link time (D3), so no dependency guard is needed; on a
   devirtualized external-linkage image the CFA pass only rewrote sites
   no program store (and no serving-layer relink) can invalidate.  The
   stackless flavour pays the three metered header fetches — plus the
   deferred code-base fetch when the caller's CB register is
   unmaterialised — and otherwise follows the same frame-link call shape
   as the fused EXTERNALCALL; [cb] pins the site's code base so the PC
   save is the translate-time constant a baked leaf return relies on. *)
let spec_dfc ~tpc ~(op : Opcode.t) ~cb ~gf_t ~fsi ~target_pc ~callee =
  fun (st : State.t) ->
    match st.rstack with
    | Some rs when not (Return_stack.is_full rs) ->
      let m = st.metrics in
      m.calls <- m.calls + 1;
      State.note_transfer_direction st 1;
      let before = Cost.mem_refs st.cost in
      (match st.banks with
      | Some bk -> Bank_file.on_leave bk ~lf:st.lf
      | None -> ());
      let ret_word = st.lf in
      let e_bank =
        match st.banks with
        | Some bk -> Bank_file.bank_index bk ~lf:st.lf
        | None -> Return_stack.no_bank
      in
      Return_stack.push rs ~lf:st.lf ~gf:st.gf ~cb:st.cb ~pc_abs:st.pc_abs
        ~bank:e_bank;
      let packed = alloc_frame_prepaid st ~fsi in
      let lf_new = packed lsr 8 and granted_fsi = packed land 0xFF in
      (match st.banks with
      | Some banks ->
        let depth = Eval_stack.depth st.stack in
        m.arg_words_renamed <- m.arg_words_renamed + depth;
        Bank_file.on_call_n banks ~nargs:depth ~callee_lf:lf_new
          ~payload_words:(Transfer.payload_of_fsi st granted_fsi)
          ~args:(Eval_stack.buffer st.stack);
        Eval_stack.clear st.stack
      | None ->
        m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack);
      st.return_ctx <- ret_word;
      st.lf <- lf_new;
      st.gf <- gf_t;
      st.cb <- State.no_cb;
      st.pc_abs <- target_pc;
      Cost.jump st.cost;
      Transfer.classify st before;
      callee st
    | None -> (
      match (st.banks, cb) with
      | None, Some cb
        when st.cb = cb
             || (st.cb = State.no_cb && Memory.peek st.mem st.gf = cb) ->
        let m = st.metrics in
        m.calls <- m.calls + 1;
        State.note_transfer_direction st 1;
        let ret_word = st.lf in
        (* the header's gf word and fsi byte (three code reads), the
           deferred code-base fetch if the CB register was
           unmaterialised, and the PC save; returnLink/globalFrame
           stores follow the allocation, as the interpreter interleaves
           them *)
        let deferred = if st.cb = State.no_cb then 1 else 0 in
        st.cb <- cb;
        Memory.charge st.mem ~reads:(3 + deferred) ~writes:1;
        Memory.poke st.mem (st.lf + Frame.off_pc) (st.pc_abs - (2 * cb));
        let packed = alloc_frame_prepaid st ~fsi in
        let lf_new = packed lsr 8 in
        Memory.charge st.mem ~reads:0 ~writes:2;
        Memory.poke st.mem (lf_new + Frame.off_return_link) ret_word;
        Memory.poke st.mem (lf_new + Frame.off_global_frame) gf_t;
        m.arg_words_stored <- m.arg_words_stored + Eval_stack.depth st.stack;
        st.return_ctx <- ret_word;
        st.lf <- lf_new;
        st.gf <- gf_t;
        st.cb <- State.no_cb;
        st.pc_abs <- target_pc;
        Cost.jump st.cost;
        m.slow_transfers <- m.slow_transfers + 1;
        callee st
      | _ -> Interp.exec st ~instr_pc:tpc op)
    | _ -> Interp.exec st ~instr_pc:tpc op

(* ------------------------------------------------------------------ *)
(* Translate-time resolution through the host directory. *)

let instances_of_cb t cb =
  List.filter
    (fun ii -> ii.Image.ii_code_base = cb)
    t.image.Image.dir.instances

let proc_by_ev t ~instance ~ev =
  Hashtbl.fold
    (fun (inst, _) (pi : Image.proc_info) acc ->
      if acc = None && String.equal inst instance && pi.Image.pi_ev = ev then
        Some pi
      else acc)
    t.image.Image.dir.procs None

(* Record that a fused site's baked resolution read [word] at [addr]; the
   relink observer compares notifications against this table. *)
let add_dep t addr word =
  if not (Hashtbl.mem t.deps_tbl addr) then Hashtbl.replace t.deps_tbl addr word

(* The packed pair I1's own-entry table holds for entry [ev_index] of the
   instance owning code base [cb] — [-1] when the owning instance is not
   unique (a multi-instantiated module shares its code, and each
   instance's table resolves to its own environment) or the resolution
   disagrees with the Mesa bake. *)
let simple_own_pair t ~cb ~ev_index ~target_pc =
  match instances_of_cb t cb with
  | [ ii ] -> (
    match proc_by_ev t ~instance:ii.Image.ii_name ~ev:ev_index with
    | None -> -1
    | Some pi -> (
      match
        Simple_links.expected_pair t.image ~target_instance:ii.Image.ii_name
          ~target_proc:pi.Image.pi_proc
      with
      | pair ->
        if
          Simple_links.pair_abs pair + 1 = target_pc
          && Simple_links.pair_gf pair = ii.Image.ii_gf_addr
          && Memory.peek t.image.Image.mem ii.Image.ii_gf_addr = cb
        then pair
        else -1
      | exception (Not_found | Invalid_argument _) -> -1))
  | _ -> -1

let efc_mesa_bake t ~cb ~lv_index =
  match instances_of_cb t cb with
  | [ ii ] -> (
    let mem = t.image.Image.mem in
    let lv_addr = ii.Image.ii_gf_addr - 1 - lv_index in
    match Memory.peek mem lv_addr with
    | exception Invalid_argument _ -> None
    | lv_word when Descriptor.word_kind lv_word = Descriptor.word_proc -> (
      let gfi = Descriptor.word_gfi lv_word
      and ev = Descriptor.word_ev lv_word in
      if gfi < 1 || gfi >= Gft.capacity then None
      else
        try
          let gft_addr = Gft.base t.image.Image.gft + gfi in
          let gft_word = Memory.peek mem gft_addr in
          let gf = gft_word land 0xFFFC and bias = gft_word land 3 in
          let cb_t = Memory.peek mem gf in
          let entry_off = Memory.peek mem (cb_t + (bias * 32) + ev) in
          let fsi = Memory.peek_code_byte mem ~code_base:cb_t ~pc:entry_off in
          add_dep t lv_addr lv_word;
          add_dep t gft_addr gft_word;
          add_dep t gf cb_t;
          Some
            {
              em_lv_word = lv_word;
              em_gft_addr = gft_addr;
              em_gft_word = gft_word;
              em_gf = gf;
              em_cb = cb_t;
              em_fsi = fsi;
              em_target = (2 * cb_t) + entry_off + 1;
            }
        with Invalid_argument _ -> None)
    | _ -> None)
  | _ -> None

let efc_simple_bake t ~cb ~lv_index =
  match instances_of_cb t cb with
  | [ ii ] ->
    if lv_index < 0 || lv_index >= Array.length ii.Image.ii_imports then None
    else begin
      let tm, tp = ii.Image.ii_imports.(lv_index) in
      match
        ( Simple_links.expected_pair t.image ~target_instance:tm
            ~target_proc:tp,
          Image.find_instance t.image tm,
          Image.find_proc t.image ~instance:tm ~proc:tp )
      with
      | pair, tii, pi ->
        let gf = Simple_links.pair_gf pair in
        let cb_t = Memory.peek t.image.Image.mem gf in
        if cb_t = tii.Image.ii_code_base then
          Some
            {
              es_pair = pair;
              es_gf = gf;
              es_cb = cb_t;
              es_fsi = pi.Image.pi_fsi;
              es_target = Simple_links.pair_abs pair + 1;
            }
        else None
      | exception (Not_found | Invalid_argument _) -> None
    end
  | _ -> None

(* The fused continuation for the callee entered at [entry_pc], when it
   is a known leaf; [tpc] identifies the call site so overlapping suffix
   blocks count it once.  [ret_pc_word] is the PC word the site's fused
   call stores into the caller frame (next instruction relative to the
   site's code base) — when the leaf is store-free its return bakes that
   word instead of re-fetching it ([spec_ret_baked]). *)
let callee_for t ~tpc ?ret_pc_word ~entry_pc () =
  let compiled =
    match Hashtbl.find_opt t.leaf_memo entry_pc with
    | Some c -> c
    | None ->
      let c = compile_callee t ~entry_pc in
      Hashtbl.replace t.leaf_memo entry_pc c;
      c
  in
  match compiled with
  | Some l ->
    if not (Hashtbl.mem t.seen_sites tpc) then begin
      Hashtbl.replace t.seen_sites tpc ();
      t.n_fused_calls <- t.n_fused_calls + 1
    end;
    let ret =
      match ret_pc_word with
      | Some w when l.lf_store_free -> spec_ret_baked ~tpc:l.lf_ret_pc ~pc_word:w
      | _ -> spec_ret ~tpc:l.lf_ret_pc
    in
    let cont (st : State.t) =
      let d = Eval_stack.depth st.stack in
      if d >= l.lf_need && d + l.lf_maxd <= Eval_stack.capacity st.stack
      then begin
        st.metrics.tier_fused_calls <- st.metrics.tier_fused_calls + 1;
        st.pc_abs <- l.lf_p_end;
        l.lf_run st;
        ret st
      end
      (* depth guard failed: stay at the callee's entry boundary *)
    in
    (cont, l.lf_batch)
  | None -> (stop, 0)

(* Build the specialised node for a block-ending transfer, or [None] when
   the shape (or its translate-time resolution) is not specialisable.
   Returns the extra instruction headroom a spliced callee can retire on
   top of the block's own count.  [tlen] is the transfer's decoded byte
   length: the fused call arms save [tpc + tlen - 2 x cb] as the return
   PC word, which a spliced store-free leaf's return bakes back in. *)
let specialize t ~tpc ~tlen (op : Opcode.t) : (int * (State.t -> unit)) option
    =
  let mem = t.image.Image.mem in
  let ret_word ~cb = tpc + tlen - (2 * cb) in
  match op with
  | Ret -> Some (0, spec_ret ~tpc)
  | Lfc n -> (
    match cb_of_pc t.cbs tpc with
    | None -> None
    | Some cb -> (
      try
        let entry_off = Memory.peek mem (cb + n) in
        let fsi = Memory.peek_code_byte mem ~code_base:cb ~pc:entry_off in
        let target_pc = (2 * cb) + entry_off + 1 in
        let spair = simple_own_pair t ~cb ~ev_index:n ~target_pc in
        let callee, extra =
          callee_for t ~tpc ~ret_pc_word:(ret_word ~cb) ~entry_pc:target_pc ()
        in
        Some (extra, spec_lfc ~tpc ~ev_index:n ~cb ~fsi ~target_pc ~spair ~callee)
      with Invalid_argument _ -> None))
  | Efc n -> (
    match cb_of_pc t.cbs tpc with
    | None -> None
    | Some cb -> (
      let mesa = efc_mesa_bake t ~cb ~lv_index:n in
      let simple = efc_simple_bake t ~cb ~lv_index:n in
      match (mesa, simple) with
      | None, None -> None
      | _ ->
        let callee, extra =
          match (mesa, simple) with
          | Some em, Some es when em.em_target <> es.es_target -> (stop, 0)
          | Some em, _ ->
            callee_for t ~tpc ~ret_pc_word:(ret_word ~cb)
              ~entry_pc:em.em_target ()
          | None, Some es ->
            callee_for t ~tpc ~ret_pc_word:(ret_word ~cb)
              ~entry_pc:es.es_target ()
          | None, None -> (stop, 0)
        in
        Some
          ( extra,
            spec_efc ~tpc ~lv_index:n ~cb ~valid:t.fuse_valid ~mesa ~simple
              ~callee )))
  | Dfc _ | Sdfc _ -> (
    let target_abs =
      match op with Dfc tgt -> tgt | Sdfc d -> tpc + d | _ -> assert false
    in
    try
      let b0 = Memory.peek_code_byte mem ~code_base:0 ~pc:target_abs in
      let b1 = Memory.peek_code_byte mem ~code_base:0 ~pc:(target_abs + 1) in
      let b2 = Memory.peek_code_byte mem ~code_base:0 ~pc:(target_abs + 2) in
      let target_pc = target_abs + 3 in
      let cb = cb_of_pc t.cbs tpc in
      let callee, extra =
        callee_for t ~tpc
          ?ret_pc_word:(Option.map (fun cb -> ret_word ~cb) cb)
          ~entry_pc:target_pc ()
      in
      Some
        ( extra,
          spec_dfc ~tpc ~op ~cb ~gf_t:((b0 lsl 8) lor b1) ~fsi:b2 ~target_pc
            ~callee )
    with Invalid_argument _ -> None)
  | _ -> None

(* A followed unconditional jump (one with more instructions collected
   after it) is fusable: inside a chain it costs its dispatch and jump
   accounting but moves no PC — the chain {e is} the jump.  In final
   position it is the ordinary fused terminator. *)
let rec split_fusable acc (ops : (int * Opcode.t * int) list) =
  match ops with
  | [] -> (List.rev acc, [])
  | [ ((_, Opcode.J _, _) as o) ] -> (List.rev (o :: acc), [])
  | ((_, Opcode.J _, _) as o) :: rest -> split_fusable (o :: acc) rest
  | ((_, op, _) as o) :: rest ->
    if is_pure op then split_fusable (o :: acc) rest
    else if is_fused_terminator op then (List.rev (o :: acc), [])
    else (List.rev acc, ops)

(* Superblock formation: an unconditional jump to a decodable target does
   not end collection — the block continues at the target, turning a loop
   body's back-edge or a forward hop into straight-line code — and
   neither does a call, whose fused fast path returns control to the
   next instruction (the segment chain in [build_node] verifies that it
   did before running the continuation).  [block_cap] bounds the chase
   (a self-jump simply fills the block with jumps). *)
let collect_block pd pc0 =
  let rec go pc n acc =
    if n >= block_cap then List.rev acc
    else
      let len = Predecode.len_at pd pc in
      if len = 0 then List.rev acc
      else
        let op = Predecode.op_at pd pc in
        let acc = (pc, op, len) :: acc in
        match op with
        | Opcode.J d when n + 1 < block_cap && Predecode.len_at pd (pc + d) > 0
          ->
          go (pc + d) (n + 1) acc
        | _ ->
          if is_terminator op && not (is_call op) then List.rev acc
          else go (pc + len) (n + 1) acc
  in
  go pc0 0 []

(* Build the node for one boundary.

   The block is decomposed into a chain of {e steps}: each a (possibly
   empty) run of fusable instructions plus at most one follower — the
   first non-fusable instruction after the run.  Followers come in three
   kinds:

   - a {e terminator} (RETURN, XFER, FORK, ...): joins the step's batch
     for counting, then runs its specialised or generic transfer,
     ending the node;
   - a {e call}: joins the batch, runs its specialised shape (which may
     splice a known-leaf callee and return), and — when control
     provably came straight back to the next instruction with the
     machine still running — chains into the following step, so a
     call-dense loop body is one node, not one dispatch per call site;
   - a {e trap-capable} instruction (DIV, MOD, NEWREC, FREEREC): joins
     the batch, runs under exact PC via [Interp.exec] (a catchable trap
     signals by raising, unwinding the chain to the node's handler),
     then chains into the following step.

   Every step guards, counts and bills only its own batch, in program
   order: the meters are batched but never reordered across a potential
   trap point.  A step boundary is an exact machine boundary — if a
   later step's depth guard fails, the node simply returns: the
   previous follower left the PC on the step's first instruction, and
   the dispatch loop re-enters there (that boundary's own node falls
   back to an exact chain when its first guard fails, so progress is
   guaranteed).  The exact fallback itself never runs past the first
   control-moving instruction: a generic call leaves the PC in the
   callee, which is where per-instruction execution leaves the node
   anyway.

   The returned count is an {e upper bound} on instructions the node
   can retire (block plus any spliced callee batches) — the run loop
   admits a node only when the whole bound fits the remaining budget,
   so fuel expiry stays exact.  [fused] is true when some fast path
   covers two or more instructions in one batch. *)

type follower =
  | F_end  (** fully fused to the block's end (or to [block_cap]) *)
  | F_term of int * Opcode.t * int
  | F_call of int * Opcode.t * int
  | F_exact of int * Opcode.t * int

let rec steps_of ops =
  match ops with
  | [] -> []
  | _ -> (
    let fusable, tail = split_fusable [] ops in
    match tail with
    | [] -> [ (fusable, F_end) ]
    | (tpc, top, tlen) :: rest ->
      if is_call top then (fusable, F_call (tpc, top, tlen)) :: steps_of rest
      else if is_terminator top then [ (fusable, F_term (tpc, top, tlen)) ]
      else (fusable, F_exact (tpc, top, tlen)) :: steps_of rest)

let rec exact_prefix ops =
  match ops with
  | [] -> []
  | ((_, op, _) as o) :: rest ->
    if is_call op || is_terminator op then [ o ] else o :: exact_prefix rest

let build_node t ops : int * bool * (State.t -> unit) =
  let n_ops = List.length ops in
  let extra = ref 0 in
  let any_super = ref false in
  (* Tracer / first-guard-failure fallback: exact, up to and including
     the first control-moving instruction. *)
  let exact_head = exact_chain (exact_prefix ops) in
  let rec comp ~first steps : State.t -> unit =
    match steps with
    | [] -> stop
    | (fusable, follower) :: rest_steps ->
      let k = comp ~first:false rest_steps in
      let f = List.length fusable in
      let tail_fn =
        match follower with
        | F_end -> stop
        | F_term (tpc, top, tlen) ->
          let t_next = tpc + tlen in
          let term =
            match specialize t ~tpc ~tlen:tlen top with
            | Some (e, sp) ->
              extra := !extra + e;
              sp
            | None -> fun (st : State.t) -> Interp.exec st ~instr_pc:tpc top
          in
          fun (st : State.t) ->
            st.pc_abs <- t_next;
            term st
        | F_call (tpc, top, tlen) ->
          let t_next = tpc + tlen in
          let call =
            match specialize t ~tpc ~tlen:tlen top with
            | Some (e, sp) ->
              extra := !extra + e;
              sp
            | None -> fun (st : State.t) -> Interp.exec st ~instr_pc:tpc top
          in
          fun (st : State.t) ->
            st.pc_abs <- t_next;
            call st;
            (* Chain on only when the call provably completed and
               returned: spliced fast path, machine still running, PC
               back on the continuation.  Anything else — generic path
               now sitting in the callee, a depth-guard bail at the
               callee's entry, a handled trap — leaves the node at an
               exact boundary for the dispatch loop. *)
            (match st.status with
            | State.Running when st.pc_abs = t_next -> k st
            | _ -> ())
        | F_exact (tpc, top, tlen) ->
          let t_next = tpc + tlen in
          fun (st : State.t) ->
            st.pc_abs <- t_next;
            Interp.exec st ~instr_pc:tpc top;
            k st
      in
      if f = 0 then (
        match follower with
        | F_end -> stop
        | _ ->
          (* A lone follower at the boundary (a jump target landing on
             a RET, a call, or a trap-capable op): per-instruction
             accounting, then the follower. *)
          fun (st : State.t) ->
            let m = st.metrics in
            m.instructions <- m.instructions + 1;
            m.tier_fast_instrs <- m.tier_fast_instrs + 1;
            Cost.dispatch st.cost;
            tail_fn st)
      else begin
        let fail = if first then exact_head else stop in
        let need, maxd = guard_params fusable in
        let a = acct_of fusable in
        let fused_mid = compile ~plane:Mid fusable in
        let fused_raw = compile ~plane:Raw fusable in
        let fused_bank = compile_bank ~a fusable ~fallback:fused_mid in
        (* The follower joins the batch: the interpreter counts an
           instruction before executing it, so pre-counting leaves every
           meter exactly right even if the follower traps — but its PC
           must be exact, so it runs after the fused prefix, never
           inside it. *)
        let joined = match follower with F_end -> false | _ -> true in
        let batch = if joined then f + 1 else f in
        let super = if batch >= 2 then batch else 0 in
        if super > 0 then any_super := true;
        let run =
          charge_and_run ~batch ~super ~a ~fused_mid ~fused_raw ~fused_bank
        in
        match follower with
        | F_end ->
          (* Fully fused tail: PC goes to the block end up front (only
             a final fused jump may overwrite it), exactly where the
             interpreter's per-instruction advances would leave it. *)
          let p_end =
            match List.rev fusable with
            | (pc, _, len) :: _ -> pc + len
            | [] -> assert false
          in
          fun (st : State.t) ->
            let d = Eval_stack.depth st.stack in
            if d >= need && d + maxd <= Eval_stack.capacity st.stack then begin
              st.pc_abs <- p_end;
              run st
            end
            else fail st
        | _ ->
          fun (st : State.t) ->
            let d = Eval_stack.depth st.stack in
            if d >= need && d + maxd <= Eval_stack.capacity st.stack then begin
              run st;
              tail_fn st
            end
            else fail st
      end
  in
  let body = comp ~first:true (steps_of ops) in
  let total = n_ops + !extra in
  let pc0 = match ops with (pc, _, _) :: _ -> pc | [] -> -1 in
  (* Self-looping node: when the body's back-edge lands on this node's
     own boundary, iterate in place instead of returning to the
     dispatch loop — under exactly its admission check (still running,
     PC on the boundary, the whole bound fits the remaining budget).
     Each iteration re-runs the same guards and bills as a fresh
     dispatch would; only the host-side table lookup is elided. *)
  let rec spin (st : State.t) =
    body st;
    match st.status with
    | State.Running
      when st.pc_abs = pc0
           && st.metrics.instructions + total <= st.fuel_limit ->
      spin st
    | _ -> ()
  in
  let exec (st : State.t) =
    try
      match st.tracer with Some _ -> exact_head st | None -> spin st
    with
    | Eval_stack.Overflow -> Transfer.trap st State.Eval_overflow
    | Eval_stack.Underflow -> Transfer.trap st State.Eval_underflow
    | Transfer.Machine_trap reason -> Transfer.trap st reason
  in
  (total, !any_super, exec)

(* ------------------------------------------------------------------ *)
(* Lazy per-procedure translation.

   Procedure body ranges come from the host directory (deduplicated
   across instances sharing a module's code); every PC the machine can
   dispatch lies inside one — execution enters a procedure at its first
   instruction and control flow (jumps, returns, resumes, trap handlers)
   stays inside bodies.  A procedure's boundaries are translated on the
   first XFER into it, under a mutex so concurrent domains sharing the
   attachment race safely; slots are published as immutable [node]
   records (a racing reader sees [no_node] or a whole node, and a stale
   read merely deopts one interpreter step). *)

let proc_tables (image : Image.t) pd =
  let base = Predecode.base pd and limit = Predecode.limit pd in
  let size = max 0 (limit - base) in
  let proc_of = Array.make size (-1) in
  let by_entry = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (inst, _) (pi : Image.proc_info) ->
      match Image.find_instance image inst with
      | ii ->
        let entry =
          (2 * ii.Image.ii_code_base) + pi.Image.pi_entry_offset + 1
        in
        Hashtbl.replace by_entry entry (entry + pi.Image.pi_body_bytes)
      | exception Not_found -> ())
    image.Image.dir.procs;
  let ranges =
    Array.of_list
      (List.sort compare
         (Hashtbl.fold (fun lo hi acc -> (lo, hi) :: acc) by_entry []))
  in
  Array.iteri
    (fun p (lo, hi) ->
      let lo = max lo base and hi = min hi limit in
      for pc = lo to hi - 1 do
        proc_of.(pc - base) <- p
      done)
    ranges;
  (proc_of, ranges)

let create (image : Image.t) =
  let pd = Image.predecode image in
  let base = Predecode.base pd and limit = Predecode.limit pd in
  let size = max 0 (limit - base) in
  let proc_of, ranges = proc_tables image pd in
  {
    base;
    slots = Array.make size no_node;
    image;
    pd;
    cbs = code_bases image;
    proc_of;
    ranges;
    translated = Array.make (Array.length ranges) false;
    lock = Mutex.create ();
    fuse_valid = ref true;
    deps_tbl = Hashtbl.create 16;
    seen_sites = Hashtbl.create 16;
    leaf_memo = Hashtbl.create 16;
    deps = [||];
    n_boundaries = 0;
    n_fused = 0;
    n_fused_calls = 0;
    n_translated = 0;
    n_invalidations = 0;
  }

let fill_range t lo hi =
  let lo = max lo t.base and hi = min hi (t.base + Array.length t.slots) in
  for pc = lo to hi - 1 do
    if Predecode.len_at t.pd pc > 0 then begin
      let count, fused, exec = build_node t (collect_block t.pd pc) in
      t.slots.(pc - t.base) <- { n_count = count; n_exec = exec };
      t.n_boundaries <- t.n_boundaries + 1;
      if fused then t.n_fused <- t.n_fused + 1
    end
  done

(* First XFER into procedure [p]: translate its body's boundaries and
   publish the nodes.  Returns true when this call did the work (false:
   another domain won the race, or it was already done). *)
let ensure_proc t p =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.translated.(p) then false
      else begin
        let lo, hi = t.ranges.(p) in
        fill_range t lo hi;
        t.deps <-
          Array.of_list
            (Hashtbl.fold (fun a w acc -> (a, w) :: acc) t.deps_tbl []);
        t.n_translated <- t.n_translated + 1;
        t.translated.(p) <- true;
        true
      end)

let translate image =
  let t = create image in
  Array.iteri (fun p _ -> ignore (ensure_proc t p : bool)) t.ranges;
  t

type Image.attachment += Translation of t

(* A host-side rebind overwrote a link word: if some fused site's baked
   resolution read the old contents of that address, the translation's
   fused external calls are no longer trustworthy — deopt them all (they
   fall back to [Interp.exec]'s live resolution).  Replayed identical
   words (an arena reset reinstalling I1 tables) compare equal and leave
   fusion alive. *)
let note_relink t ~addr ~word =
  let deps = t.deps in
  let n = Array.length deps in
  let hit = ref false in
  for i = 0 to n - 1 do
    let a, w = deps.(i) in
    if a = addr && w <> word then hit := true
  done;
  if !hit then begin
    t.fuse_valid := false;
    t.n_invalidations <- t.n_invalidations + 1
  end

let of_image (image : Image.t) =
  match image.dir.attachment with
  | Some (Translation t) -> (t, true)
  | _ ->
    let t = create image in
    image.dir.attachment <- Some (Translation t);
    Image.set_relink_hook image
      (Some (fun ~addr ~word -> note_relink t ~addr ~word));
    (t, false)

let boundaries t = t.n_boundaries
let fused_boundaries t = t.n_fused
let fused_call_sites t = t.n_fused_calls
let procs t = Array.length t.ranges
let procs_translated t = t.n_translated
let invalidations t = t.n_invalidations
let fusion_valid t = !(t.fuse_valid)

let run ?(max_steps = 20_000_000) t (st : State.t) =
  let m = st.metrics in
  let limit = m.instructions + max_steps in
  st.fuel_limit <- limit;
  let base = t.base in
  let slots = t.slots and proc_of = t.proc_of in
  let size = Array.length slots in
  let rec go () =
    if st.status = State.Running then
      if m.instructions >= limit then st.status <- State.Trapped State.Step_limit
      else begin
        let idx = st.pc_abs - base in
        let nd =
          if idx >= 0 && idx < size then Array.unsafe_get slots idx else no_node
        in
        if nd.n_count > 0 && m.instructions + nd.n_count <= limit then
          nd.n_exec st
        else if
          nd.n_count = 0 && idx >= 0 && idx < size
          &&
          let p = Array.unsafe_get proc_of idx in
          p >= 0 && not (Array.unsafe_get t.translated p)
        then begin
          (* First XFER into an untranslated procedure: translate it now
             and retry this PC without retiring an instruction. *)
          if ensure_proc t (Array.unsafe_get proc_of idx) then
            m.tier_lazy_translations <- m.tier_lazy_translations + 1
        end
        else begin
          (* No node (undecodable or uncovered PC), or the remaining
             budget cannot cover a whole block: one interpreter step —
             by construction it lands back on an exact boundary. *)
          m.tier_deopts <- m.tier_deopts + 1;
          Interp.step st
        end;
        go ()
      end
  in
  go ()
