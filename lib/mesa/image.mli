(** A linked program image: simulated memory populated with the GFT, AV,
    global frames, link vectors, entry vectors and code segments, plus the
    OCaml-side directory the tools use to find things again.

    Global frame layout: word 0 = code base (word address of the module's
    code segment), word 1 = link vector base, globals from word 2.  The
    entry vector occupies the first [nprocs] words of the code segment, so
    "EV starts at the code base" (§5.1); each entry is the byte offset,
    relative to the code base, of the procedure's frame-size-index byte,
    and "the procedure's code starts at the following byte" (§5.1).  Under
    direct linkage each single-instance procedure is preceded by a two-byte
    header holding its global frame address — the DIRECTCALL landing pad of
    §6 whose contents the IFU turns into SETGLOBALFRAME and ALLOCATEFRAME
    pseudo-instructions. *)

type linkage = External | Direct | Short_direct

type proc_info = {
  pi_instance : string;
  pi_proc : string;
  pi_ev : int;  (** full entry index (bias x 32 + descriptor ev field) *)
  pi_entry_offset : int;  (** byte offset of the fsi byte, relative to code base *)
  pi_direct_offset : int option;  (** byte offset of the 2-byte GF header *)
  pi_fsi : int;
  pi_locals_words : int;
  pi_nargs : int;
  pi_body_bytes : int;  (** instruction bytes, excluding fsi/header *)
}

type instance_info = {
  ii_name : string;  (** module name, or "module#k" for extra instances *)
  ii_module : string;
  ii_gfi : int;  (** first of [ii_gfi_count] consecutive GFT entries *)
  ii_gfi_count : int;
  mutable ii_gf_addr : int;
  mutable ii_lv_base : int;
  mutable ii_code_base : int;  (** word address; shared by instances of a module *)
  ii_imports : (string * string) array;
}

(** The OCaml-side directory: everything the linker writes and the tools
    read back — instance list, procedure table, compiled source, link-time
    cursors, the lazily built predecode table.  Immutable once linking is
    done, so one directory is {e shared} by a pristine image and every
    clone of it (the old per-clone [List.map]/[Hashtbl.copy] duplicated it
    to no effect — no field ever changed after link). *)
type attachment = ..
(** Extension point for execution-tier data derived from the code region —
    e.g. the compiled tier's translation ([Fpc_tier] adds its constructor).
    Kept abstract here so fpc.mesa needn't depend on the tiers. *)

(** What the link-time devirtualization pass ({!Fpc_cfa.Cfa}) did to this
    image: how many padded EXTERNALCALL sites it saw, proved
    single-target, and rewrote ([dv_short] of those to the 3-byte
    SHORTDIRECTCALL form). *)
type devirt_stats = {
  dv_sites : int;  (** padded EFC sites examined *)
  dv_proven : int;  (** proven single-target *)
  dv_rewritten : int;  (** patched to [Dfc]/[Sdfc] in place *)
  dv_short : int;  (** of the rewritten, within SHORTDIRECTCALL reach *)
  dv_abstained : int;  (** left on the late-bound path *)
}

type directory = {
  mutable instances : instance_info list;
  procs : (string * string, proc_info) Hashtbl.t;  (** (instance, proc) *)
  source : Compiled.t list;
  mutable code_cursor : int;  (** next free word in the code region *)
  mutable gfi_cursor : int;  (** next unassigned GFT index *)
  mutable predecode : Fpc_isa.Predecode.t option;
      (** lazily built by {!predecode}; shared (not copied) by {!clone} *)
  mutable attachment : attachment option;
      (** like [predecode]: derived from immutable code bytes on first
          demand, shared by every clone, benign if racing domains both
          build it (identical contents, either wins) *)
  mutable on_relink : (addr:int -> word:int -> unit) option;
      (** called after any host-side relink pokes a link word (LV slot,
          interface slot, I1 link-table pair) — [addr]/[word] are the
          poked location and its new contents.  The compiled tier installs
          this to invalidate fused call sites whose baked resolution
          depended on the old word.  Shared across clones, like the
          attachment it guards. *)
  mutable devirt : devirt_stats option;
      (** set by the devirtualization pass when it ran over this image;
          [None] means the pass never ran *)
}

type t = {
  mem : Fpc_machine.Memory.t;
  cost : Fpc_machine.Cost.t;
  allocator : Fpc_frames.Alloc_vector.t;
  gft : Gft.t;
  layout : Layout.t;
  linkage : linkage;
  dir : directory;  (** shared across clones *)
  mutable static_cursor : int;  (** next free word in the static region *)
}

val predecode : t -> Fpc_isa.Predecode.t
(** The image's predecoded instruction table, covering the carved code
    region — built on first demand, cached on the shared directory
    (code bytes are fixed at link time).  Purely a host-speed device:
    simulated meters are unaffected. *)

val clone : t -> t
(** An independent copy of the image: the simulated store is duplicated and
    the copy gets a fresh cost meter (same parameters) and a fresh frame
    allocator over the duplicated store; the directory is shared.  Running
    a program {e mutates} its image (frames are carved from the heap,
    globals are written, I1 installs its link tables in the static region),
    so a cached pristine image must be cloned once per execution; the
    original is never touched. *)

val clone_into : arena:t -> t -> unit
(** [clone_into ~arena pristine] resets [arena] — a previously used clone
    of an image content-identical to [pristine] — back to pristine state
    {e in place}: dirty pages of the store are blitted back
    ({!Fpc_machine.Memory.reset_from}), the cost meter and frame allocator
    are recycled ([Cost.reset] / [Alloc_vector.reset]) and the static
    cursor rewound.  No allocation proportional to image size; cost is
    proportional to memory the last run touched.  This is the per-job
    reset of the execution arena — the serving-layer analogue of the
    paper's AV frame heap, which recycles frames instead of paying the
    general allocator per call. *)

val find_instance : t -> string -> instance_info
(** Raises [Not_found]. *)

val find_proc : t -> instance:string -> proc:string -> proc_info
(** Raises [Not_found]. *)

val find_module : t -> string -> Compiled.t
(** The compiled source of a module.  Raises [Not_found]. *)

val descriptor_of : t -> instance:string -> proc:string -> Descriptor.t
(** The packed-able procedure descriptor, bias folded into the gfi. *)

val direct_address : t -> instance:string -> proc:string -> int option
(** Absolute byte address of the procedure's DIRECTCALL header, when it has
    one. *)

val entry_byte_address : t -> instance:string -> proc:string -> int
(** Absolute byte address of the fsi byte. *)

val set_trap_handler : t -> Descriptor.t -> unit
val trap_handler : t -> Descriptor.t

val global_base : int
(** Offset of global 0 within a global frame (2). *)

val gf_code_base : t -> instance:string -> int
(** Unmetered read of the instance's code base. *)

val alloc_static : t -> words:int -> quad:bool -> int
(** Carve words from the static region (link-time).  Raises
    [Invalid_argument] when it would collide with the frame heap. *)

val alloc_code : t -> words:int -> int
(** Carve words from the code region. *)

val set_relink_hook : t -> (addr:int -> word:int -> unit) option -> unit
(** Install (or clear) the shared directory's relink observer. *)

val notify_relink : t -> addr:int -> word:int -> unit
(** Tell the observer (if any) that a link word was re-poked.  Every
    host-side rebind entry point ({!Fpc_mesa.Linker.rebind_lv},
    [Interface.rebind], [Simple_links] reinstall/rebind) calls this after
    the poke. *)
