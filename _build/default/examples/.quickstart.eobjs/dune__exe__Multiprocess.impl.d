examples/multiprocess.ml: Fpc_compiler Fpc_core List Printf String
