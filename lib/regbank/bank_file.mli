(** The register-bank file of §7.

    A small number of register banks (4–8 of ~16 words) each shadow the
    first words of some local frame.  The evaluation stack also lives in a
    bank; on a call that bank is {e renamed} to become the callee's local
    bank, so "the arguments will automatically appear as the first few
    local variables, without any actual data movement" (§7.2, after
    Patterson).  On return the freed frame's bank is released — "its
    contents are unimportant, and never need to be saved in storage".

    Overflow (a frame needs a bank and none is free) writes the {e oldest}
    bank out to its frame; underflow (an XFER lands on a frame with no
    bank) assigns and loads one.  §7.1 reports both happen on under 5 % of
    XFERs with four banks — experiment E6 sweeps this.

    Coherence invariant: while a frame is shadowed, the bank holds the
    truth for its first [shadow_len] words and the frame's storage copy is
    stale; an unshadowed frame is authoritative in storage.  Eviction,
    flush and flagged-frame exits restore storage; release (frame freed)
    discards the bank contents.

    Pointers to locals (§7.4) are served two ways, chosen by
    [pointer_policy]:
    - [Flush_flagged]: frames whose address has been taken (LLA) are
      flushed whenever control leaves them and reloaded on re-entry, so
      ordinary storage instructions see correct data from outside; a
      pointer dereference that hits a {e currently shadowed} frame (a
      same-context pointer, which Pascal-level languages can outlaw) is
      still diverted for safety and counted as a C2 violation.
    - [Divert]: every data reference into the frame region is compared
      against the banks and diverted to the matching register, at
      [divert_penalty_cycles] apiece. *)

type pointer_policy = Flush_flagged | Divert

type config = {
  bank_count : int;
  bank_words : int;
  track_dirty : bool;
      (** "keep track of which registers have been written, to avoid the
          cost of dumping registers which have never been written" *)
  pointer_policy : pointer_policy;
  divert_penalty_cycles : int;
}

val default_config : config
(** 4 banks of 16 words, dirty tracking on, [Flush_flagged], penalty 4. *)

type t

val create :
  ?config:config ->
  mem:Fpc_machine.Memory.t ->
  cost:Fpc_machine.Cost.t ->
  ladder:Fpc_frames.Size_class.t ->
  unit ->
  t

val config : t -> config

val set_on_event : t -> (Fpc_trace.Event.kind -> unit) option -> unit
(** Tracing hook: bank underflow loads fire [Bank_load n] and write-backs
    (eviction, flagged flush, flush-all) fire [Bank_spill n], with [n] the
    words actually moved.  No-op when unset. *)

(** {1 Transfer-path hooks (called by the transfer engine)} *)

val reset : t -> unit
(** Return the file to its just-created state: all banks free, no stack
    bank, flags dropped, statistics zeroed (arena reuse across jobs). *)

val on_call :
  ?nargs:int -> t -> callee_lf:int -> payload_words:int -> args:int array -> unit
(** Rename the current stack bank into the callee's local bank, deposit the
    argument record in its first words (words beyond the shadow spill to
    storage), and acquire a fresh stack bank.  May evict.  Only the first
    [nargs] words of [args] are the record (default: all of it) — the
    transfer engine passes the eval stack's backing buffer directly to
    avoid materialising an argument array per call. *)

val on_call_n :
  t -> nargs:int -> callee_lf:int -> payload_words:int -> args:int array -> unit
(** As {!on_call} with a mandatory [nargs] — the transfer engine's form,
    avoiding the option wrapping a [?nargs] call site would allocate. *)

val ensure_bank : t -> lf:int -> unit
(** Transfer-in: if [lf] has no bank, assign one (possibly evicting) and
    load it from storage — the underflow path.  The shadow window size is
    recovered from the frame's fsi word (one storage reference). *)

val release_frame : t -> lf:int -> unit
(** The frame was freed: drop its bank with no write-back. *)

val on_leave : t -> lf:int -> unit
(** Control is leaving [lf]'s context by a transfer that keeps the frame
    alive.  Under [Flush_flagged], a flagged frame is written back and its
    bank released. *)

val flush_all : t -> unit
(** Process switch or trap: write every bank back and free them all. *)

val flag_frame : t -> lf:int -> unit
(** A pointer to one of [lf]'s locals now exists (LLA executed). *)

val is_flagged : t -> lf:int -> bool

(** {1 Data paths} *)

val read_local : t -> lf:int -> index:int -> int
(** Local variable read: bank reference if shadowed, else storage. *)

val write_local : t -> lf:int -> index:int -> int -> unit

val data_read : t -> addr:int -> int
(** Pointer dereference (RLOAD): diverted to a bank when [addr] falls in a
    shadowed frame's window, else a storage read. *)

val data_write : t -> addr:int -> int -> unit

val resident_len : t -> lf:int -> int
(** Words of [lf]'s resident shadow window, or -1 when no bank owns it —
    the residency guard for the raw accessors below. *)

val raw_read : t -> lf:int -> index:int -> int
(** Unmetered window access for a prepaid compiled block.  The caller
    must have checked [index < resident_len ~lf] with no intervening
    ownership change, charged the bank references ({!Cost.bank_ref_n})
    and counted the metric; data movement is then identical to
    {!read_local}'s bank-hit path. *)

val raw_write : t -> lf:int -> index:int -> int -> unit
(** As {!raw_read} for a write: truncates to a word and marks the
    register dirty, exactly like {!write_local}'s bank-hit path. *)

val has_bank : t -> lf:int -> bool

val bank_index : t -> lf:int -> int
(** Index of the bank shadowing [lf], or -1.  Allocation-free — the
    transfer engine's per-call lookup. *)

val bank_id : t -> lf:int -> int option
(** Option-returning wrapper over {!bank_index} (experiments, tests). *)

val shadow_words : t -> lf:int -> int array option
(** Copy of the shadowed window (tests). *)

(** {1 Statistics} *)

type stats = {
  xfers : int;  (** on_call + ensure_bank invocations *)
  overflows : int;  (** evictions to make room *)
  underflows : int;  (** loads of unshadowed frames on transfer-in *)
  words_written_back : int;
  words_loaded : int;
  flush_events : int;
  flagged_flushes : int;
  diversions : int;
  c2_violations : int;  (** same-context pointer hits under Flush_flagged *)
}

val stats : t -> stats

val check_coherence : t -> (unit, string) result
(** Verify internal maps and bank ownership are consistent (tests). *)
