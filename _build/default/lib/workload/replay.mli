(** Trace replayers: drive a single mechanism with a synthetic trace,
    without the interpreter in the way.  Used by experiments that sweep a
    parameter (bank count, return-stack depth, allocator ladder) over many
    trace shapes cheaply.

    Traces with [Coroutine_switch] events are replayed over [coroutines]
    round-robin activities, each with its own frame stack — the non-LIFO
    pattern §1 says conventional architectures cannot support. *)

type bank_result = {
  bk_stats : Fpc_regbank.Bank_file.stats;
  bk_rate : float;  (** (overflows + underflows) / transfers *)
}

val replay_banks :
  ?bank_words:int ->
  ?coroutines:int ->
  banks:int ->
  Synthetic.event list ->
  bank_result

type return_stack_result = {
  rs_fast_returns : int;
  rs_slow_returns : int;
  rs_flushes : int;
  rs_flushed_entries : int;
  rs_fast_fraction : float;  (** fast returns / all returns *)
}

val replay_return_stack :
  depth:int -> ?coroutines:int -> Synthetic.event list -> return_stack_result

type alloc_result = {
  al_stats : Fpc_frames.Alloc_vector.stats;
  al_fragmentation : float;
  al_mem_refs_per_alloc : float;
  al_mem_refs_per_free : float;
}

val replay_allocator :
  ?ladder:Fpc_frames.Size_class.t ->
  ?coroutines:int ->
  Synthetic.event list ->
  alloc_result

type baseline_result = {
  bl_words_written : int;
  bl_words_read : int;
  bl_high_water_total : int;  (** sum of per-activity stack high-water marks *)
  bl_calls : int;
}

val replay_baseline :
  ?config:Fpc_baseline.Stack_machine.config ->
  ?coroutines:int ->
  Synthetic.event list ->
  baseline_result
