lib/experiments/e14_equivalence.ml: Array Convention Exp Fpc_compiler Fpc_core Fpc_interp Fpc_mesa Fpc_util Fpc_workload Harness Image Linker List Printf Tablefmt
