lib/workload/synthetic.mli: Fpc_util
