lib/experiments/harness.ml: Fpc_compiler Fpc_core Fpc_interp Fpc_workload List Printf
