(** The TCP front-end over {!Fpc_svc.Pool}: newline-delimited
    {!Fpc_svc.Job} request lines in, one JSON result line per job out.

    Thread/domain layout: one acceptor thread multiplexes the listening
    socket against a self-pipe (the drain signal); a fixed set of
    connection-handler threads (one per admissible connection) runs each
    connection's read side; each live connection gets one writer thread
    that emits results {e in submission order}; and the jobs themselves
    execute on the {!Fpc_svc.Pool}'s worker domains.  Results travel
    from worker to writer through the pool's [deliver] hook — the record
    is handed over directly, with no shard list, no sort and no second
    copy.

    Per connection, job results come back in the order the requests were
    sent, so a single connection's output for a jobfile is byte-identical
    to [fpc batch --json] on the same file.  Refusals (bad request,
    overlong line, shed) and admin responses are written as soon as the
    offending line is read, and may therefore interleave ahead of
    earlier jobs' results; they carry [id:null] so clients can tell.

    Admission control ({!Limiter}): over the connection cap, the
    connection is answered with one shed line and closed; over the
    pending-jobs bound, the request is answered with a shed line and not
    executed.  Nothing queues without bound.

    Graceful drain ({!request_drain}, a [shutdown] admin line, or — wired
    in [bin/fpc] — SIGTERM): stop accepting, shed queued-but-unserved
    connections, shut the read side of live connections, flush every
    in-flight job's result, then {!wait} returns the final metrics.
    {!request_drain} itself only sets a flag and writes the self-pipe, so
    it is safe from a signal handler. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?domains:int ->
  ?max_connections:int ->
  ?max_pending:int ->
  ?max_line:int ->
  ?times:bool ->
  ?tier:Fpc_svc.Job.tier ->
  unit ->
  t
(** Bind, listen and start serving.  Defaults: host ["127.0.0.1"], port
    [0] (ephemeral — read it back with {!port}), {!Fpc_svc.Pool}'s
    recommended domain count, {!Limiter}'s caps,
    {!Framing.default_max_line}, [times:true] (include host timings in
    result JSON; [false] gives fully deterministic output), [tier:Auto]
    (the default execution tier for requests that carry no explicit
    [tier=] key; an explicit key always wins).  Installs a SIGPIPE-ignore
    handler (a dead peer must read as an I/O error, not kill the
    process). *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val request_drain : t -> unit
(** Begin a graceful drain; idempotent, non-blocking, async-signal-safe
    (one atomic store and one pipe write). *)

val draining : t -> bool

val stats_json : t -> Fpc_util.Jsonout.t
(** The [/stats] payload: a ["server"] object (port, draining flag,
    limiter counters) and a ["pool"] object ({!Fpc_svc.Metrics.to_json}
    of the live tally, shed and pending-watermark counters folded in). *)

val wait : t -> Fpc_svc.Metrics.snapshot
(** Block until a drain is requested and completes: every accepted
    request answered, every thread joined, the pool shut down.  Returns
    the final metrics (the "stats line" of the drain protocol).  Call
    once. *)
