(** E12 — §7.4: pointers to locals (C1/C2).

    VAR parameters create addresses of locals.  Two treatments are
    implemented: flagged frames ("a flagged frame is flushed to storage
    whenever control leaves its context") and diversion ("the reference
    can be diverted to read or write the proper register...  such
    references are not common, and hence the cost will be small").

    We compare an inlined (pointer-free) variant of the same computation
    against the VAR-parameter version under both policies. *)

open Fpc_util

(* Pointer-free baseline with the same call count per iteration: the step
   is a call taking and returning values, so the difference against the
   VAR version is exactly the pointers-to-locals machinery. *)
let src_inline =
  {|
MODULE Main;
PROC next(n: INT): INT =
  IF n MOD 2 = 0 THEN
    RETURN n / 2;
  END;
  RETURN 3 * n + 1;
END;
PROC collatz(n0: INT): INT =
  VAR n: INT := n0;
  VAR s: INT := 0;
  WHILE n # 1 DO
    n := next(n);
    s := s + 1;
  END;
  RETURN s;
END;
PROC main() =
  OUTPUT collatz(27);
  OUTPUT collatz(97);
  OUTPUT collatz(255);
END;
END;
|}

(* VAR-parameter version: every step takes pointers to the caller's
   locals. *)
let src_var =
  {|
MODULE Main;
PROC step(VAR n: INT, VAR steps: INT) =
  IF n MOD 2 = 0 THEN
    n := n / 2;
  ELSE
    n := 3 * n + 1;
  END;
  steps := steps + 1;
END;
PROC collatz(n0: INT): INT =
  VAR n: INT := n0;
  VAR s: INT := 0;
  WHILE n # 1 DO
    step(n, s);
  END;
  RETURN s;
END;
PROC main() =
  OUTPUT collatz(27);
  OUTPUT collatz(97);
  OUTPUT collatz(255);
END;
END;
|}

let run_src ~policy src =
  let config = { Fpc_regbank.Bank_file.default_config with pointer_policy = policy } in
  let engine = Fpc_core.Engine.i4 ~bank_config:config () in
  let convention = Fpc_compiler.Convention.for_engine engine in
  let image =
    match Fpc_compiler.Compile.image ~convention src with
    | Ok i -> i
    | Error m -> failwith m
  in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  Harness.must_halt st;
  st

let run () =
  let t =
    Tablefmt.create ~title:"Cost of pointers to locals (engine I4)"
      ~columns:
        [
          ("variant", Tablefmt.Left);
          ("cycles", Tablefmt.Right);
          ("storage refs", Tablefmt.Right);
          ("flagged flushes", Tablefmt.Right);
          ("diversions", Tablefmt.Right);
          ("output", Tablefmt.Left);
        ]
  in
  let open Fpc_machine in
  let row label st =
    let bstats =
      match st.Fpc_core.State.banks with
      | Some b -> Fpc_regbank.Bank_file.stats b
      | None -> failwith "no banks"
    in
    Tablefmt.add_row t
      [
        label;
        Tablefmt.cell_int (Cost.cycles st.Fpc_core.State.cost);
        Tablefmt.cell_int (Cost.mem_refs st.cost);
        Tablefmt.cell_int bstats.flagged_flushes;
        Tablefmt.cell_int bstats.diversions;
        String.concat ";" (List.map string_of_int (Fpc_core.State.output st));
      ];
    (Cost.cycles st.cost, Fpc_core.State.output st)
  in
  let base, out0 = row "value params (no pointers)" (run_src ~policy:Flush_flagged src_inline) in
  let flagged, out1 = row "VAR params, flagged-flush" (run_src ~policy:Flush_flagged src_var) in
  let divert, out2 = row "VAR params, divert" (run_src ~policy:Divert src_var) in
  Tablefmt.add_note t
    "all variants compute the same answers; VAR parameters pay for the \
     extra calls and the C2 machinery";
  let correct = out0 = out1 && out1 = out2 in
  {
    Exp.id = "E12";
    key = "ptr_locals";
    title = "Pointers to locals: flagged frames vs diversion";
    paper_claim =
      "flag frames with pointers and flush them on exit, or divert \
       matching references to the register; either way the cost is small \
       because such references are rare (\xC2\xA77.4)";
    tables = [ Tablefmt.render t ];
    headlines =
      [
        ("flagged_overhead", Harness.ratio flagged base -. 1.0);
        ("divert_overhead", Harness.ratio divert base -. 1.0);
        ("outputs_agree", if correct then 1.0 else 0.0);
      ];
  }
