type entry = { e_name : string; e_lo : int; e_hi : int }

type t = { entries : entry array }

let create ranges =
  let ranges =
    List.filter (fun (_, lo, hi) -> hi > lo) ranges
    |> List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b)
  in
  (* Drop exact duplicates (instances of one module share code ranges);
     anything else overlapping is a caller bug. *)
  let rec dedup = function
    | (n1, lo1, hi1) :: (_, lo2, hi2) :: rest when lo1 = lo2 && hi1 = hi2 ->
      dedup ((n1, lo1, hi1) :: rest)
    | (n1, lo1, hi1) :: ((_, lo2, _) :: _ as rest) ->
      if lo2 < hi1 then
        invalid_arg
          (Printf.sprintf "Procmap.create: %s [%d,%d) overlaps next range at %d"
             n1 lo1 hi1 lo2);
      (n1, lo1, hi1) :: dedup rest
    | short -> short
  in
  let ranges = dedup ranges in
  {
    entries =
      Array.of_list
        (List.map (fun (e_name, e_lo, e_hi) -> { e_name; e_lo; e_hi }) ranges);
  }

let count t = Array.length t.entries

let id_of_pc t pc =
  let lo = ref 0 and hi = ref (Array.length t.entries - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let e = t.entries.(mid) in
    if pc < e.e_lo then hi := mid - 1
    else if pc >= e.e_hi then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  !found

let name t id =
  if id >= 0 && id < Array.length t.entries then t.entries.(id).e_name
  else "(unknown)"

let find t n =
  let rec go i =
    if i >= Array.length t.entries then None
    else if String.equal t.entries.(i).e_name n then Some i
    else go (i + 1)
  in
  go 0
