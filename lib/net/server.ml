open Fpc_svc
open Fpc_reactor

(* Backpressure bounds on a connection's output backlog: past the high
   water mark we stop reading its requests (the kernel then pushes back
   on the client); below the low mark we resume. *)
let out_hwm = 1 lsl 20
let out_lwm = 64 * 1024

(* One live connection — owned entirely by the loop thread, so no field
   here needs a lock.  [expected] is the submission-order queue of pool
   job ids this connection is still owed; [ready] holds rendered result
   lines whose turn has not come.  Responses leave in request order
   however the pool reorders completion. *)
type conn = {
  c_id : int;
  fd : Unix.file_descr;
  mutable watcher : Loop.watcher option;
  fr : Framing.t;  (** push-mode line assembly *)
  ob : Outbuf.t;
  expected : int Queue.t;
  ready : (int, string) Hashtbl.t;
  mutable input_done : bool;  (** EOF / half-close seen; drain and close *)
  mutable want_write : bool;
  mutable paused : bool;  (** read interest dropped: output backlog high *)
  mutable closed : bool;
}

(* Where a job's answer goes, plus the deadline timer racing it. *)
type route = {
  r_conn : conn;
  r_spec : Job.spec;
  mutable r_timer : Wheel.timer option;
}

type t = {
  pool : Pool.t;
  limiter : Limiter.t;
  loop : Loop.t;
  listen_fd : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  times : bool;
  tier : Job.tier;  (** default for requests without an explicit tier= *)
  devirt : bool;  (** default for requests without an explicit devirt= *)
  max_line : int;
  sndbuf : int option;  (** test hook: SO_SNDBUF for accepted sockets *)
  read_buf : Bytes.t;  (** loop-confined read scratch *)
  (* job id -> route; loop-confined *)
  routes : (int, route) Hashtbl.t;
  (* live connections by id; loop-confined *)
  conns : (int, conn) Hashtbl.t;
  mutable listen_w : Loop.watcher option;
  mutable conn_ids : int;
  (* server-side counters (sheds, pending watermark, timer deadlines)
     folded into the pool tally at snapshot time.  The mutex covers the
     one cross-thread reader: a snapshot taken from [wait]. *)
  server_metrics : Metrics.t;
  sm_m : Mutex.t;
  mutable loop_thread : Thread.t option;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let shutdown_receive fd =
  try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ()

let port t = t.port
let draining t = Atomic.get t.stopping

let merged_tally t =
  let tally = Pool.metrics_tally t.pool in
  Mutex.lock t.sm_m;
  Metrics.merge_into ~src:t.server_metrics ~into:tally;
  Mutex.unlock t.sm_m;
  tally

let snapshot_now t =
  let tally = merged_tally t in
  Metrics.snapshot tally
    ~wall_s:(Unix.gettimeofday () -. Pool.started_at t.pool)
    ~cache:(Image_cache.stats (Pool.cache t.pool))

let stats_json t =
  let open Fpc_util.Jsonout in
  let ls = Limiter.stats t.limiter in
  Obj
    [
      ( "server",
        Obj
          [
            ("port", Int t.port);
            ("backend", String (Loop.backend_name t.loop));
            ("draining", Bool (Atomic.get t.stopping));
            ("connections", Int ls.connections);
            ("max_connections", Int ls.max_connections);
            ("pending", Int ls.pending);
            ("max_pending", Int ls.max_pending);
            ("shed_connections", Int ls.shed_connections);
          ] );
      ("pool", Metrics.to_json (snapshot_now t));
    ]

let note_shed t =
  Mutex.lock t.sm_m;
  Metrics.note_shed t.server_metrics;
  Mutex.unlock t.sm_m

(* ---- the connection state machine (loop thread only) ---- *)

let update_interest t conn =
  match conn.watcher with
  | None -> ()
  | Some w ->
    if not conn.closed then
      Loop.interest t.loop w
        ~read:((not conn.input_done) && not conn.paused)
        ~write:conn.want_write

let rec close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (match conn.watcher with Some w -> Loop.unwatch t.loop w | None -> ());
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns conn.c_id;
    (* orphan any jobs still owed: their results (and timers) are
       dropped on arrival.  The limiter's pending slots stay held until
       the pool actually answers, which keeps the execution backlog
       bounded even when clients vanish. *)
    Queue.iter
      (fun id ->
        match Hashtbl.find_opt t.routes id with
        | None -> ()
        | Some rt ->
          (match rt.r_timer with
          | Some tm ->
            Loop.cancel t.loop tm;
            rt.r_timer <- None
          | None -> ());
          Hashtbl.remove t.routes id)
      conn.expected;
    Queue.clear conn.expected;
    Hashtbl.reset conn.ready;
    Limiter.release_connection t.limiter;
    if Atomic.get t.stopping && Hashtbl.length t.conns = 0 then
      Loop.stop t.loop
  end

and maybe_close t conn =
  if
    (not conn.closed) && conn.input_done
    && Queue.is_empty conn.expected
    && Outbuf.is_empty conn.ob
  then close_conn t conn

and update_backpressure t conn =
  if not conn.closed then begin
    let len = Outbuf.length conn.ob in
    if (not conn.paused) && len > out_hwm then conn.paused <- true
    else if conn.paused && len <= out_lwm then conn.paused <- false;
    update_interest t conn
  end

and flush_conn t conn =
  if not conn.closed then
    match Outbuf.flush conn.ob conn.fd with
    | Outbuf.Error -> close_conn t conn
    | Outbuf.Flushed ->
      conn.want_write <- false;
      update_backpressure t conn;
      maybe_close t conn
    | Outbuf.Partial ->
      conn.want_write <- true;
      update_backpressure t conn

(* Refusals and admin responses go straight out (possibly ahead of
   earlier jobs' results — they carry id:null so clients can tell);
   job results wait their ordered turn in [pump_ready]. *)
and conn_send t conn line =
  if not conn.closed then begin
    Outbuf.add_string conn.ob line;
    Outbuf.add_string conn.ob "\n";
    flush_conn t conn
  end

and pump_ready t conn =
  if not conn.closed then begin
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt conn.expected with
      | None -> continue := false
      | Some id -> (
        match Hashtbl.find_opt conn.ready id with
        | None -> continue := false
        | Some line ->
          Hashtbl.remove conn.ready id;
          ignore (Queue.pop conn.expected);
          Outbuf.add_string conn.ob line;
          Outbuf.add_string conn.ob "\n";
          progressed := true)
    done;
    if !progressed then flush_conn t conn else maybe_close t conn
  end

(* A worker finished job [id]; [line] was rendered on the worker domain.
   Runs on the loop thread (posted). *)
and on_result t id line =
  match Hashtbl.find_opt t.routes id with
  | None -> ()  (* connection gone, or the deadline timer already answered *)
  | Some rt ->
    (match rt.r_timer with
    | Some tm ->
      Loop.cancel t.loop tm;
      rt.r_timer <- None
    | None -> ());
    Hashtbl.remove t.routes id;
    if not rt.r_conn.closed then begin
      Hashtbl.replace rt.r_conn.ready id line;
      pump_ready t rt.r_conn
    end

(* Job [id]'s deadline elapsed with the answer still owed (queued or
   executing): synthesize the deadline reply into its ordered slot now.
   The pool's own result is dropped when it lands (no route), and only
   that delivery releases the limiter slot — never this path. *)
and on_deadline t id =
  match Hashtbl.find_opt t.routes id with
  | None -> ()
  | Some rt ->
    rt.r_timer <- None;
    Hashtbl.remove t.routes id;
    Mutex.lock t.sm_m;
    Metrics.note_timer_deadline t.server_metrics;
    Mutex.unlock t.sm_m;
    if not rt.r_conn.closed then begin
      let ms = Option.value rt.r_spec.Job.deadline_ms ~default:0 in
      let reply =
        {
          Job.id;
          spec = rt.r_spec;
          outcome =
            Job.Failed
              ( Job.Deadline_exceeded,
                Printf.sprintf "deadline of %d ms exceeded" ms );
          stats = Job.no_stats;
          profile = None;
          sched = None;
        }
      in
      Hashtbl.replace rt.r_conn.ready id
        (Fpc_util.Jsonout.to_string (Job.result_to_json ~times:t.times reply));
      pump_ready t rt.r_conn
    end

and handle_job t conn line =
  match Job.parse_request line with
  | Error msg ->
    conn_send t conn (Protocol.error_line ~error:"bad-request" ~message:msg)
  | Ok spec ->
    (* A request that left the tier (or devirt) to the service gets the
       server's default; an explicit key always wins. *)
    let spec =
      match spec.Job.tier with
      | Job.Auto -> { spec with Job.tier = t.tier }
      | _ -> spec
    in
    let spec =
      match spec.Job.devirt with
      | None -> { spec with Job.devirt = Some t.devirt }
      | Some _ -> spec
    in
    if Atomic.get t.stopping then begin
      note_shed t;
      conn_send t conn (Protocol.shed_line ~message:"server is draining")
    end
    else begin
      match Limiter.try_admit_job t.limiter with
      | None ->
        note_shed t;
        conn_send t conn
          (Protocol.shed_line ~message:"pending-jobs limit reached")
      | Some depth ->
        Mutex.lock t.sm_m;
        Metrics.observe_pending t.server_metrics depth;
        Mutex.unlock t.sm_m;
        (* No registration race: delivery reaches this state only via a
           post, which cannot run before this callback returns. *)
        let id = Pool.submit t.pool spec in
        let rt = { r_conn = conn; r_spec = spec; r_timer = None } in
        Hashtbl.replace t.routes id rt;
        Queue.push id conn.expected;
        (* The timer is armed at admission, so the deadline covers queue
           wait as well as execution — a job stuck behind a full pool is
           answered on time, which threads could never do. *)
        match spec.Job.deadline_ms with
        | Some ms ->
          rt.r_timer <- Some (Loop.after t.loop ~ms (fun () -> on_deadline t id))
        | None -> ()
    end

and process_items t conn =
  if not conn.closed then
    match Framing.poll conn.fr with
    | None -> ()
    | Some Framing.Eof ->
      conn.input_done <- true;
      update_interest t conn;
      maybe_close t conn
    | Some (Framing.Overlong n) ->
      conn_send t conn
        (Protocol.error_line ~error:"overlong-line"
           ~message:
             (Protocol.overlong_message ~bytes_discarded:n ~limit:t.max_line));
      process_items t conn
    | Some (Framing.Line line) ->
      let s = String.trim line in
      if String.length s = 0 || s.[0] = '#' then process_items t conn
      else begin
        (match Protocol.admin_of_line s with
        | Some Protocol.Stats ->
          conn_send t conn (Fpc_util.Jsonout.to_string (stats_json t))
        | Some Protocol.Shutdown ->
          conn_send t conn Protocol.draining_line;
          request_drain t
        | None -> handle_job t conn s);
        process_items t conn
      end

and finish_input t conn =
  if (not conn.closed) && not conn.input_done then begin
    Framing.input_closed conn.fr;
    (* flushes a final unterminated line, then yields Eof *)
    process_items t conn
  end

and on_conn_readable t conn =
  if not conn.closed then begin
    (* one bounded read per readiness event: level-triggered polling
       re-reports leftover bytes, and no connection can starve the rest *)
    match Unix.read conn.fd t.read_buf 0 (Bytes.length t.read_buf) with
    | 0 -> finish_input t conn
    | n ->
      Framing.feed conn.fr (Bytes.sub_string t.read_buf 0 n) 0 n;
      process_items t conn
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
      (* reset mid-request: nothing more can be written either *)
      close_conn t conn
  end

and new_conn t fd =
  let c_id = t.conn_ids in
  t.conn_ids <- t.conn_ids + 1;
  let conn =
    {
      c_id;
      fd;
      watcher = None;
      fr = Framing.pushable ~max_line:t.max_line ();
      ob = Outbuf.create ();
      expected = Queue.create ();
      ready = Hashtbl.create 8;
      input_done = false;
      want_write = false;
      paused = false;
      closed = false;
    }
  in
  let w =
    Loop.watch t.loop fd
      ~on_readable:(fun () -> on_conn_readable t conn)
      ~on_writable:(fun () -> flush_conn t conn)
      ()
  in
  conn.watcher <- Some w;
  Hashtbl.replace t.conns c_id conn;
  Loop.interest t.loop w ~read:true ~write:false

and on_accept t =
  if not (Atomic.get t.stopping) then begin
    match Unix.accept t.listen_fd with
    | exception
        Unix.Unix_error
          ( (Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK),
            _,
            _ ) ->
      ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      (match t.sndbuf with
      | Some n -> (
        try Unix.setsockopt_int fd Unix.SO_SNDBUF n
        with Unix.Unix_error _ -> ())
      | None -> ());
      if Limiter.try_admit_connection t.limiter then begin
        Unix.set_nonblock fd;
        new_conn t fd
      end
      else begin
        (try
           write_all fd
             (Protocol.shed_line ~message:"connection limit reached" ^ "\n")
         with Unix.Unix_error _ | Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end;
      (* accept the whole burst before returning to the backend *)
      on_accept t
  end

(* Drain, on the loop thread: stop listening, mark every connection's
   input as over (in-flight jobs still flush in order), and let the loop
   stop once the last connection closes. *)
and begin_drain t =
  (match t.listen_w with
  | Some w ->
    Loop.unwatch t.loop w;
    t.listen_w <- None
  | None -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter
    (fun conn ->
      if not conn.closed then begin
        shutdown_receive conn.fd;
        finish_input t conn;
        update_interest t conn
      end)
    cs;
  if Hashtbl.length t.conns = 0 then Loop.stop t.loop

and request_drain t =
  if Atomic.compare_and_set t.stopping false true then
    Loop.post t.loop (fun () -> begin_drain t)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      invalid_arg (Printf.sprintf "Server.create: cannot resolve host %S" host))

let create ?(host = "127.0.0.1") ?(port = 0) ?domains ?max_connections
    ?max_pending ?(max_line = Framing.default_max_line) ?(times = true)
    ?(tier = Fpc_svc.Job.Auto) ?(devirt = true) ?backend ?sndbuf () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let limiter = Limiter.create ?max_connections ?max_pending () in
  let loop = Loop.create ?backend () in
  (* The result handoff: the worker domain that completed the job
     renders its JSON line right there (spreading the serialization cost
     across domains), releases the admission slot, and posts the line
     into the loop, which owns all routing state. *)
  let t_ref = ref None in
  let deliver (r : Job.result) =
    Limiter.release_job limiter;
    match !t_ref with
    | None -> ()
    | Some t ->
      let line =
        Fpc_util.Jsonout.to_string (Job.result_to_json ~times r)
      in
      Loop.post loop (fun () -> on_result t r.Job.id line)
  in
  let pool = Pool.create ?domains ~deliver () in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (resolve_host host, port));
     (* a C10K accept storm arrives faster than one thread can accept *)
     Unix.listen listen_fd 1024;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Pool.shutdown pool;
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      pool;
      limiter;
      loop;
      listen_fd;
      port;
      stopping = Atomic.make false;
      times;
      tier;
      devirt;
      max_line;
      sndbuf;
      read_buf = Bytes.create 65536;
      routes = Hashtbl.create 64;
      conns = Hashtbl.create 64;
      listen_w = None;
      conn_ids = 0;
      server_metrics = Metrics.create ~domains:1;
      sm_m = Mutex.create ();
      loop_thread = None;
    }
  in
  t_ref := Some t;
  let lw = Loop.watch loop listen_fd ~on_readable:(fun () -> on_accept t) () in
  t.listen_w <- Some lw;
  Loop.interest loop lw ~read:true ~write:false;
  t.loop_thread <- Some (Thread.create Loop.run loop);
  t

let wait t =
  (match t.loop_thread with Some th -> Thread.join th | None -> ());
  Pool.drain t.pool;
  let snap = snapshot_now t in
  Pool.shutdown t.pool;
  snap
