(** Link-time devirtualization: a control-flow analysis over a linked
    image that rewrites late-bound EXTERNALCALL sites onto the DIRECTCALL
    fast path of §6.

    The compiler (under its [devirt] option) emits external calls in a
    padded 4-byte shape and records them in
    {!Fpc_mesa.Compiled.proc.p_efc_sites}; the linker lays out DIRECTCALL
    headers for single-instance procedures.  This pass then walks the
    interprocedural call graph the link tables define and patches, in
    place, every site whose target is provably unique — the 3-byte
    SHORTDIRECTCALL form when the displacement is within ±512 KB, the
    4-byte absolute form otherwise.  Everything else abstains and keeps
    the general late-bound scheme, exactly the D2 discipline.

    A site is proven only when {e all} of:

    - the whole image is store-safe: no program store can reach a word
      the link-time resolution depends on (LV entries, GFT, gf code-base
      words, EV entries, the simple engine's link-table pairs).  The scan
      is a conservative one-pass abstract-stack walk of every body;
      runtime-indexed stores ([Slx]/[Sgx]/[Stfld]) and [Rstore] through
      anything but a fresh [Lla]/[Lga] address (e.g. a forwarded VAR
      parameter — interprocedural provenance is deliberately not
      attempted) make the image abstain wholesale;
    - the target module has exactly one instance, so the target carries a
      DIRECTCALL header and no per-instance binding choice remains;
    - the site bytes still hold the recorded padded EFC.

    Rewritten outputs are re-verified by decoding the patched bytes back
    (the same decode the interpreter and the E14 relocation probes use)
    and checking they transfer to the proven target.

    Caveat — host-side relinking: {!Fpc_mesa.Linker.rebind_lv},
    [rebind_lv_to_frame] and [instantiate] change bindings {e after}
    linking and can invalidate a rewrite.  The serving layer never calls
    them on devirtualized images (the relink experiments link with
    [devirt] off); callers that relink must do the same. *)

val devirtualize : Fpc_mesa.Image.t -> Fpc_mesa.Image.devirt_stats
(** Run the pass over a freshly linked image, patching proven sites in
    place and recording the outcome on [image.dir.devirt] (also
    returned).  Must run before execution state is created so the
    predecode table is derived from the rewritten bytes (the pass drops a
    prematurely built table).  Raises [Invalid_argument] if a patched
    site fails re-verification. *)

val image_store_safe : Fpc_mesa.Image.t -> bool
(** The store-hazard scan on its own: [true] when every store in every
    body is provably unable to reach a link-time-resolved word.  Exposed
    for tests and experiments. *)
