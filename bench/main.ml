(* The benchmark harness.

   Two layers:

   1. The experiment tables — one per figure/table/quantitative claim of
      the paper (E1..E14), printed in full.  These are the reproduction's
      primary output; pass experiment keys (or E-ids) as arguments to run a
      subset, e.g. `dune exec bench/main.exe -- fastpath frame_alloc`.

   2. Bechamel micro-benchmarks of the simulator itself (host wall-clock),
      so regressions in the reproduction's own code are visible: the
      interpreter under each engine, the AV allocator, the return stack and
      the bank file.  Enabled with the `micro` argument.

   3. The execution-service scaling benchmark (`svc` argument): the
      whole workload suite x all four engines pushed through an
      Fpc_svc.Pool at 1, 2, 4 and 8 worker domains, reporting jobs/sec
      and the speedup over one domain.  The cache is warmed and the
      domains are spawned before the clock starts; only submit->await
      is timed.

   4. The tracing-overhead benchmark (`trace` argument): the call-heavy
      fib run with the XFER tracer absent (the null-sink path every
      ordinary run takes) versus attached with a streaming profile, so
      the cost of the lib/trace subsystem — off and on — is a recorded
      number rather than a claim.

   5. The session-scheduler benchmark (`sched` argument): the generated
      session workload streamed through the lib/sched green-thread
      scheduler at 100/1k/10k sessions under both execution tiers,
      recording throughput and the frame-heap-vs-LIFO footprint keys
      (the `sched/sessions` section).

   6. The TCP serving benchmark (`net` argument): an in-process
      lib/net server driven closed-loop by Fpc_net.Loadgen at 1, 2 and
      4 connections, recording throughput and round-trip latency
      percentiles (the `net/latency` section).  With `--port` it
      targets an already-running `fpc serve --tcp` instead (the CI
      serve-smoke step), and `--shutdown` sends the server a graceful
      drain afterwards.  The non-smoke run continues into the
      high-concurrency ladder: a spawned `fpc serve --tcp` subprocess
      driven at 100 and 1000 pipelined connections while a poller
      samples the server's /proc thread and fd tables, recording
      latency percentiles plus the observed footprint
      (`net/latency/100c`, `net/latency/1000c`) and failing if the
      server's OS thread count ever exceeds the reactor's constant
      bound.  `--conns N [--pipeline K]` runs just that ladder, capped
      at N connections — the CI reactor-smoke step is
      `bench net --conns 200`.

   With no arguments all six layers run.  `--smoke` shrinks the svc,
   trace, sched and net layers to a seconds-long CI sanity pass (tiny job set,
   widths 1-2, nothing recorded).  `--json` additionally writes
   every recorded (name, metric, value) measurement to
   BENCH_results.json, the perf-trajectory file tracked across PRs:
   prior entries are carried over and only re-measured (name, metric)
   pairs are replaced, so the file accumulates instead of resetting. *)

(* Measurements destined for BENCH_results.json, in recording order. *)
let recorded : (string * string * float) list ref = ref []
let record name metric value = recorded := (name, metric, value) :: !recorded

let read_prior path =
  if not (Sys.file_exists path) then []
  else
    match Fpc_util.Jsonin.parse_file path with
    | Ok (Fpc_util.Jsonout.List entries) ->
      List.filter_map
        (function
          | Fpc_util.Jsonout.Obj fields -> (
            match
              ( List.assoc_opt "name" fields,
                List.assoc_opt "metric" fields,
                List.assoc_opt "value" fields )
            with
            | ( Some (Fpc_util.Jsonout.String n),
                Some (Fpc_util.Jsonout.String m),
                Some v ) -> (
              match v with
              | Fpc_util.Jsonout.Float f -> Some (n, m, f)
              | Fpc_util.Jsonout.Int i -> Some (n, m, float_of_int i)
              | _ -> None)
            | _ -> None)
          | _ -> None)
        entries
    | Ok _ | Error _ -> []

let prior_value prior name metric =
  List.find_map
    (fun (n, m, v) -> if n = name && m = metric then Some v else None)
    prior

let write_json path =
  let open Fpc_util.Jsonout in
  let fresh = List.rev !recorded in
  let remeasured = List.map (fun (n, m, _) -> (n, m)) fresh in
  let carried =
    List.filter (fun (n, m, _) -> not (List.mem (n, m) remeasured)) (read_prior path)
  in
  let entries =
    List.map
      (fun (name, metric, value) ->
        Obj [ ("name", String name); ("metric", String metric); ("value", Float value) ])
      (carried @ fresh)
  in
  let oc = open_out path in
  output_string oc (pretty (List entries));
  close_out oc;
  Printf.printf "wrote %d measurements to %s (%d carried over, %d new)\n"
    (List.length entries) path (List.length carried) (List.length fresh)

let run_experiments filter =
  let wanted (key, _) =
    match filter with [] -> true | names -> List.mem key names
  in
  let selected = List.filter wanted Fpc_experiments.Registry.all in
  let selected =
    if selected = [] && filter <> [] then
      (* maybe ids like E4 were given *)
      List.filter_map
        (fun name ->
          Option.map (fun f -> (name, f)) (Fpc_experiments.Registry.find name))
        filter
    else selected
  in
  List.iter
    (fun (_, f) ->
      print_string (Fpc_experiments.Exp.render (f ()));
      print_newline ())
    selected

(* ------------------------------------------------------------------ *)

let fib_image engine =
  let convention = Fpc_compiler.Convention.for_engine engine in
  match Fpc_compiler.Compile.image ~convention (Fpc_workload.Programs.find "fib") with
  | Ok image -> image
  | Error m -> failwith m

let bench_engine name engine =
  let image = fib_image engine in
  Bechamel.Test.make ~name:(Printf.sprintf "interp/fib/%s" name)
    (Bechamel.Staged.stage (fun () ->
         let st =
           Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main"
             ~proc:"main" ~args:[] ()
         in
         assert (st.Fpc_core.State.status = Fpc_core.State.Halted)))

let median_run_s ?(samples = 7) ?(runs = 5) f =
  f ();
  (* warm up caches and the minor heap *)
  let samples =
    List.init samples (fun _ ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to runs do
          f ()
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int runs)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

(* The compiled tier on the same workload: boot is shared with the
   interpreter path, so the delta between interp/fib/* and tier/fib/* is
   exactly the dispatch loop versus threaded code. *)
let bench_tier name engine =
  let image = fib_image engine in
  let tier, _ = Fpc_tier.Tier.of_image image in
  Bechamel.Test.make ~name:(Printf.sprintf "tier/fib/%s" name)
    (Bechamel.Staged.stage (fun () ->
         let st =
           Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
             ~args:[] ()
         in
         Fpc_tier.Tier.run tier st;
         assert (st.Fpc_core.State.status = Fpc_core.State.Halted)))

(* Translation time: what attaching the compiled tier to a freshly
   linked image costs, per engine, on the call-heavy fib image.  One-time
   per cached image, but it sits on the first-request path. *)
let run_tier_compile () =
  let open Fpc_util.Tablefmt in
  let tb =
    create ~title:"tier translation time (fib image, host wall-clock)"
      ~columns:
        [ ("engine", Left); ("boundaries", Right); ("fused", Right);
          ("translate", Right) ]
  in
  List.iter
    (fun (name, engine) ->
      let image = fib_image engine in
      let t = Fpc_tier.Tier.translate image in
      let ms = median_run_s (fun () -> ignore (Fpc_tier.Tier.translate image)) *. 1e3 in
      record ("compile/fib/" ^ name) "translate_ms" ms;
      add_row tb
        [ name; cell_int (Fpc_tier.Tier.boundaries t);
          cell_int (Fpc_tier.Tier.fused_boundaries t);
          Printf.sprintf "%.3f ms" ms ])
    [ ("I1", Fpc_core.Engine.i1); ("I2", Fpc_core.Engine.i2);
      ("I3", Fpc_core.Engine.i3 ()); ("I4", Fpc_core.Engine.i4 ()) ];
  add_note tb "translate once per cached image; every clone shares the result";
  print tb;
  print_newline ()

(* Cross-call fusion on the call-dense kernels: the interpreter versus
   the compiled tier, per engine, on loops that are almost entirely leaf
   procedure calls.  The tier side uses the lazy of_image path, so the
   observation run also yields the fusion/laziness counters recorded to
   BENCH_results.json: fused-call coverage (fused calls / all calls),
   lazy translation misses (procedures translated on first entry, cold)
   and hits (warm-run procedure entries served by already-filled slots —
   spliced leaves never even need their own translation). *)
let run_tier_calls ?(smoke = false) () =
  let open Fpc_util.Tablefmt in
  let tb =
    create
      ~title:"cross-call fusion on call-dense kernels (host wall-clock)"
      ~columns:
        [ ("prog", Left); ("engine", Left); ("interp", Right); ("tier", Right);
          ("speedup", Right); ("fused cov", Right); ("lazy m/h", Right) ]
  in
  List.iter
    (fun prog ->
      List.iter
        (fun (ename, engine) ->
          let convention = Fpc_compiler.Convention.for_engine engine in
          let image =
            match
              Fpc_compiler.Compile.image ~convention
                (Fpc_workload.Programs.find prog)
            with
            | Ok i -> i
            | Error m -> failwith ("tier calls bench compile: " ^ m)
          in
          let tier, _ = Fpc_tier.Tier.of_image image in
          let boot () =
            Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
              ~args:[] ()
          in
          let run_tier () =
            let st = boot () in
            Fpc_tier.Tier.run tier st;
            assert (st.Fpc_core.State.status = Fpc_core.State.Halted);
            st
          in
          (* cold observation run: lazy translation happens here *)
          let cold = run_tier () in
          let lazy_miss =
            cold.Fpc_core.State.metrics.Fpc_core.State.tier_lazy_translations
          in
          (* warm observation run: every entered procedure finds its slots *)
          let warm = run_tier () in
          assert (
            warm.Fpc_core.State.metrics.Fpc_core.State.tier_lazy_translations
            = 0);
          let wm = warm.Fpc_core.State.metrics in
          let coverage =
            if wm.Fpc_core.State.calls = 0 then 0.0
            else
              float_of_int wm.Fpc_core.State.tier_fused_calls
              /. float_of_int wm.Fpc_core.State.calls
          in
          let lazy_hit = Fpc_tier.Tier.procs_translated tier in
          let samples = if smoke then 3 else 7 in
          let interp_s =
            median_run_s ~samples ~runs:1 (fun () ->
                let st = boot () in
                Fpc_interp.Interp.run st;
                assert (st.Fpc_core.State.status = Fpc_core.State.Halted))
          in
          let tier_s =
            median_run_s ~samples ~runs:1 (fun () -> ignore (run_tier ()))
          in
          let speedup = interp_s /. tier_s in
          if not smoke then begin
            let name =
              Printf.sprintf "micro/fpc/tier/calls/%s/%s" prog ename
            in
            record name "interp_ns_per_run" (interp_s *. 1e9);
            record name "tier_ns_per_run" (tier_s *. 1e9);
            record name "speedup" speedup;
            record name "fused_call_coverage" coverage;
            record name "lazy_miss" (float_of_int lazy_miss);
            record name "lazy_hit" (float_of_int lazy_hit);
            record name "procs" (float_of_int (Fpc_tier.Tier.procs tier));
            record name "procs_translated"
              (float_of_int (Fpc_tier.Tier.procs_translated tier))
          end;
          add_row tb
            [ prog; ename;
              Printf.sprintf "%.2f ms" (interp_s *. 1e3);
              Printf.sprintf "%.2f ms" (tier_s *. 1e3);
              Printf.sprintf "%.2fx" speedup;
              Printf.sprintf "%.0f%%" (coverage *. 100.0);
              Printf.sprintf "%d/%d" lazy_miss lazy_hit ])
        [ ("i1", Fpc_core.Engine.i1); ("i2", Fpc_core.Engine.i2);
          ("i3", Fpc_core.Engine.i3 ()); ("i4", Fpc_core.Engine.i4 ()) ])
    Fpc_workload.Programs.call_dense;
  add_note tb
    "fused cov = fused calls / all calls (simulated, exact); lazy m/h = \
     procedures translated on first entry / warm-run entries served from \
     filled slots";
  print tb;
  print_newline ()

(* Link-time devirtualization on the cross-module kernels: the
   late-bound image versus the devirtualized image, interpreter under
   I1/I2 (the externally-linked pairings — I3/I4 bind early and have no
   sites).  The simulated cycle and storage-reference meters are exact;
   wall clock rides along so the host-side effect of fewer link-vector
   loads is also on the trajectory. *)
let run_devirt ?(smoke = false) () =
  let open Fpc_util.Tablefmt in
  let tb =
    create
      ~title:"link-time devirtualization on cross-module kernels (interp)"
      ~columns:
        [ ("prog", Left); ("engine", Left); ("sites", Right); ("refs", Right);
          ("cycles", Right); ("refs saved", Right); ("host", Right) ]
  in
  List.iter
    (fun prog ->
      List.iter
        (fun (ename, engine) ->
          let convention = Fpc_compiler.Convention.for_engine engine in
          let source = Fpc_workload.Programs.find prog in
          let build devirt =
            match Fpc_compiler.Compile.image ~convention ~devirt source with
            | Ok i -> i
            | Error m -> failwith ("devirt bench compile: " ^ m)
          in
          let base = build false and dv = build true in
          let measure image =
            let st =
              Fpc_interp.Interp.run_program
                ~image:(Fpc_mesa.Image.clone image) ~engine ~instance:"Main"
                ~proc:"main" ~args:[] ()
            in
            assert (st.Fpc_core.State.status = Fpc_core.State.Halted);
            ( Fpc_machine.Cost.cycles st.Fpc_core.State.cost,
              Fpc_machine.Cost.mem_refs st.Fpc_core.State.cost )
          in
          let cycles_b, refs_b = measure base in
          let cycles_d, refs_d = measure dv in
          let samples = if smoke then 3 else 7 in
          let host image =
            median_run_s ~samples ~runs:1 (fun () ->
                let st =
                  Fpc_interp.Interp.run_program
                    ~image:(Fpc_mesa.Image.clone image) ~engine
                    ~instance:"Main" ~proc:"main" ~args:[] ()
                in
                assert (st.Fpc_core.State.status = Fpc_core.State.Halted))
          in
          let host_b = host base and host_d = host dv in
          let rewritten =
            match dv.Fpc_mesa.Image.dir.Fpc_mesa.Image.devirt with
            | Some d -> d.Fpc_mesa.Image.dv_rewritten
            | None -> 0
          in
          let saved = float_of_int (refs_b - refs_d) /. float_of_int refs_b in
          if not smoke then begin
            let name = Printf.sprintf "micro/fpc/devirt/%s/%s" prog ename in
            record name "sites_rewritten" (float_of_int rewritten);
            record name "mem_refs_base" (float_of_int refs_b);
            record name "mem_refs_devirt" (float_of_int refs_d);
            record name "cycles_base" (float_of_int cycles_b);
            record name "cycles_devirt" (float_of_int cycles_d);
            record name "refs_saved_pct" (100.0 *. saved);
            record name "interp_ns_per_run_base" (host_b *. 1e9);
            record name "interp_ns_per_run_devirt" (host_d *. 1e9)
          end;
          add_row tb
            [ prog; ename; cell_int rewritten;
              Printf.sprintf "%d -> %d" refs_b refs_d;
              Printf.sprintf "%d -> %d" cycles_b cycles_d;
              Printf.sprintf "%.1f%%" (100.0 *. saved);
              Printf.sprintf "%.2f -> %.2f ms" (host_b *. 1e3) (host_d *. 1e3) ])
        [ ("i1", Fpc_core.Engine.i1); ("i2", Fpc_core.Engine.i2) ])
    [ "callchain"; "leafcalls"; "xleaf" ];
  add_note tb
    "refs and cycles are simulated meters (exact); host is wall-clock \
     median; sites = EXTERNALCALL sites rewritten to DIRECTCALL";
  print tb;
  print_newline ()

let bench_allocator =
  Bechamel.Test.make ~name:"allocator/alloc+free"
    (Bechamel.Staged.stage (fun () ->
         let open Fpc_machine in
         let cost = Cost.create () in
         let mem = Memory.create ~cost ~size_words:65536 () in
         let av =
           Fpc_frames.Alloc_vector.create ~mem ~ladder:Fpc_frames.Size_class.default
             ~av_base:16 ~heap_base:1024 ~heap_limit:65536 ()
         in
         for _ = 1 to 1000 do
           let lf = Fpc_frames.Alloc_vector.alloc_words av ~cost ~body_words:8 in
           Fpc_frames.Alloc_vector.free av ~cost ~lf
         done))

let bench_return_stack =
  Bechamel.Test.make ~name:"return_stack/push+pop"
    (Bechamel.Staged.stage (fun () ->
         let rs = Fpc_ifu.Return_stack.create ~depth:16 in
         for _ = 1 to 1000 do
           Fpc_ifu.Return_stack.push rs ~lf:8192 ~gf:4096 ~cb:32768 ~pc_abs:65536
             ~bank:Fpc_ifu.Return_stack.no_bank;
           ignore (Fpc_ifu.Return_stack.try_pop rs)
         done))

let bench_banks =
  Bechamel.Test.make ~name:"bank_file/call+return"
    (Bechamel.Staged.stage (fun () ->
         let open Fpc_machine in
         let cost = Cost.create () in
         let mem = Memory.create ~cost ~size_words:65536 () in
         let bf =
           Fpc_regbank.Bank_file.create ~mem ~cost
             ~ladder:Fpc_frames.Size_class.default ()
         in
         Memory.poke mem 8192 0;
         let lf = 8196 in
         for _ = 1 to 1000 do
           Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8
             ~args:[| 1; 2 |];
           Fpc_regbank.Bank_file.release_frame bf ~lf
         done))

(* ------------------------------------------------------------------ *)

(* Pool scaling: the full suite x all four engines, twice over, at
   increasing domain counts.  Methodology (the fairness fix): one image
   cache, warmed before any clock starts, is shared by every width, the
   pool is created (domains spawned) off the clock, and the measured
   window is exactly submit -> await — so the numbers isolate the pool's
   execution path instead of charging it for Domain.spawn and cold
   compiles.  Simulated results are deterministic, so the run also
   double-checks that every job succeeds at every width.

   Recorded as the `svc/scaling` section; the older end-to-end
   `svc/throughput` keys are left in BENCH_results.json (carried over by
   the merge) so the trajectory across methodologies stays visible.

   Both execution tiers run the same sweep.  The historical
   `svc/scaling/*` keys pin tier=interp explicitly (Auto now resolves to
   the compiled tier, and silently rebasing those keys would corrupt the
   cross-PR trajectory); the compiled tier records alongside as
   `svc/scaling/tier/*`. *)
let run_svc ?(smoke = false) () =
  let programs =
    if smoke then [ "fib"; "hanoi" ] else Fpc_workload.Programs.names
  in
  let specs_for tier =
    let specs =
      List.concat_map
        (fun name ->
          List.map
            (fun engine ->
              Fpc_svc.Job.spec ~engine ~tier (Fpc_svc.Job.Suite name))
            [ "i1"; "i2"; "i3"; "i4" ])
        programs
    in
    if smoke then specs else specs @ specs
  in
  let widths = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let check_all_ok results =
    List.iter
      (fun (r : Fpc_svc.Job.result) ->
        match r.Fpc_svc.Job.outcome with
        | Fpc_svc.Job.Output _ -> ()
        | Fpc_svc.Job.Failed (_, m) ->
          failwith (Printf.sprintf "svc bench job %d failed: %s" r.Fpc_svc.Job.id m))
      results
  in
  let open Fpc_util.Tablefmt in
  let tb =
    create
      ~title:
        (Printf.sprintf
           "svc pool scaling (suite x 4 engines%s, warmed cache, both tiers)"
           (if smoke then "" else ", x2"))
      ~columns:
        [ ("tier", Left); ("domains", Right); ("jobs", Right);
          ("submit->await", Right); ("jobs/sec", Right); ("speedup", Right);
          ("cache hit", Right) ]
  in
  List.iter
    (fun (tier_label, tier, key_prefix) ->
      let specs = specs_for tier in
      let njobs = List.length specs in
      (* Warm the shared cache: every distinct image compiled (predecode
         built, and on the compiled tier the translation attached) before
         any measurement.  The cache is per tier — pristine entries are
         tier-keyed. *)
      let cache = Fpc_svc.Image_cache.create () in
      let warm_results, _ = Fpc_svc.Pool.run_jobs ~domains:1 ~cache specs in
      check_all_ok warm_results;
      let base = ref 0.0 in
      List.iter
        (fun domains ->
          let pool = Fpc_svc.Pool.create ~domains ~cache () in
          let t0 = Unix.gettimeofday () in
          List.iter (fun spec -> ignore (Fpc_svc.Pool.submit pool spec)) specs;
          let results = Fpc_svc.Pool.await pool in
          let wall = Unix.gettimeofday () -. t0 in
          let metrics = Fpc_svc.Pool.metrics pool in
          Fpc_svc.Pool.shutdown pool;
          check_all_ok results;
          if List.length results <> njobs then
            failwith "svc bench: not every job came back";
          let jps = float_of_int njobs /. wall in
          if !base = 0.0 then base := jps;
          if not smoke then begin
            record (Printf.sprintf "%s/%dd" key_prefix domains) "jobs_per_sec" jps;
            record (Printf.sprintf "%s/%dd" key_prefix domains) "speedup"
              (jps /. !base)
          end;
          add_row tb
            [ tier_label; cell_int domains; cell_int njobs;
              Printf.sprintf "%.3fs" wall; cell_float ~decimals:1 jps;
              cell_ratio ~decimals:2 (jps /. !base);
              cell_pct
                (Fpc_svc.Image_cache.hit_rate metrics.Fpc_svc.Metrics.cache) ])
        widths)
    [ ("interp", Fpc_svc.Job.Interp, "svc/scaling");
      ("compiled", Fpc_svc.Job.Compiled, "svc/scaling/tier") ];
  if not smoke then
    record "svc/scaling" "host_recommended_domains"
      (float_of_int (Fpc_svc.Pool.recommended_domains ()));
  add_note tb
    (Printf.sprintf
       "measured window is submit->await only; host reports %d recommended domain(s)"
       (Fpc_svc.Pool.recommended_domains ()));
  print tb;
  print_newline ()

(* ------------------------------------------------------------------ *)

(* Per-job allocation: the arena win (reset-per-job vs clone-per-job),
   from each job's own Gc.minor_words delta.  Steady state is the
   per-job minimum over the batch: the first job against each arena slot
   pays the one-time clone, every repeat is the reset path.  The budget
   assertion makes an allocation regression fail the bench (CI runs
   `bench svc --smoke`) instead of silently eroding the win. *)
let alloc_budget_words = 256.0

let run_svc_alloc ?(smoke = false) () =
  let programs =
    if smoke then [ "fib"; "hanoi" ] else Fpc_workload.Programs.names
  in
  let reps = 4 in
  let specs =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun engine ->
            List.init reps (fun _ ->
                Fpc_svc.Job.spec ~engine (Fpc_svc.Job.Suite name)))
          [ "i1"; "i2"; "i3"; "i4" ])
      programs
  in
  let check_all_ok results =
    List.iter
      (fun (r : Fpc_svc.Job.result) ->
        match r.Fpc_svc.Job.outcome with
        | Fpc_svc.Job.Output _ -> ()
        | Fpc_svc.Job.Failed (_, m) ->
          failwith (Printf.sprintf "svc alloc bench job %d failed: %s" r.Fpc_svc.Job.id m))
      results
  in
  (* Compile every image off the books so no job's delta includes the
     compiler. *)
  let cache = Fpc_svc.Image_cache.create () in
  let warm, _ =
    Fpc_svc.Pool.run_jobs ~domains:1 ~cache
      (List.filteri (fun i _ -> i mod reps = 0) specs)
  in
  check_all_ok warm;
  let measure ~domains ~arena_reuse =
    let results, snap = Fpc_svc.Pool.run_jobs ~domains ~cache ~arena_reuse specs in
    check_all_ok results;
    let steady =
      List.fold_left
        (fun acc (r : Fpc_svc.Job.result) ->
          min acc r.Fpc_svc.Job.stats.Fpc_svc.Job.minor_words)
        max_int results
    in
    (snap.Fpc_svc.Metrics.minor_words_per_job, float_of_int steady)
  in
  let open Fpc_util.Tablefmt in
  let tb =
    create ~title:"svc per-job minor allocation (arena vs clone)"
      ~columns:
        [ ("domains", Right); ("mode", Left); ("minor w/job (avg)", Right);
          ("steady-state (min)", Right); ("reduction", Right) ]
  in
  List.iter
    (fun domains ->
      let clone_avg, clone_steady = measure ~domains ~arena_reuse:false in
      let arena_avg, arena_steady = measure ~domains ~arena_reuse:true in
      let reduction =
        if arena_steady > 0.0 then clone_steady /. arena_steady else 0.0
      in
      if not smoke then begin
        let sec = Printf.sprintf "svc/alloc/%dd" domains in
        record sec "minor_words_per_job_clone" clone_avg;
        record sec "minor_words_per_job_arena" arena_avg;
        record sec "steady_minor_words_per_job_clone" clone_steady;
        record sec "steady_minor_words_per_job_arena" arena_steady;
        record sec "steady_reduction_x" reduction
      end;
      add_row tb
        [ cell_int domains; "clone"; cell_float ~decimals:1 clone_avg;
          cell_float ~decimals:0 clone_steady; "" ];
      add_row tb
        [ cell_int domains; "arena"; cell_float ~decimals:1 arena_avg;
          cell_float ~decimals:0 arena_steady;
          cell_ratio ~decimals:1 reduction ];
      if arena_steady > alloc_budget_words then
        failwith
          (Printf.sprintf
             "svc alloc budget exceeded at %d domain(s): steady-state %.0f \
              minor words/job > budget %.0f"
             domains arena_steady alloc_budget_words))
    [ 1; 2 ];
  if not smoke then
    record "svc/alloc" "budget_minor_words_per_job" alloc_budget_words;
  add_note tb
    (Printf.sprintf
       "per-job Gc.minor_words deltas, warmed cache; budget (steady-state \
        arena) = %.0f words/job"
       alloc_budget_words);
  print tb;
  print_newline ()

(* ------------------------------------------------------------------ *)

(* Tracing overhead, off and on.  The off side is the path every
   untraced run takes — instrumentation reduces to one match on
   [State.tracer] per transfer — and is recorded so the cross-PR
   trajectory shows whether carrying the subsystem costs anything
   ([off_drift_pct] against the previous recorded run).  The on side
   attaches a full streaming profile, the worst case [trace=1] pays. *)
let run_trace ?(smoke = false) () =
  let prior = read_prior "BENCH_results.json" in
  let open Fpc_util.Tablefmt in
  let tb =
    create ~title:"tracing overhead (fib, host wall-clock)"
      ~columns:
        [ ("engine", Left); ("off", Right); ("on", Right);
          ("on overhead", Right); ("off drift vs last", Right) ]
  in
  List.iter
    (fun (name, engine) ->
      let image = fib_image engine in
      let off () =
        let st =
          Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main"
            ~proc:"main" ~args:[] ()
        in
        assert (st.Fpc_core.State.status = Fpc_core.State.Halted)
      in
      let on () =
        let p = Fpc_interp.Profiler.create ~capacity:1024 ~image ~engine () in
        let st, _ =
          Fpc_interp.Profiler.run p ~image ~engine ~instance:"Main"
            ~proc:"main" ~args:[]
        in
        assert (st.Fpc_core.State.status = Fpc_core.State.Halted)
      in
      let bench = "trace/fib/" ^ name in
      let off_s =
        if smoke then median_run_s ~samples:3 ~runs:1 off else median_run_s off
      in
      let on_s =
        if smoke then median_run_s ~samples:3 ~runs:1 on else median_run_s on
      in
      let on_pct = (on_s -. off_s) /. off_s *. 100.0 in
      let drift =
        Option.map
          (fun last -> ((off_s *. 1e9) -. last) /. last *. 100.0)
          (prior_value prior bench "off_ns_per_run")
      in
      if not smoke then begin
        record bench "off_ns_per_run" (off_s *. 1e9);
        record bench "on_ns_per_run" (on_s *. 1e9);
        record bench "on_overhead_pct" on_pct;
        Option.iter (record bench "off_drift_pct") drift
      end;
      add_row tb
        [ name;
          Printf.sprintf "%.2f ms" (off_s *. 1e3);
          Printf.sprintf "%.2f ms" (on_s *. 1e3);
          Printf.sprintf "%+.1f%%" on_pct;
          (match drift with
          | Some d -> Printf.sprintf "%+.1f%%" d
          | None -> "(first run)") ])
    (if smoke then [ ("I1", Fpc_core.Engine.i1) ]
     else
       [ ("I1", Fpc_core.Engine.i1); ("I2", Fpc_core.Engine.i2);
         ("I3", Fpc_core.Engine.i3 ()); ("I4", Fpc_core.Engine.i4 ()) ]);
  add_note tb
    "off = run with no tracer installed (the default); on = sink + \
     streaming per-procedure profile";
  print tb;
  print_newline ()

let run_micro () =
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"fpc"
      [
        bench_engine "I1" Fpc_core.Engine.i1;
        bench_engine "I2" Fpc_core.Engine.i2;
        bench_engine "I3" (Fpc_core.Engine.i3 ());
        bench_engine "I4" (Fpc_core.Engine.i4 ());
        bench_tier "I1" Fpc_core.Engine.i1;
        bench_tier "I2" Fpc_core.Engine.i2;
        bench_tier "I3" (Fpc_core.Engine.i3 ());
        bench_tier "I4" (Fpc_core.Engine.i4 ());
        bench_allocator;
        bench_return_stack;
        bench_banks;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let per_instance = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances per_instance in
  Printf.printf "== micro-benchmarks (host ns/run, monotonic clock) ==\n";
  Hashtbl.iter
    (fun _instance table ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            record ("micro/" ^ name) "ns_per_run" est;
            Printf.printf "  %-28s %12.1f ns\n" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
        table)
    results

(* ------------------------------------------------------------------ *)

(* TCP serving throughput and latency through the full lib/net stack:
   framing, admission control, pool execution on worker domains, and
   the ordered writer path back out.  Closed-loop clients, so offered
   load tracks service rate and the percentiles describe the server.
   The request is the call-heavy fib on i2 with a warmed image cache —
   round trips measure serving machinery, not compilation. *)
let run_net ?(smoke = false) ?port ?(host = "127.0.0.1") ?(shutdown = false) ()
    =
  let server, port =
    match port with
    | Some p -> (None, p)
    | None ->
      let s =
        Fpc_net.Server.create ~domains:(Fpc_svc.Pool.recommended_domains ())
          ~max_pending:256 ~times:false ()
      in
      (Some s, Fpc_net.Server.port s)
  in
  let request_line = "prog=fib engine=i2" in
  let conn_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let requests = if smoke then 20 else 300 in
  (* Warm the server's image cache before any measured round trip. *)
  let warm =
    Fpc_net.Loadgen.run ~host ~port ~connections:1 ~requests:3 ~request_line ()
  in
  if warm.Fpc_net.Loadgen.ok <> 3 then
    failwith "net bench: warmup round trips did not all come back ok";
  let open Fpc_util.Tablefmt in
  let tb =
    create
      ~title:
        (Printf.sprintf "net serving latency (fib/i2, %d round trips per conn)"
           requests)
      ~columns:
        [ ("conns", Right); ("answered", Right); ("jobs/sec", Right);
          ("p50", Right); ("p95", Right); ("p99", Right) ]
  in
  List.iter
    (fun connections ->
      let rep =
        Fpc_net.Loadgen.run ~host ~port ~connections ~requests ~request_line ()
      in
      let expected = connections * requests in
      if rep.Fpc_net.Loadgen.ok <> expected then
        failwith
          (Printf.sprintf
             "net bench: %d connections: %d of %d round trips ok (%d shed, %d \
              failed)"
             connections rep.Fpc_net.Loadgen.ok expected
             rep.Fpc_net.Loadgen.shed rep.Fpc_net.Loadgen.failed);
      let pct q =
        float_of_int (Fpc_util.Histogram.percentile rep.Fpc_net.Loadgen.latency_us q)
      in
      if not smoke then begin
        let name = Printf.sprintf "net/latency/%dc" connections in
        record name "jobs_per_sec" rep.Fpc_net.Loadgen.jobs_per_sec;
        record name "p50_us" (pct 50.0);
        record name "p95_us" (pct 95.0);
        record name "p99_us" (pct 99.0)
      end;
      add_row tb
        [ cell_int connections; cell_int rep.Fpc_net.Loadgen.answered;
          cell_float ~decimals:1 rep.Fpc_net.Loadgen.jobs_per_sec;
          Printf.sprintf "%.0fus" (pct 50.0);
          Printf.sprintf "%.0fus" (pct 95.0);
          Printf.sprintf "%.0fus" (pct 99.0) ])
    conn_counts;
  (match server with
  | Some s ->
    Fpc_net.Server.request_drain s;
    ignore (Fpc_net.Server.wait s)
  | None ->
    if shutdown then begin
      let c = Fpc_net.Client.connect ~host ~port () in
      Fpc_net.Client.send_line c "shutdown";
      (match Fpc_net.Client.recv_line c with
      | Some {|{"status":"draining"}|} -> ()
      | Some other ->
        failwith ("net bench: unexpected shutdown response: " ^ other)
      | None -> failwith "net bench: no shutdown acknowledgement");
      Fpc_net.Client.close c
    end);
  add_note tb
    "closed-loop round trips over loopback TCP; in-process server unless --port";
  print tb;
  print_newline ()

(* The high-concurrency ladder.  The server runs as a spawned
   `fpc serve --tcp` subprocess rather than in-process, for two
   reasons: its fd numbers stay small (the select backend caps fds at
   FD_SETSIZE, and the generator's own 1000 client sockets would blow
   through that in a shared process), and /proc/<pid> then describes
   the server alone — the thread and fd tables ARE the claim under
   test, so they must not include the generator's thousand client
   threads. *)

let fpc_binary () =
  (* bench runs from _build/default/bench/main.exe; fpc sits next door. *)
  let dir = Filename.dirname Sys.executable_name in
  let candidate =
    Filename.concat (Filename.dirname dir) (Filename.concat "bin" "fpc.exe")
  in
  if Sys.file_exists candidate then candidate
  else failwith ("net bench: cannot find the fpc binary at " ^ candidate)

let spawn_server ~domains ~max_conns ~max_pending =
  let fpc = fpc_binary () in
  let err_rd, err_wr = Unix.pipe () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process fpc
      [| fpc; "serve"; "--tcp"; "0"; "--no-times";
         "-j"; string_of_int domains;
         "--max-conns"; string_of_int max_conns;
         "--max-pending"; string_of_int max_pending |]
      devnull devnull err_wr
  in
  Unix.close err_wr;
  Unix.close devnull;
  let ic = Unix.in_channel_of_descr err_rd in
  (* The server announces "serving on HOST:PORT" on stderr once the
     listener is live; wait for it, then keep draining stderr in the
     background so the drain-time metrics dump cannot wedge the server
     on a full pipe. *)
  let port = ref None in
  (try
     while !port = None do
       let line = input_line ic in
       try
         Scanf.sscanf line "fpc: serving on %s@:%d" (fun _ p ->
             port := Some p)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  ignore
    (Thread.create
       (fun () ->
         try
           while true do
             ignore (input_line ic)
           done
         with End_of_file | Sys_error _ -> ())
       ());
  match !port with
  | Some p -> (pid, p)
  | None ->
    ignore (Unix.waitpid [] pid);
    failwith "net bench: spawned server never announced its port"

(* Peak OS-thread and open-fd counts for [pid], sampled from /proc
   every few milliseconds until [stop] flips.  Plain int refs are fine:
   systhreads serialize on the runtime lock. *)
let proc_poller pid stop peak_threads peak_fds =
  let status = Printf.sprintf "/proc/%d/status" pid in
  let fddir = Printf.sprintf "/proc/%d/fd" pid in
  let sample () =
    (try
       let ic = open_in status in
       (try
          while true do
            let line = input_line ic in
            try
              Scanf.sscanf line "Threads: %d" (fun n ->
                  if n > !peak_threads then peak_threads := n)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
          done
        with End_of_file -> ());
       close_in ic
     with Sys_error _ -> ());
    try
      let n = Array.length (Sys.readdir fddir) in
      if n > !peak_fds then peak_fds := n
    with Sys_error _ -> ()
  in
  while not (Atomic.get stop) do
    sample ();
    Thread.delay 0.01
  done;
  sample ()

let run_net_conns ?(pipeline = 4) ?(record_keys = true) ~conns () =
  let domains = 2 in
  let host = "127.0.0.1" in
  let ladder =
    List.sort_uniq compare
      (conns :: List.filter (fun c -> c < conns) [ 100; 1000 ])
  in
  (* Every connection keeps [pipeline] requests outstanding, and all of
     them must be admitted: a shed round trip is a bench failure. *)
  let max_conns = conns + 100 in
  let max_pending = max 256 (2 * conns * pipeline) in
  let pid, port = spawn_server ~domains ~max_conns ~max_pending in
  let stop = Atomic.make false in
  let peak_threads = ref 0 and peak_fds = ref 0 in
  let poller =
    Thread.create (fun () -> proc_poller pid stop peak_threads peak_fds) ()
  in
  let request_line = "prog=fib engine=i2" in
  let finish () =
    Atomic.set stop true;
    Thread.join poller;
    (try
       let c = Fpc_net.Client.connect ~host ~port () in
       Fpc_net.Client.send_line c "shutdown";
       ignore (Fpc_net.Client.recv_line c);
       Fpc_net.Client.close c
     with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  Fun.protect ~finally:finish @@ fun () ->
  let warm =
    Fpc_net.Loadgen.run ~host ~port ~connections:1 ~requests:3 ~request_line ()
  in
  if warm.Fpc_net.Loadgen.ok <> 3 then
    failwith "net bench: high-concurrency warmup did not come back ok";
  let open Fpc_util.Tablefmt in
  let tb =
    create
      ~title:
        (Printf.sprintf
           "net high-concurrency ladder (fib/i2, pipeline %d, %d-domain \
            spawned server)"
           pipeline domains)
      ~columns:
        [ ("conns", Right); ("req/conn", Right); ("answered", Right);
          ("jobs/sec", Right); ("p50", Right); ("p99", Right);
          ("srv thr", Right); ("srv fds", Right) ]
  in
  List.iter
    (fun connections ->
      peak_threads := 0;
      peak_fds := 0;
      let requests = max 5 (5_000 / connections) in
      let rep =
        Fpc_net.Loadgen.run ~host ~port ~connections ~requests ~pipeline
          ~request_line ()
      in
      let expected = connections * requests in
      if rep.Fpc_net.Loadgen.ok <> expected then
        failwith
          (Printf.sprintf
             "net bench: %d pipelined connections: %d of %d round trips ok \
              (%d shed, %d failed)"
             connections rep.Fpc_net.Loadgen.ok expected
             rep.Fpc_net.Loadgen.shed rep.Fpc_net.Loadgen.failed);
      (* The reactor's whole point: OS threads stay constant while
         connections scale.  The OCaml-level count is domains + 3 (main,
         signal waiter, loop); the runtime adds a tick thread and at
         most one backup thread per domain, hence the bound. *)
      let thread_bound = (2 * domains) + 5 in
      if !peak_threads > thread_bound then
        failwith
          (Printf.sprintf
             "net bench: server used %d OS threads at %d connections \
              (bound %d): the reactor is leaking threads"
             !peak_threads connections thread_bound);
      let pct q =
        float_of_int
          (Fpc_util.Histogram.percentile rep.Fpc_net.Loadgen.latency_us q)
      in
      if record_keys then begin
        let name = Printf.sprintf "net/latency/%dc" connections in
        record name "jobs_per_sec" rep.Fpc_net.Loadgen.jobs_per_sec;
        record name "p50_us" (pct 50.0);
        record name "p99_us" (pct 99.0);
        record name "server_threads" (float_of_int !peak_threads);
        record name "server_fds" (float_of_int !peak_fds)
      end;
      add_row tb
        [ cell_int connections; cell_int requests;
          cell_int rep.Fpc_net.Loadgen.answered;
          cell_float ~decimals:1 rep.Fpc_net.Loadgen.jobs_per_sec;
          Printf.sprintf "%.0fus" (pct 50.0);
          Printf.sprintf "%.0fus" (pct 99.0);
          cell_int !peak_threads; cell_int !peak_fds ])
    ladder;
  add_note tb
    (Printf.sprintf
       "open-loop pipelined clients; srv thr/fds are /proc peaks of the \
        spawned server (thread bound %d enforced)"
       ((2 * domains) + 5));
  print tb;
  print_newline ()

(* ------------------------------------------------------------------ *)

(* Session-scheduler throughput and footprint (the `sched` argument):
   the generated session workload (Fpc_workload.Sessions) streamed
   through the green-thread scheduler at 100 / 1k / 10k sessions on I2,
   run-to-yield, under both execution tiers.  Throughput is host
   wall-clock (compile excluded — the image is built once per scale);
   the footprint keys are simulated meters and therefore exact.  The
   smoke variant runs one tiny scale and records nothing. *)
let run_sched ?(smoke = false) () =
  let engine = Fpc_core.Engine.i2 in
  let scales = if smoke then [ ("64", 64) ] else [ ("100", 100); ("1k", 1_000); ("10k", 10_000) ] in
  let open Fpc_util.Tablefmt in
  let tb =
    create ~title:"sched session throughput (i2, run-to-yield, both tiers)"
      ~columns:
        [ ("sessions", Right); ("interp sess/s", Right); ("tier sess/s", Right);
          ("frame peak", Right); ("LIFO reserve", Right); ("ratio", Right) ]
  in
  List.iter
    (fun (label, total) ->
      let config = Fpc_workload.Sessions.default ~total in
      let convention = Fpc_compiler.Convention.for_engine engine in
      let image =
        match
          Fpc_compiler.Compile.image ~convention
            (Fpc_workload.Sessions.program config)
        with
        | Ok i -> i
        | Error m -> failwith ("sched bench compile: " ^ m)
      in
      let translation = Fpc_tier.Tier.translate image in
      let drive step =
        let im = Fpc_mesa.Image.clone image in
        let st =
          Fpc_interp.Interp.boot ~image:im ~engine ~instance:"Main"
            ~proc:"main" ~args:[] ()
        in
        let stats = Fpc_sched.Sched.run ~step ~fuel:50_000_000 st in
        if st.Fpc_core.State.status <> Fpc_core.State.Halted then
          failwith "sched bench: workload did not halt";
        (st, stats)
      in
      let interp_step n st = Fpc_interp.Interp.run ~max_steps:n st in
      let tier_step n st = Fpc_tier.Tier.run ~max_steps:n translation st in
      let throughput step =
        let s =
          median_run_s ~samples:(if smoke then 3 else 5) ~runs:1 (fun () ->
              ignore (drive step))
        in
        float_of_int total /. s
      in
      let interp_sps = throughput interp_step in
      let tier_sps = throughput tier_step in
      let st, stats = drive interp_step in
      let lifo_reserved =
        st.Fpc_core.State.metrics.Fpc_core.State.peak_live_procs
        * Fpc_workload.Sessions.worst_extent_words config ~image
      in
      let r = Fpc_sched.Sched.report ~lifo_reserved ~stats st in
      if not smoke then begin
        let sec = "sched/sessions/" ^ label in
        record sec "sessions_per_sec_interp" interp_sps;
        record sec "sessions_per_sec_tier" tier_sps;
        record sec "frame_peak_words"
          (float_of_int r.Fpc_sched.Sched.frame_peak_words);
        record sec "lifo_reserved_words"
          (float_of_int r.Fpc_sched.Sched.lifo_reserved_words);
        record sec "footprint_ratio" r.Fpc_sched.Sched.footprint_ratio
      end;
      add_row tb
        [ label; cell_float ~decimals:0 interp_sps;
          cell_float ~decimals:0 tier_sps;
          Printf.sprintf "%dw" r.Fpc_sched.Sched.frame_peak_words;
          Printf.sprintf "%dw" r.Fpc_sched.Sched.lifo_reserved_words;
          Printf.sprintf "%.4f" r.Fpc_sched.Sched.footprint_ratio ])
    scales;
  add_note tb
    "host wall-clock, image compiled once per scale; footprint columns are \
     simulated meters (exact and engine-deterministic)";
  print tb;
  print_newline ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --port N / --host H take a value; pull them out before the
     remaining args are treated as experiment filters. *)
  let extract_opt key args =
    let rec go acc = function
      | [] -> (None, List.rev acc)
      | k :: v :: rest when k = key -> (Some v, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
    in
    go [] args
  in
  let port_s, args = extract_opt "--port" args in
  let host_s, args = extract_opt "--host" args in
  let conns_s, args = extract_opt "--conns" args in
  let pipeline_s, args = extract_opt "--pipeline" args in
  let int_opt flag s =
    match int_of_string_opt s with
    | Some p -> p
    | None -> failwith (Printf.sprintf "bench: %s expects an integer, got %s" flag s)
  in
  let port = Option.map (int_opt "--port") port_s in
  let conns = Option.map (int_opt "--conns") conns_s in
  let pipeline = Option.map (int_opt "--pipeline") pipeline_s in
  let host = Option.value host_s ~default:"127.0.0.1" in
  let shutdown = List.mem "--shutdown" args in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let micro = List.mem "micro" args in
  let svc = List.mem "svc" args in
  let trace = List.mem "trace" args in
  let net = List.mem "net" args in
  let sched = List.mem "sched" args in
  let filter =
    List.filter
      (fun a ->
        not
          (List.mem a
             [ "micro"; "svc"; "trace"; "net"; "sched"; "--json"; "--smoke";
               "--shutdown" ]))
      args
  in
  let everything =
    filter = [] && (not micro) && (not svc) && (not trace) && (not net)
    && not sched
  in
  if everything || filter <> [] then run_experiments filter;
  if micro || everything then begin
    run_micro ();
    run_tier_compile ();
    run_tier_calls ~smoke ();
    run_devirt ~smoke ()
  end;
  if svc || everything then begin
    run_svc ~smoke ();
    run_svc_alloc ~smoke ()
  end;
  if trace || everything then run_trace ~smoke ();
  if sched || everything then run_sched ~smoke ();
  (match conns with
  | Some c ->
    (* `bench net --conns N [--pipeline K]`: just the high-concurrency
       ladder, its own spawned server, record nothing beyond stdout
       unless --json asked for the trajectory keys. *)
    run_net_conns ?pipeline ~record_keys:json ~conns:c ()
  | None ->
    if net || everything then begin
      run_net ~smoke ?port ~host ~shutdown ();
      (* The high-concurrency ladder spawns its own server; skip it in
         smoke mode and when the run targets an external --port. *)
      if (not smoke) && port = None then
        run_net_conns ?pipeline ~conns:1000 ()
    end);
  if json then write_json "BENCH_results.json"
