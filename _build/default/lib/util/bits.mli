(** Bit-field packing helpers for 16-bit machine words.

    The Mesa encoding of [Fast Procedure Calls] packs several small fields
    into 16-bit words (procedure descriptors, GFT entries).  These helpers
    centralise the masking arithmetic so the packed layouts are defined in
    one place and round-trip properties can be tested uniformly. *)

val mask : int -> int
(** [mask width] is the all-ones value of [width] bits.  [width] must be
    between 0 and 62. *)

val get : word:int -> pos:int -> width:int -> int
(** [get ~word ~pos ~width] extracts the [width]-bit field of [word]
    starting at bit [pos] (bit 0 is least significant). *)

val set : word:int -> pos:int -> width:int -> int -> int
(** [set ~word ~pos ~width v] returns [word] with the [width]-bit field at
    [pos] replaced by [v].  Raises [Invalid_argument] if [v] does not fit. *)

val fits : width:int -> int -> bool
(** [fits ~width v] is true when the non-negative value [v] is representable
    in [width] bits. *)

val signed_of_unsigned : width:int -> int -> int
(** Interpret a [width]-bit unsigned value as two's-complement signed. *)

val unsigned_of_signed : width:int -> int -> int
(** Encode a signed value into [width]-bit two's complement.  Raises
    [Invalid_argument] when out of range. *)

val word_mask : int
(** The 16-bit mask 0xFFFF, the machine word width used throughout. *)

val to_word : int -> int
(** Truncate to 16 bits. *)

val byte_high : int -> int
(** High byte of a 16-bit word. *)

val byte_low : int -> int
(** Low byte of a 16-bit word. *)

val word_of_bytes : high:int -> low:int -> int
(** Reassemble a 16-bit word from its two bytes. *)
