(** E7 — §7.1: frame sizes and the processor free-frame stack.

    "Mesa statistics suggest that 95% of all frames allocated are smaller
    than 80 bytes"; "a reasonable strategy is to make the smallest frame
    size the 80 bytes just cited; hopefully this would handle 95% of all
    frame allocations.  Now the processor can keep a stack of free frames
    of this size, and allocation will be extremely fast... If the general
    scheme is five times more costly and it is used 5% of the time, the
    effective speed of frame allocation is .8 times the fast speed." *)

open Fpc_util

let distribution_table () =
  let h = Fpc_workload.Distributions.sample_histogram ~seed:3 ~samples:100_000 in
  let t =
    Tablefmt.create ~title:"Synthesised frame-payload distribution (words)"
      ~columns:[ ("statistic", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  let p95 = Histogram.percentile h 95.0 in
  let frac80 = Histogram.fraction_le h Fpc_workload.Distributions.paper_frame_p95_words in
  Tablefmt.add_row t [ "mean"; Tablefmt.cell_float (Histogram.mean h) ];
  Tablefmt.add_row t [ "median"; Tablefmt.cell_int (Histogram.percentile h 50.0) ];
  Tablefmt.add_row t [ "p95"; Tablefmt.cell_int p95 ];
  Tablefmt.add_row t [ "p99"; Tablefmt.cell_int (Histogram.percentile h 99.0) ];
  Tablefmt.add_row t [ "max"; Tablefmt.cell_int (Histogram.max_value h) ];
  Tablefmt.add_row t [ "fraction <= 40 words (80 bytes)"; Tablefmt.cell_pct frac80 ];
  (t, frac80)

let static_table () =
  let t =
    Tablefmt.create ~title:"Static frame payloads of the compiled suite"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("procs", Tablefmt.Right);
          ("max payload", Tablefmt.Right);
          ("<= 40 words", Tablefmt.Right);
        ]
  in
  List.iter
    (fun program ->
      let image = Harness.image_of ~program () in
      let payloads =
        Hashtbl.fold
          (fun _ (pi : Fpc_mesa.Image.proc_info) acc -> pi.pi_locals_words :: acc)
          image.Fpc_mesa.Image.dir.Fpc_mesa.Image.procs []
      in
      let n = List.length payloads in
      let small = List.length (List.filter (fun w -> w <= 40) payloads) in
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int n;
          Tablefmt.cell_int (List.fold_left max 0 payloads);
          Tablefmt.cell_pct (Harness.ratio small n);
        ])
    Fpc_workload.Programs.names;
  t

let free_frame_table () =
  let t =
    Tablefmt.create ~title:"Free-frame stack effectiveness (engine I4)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("allocations", Tablefmt.Right);
          ("served free (0 refs)", Tablefmt.Right);
          ("hit rate", Tablefmt.Right);
          ("effective speed vs fast", Tablefmt.Right);
        ]
  in
  let hits = ref 0 and total = ref 0 in
  List.iter
    (fun program ->
      let st = Harness.run_one ~engine:(Fpc_core.Engine.i4 ()) ~program () in
      let m = st.Fpc_core.State.metrics in
      let allocs = m.ff_hits + m.ff_misses in
      hits := !hits + m.ff_hits;
      total := !total + allocs;
      let hit_rate = Harness.ratio m.ff_hits allocs in
      (* The paper's arithmetic: slow path 5x the fast cost; effective
         speed = 1 / (h*1 + (1-h)*5). *)
      let eff = if allocs = 0 then 1.0 else 1.0 /. (hit_rate +. ((1.0 -. hit_rate) *. 5.0)) in
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int allocs;
          Tablefmt.cell_int m.ff_hits;
          Tablefmt.cell_pct hit_rate;
          Tablefmt.cell_ratio eff;
        ])
    Fpc_workload.Programs.sequential;
  let hit_rate = Harness.ratio !hits !total in
  let eff = 1.0 /. (hit_rate +. ((1.0 -. hit_rate) *. 5.0)) in
  Tablefmt.add_note t
    (Printf.sprintf "aggregate hit rate %.1f%%; paper's formula gives %.2fx \
                     the fast speed (claim: 0.8x at 95%%)"
       (100.0 *. hit_rate) eff);
  (t, hit_rate, eff)

let run () =
  let t1, frac80 = distribution_table () in
  let t2 = static_table () in
  let t3, hit_rate, eff = free_frame_table () in
  {
    Exp.id = "E7";
    key = "frame_sizes";
    title = "Frame-size distribution and free-frame allocation";
    paper_claim =
      "95% of frames < 80 bytes; with a free-frame stack, effective \
       allocation speed ~= 0.8x the fast path (\xC2\xA77.1)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2; Tablefmt.render t3 ];
    headlines =
      [
        ("fraction_le_80_bytes", frac80);
        ("free_frame_hit_rate", hit_rate);
        ("effective_alloc_speed", eff);
      ];
  }
