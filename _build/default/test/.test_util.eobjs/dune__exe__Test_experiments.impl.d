test/test_experiments.ml: Alcotest Fpc_experiments Lazy List String
