test/test_mesa.ml: Alcotest Compiled Cost Descriptor Fpc_frames Fpc_isa Fpc_machine Fpc_mesa Gft Image Layout Linker List Memory Printf QCheck QCheck_alcotest Space String
