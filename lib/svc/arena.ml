(* A worker-private table of reusable execution contexts.  Single-owner
   by construction: the pool creates one per worker domain and never
   shares it, so there is no lock anywhere on this path. *)

type slot = {
  sl_cache_key : string;  (* the image cache's content key *)
  sl_engine : string;  (* engine name, the key's second component *)
  sl_tier : string;  (* execution tier, the key's third component *)
  sl_image : Fpc_mesa.Image.t;  (* this slot's private arena clone *)
  sl_st : Fpc_core.State.t;
  mutable sl_last_used : int;
}

type t = {
  slots : (string, slot) Hashtbl.t;
  capacity : int;
  mutable last : slot option;
      (** the previously acquired slot — workers run streaks of jobs
          against one hot image, and this memo turns the common repeat
          acquire into two string compares (no key concat, no hashing) *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable pages_blitted : int;
}

let create ?(capacity = 32) () =
  if capacity <= 0 then invalid_arg "Arena.create: capacity must be positive";
  {
    slots = Hashtbl.create 32;
    capacity;
    last = None;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    pages_blitted = 0;
  }

let capacity t = t.capacity

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  pages_blitted : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.slots;
    pages_blitted = t.pages_blitted;
  }

let slot_key ~key ~engine_name ~tier_name = key ^ "|" ^ engine_name ^ "|" ^ tier_name

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key s ->
      match !victim with
      | Some (_, oldest) when oldest <= s.sl_last_used -> ()
      | _ -> victim := Some (key, s.sl_last_used))
    t.slots;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.slots key;
    (match t.last with
    | Some s
      when slot_key ~key:s.sl_cache_key ~engine_name:s.sl_engine
             ~tier_name:s.sl_tier
           = key ->
      t.last <- None
    | _ -> ());
    t.evictions <- t.evictions + 1
  | None -> ()

(* Reset the hit slot's image: blit back only the pages the previous run
   dirtied. *)
let reset_hit (t : t) slot ~pristine =
  t.hits <- t.hits + 1;
  slot.sl_last_used <- t.tick;
  let dirty = Fpc_machine.Memory.dirty_pages slot.sl_image.Fpc_mesa.Image.mem in
  t.pages_blitted <- t.pages_blitted + dirty;
  Fpc_mesa.Image.clone_into ~arena:slot.sl_image pristine

(* The slot's image is left equal to [pristine] (dirty pages blitted back
   on a hit, a fresh clone on a miss); the slot's state is NOT yet reset —
   the caller builds its tracer against [image slot] first, then
   [checkout]s. *)
let acquire t ~key ~engine ~engine_name ?(tier_name = "") ~pristine () =
  t.tick <- t.tick + 1;
  match t.last with
  | Some slot
    when String.equal slot.sl_cache_key key
         && String.equal slot.sl_engine engine_name
         && String.equal slot.sl_tier tier_name ->
    (* The streak path: same job shape as last time, no hashing at all. *)
    reset_hit t slot ~pristine;
    slot
  | _ -> (
    let sk = slot_key ~key ~engine_name ~tier_name in
    match Hashtbl.find_opt t.slots sk with
    | Some slot ->
      reset_hit t slot ~pristine;
      t.last <- Some slot;
      slot
    | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.slots >= t.capacity then evict_lru t;
      let image = Fpc_mesa.Image.clone pristine in
      let st = Fpc_core.State.create ~image ~engine () in
      let slot =
        {
          sl_cache_key = key;
          sl_engine = engine_name;
          sl_tier = tier_name;
          sl_image = image;
          sl_st = st;
          sl_last_used = t.tick;
        }
      in
      Hashtbl.replace t.slots sk slot;
      t.last <- Some slot;
      slot)

let image slot = slot.sl_image

let checkout ?tracer slot =
  Fpc_core.State.reset ?tracer slot.sl_st;
  slot.sl_st
