lib/ifu/return_stack.ml: Array List
