The fpc binary end to end.  Run a suite program:

  $ fpc run fib 2>/dev/null
  377

Pick an engine:

  $ fpc run mixed -e i4 2>/dev/null
  504
  111
  2

Pick an execution tier: the compiled (threaded-code) tier produces the
same output and bit-identical simulated meters as the interpreter:

  $ fpc run fib --tier=compiled
  377
  engine=i2 instructions=15845 cycles=123964 storage-refs=26218
  $ fpc run fib --tier=interp
  377
  engine=i2 instructions=15845 cycles=123964 storage-refs=26218

List the built-in suite:

  $ fpc suite | head -4
  fib
  ackermann
  sieve
  isort

Disassemble a tiny program:

  $ cat > tiny.fpc <<'SRC'
  > MODULE Main;
  > PROC main() =
  >   OUTPUT 6 * 7;
  > END;
  > END;
  > SRC
  $ fpc disasm tiny.fpc
  MODULE Main (globals 1 words, 0 imports)
  PROC main (args 0, frame payload 1 words, 5 bytes)
      0: LI 6
      1: LI 7
      2: MUL
      3: OUT
      4: RET
  $ fpc run tiny.fpc 2>/dev/null
  42

Unknown programs fail cleanly:

  $ fpc run no_such_program 2>&1 | head -1
  fpc: no_such_program: not a file and not a suite program (suite: fib, ackermann, sieve, isort, callchain, leafcalls, coroutine, processes, mixed, deep, hanoi, bsearch, matmul, knapsack, fibleaf, ackerlite, xleaf, polyleaf)

An experiment renders:

  $ fpc experiment E10 2>/dev/null | head -2
  ### E10 [call_density] One call or return per ~10 instructions
  paper: one call or return for every 10 instructions executed (§1)

Batch execution: a jobfile over a 2-domain pool, results deterministic
and in submission order (metrics go to stderr):

  $ cat > jobs.txt <<'EOF'
  > # two suite programs and an inline one
  > prog=fib engine=i2
  > prog=hanoi engine=i4 fuel=1000000
  > src=MODULE\sMain;\nPROC\smain()\s=\n\sOUTPUT\s6\s*\s7;\nEND;\nEND; engine=i3
  > EOF
  $ fpc batch jobs.txt -j 2 2>/dev/null
  #0 fib i2 ok output=377 instructions=15845 cycles=123964 mem-refs=26218
  #1 hanoi i4 ok output=127 instructions=3569 cycles=7045 mem-refs=342
  #2 inline:015ae353 i3 ok output=42 instructions=5 cycles=149 mem-refs=11

Batch output is byte-identical across execution tiers — the compiled
tier's fingerprints (output and all simulated meters) match the
interpreter's on every job:

  $ fpc batch jobs.txt --tier=interp 2>/dev/null > tier-interp.out
  $ fpc batch jobs.txt --tier=compiled 2>/dev/null > tier-compiled.out
  $ cmp tier-interp.out tier-compiled.out && echo tiers-agree
  tiers-agree

A poisoned job fails alone; the pool keeps serving:

  $ cat > poison.txt <<'EOF'
  > src=MODULE\sMain;\sPROC
  > prog=fib engine=i2
  > EOF
  $ fpc batch poison.txt 2>/dev/null | sed 's/error .*/error .../'
  #0 inline:eacc5c73 i2 error ...
  #1 fib i2 ok output=377 instructions=15845 cycles=123964 mem-refs=26218

The server reads request lines and answers in JSON:

  $ printf 'prog=fib engine=i2\n' | fpc serve --no-times 2>/dev/null
  {"id":0,"source":"fib","engine":"i2","fuel":20000000,"status":"ok","output":[377],"instructions":15845,"cycles":123964,"mem_refs":26218,"fastpath":{"fast_transfers":0,"slow_transfers":2439,"rs_pushes":0,"rs_hits":0,"rs_flushes":0,"rs_spills":0,"bank_words_loaded":0,"bank_words_spilled":0,"ff_hits":0,"ff_misses":0,"frame_allocs":1220,"frame_frees":1220}}

An over-long request line is discarded up to the next newline and
reported as a structured error; the stream resynchronizes and later
requests still run (same framing as the TCP transport):

  $ { printf 'src=%0100d\n' 0; printf 'prog=fib engine=i2\n'; } | fpc serve --no-times --max-line 64 2>/dev/null | cut -c1-60
  {"id":null,"status":"error","error":"overlong-line","message
  {"id":0,"source":"fib","engine":"i2","fuel":20000000,"status

A wall-clock deadline turns a runaway job into a structured failure
instead of a wedged worker:

  $ printf 'src=MODULE\sMain;\\nPROC\smain()\s=\\n\sWHILE\s0\s<\s1\sDO\sEND;\\nEND;\\nEND; fuel=2000000000 deadline_ms=50\n' | fpc serve --no-times 2>/dev/null | grep -c '"error":"deadline-exceeded"'
  1

The shutdown admin command is acknowledged, then the server drains:

  $ printf 'prog=fib engine=i2\nshutdown\nprog=hanoi\n' | fpc serve --no-times 2>/dev/null | grep -c '"status":\("draining"\|"ok"\)'
  2

The TCP transport (the reactor): the same job keys — including session
workloads and green-thread scheduling — travel over a live socket, and
a pipelined connection's responses are byte-identical to fpc batch on
the same jobfile:

  $ cat > tcp-jobs.txt <<'EOF'
  > sessions=48 window=8 seed=7 engine=i3 sched=yield
  > prog=fib engine=i2 sched=preempt quantum=500
  > sessions=32 engine=i4
  > prog=hanoi engine=i3
  > EOF
  $ fpc serve --tcp 0 --no-times -j 2 >server.out 2>server.err &
  $ for _ in $(seq 1 100); do grep -q 'serving on' server.err 2>/dev/null && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*serving on 127.0.0.1:\([0-9]*\).*/\1/p' server.err)
  $ fpc batch --json -j 2 tcp-jobs.txt 2>/dev/null > batch.out
  $ fpc request --port "$PORT" \
  >   'sessions=48 window=8 seed=7 engine=i3 sched=yield' \
  >   'prog=fib engine=i2 sched=preempt quantum=500' \
  >   'sessions=32 engine=i4' \
  >   'prog=hanoi engine=i3' > tcp.out
  $ cmp batch.out tcp.out && echo byte-identical
  byte-identical
  $ fpc request --port "$PORT" shutdown
  {"status":"draining"}
  $ wait

The green-thread scheduler: a session workload multiplexed over one
machine by coroutine XFER.  Stdout is the deterministic scheduling
report — simulated meters only — and both execution tiers produce the
same bytes (host throughput goes to stderr):

  $ fpc sched --sessions 64 2>/dev/null
  output=64,2423
  sessions forked=64 ended=65 peak-live=33
  slices=1 preemptions=0 switch-xfers=514
  rs-flushes=0 (0.0000/xfer) bank-overflows=0 (0.0000/call)
  frame-peak=560w lifo-reserved=2112w ratio=0.2652
  $ fpc sched --sessions 64 --tier=compiled 2>/dev/null
  output=64,2423
  sessions forked=64 ended=65 peak-live=33
  slices=1 preemptions=0 switch-xfers=514
  rs-flushes=0 (0.0000/xfer) bank-overflows=0 (0.0000/call)
  frame-peak=560w lifo-reserved=2112w ratio=0.2652

Forcing switches with a preemption quantum keeps the answer identical —
injected yields land only at statement boundaries — while the footprint
report shows the cost of switching mid-conversation:

  $ fpc sched --sessions 64 --sched preempt:300 2>/dev/null
  output=64,2423
  sessions forked=64 ended=65 peak-live=32
  slices=80 preemptions=78 switch-xfers=594
  rs-flushes=0 (0.0000/xfer) bank-overflows=0 (0.0000/call)
  frame-peak=776w lifo-reserved=2048w ratio=0.3789

Profile a run: per-procedure cost attribution whose totals equal the
machine's meters for the same run (the conservation property):

  $ fpc profile fib -e i2 2>/dev/null
  == profile (I2) ==
  +-----------+-------+-------------+-------+-------------+-----------+-----------+------+
  | procedure | calls | excl cycles |     % | incl cycles | excl refs | incl refs | fast |
  +-----------+-------+-------------+-------+-------------+-----------+-----------+------+
  | Main.fib  |  1219 |      123792 | 99.9% |      123792 |     26201 |     26201 | 0.0% |
  | (outside) |     0 |         116 |  0.1% |           0 |         4 |         0 |    - |
  | Main.main |     1 |          56 |  0.0% |      123848 |        13 |     26214 | 0.0% |
  +-----------+-------+-------------+-------+-------------+-----------+-----------+------+
    note: totals: 123964 cycles, 26218 storage refs, 1219 calls, 1220 returns, 0 other xfers, 0 traps
    note: fast path: 0/2439 call+return transfers with no storage reference (0.0%)
    note: return stack: 0 pushes, 0 hits, 0 flushes (0 entries), 0 spills
    note: banks: 0 loads (0 words), 0 spills (0 words)
    note: frames: 1220 allocs (0 via free-frame stack, 2 software), 1220 frees (0 to free-frame stack)
    note: call depth: mean 9.6, p50 10, p90 12, max 14

The exports: Chrome trace-event JSON (chrome://tracing loadable) and
collapsed flamegraph stacks:

  $ fpc profile fib -e i3 --chrome fib-trace.json --folded fib.folded >/dev/null 2>&1
  $ head -c 33 fib-trace.json; echo
  {"traceEvents":[{"name":"process_
  $ grep -c "^Main.main;Main.fib " fib.folded
  1

A trace=1 request carries a profile summary into the result JSON:

  $ printf 'prog=fib engine=i2 trace=1\n' | fpc serve --no-times 2>/dev/null | grep -o '"profile":{"engine":"I2","cycles":123964,"mem_refs":26218' 
  "profile":{"engine":"I2","cycles":123964,"mem_refs":26218

...and the pool metrics aggregate per-procedure cost across traced
jobs (only the deterministic rows shown):

  $ printf 'prog=fib engine=i2 trace=1\n' > traced.txt
  $ fpc batch traced.txt 2>&1 >/dev/null | grep -E "traced jobs|trace events|Main\."
  | traced jobs                    |                                     1 |
  | trace events                   |                                  4880 |
  |   Main.fib                     | 1219 calls, 123792 cycles, 26201 refs |
  |   Main.main                    |           1 calls, 56 cycles, 13 refs |

Link-time devirtualization is on by default: the CFA pass proves the
cross-module calls single-target, rewrites them to the DIRECTCALL fast
path (reported on stderr), and the cycle and storage-reference meters
drop while the answer stays put.  `--devirt false` runs the late-bound
§5 image unchanged:

  $ fpc run xleaf
  22138
  devirt: sites=2 proven=2 rewritten=2 short=2 abstained=0
  engine=i2 instructions=49511 cycles=357172 storage-refs=75015

  $ fpc run xleaf --devirt false
  22138
  engine=i2 instructions=46511 cycles=378172 storage-refs=81015
