lib/frames/frame.ml: Fpc_machine Memory
