lib/experiments/e05_directcall_space.ml: Convention Exp Fpc_compiler Fpc_mesa Fpc_util Harness List Tablefmt
