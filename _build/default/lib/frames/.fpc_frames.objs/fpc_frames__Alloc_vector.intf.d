lib/frames/alloc_vector.mli: Fpc_machine Size_class
