(** The global frame table (§5.1).

    One 16-bit word per module instance: 14 bits of quad-aligned global
    frame address plus two spare bits giving the entry-point {e bias} in
    multiples of 32, so a module with more than 32 procedures gets several
    GFT entries sharing one global frame.  The table lives in simulated
    memory; the metered [read_entry] is the second indirection of an
    external call (Figure 1). *)

val capacity : int
(** 1024 entries (ten-bit gfi).  Entry 0 is reserved so that gfi 0 never
    denotes a module. *)

type t

val create : mem:Fpc_machine.Memory.t -> base:int -> t
(** The table occupies [capacity] words at [base]. *)

val base : t -> int

val set_entry : t -> gfi:int -> gf_addr:int -> bias:int -> unit
(** Unmetered (link-time).  [gf_addr] must be quad-aligned and below 2{^16};
    [bias] in 0..3. *)

val read_entry : t -> cost_mem_read:bool -> gfi:int -> int * int
(** [(gf_addr, bias)].  With [cost_mem_read] the access is metered (the
    running machine); otherwise it peeks (tools). *)

val read_entry_word : t -> cost_mem_read:bool -> gfi:int -> int
(** The raw packed entry word — the allocation-free form the transfer
    engine uses; split it with [w land 0xFFFC] / [w land 3] (see
    {!unpack_entry}). *)

val pack_entry : gf_addr:int -> bias:int -> int
val unpack_entry : int -> int * int
