(* Tests for the execution service: the worker pool, the compilation
   cache, and the job/request plumbing.

   The load-bearing properties:
   - determinism: simulated results depend only on the spec, never on the
     domain count or cache state;
   - the cache actually short-circuits compilation;
   - poisoned jobs (parse errors, runaway loops) fail as results, not as
     pool casualties. *)

open Fpc_svc

let suite_specs () =
  List.concat_map
    (fun name ->
      List.map (fun engine -> Job.spec ~engine (Job.Suite name))
        [ "i1"; "i2"; "i3"; "i4" ])
    Fpc_workload.Programs.names

(* The deterministic projection of a result: everything except host
   timings and the cache bit. *)
let fingerprint (r : Job.result) =
  ( r.id,
    Job.result_line r,
    r.stats.Job.instructions,
    r.stats.Job.cycles,
    r.stats.Job.mem_refs )

let test_determinism_across_domain_counts () =
  let specs = suite_specs () in
  let r1, m1 = Pool.run_jobs ~domains:1 specs in
  let r4, m4 = Pool.run_jobs ~domains:4 specs in
  Alcotest.(check int) "all jobs ran (1 domain)" (List.length specs) m1.Metrics.jobs;
  Alcotest.(check int) "all jobs ran (4 domains)" (List.length specs) m4.Metrics.jobs;
  Alcotest.(check int) "none failed" 0 (m1.Metrics.failed + m4.Metrics.failed);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d identical at 1 and 4 domains" a.Job.id)
        true
        (fingerprint a = fingerprint b))
    r1 r4

let test_results_in_submission_order () =
  let specs = suite_specs () in
  let results, _ = Pool.run_jobs ~domains:4 specs in
  List.iteri
    (fun i (r : Job.result) -> Alcotest.(check int) "id order" i r.id)
    results

let test_cache_hit_skips_compilation () =
  let cache = Image_cache.create () in
  let spec = Job.spec ~engine:"i2" (Job.Suite "fib") in
  let pool = Pool.create ~domains:1 ~cache () in
  ignore (Pool.submit pool spec);
  ignore (Pool.submit pool spec);
  let results = Pool.await pool in
  Pool.shutdown pool;
  match results with
  | [ first; second ] ->
    Alcotest.(check bool) "first is a miss" false first.Job.stats.Job.cache_hit;
    Alcotest.(check bool) "first paid the compiler" true
      (first.Job.stats.Job.compile_s > 0.0);
    Alcotest.(check bool) "second is a hit" true second.Job.stats.Job.cache_hit;
    Alcotest.(check (float 0.0)) "hit compiles for free" 0.0
      second.Job.stats.Job.compile_s;
    Alcotest.(check bool) "identical simulated outcome" true
      (Job.outcome_equal first.Job.outcome second.Job.outcome);
    let s = Image_cache.stats cache in
    Alcotest.(check int) "one hit" 1 s.Image_cache.hits;
    Alcotest.(check int) "one miss" 1 s.Image_cache.misses;
    Alcotest.(check int) "one entry" 1 s.Image_cache.entries
  | rs -> Alcotest.failf "expected 2 results, got %d" (List.length rs)

let test_cache_shared_across_engines_of_one_convention () =
  (* I1 and I2 compile under the same (external) convention, so they share
     a cache entry; I3 (direct) and I4 (banked) each need their own. *)
  let cache = Image_cache.create () in
  let specs =
    List.map (fun engine -> Job.spec ~engine (Job.Suite "fib"))
      [ "i1"; "i2"; "i3"; "i4" ]
  in
  let results, _ = Pool.run_jobs ~domains:1 ~cache specs in
  Alcotest.(check int) "all ok" 4 (List.length results);
  let s = Image_cache.stats cache in
  Alcotest.(check int) "three distinct images" 3 s.Image_cache.entries;
  Alcotest.(check int) "i2 reused i1's image" 1 s.Image_cache.hits

let infinite_loop_src =
  {|
MODULE Main;
PROC main() =
  VAR i: INT := 0;
  WHILE 0 < 1 DO
    i := i + 1;
  END;
END;
END;
|}

let test_poisoned_jobs_do_not_kill_the_pool () =
  let pool = Pool.create ~domains:2 () in
  let bad = Pool.submit pool (Job.spec (Job.Inline "MODULE Main; PROC")) in
  let runaway =
    Pool.submit pool (Job.spec ~fuel:50_000 (Job.Inline infinite_loop_src))
  in
  let good = Pool.submit pool (Job.spec (Job.Suite "fib")) in
  let results = Pool.await pool in
  let find id = List.find (fun (r : Job.result) -> r.id = id) results in
  (match (find bad).Job.outcome with
  | Job.Failed (Job.Compile_error, _) -> ()
  | _ ->
    Alcotest.failf "bad source: expected compile error, got %s"
      (Job.result_line (find bad)));
  (match (find runaway).Job.outcome with
  | Job.Failed (Job.Fuel_exhausted, _) -> ()
  | _ -> Alcotest.fail "runaway loop should exhaust its fuel");
  (match (find good).Job.outcome with
  | Job.Output [ 377 ] -> ()
  | _ -> Alcotest.fail "good job should still produce fib's output");
  (* the pool is still alive and serving after the failures *)
  let again = Pool.submit pool (Job.spec (Job.Suite "hanoi")) in
  let results = Pool.await pool in
  (match (List.find (fun (r : Job.result) -> r.id = again) results).Job.outcome with
  | Job.Output [ 127 ] -> ()
  | _ -> Alcotest.fail "pool must keep serving after poisoned jobs");
  let m = Pool.metrics pool in
  Pool.shutdown pool;
  Alcotest.(check int) "four jobs total" 4 m.Metrics.jobs;
  Alcotest.(check int) "two failed" 2 m.Metrics.failed;
  Alcotest.(check int) "one by fuel" 1 m.Metrics.fuel_exhausted

(* Soak: several producer domains hammer submit while the main domain
   polls concurrently, at every pool width.  The properties under load:
   no deadlock, every submitted id comes back exactly once across the
   interleaved poll/await calls, every poll batch respects the
   documented id-sorted order, and the shard-merged metrics agree with
   the results actually returned. *)
let test_soak_concurrent_producers () =
  let engines = [| "i1"; "i2"; "i3"; "i4" |] in
  let mix rng =
    (* mostly healthy jobs, seasoned with failures of both kinds *)
    match Random.State.int rng 10 with
    | 0 -> Job.spec (Job.Inline "MODULE Main; PROC")  (* compile error *)
    | 1 -> Job.spec ~fuel:10_000 (Job.Inline infinite_loop_src)
    | n ->
      let prog = [| "fib"; "hanoi"; "bsearch"; "leafcalls" |].(n mod 4) in
      Job.spec ~engine:engines.(n mod 4) (Job.Suite prog)
  in
  List.iter
    (fun domains ->
      let rng = Random.State.make [| 0x50AC; domains |] in
      let producers = 3 and per_producer = 10 in
      let specs =
        Array.init producers (fun _ ->
            List.init per_producer (fun _ -> mix rng))
      in
      let pool = Pool.create ~domains () in
      let handles =
        Array.map
          (fun specs ->
            Domain.spawn (fun () ->
                List.map (fun spec -> Pool.submit pool spec) specs))
          specs
      in
      (* poll while the producers are still submitting *)
      let polled = ref [] in
      let check_batch batch =
        let ids = List.map (fun (r : Job.result) -> r.Job.id) batch in
        Alcotest.(check (list int))
          "poll batch sorted by id" (List.sort compare ids) ids
      in
      for _ = 1 to 20 do
        let batch = Pool.poll pool in
        check_batch batch;
        polled := !polled @ batch;
        Domain.cpu_relax ()
      done;
      let submitted =
        Array.fold_left (fun acc h -> acc @ Domain.join h) [] handles
      in
      (* all submissions are in; drain the rest *)
      let rec drain acc =
        let batch = Pool.await pool in
        check_batch batch;
        let acc = acc @ batch in
        if Pool.pending pool = 0 then acc else drain acc
      in
      let results = !polled @ drain [] in
      let total = producers * per_producer in
      Alcotest.(check int)
        (Printf.sprintf "%dd: all ids submitted" domains)
        total (List.length submitted);
      let got = List.map (fun (r : Job.result) -> r.Job.id) results in
      Alcotest.(check (list int))
        (Printf.sprintf "%dd: every id exactly once" domains)
        (List.sort compare submitted)
        (List.sort compare got);
      (* metrics (merged from the per-worker shards) must agree with the
         results actually handed back *)
      let m = Pool.metrics pool in
      Pool.shutdown pool;
      let failed =
        List.length
          (List.filter
             (fun (r : Job.result) ->
               match r.Job.outcome with Job.Failed _ -> true | _ -> false)
             results)
      in
      Alcotest.(check int)
        (Printf.sprintf "%dd: metrics jobs" domains)
        total m.Metrics.jobs;
      Alcotest.(check int)
        (Printf.sprintf "%dd: metrics failed" domains)
        failed m.Metrics.failed;
      Alcotest.(check int)
        (Printf.sprintf "%dd: metrics succeeded" domains)
        (total - failed) m.Metrics.succeeded;
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
      Alcotest.(check int)
        (Printf.sprintf "%dd: metrics instructions" domains)
        (sum (fun (r : Job.result) -> r.Job.stats.Job.instructions))
        m.Metrics.instructions;
      Alcotest.(check int)
        (Printf.sprintf "%dd: metrics cycles" domains)
        (sum (fun (r : Job.result) -> r.Job.stats.Job.cycles))
        m.Metrics.cycles)
    [ 1; 2; 4; 8 ]

let test_unknown_engine_and_program_degrade () =
  let results, m =
    Pool.run_jobs ~domains:1
      [
        Job.spec ~engine:"i9" (Job.Suite "fib");
        Job.spec (Job.Suite "no_such_program");
      ]
  in
  List.iter
    (fun (r : Job.result) ->
      match r.Job.outcome with
      | Job.Failed (Job.Bad_request, _) -> ()
      | _ -> Alcotest.fail "expected bad-request failures")
    results;
  Alcotest.(check int) "both failed" 2 m.Metrics.failed

let test_request_line_roundtrip () =
  let specs =
    [
      Job.spec ~engine:"i3" ~fuel:1234 (Job.Suite "fib");
      Job.spec ~trace:true (Job.Suite "hanoi");
      Job.spec ~tier:Job.Compiled (Job.Suite "sieve");
      Job.spec ~tier:Job.Interp ~engine:"i4" (Job.Suite "fib");
      Job.spec (Job.Inline "MODULE Main;\nPROC main() =\n  OUTPUT 1;\nEND;\nEND;\n");
    ]
  in
  List.iter
    (fun spec ->
      match Job.parse_request (Job.request_of_spec spec) with
      | Ok parsed ->
        Alcotest.(check bool) "round-trips" true (parsed = spec)
      | Error m -> Alcotest.fail m)
    specs;
  (match Job.parse_request "fuel=10" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a request without a source must be rejected");
  (match Job.parse_request "prog=fib fuel=banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric fuel must be rejected");
  (match Job.parse_request "prog=fib tier=compiled" with
  | Ok s -> Alcotest.(check bool) "tier parses" true (s.Job.tier = Job.Compiled)
  | Error m -> Alcotest.fail m);
  match Job.parse_request "prog=fib tier=jit" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tier must be rejected"

(* Random specs (all engines, suite and inline sources with every escape
   class, optional fuel/trace/deadline) must render to a request line
   that parses back to exactly the same spec. *)
let request_roundtrip_prop =
  let spec_gen =
    let open QCheck.Gen in
    let source =
      oneof
        [
          map (fun n -> Job.Suite n) (oneofl Fpc_workload.Programs.names);
          map
            (fun s -> Job.Inline s)
            (string_size ~gen:
               (oneofl
                  [ 'a'; 'Z'; '0'; ' '; '\n'; '\t'; '\\'; '='; '#'; '"' ])
               (int_range 0 40));
        ]
    in
    let* source = source in
    let* engine = oneofl [ "i1"; "i2"; "i3"; "i4" ] in
    let* tier = oneofl [ Job.Interp; Job.Compiled; Job.Auto ] in
    let* fuel = int_range 1 10_000_000 in
    let* trace = bool in
    let* deadline_ms = opt (int_range 1 100_000) in
    return (Job.spec ~engine ~tier ~fuel ~trace ?deadline_ms source)
  in
  let print_spec spec = Job.request_of_spec spec in
  QCheck.Test.make ~count:500 ~name:"request line round-trips any spec"
    (QCheck.make ~print:print_spec spec_gen)
    (fun spec ->
      match Job.parse_request (Job.request_of_spec spec) with
      | Ok parsed -> parsed = spec
      | Error m -> QCheck.Test.fail_report m)

(* A junk tail — any non-empty token that is not a known key=value —
   must turn the whole line into a clean parse error, never an
   exception and never a silently-accepted spec. *)
let request_junk_tail_prop =
  let gen =
    let open QCheck.Gen in
    let* prog = oneofl Fpc_workload.Programs.names in
    let* junk =
      string_size ~gen:(oneofl [ 'z'; 'q'; '9'; '='; '-'; '_' ]) (int_range 0 12)
    in
    return (Printf.sprintf "prog=%s zz%s" prog junk)
  in
  QCheck.Test.make ~count:200 ~name:"junk tails are rejected, not crashed on"
    (QCheck.make ~print:(fun l -> l) gen)
    (fun line ->
      match Job.parse_request line with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_report ("accepted: " ^ line))

(* Push-mode pool: with [deliver], results bypass the shards (await
   returns nothing) and every submitted job is handed over exactly
   once, concurrently, before drain returns. *)
let test_deliver_mode () =
  let delivered = ref [] in
  let dm = Mutex.create () in
  let deliver (r : Job.result) =
    Mutex.lock dm;
    delivered := r :: !delivered;
    Mutex.unlock dm
  in
  let pool = Pool.create ~domains:2 ~deliver () in
  let n = 20 in
  for _ = 1 to n do
    ignore (Pool.submit pool (Job.spec (Job.Suite "fib")))
  done;
  Pool.drain pool;
  let ids =
    List.sort compare (List.map (fun (r : Job.result) -> r.Job.id) !delivered)
  in
  Alcotest.(check (list int)) "every id delivered exactly once"
    (List.init n Fun.id) ids;
  Alcotest.(check (list int)) "await returns nothing in push mode" []
    (List.map (fun (r : Job.result) -> r.Job.id) (Pool.await pool));
  let metrics = Pool.metrics pool in
  Pool.shutdown pool;
  Alcotest.(check int) "metrics still count delivered jobs" n
    metrics.Metrics.jobs

(* A wall-clock deadline fails the job (not the worker): the runaway
   loop comes back Deadline_exceeded promptly despite a huge fuel
   budget, and the pool keeps executing other jobs. *)
let test_deadline_exceeded () =
  let pool = Pool.create ~domains:1 () in
  let hung =
    Pool.submit pool
      (Job.spec ~fuel:2_000_000_000 ~deadline_ms:100 (Job.Inline infinite_loop_src))
  in
  let good = Pool.submit pool (Job.spec (Job.Suite "fib")) in
  let t0 = Unix.gettimeofday () in
  let results = Pool.await pool in
  let waited = Unix.gettimeofday () -. t0 in
  let metrics = Pool.metrics pool in
  Pool.shutdown pool;
  let find id = List.find (fun (r : Job.result) -> r.id = id) results in
  (match (find hung).Job.outcome with
  | Job.Failed (Job.Deadline_exceeded, _) -> ()
  | _ -> Alcotest.fail "runaway job should fail with Deadline_exceeded");
  (match (find good).Job.outcome with
  | Job.Output _ -> ()
  | Job.Failed (_, m) -> Alcotest.failf "good job failed: %s" m);
  Alcotest.(check bool) "deadline fired promptly, not at fuel exhaustion" true
    (waited < 30.0);
  Alcotest.(check int) "metrics counted the deadline" 1
    metrics.Metrics.deadline_exceeded;
  (* a job that finishes in time keeps its deadline without penalty *)
  let ok, _ =
    Pool.run_jobs ~domains:1 [ Job.spec ~deadline_ms:60_000 (Job.Suite "fib") ]
  in
  match (List.hd ok).Job.outcome with
  | Job.Output _ -> ()
  | Job.Failed (_, m) -> Alcotest.failf "deadlined-but-fast job failed: %s" m

let test_lru_eviction () =
  let cache = Image_cache.create ~capacity:2 () in
  let conv = Fpc_compiler.Convention.external_ in
  let src n =
    Printf.sprintf "MODULE Main;\nPROC main() =\n  OUTPUT %d;\nEND;\nEND;\n" n
  in
  let get n =
    match Image_cache.find_or_compile cache ~convention:conv ~source:(src n) with
    | Ok (_, hit, _) -> hit
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "1 cold" false (get 1);
  Alcotest.(check bool) "2 cold" false (get 2);
  Alcotest.(check bool) "1 warm" true (get 1);
  (* inserting 3 must evict 2 (least recently used), not 1 *)
  Alcotest.(check bool) "3 cold" false (get 3);
  Alcotest.(check bool) "1 still warm" true (get 1);
  Alcotest.(check bool) "2 evicted" false (get 2);
  let s = Image_cache.stats cache in
  Alcotest.(check int) "two evictions" 2 s.Image_cache.evictions;
  Alcotest.(check int) "bounded" 2 s.Image_cache.entries

let test_metrics_json_shape () =
  let _, m = Pool.run_jobs ~domains:1 [ Job.spec (Job.Suite "fib") ] in
  let json = Fpc_util.Jsonout.to_string (Metrics.to_json m) in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec at i =
      i + n <= h && (String.sub json i n = needle || at (i + 1))
    in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "\"jobs\":1"; "\"succeeded\":1"; "\"domains\":1"; "\"cache\"" ]

let test_traced_job () =
  let results, m =
    Pool.run_jobs ~domains:2
      [
        Job.spec ~engine:"i3" ~trace:true (Job.Suite "fib");
        Job.spec ~engine:"i2" (Job.Suite "fib");
      ]
  in
  let traced = List.find (fun (r : Job.result) -> r.id = 0) results in
  let plain = List.find (fun (r : Job.result) -> r.id = 1) results in
  (match plain.profile with
  | None -> ()
  | Some _ -> Alcotest.fail "untraced job must not carry a profile");
  (match traced.profile with
  | None -> Alcotest.fail "traced job lost its profile"
  | Some s ->
    (* the profile agrees with the job's own deterministic counters *)
    Alcotest.(check int) "profile cycles" traced.stats.Job.cycles
      s.Fpc_trace.Profile.s_cycles;
    Alcotest.(check int) "profile refs" traced.stats.Job.mem_refs
      s.Fpc_trace.Profile.s_mem_refs;
    Alcotest.(check bool) "profile has procedures" true
      (List.length s.Fpc_trace.Profile.s_procs > 0));
  (* tracing must not change the simulated outcome *)
  (match (traced.outcome, plain.outcome) with
  | Job.Output a, Job.Output b ->
    Alcotest.(check (list int)) "same output traced or not" b a
  | _ -> Alcotest.fail "both jobs should succeed");
  Alcotest.(check int) "metrics counted the traced job" 1
    m.Metrics.traced_jobs;
  Alcotest.(check bool) "metrics aggregated events" true
    (m.Metrics.trace_events > 0);
  Alcotest.(check bool) "metrics aggregated procedures" true
    (List.exists
       (fun (p : Metrics.proc_cost) -> p.pc_name = "Main.fib")
       m.Metrics.proc_costs);
  (* fast-path counters surface per job, even untraced *)
  Alcotest.(check bool) "rs pushes visible on i3" true
    (traced.stats.Job.fastpath.Fpc_interp.Interp.f_rs_pushes > 0)

(* ---- arena reuse ---- *)

(* One engine's worth of machinery for the arena-vs-clone comparisons. *)
let engine_named name =
  match Job.engine_of_name name with
  | Ok e -> e
  | Error m -> failwith m

let pristine_for cache ~engine ~source =
  let convention = Fpc_compiler.Convention.for_engine engine in
  match Image_cache.find_pristine cache ~convention ~source with
  | Ok (pristine, key, _hit, _dt) -> (pristine, key)
  | Error m -> failwith m

let run_to_outcome st =
  Fpc_interp.Interp.run ~max_steps:200_000 st;
  Fpc_interp.Interp.outcome st

(* Run [source] on a fresh clone of [pristine] — the baseline the arena
   path must be indistinguishable from. *)
let clone_run ~pristine ~engine =
  let image = Fpc_mesa.Image.clone pristine in
  let st =
    Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  run_to_outcome st

let arena_run arena ~key ~engine ~engine_name ~pristine =
  let slot = Arena.acquire arena ~key ~engine ~engine_name ~pristine () in
  let st = Arena.checkout slot in
  Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
  run_to_outcome st

let clone_traced_run ~pristine ~engine =
  let image = Fpc_mesa.Image.clone pristine in
  let p = Fpc_interp.Profiler.create ~image ~engine () in
  let st =
    Fpc_interp.Interp.boot ~tracer:p.Fpc_interp.Profiler.sink ~image ~engine
      ~instance:"Main" ~proc:"main" ~args:[] ()
  in
  let o = run_to_outcome st in
  ignore
    (Fpc_trace.Profile.finish p.Fpc_interp.Profiler.profile
       ~cycles:o.Fpc_interp.Interp.o_cycles
       ~mem_refs:o.Fpc_interp.Interp.o_mem_refs);
  (o, Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile)

let arena_traced_run arena ~key ~engine ~engine_name ~pristine =
  let slot = Arena.acquire arena ~key ~engine ~engine_name ~pristine () in
  let p = Fpc_interp.Profiler.create ~image:(Arena.image slot) ~engine () in
  let st = Arena.checkout ~tracer:p.Fpc_interp.Profiler.sink slot in
  Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
  let o = run_to_outcome st in
  ignore
    (Fpc_trace.Profile.finish p.Fpc_interp.Profiler.profile
       ~cycles:o.Fpc_interp.Interp.o_cycles
       ~mem_refs:o.Fpc_interp.Interp.o_mem_refs);
  (o, Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile)

(* The tentpole property: a random program run repeatedly through ONE
   reused arena slot is indistinguishable — status, output, meters,
   fast-path counters, traced profile — from runs on fresh clones.  The
   third arena pass per engine runs traced, so the property also covers
   resetting a slot whose previous run had a tracer attached. *)
let arena_reuse_equivalence_prop =
  let cache = Image_cache.create ~capacity:64 () in
  let arena = Arena.create () in
  QCheck.Test.make ~count:15
    ~name:"arena reuse == fresh clones (outcome + profile, all engines)"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 10_000))
    (fun seed ->
      (* odd seeds add coroutine round-trips so the same differential
         sweep also covers non-LIFO XFER and RETCTX *)
      let coroutine_rate = if seed mod 2 = 0 then 0.0 else 0.5 in
      let source =
        Fpc_workload.Synthetic.random_program ~coroutine_rate ~seed ()
      in
      List.for_all
        (fun engine_name ->
          let engine = engine_named engine_name in
          let pristine, key = pristine_for cache ~engine ~source in
          let c1 = clone_run ~pristine ~engine in
          let c2 = clone_run ~pristine ~engine in
          let a1 = arena_run arena ~key ~engine ~engine_name ~pristine in
          let a2 = arena_run arena ~key ~engine ~engine_name ~pristine in
          let ct, cp = clone_traced_run ~pristine ~engine in
          let at, ap =
            arena_traced_run arena ~key ~engine ~engine_name ~pristine
          in
          if not (c1 = c2 && a1 = c1 && a2 = c1) then
            QCheck.Test.fail_reportf "seed %d, %s: arena outcome diverged" seed
              engine_name
          else if not (at = ct && ap = cp) then
            QCheck.Test.fail_reportf "seed %d, %s: traced run diverged" seed
              engine_name
          else true)
        [ "i1"; "i2"; "i3"; "i4" ])

(* After a trapping run dirtied the arena image, a re-acquire must leave
   its store word-for-word equal to a fresh clone's (equivalently, to the
   pristine's) with no dirty pages left behind. *)
let test_arena_reset_restores_store () =
  let cache = Image_cache.create () in
  let engine = engine_named "i2" in
  let pristine, key = pristine_for cache ~engine ~source:infinite_loop_src in
  let arena = Arena.create () in
  let slot = Arena.acquire arena ~key ~engine ~engine_name:"i2" ~pristine () in
  let st = Arena.checkout slot in
  Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
  Fpc_interp.Interp.run ~max_steps:10_000 st;
  (match st.Fpc_core.State.status with
  | Fpc_core.State.Trapped Fpc_core.State.Step_limit -> ()
  | _ -> Alcotest.fail "expected the loop to trap on the step limit");
  let mem slot = (Arena.image slot).Fpc_mesa.Image.mem in
  Alcotest.(check bool) "the run dirtied pages" true
    (Fpc_machine.Memory.dirty_pages (mem slot) > 0);
  let slot2 = Arena.acquire arena ~key ~engine ~engine_name:"i2" ~pristine () in
  Alcotest.(check bool) "same physical slot reused" true (slot == slot2);
  Alcotest.(check int) "reset leaves no dirty pages" 0
    (Fpc_machine.Memory.dirty_pages (mem slot2));
  let fresh = (Fpc_mesa.Image.clone pristine).Fpc_mesa.Image.mem in
  let n = Fpc_machine.Memory.size (mem slot2) in
  Alcotest.(check int) "same store size" n (Fpc_machine.Memory.size fresh);
  let diff = ref 0 in
  for a = 0 to n - 1 do
    if Fpc_machine.Memory.peek (mem slot2) a <> Fpc_machine.Memory.peek fresh a
    then incr diff
  done;
  Alcotest.(check int) "reset store word-equal to a fresh clone" 0 !diff;
  let s = Arena.stats arena in
  Alcotest.(check int) "one miss, one hit" 1 s.Arena.hits;
  Alcotest.(check int) "one miss, one hit (misses)" 1 s.Arena.misses

(* A fuel-exhausted scheduler job must leave its arena slot reusable:
   abandoning a half-run session workload mid-slice (status
   Trapped Step_limit, live forked processes, half-consumed frame heap)
   and reacquiring the same slot has to produce a run indistinguishable
   from a fresh clone. *)
let test_arena_mid_slice_reuse () =
  let cache = Image_cache.create () in
  let arena = Arena.create () in
  let source =
    Fpc_workload.Sessions.program (Fpc_workload.Sessions.default ~total:16)
  in
  let engine_name = "i2" in
  let engine = engine_named engine_name in
  let pristine, key = pristine_for cache ~engine ~source in
  let baseline = clone_run ~pristine ~engine in
  let slot = Arena.acquire arena ~key ~engine ~engine_name ~pristine () in
  let st = Arena.checkout slot in
  Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
  let step n st = Fpc_interp.Interp.run ~max_steps:n st in
  ignore (Fpc_sched.Sched.run ~step ~fuel:500 st);
  (match st.Fpc_core.State.status with
  | Fpc_core.State.Trapped Fpc_core.State.Step_limit -> ()
  | _ -> Alcotest.fail "tiny-fuel scheduler run should exhaust mid-workload");
  let again = arena_run arena ~key ~engine ~engine_name ~pristine in
  Alcotest.(check bool) "reused slot indistinguishable from a fresh clone"
    true
    (again = baseline);
  let s = Arena.stats arena in
  Alcotest.(check int) "the rerun reset the abandoned slot (hit)" 1
    s.Arena.hits

(* End-to-end through the pool: arena reuse on (the default) and off must
   produce identical results, job for job. *)
let test_pool_arena_matches_clone_path () =
  let specs = suite_specs () in
  let specs = specs @ specs in
  let ra, ma = Pool.run_jobs ~domains:2 ~arena_reuse:true specs in
  let rc, mc = Pool.run_jobs ~domains:2 ~arena_reuse:false specs in
  Alcotest.(check int) "all jobs ran (arena)" (List.length specs) ma.Metrics.jobs;
  Alcotest.(check int) "all jobs ran (clone)" (List.length specs) mc.Metrics.jobs;
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d identical with and without arena" a.Job.id)
        true
        (fingerprint a = fingerprint b))
    ra rc

(* The tier is invisible in deterministic output: the whole suite x all
   engines produces identical fingerprints (result lines, simulated
   meters) whether the pool interprets or runs threaded code — and the
   compiled run's metrics account one translation per job (misses for
   each distinct pristine image, hits for the rest). *)
let test_pool_tiers_agree () =
  let with_tier tier =
    List.map (fun s -> { s with Job.tier }) (suite_specs ())
  in
  let ri, mi = Pool.run_jobs ~domains:2 (with_tier Job.Interp) in
  let rc, mc = Pool.run_jobs ~domains:2 (with_tier Job.Compiled) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d identical across tiers" a.Job.id)
        true
        (fingerprint a = fingerprint b))
    ri rc;
  Alcotest.(check int) "interp tier never translates" 0
    (mi.Metrics.translation_hits + mi.Metrics.translation_misses);
  Alcotest.(check int) "compiled tier translates once per job"
    mc.Metrics.jobs
    (mc.Metrics.translation_hits + mc.Metrics.translation_misses);
  Alcotest.(check bool) "some translations were shared" true
    (mc.Metrics.translation_hits > 0)

(* The deadline slicer drives the compiled tier too: a runaway loop on
   tier=compiled comes back Deadline_exceeded despite a huge fuel
   budget (Tier.run resumes across Step_limit slices). *)
let test_deadline_exceeded_compiled_tier () =
  let results, m =
    Pool.run_jobs ~domains:1
      [
        Job.spec ~tier:Job.Compiled ~fuel:2_000_000_000 ~deadline_ms:100
          (Job.Inline infinite_loop_src);
      ]
  in
  (match (List.hd results).Job.outcome with
  | Job.Failed (Job.Deadline_exceeded, _) -> ()
  | _ -> Alcotest.fail "compiled runaway should fail with Deadline_exceeded");
  Alcotest.(check int) "metrics counted the deadline" 1
    m.Metrics.deadline_exceeded

let () =
  Alcotest.run "svc"
    [
      ( "pool",
        [
          Alcotest.test_case "determinism across domain counts" `Slow
            test_determinism_across_domain_counts;
          Alcotest.test_case "results in submission order" `Quick
            test_results_in_submission_order;
          Alcotest.test_case "poisoned jobs do not kill the pool" `Quick
            test_poisoned_jobs_do_not_kill_the_pool;
          Alcotest.test_case "unknown engine/program degrade" `Quick
            test_unknown_engine_and_program_degrade;
          Alcotest.test_case "soak: concurrent producers x widths" `Slow
            test_soak_concurrent_producers;
          Alcotest.test_case "deliver mode pushes every result once" `Quick
            test_deliver_mode;
          Alcotest.test_case "deadline fails the job, not the worker" `Quick
            test_deadline_exceeded;
        ] );
      ( "tier",
        [
          Alcotest.test_case "fingerprints agree across tiers" `Slow
            test_pool_tiers_agree;
          Alcotest.test_case "deadline through the compiled tier" `Quick
            test_deadline_exceeded_compiled_tier;
        ] );
      ( "cache",
        [
          Alcotest.test_case "second submission hits" `Quick
            test_cache_hit_skips_compilation;
          Alcotest.test_case "one convention, one entry" `Quick
            test_cache_shared_across_engines_of_one_convention;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
        ] );
      ( "arena",
        [
          QCheck_alcotest.to_alcotest arena_reuse_equivalence_prop;
          Alcotest.test_case "reset restores the store" `Quick
            test_arena_reset_restores_store;
          Alcotest.test_case "fuel-exhausted sched job leaves slot reusable"
            `Quick test_arena_mid_slice_reuse;
          Alcotest.test_case "pool results identical with arena off" `Slow
            test_pool_arena_matches_clone_path;
        ] );
      ( "job",
        [
          Alcotest.test_case "request line round-trip" `Quick
            test_request_line_roundtrip;
          QCheck_alcotest.to_alcotest request_roundtrip_prop;
          QCheck_alcotest.to_alcotest request_junk_tail_prop;
          Alcotest.test_case "metrics JSON shape" `Quick test_metrics_json_shape;
          Alcotest.test_case "traced job carries a profile" `Quick
            test_traced_job;
        ] );
    ]
