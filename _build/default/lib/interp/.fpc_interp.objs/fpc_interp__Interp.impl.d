lib/interp/interp.ml: Array Cost Eval_stack Fpc_core Fpc_frames Fpc_isa Fpc_machine Fpc_util Memory State Transfer
