(** The compilation pipeline: source text -> checked AST -> lowered AST ->
    byte-coded modules -> linked image. *)

val front_end : string -> (Fpc_lang.Ast.program * Fpc_lang.Typecheck.env, string) result
(** Parse and type-check. *)

val modules :
  ?convention:Convention.t ->
  ?devirt:bool ->
  string ->
  (Fpc_mesa.Compiled.t list, string) result
(** Compile every module in the source (default convention
    {!Convention.external_}).  With [~devirt:true] (default false),
    external call sites are emitted in their rewritable padded shape (see
    {!Codegen.module_decl}). *)

val image :
  ?convention:Convention.t ->
  ?devirt:bool ->
  ?memory_words:int ->
  ?extra_instances:string list ->
  string ->
  (Fpc_mesa.Image.t, string) result
(** Compile and link in one step; the image's linkage follows the
    convention.  With [~devirt:true] (default false) the link-time
    devirtualization pass ({!Fpc_cfa.Cfa.devirtualize}) runs on the
    freshly linked image, rewriting provably single-target external
    calls to DIRECTCALL in place; its outcome is recorded on
    [image.dir.devirt]. *)

val image_for_engine :
  engine:Fpc_core.Engine.t ->
  ?devirt:bool ->
  ?memory_words:int ->
  string ->
  (Fpc_mesa.Image.t, string) result
(** Compile with {!Convention.for_engine} so the image matches the engine
    it will run on. *)

val run :
  ?engine:Fpc_core.Engine.t ->
  ?devirt:bool ->
  ?max_steps:int ->
  ?instance:string ->
  ?proc:string ->
  ?args:int list ->
  string ->
  (Fpc_interp.Interp.outcome, string) result
(** Compile, link and execute ["Main.main"] (defaults) under the given
    engine (default I2) — the one-call quickstart. *)
