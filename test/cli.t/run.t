The fpc binary end to end.  Run a suite program:

  $ fpc run fib 2>/dev/null
  377

Pick an engine:

  $ fpc run mixed -e i4 2>/dev/null
  504
  111
  2

List the built-in suite:

  $ fpc suite | head -4
  fib
  ackermann
  sieve
  isort

Disassemble a tiny program:

  $ cat > tiny.fpc <<'SRC'
  > MODULE Main;
  > PROC main() =
  >   OUTPUT 6 * 7;
  > END;
  > END;
  > SRC
  $ fpc disasm tiny.fpc
  MODULE Main (globals 1 words, 0 imports)
  PROC main (args 0, frame payload 1 words, 5 bytes)
      0: LI 6
      1: LI 7
      2: MUL
      3: OUT
      4: RET
  $ fpc run tiny.fpc 2>/dev/null
  42

Unknown programs fail cleanly:

  $ fpc run no_such_program 2>&1 | head -1
  fpc: no_such_program: not a file and not a suite program (suite: fib, ackermann, sieve, isort, callchain, leafcalls, coroutine, processes, mixed, deep, hanoi, bsearch, matmul, knapsack)

An experiment renders:

  $ fpc experiment E10 2>/dev/null | head -2
  ### E10 [call_density] One call or return per ~10 instructions
  paper: one call or return for every 10 instructions executed (§1)

Batch execution: a jobfile over a 2-domain pool, results deterministic
and in submission order (metrics go to stderr):

  $ cat > jobs.txt <<'EOF'
  > # two suite programs and an inline one
  > prog=fib engine=i2
  > prog=hanoi engine=i4 fuel=1000000
  > src=MODULE\sMain;\nPROC\smain()\s=\n\sOUTPUT\s6\s*\s7;\nEND;\nEND; engine=i3
  > EOF
  $ fpc batch jobs.txt -j 2 2>/dev/null
  #0 fib i2 ok output=377 instructions=15845 cycles=123964 mem-refs=26218
  #1 hanoi i4 ok output=127 instructions=3569 cycles=7045 mem-refs=342
  #2 inline:015ae353 i3 ok output=42 instructions=5 cycles=149 mem-refs=11

A poisoned job fails alone; the pool keeps serving:

  $ cat > poison.txt <<'EOF'
  > src=MODULE\sMain;\sPROC
  > prog=fib engine=i2
  > EOF
  $ fpc batch poison.txt 2>/dev/null | sed 's/error .*/error .../'
  #0 inline:eacc5c73 i2 error ...
  #1 fib i2 ok output=377 instructions=15845 cycles=123964 mem-refs=26218

The server reads request lines and answers in JSON:

  $ printf 'prog=fib engine=i2\n' | fpc serve --no-times 2>/dev/null
  {"id":0,"source":"fib","engine":"i2","fuel":20000000,"status":"ok","output":[377],"instructions":15845,"cycles":123964,"mem_refs":26218}
