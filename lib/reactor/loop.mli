(** A single-threaded event loop: readiness callbacks over a pluggable
    {!Backend}, a {!Wheel} of timers, and a self-pipe for thread-safe
    work injection ({!post}) — the one legal way other threads (pool
    worker domains, a signal-relay thread) reach loop-owned state.

    Everything except {!post}, {!request_stop} and {!stats} must be
    called from the loop's own thread (inside a callback, or before
    {!run} starts).  That single-writer discipline is the point: the
    serving state machine needs no locks at all. *)

type t

type watcher

val create : ?backend:Backend.t -> unit -> t
(** Defaults to {!Backend.default}. *)

val backend_name : t -> string

val watch :
  t ->
  Unix.file_descr ->
  ?on_readable:(unit -> unit) ->
  ?on_writable:(unit -> unit) ->
  unit ->
  watcher
(** Register [fd] with no interest yet; set callbacks here and interest
    with {!interest}.  The fd should already be non-blocking. *)

val interest : t -> watcher -> read:bool -> write:bool -> unit

val unwatch : t -> watcher -> unit
(** Forget the fd (idempotent).  Safe mid-dispatch: pending readiness
    for this fd in the current batch is dropped. *)

val after : t -> ms:int -> (unit -> unit) -> Wheel.timer
(** Arm a timer [ms] milliseconds from now; cancel with {!cancel}. *)

val cancel : t -> Wheel.timer -> unit

val post : t -> (unit -> unit) -> unit
(** Enqueue [f] to run on the loop thread and wake the loop.  Callable
    from any thread.  After {!run} returns, posts are dropped. *)

val run : t -> unit
(** Dispatch until {!stop}: wait for readiness (timeout = next timer),
    run ready callbacks, run posted thunks, fire due timers.  Closes the
    self-pipe on exit. *)

val stop : t -> unit
(** Make {!run} return after the current iteration (loop thread). *)

val request_stop : t -> unit
(** Thread-safe {!stop} (a {!post}). *)

type stats = {
  iterations : int;
  posts : int;
  timers_fired : int;
  timers_live : int;
  watched : int;
}

val stats : t -> stats
