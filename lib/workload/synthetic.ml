type event = Call of int | Return | Coroutine_switch | Process_switch

type profile = {
  target_depth : int;
  pull : float;
  run_bias : float;
  leaf_rate : float;
  coroutine_rate : float;
  process_rate : float;
  max_depth : int;
}

let default_profile =
  {
    target_depth = 8;
    pull = 0.25;
    run_bias = 0.1;
    leaf_rate = 0.6;
    coroutine_rate = 0.0;
    process_rate = 0.0;
    max_depth = 64;
  }

let generate ~seed ?(profile = default_profile) ~length () =
  let open Fpc_util in
  let rng = Prng.create ~seed in
  let depth = ref 1 in
  let last_was_call = ref true in
  let events = ref [] in
  let pending_leaf_return = ref false in
  for _ = 1 to length do
    let event =
      if !pending_leaf_return then begin
        pending_leaf_return := false;
        Return
      end
      else if Prng.chance rng ~p:profile.process_rate then Process_switch
      else if Prng.chance rng ~p:profile.coroutine_rate then Coroutine_switch
      else if
        (* Leaf call/return pairs: the dominant pattern of procedure-heavy
           code — call a small leaf, come straight back. *)
        Prng.chance rng ~p:profile.leaf_rate && !depth < profile.max_depth
      then begin
        pending_leaf_return := true;
        Call (Distributions.frame_payload_words rng)
      end
      else begin
        let p_call =
          if Prng.chance rng ~p:profile.run_bias then
            if !last_was_call then 1.0 else 0.0
          else begin
            let drift =
              profile.pull *. float_of_int (profile.target_depth - !depth)
            in
            min 0.95 (max 0.05 (0.5 +. drift))
          end
        in
        if (Prng.chance rng ~p:p_call || !depth <= 1) && !depth < profile.max_depth
        then Call (Distributions.frame_payload_words rng)
        else Return
      end
    in
    (match event with
    | Call _ ->
      incr depth;
      last_was_call := true
    | Return ->
      decr depth;
      last_was_call := false
    | Coroutine_switch | Process_switch -> ());
    events := event :: !events
  done;
  List.rev !events

(* Random but always-terminating mini-Mesa programs: procedures p0..pN
   form a DAG (pi only calls pj with j > i) and self-recursion is guarded
   by a strictly decreasing first argument, so every run halts under any
   engine.  Expressions stick to +, - and * (no division, no traps).

   With [coroutine_rate] > 0, [main] additionally opens a bounded-life
   echo coroutine (the Sessions idiom: the peer is handed its exact
   receive budget at creation and RETURNs when it is spent) and inserts a
   channel round-trip after each OUTPUT with that probability, so the
   differential suites exercise non-LIFO XFER and RETCTX alongside the
   call DAG.

   With [leaf_call_rate] > 0, two tiny pure leaf procedures are emitted
   and each generated statement is followed, with that probability, by a
   call to one of them — tilting the program toward the call-dense
   shapes cross-call fusion targets.

   With [late_bound_rate] > 0 the same trick targets devirtualization
   instead: the two extra leaves live in a separate module [XLeaf] that
   [Main] imports, so under the EXTERNALCALL convention every injected
   call is a late-bound site the CFA pass can prove single-target.

   At the default rates 0.0 the extra draws are short-circuited and the
   generated text is byte-identical to what this function has always
   produced for a given seed. *)
let random_program ?(coroutine_rate = 0.0) ?(leaf_call_rate = 0.0)
    ?(late_bound_rate = 0.0) ~seed () =
  let open Fpc_util in
  let rng = Prng.create ~seed in
  let nprocs = 2 + Prng.int rng ~bound:4 in
  let buf = Buffer.create 1024 in
  let atom ~self =
    ignore self;
    match Prng.int rng ~bound:5 with
    | 0 -> string_of_int (Prng.int rng ~bound:10)
    | 1 -> "a"
    | 2 -> "b"
    | 3 -> "v0"
    | _ -> "v1"
  in
  let op () = Prng.choose rng [| " + "; " - "; " * " |] in
  (* depth bounds the expression tree; calls go strictly deeper in the
     DAG and pass a small literal or the caller's decremented counter as
     the recursion budget *)
  let rec expr ~self ~depth =
    if depth = 0 then atom ~self
    else
      match Prng.int rng ~bound:4 with
      | 0 when self + 1 < nprocs ->
        let callee = Prng.int_in rng ~lo:(self + 1) ~hi:(nprocs - 1) in
        let budget =
          if self >= 0 && Prng.bool rng then "a - 1"
          else string_of_int (Prng.int rng ~bound:4)
        in
        Printf.sprintf "p%d(%s, %s)" callee budget (expr ~self ~depth:(depth - 1))
      | 1 ->
        Printf.sprintf "(%s%s%s)"
          (expr ~self ~depth:(depth - 1))
          (op ())
          (expr ~self ~depth:(depth - 1))
      | _ -> atom ~self
  in
  if late_bound_rate > 0.0 then begin
    Buffer.add_string buf "MODULE XLeaf;\n";
    Buffer.add_string buf "PROC x0(x: INT): INT =\n";
    Buffer.add_string buf "  RETURN x + x - 3;\nEND;\n";
    Buffer.add_string buf "PROC x1(x: INT, y: INT): INT =\n";
    Buffer.add_string buf "  RETURN x * 2 - y;\nEND;\nEND;\n\n"
  end;
  Buffer.add_string buf "MODULE Main;\n";
  if late_bound_rate > 0.0 then Buffer.add_string buf "IMPORT XLeaf;\n";
  if leaf_call_rate > 0.0 then begin
    Buffer.add_string buf "PROC l0(x: INT): INT =\n";
    Buffer.add_string buf "  RETURN x + x + 1;\nEND;\n";
    Buffer.add_string buf "PROC l1(x: INT, y: INT): INT =\n";
    Buffer.add_string buf "  RETURN x * 2 + y;\nEND;\n"
  end;
  let leaf_call v =
    if Prng.int rng ~bound:2 = 0 then Printf.sprintf "l0(%s)" v
    else Printf.sprintf "l1(%s, %d)" v (Prng.int rng ~bound:10)
  in
  let late_call v =
    if Prng.int rng ~bound:2 = 0 then Printf.sprintf "XLeaf.x0(%s)" v
    else Printf.sprintf "XLeaf.x1(%s, %d)" v (Prng.int rng ~bound:10)
  in
  for self = 0 to nprocs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "PROC p%d(a: INT, b: INT): INT =\n" self);
    Buffer.add_string buf
      (Printf.sprintf "  VAR v0: INT := %d;\n  VAR v1: INT := b;\n"
         (Prng.int rng ~bound:10));
    Buffer.add_string buf "  IF a < 1 THEN RETURN v0 + v1; END;\n";
    for _ = 1 to 1 + Prng.int rng ~bound:2 do
      Buffer.add_string buf
        (Printf.sprintf "  v%d := %s;\n" (Prng.int rng ~bound:2)
           (expr ~self ~depth:2));
      if leaf_call_rate > 0.0 && Prng.chance rng ~p:leaf_call_rate then
        Buffer.add_string buf
          (Printf.sprintf "  v%d := %s;\n" (Prng.int rng ~bound:2)
             (leaf_call (Prng.choose rng [| "v0"; "v1"; "a" |])));
      if late_bound_rate > 0.0 && Prng.chance rng ~p:late_bound_rate then
        Buffer.add_string buf
          (Printf.sprintf "  v%d := %s;\n" (Prng.int rng ~bound:2)
             (late_call (Prng.choose rng [| "v0"; "v1"; "a" |])))
    done;
    if Prng.chance rng ~p:0.7 then
      (* the guarded self-recursion that makes the traces call-heavy *)
      Buffer.add_string buf
        (Printf.sprintf "  v0 := v0 + p%d(a - 1, %s);\n" self
           (expr ~self ~depth:1));
    if Prng.chance rng ~p:0.3 then
      Buffer.add_string buf (Printf.sprintf "  OUTPUT v%d;\n" (Prng.int rng ~bound:2));
    Buffer.add_string buf
      (Printf.sprintf "  RETURN %s;\nEND;\n" (expr ~self ~depth:2))
  done;
  (* main's statements are collected first so the peer's receive budget
     can be counted before either procedure is emitted *)
  let main_lines = ref [] in
  let round_trips = ref 0 in
  for _ = 1 to 1 + Prng.int rng ~bound:3 do
    main_lines :=
      Printf.sprintf "  OUTPUT p0(%d, %d);\n"
        (3 + Prng.int rng ~bound:4)
        (Prng.int rng ~bound:10)
      :: !main_lines;
    if leaf_call_rate > 0.0 && Prng.chance rng ~p:leaf_call_rate then
      main_lines :=
        Printf.sprintf "  OUTPUT %s;\n"
          (leaf_call (string_of_int (Prng.int rng ~bound:10)))
        :: !main_lines;
    if late_bound_rate > 0.0 && Prng.chance rng ~p:late_bound_rate then
      main_lines :=
        Printf.sprintf "  OUTPUT %s;\n"
          (late_call (string_of_int (Prng.int rng ~bound:10)))
        :: !main_lines;
    if coroutine_rate > 0.0 && Prng.chance rng ~p:coroutine_rate then begin
      incr round_trips;
      main_lines :=
        "  x := TRANSFER(co, x + 1);\n  co := RETCTX;\n  OUTPUT x;\n"
        :: !main_lines
    end
  done;
  if coroutine_rate > 0.0 then begin
    Buffer.add_string buf "PROC peer(n: INT, x: INT): INT =\n";
    Buffer.add_string buf "  VAR who: CONTEXT := RETCTX;\n";
    Buffer.add_string buf "  VAR acc: INT := x;\n";
    Buffer.add_string buf "  WHILE n > 1 DO\n";
    Buffer.add_string buf "    acc := TRANSFER(who, acc + p0(2, acc));\n";
    Buffer.add_string buf "    who := RETCTX;\n";
    Buffer.add_string buf "    n := n - 1;\n";
    Buffer.add_string buf "  END;\n";
    Buffer.add_string buf "  RETURN acc;\nEND;\n"
  end;
  Buffer.add_string buf "PROC main() =\n";
  if coroutine_rate > 0.0 then begin
    Buffer.add_string buf
      (Printf.sprintf "  VAR x: INT := TRANSFER(@peer, %d, %d);\n"
         (!round_trips + 1)
         (Prng.int rng ~bound:10));
    Buffer.add_string buf "  VAR co: CONTEXT := RETCTX;\n"
  end;
  List.iter (Buffer.add_string buf) (List.rev !main_lines);
  if coroutine_rate > 0.0 then Buffer.add_string buf "  OUTPUT x;\n";
  Buffer.add_string buf "END;\nEND;\n";
  Buffer.contents buf

let depth_profile events =
  let h = Fpc_util.Histogram.create () in
  let depth = ref 1 in
  List.iter
    (fun e ->
      (match e with
      | Call _ -> incr depth
      | Return -> decr depth
      | Coroutine_switch | Process_switch -> ());
      Fpc_util.Histogram.add h !depth)
    events;
  h
