lib/mesa/descriptor.mli:
