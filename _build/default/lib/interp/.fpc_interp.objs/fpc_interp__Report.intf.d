lib/interp/report.mli: Fpc_core
