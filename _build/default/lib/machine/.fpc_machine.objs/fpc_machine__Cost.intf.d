lib/machine/cost.mli:
