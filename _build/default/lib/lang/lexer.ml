type token =
  | INT_LIT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type positioned = { tok : token; line : int; col : int }

exception Lex_error of string

let keywords =
  [
    "MODULE"; "IMPORT"; "VAR"; "PROC"; "END"; "IF"; "THEN"; "ELSE"; "WHILE";
    "DO"; "RETURN"; "OUTPUT"; "YIELD"; "STOP"; "FORK"; "TRANSFER"; "RETCTX";
    "INT"; "BOOL"; "CONTEXT"; "TRUE"; "FALSE"; "NIL"; "AND"; "OR"; "NOT"; "MOD";
    "ARRAY"; "OF";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let fail msg = raise (Lex_error (Printf.sprintf "%d:%d: %s" !line !col msg)) in
  (* Token positions point at the first character, so capture before the
     scanners below consume it. *)
  let emit_at (l, c) tok = out := { tok; line = l; col = c } :: !out in
  let emit tok = emit_at (!line, !col) tok in
  let i = ref 0 in
  let advance k =
    for _ = 1 to k do
      (if !i < n && src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
      incr i
    done
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '-' && peek 1 = Some '-' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_digit c then begin
      let pos = (!line, !col) in
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance 1
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v when v >= 0 && v <= 0xFFFF -> emit_at pos (INT_LIT v)
      | Some _ -> fail (Printf.sprintf "integer literal %s exceeds 16 bits" text)
      | None -> fail ("bad integer literal " ^ text)
    end
    else if is_ident_start c then begin
      let pos = (!line, !col) in
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance 1
      done;
      let text = String.sub src start (!i - start) in
      if List.mem text keywords then emit_at pos (KW text) else emit_at pos (IDENT text)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":=" | "<=" | ">=" ->
        emit (PUNCT two);
        advance 2
      | _ -> (
        match c with
        | ';' | ',' | ':' | '.' | '(' | ')' | '[' | ']' | '+' | '-' | '*' | '/'
        | '<' | '=' | '#' | '>' | '@' ->
          emit (PUNCT (String.make 1 c));
          advance 1
        | _ -> fail (Printf.sprintf "illegal character %C" c))
    end
  done;
  emit EOF;
  List.rev !out

let token_to_string = function
  | INT_LIT v -> string_of_int v
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "<eof>"
