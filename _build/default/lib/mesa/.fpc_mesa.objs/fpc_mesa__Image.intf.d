lib/mesa/image.mli: Compiled Descriptor Fpc_frames Fpc_machine Gft Hashtbl Layout
