(** The running machine: registers, evaluation stack, process queue, and the
    per-run metering every experiment reads.

    Registers (§4): LF (current local frame), GF (current global frame),
    the PC — kept here as an {e absolute} byte address, with the code base
    CB tracked separately and possibly invalid ([-1]) after a DIRECTCALL
    whose fast path never needed it — the returnContext, and the evaluation
    stack.

    Local and global variable access routes through {!read_local} /
    {!write_local} so the register banks of §7 can intercept it; pointer
    dereferences route through {!data_read} / {!data_write} so §7.4's
    diversion logic applies. *)

type trap_reason =
  | Div_zero
  | Eval_overflow
  | Eval_underflow
  | Illegal_instruction of int
  | Break
  | Nil_context
  | Frame_heap_exhausted
  | Step_limit

val trap_code : trap_reason -> int
(** Small integer passed to an installed trap handler. *)

val trap_reason_to_string : trap_reason -> string

type status = Running | Halted | Trapped of trap_reason

type metrics = {
  mutable instructions : int;
  mutable calls : int;
  mutable returns : int;
  mutable other_xfers : int;  (** XF, FORK, YIELD, process switches *)
  mutable jumps_taken : int;
  mutable fast_transfers : int;  (** calls/returns completed with no storage reference *)
  mutable slow_transfers : int;
  mutable local_refs : int;
  mutable global_refs : int;
  mutable indirect_refs : int;
  mutable arg_words_stored : int;  (** argument words moved by prologue stores (I2 path) *)
  mutable arg_words_renamed : int;  (** argument words delivered by bank renaming (I4 path) *)
  mutable ff_hits : int;  (** free-frame-stack allocations *)
  mutable ff_misses : int;
  mutable frame_allocs : int;
  mutable frame_frees : int;
  mutable call_depth : int;  (** current dynamic nesting depth *)
  mutable run_length : int;
  mutable run_dir : int;
  mutable procs_forked : int;  (** processes queued by FORK *)
  mutable procs_ended : int;
      (** processes retired — a root return with returnLink NIL, or STOP.
          The boot process counts too, so a halted single-process run
          reads 1.  Maintained in {!Transfer} (the compiled tier deopts
          every process operation there), so both tiers agree exactly. *)
  mutable peak_live_procs : int;
      (** high-water mark of running + ready processes; starts at 1 (the
          boot process) and moves only at FORK *)
  mutable tier_fast_instrs : int;
      (** instructions retired on the compiled tier's fused fast path
          (host-speed accounting only; invisible to the simulated meters) *)
  mutable tier_super_instrs : int;
      (** of those, instructions retired inside a multi-op superinstruction *)
  mutable tier_deopts : int;
      (** compiled-tier fallbacks to the interpreter's single-step path *)
  mutable tier_fused_calls : int;
      (** calls retired through a fused call site — the callee's body ran
          spliced into the caller's superinstruction (host-speed
          accounting only; invisible to the simulated meters) *)
  mutable tier_lazy_translations : int;
      (** procedures translated lazily during this run (first XFER into a
          not-yet-translated procedure) *)
}

type process = {
  p_id : int;
  p_lf : int;
  p_stack : int array;
  p_rctx : int;
      (** the suspended process's returnContext.  Part of the saved state
          vector so a round-robin switch is transparent: a process
          preempted between an XFER resumption and its [RETCTX] read must
          see the same context word when it runs again.  0 (NIL) for a
          freshly FORKed process. *)
}

type t = {
  image : Fpc_mesa.Image.t;
  mem : Fpc_machine.Memory.t;
  predecode : Fpc_isa.Predecode.t;
      (** the image's shared predecoded instruction table (host-speed
          only; instruction fetch is unmetered in every engine) *)
  cost : Fpc_machine.Cost.t;
  allocator : Fpc_frames.Alloc_vector.t;
  engine : Engine.t;
  simple : Simple_links.t option;  (** present iff engine kind is Simple *)
  rstack : Fpc_ifu.Return_stack.t option;
  banks : Fpc_regbank.Bank_file.t option;
  free_frames : int array;
      (** the §6 free-frame stack, as a preallocated buffer; live entries
          are [0 .. ff_top-1] *)
  mutable ff_top : int;
  ff_fsi : int;  (** class the free-frame stack serves; -1 when disabled *)
  mutable lf : int;
  mutable gf : int;
  mutable cb : int;  (** current code base; {!no_cb} when invalid *)
  mutable pc_abs : int;
  mutable fuel_limit : int;
      (** host-side absolute [metrics.instructions] bound for the
          compiled tier's self-looping nodes — set by [Tier.run], never
          read by the interpreter, no effect on meters *)
  mutable return_ctx : int;  (** packed context word; 0 is NIL *)
  mutable xr_gf : int;
  mutable xr_cb : int;
  mutable xr_pc : int;
  mutable xr_fsi : int;
      (** scratch destination registers: the transfer engine's resolver
          writes the callee's GF/CB/entry-PC/frame-class here and procedure
          entry consumes them — a record per call would be a per-call
          allocation.  [xr_cb = no_cb] marks a lazily-deferred code base. *)
  stack : Eval_stack.t;
  mutable status : status;
  mutable output_rev : int list;
  metrics : metrics;
  ready : process Queue.t;
  mutable next_pid : int;
  mutable current_pid : int;
  data_trace : (int * bool) Queue.t option;
  depth_hist : Fpc_util.Histogram.t;
      (** call depth observed at every call/return (the paper's locality argument) *)
  run_hist : Fpc_util.Histogram.t;
      (** lengths of uninterrupted call-runs / return-runs — the paper's
          "long runs ... are quite rare" made measurable *)
  mutable tracer : Fpc_trace.Sink.t option;
      (** event sink; [None] (the default) keeps every instrumentation
          site down to one branch *)
}

val no_cb : int
(** Sentinel (-1) marking the CB register (and [xr_cb]) invalid. *)

val create :
  ?tracer:Fpc_trace.Sink.t -> image:Fpc_mesa.Image.t -> engine:Engine.t -> unit -> t
(** Fresh machine over [image]: resets the cost meters, rebuilds the frame
    allocator (software-only mode for I1), installs simple-link tables for
    I1 and the return stack / bank file / free-frame stack the engine asks
    for.  With [tracer], the allocator / return stack / bank file hooks are
    wired to emit their sub-events through it. *)

val reset : ?tracer:Fpc_trace.Sink.t -> t -> unit
(** Recycle the machine for a fresh run over the same (reset) image: the
    arena path.  Must be called {e after} [Image.clone_into] has restored
    the store — it reinstalls the I1 link tables, resets the allocator,
    return stack, bank file and free-frame stack, zeroes every register,
    meter and histogram, clears the process queues and rewires the event
    hooks for the (possibly different) [tracer].  The observable state
    afterwards is exactly that of a fresh {!create}. *)

val emit_sub : t -> Fpc_trace.Event.kind -> unit
(** Emit a sub-event (zero deltas) stamped with the current PC, depth and
    meters; no-op without a tracer. *)

val output : t -> int list
(** Values OUTput so far, in order. *)

val emit : t -> int -> unit

(** {1 Code base management} *)

val ensure_cb : t -> int
(** The current code base, reading it from GF word 0 (one metered
    reference) if the register is invalid. *)

val pc_rel : t -> int
(** Current PC relative to the (ensured) code base. *)

val set_pc_rel : t -> cb:int -> int -> unit

(** {1 Variable access} *)

val read_local : t -> int -> int
val write_local : t -> int -> int -> unit
val read_global : t -> int -> int
val write_global : t -> int -> int -> unit

val local_addr : t -> int -> int
(** LLA: the storage address of local [n]; flags the frame when banks are
    on (§7.4 C1). *)

val global_addr : t -> int -> int

val data_read : t -> addr:int -> int
(** RLOAD: diverted through the banks when the address hits a shadowed
    frame window. *)

val data_write : t -> addr:int -> int -> unit

(** {1 Metering helpers} *)

val note_transfer_direction : t -> int -> unit
(** [+1] for a call, [-1] for a return; feeds the depth and run
    histograms. *)

val meter_transfer : t -> (unit -> unit) -> unit
(** Run a transfer thunk and classify it fast (no storage references) or
    slow. *)
