lib/isa/opcode.ml: Array Buffer Char Fpc_util Printf
