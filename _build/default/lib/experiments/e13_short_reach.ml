(** E13 — §6: SHORTDIRECTCALL reach.

    "With 16 such SHORTDIRECTCALL opcodes, a three byte instruction can
    address one megabyte around the instruction."  Measured: the fraction
    of early-bound call sites the linker manages to encode in the short
    form on real images (total memory here is Alto-scale, so everything is
    within reach).  Analytic: the probability a random caller/callee pair
    lands within ±512 KB as the program grows. *)

open Fpc_util

let measured () =
  let t =
    Tablefmt.create ~title:"Short-form call sites after linking (Short_direct)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("SDFC sites", Tablefmt.Right);
          ("DFC sites", Tablefmt.Right);
          ("short fraction", Tablefmt.Right);
        ]
  in
  let short = ref 0 and long = ref 0 in
  List.iter
    (fun program ->
      let image =
        Harness.image_of ~convention:Fpc_compiler.Convention.short_direct ~program ()
      in
      let r = Fpc_mesa.Space.measure image in
      short := !short + r.call_sites.sdfc;
      long := !long + r.call_sites.dfc;
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int r.call_sites.sdfc;
          Tablefmt.cell_int r.call_sites.dfc;
          Tablefmt.cell_pct
            (Harness.ratio r.call_sites.sdfc (r.call_sites.sdfc + r.call_sites.dfc));
        ])
    [ "fib"; "callchain"; "leafcalls"; "mixed"; "deep" ];
  (t, Harness.ratio !short (!short + !long))

let analytic () =
  let t =
    Tablefmt.create
      ~title:"P(callee within +-512KB) for uniformly placed code of size S"
      ~columns:
        [ ("program size S", Tablefmt.Left); ("P(short reach)", Tablefmt.Right) ]
  in
  let reach = 524288.0 in
  List.iter
    (fun (label, size) ->
      let p =
        if size <= reach then 1.0
        else
          let r = reach /. size in
          (2.0 *. r) -. (r *. r)
      in
      Tablefmt.add_row t [ label; Tablefmt.cell_pct p ])
    [
      ("64 KB", 65536.0);
      ("256 KB", 262144.0);
      ("1 MB", 1048576.0);
      ("4 MB", 4194304.0);
      ("16 MB", 16777216.0);
    ];
  Tablefmt.add_note t
    "with link-time placement that clusters callers near callees the \
     fraction only improves on this uniform-placement floor";
  t

let run () =
  let t1, fraction = measured () in
  let t2 = analytic () in
  {
    Exp.id = "E13";
    key = "short_reach";
    title = "SHORTDIRECTCALL reach";
    paper_claim =
      "16 opcodes x 3 bytes address one megabyte around the instruction \
       (\xC2\xA76 D1)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2 ];
    headlines = [ ("measured_short_fraction", fraction) ];
  }
