type timer = {
  fire_at : float;
  mutable callback : (unit -> unit) option;  (** [None] once cancelled/fired *)
}

type t = {
  granularity_s : float;
  slots : timer list array;  (* mutated via Array.set only *)
  mutable live : int;
  mutable fired : int;
  mutable last_advance : float;
}

let create ?(granularity_ms = 2) ?(slots = 512) ~now () =
  if granularity_ms < 1 then
    invalid_arg "Wheel.create: granularity_ms must be positive";
  if slots < 2 then invalid_arg "Wheel.create: need at least two slots";
  {
    granularity_s = float_of_int granularity_ms /. 1000.0;
    slots = Array.make slots [];
    live = 0;
    fired = 0;
    last_advance = now;
  }

let slot_of t at =
  (* floats stay positive (gettimeofday), so truncation is a floor *)
  int_of_float (at /. t.granularity_s) mod Array.length t.slots

let live t = t.live
let fired t = t.fired

let add t ~at f =
  let timer = { fire_at = at; callback = Some f } in
  (* an already-overdue timer hashes into the slot the next sweep starts
     from, so it cannot hide behind the sweep cursor *)
  let s = slot_of t (if at <= t.last_advance then t.last_advance else at) in
  t.slots.(s) <- timer :: t.slots.(s);
  t.live <- t.live + 1;
  timer

let cancel t timer =
  if timer.callback <> None then begin
    timer.callback <- None;
    t.live <- t.live - 1
  end

(* Run every due timer.  A slot can hold entries destined for later
   wheel revolutions, so due-ness is always re-checked against the
   entry's own absolute time; cancelled entries are dropped in passing.
   The scan covers the slots the clock swept since the last advance
   (everything, if it swept a whole revolution); the due set is then
   fired in absolute-time order, so a catch-up sweep spanning several
   slots still observes deadline order.  A callback arming new timers
   mid-fire parks them for the next advance. *)
let advance t ~now =
  if t.live > 0 && now >= t.last_advance then begin
    let n = Array.length t.slots in
    let first = slot_of t t.last_advance in
    let swept =
      let ticks =
        int_of_float ((now -. t.last_advance) /. t.granularity_s) + 1
      in
      min n ticks
    in
    let due = ref [] in
    for k = 0 to swept - 1 do
      let s = (first + k) mod n in
      match t.slots.(s) with
      | [] -> ()
      | entries ->
        let keep =
          List.filter
            (fun timer ->
              match timer.callback with
              | None -> false
              | Some _ when timer.fire_at <= now ->
                due := timer :: !due;
                false
              | Some _ -> true)
            entries
        in
        t.slots.(s) <- keep
    done;
    List.iter
      (fun timer ->
        (* re-check: an earlier callback in this batch may have cancelled *)
        match timer.callback with
        | None -> ()
        | Some f ->
          timer.callback <- None;
          t.live <- t.live - 1;
          t.fired <- t.fired + 1;
          f ())
      (List.sort (fun a b -> compare a.fire_at b.fire_at) !due)
  end;
  if now > t.last_advance then t.last_advance <- now

(* Seconds until the earliest live timer (0 if overdue).  A full scan,
   but only ever called when timers exist, and wheels here hold a
   handful of per-job deadlines — not worth a parallel heap. *)
let next_due t ~now =
  if t.live = 0 then None
  else begin
    let earliest = ref infinity in
    Array.iter
      (List.iter (fun timer ->
           if timer.callback <> None && timer.fire_at < !earliest then
             earliest := timer.fire_at))
      t.slots;
    if !earliest = infinity then None else Some (Float.max 0.0 (!earliest -. now))
  end
