let all =
  [
    ("fastpath", E01_fastpath.run);
    ("indirection_space", E02_indirection_space.run);
    ("indirection_chain", E03_indirection_chain.run);
    ("frame_alloc", E04_frame_alloc.run);
    ("directcall_space", E05_directcall_space.run);
    ("bank_overflow", E06_bank_overflow.run);
    ("frame_sizes", E07_frame_sizes.run);
    ("arg_passing", E08_arg_passing.run);
    ("bank_vs_cache", E09_bank_vs_cache.run);
    ("call_density", E10_call_density.run);
    ("nonlifo", E11_nonlifo.run);
    ("ptr_locals", E12_ptr_locals.run);
    ("short_reach", E13_short_reach.run);
    ("equivalence", E14_equivalence.run);
    ("ablation", E15_ablation.run);
    ("tier", E16_tier.run);
    ("sessions", E17_sessions.run);
    ("calls", E18_calls.run);
    ("devirt", E19_devirt.run);
  ]

let keys = List.map fst all

let ids =
  [
    ("e1", "fastpath"); ("e2", "indirection_space"); ("e3", "indirection_chain");
    ("e4", "frame_alloc"); ("e5", "directcall_space"); ("e6", "bank_overflow");
    ("e7", "frame_sizes"); ("e8", "arg_passing"); ("e9", "bank_vs_cache");
    ("e10", "call_density"); ("e11", "nonlifo"); ("e12", "ptr_locals");
    ("e13", "short_reach"); ("e14", "equivalence"); ("e15", "ablation");
    ("e16", "tier"); ("e17", "sessions"); ("e18", "calls");
    ("e19", "devirt");
  ]

let find name =
  let lower = String.lowercase_ascii name in
  match List.assoc_opt lower all with
  | Some f -> Some f
  | None -> (
    match List.assoc_opt lower ids with
    | Some key -> List.assoc_opt key all
    | None -> None)
