(** Code generation: lowered mini-Mesa AST to byte-coded modules.

    Frame layout per procedure: parameters occupy local slots 0..n-1
    (value parameters hold the word, VAR parameters hold the address),
    followed by declared locals and compiler temporaries.  Unless the
    convention is args-in-place, a prologue of SL instructions stores the
    argument record off the evaluation stack — the movement §5.2 calls
    wasteful and §7.2 eliminates.

    Link-vector indices are assigned by descending static call frequency,
    so the most frequently called externals land in the sixteen one-byte
    EXTERNALCALL opcodes (§5.1). *)

val module_decl :
  env:Fpc_lang.Typecheck.env ->
  convention:Convention.t ->
  ?devirt:bool ->
  Fpc_lang.Ast.module_decl ->
  Fpc_mesa.Compiled.t
(** The module must already be type-checked and lowered.  Raises
    [Invalid_argument] on capacity violations (too many locals, imports or
    entry points for the encoding).

    With [~devirt:true] (default false), EXTERNALCALL sites are emitted in
    their padded 4-byte shape and recorded in
    {!Fpc_mesa.Compiled.proc.p_efc_sites} so the link-time control-flow
    analysis ({!Fpc_cfa.Cfa}) can rewrite proven-single-target sites to
    DIRECTCALL in place. *)
