(* lib/trace: sink ring semantics, procmap lookup, the profile's
   conservation property (exact equality with the machine's meters, the
   load-bearing guarantee of the subsystem), and the exporters. *)

open Fpc_trace

let ev ?(kind = Event.Call) ?(cycles = 0) ?(d_cycles = 0) () =
  { Event.zero with kind; cycles; d_cycles }

(* ---- sink ---- *)

let test_sink_ring () =
  let s = Sink.create ~capacity:16 ~engine:"I2" () in
  let seen = ref 0 in
  Sink.set_listener s (Some (fun _ -> incr seen));
  for i = 1 to 100 do
    Sink.emit s (ev ~cycles:i ())
  done;
  Alcotest.(check int) "total" 100 (Sink.total s);
  Alcotest.(check int) "dropped" 84 (Sink.dropped s);
  Alcotest.(check int) "listener saw everything" 100 !seen;
  let events = Sink.events s in
  Alcotest.(check int) "ring keeps capacity" 16 (List.length events);
  (match events with
  | first :: _ ->
    Alcotest.(check int) "oldest retained is #85" 85 first.Event.cycles;
    Alcotest.(check int) "seq assigned" 84 first.Event.seq
  | [] -> Alcotest.fail "ring empty");
  Sink.clear s;
  Alcotest.(check int) "clear resets total" 0 (Sink.total s);
  Alcotest.(check int) "clear resets dropped" 0 (Sink.dropped s);
  Sink.emit s (ev ());
  Alcotest.(check int) "listener survives clear" 101 !seen

(* ---- procmap ---- *)

let test_procmap () =
  let pm =
    Procmap.create
      [ ("b", 20, 30); ("a", 10, 20); ("c", 40, 50); ("b", 20, 30) ]
  in
  Alcotest.(check int) "duplicate ranges dedup" 3 (Procmap.count pm);
  let name_at pc = Procmap.name pm (Procmap.id_of_pc pm pc) in
  Alcotest.(check string) "first word of a" "a" (name_at 10);
  Alcotest.(check string) "last word of a" "a" (name_at 19);
  Alcotest.(check string) "b starts at its lo" "b" (name_at 20);
  Alcotest.(check string) "gap is unknown" "(unknown)" (name_at 35);
  Alcotest.(check string) "below is unknown" "(unknown)" (name_at 0);
  Alcotest.(check string) "above is unknown" "(unknown)" (name_at 99);
  match Procmap.create [ ("a", 10, 20); ("b", 15, 25) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping ranges must be rejected"

(* ---- conservation ---- *)

let engines () =
  [
    ("i1", Fpc_core.Engine.i1);
    ("i2", Fpc_core.Engine.i2);
    ("i3", Fpc_core.Engine.i3 ());
    ("i4", Fpc_core.Engine.i4 ());
  ]

let run_profiled ~engine src =
  let convention = Fpc_compiler.Convention.for_engine engine in
  let image =
    match Fpc_compiler.Compile.image ~convention src with
    | Ok i -> i
    | Error m -> Alcotest.fail m
  in
  let p = Fpc_interp.Profiler.create ~image ~engine () in
  let _st, o =
    Fpc_interp.Profiler.run p ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[]
  in
  (p, o)

(* The subsystem's contract: after [finish], the profile's totals equal
   the interpreter's outcome counters {e exactly} — no sampling error, no
   double counting, no leakage — and the per-row exclusive costs sum to
   the same meters. *)
let check_conserved label (p : Fpc_interp.Profiler.t)
    (o : Fpc_interp.Interp.outcome) =
  let t = Profile.totals p.profile in
  let chk what a b =
    Alcotest.(check int) (Printf.sprintf "%s: %s" label what) b a
  in
  chk "cycles" t.Profile.t_cycles o.o_cycles;
  chk "mem refs" t.Profile.t_mem_refs o.o_mem_refs;
  chk "calls" t.Profile.t_calls o.o_calls;
  chk "returns" t.Profile.t_returns o.o_returns;
  chk "other xfers" t.Profile.t_other_xfers o.o_other_xfers;
  chk "fast transfers" t.Profile.t_fast_transfers
    o.o_fastpath.Fpc_interp.Interp.f_fast_transfers;
  chk "slow transfers" t.Profile.t_slow_transfers
    o.o_fastpath.Fpc_interp.Interp.f_slow_transfers;
  let rows = Profile.rows p.profile in
  chk "row exclusive cycles sum"
    (List.fold_left (fun a r -> a + r.Profile.r_excl_cycles) 0 rows)
    o.o_cycles;
  chk "row exclusive refs sum"
    (List.fold_left (fun a r -> a + r.Profile.r_excl_refs) 0 rows)
    o.o_mem_refs

let test_conservation_suite () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (en, engine) ->
          let p, o = run_profiled ~engine src in
          check_conserved (name ^ "/" ^ en) p o)
        (engines ()))
    Fpc_workload.Programs.all

let test_conservation_trapped () =
  (* Conservation holds on the exception path too: the div-zero trap is
     uncatchable here (no handler installed), the machine stops, and the
     profile must still account for every cycle up to the stop. *)
  let src =
    "MODULE Main;\nPROC f(n: INT): INT =\n  RETURN n / (n - n);\nEND;\n\
     PROC main() =\n  OUTPUT f(7);\nEND;\nEND;\n"
  in
  List.iter
    (fun (en, engine) ->
      let p, o = run_profiled ~engine src in
      (match o.o_status with
      | Fpc_core.State.Trapped _ -> ()
      | _ -> Alcotest.fail "expected a trap");
      check_conserved ("trap/" ^ en) p o)
    (engines ())

let conservation_random =
  QCheck.Test.make ~count:40
    ~name:"profile totals equal outcome counters on random programs"
    QCheck.(int_range 0 9999)
    (fun seed ->
      (* odd seeds add coroutine round-trips so tracing also sees
         non-LIFO XFER *)
      let coroutine_rate = if seed mod 2 = 0 then 0.0 else 0.5 in
      let src =
        Fpc_workload.Synthetic.random_program ~coroutine_rate ~seed ()
      in
      List.for_all
        (fun (en, engine) ->
          let p, o = run_profiled ~engine src in
          (match o.o_status with
          | Fpc_core.State.Halted -> ()
          | _ ->
            QCheck.Test.fail_reportf "seed %d did not halt under %s" seed en);
          let t = Profile.totals p.profile in
          t.Profile.t_cycles = o.o_cycles
          && t.Profile.t_mem_refs = o.o_mem_refs
          && t.Profile.t_calls = o.o_calls
          && t.Profile.t_returns = o.o_returns
          && t.Profile.t_other_xfers = o.o_other_xfers)
        (engines ()))

(* ---- exporters ---- *)

let test_chrome_export () =
  let engine = Fpc_core.Engine.i3 () in
  let p, o = run_profiled ~engine (Fpc_workload.Programs.find "fib") in
  let json =
    Fpc_util.Jsonout.to_string (Fpc_interp.Profiler.chrome ~final_cycles:o.o_cycles p)
  in
  match Fpc_util.Jsonin.parse json with
  | Error m -> Alcotest.fail ("chrome JSON does not re-parse: " ^ m)
  | Ok (Fpc_util.Jsonout.Obj fields) ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Fpc_util.Jsonout.List events) ->
      Alcotest.(check bool) "has events" true (List.length events > 2);
      let ph v =
        match v with
        | Fpc_util.Jsonout.Obj f -> (
          match List.assoc_opt "ph" f with
          | Some (Fpc_util.Jsonout.String s) -> s
          | _ -> "?")
        | _ -> "?"
      in
      let count want = List.length (List.filter (fun e -> ph e = want) events) in
      Alcotest.(check int) "durations balance" (count "B") (count "E")
    | _ -> Alcotest.fail "no traceEvents list")
  | Ok _ -> Alcotest.fail "chrome JSON is not an object"

let test_folded_export () =
  let engine = Fpc_core.Engine.i2 in
  let p, o = run_profiled ~engine (Fpc_workload.Programs.find "callchain") in
  let folded = Fpc_interp.Profiler.folded ~final_cycles:o.o_cycles p in
  let total =
    List.fold_left
      (fun acc line ->
        if line = "" then acc
        else
          let i = String.rindex line ' ' in
          acc + int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
      0
      (String.split_on_char '\n' folded)
  in
  (* every simulated cycle lands on exactly one stack *)
  Alcotest.(check int) "folded counts sum to the cycle meter" o.o_cycles total;
  Alcotest.(check bool) "stacks start at main" true
    (List.exists
       (fun l -> String.length l > 9 && String.sub l 0 9 = "Main.main")
       (String.split_on_char '\n' folded))

let test_render_mentions_drops () =
  let engine = Fpc_core.Engine.i2 in
  let src = Fpc_workload.Programs.find "fib" in
  let convention = Fpc_compiler.Convention.for_engine engine in
  let image =
    match Fpc_compiler.Compile.image ~convention src with
    | Ok i -> i
    | Error m -> Alcotest.fail m
  in
  let p = Fpc_interp.Profiler.create ~capacity:8 ~image ~engine () in
  let _st, o =
    Fpc_interp.Profiler.run p ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[]
  in
  check_conserved "tiny ring still conserves" p o;
  Alcotest.(check bool) "ring overflowed" true (Sink.dropped p.sink > 0);
  let table = Fpc_interp.Profiler.render p in
  let contains needle =
    let n = String.length needle and h = String.length table in
    let rec at i = i + n <= h && (String.sub table i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "render warns about drops" true (contains "dropped")

let () =
  Alcotest.run "trace"
    [
      ( "sink",
        [
          Alcotest.test_case "ring + dropped + listener" `Quick test_sink_ring;
        ] );
      ("procmap", [ Alcotest.test_case "lookup" `Quick test_procmap ]);
      ( "conservation",
        [
          Alcotest.test_case "workload suite x engines" `Slow
            test_conservation_suite;
          Alcotest.test_case "trapped run" `Quick test_conservation_trapped;
          QCheck_alcotest.to_alcotest conservation_random;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON re-parses, B/E balance" `Quick
            test_chrome_export;
          Alcotest.test_case "folded stacks conserve cycles" `Quick
            test_folded_export;
          Alcotest.test_case "wrapped ring: profile exact, render warns" `Quick
            test_render_mentions_drops;
        ] );
    ]
