lib/experiments/e06_bank_overflow.ml: Buffer Cost Exp Fpc_core Fpc_frames Fpc_machine Fpc_regbank Fpc_util Fpc_workload Harness Hashtbl Histogram List Memory Printf Tablefmt
