lib/frames/frame.mli: Fpc_machine
