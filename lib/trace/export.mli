(** Rendering retained events for external viewers.

    {!chrome} emits the Chrome trace-event JSON format (load in
    [chrome://tracing] or [ui.perfetto.dev]): procedure activations become
    B/E duration events on one thread track, with the simulated cycle
    meter as the microsecond timestamp, and notable fast-path happenings
    (traps, return-stack flushes and spills, bank traffic, software frame
    allocations) become instant events.

    {!folded} emits collapsed-stack lines ([Main;Main.fib;Main.fib 42]) —
    exclusive cycles per observed stack — the input format of the standard
    flamegraph tooling.

    Both run over the sink's {e retained} ring, so on a wrapped ring they
    describe the tail of the run (the profile stays exact regardless). *)

val chrome :
  procs:Procmap.t ->
  engine:string ->
  ?final_cycles:int ->
  Event.t list ->
  Fpc_util.Jsonout.t
(** [final_cycles] closes still-open activations at the end of the run
    (defaults to the last event's cycle reading). *)

val folded : procs:Procmap.t -> ?final_cycles:int -> Event.t list -> string
(** One [stack count] line per observed stack with nonzero exclusive
    cycles, sorted lexicographically; trailing newline included. *)
