(** The evaluation stack: "a stack or some working registers for evaluating
    expressions, or for passing arguments and results" (§4).

    It is register-resident (under I4 it lives in a register bank, §7.2),
    so pushes and pops cost no storage references.  The compiler keeps the
    invariant that at every call the stack holds exactly the outgoing
    argument record — §5.2's observation that [f[g[], h[]]] "requires the
    results of g to be saved before h is called" — which is what makes the
    rename-the-stack-bank trick sound. *)

exception Overflow
exception Underflow

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 16 words, the Mesa-processor scale. *)

val capacity : t -> int
val depth : t -> int
val push : t -> int -> unit
val pop : t -> int
val peek : t -> int
val clear : t -> unit

(** {1 Unchecked access}

    For callers that have already proved the depth bounds of a whole run
    of operations — the compiled tier's fused superinstructions, which
    guard once per block instead of once per push.  Same word truncation
    as {!push}; out-of-bounds behaviour is undefined, so these must only
    run under a proven guard. *)

val unsafe_push : t -> int -> unit
val unsafe_pop : t -> int
val unsafe_peek : t -> int

val contents : t -> int array
(** Bottom first; a fresh copy. *)

val buffer : t -> int array
(** The backing array itself (bottom first; only the first {!depth} words
    are meaningful).  Read-only view for the transfer engine, which passes
    it as the argument record without copying — treat it as invalid after
    any push/pop/clear. *)

val replace : t -> int array -> unit
(** Set the whole stack (process resume). *)
