(** A fixed pool of OCaml 5 domains executing jobs from a shared queue.

    Workers pull specs from a mutex+condition work queue, compile through
    a shared {!Image_cache} (each execution gets a private image clone),
    and run the program to completion or until its fuel budget trips the
    [Step_limit] trap.  Every per-job failure mode — malformed source,
    type errors, machine traps, runaway loops, even unexpected
    exceptions — degrades to a [Job.Failed] result; nothing a job does
    can kill a worker or the pool.

    Simulated results are deterministic: a given spec produces the same
    {!Job.outcome} and simulated counters whatever the domain count and
    whatever else is in flight.  Only completion {e order} and host
    timings vary; {!poll}, {!await} and {!run_jobs} all return results
    sorted by submission id, so their output is reproducible.

    Completion bookkeeping is sharded per worker: each domain records
    its results and metrics into its own shard (single writer, its own
    tiny mutex) and the shards are only merged when {!poll}, {!await} or
    {!metrics} ask — completing a job touches no pool-wide state beyond
    the active-count decrement, and waiters are woken only when the pool
    actually drains, not once per completion. *)

type t

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val create :
  ?domains:int ->
  ?cache:Image_cache.t ->
  ?deliver:(Job.result -> unit) ->
  ?arena_reuse:bool ->
  unit ->
  t
(** Spawns [domains] workers (default {!recommended_domains}) sharing
    [cache] (default: a fresh one).  Raises [Invalid_argument] for
    [domains < 1].

    [arena_reuse] (default [true]) gives every worker a private {!Arena}:
    repeat jobs against a cached image reset a long-lived image clone and
    machine state in place (dirty pages only) instead of cloning the full
    store and rebuilding the state per job — the steady state allocates
    almost nothing, so workers stop triggering the stop-the-world minor
    collections that made the pool scale negatively.  [false] restores
    clone-per-job (the arena-vs-clone baseline the benchmarks compare).
    Results are bit-identical either way.

    [deliver], when given, switches the pool into {e push} mode: each
    completed result is handed to [deliver] on the worker domain that
    produced it, before the job stops counting as pending, instead of
    accumulating for {!poll}/{!await} (which then return [[]]).  This is
    the zero-copy result handoff the TCP server rides: the result record
    goes straight from the worker to the consumer, with no shard list, no
    id sort and no second traversal.  [deliver] must be thread-safe, is
    called concurrently from every worker, and should be quick — it runs
    on the execution path.  Exceptions it raises are swallowed. *)

val domains : t -> int
val cache : t -> Image_cache.t

val started_at : t -> float
(** [Unix.gettimeofday] at pool creation (for wall-clock reporting). *)

val submit : t -> Job.spec -> int
(** Enqueue a job; returns its id (dense, starting at 0).  Raises
    [Invalid_argument] after {!shutdown}. *)

val pending : t -> int
(** Jobs queued or currently executing. *)

val poll : t -> Job.result list
(** Results completed since the last [poll]/[await], without blocking.
    {b Guaranteed order}: sorted by submission id, ascending — never
    completion order, which varies with the domain count.  Ids missing
    from one poll (still queued or executing) appear in a later
    [poll]/[await]; each id is returned exactly once overall. *)

val await : t -> Job.result list
(** Block until no job is queued or running, then return the results
    completed since the last [poll]/[await], sorted by id. *)

val drain : t -> unit
(** Block until no job is queued or executing, without collecting
    results — the quiescence hook a [deliver]-mode consumer (the TCP
    server's graceful drain) waits on.  Every submitted job has been
    delivered when this returns. *)

val metrics : t -> Metrics.snapshot
(** Aggregate over every job completed so far (the per-worker shards
    merged on demand); wall time is measured since [create]. *)

val metrics_tally : t -> Metrics.t
(** The merged per-worker accumulators as a fresh mutable {!Metrics.t} —
    for callers (the TCP server) that fold in their own counters (sheds,
    pending watermarks) before taking the snapshot. *)

val shutdown : t -> unit
(** Drain the queue, then stop and join all workers.  Idempotent.
    Completed results remain available via {!poll}/{!await}. *)

val run_jobs :
  ?domains:int ->
  ?cache:Image_cache.t ->
  ?arena_reuse:bool ->
  Job.spec list ->
  Job.result list * Metrics.snapshot
(** One-shot convenience: create a pool, run every spec, shut down.
    Results come back sorted by id — the order the specs were given. *)
