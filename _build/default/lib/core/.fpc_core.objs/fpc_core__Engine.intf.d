lib/core/engine.mli: Fpc_regbank
