(** E3 — Figure 1: levels of indirection in a procedure call.

    §5.1 diagrams the external-call chain (call byte -> link vector ->
    GFT -> global frame -> entry vector -> code) and notes the cost: "it
    takes a considerable amount of unpacking, and a number of memory
    references, to get from the EXTERNALCALL instruction to an address
    which can be used for fetching the next instruction"; a LOCALCALL "has
    only one level of indirection", and §6's DIRECTCALL is followed by the
    IFU like a jump.

    Methodology: the same loop body is run with and without a
    cross-module call to an empty procedure; the per-call storage-read /
    write / cycle costs are the deltas divided by the iteration count.
    The second table renders Figure 1 concretely by walking a real image's
    tables for one call. *)

open Fpc_util

let iterations = 1000

let src_with_call =
  {|
MODULE Leaf;
PROC nothing() =
END;
END;

MODULE Main;
IMPORT Leaf;
PROC main() =
  VAR i: INT := 0;
  WHILE i < 1000 DO
    Leaf.nothing();
    i := i + 1;
  END;
END;
END;
|}

let src_without_call =
  {|
MODULE Leaf;
PROC nothing() =
END;
END;

MODULE Main;
IMPORT Leaf;
PROC main() =
  VAR i: INT := 0;
  WHILE i < 1000 DO
    i := i + 1;
  END;
END;
END;
|}

(* Same-module (LOCALCALL) variant. *)
let src_local_call =
  {|
MODULE Main;
PROC nothing() =
END;
PROC main() =
  VAR i: INT := 0;
  WHILE i < 1000 DO
    nothing();
    i := i + 1;
  END;
END;
END;
|}

let measure ~engine ~convention src_call src_base =
  let open Fpc_machine in
  let run src =
    let image =
      match Fpc_compiler.Compile.image ~convention src with
      | Ok i -> i
      | Error m -> failwith m
    in
    let st =
      Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
        ~args:[] ()
    in
    Harness.must_halt st;
    st
  in
  let a = run src_call and b = run src_base in
  let per x y = float_of_int (x - y) /. float_of_int iterations in
  ( per (Cost.mem_reads a.Fpc_core.State.cost) (Cost.mem_reads b.Fpc_core.State.cost),
    per (Cost.mem_writes a.cost) (Cost.mem_writes b.cost),
    per (Cost.cycles a.cost) (Cost.cycles b.cost) )

let chain_figure () =
  (* Walk the Mesa tables for Main's most frequent import, exactly as the
     machine would. *)
  let image = Harness.image_of ~program:"leafcalls" () in
  let open Fpc_mesa in
  let main = Image.find_instance image "Main" in
  let mem = image.Image.mem in
  let gf = main.ii_gf_addr in
  let lv_addr = gf - 1 in
  let word = Fpc_machine.Memory.peek mem lv_addr in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== Figure 1: levels of indirection (measured) ==\n";
  Buffer.add_string buf
    (Printf.sprintf "EXTERNALCALL 0 in Main          (1-byte opcode 0x80)\n");
  Buffer.add_string buf
    (Printf.sprintf "  LV entry      @%5d -> 0x%04X  (descriptor word)\n" lv_addr word);
  (match Descriptor.unpack word with
  | Descriptor.Proc { gfi; ev } ->
    let gf_t, bias = Gft.read_entry image.gft ~cost_mem_read:false ~gfi in
    Buffer.add_string buf
      (Printf.sprintf "  unpack: tag=proc gfi=%d ev=%d\n" gfi ev);
    Buffer.add_string buf
      (Printf.sprintf "  GFT[%d]       @%5d -> GF=%d bias=%d\n" gfi
         (Gft.base image.gft + gfi) gf_t bias);
    let cb = Fpc_machine.Memory.peek mem gf_t in
    Buffer.add_string buf
      (Printf.sprintf "  GF[0]         @%5d -> code base %d\n" gf_t cb);
    let entry = Fpc_machine.Memory.peek mem (cb + (bias * 32) + ev) in
    Buffer.add_string buf
      (Printf.sprintf "  EV[%d]         @%5d -> entry byte offset %d\n"
         ((bias * 32) + ev) (cb + (bias * 32) + ev) entry);
    let fsi = Fpc_machine.Memory.peek_code_byte mem ~code_base:cb ~pc:entry in
    Buffer.add_string buf
      (Printf.sprintf "  code[%d]      fsi byte = %d; PC = %d\n" entry fsi (entry + 1))
  | _ -> Buffer.add_string buf "  (unexpected LV content)\n");
  Buffer.contents buf

let run () =
  let t =
    Tablefmt.create ~title:"Storage references per call+return, by mechanism"
      ~columns:
        [
          ("mechanism", Tablefmt.Left);
          ("reads/call", Tablefmt.Right);
          ("writes/call", Tablefmt.Right);
          ("cycles/call", Tablefmt.Right);
        ]
  in
  let open Fpc_compiler in
  let rows =
    [
      ("I1 EXTERNALCALL (2-word desc, software heap)", Fpc_core.Engine.i1,
       Convention.external_, src_with_call, src_without_call);
      ("I2 EXTERNALCALL (4-level chain, AV heap)", Fpc_core.Engine.i2,
       Convention.external_, src_with_call, src_without_call);
      ("I2 LOCALCALL (1 level)", Fpc_core.Engine.i2, Convention.external_,
       src_local_call, src_without_call);
      ("I2 DIRECTCALL (no IFU)", Fpc_core.Engine.i2, Convention.direct,
       src_with_call, src_without_call);
      ("I3 DIRECTCALL (IFU + return stack)", Fpc_core.Engine.i3 (),
       Convention.direct, src_with_call, src_without_call);
      ("I4 DIRECTCALL (banks + free frames)", Fpc_core.Engine.i4 (),
       Convention.banked (), src_with_call, src_without_call);
    ]
  in
  let results =
    List.map
      (fun (label, engine, conv, a, b) ->
        let reads, writes, cycles = measure ~engine ~convention:conv a b in
        Tablefmt.add_row t
          [
            label;
            Tablefmt.cell_float reads;
            Tablefmt.cell_float writes;
            Tablefmt.cell_float cycles;
          ];
        (label, reads +. writes))
      rows
  in
  let find label = List.assoc label results in
  {
    Exp.id = "E3";
    key = "indirection_chain";
    title = "Figure 1: indirection levels and per-call storage traffic";
    paper_claim =
      "an external call takes four levels of indirection; a local call \
       one; a DIRECTCALL none (\xC2\xA75.1, Figure 1, \xC2\xA76)";
    tables = [ Tablefmt.render t; chain_figure () ];
    headlines =
      [
        ("i2_external_refs_per_call",
         find "I2 EXTERNALCALL (4-level chain, AV heap)");
        ("i2_local_refs_per_call", find "I2 LOCALCALL (1 level)");
        ("i3_direct_refs_per_call", find "I3 DIRECTCALL (IFU + return stack)");
        ("i4_direct_refs_per_call", find "I4 DIRECTCALL (banks + free frames)");
      ];
  }
