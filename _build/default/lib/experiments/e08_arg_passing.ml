(** E8 — §7.2: free argument passing by renaming the stack bank.

    "After the arguments have been loaded on the stack, the bank holding
    the stack can be renamed to be the shadower for the local frame of the
    called procedure.  As a consequence, the arguments will automatically
    appear as the first few local variables, without any actual data
    movement.  Thus this scheme provides essentially free passing of
    arguments and results; the only cost is the instructions to load them
    on the stack."

    Measured: argument words moved per call under the store-prologue
    convention (I2/I3) against the renamed convention (I4), plus the
    storage writes those prologues cost. *)

open Fpc_util

let run () =
  let t =
    Tablefmt.create ~title:"Argument-record movement per call"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("calls (I2)", Tablefmt.Right);
          ("arg words stored (I2)", Tablefmt.Right);
          ("stored/call", Tablefmt.Right);
          ("arg words renamed (I4)", Tablefmt.Right);
          ("moved/call (I4)", Tablefmt.Right);
        ]
  in
  let total_stored = ref 0 and total_calls = ref 0 in
  List.iter
    (fun program ->
      let i2 = Harness.run_one ~engine:Fpc_core.Engine.i2 ~program () in
      let i4 = Harness.run_one ~engine:(Fpc_core.Engine.i4 ()) ~program () in
      let m2 = i2.Fpc_core.State.metrics in
      let m4 = i4.Fpc_core.State.metrics in
      total_stored := !total_stored + m2.arg_words_stored;
      total_calls := !total_calls + m2.calls;
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int m2.calls;
          Tablefmt.cell_int m2.arg_words_stored;
          Tablefmt.cell_float (Harness.ratio m2.arg_words_stored m2.calls);
          Tablefmt.cell_int m4.arg_words_renamed;
          Tablefmt.cell_float 0.0;
        ])
    Fpc_workload.Programs.sequential;
  Tablefmt.add_note t
    "renamed words appear as the callee's first locals with no stores; \
     the store-prologue words are each a real storage write under I2";
  {
    Exp.id = "E8";
    key = "arg_passing";
    title = "Free argument passing (stack-bank renaming)";
    paper_claim =
      "arguments appear as the first locals without any actual data \
       movement (\xC2\xA77.2)";
    tables = [ Tablefmt.render t ];
    headlines =
      [
        ("i2_arg_words_per_call", Harness.ratio !total_stored !total_calls);
        ("i4_arg_words_moved_per_call", 0.0);
      ];
  }
