(** Transfer-engine configurations: which of the paper's implementations
    runs a program.

    - {!i1} — §4's straightforward implementation: full-width (two-word)
      descriptor tables, no packing, and a general-purpose heap whose every
      allocation goes through the software allocator.
    - {!i2} — §5's Mesa implementation: the packed-descriptor indirection
      chain (LV → GFT → global frame → EV) and the AV fast frame heap.
    - {!i3} — I2 plus §6: the IFU follows DIRECTCALLs, and a return stack
      lets LIFO returns (and the deferred overhead stores) ride the fast
      path.
    - {!i4} — I3 plus §7: register banks shadowing frames, stack-bank
      renaming for free argument passing, and a processor free-frame stack
      making allocation of common-size frames free.

    A program compiled with [args_in_place = true] (no argument-store
    prologue) must run on an engine with banks, and vice versa; see
    {!Fpc_compiler.Convention}. *)

type kind = Simple | Mesa

type t = {
  kind : kind;
  return_stack_depth : int;  (** 0 disables the I3 return stack *)
  banks : Fpc_regbank.Bank_file.config option;
  free_frame_stack_depth : int;  (** 0 disables the §7.1 free-frame stack *)
  free_frame_payload_words : int;
      (** payload size the free-frame stack serves: §7.1 makes "the
          smallest frame size the 80 bytes just cited" — 40 words *)
  collect_data_trace : bool;  (** record the data-reference stream for E9 *)
}

val i1 : t
val i2 : t
val i3 : ?return_stack_depth:int -> unit -> t

val i4 :
  ?return_stack_depth:int ->
  ?bank_config:Fpc_regbank.Bank_file.config ->
  ?free_frame_stack_depth:int ->
  unit ->
  t

val name : t -> string
(** "I1", "I2", "I3(d=8)", "I4(b=4x16,d=8)". *)

val args_in_place : t -> bool
(** True exactly when banks are configured. *)
