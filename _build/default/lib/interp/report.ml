open Fpc_machine
open Fpc_util

let render (st : Fpc_core.State.t) =
  let m = st.metrics in
  let t =
    Tablefmt.create
      ~title:(Printf.sprintf "machine statistics (%s)" (Fpc_core.Engine.name st.engine))
      ~columns:[ ("statistic", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  let row k v = Tablefmt.add_row t [ k; v ] in
  row "instructions" (Tablefmt.cell_int m.instructions);
  row "cycles" (Tablefmt.cell_int (Cost.cycles st.cost));
  row "storage reads / writes"
    (Printf.sprintf "%d / %d" (Cost.mem_reads st.cost) (Cost.mem_writes st.cost));
  row "bank references" (Tablefmt.cell_int (Cost.bank_refs st.cost));
  row "calls / returns / other XFERs"
    (Printf.sprintf "%d / %d / %d" m.calls m.returns m.other_xfers);
  let transfers = m.fast_transfers + m.slow_transfers in
  if transfers > 0 then
    row "transfers at jump speed"
      (Printf.sprintf "%d/%d (%s)" m.fast_transfers transfers
         (Tablefmt.cell_pct (float_of_int m.fast_transfers /. float_of_int transfers)));
  if m.calls + m.returns > 0 then
    row "instructions per call-or-return"
      (Tablefmt.cell_float
         (float_of_int m.instructions /. float_of_int (m.calls + m.returns)));
  row "frame allocations / frees"
    (Printf.sprintf "%d / %d" m.frame_allocs m.frame_frees);
  if m.ff_hits + m.ff_misses > 0 then
    row "free-frame stack hits"
      (Printf.sprintf "%d/%d" m.ff_hits (m.ff_hits + m.ff_misses));
  row "local / global / pointer data refs"
    (Printf.sprintf "%d / %d / %d" m.local_refs m.global_refs m.indirect_refs);
  if m.arg_words_stored > 0 then
    row "argument words stored by prologues" (Tablefmt.cell_int m.arg_words_stored);
  if m.arg_words_renamed > 0 then
    row "argument words delivered by renaming" (Tablefmt.cell_int m.arg_words_renamed);
  if Histogram.count st.depth_hist > 0 then
    row "call depth p50 / p95 / max"
      (Printf.sprintf "%d / %d / %d"
         (Histogram.percentile st.depth_hist 50.0)
         (Histogram.percentile st.depth_hist 95.0)
         (Histogram.max_value st.depth_hist));
  (match st.rstack with
  | None -> ()
  | Some rs ->
    row "return stack fast pops / slow / spills / flushes"
      (Printf.sprintf "%d / %d / %d / %d"
         (Fpc_ifu.Return_stack.fast_pops rs)
         (Fpc_ifu.Return_stack.empty_pops rs)
         (Fpc_ifu.Return_stack.spills rs)
         (Fpc_ifu.Return_stack.flushes rs)));
  (match st.banks with
  | None -> ()
  | Some bf ->
    let s = Fpc_regbank.Bank_file.stats bf in
    row "bank overflows / underflows / xfers"
      (Printf.sprintf "%d / %d / %d" s.overflows s.underflows s.xfers);
    if s.diversions > 0 then row "pointer diversions" (Tablefmt.cell_int s.diversions);
    if s.flagged_flushes > 0 then
      row "flagged-frame flushes" (Tablefmt.cell_int s.flagged_flushes));
  Tablefmt.render t
