open Fpc_machine
open Fpc_frames

type proc_layout = {
  l_proc : Compiled.proc;
  l_header_off : int option;  (* byte offset of the 2-byte GF header *)
  l_fsi_off : int;
  l_body_off : int;
  l_fsi : int;
}

type module_layout = {
  l_module : Compiled.t;
  l_code_base : int;  (* word address *)
  l_seg_bytes : int;
  l_procs : proc_layout array;
  l_instances : int;
  l_headers : bool;
}

let instance_name module_name k =
  if k = 0 then module_name else Printf.sprintf "%s#%d" module_name k

let gfi_count_for nprocs = max 1 ((nprocs + 31) / 32)

let validate_modules modules =
  let ( let* ) r f = Result.bind r f in
  let* () =
    List.fold_left (fun acc m -> Result.bind acc (fun () -> Compiled.validate m)) (Ok ()) modules
  in
  let names = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc (m : Compiled.t) ->
        let* () = acc in
        if Hashtbl.mem names m.m_name then
          Error (Printf.sprintf "duplicate module %s" m.m_name)
        else begin
          Hashtbl.add names m.m_name ();
          Ok ()
        end)
      (Ok ()) modules
  in
  let find_module name =
    List.find_opt (fun (m : Compiled.t) -> String.equal m.m_name name) modules
  in
  List.fold_left
    (fun acc (m : Compiled.t) ->
      Array.fold_left
        (fun acc (tm, tp) ->
          let* () = acc in
          match find_module tm with
          | None -> Error (Printf.sprintf "%s imports unknown module %s" m.m_name tm)
          | Some target -> (
            match Compiled.proc_index target tp with
            | _ -> Ok ()
            | exception Not_found ->
              Error (Printf.sprintf "%s imports unknown procedure %s.%s" m.m_name tm tp)))
        acc m.m_imports)
    (Ok ()) modules

(* Phase 1: compute each module's code-segment layout (no memory writes). *)
let layout_module (image : Image.t) ~linkage ~devirt ~instances (m : Compiled.t) =
  let nprocs = List.length m.m_procs in
  (* Under devirtualization, single-instance procedures get DIRECTCALL
     headers even with external linkage, so a proven call site has a
     landing pad to rewrite onto. *)
  let headers =
    (devirt || (match linkage with Image.External -> false | _ -> true)) && instances = 1
  in
  let off = ref (2 * nprocs) in
  let procs =
    m.m_procs
    |> List.map (fun (p : Compiled.proc) ->
           let header_off =
             if headers then begin
               let h = !off in
               off := !off + 2;
               Some h
             end
             else None
           in
           let fsi_off = !off in
           incr off;
           let body_off = !off in
           off := !off + Bytes.length p.p_body;
           let fsi = Alloc_vector.fsi_for_locals image.Image.allocator p.p_locals_words in
           { l_proc = p; l_header_off = header_off; l_fsi_off = fsi_off; l_body_off = body_off; l_fsi = fsi })
    |> Array.of_list
  in
  let seg_bytes = !off in
  if seg_bytes > 0xFFFF then
    invalid_arg (Printf.sprintf "Linker: code segment of %s exceeds 64 KB" m.m_name);
  let code_base = Image.alloc_code image ~words:(Memory.words_for_bytes seg_bytes) in
  { l_module = m; l_code_base = code_base; l_seg_bytes = seg_bytes; l_procs = procs;
    l_instances = instances; l_headers = headers }

(* Allocate a global frame with its link vector packed immediately below
   it (reversed: LV entry i is the word at gf - 1 - i), so an
   EXTERNALCALL reaches a context word in a single reference from the GF
   register — the first hop of Figure 1. *)
let alloc_gf_with_lv (image : Image.t) ~n_imports ~globals_words =
  let c = image.static_cursor in
  let gf = (c + n_imports + 3) land lnot 3 in
  let finish = gf + Image.global_base + globals_words in
  if finish > image.layout.Layout.heap_base then
    invalid_arg "Linker: static region exhausted";
  image.static_cursor <- finish;
  gf

(* Phase 2: create an instance — global frame, link vector, GFT entries,
   directory records.  LV contents are resolved in phase 3. *)
let create_instance (image : Image.t) (ml : module_layout) ~k =
  let m = ml.l_module in
  let name = instance_name m.m_name k in
  let nprocs = Array.length ml.l_procs in
  let gfi_count = gfi_count_for nprocs in
  if image.dir.gfi_cursor + gfi_count > Gft.capacity then
    invalid_arg "Linker: out of GFT entries";
  let gfi = image.dir.gfi_cursor in
  image.dir.gfi_cursor <- gfi + gfi_count;
  let n_imports = Array.length m.m_imports in
  let gf = alloc_gf_with_lv image ~n_imports ~globals_words:m.m_globals_words in
  let lv = gf - n_imports in
  Memory.poke image.mem gf ml.l_code_base;
  Memory.poke image.mem (gf + 1) lv;
  List.iter
    (fun (i, v) -> Memory.poke image.mem (gf + Image.global_base + i) v)
    m.m_global_init;
  for b = 0 to gfi_count - 1 do
    Gft.set_entry image.gft ~gfi:(gfi + b) ~gf_addr:gf ~bias:b
  done;
  let ii =
    {
      Image.ii_name = name;
      ii_module = m.m_name;
      ii_gfi = gfi;
      ii_gfi_count = gfi_count;
      ii_gf_addr = gf;
      ii_lv_base = lv;
      ii_code_base = ml.l_code_base;
      ii_imports = Array.copy m.m_imports;
    }
  in
  image.dir.instances <- image.dir.instances @ [ ii ];
  Array.iteri
    (fun ev pl ->
      Hashtbl.replace image.dir.procs (name, pl.l_proc.p_name)
        {
          Image.pi_instance = name;
          pi_proc = pl.l_proc.p_name;
          pi_ev = ev;
          pi_entry_offset = pl.l_fsi_off;
          pi_direct_offset = pl.l_header_off;
          pi_fsi = pl.l_fsi;
          pi_locals_words = pl.l_proc.p_locals_words;
          pi_nargs = pl.l_proc.p_nargs;
          pi_body_bytes = Bytes.length pl.l_proc.p_body;
        })
    ml.l_procs;
  ii

let resolve_lv (image : Image.t) (ii : Image.instance_info) =
  Array.iteri
    (fun i (tm, tp) ->
      let d = Image.descriptor_of image ~instance:tm ~proc:tp in
      Memory.poke image.mem (ii.ii_gf_addr - 1 - i) (Descriptor.pack d))
    ii.ii_imports

(* Phase 4: materialise a module's code segment and patch direct-call
   placeholders. *)
let write_segment (image : Image.t) ~linkage ~layouts (ml : module_layout) =
  let seg = Bytes.make ml.l_seg_bytes '\000' in
  let set_word ~byte_off w =
    Bytes.set seg byte_off (Char.chr ((w lsr 8) land 0xFF));
    Bytes.set seg (byte_off + 1) (Char.chr (w land 0xFF))
  in
  let layout_of name =
    List.find (fun l -> String.equal l.l_module.Compiled.m_name name) layouts
  in
  (* The single instance owning this segment's headers, if any. *)
  let gf_of_single_instance () =
    (Image.find_instance image ml.l_module.m_name).ii_gf_addr
  in
  Array.iteri
    (fun ev pl ->
      set_word ~byte_off:(2 * ev) pl.l_fsi_off;
      (match pl.l_header_off with
      | Some h -> set_word ~byte_off:h (gf_of_single_instance ())
      | None -> ());
      Bytes.set seg pl.l_fsi_off (Char.chr pl.l_fsi);
      Bytes.blit pl.l_proc.p_body 0 seg pl.l_body_off (Bytes.length pl.l_proc.p_body);
      List.iter
        (fun (pos, lv_index) ->
          let abs_pos = pl.l_body_off + pos in
          let tm, tp = ml.l_module.m_imports.(lv_index) in
          let tml = layout_of tm in
          let tpl =
            tml.l_procs.(Compiled.proc_index tml.l_module tp)
          in
          match tpl.l_header_off with
          | None ->
            (* D2 fallback: the target has several instances, so keep the
               general scheme — a two-byte EXTERNALCALL plus two pad NOPs. *)
            Bytes.set seg abs_pos '\x90';
            Bytes.set seg (abs_pos + 1) (Char.chr lv_index);
            Bytes.set seg (abs_pos + 2) '\000';
            Bytes.set seg (abs_pos + 3) '\000'
          | Some target_header ->
            let target_abs = (tml.l_code_base * 2) + target_header in
            let here_abs = (ml.l_code_base * 2) + abs_pos in
            let displacement = target_abs - here_abs in
            let lo, hi = Fpc_isa.Opcode.sdfc_range in
            if linkage = Image.Short_direct && displacement >= lo && displacement <= hi
            then Fpc_isa.Builder.rewrite_dfc_to_sdfc seg ~pos:abs_pos ~displacement
            else Fpc_isa.Builder.patch_dfc seg ~pos:abs_pos ~target:target_abs)
        pl.l_proc.p_dfc_fixups;
      List.iter
        (fun (pos, lv_index) ->
          let abs_pos = pl.l_body_off + pos in
          let tm, tp = ml.l_module.m_imports.(lv_index) in
          let d = Image.descriptor_of image ~instance:tm ~proc:tp in
          let w = Descriptor.pack d in
          Bytes.set seg (abs_pos + 1) (Char.chr ((w lsr 8) land 0xFF));
          Bytes.set seg (abs_pos + 2) (Char.chr (w land 0xFF)))
        pl.l_proc.p_lpd_fixups)
    ml.l_procs;
  Memory.blit_bytes image.mem ~code_base:ml.l_code_base seg

let link ?(linkage = Image.External) ?(devirt = false) ?(memory_words = 65536) ?ladder
    ?cost_params ?(extra_instances = []) modules =
  match validate_modules modules with
  | Error _ as e -> e
  | Ok () -> (
    try
      let ladder = match ladder with Some l -> l | None -> Size_class.default in
      let cost = Cost.create ?params:cost_params () in
      let layout = Layout.make ~memory_words ~ladder () in
      let mem = Memory.create ~cost ~size_words:memory_words () in
      let allocator =
        Alloc_vector.create ~mem ~ladder ~av_base:layout.av_base
          ~heap_base:layout.heap_base ~heap_limit:layout.heap_limit ()
      in
      let gft = Gft.create ~mem ~base:layout.gft_base in
      let dir =
        {
          Image.instances = [];
          procs = Hashtbl.create 64;
          source = modules;
          code_cursor = layout.code_region_base;
          gfi_cursor = 1;
          predecode = None;
          attachment = None;
          on_relink = None;
          devirt = None;
        }
      in
      let image =
        {
          Image.mem;
          cost;
          allocator;
          gft;
          layout;
          linkage;
          dir;
          static_cursor = layout.static_base;
        }
      in
      let count_instances name =
        1 + List.length (List.filter (String.equal name) extra_instances)
      in
      List.iter
        (fun name ->
          if
            not
              (List.exists (fun (m : Compiled.t) -> String.equal m.m_name name) modules)
          then invalid_arg (Printf.sprintf "Linker: extra instance of unknown module %s" name))
        extra_instances;
      let layouts =
        List.map
          (fun (m : Compiled.t) ->
            layout_module image ~linkage ~devirt ~instances:(count_instances m.m_name) m)
          modules
      in
      List.iter
        (fun ml ->
          for k = 0 to ml.l_instances - 1 do
            ignore (create_instance image ml ~k)
          done)
        layouts;
      List.iter (resolve_lv image) image.dir.instances;
      List.iter (write_segment image ~linkage ~layouts) layouts;
      Ok image
    with Invalid_argument msg -> Error msg)

let instantiate (image : Image.t) ~module_name =
  if image.linkage <> Image.External then
    Error "instantiate: only External-linkage images may gain instances (D2)"
  else
    match Image.find_module image module_name with
    | exception Not_found -> Error (Printf.sprintf "instantiate: unknown module %s" module_name)
    | m -> (
      let existing =
        List.filter (fun (i : Image.instance_info) -> String.equal i.ii_module module_name)
          image.dir.instances
      in
      let k = List.length existing in
      let code_base =
        match existing with
        | i :: _ -> i.Image.ii_code_base
        | [] -> assert false
      in
      try
        let nprocs = List.length m.m_procs in
        let gfi_count = gfi_count_for nprocs in
        if image.dir.gfi_cursor + gfi_count > Gft.capacity then
          invalid_arg "instantiate: out of GFT entries";
        let gfi = image.dir.gfi_cursor in
        image.dir.gfi_cursor <- gfi + gfi_count;
        let n_imports = Array.length m.m_imports in
        let gf = alloc_gf_with_lv image ~n_imports ~globals_words:m.m_globals_words in
        let lv = gf - n_imports in
        Memory.poke image.mem gf code_base;
        Memory.poke image.mem (gf + 1) lv;
        List.iter
          (fun (i, v) -> Memory.poke image.mem (gf + Image.global_base + i) v)
          m.m_global_init;
        for b = 0 to gfi_count - 1 do
          Gft.set_entry image.gft ~gfi:(gfi + b) ~gf_addr:gf ~bias:b
        done;
        let name = instance_name module_name k in
        let ii =
          {
            Image.ii_name = name;
            ii_module = module_name;
            ii_gfi = gfi;
            ii_gfi_count = gfi_count;
            ii_gf_addr = gf;
            ii_lv_base = lv;
            ii_code_base = code_base;
            ii_imports = Array.copy m.m_imports;
          }
        in
        image.dir.instances <- image.dir.instances @ [ ii ];
        (* Mirror the base instance's directory entries. *)
        List.iteri
          (fun ev (p : Compiled.proc) ->
            let base = Hashtbl.find image.dir.procs (module_name, p.p_name) in
            ignore ev;
            Hashtbl.replace image.dir.procs (name, p.p_name)
              { base with Image.pi_instance = name })
          m.m_procs;
        resolve_lv image ii;
        Ok name
      with Invalid_argument msg -> Error msg)

let rebind_lv (image : Image.t) ~instance ~lv_index ~target:(ti, tp) =
  let ii = Image.find_instance image instance in
  if lv_index < 0 || lv_index >= Array.length ii.ii_imports then
    invalid_arg "rebind_lv: LV index out of range";
  let d = Image.descriptor_of image ~instance:ti ~proc:tp in
  let addr = ii.ii_gf_addr - 1 - lv_index in
  let word = Descriptor.pack d in
  Memory.poke image.mem addr word;
  Image.notify_relink image ~addr ~word

let rebind_lv_to_frame (image : Image.t) ~instance ~lv_index ~lf =
  let ii = Image.find_instance image instance in
  if lv_index < 0 || lv_index >= Array.length ii.ii_imports then
    invalid_arg "rebind_lv_to_frame: LV index out of range";
  let addr = ii.ii_gf_addr - 1 - lv_index in
  let word = Descriptor.pack (Descriptor.Frame lf) in
  Memory.poke image.mem addr word;
  Image.notify_relink image ~addr ~word

let require_external (image : Image.t) what =
  if image.linkage <> Image.External then
    Error (Printf.sprintf "%s: direct linkage freezes addresses (D3)" what)
  else Ok ()

let move_global_frame (image : Image.t) ~instance =
  Result.bind (require_external image "move_global_frame") (fun () ->
      match Image.find_instance image instance with
      | exception Not_found -> Error (Printf.sprintf "unknown instance %s" instance)
      | ii ->
        let m = Image.find_module image ii.ii_module in
        let n_imports = Array.length ii.ii_imports in
        let dst =
          alloc_gf_with_lv image ~n_imports ~globals_words:m.m_globals_words
        in
        (* The link vector travels with its global frame. *)
        for i = -n_imports to Image.global_base + m.m_globals_words - 1 do
          Memory.poke image.mem (dst + i) (Memory.peek image.mem (ii.ii_gf_addr + i))
        done;
        Memory.poke image.mem (dst + 1) (dst - n_imports);
        for b = 0 to ii.ii_gfi_count - 1 do
          Gft.set_entry image.gft ~gfi:(ii.ii_gfi + b) ~gf_addr:dst ~bias:b
        done;
        ii.ii_gf_addr <- dst;
        ii.ii_lv_base <- dst - n_imports;
        Ok dst)

let segment_extent (image : Image.t) module_name =
  let m = Image.find_module image module_name in
  let nprocs = List.length m.m_procs in
  let last =
    List.fold_left
      (fun acc (p : Compiled.proc) ->
        let pi = Hashtbl.find image.dir.procs (module_name, p.p_name) in
        max acc (pi.Image.pi_entry_offset + 1 + pi.pi_body_bytes))
      (2 * nprocs) m.m_procs
  in
  last

let move_code_segment (image : Image.t) ~module_name =
  Result.bind (require_external image "move_code_segment") (fun () ->
      match Image.find_module image module_name with
      | exception Not_found -> Error (Printf.sprintf "unknown module %s" module_name)
      | _ ->
        let seg_bytes = segment_extent image module_name in
        let words = Memory.words_for_bytes seg_bytes in
        let old_base = (Image.find_instance image module_name).ii_code_base in
        let new_base = Image.alloc_code image ~words in
        for i = 0 to words - 1 do
          Memory.poke image.mem (new_base + i) (Memory.peek image.mem (old_base + i))
        done;
        List.iter
          (fun (ii : Image.instance_info) ->
            if String.equal ii.ii_module module_name then begin
              ii.ii_code_base <- new_base;
              Memory.poke image.mem ii.ii_gf_addr new_base
            end)
          image.dir.instances;
        Ok new_base)

let move_procedure (image : Image.t) ~module_name ~proc =
  Result.bind (require_external image "move_procedure") (fun () ->
      match Hashtbl.find image.dir.procs (module_name, proc) with
      | exception Not_found ->
        Error (Printf.sprintf "unknown procedure %s.%s" module_name proc)
      | pi ->
        let code_base = (Image.find_instance image module_name).ii_code_base in
        let len = 1 + pi.pi_body_bytes in
        let new_words = Memory.words_for_bytes (len + 1) in
        let new_base = Image.alloc_code image ~words:new_words in
        let new_off = (new_base * 2) - (code_base * 2) in
        if new_off < 0 || new_off > 0xFFFF then
          Error "move_procedure: new location not addressable from the code base"
        else begin
          for b = 0 to len - 1 do
            Memory.poke_code_byte image.mem ~code_base:new_base ~pc:b
              (Memory.peek_code_byte image.mem ~code_base ~pc:(pi.pi_entry_offset + b))
          done;
          (* Repoint the EV entry in every instance's shared segment (one
             segment, so one write), then update the directory. *)
          Memory.poke_code_byte image.mem ~code_base ~pc:(2 * pi.pi_ev)
            ((new_off lsr 8) land 0xFF);
          Memory.poke_code_byte image.mem ~code_base ~pc:((2 * pi.pi_ev) + 1)
            (new_off land 0xFF);
          List.iter
            (fun (ii : Image.instance_info) ->
              if String.equal ii.ii_module module_name then
                match Hashtbl.find_opt image.dir.procs (ii.ii_name, proc) with
                | Some p ->
                  Hashtbl.replace image.dir.procs (ii.ii_name, proc)
                    { p with Image.pi_entry_offset = new_off }
                | None -> ())
            image.dir.instances;
          Ok new_off
        end)
