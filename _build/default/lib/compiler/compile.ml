let ( let* ) = Result.bind

let front_end src =
  let* prog = Fpc_lang.Parser.parse src in
  let* env = Fpc_lang.Typecheck.check prog in
  Ok (prog, env)

let modules ?(convention = Convention.external_) src =
  let* prog, env = front_end src in
  let lowered = Lower.program prog in
  match List.map (Codegen.module_decl ~env ~convention) lowered with
  | compiled -> Ok compiled
  | exception Invalid_argument msg -> Error msg

let image ?(convention = Convention.external_) ?memory_words ?extra_instances src =
  let* compiled = modules ~convention src in
  Fpc_mesa.Linker.link ~linkage:convention.Convention.linkage ?memory_words
    ?extra_instances compiled

let image_for_engine ~engine ?memory_words src =
  image ~convention:(Convention.for_engine engine) ?memory_words src

let run ?(engine = Fpc_core.Engine.i2) ?max_steps ?(instance = "Main")
    ?(proc = "main") ?(args = []) src =
  let* img = image_for_engine ~engine src in
  match
    Fpc_interp.Interp.run_program ?max_steps ~image:img ~engine ~instance ~proc
      ~args ()
  with
  | st -> Ok (Fpc_interp.Interp.outcome st)
  | exception Not_found ->
    Error (Printf.sprintf "no procedure %s.%s" instance proc)
