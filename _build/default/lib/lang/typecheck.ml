open Ast

type proc_sig = { ps_params : (typ * bool) list; ps_result : typ option }

type module_env = {
  me_globals : (string * typ) list;
  me_procs : (string * proc_sig) list;
  me_imports : string list;
}

type env = (string * module_env) list

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* Per-procedure variable scope: parameters and locals shadow globals. *)
type scope = {
  vars : (string, typ * [ `Value | `Var_param | `Global ]) Hashtbl.t;
  globals : (string * typ) list;
}

let lookup_var scope name =
  match Hashtbl.find_opt scope.vars name with
  | Some (t, kind) -> (t, kind)
  | None -> (
    match List.assoc_opt name scope.globals with
    | Some t -> (t, `Global)
    | None -> err "unknown variable %s" name)

let sig_of env ~current (c : callee) =
  let module_name = Option.value c.c_module ~default:current in
  match List.assoc_opt module_name env with
  | None -> err "unknown module %s" module_name
  | Some me -> (
    (match c.c_module with
    | Some m when not (String.equal m current) ->
      let this = List.assoc current env in
      if not (List.mem m this.me_imports) then
        err "module %s is not imported by %s" m current
    | Some _ | None -> ());
    match List.assoc_opt c.c_proc me.me_procs with
    | Some s -> s
    | None -> err "module %s has no procedure %s" module_name c.c_proc)

let find_sig env ~current c =
  match sig_of env ~current c with s -> s | exception Type_error _ -> raise Not_found

let rec expr_type env ~current scope (e : expr) : typ =
  match e with
  | Int _ -> Tint
  | Bool _ -> Tbool
  | Nil -> Tcontext
  | Retctx -> Tcontext
  | Var name -> (
    match lookup_var scope name with
    | Tarray _, _ -> err "array %s cannot be used as a value; index it" name
    | t, _ -> t)
  | Index (name, i) -> (
    match lookup_var scope name with
    | Tarray _, _ ->
      expect env ~current scope i Tint "array index";
      Tint
    | t, _ -> err "%s has type %s and cannot be indexed" name (typ_to_string t))
  | ProcVal c ->
    ignore (sig_of env ~current c);
    Tcontext
  | Unop (Uneg, e) ->
    expect env ~current scope e Tint "operand of unary -";
    Tint
  | Unop (Unot, e) ->
    expect env ~current scope e Tbool "operand of NOT";
    Tbool
  | Binop (op, a, b) -> (
    match op with
    | Badd | Bsub | Bmul | Bdiv | Bmod ->
      expect env ~current scope a Tint "arithmetic operand";
      expect env ~current scope b Tint "arithmetic operand";
      Tint
    | Blt | Ble | Bge | Bgt ->
      expect env ~current scope a Tint "comparison operand";
      expect env ~current scope b Tint "comparison operand";
      Tbool
    | Beq | Bne -> (
      let ta = expr_type env ~current scope a in
      let tb = expr_type env ~current scope b in
      if ta <> tb then
        err "cannot compare %s with %s" (typ_to_string ta) (typ_to_string tb);
      match ta with
      | Tarray _ -> err "arrays cannot be compared"
      | Tint | Tbool | Tcontext -> Tbool)
    | Band | Bor ->
      expect env ~current scope a Tbool "boolean operand";
      expect env ~current scope b Tbool "boolean operand";
      Tbool)
  | Call (c, args) -> (
    check_call env ~current scope c args;
    match (sig_of env ~current c).ps_result with
    | Some t -> t
    | None -> err "procedure %s returns no value" (callee_to_string c))
  | Transfer (ctx, values) ->
    expect env ~current scope ctx Tcontext "TRANSFER destination";
    List.iter (fun v -> expect env ~current scope v Tint "TRANSFER value") values;
    Tint

and expect env ~current scope e t what =
  let t' = expr_type env ~current scope e in
  if t' <> t then
    err "%s has type %s, expected %s" what (typ_to_string t') (typ_to_string t)

and check_call env ~current scope (c : callee) args =
  let s = sig_of env ~current c in
  if List.length args <> List.length s.ps_params then
    err "%s expects %d arguments, got %d" (callee_to_string c)
      (List.length s.ps_params) (List.length args);
  List.iter2
    (fun arg (t, is_var) ->
      if is_var then begin
        match arg with
        | Var name ->
          let t', _ = lookup_var scope name in
          if t' <> t then
            err "VAR argument %s has type %s, expected %s" name (typ_to_string t')
              (typ_to_string t)
        | _ -> err "VAR parameter of %s needs a variable argument" (callee_to_string c)
      end
      else expect env ~current scope arg t "argument")
    args s.ps_params

let rec check_stmt env ~current ~result scope (s : stmt) =
  match s with
  | Local (name, t, init) ->
    if Hashtbl.mem scope.vars name then err "duplicate local %s" name;
    Option.iter (fun e -> expect env ~current scope e t "initialiser") init;
    Hashtbl.add scope.vars name (t, `Value)
  | Assign (name, e) -> (
    match lookup_var scope name with
    | Tarray _, _ -> err "cannot assign a whole array"
    | t, _ -> expect env ~current scope e t "assigned value")
  | AssignIdx (name, i, e) -> (
    match lookup_var scope name with
    | Tarray _, _ ->
      expect env ~current scope i Tint "array index";
      expect env ~current scope e Tint "array element"
    | t, _ -> err "%s has type %s and cannot be indexed" name (typ_to_string t))
  | If (cond, then_, else_) ->
    expect env ~current scope cond Tbool "IF condition";
    List.iter (check_stmt env ~current ~result scope) then_;
    List.iter (check_stmt env ~current ~result scope) else_
  | While (cond, body) ->
    expect env ~current scope cond Tbool "WHILE condition";
    List.iter (check_stmt env ~current ~result scope) body
  | Return None ->
    if result <> None then err "RETURN needs a value here"
  | Return (Some e) -> (
    match result with
    | None -> err "this procedure returns no value"
    | Some t -> expect env ~current scope e t "RETURN value")
  | Output e -> ignore (expr_type env ~current scope e)
  | CallS (c, args) -> check_call env ~current scope c args
  | TransferS (ctx, values) ->
    expect env ~current scope ctx Tcontext "TRANSFER destination";
    List.iter (fun v -> expect env ~current scope v Tint "TRANSFER value") values
  | ForkS (c, args) ->
    let s = sig_of env ~current c in
    if List.exists snd s.ps_params then
      err "FORK %s: VAR parameters cannot cross a process boundary"
        (callee_to_string c);
    check_call env ~current scope c args
  | YieldS | StopS -> ()

let check_proc env ~current globals (p : proc) =
  let scope = { vars = Hashtbl.create 16; globals } in
  List.iter
    (fun prm ->
      (match prm.prm_type with
      | Tarray _ -> err "parameter %s: arrays cannot be passed" prm.prm_name
      | Tint | Tbool | Tcontext -> ());
      if Hashtbl.mem scope.vars prm.prm_name then
        err "duplicate parameter %s" prm.prm_name;
      Hashtbl.add scope.vars prm.prm_name
        (prm.prm_type, if prm.prm_var then `Var_param else `Value))
    p.pr_params;
  List.iter (check_stmt env ~current ~result:p.pr_result scope) p.pr_body

let build_env (prog : program) : env =
  List.map
    (fun m ->
      ( m.md_name,
        {
          me_globals = List.map (fun g -> (g.g_name, g.g_type)) m.md_globals;
          me_procs =
            List.map
              (fun p ->
                ( p.pr_name,
                  {
                    ps_params =
                      List.map (fun prm -> (prm.prm_type, prm.prm_var)) p.pr_params;
                    ps_result = p.pr_result;
                  } ))
              m.md_procs;
          me_imports = m.md_imports;
        } ))
    prog

let distinct what names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then err "duplicate %s %s" what n;
      Hashtbl.add seen n ())
    names

let check prog =
  try
    distinct "module" (List.map (fun m -> m.md_name) prog);
    let env = build_env prog in
    List.iter
      (fun m ->
        distinct "global" (List.map (fun g -> g.g_name) m.md_globals);
        List.iter
          (fun g ->
            match (g.g_type, g.g_init) with
            | Tarray _, Some _ -> err "array global %s cannot have an initialiser" g.g_name
            | _ -> ())
          m.md_globals;
        distinct "procedure" (List.map (fun p -> p.pr_name) m.md_procs);
        List.iter
          (fun i ->
            if not (List.mem_assoc i env) then
              err "module %s imports unknown module %s" m.md_name i)
          m.md_imports;
        let globals = List.map (fun g -> (g.g_name, g.g_type)) m.md_globals in
        List.iter (check_proc env ~current:m.md_name globals) m.md_procs)
      prog;
    Ok env
  with Type_error msg -> Error msg
