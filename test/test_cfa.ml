(* Link-time devirtualization (lib/cfa): the pass may only rewrite
   provably single-target sites, so a devirtualized image must produce
   byte-identical OUTPUT on every engine and both execution tiers — while
   its meters are allowed (expected, on the rewritten kernels) to drop.
   Abstention is part of the contract too: a site that cannot be proven
   single-target must be left as the late-bound EFC it was. *)

let engines () =
  [
    ("i1", Fpc_core.Engine.i1);
    ("i2", Fpc_core.Engine.i2);
    ("i3", Fpc_core.Engine.i3 ());
    ("i4", Fpc_core.Engine.i4 ());
  ]

let image_for ~engine ~devirt source =
  match Fpc_compiler.Compile.image_for_engine ~engine ~devirt source with
  | Ok image -> image
  | Error m -> Alcotest.fail ("compile: " ^ m)

let boot ?tracer ~engine image =
  Fpc_interp.Interp.boot ?tracer ~image ~engine ~instance:"Main" ~proc:"main"
    ~args:[] ()

(* Everything observable about a finished run (same record test_tier
   compares): outcome plus the metrics it does not fold in. *)
let observe (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( Fpc_interp.Interp.outcome st,
    ( m.jumps_taken,
      m.local_refs,
      m.global_refs,
      m.indirect_refs,
      m.arg_words_stored,
      m.arg_words_renamed,
      m.call_depth ) )

let interp_run ~engine ~max_steps image =
  let st = boot ~engine image in
  Fpc_interp.Interp.run ~max_steps st;
  observe st

let tier_run ~engine ~max_steps image =
  let st = boot ~engine image in
  let tier, _ = Fpc_tier.Tier.of_image image in
  Fpc_tier.Tier.run ~max_steps tier st;
  observe st

let profile_of runner ~engine image =
  let p = Fpc_interp.Profiler.create ~image ~engine () in
  let st = boot ~tracer:p.Fpc_interp.Profiler.sink ~engine image in
  runner image st;
  let o = Fpc_interp.Interp.outcome st in
  ignore
    (Fpc_trace.Profile.finish p.Fpc_interp.Profiler.profile
       ~cycles:o.Fpc_interp.Interp.o_cycles
       ~mem_refs:o.Fpc_interp.Interp.o_mem_refs);
  (observe st, Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile)

let devirt_stats_of image =
  match image.Fpc_mesa.Image.dir.Fpc_mesa.Image.devirt with
  | Some d -> d
  | None -> Alcotest.fail "image carries no devirt stats"

(* ---- the pass proves and rewrites the whole multi-module suite ---- *)

let test_suite_rewrites () =
  List.iter
    (fun (prog, sites) ->
      let src = Fpc_workload.Programs.find prog in
      let image = image_for ~engine:Fpc_core.Engine.i2 ~devirt:true src in
      let d = devirt_stats_of image in
      Alcotest.(check int) (prog ^ ": sites") sites d.Fpc_mesa.Image.dv_sites;
      Alcotest.(check int) (prog ^ ": proven") sites d.dv_proven;
      Alcotest.(check int) (prog ^ ": rewritten") sites d.dv_rewritten;
      Alcotest.(check int) (prog ^ ": abstained") 0 d.dv_abstained;
      Alcotest.(check bool) (prog ^ ": store-safe") true
        (Fpc_cfa.Cfa.image_store_safe image))
    [ ("callchain", 5); ("leafcalls", 1); ("xleaf", 2) ]

(* ...and that rewriting actually pays: fewer storage references for the
   same output on a call-dense cross-module kernel. *)
let test_refs_drop () =
  let src = Fpc_workload.Programs.find "xleaf" in
  let engine = Fpc_core.Engine.i2 in
  let (base_o, _) =
    interp_run ~engine ~max_steps:2_000_000
      (image_for ~engine ~devirt:false src)
  in
  let (dv_o, _) =
    interp_run ~engine ~max_steps:2_000_000
      (image_for ~engine ~devirt:true src)
  in
  Alcotest.(check (list int)) "same output"
    base_o.Fpc_interp.Interp.o_output dv_o.Fpc_interp.Interp.o_output;
  Alcotest.(check bool) "refs drop" true
    (dv_o.Fpc_interp.Interp.o_mem_refs < base_o.Fpc_interp.Interp.o_mem_refs)

(* ---- abstention: unprovable sites stay late-bound ---- *)

(* A runtime-indexed array store anywhere in the image makes the
   store-hazard scan abstain wholesale: the site below is a perfectly
   ordinary external call, but nothing may be rewritten. *)
let hazard_src =
  {|
MODULE Lib;
PROC inc(x: INT): INT =
  RETURN x + 1;
END;
END;

MODULE Main;
IMPORT Lib;
PROC main() =
  VAR a: ARRAY 8 OF INT;
  VAR i: INT := 0;
  WHILE i < 8 DO
    a[i] := Lib.inc(i);
    i := i + 1;
  END;
  OUTPUT a[3] + a[7];
END;
END;
|}

let test_abstains_on_store_hazard () =
  let engine = Fpc_core.Engine.i2 in
  let image = image_for ~engine ~devirt:true hazard_src in
  Alcotest.(check bool) "image not store-safe" false
    (Fpc_cfa.Cfa.image_store_safe image);
  let d = devirt_stats_of image in
  Alcotest.(check bool) "site counted" true (d.Fpc_mesa.Image.dv_sites > 0);
  Alcotest.(check int) "nothing proven" 0 d.dv_proven;
  Alcotest.(check int) "nothing rewritten" 0 d.dv_rewritten;
  Alcotest.(check int) "all abstained" d.Fpc_mesa.Image.dv_sites d.dv_abstained;
  (* the untouched padded site still runs correctly, on both tiers *)
  let base =
    interp_run ~engine ~max_steps:100_000
      (image_for ~engine ~devirt:false hazard_src)
  in
  let padded = interp_run ~engine ~max_steps:100_000 image in
  let tiered =
    tier_run ~engine ~max_steps:100_000
      (image_for ~engine ~devirt:true hazard_src)
  in
  let ((o1, _), (o2, _)) = (base, padded) in
  Alcotest.(check (list int)) "padded output"
    o1.Fpc_interp.Interp.o_output o2.Fpc_interp.Interp.o_output;
  Alcotest.(check bool) "tier == interp on abstained image" true (padded = tiered)

(* A multi-instance target has no DIRECTCALL header and no unique
   binding, so its sites must abstain even in a store-safe image. *)
let multi_instance_src =
  {|
MODULE Lib;
PROC inc(x: INT): INT =
  RETURN x + 1;
END;
END;

MODULE Main;
IMPORT Lib;
PROC main() =
  OUTPUT Lib.inc(41);
END;
END;
|}

let test_abstains_on_multi_instance () =
  let convention = Fpc_compiler.Convention.external_ in
  match
    Fpc_compiler.Compile.image ~convention ~devirt:true
      ~extra_instances:[ "Lib" ] multi_instance_src
  with
  | Error m -> Alcotest.fail m
  | Ok image ->
    Alcotest.(check bool) "store-safe" true (Fpc_cfa.Cfa.image_store_safe image);
    let d = devirt_stats_of image in
    Alcotest.(check int) "one site" 1 d.Fpc_mesa.Image.dv_sites;
    Alcotest.(check int) "not proven" 0 d.dv_proven;
    Alcotest.(check int) "not rewritten" 0 d.dv_rewritten;
    let st =
      Fpc_interp.Interp.boot ~image ~engine:Fpc_core.Engine.i2 ~instance:"Main"
        ~proc:"main" ~args:[] ()
    in
    Fpc_interp.Interp.run ~max_steps:100_000 st;
    Alcotest.(check (list int)) "still answers" [ 42 ]
      (Fpc_core.State.output st)

(* ---- the differential property: devirt is invisible to outputs and
        exact across tiers, engines and tracers ---- *)

let devirt_differential_prop =
  QCheck.Test.make ~count:30
    ~name:"devirtualized image: same output, tier == interp (all engines)"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 10_000))
    (fun seed ->
      (* every program carries injected cross-module late-bound calls;
         every third seed also tilts intra-module call-dense so rewritten
         and fusable sites coexist *)
      let leaf_call_rate = if seed mod 3 = 0 then 0.4 else 0.0 in
      let source =
        Fpc_workload.Synthetic.random_program ~leaf_call_rate
          ~late_bound_rate:0.5 ~seed ()
      in
      List.for_all
        (fun (en, engine) ->
          let (base_o, _) =
            interp_run ~engine ~max_steps:300_000
              (image_for ~engine ~devirt:false source)
          in
          let reference =
            interp_run ~engine ~max_steps:300_000
              (image_for ~engine ~devirt:true source)
          in
          let (dv_o, _) = reference in
          let tiered =
            tier_run ~engine ~max_steps:300_000
              (image_for ~engine ~devirt:true source)
          in
          if dv_o.Fpc_interp.Interp.o_output <> base_o.Fpc_interp.Interp.o_output
          then
            QCheck.Test.fail_reportf "seed %d: devirt changed output under %s"
              seed en
          else if tiered <> reference then
            QCheck.Test.fail_reportf "seed %d: tier diverged on devirt image under %s"
              seed en
          else begin
            (* traced runs deopt to the exact chain; profile included *)
            let r_traced =
              profile_of
                (fun _image st -> Fpc_interp.Interp.run ~max_steps:300_000 st)
                ~engine
                (image_for ~engine ~devirt:true source)
            in
            let g_traced =
              profile_of
                (fun image st ->
                  let tier, _ = Fpc_tier.Tier.of_image image in
                  Fpc_tier.Tier.run ~max_steps:300_000 tier st)
                ~engine
                (image_for ~engine ~devirt:true source)
            in
            if g_traced <> r_traced then
              QCheck.Test.fail_reportf
                "seed %d: traced run diverged on devirt image under %s" seed en
            else true
          end)
        (engines ()))

(* ---- arena reuse: dirty-page reset + I1 link replay + operand patches
        compose on a devirtualized image ---- *)

(* The regression this pins: an arena slot resets its image by blitting
   back only dirtied pages and then replaying I1's link-table installs.
   With devirtualization the pristine's code bytes include operand
   patches; if the slot were keyed or reset against the late-bound
   variant, the replay would reinstall over the wrong bytes.  Three
   back-to-back acquisitions must therefore be bit-identical. *)
let test_arena_reuse_devirt () =
  let engine = Fpc_core.Engine.i1 in
  let convention = Fpc_compiler.Convention.for_engine engine in
  let source = Fpc_workload.Programs.find "callchain" in
  let pristine =
    match Fpc_compiler.Compile.image ~convention ~devirt:true source with
    | Ok i -> i
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "pristine rewritten" true
    ((devirt_stats_of pristine).Fpc_mesa.Image.dv_rewritten > 0);
  let arena = Fpc_svc.Arena.create () in
  let run () =
    let slot =
      Fpc_svc.Arena.acquire arena ~key:"callchain+dv" ~engine ~engine_name:"i1"
        ~pristine ()
    in
    let st = Fpc_svc.Arena.checkout slot in
    Fpc_core.Transfer.start st ~instance:"Main" ~proc:"main" ~args:[];
    Fpc_interp.Interp.run ~max_steps:2_000_000 st;
    observe st
  in
  let first = run () in
  let second = run () in
  let third = run () in
  Alcotest.(check bool) "second acquisition identical" true (second = first);
  Alcotest.(check bool) "third acquisition identical" true (third = first);
  let s = Fpc_svc.Arena.stats arena in
  Alcotest.(check int) "slots actually reused" 2 s.Fpc_svc.Arena.hits;
  (* ...and against a fresh clone, to rule out a stable-but-wrong reset *)
  let fresh =
    let image = Fpc_mesa.Image.clone pristine in
    let st =
      Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
        ~args:[] ()
    in
    Fpc_interp.Interp.run ~max_steps:2_000_000 st;
    observe st
  in
  Alcotest.(check bool) "reused slot == fresh clone" true (first = fresh)

(* The pool-level composition: devirt-on and devirt-off jobs for the same
   program interleave on one worker (one arena), so their slots — keyed by
   different image variants — must never alias. *)
let test_pool_interleaves_variants () =
  let spec devirt =
    Fpc_svc.Job.spec ~engine:"i1" ~devirt (Fpc_svc.Job.Suite "callchain")
  in
  let specs = [ spec true; spec false; spec true; spec false; spec true ] in
  let results, _metrics = Fpc_svc.Pool.run_jobs ~domains:1 specs in
  let outputs =
    List.map
      (fun (r : Fpc_svc.Job.result) ->
        match r.outcome with
        | Fpc_svc.Job.Output ws -> ws
        | Fpc_svc.Job.Failed (_, m) -> Alcotest.fail ("job failed: " ^ m))
      results
  in
  (match outputs with
  | first :: rest ->
    List.iter
      (fun ws -> Alcotest.(check (list int)) "same output" first ws)
      rest
  | [] -> Alcotest.fail "no results");
  let refs_of i = (List.nth results i).Fpc_svc.Job.stats.Fpc_svc.Job.mem_refs in
  Alcotest.(check bool) "devirt jobs take fewer refs" true
    (refs_of 0 < refs_of 1);
  Alcotest.(check int) "repeat devirt job exact" (refs_of 0) (refs_of 2);
  Alcotest.(check int) "repeat baseline job exact" (refs_of 1) (refs_of 3);
  Alcotest.(check int) "third devirt job exact" (refs_of 0) (refs_of 4)

let () =
  Alcotest.run "cfa"
    [
      ( "rewrite",
        [
          Alcotest.test_case "multi-module suite fully proven" `Quick
            test_suite_rewrites;
          Alcotest.test_case "storage refs drop on xleaf" `Quick test_refs_drop;
        ] );
      ( "abstention",
        [
          Alcotest.test_case "store hazard abstains wholesale" `Quick
            test_abstains_on_store_hazard;
          Alcotest.test_case "multi-instance target abstains" `Quick
            test_abstains_on_multi_instance;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest devirt_differential_prop ] );
      ( "arena",
        [
          Alcotest.test_case "slot reuse composes with patches" `Quick
            test_arena_reuse_devirt;
          Alcotest.test_case "pool interleaves image variants" `Quick
            test_pool_interleaves_variants;
        ] );
    ]
