lib/core/state.mli: Engine Eval_stack Fpc_frames Fpc_ifu Fpc_machine Fpc_mesa Fpc_regbank Fpc_util Queue Simple_links Stack
