(** The compiled execution tier: threaded code over the predecoded image.

    The interpreter pays a fetch/decode dispatch per instruction even
    though the predecode table already did the decoding at link time.
    This tier goes one step further and translates the code region into
    an array of OCaml closures — one per reachable instruction boundary —
    so steady-state execution is a chain of direct calls with {e no}
    dispatch loop at all.  Straight-line runs of pure stack/variable
    instructions are fused into superinstructions: one stack-depth guard,
    one batched meter update ({!Fpc_machine.Cost.dispatch_n}), and
    peephole-collapsed dataflow (load/load/arith, compare-and-branch,
    push/DIRECTCALL) that keeps intermediate values in OCaml locals
    instead of bouncing them through the evaluation stack.

    Equivalence is the contract: a translated run is {e bit-identical} to
    the interpreter — outcome, output, cycle / storage-reference /
    transfer meters, trap behaviour, and (under a tracer) the exact event
    stream.  Anything the fast path cannot prove — a stack-depth guard
    failure, an installed tracer, a trap-capable instruction, undecodable
    bytes, a transfer into untranslated code, fuel expiry mid-block —
    deopts to the interpreter's own semantics at an exact instruction
    boundary: fused blocks fall back to per-instruction "exact chains"
    that replicate {!Fpc_interp.Interp.step}'s accounting, and PCs with
    no node at all are stepped by the interpreter itself.

    A translation is derived purely from the immutable code bytes, so —
    like the predecode table it is built from — one translation is shared
    read-only by a pristine image and every clone, cached on the image
    directory ({!Fpc_mesa.Image.attachment}).  Racing domains may both
    build it; the results are semantically identical and either wins
    benignly.  Host-speed only: simulated meters are unaffected by
    whether a run used this tier (that is the whole point). *)

type t

val translate : Fpc_mesa.Image.t -> t
(** Translate the image's carved code region (every decodable byte
    boundary gets a node, so any PC the machine can reach — including
    computed XFERs and mid-block fuel resumes — lands on compiled code).
    Does not consult or update the image's cached attachment. *)

val of_image : Fpc_mesa.Image.t -> t * bool
(** The image's shared translation: reuses the one cached on the image
    directory or builds and attaches it.  Returns [true] iff it was
    already attached (a translation-cache hit). *)

val run : ?max_steps:int -> t -> Fpc_core.State.t -> unit
(** Drive [st] to completion on the compiled tier: exactly
    {!Fpc_interp.Interp.run} (default [max_steps] 20 million, recording a
    [Step_limit] trap on expiry), including resumability — a fuel-sliced
    caller may reset the status to [Running] and call again, and the next
    instruction executes at the exact boundary where the budget ran out.
    Instructions whose remaining budget cannot cover a whole block, and
    PCs without a node, are stepped by the interpreter (counted in
    [metrics.tier_deopts]); fast-path instructions are counted in
    [metrics.tier_fast_instrs] / [tier_super_instrs]. *)

val boundaries : t -> int
(** Number of byte boundaries with a compiled node. *)

val fused_boundaries : t -> int
(** Of {!boundaries}, how many have a multi-instruction fused fast path
    (a superinstruction of two or more instructions). *)
