lib/experiments/e08_arg_passing.ml: Exp Fpc_core Fpc_util Fpc_workload Harness List Tablefmt
