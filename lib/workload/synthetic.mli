(** Synthetic transfer traces.

    A trace is the sequence of control transfers a running program would
    produce, abstracted away from code: calls (with the new frame's payload
    size), returns, coroutine transfers, and process switches.  The
    generator models call depth as a mean-reverting random walk — §7.1's
    observation that "long runs of calls nearly uninterrupted by returns,
    or vice versa, are quite rare" — with an optional run-bias knob to
    create exactly those pathological runs for the sweeps in E6. *)

type event =
  | Call of int  (** payload words of the new frame *)
  | Return
  | Coroutine_switch  (** XFER to another live context *)
  | Process_switch

type profile = {
  target_depth : int;  (** the walk reverts toward this depth *)
  pull : float;  (** strength of reversion (0 = pure random walk) *)
  run_bias : float;  (** probability of repeating the previous call/return *)
  leaf_rate : float;
      (** probability of an immediate call/return pair — the dominant
          pattern of leaf-procedure-heavy code *)
  coroutine_rate : float;  (** per-event probability of a coroutine switch *)
  process_rate : float;
  max_depth : int;
}

val default_profile : profile
(** depth 8, pull 0.25, run_bias 0.1, leaf_rate 0.6, no coroutines or
    processes — calibrated so bank behaviour matches the compiled suite. *)

val generate : seed:int -> ?profile:profile -> length:int -> unit -> event list
(** Frame payloads are drawn from {!Distributions.frame_payload_words}.
    Depth never leaves [1, max_depth]. *)

val depth_profile : event list -> Fpc_util.Histogram.t
(** Distribution of call depth over the trace. *)

val random_program :
  ?coroutine_rate:float ->
  ?leaf_call_rate:float ->
  ?late_bound_rate:float ->
  seed:int ->
  unit ->
  string
(** A random mini-Mesa program over a DAG of procedures with guarded
    self-recursion: always compiles, always halts, on every engine —
    the driver for differential and conservation property tests.

    [coroutine_rate] (default 0.0) is the per-OUTPUT probability that
    [main] inserts a round-trip with a bounded-life echo coroutine, so
    the same differential suites also exercise non-LIFO XFER and RETCTX.

    [leaf_call_rate] (default 0.0) is the per-statement probability of
    injecting a call to one of two tiny pure leaf procedures (emitted
    only when the rate is positive), tilting the generated programs
    toward the call-dense shapes cross-call fusion targets.

    [late_bound_rate] (default 0.0) is the per-statement probability of
    injecting a call to one of two leaf procedures living in a {e
    separate} module (emitted only when the rate is positive), imported
    by [Main] — so under the EXTERNALCALL convention every injected call
    is a late-bound site, the raw material of link-time
    devirtualization.

    At rate 0.0 the corresponding draws are short-circuited and the
    text is byte-identical to the historical generator for every
    seed. *)
