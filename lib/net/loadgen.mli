(** A load generator for {!Server}, driving [bench net] and the CI
    smoke steps.

    [connections] client threads each open one TCP connection and play
    the same request line [requests] times.  With [pipeline = 1] (the
    default) each thread is a classic closed loop: send, block for the
    response, record the round trip — offered load tracks service rate,
    so the numbers measure the server, not a queue exploding in the
    generator.  With [pipeline = k] each thread keeps up to [k] requests
    outstanding (send until the window is full, then read), exercising
    the server's per-connection response ordering under real protocol
    pipelining; per-request latency still pairs exactly, because the
    server answers a connection's jobs in request order. *)

type report = {
  connections : int;
  pipeline : int;  (** requested per-connection window *)
  sent : int;  (** request lines written *)
  answered : int;  (** responses received (any status) *)
  ok : int;  (** [status:"ok"] results *)
  failed : int;  (** job results with a non-ok status *)
  shed : int;  (** [status:"shed"] refusals *)
  in_flight_hwm : int;
      (** the deepest any connection's outstanding window actually got *)
  wall_s : float;
  jobs_per_sec : float;  (** answered / wall_s *)
  latency_us : Fpc_util.Histogram.t;
      (** per-request round-trip times, microseconds *)
}

val run :
  host:string ->
  port:int ->
  connections:int ->
  requests:int ->
  ?pipeline:int ->
  request_line:string ->
  unit ->
  report
(** Raises [Unix.Unix_error] if the server cannot be reached at all; a
    connection dying mid-run just stops that thread's remaining
    requests.  Raises [Invalid_argument] for a non-positive
    [connections] or [pipeline]. *)
