(* The green-thread scheduler: fuel-sliced execution of a machine whose
   ready queue holds the sessions.  There is no host-side run queue — the
   machine's own process queue is the scheduler's data structure, and
   coroutine/process XFER is the only context-switch primitive.  The host
   merely decides *when* the running session is forced to a switch point
   (Preempt) or lets the program pick its own (Run_to_yield). *)

type policy = Run_to_yield | Preempt of { quantum : int }

let policy_to_string = function
  | Run_to_yield -> "yield"
  | Preempt { quantum } -> Printf.sprintf "preempt:%d" quantum

let policy_of_string ?(quantum = 1000) s =
  match String.lowercase_ascii s with
  | "yield" | "run-to-yield" -> Ok Run_to_yield
  | "preempt" -> Ok (Preempt { quantum })
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "preempt" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some q when q > 0 -> Ok (Preempt { quantum = q })
      | _ -> Error (Printf.sprintf "bad preempt quantum in %S" s))
    | _ ->
      Error
        (Printf.sprintf "unknown policy %S (expected yield or preempt[:quantum])"
           s))

type stats = { deadline_hit : bool; slices : int; preemptions : int }

let now = Unix.gettimeofday

(* Same contract as the pool's deadline slicer: [Step_limit] can only come
   from the step budget, so with fuel remaining it marks a resumable slice
   boundary, not a terminal state.  A final [Step_limit] (fuel exhausted)
   is left on the machine for the caller's fuel-exhaustion policy. *)
let hit deadline_at = match deadline_at with None -> false | Some d -> now () > d

(* A yield may only be injected where the program could have written one:
   at a statement boundary, which is exactly where the evaluation stack is
   empty.  Forcing a switch mid-expression would be worse than inaccurate —
   a read-modify-write like [finished := finished + 1] straddled by a
   switch loses an update, and the paper's machine has no monitors to
   protect it.  So after a quantum expires we {e drift}: single-step until
   the stack empties, spending at most [budget] extra steps (a deep call
   inside an expression keeps the stack non-empty for its whole duration).
   Returns the steps spent; the boundary was found iff the stack is empty
   and the machine still running. *)
let drift_to_boundary ~step ~budget (st : Fpc_core.State.t) =
  let spent = ref 0 in
  let running () =
    match st.Fpc_core.State.status with
    | Fpc_core.State.Running -> true
    | Fpc_core.State.Trapped Fpc_core.State.Step_limit ->
      st.Fpc_core.State.status <- Fpc_core.State.Running;
      true
    | _ -> false
  in
  while
    Fpc_core.Eval_stack.depth st.stack > 0 && !spent < budget && running ()
  do
    step 1 st;
    incr spent
  done;
  ignore (running ());
  !spent

(* The injected round-robin itself: meters the switch, flushes the return
   stack and banks — or no-ops when no other session is ready, in which
   case it is not counted as a preemption. *)
let inject_yield (st : Fpc_core.State.t) =
  let switched = not (Queue.is_empty st.ready) in
  (try Fpc_core.Transfer.yield st with
  | Fpc_core.Transfer.Machine_trap r -> Fpc_core.Transfer.trap st r);
  switched

let run ?(policy = Run_to_yield) ?deadline_at ~step ~fuel st =
  let slice =
    match policy with
    | Run_to_yield -> 50_000
    | Preempt { quantum } -> max 1 quantum
  in
  let preemptive = match policy with Preempt _ -> true | Run_to_yield -> false in
  let rec go remaining slices preemptions =
    let s = min slice remaining in
    step s st;
    let slices = slices + 1 in
    match st.Fpc_core.State.status with
    | Fpc_core.State.Trapped Fpc_core.State.Step_limit when remaining > s ->
      if hit deadline_at then { deadline_hit = true; slices; preemptions }
      else begin
        st.Fpc_core.State.status <- Fpc_core.State.Running;
        let remaining = remaining - s in
        let remaining, preemptions =
          if not preemptive then (remaining, preemptions)
          else begin
            let budget = min slice remaining in
            let spent = drift_to_boundary ~step ~budget st in
            let at_boundary =
              st.Fpc_core.State.status = Fpc_core.State.Running
              && Fpc_core.Eval_stack.depth st.stack = 0
            in
            ( remaining - spent,
              if at_boundary && inject_yield st then preemptions + 1
              else preemptions )
          end
        in
        (* an injected yield can itself trap (a corrupted context word),
           and the drift may have exhausted the fuel or ended the run *)
        match st.Fpc_core.State.status with
        | Fpc_core.State.Running when remaining > 0 ->
          go remaining slices preemptions
        | Fpc_core.State.Running ->
          st.Fpc_core.State.status <-
            Fpc_core.State.Trapped Fpc_core.State.Step_limit;
          { deadline_hit = false; slices; preemptions }
        | _ -> { deadline_hit = false; slices; preemptions }
      end
    | _ -> { deadline_hit = false; slices; preemptions }
  in
  if fuel <= 0 then { deadline_hit = false; slices = 0; preemptions = 0 }
  else begin
    (* a machine parked at a previous invocation's fuel boundary is
       resumable by contract: clear the marker and keep going *)
    (match st.Fpc_core.State.status with
    | Fpc_core.State.Trapped Fpc_core.State.Step_limit ->
      st.Fpc_core.State.status <- Fpc_core.State.Running
    | _ -> ());
    if (not preemptive) && deadline_at = None then begin
      step fuel st;
      { deadline_hit = false; slices = 1; preemptions = 0 }
    end
    else go fuel 0 0
  end

type report = {
  forked : int;
  ended : int;
  peak_live : int;
  slices : int;
  preemptions : int;
  switch_xfers : int;
  rs_flushes : int;
  rs_flush_rate : float;
  bank_overflows : int;
  bank_overflow_rate : float;
  frame_peak_words : int;
  lifo_reserved_words : int;
  footprint_ratio : float;
}

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let report ?(lifo_reserved = 0) ~(stats : stats) (st : Fpc_core.State.t) =
  let o = Fpc_interp.Interp.outcome st in
  let f = o.Fpc_interp.Interp.o_fastpath in
  let m = st.metrics in
  let av = Fpc_frames.Alloc_vector.stats st.allocator in
  {
    forked = m.procs_forked;
    ended = m.procs_ended;
    peak_live = m.peak_live_procs;
    slices = stats.slices;
    preemptions = stats.preemptions;
    switch_xfers = m.other_xfers;
    rs_flushes = f.f_rs_flushes;
    rs_flush_rate = ratio f.f_rs_flushes m.other_xfers;
    bank_overflows = f.f_bank_overflows;
    bank_overflow_rate = ratio f.f_bank_overflows m.calls;
    frame_peak_words = av.peak_live_words;
    lifo_reserved_words = lifo_reserved;
    footprint_ratio = ratio av.peak_live_words lifo_reserved;
  }

let report_lines r =
  [
    Printf.sprintf "sessions forked=%d ended=%d peak-live=%d" r.forked r.ended
      r.peak_live;
    Printf.sprintf "slices=%d preemptions=%d switch-xfers=%d" r.slices
      r.preemptions r.switch_xfers;
    Printf.sprintf "rs-flushes=%d (%.4f/xfer) bank-overflows=%d (%.4f/call)"
      r.rs_flushes r.rs_flush_rate r.bank_overflows r.bank_overflow_rate;
    Printf.sprintf "frame-peak=%dw lifo-reserved=%dw ratio=%.4f"
      r.frame_peak_words r.lifo_reserved_words r.footprint_ratio;
  ]
