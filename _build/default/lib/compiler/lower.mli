(** Call hoisting: establish the stack-discipline invariant of §5.2.

    The Mesa encoding requires that at every call or TRANSFER the
    evaluation stack holds exactly the outgoing argument record — this is
    what lets §7.2 rename the stack bank into the callee's local bank, and
    it is why "code of the form f[g[], h[]] requires the results of g to
    be saved before h is called".  This pass performs that saving: every
    call or TRANSFER nested inside a larger expression is hoisted into a
    fresh compiler temporary ($t0, $t1, ...); temporaries are declared once
    at the top of the procedure so hoisted prefixes can be replayed inside
    loop bodies for re-evaluated conditions.

    After lowering, Call/Transfer nodes appear only as the entire
    right-hand side of an assignment, initialiser, RETURN or OUTPUT, or as
    a statement — positions where the stack is empty. *)

val proc : Fpc_lang.Ast.proc -> Fpc_lang.Ast.proc
(** Lower one procedure's body. *)

val module_decl : Fpc_lang.Ast.module_decl -> Fpc_lang.Ast.module_decl
val program : Fpc_lang.Ast.program -> Fpc_lang.Ast.program

val is_temp : string -> bool
(** Recognise compiler temporaries (names starting with '$'). *)
