test/test_workload.ml: Alcotest Array Fpc_baseline Fpc_compiler Fpc_core Fpc_interp Fpc_machine Fpc_util Fpc_workload List Printf QCheck QCheck_alcotest Stack_machine
