open Fpc_lang.Ast
open Fpc_isa

type slot = { s_idx : int; s_var_param : bool }

type proc_ctx = {
  env : Fpc_lang.Typecheck.env;
  current : string;
  conv : Convention.t;
  devirt : bool;
      (** emit external calls in their padded 4-byte shape and record
          them, so the link-time CFA pass can rewrite proven sites *)
  imports : (string * string, int) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  proc_evs : (string, int) Hashtbl.t;
  slots : (string, slot) Hashtbl.t;
  mutable nslots : int;
  b : Builder.t;
  mutable dfc_fixups : (int * int) list;
  mutable lpd_fixups : (int * int) list;
  mutable efc_sites : (int * int) list;
}

let resolve_callee ctx (c : callee) =
  match c.c_module with
  | None -> `Local (Hashtbl.find ctx.proc_evs c.c_proc)
  | Some m when String.equal m ctx.current -> `Local (Hashtbl.find ctx.proc_evs c.c_proc)
  | Some m -> `Import (Hashtbl.find ctx.imports (m, c.c_proc))

(* Descriptor literals always go through the link vector, own procedures
   included (a self-import). *)
let descriptor_lv ctx (c : callee) =
  let m = Option.value c.c_module ~default:ctx.current in
  Hashtbl.find ctx.imports (m, c.c_proc)

let new_slot ?(words = 1) ctx name ~var_param =
  if Hashtbl.mem ctx.slots name then
    invalid_arg (Printf.sprintf "Codegen: duplicate slot %s" name);
  let idx = ctx.nslots in
  if idx + words > 256 then invalid_arg "Codegen: more than 256 local words";
  ctx.nslots <- idx + words;
  Hashtbl.replace ctx.slots name { s_idx = idx; s_var_param = var_param };
  idx

let lookup ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some slot -> `Slot slot
  | None -> (
    match Hashtbl.find_opt ctx.globals name with
    | Some idx -> `Global idx
    | None -> invalid_arg (Printf.sprintf "Codegen: unknown variable %s" name))

let binop_ops = function
  | Badd -> [ Opcode.Add ]
  | Bsub -> [ Opcode.Sub ]
  | Bmul -> [ Opcode.Mul ]
  | Bdiv -> [ Opcode.Div ]
  | Bmod -> [ Opcode.Mod ]
  | Blt -> [ Opcode.Lt ]
  | Ble -> [ Opcode.Le ]
  | Beq -> [ Opcode.Eq ]
  | Bne -> [ Opcode.Ne ]
  | Bge -> [ Opcode.Ge ]
  | Bgt -> [ Opcode.Gt ]
  | Band -> [ Opcode.Band ]
  | Bor -> [ Opcode.Bor ]

let rec gen_expr ctx (e : expr) =
  match e with
  | Int v -> Builder.emit ctx.b (Opcode.Li v)
  | Bool bv -> Builder.emit ctx.b (Opcode.Li (if bv then 1 else 0))
  | Nil -> Builder.emit ctx.b (Opcode.Li 0)
  | Retctx -> Builder.emit ctx.b Opcode.Lrc
  | Var name -> (
    match lookup ctx name with
    | `Slot { s_idx; s_var_param = false } -> Builder.emit ctx.b (Opcode.Ll s_idx)
    | `Slot { s_idx; s_var_param = true } ->
      Builder.emit ctx.b (Opcode.Ll s_idx);
      Builder.emit ctx.b Opcode.Rload
    | `Global idx -> Builder.emit ctx.b (Opcode.Lg idx))
  | Index (name, i) -> (
    gen_expr ctx i;
    match lookup ctx name with
    | `Slot { s_idx; _ } -> Builder.emit ctx.b (Opcode.Llx s_idx)
    | `Global idx -> Builder.emit ctx.b (Opcode.Lgx idx))
  | ProcVal c ->
    let lv = descriptor_lv ctx c in
    let pos = Builder.emit_placeholder ctx.b (Opcode.Lpd 0) in
    ctx.lpd_fixups <- (pos, lv) :: ctx.lpd_fixups
  | Unop (Uneg, a) ->
    gen_expr ctx a;
    Builder.emit ctx.b Opcode.Neg
  | Unop (Unot, a) ->
    gen_expr ctx a;
    Builder.emit ctx.b (Opcode.Li 1);
    Builder.emit ctx.b Opcode.Bxor
  | Binop (op, a, b) ->
    gen_expr ctx a;
    gen_expr ctx b;
    List.iter (Builder.emit ctx.b) (binop_ops op)
  | Call (c, args) -> gen_call ctx c args
  | Transfer (dest, values) ->
    List.iter (gen_expr ctx) values;
    gen_expr ctx dest;
    Builder.emit ctx.b Opcode.Xf

and gen_arg ctx (is_var : bool) (arg : expr) =
  if not is_var then gen_expr ctx arg
  else
    match arg with
    | Var name -> (
      match lookup ctx name with
      | `Slot { s_idx; s_var_param = false } -> Builder.emit ctx.b (Opcode.Lla s_idx)
      | `Slot { s_idx; s_var_param = true } ->
        (* Forward the address we already hold. *)
        Builder.emit ctx.b (Opcode.Ll s_idx)
      | `Global idx -> Builder.emit ctx.b (Opcode.Lga idx))
    | _ -> invalid_arg "Codegen: VAR argument must be a variable"

and gen_call ctx (c : callee) args =
  let s = Fpc_lang.Typecheck.find_sig ctx.env ~current:ctx.current c in
  List.iter2 (fun (_, is_var) arg -> gen_arg ctx is_var arg) s.ps_params args;
  let direct_via lv =
    let pos = Builder.emit_placeholder ctx.b (Opcode.Dfc 0) in
    ctx.dfc_fixups <- (pos, lv) :: ctx.dfc_fixups
  in
  match (resolve_callee ctx c, ctx.conv.Convention.linkage) with
  | `Local ev, Fpc_mesa.Image.External -> Builder.emit ctx.b (Opcode.Lfc ev)
  | `Local _, (Fpc_mesa.Image.Direct | Fpc_mesa.Image.Short_direct) ->
    (* §6's early binding applies to any well-known procedure, own module
       included: the address is known at link time, so the IFU can follow
       the call.  The target is named through a self-import. *)
    direct_via (descriptor_lv ctx c)
  | `Import lv, Fpc_mesa.Image.External ->
    if ctx.devirt then begin
      let pos = Builder.emit_efc_padded ctx.b lv in
      ctx.efc_sites <- (pos, lv) :: ctx.efc_sites
    end
    else Builder.emit ctx.b (Opcode.Efc lv)
  | `Import lv, (Fpc_mesa.Image.Direct | Fpc_mesa.Image.Short_direct) ->
    direct_via lv

let rec gen_stmt ctx (s : stmt) =
  match s with
  | Local (name, t, init) -> (
    let idx = new_slot ~words:(typ_words t) ctx name ~var_param:false in
    match init with
    | None -> ()
    | Some e ->
      gen_expr ctx e;
      Builder.emit ctx.b (Opcode.Sl idx))
  | Assign (name, e) -> (
    match lookup ctx name with
    | `Slot { s_idx; s_var_param = false } ->
      gen_expr ctx e;
      Builder.emit ctx.b (Opcode.Sl s_idx)
    | `Slot { s_idx; s_var_param = true } ->
      (* Store through the held address; the value may itself be a call,
         so it is evaluated with an empty stack and swapped under. *)
      gen_expr ctx e;
      Builder.emit ctx.b (Opcode.Ll s_idx);
      Builder.emit ctx.b Opcode.Swap;
      Builder.emit ctx.b Opcode.Rstore
    | `Global idx ->
      gen_expr ctx e;
      Builder.emit ctx.b (Opcode.Sg idx))
  | AssignIdx (name, i, e) -> (
    gen_expr ctx i;
    gen_expr ctx e;
    match lookup ctx name with
    | `Slot { s_idx; _ } -> Builder.emit ctx.b (Opcode.Slx s_idx)
    | `Global idx -> Builder.emit ctx.b (Opcode.Sgx idx))
  | If (cond, then_, else_) ->
    let l_else = Builder.new_label ctx.b in
    let l_end = Builder.new_label ctx.b in
    gen_expr ctx cond;
    Builder.jump ctx.b `Jz l_else;
    List.iter (gen_stmt ctx) then_;
    Builder.jump ctx.b `J l_end;
    Builder.place ctx.b l_else;
    List.iter (gen_stmt ctx) else_;
    Builder.place ctx.b l_end
  | While (cond, body) ->
    let l_loop = Builder.new_label ctx.b in
    let l_end = Builder.new_label ctx.b in
    Builder.place ctx.b l_loop;
    gen_expr ctx cond;
    Builder.jump ctx.b `Jz l_end;
    List.iter (gen_stmt ctx) body;
    Builder.jump ctx.b `J l_loop;
    Builder.place ctx.b l_end
  | Return None -> Builder.emit ctx.b Opcode.Ret
  | Return (Some e) ->
    gen_expr ctx e;
    Builder.emit ctx.b Opcode.Ret
  | Output e ->
    gen_expr ctx e;
    Builder.emit ctx.b Opcode.Out
  | CallS (c, args) ->
    gen_call ctx c args;
    let s = Fpc_lang.Typecheck.find_sig ctx.env ~current:ctx.current c in
    if s.ps_result <> None then Builder.emit ctx.b Opcode.Drop
  | TransferS (dest, values) ->
    List.iter (gen_expr ctx) values;
    gen_expr ctx dest;
    Builder.emit ctx.b Opcode.Xf;
    Builder.emit ctx.b Opcode.Drop
  | ForkS (c, args) ->
    let s = Fpc_lang.Typecheck.find_sig ctx.env ~current:ctx.current c in
    List.iter2 (fun (_, is_var) arg -> gen_arg ctx is_var arg) s.ps_params args;
    let lv = descriptor_lv ctx c in
    let pos = Builder.emit_placeholder ctx.b (Opcode.Lpd 0) in
    ctx.lpd_fixups <- (pos, lv) :: ctx.lpd_fixups;
    Builder.emit ctx.b (Opcode.Fork (List.length args))
  | YieldS -> Builder.emit ctx.b Opcode.Yield
  | StopS -> Builder.emit ctx.b Opcode.Stopproc

(* ---- static import-frequency ordering (one-byte EFC allocation) ---- *)

(* [direct]: whether the module is being compiled with direct linkage, in
   which case own-module call targets also need link-vector entries.
   Threaded explicitly (no global state) so modules can be compiled
   concurrently from several domains. *)
let rec count_expr ~current ~direct tally (e : expr) =
  match e with
  | Int _ | Bool _ | Nil | Retctx | Var _ -> ()
  | Index (_, i) -> count_expr ~current ~direct tally i
  | Unop (_, a) -> count_expr ~current ~direct tally a
  | Binop (_, a, b) ->
    count_expr ~current ~direct tally a;
    count_expr ~current ~direct tally b
  | ProcVal c -> count_callee ~current ~direct tally c ~weight:1
  | Call (c, args) ->
    count_callee ~current ~direct tally c ~weight:3;
    List.iter (count_expr ~current ~direct tally) args
  | Transfer (dest, values) ->
    count_expr ~current ~direct tally dest;
    List.iter (count_expr ~current ~direct tally) values

and count_callee ~current ~direct tally (c : callee) ~weight =
  let m = Option.value c.c_module ~default:current in
  let key = (m, c.c_proc) in
  let needs_lv = not (String.equal m current) in
  (* Own procedures enter the LV when used as descriptor values (weight 1)
     or, under direct linkage, as early-bound call targets (the tally's
     [direct] flag). *)
  if needs_lv || weight = 1 || direct then
    Hashtbl.replace tally key (weight + Option.value (Hashtbl.find_opt tally key) ~default:0)

let rec count_stmt ~current ~direct tally (s : stmt) =
  match s with
  | Local (_, _, Some e) | Assign (_, e) | Return (Some e) | Output e ->
    count_expr ~current ~direct tally e
  | AssignIdx (_, i, e) ->
    count_expr ~current ~direct tally i;
    count_expr ~current ~direct tally e
  | Local (_, _, None) | Return None | YieldS | StopS -> ()
  | If (c, a, b) ->
    count_expr ~current ~direct tally c;
    List.iter (count_stmt ~current ~direct tally) a;
    List.iter (count_stmt ~current ~direct tally) b
  | While (c, body) ->
    count_expr ~current ~direct tally c;
    List.iter (count_stmt ~current ~direct tally) body
  | CallS (c, args) ->
    count_callee ~current ~direct tally c ~weight:3;
    List.iter (count_expr ~current ~direct tally) args
  | TransferS (dest, values) ->
    count_expr ~current ~direct tally dest;
    List.iter (count_expr ~current ~direct tally) values
  | ForkS (c, args) ->
    count_callee ~current ~direct tally c ~weight:1;
    List.iter (count_expr ~current ~direct tally) args

let import_order ~current ~direct (m : module_decl) =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun p -> List.iter (count_stmt ~current ~direct tally) p.pr_body)
    m.md_procs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (ka, va) (kb, vb) ->
         if va <> vb then compare vb va else compare ka kb)
  |> List.map fst

(* ---- module assembly ---- *)

let gen_proc ~env ~conv ~devirt ~current ~imports ~globals ~proc_evs (p : proc) =
  let ctx =
    {
      env;
      current;
      conv;
      devirt;
      imports;
      globals;
      proc_evs;
      slots = Hashtbl.create 16;
      nslots = 0;
      b = Builder.create ();
      dfc_fixups = [];
      lpd_fixups = [];
      efc_sites = [];
    }
  in
  let nparams = List.length p.pr_params in
  List.iter (fun prm -> ignore (new_slot ctx prm.prm_name ~var_param:prm.prm_var)) p.pr_params;
  if not conv.Convention.args_in_place then
    for i = nparams - 1 downto 0 do
      Builder.emit ctx.b (Opcode.Sl i)
    done;
  List.iter (gen_stmt ctx) p.pr_body;
  (* Fall-off-the-end epilogue; a value-returning procedure yields 0. *)
  if p.pr_result <> None then Builder.emit ctx.b (Opcode.Li 0);
  Builder.emit ctx.b Opcode.Ret;
  {
    Fpc_mesa.Compiled.p_name = p.pr_name;
    p_body = Builder.to_bytes ctx.b;
    p_locals_words = max 1 ctx.nslots;
    p_nargs = nparams;
    p_dfc_fixups = List.rev ctx.dfc_fixups;
    p_lpd_fixups = List.rev ctx.lpd_fixups;
    p_efc_sites = List.rev ctx.efc_sites;
  }

let module_decl ~env ~convention ?(devirt = false) (m : module_decl) =
  let current = m.md_name in
  let direct =
    match convention.Convention.linkage with
    | Fpc_mesa.Image.External -> false
    | Fpc_mesa.Image.Direct | Fpc_mesa.Image.Short_direct -> true
  in
  let import_list = import_order ~current ~direct m in
  if List.length import_list > 256 then invalid_arg "Codegen: more than 256 imports";
  let imports = Hashtbl.create 16 in
  List.iteri (fun i key -> Hashtbl.replace imports key i) import_list;
  let globals = Hashtbl.create 16 in
  let globals_words = ref 0 in
  List.iter
    (fun g ->
      Hashtbl.replace globals g.g_name !globals_words;
      globals_words := !globals_words + typ_words g.g_type)
    m.md_globals;
  let proc_evs = Hashtbl.create 16 in
  List.iteri (fun i p -> Hashtbl.replace proc_evs p.pr_name i) m.md_procs;
  let procs =
    List.map
      (gen_proc ~env ~conv:convention ~devirt ~current ~imports ~globals ~proc_evs)
      m.md_procs
  in
  let global_init =
    List.concat
      (List.mapi
         (fun i g -> match g.g_init with None -> [] | Some v -> [ (i, v) ])
         m.md_globals)
  in
  {
    Fpc_mesa.Compiled.m_name = current;
    m_globals_words = max 1 !globals_words;
    m_global_init = global_init;
    m_imports = Array.of_list import_list;
    m_procs = procs;
  }
