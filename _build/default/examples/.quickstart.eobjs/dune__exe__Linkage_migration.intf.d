examples/linkage_migration.mli:
