test/test_compiler.ml: Alcotest Array Buffer Fpc_compiler Fpc_core Fpc_interp Fpc_lang Fpc_util List Printf QCheck QCheck_alcotest String
