type t = {
  cells : (int, int ref) Hashtbl.t;
  mutable count : int;
  mutable total : int;
}

let create () = { cells = Hashtbl.create 64; count = 0; total = 0 }

let add_many t v ~count =
  if count < 0 then invalid_arg "Histogram.add_many: negative count";
  (match Hashtbl.find_opt t.cells v with
  | Some r -> r := !r + count
  | None -> Hashtbl.add t.cells v (ref count));
  t.count <- t.count + count;
  t.total <- t.total + (v * count)

let add t v = add_many t v ~count:1
let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let to_sorted_list t =
  Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let min_value t =
  match to_sorted_list t with
  | [] -> invalid_arg "Histogram.min_value: empty"
  | (v, _) :: _ -> v

let max_value t =
  match List.rev (to_sorted_list t) with
  | [] -> invalid_arg "Histogram.max_value: empty"
  | (v, _) :: _ -> v

let percentile t p =
  if t.count = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: bad p";
  let threshold = p /. 100.0 *. float_of_int t.count in
  let rec scan seen = function
    | [] -> max_value t
    | (v, c) :: rest ->
      let seen = seen + c in
      if float_of_int seen >= threshold then v else scan seen rest
  in
  scan 0 (to_sorted_list t)

let fraction_le t v =
  if t.count = 0 then 0.0
  else begin
    let seen = ref 0 in
    Hashtbl.iter (fun value r -> if value <= v then seen := !seen + !r) t.cells;
    float_of_int !seen /. float_of_int t.count
  end

let iter t f = List.iter (fun (v, c) -> f v c) (to_sorted_list t)
