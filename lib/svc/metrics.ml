type proc_agg = {
  mutable a_calls : int;
  mutable a_excl_cycles : int;
  mutable a_excl_refs : int;
}

type t = {
  domains : int;
  mutable jobs : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable fuel_exhausted : int;
  mutable deadline_exceeded : int;
  mutable timer_deadlines : int;
  mutable shed : int;
  mutable max_pending_observed : int;
  mutable compile_s : float;
  mutable run_s : float;
  mutable translate_s : float;
  mutable translation_hits : int;
  mutable translation_misses : int;
  mutable lazy_translated : int;
  mutable fused_calls : int;
  mutable invalidations : int;
  mutable devirt_jobs : int;
  mutable devirt_sites : int;
  mutable devirt_proven : int;
  mutable devirt_rewritten : int;
  mutable devirt_short : int;
  mutable minor_words : int;
  mutable instructions : int;
  mutable cycles : int;
  mutable mem_refs : int;
  mutable traced_jobs : int;
  mutable trace_events : int;
  proc_costs : (string, proc_agg) Hashtbl.t;
      (** per-procedure exclusive cost, summed over traced jobs *)
}

let create ~domains =
  {
    domains;
    jobs = 0;
    succeeded = 0;
    failed = 0;
    fuel_exhausted = 0;
    deadline_exceeded = 0;
    timer_deadlines = 0;
    shed = 0;
    max_pending_observed = 0;
    compile_s = 0.0;
    run_s = 0.0;
    translate_s = 0.0;
    translation_hits = 0;
    translation_misses = 0;
    lazy_translated = 0;
    fused_calls = 0;
    invalidations = 0;
    devirt_jobs = 0;
    devirt_sites = 0;
    devirt_proven = 0;
    devirt_rewritten = 0;
    devirt_short = 0;
    minor_words = 0;
    instructions = 0;
    cycles = 0;
    mem_refs = 0;
    traced_jobs = 0;
    trace_events = 0;
    proc_costs = Hashtbl.create 64;
  }

let record t (r : Job.result) =
  t.jobs <- t.jobs + 1;
  (match r.outcome with
  | Job.Output _ -> t.succeeded <- t.succeeded + 1
  | Job.Failed (kind, _) ->
    t.failed <- t.failed + 1;
    if kind = Job.Fuel_exhausted then t.fuel_exhausted <- t.fuel_exhausted + 1;
    if kind = Job.Deadline_exceeded then
      t.deadline_exceeded <- t.deadline_exceeded + 1);
  t.compile_s <- t.compile_s +. r.stats.Job.compile_s;
  t.run_s <- t.run_s +. r.stats.Job.run_s;
  (match r.stats.Job.translation with
  | Job.No_translation -> ()
  | Job.Translated { hit; translate_s; lazy_translated; fused_calls; invalidations; _ } ->
    t.translate_s <- t.translate_s +. translate_s;
    if hit then t.translation_hits <- t.translation_hits + 1
    else t.translation_misses <- t.translation_misses + 1;
    t.lazy_translated <- t.lazy_translated + lazy_translated;
    t.fused_calls <- t.fused_calls + fused_calls;
    (* shared per-translation counter: keep the high-water mark, not a sum *)
    if invalidations > t.invalidations then t.invalidations <- invalidations);
  (match r.stats.Job.devirt_stats with
  | None -> ()
  | Some d ->
    t.devirt_jobs <- t.devirt_jobs + 1;
    t.devirt_sites <- t.devirt_sites + d.Fpc_mesa.Image.dv_sites;
    t.devirt_proven <- t.devirt_proven + d.dv_proven;
    t.devirt_rewritten <- t.devirt_rewritten + d.dv_rewritten;
    t.devirt_short <- t.devirt_short + d.dv_short);
  t.minor_words <- t.minor_words + r.stats.Job.minor_words;
  t.instructions <- t.instructions + r.stats.Job.instructions;
  t.cycles <- t.cycles + r.stats.Job.cycles;
  t.mem_refs <- t.mem_refs + r.stats.Job.mem_refs;
  match r.profile with
  | None -> ()
  | Some s ->
    t.traced_jobs <- t.traced_jobs + 1;
    t.trace_events <- t.trace_events + s.Fpc_trace.Profile.s_events;
    List.iter
      (fun (p : Fpc_trace.Profile.proc_stat) ->
        let agg =
          match Hashtbl.find_opt t.proc_costs p.ps_name with
          | Some a -> a
          | None ->
            let a = { a_calls = 0; a_excl_cycles = 0; a_excl_refs = 0 } in
            Hashtbl.add t.proc_costs p.ps_name a;
            a
        in
        agg.a_calls <- agg.a_calls + p.ps_calls;
        agg.a_excl_cycles <- agg.a_excl_cycles + p.ps_excl_cycles;
        agg.a_excl_refs <- agg.a_excl_refs + p.ps_excl_refs)
      s.Fpc_trace.Profile.s_procs

let note_shed t = t.shed <- t.shed + 1

(* The job itself is still counted by the worker that eventually runs
   it; this only counts the reply the reactor synthesized in its place. *)
let note_timer_deadline t = t.timer_deadlines <- t.timer_deadlines + 1

let observe_pending t pending =
  if pending > t.max_pending_observed then t.max_pending_observed <- pending

let merge_into ~src ~into =
  into.jobs <- into.jobs + src.jobs;
  into.succeeded <- into.succeeded + src.succeeded;
  into.failed <- into.failed + src.failed;
  into.fuel_exhausted <- into.fuel_exhausted + src.fuel_exhausted;
  into.deadline_exceeded <- into.deadline_exceeded + src.deadline_exceeded;
  into.timer_deadlines <- into.timer_deadlines + src.timer_deadlines;
  into.shed <- into.shed + src.shed;
  into.max_pending_observed <-
    max into.max_pending_observed src.max_pending_observed;
  into.compile_s <- into.compile_s +. src.compile_s;
  into.run_s <- into.run_s +. src.run_s;
  into.translate_s <- into.translate_s +. src.translate_s;
  into.translation_hits <- into.translation_hits + src.translation_hits;
  into.translation_misses <- into.translation_misses + src.translation_misses;
  into.lazy_translated <- into.lazy_translated + src.lazy_translated;
  into.fused_calls <- into.fused_calls + src.fused_calls;
  into.invalidations <- max into.invalidations src.invalidations;
  into.devirt_jobs <- into.devirt_jobs + src.devirt_jobs;
  into.devirt_sites <- into.devirt_sites + src.devirt_sites;
  into.devirt_proven <- into.devirt_proven + src.devirt_proven;
  into.devirt_rewritten <- into.devirt_rewritten + src.devirt_rewritten;
  into.devirt_short <- into.devirt_short + src.devirt_short;
  into.minor_words <- into.minor_words + src.minor_words;
  into.instructions <- into.instructions + src.instructions;
  into.cycles <- into.cycles + src.cycles;
  into.mem_refs <- into.mem_refs + src.mem_refs;
  into.traced_jobs <- into.traced_jobs + src.traced_jobs;
  into.trace_events <- into.trace_events + src.trace_events;
  Hashtbl.iter
    (fun name (a : proc_agg) ->
      let agg =
        match Hashtbl.find_opt into.proc_costs name with
        | Some agg -> agg
        | None ->
          let agg = { a_calls = 0; a_excl_cycles = 0; a_excl_refs = 0 } in
          Hashtbl.add into.proc_costs name agg;
          agg
      in
      agg.a_calls <- agg.a_calls + a.a_calls;
      agg.a_excl_cycles <- agg.a_excl_cycles + a.a_excl_cycles;
      agg.a_excl_refs <- agg.a_excl_refs + a.a_excl_refs)
    src.proc_costs

type proc_cost = {
  pc_name : string;
  pc_calls : int;
  pc_excl_cycles : int;
  pc_excl_refs : int;
}

type snapshot = {
  domains : int;
  jobs : int;
  succeeded : int;
  failed : int;
  fuel_exhausted : int;
  deadline_exceeded : int;
  timer_deadlines : int;
  shed : int;
  max_pending_observed : int;
  cache : Image_cache.stats;
  compile_s : float;
  run_s : float;
  translate_s : float;
  translation_hits : int;
  translation_misses : int;
  lazy_translated : int;
  fused_calls : int;
  invalidations : int;
  devirt_jobs : int;
  devirt_sites : int;
  devirt_proven : int;
  devirt_rewritten : int;
  devirt_short : int;
  wall_s : float;
  jobs_per_sec : float;
  minor_words : int;
  minor_words_per_job : float;
  instructions : int;
  cycles : int;
  mem_refs : int;
  traced_jobs : int;
  trace_events : int;
  proc_costs : proc_cost list;
}

let snapshot (t : t) ~wall_s ~cache =
  let proc_costs =
    Hashtbl.fold
      (fun name (a : proc_agg) acc ->
        {
          pc_name = name;
          pc_calls = a.a_calls;
          pc_excl_cycles = a.a_excl_cycles;
          pc_excl_refs = a.a_excl_refs;
        }
        :: acc)
      t.proc_costs []
    |> List.sort (fun a b ->
           match compare b.pc_excl_cycles a.pc_excl_cycles with
           | 0 -> compare a.pc_name b.pc_name
           | c -> c)
  in
  {
    domains = t.domains;
    jobs = t.jobs;
    succeeded = t.succeeded;
    failed = t.failed;
    fuel_exhausted = t.fuel_exhausted;
    deadline_exceeded = t.deadline_exceeded;
    timer_deadlines = t.timer_deadlines;
    shed = t.shed;
    max_pending_observed = t.max_pending_observed;
    cache;
    compile_s = t.compile_s;
    run_s = t.run_s;
    translate_s = t.translate_s;
    translation_hits = t.translation_hits;
    translation_misses = t.translation_misses;
    lazy_translated = t.lazy_translated;
    fused_calls = t.fused_calls;
    invalidations = t.invalidations;
    devirt_jobs = t.devirt_jobs;
    devirt_sites = t.devirt_sites;
    devirt_proven = t.devirt_proven;
    devirt_rewritten = t.devirt_rewritten;
    devirt_short = t.devirt_short;
    wall_s;
    jobs_per_sec =
      (if wall_s > 0.0 then float_of_int t.jobs /. wall_s else 0.0);
    minor_words = t.minor_words;
    minor_words_per_job =
      (if t.jobs > 0 then float_of_int t.minor_words /. float_of_int t.jobs
       else 0.0);
    instructions = t.instructions;
    cycles = t.cycles;
    mem_refs = t.mem_refs;
    traced_jobs = t.traced_jobs;
    trace_events = t.trace_events;
    proc_costs;
  }

let render (s : snapshot) =
  let open Fpc_util.Tablefmt in
  let tb = create ~title:"pool metrics" ~columns:[ ("", Left); ("value", Right) ] in
  let row k v = add_row tb [ k; v ] in
  row "domains" (cell_int s.domains);
  row "jobs" (cell_int s.jobs);
  row "  succeeded" (cell_int s.succeeded);
  row "  failed" (cell_int s.failed);
  row "    of which fuel-exhausted" (cell_int s.fuel_exhausted);
  row "    of which deadline-exceeded" (cell_int s.deadline_exceeded);
  if s.timer_deadlines > 0 then
    row "deadlines answered by timer" (cell_int s.timer_deadlines);
  row "shed (admission control)" (cell_int s.shed);
  row "max pending observed" (cell_int s.max_pending_observed);
  row "cache hits / misses"
    (Printf.sprintf "%d / %d" s.cache.Image_cache.hits s.cache.Image_cache.misses);
  row "cache hit rate" (cell_pct (Image_cache.hit_rate s.cache));
  row "cache entries (evictions)"
    (Printf.sprintf "%d (%d)" s.cache.Image_cache.entries
       s.cache.Image_cache.evictions);
  row "compile time (summed)" (Printf.sprintf "%.3fs" s.compile_s);
  if s.translation_hits + s.translation_misses > 0 then begin
    row "translation hits / misses"
      (Printf.sprintf "%d / %d" s.translation_hits s.translation_misses);
    row "translate time (summed)" (Printf.sprintf "%.3fs" s.translate_s);
    row "procedures lazily translated" (cell_int s.lazy_translated);
    row "fused calls retired" (cell_int s.fused_calls);
    row "fusion invalidations" (cell_int s.invalidations)
  end;
  (* shown only when some job's image actually had late-bound sites, so
     single-module workloads keep their historical table shape *)
  if s.devirt_sites > 0 then begin
    row "devirt sites (summed per job)" (cell_int s.devirt_sites);
    row "  proven single-target" (cell_int s.devirt_proven);
    row "  rewritten to DIRECTCALL" (cell_int s.devirt_rewritten);
    row "    of which short form" (cell_int s.devirt_short)
  end;
  row "run time (summed)" (Printf.sprintf "%.3fs" s.run_s);
  row "wall time" (Printf.sprintf "%.3fs" s.wall_s);
  row "throughput" (Printf.sprintf "%s jobs/s" (cell_float ~decimals:1 s.jobs_per_sec));
  row "minor words (total)" (cell_int s.minor_words);
  row "minor words / job"
    (cell_float ~decimals:1 s.minor_words_per_job);
  row "simulated instructions" (cell_int s.instructions);
  row "simulated cycles" (cell_int s.cycles);
  row "simulated storage refs" (cell_int s.mem_refs);
  if s.traced_jobs > 0 then begin
    row "traced jobs" (cell_int s.traced_jobs);
    row "trace events" (cell_int s.trace_events);
    let top = List.filteri (fun i _ -> i < 8) s.proc_costs in
    List.iter
      (fun p ->
        row ("  " ^ p.pc_name)
          (Printf.sprintf "%d calls, %d cycles, %d refs" p.pc_calls
             p.pc_excl_cycles p.pc_excl_refs))
      top;
    let rest = List.length s.proc_costs - List.length top in
    if rest > 0 then row "  ..." (Printf.sprintf "%d more procedures" rest)
  end;
  render tb

let to_json (s : snapshot) =
  let open Fpc_util.Jsonout in
  Obj
    [
      ("domains", Int s.domains);
      ("jobs", Int s.jobs);
      ("succeeded", Int s.succeeded);
      ("failed", Int s.failed);
      ("fuel_exhausted", Int s.fuel_exhausted);
      ("deadline_exceeded", Int s.deadline_exceeded);
      ("timer_deadlines", Int s.timer_deadlines);
      ("shed", Int s.shed);
      ("max_pending_observed", Int s.max_pending_observed);
      ( "cache",
        Obj
          [
            ("hits", Int s.cache.Image_cache.hits);
            ("misses", Int s.cache.Image_cache.misses);
            ("evictions", Int s.cache.Image_cache.evictions);
            ("entries", Int s.cache.Image_cache.entries);
            ("hit_rate", Float (Image_cache.hit_rate s.cache));
          ] );
      ("compile_s", Float s.compile_s);
      ( "translation",
        Obj
          [
            ("hits", Int s.translation_hits);
            ("misses", Int s.translation_misses);
            ("translate_s", Float s.translate_s);
            ("lazy_translated", Int s.lazy_translated);
            ("fused_calls", Int s.fused_calls);
            ("invalidations", Int s.invalidations);
          ] );
      ( "devirt",
        Obj
          [
            ("jobs", Int s.devirt_jobs);
            ("sites", Int s.devirt_sites);
            ("proven", Int s.devirt_proven);
            ("rewritten", Int s.devirt_rewritten);
            ("short", Int s.devirt_short);
          ] );
      ("run_s", Float s.run_s);
      ("wall_s", Float s.wall_s);
      ("jobs_per_sec", Float s.jobs_per_sec);
      ("minor_words", Int s.minor_words);
      ("minor_words_per_job", Float s.minor_words_per_job);
      ("instructions", Int s.instructions);
      ("cycles", Int s.cycles);
      ("mem_refs", Int s.mem_refs);
      ("traced_jobs", Int s.traced_jobs);
      ("trace_events", Int s.trace_events);
      ( "proc_costs",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("name", String p.pc_name);
                   ("calls", Int p.pc_calls);
                   ("excl_cycles", Int p.pc_excl_cycles);
                   ("excl_refs", Int p.pc_excl_refs);
                 ])
             s.proc_costs) );
    ]
