(** E10 — §1: call density of well-structured programs.

    "Well-structured programs typically make a large number of procedure
    calls; one call or return for every 10 instructions executed is not
    uncommon."  Measured over the compiled suite's dynamic instruction
    streams. *)

open Fpc_util

let run () =
  let t =
    Tablefmt.create ~title:"Dynamic instructions per call-or-return (engine I2)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("instructions", Tablefmt.Right);
          ("calls", Tablefmt.Right);
          ("returns", Tablefmt.Right);
          ("instr / transfer", Tablefmt.Right);
        ]
  in
  let ti = ref 0 and tc = ref 0 in
  List.iter
    (fun (program, (st : Fpc_core.State.t)) ->
      let m = st.metrics in
      let transfers = m.calls + m.returns in
      ti := !ti + m.instructions;
      tc := !tc + transfers;
      Tablefmt.add_row t
        [
          program;
          Tablefmt.cell_int m.instructions;
          Tablefmt.cell_int m.calls;
          Tablefmt.cell_int m.returns;
          Tablefmt.cell_float (Harness.ratio m.instructions transfers);
        ])
    (Harness.run_suite ~engine:Fpc_core.Engine.i2 ());
  let overall = Harness.ratio !ti !tc in
  Tablefmt.add_note t
    (Printf.sprintf "suite aggregate: %.1f instructions per call-or-return \
                     (paper: ~%.0f)"
       overall Fpc_workload.Distributions.paper_call_density);
  {
    Exp.id = "E10";
    key = "call_density";
    title = "One call or return per ~10 instructions";
    paper_claim = "one call or return for every 10 instructions executed (\xC2\xA71)";
    tables = [ Tablefmt.render t ];
    headlines = [ ("instructions_per_transfer", overall) ];
  }
