(** The IFU return stack of §6.

    "The IFU can keep a small stack of return information: frame pointer,
    global frame pointer GF and PC.  As long as calls and returns follow a
    LIFO discipline this allows returns to be handled as fast as calls."

    Each entry remembers how to resume a caller without touching main
    storage: its frame, global frame, code base, resume PC, and (for §7.1)
    the register bank shadowing its frame.  While an entry lives here, the
    caller's PC and the callee's returnLink have {e not} been written to
    memory — those stores are exactly what the fast path elides — so on any
    non-LIFO event the stack must be flushed through a writer that performs
    the deferred stores ("the frame pointer LF goes into the returnLink
    component of the next higher frame, and the PC goes into the PC
    component of LF").

    The stack stores entries and statistics; flush orchestration (who is
    the next-higher frame) belongs to the transfer engine, which passes a
    writer to {!flush}. *)

type entry = {
  r_lf : int;  (** caller frame pointer *)
  r_gf : int;  (** caller global frame address *)
  r_cb : int option;
      (** caller code base (word address); [None] when the caller itself
          was entered by a DIRECTCALL and never had to materialise its
          code base (it is recovered from the global frame on demand) *)
  r_pc_abs : int;  (** caller resume PC as an absolute byte address *)
  r_bank : int option;  (** register bank shadowing [r_lf], if any (§7.1) *)
}

type t

val create : depth:int -> t
(** [depth] must be positive (the paper contemplates a small stack, ~4–16
    entries). *)

val depth : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val set_on_event : t -> (Fpc_trace.Event.kind -> unit) option -> unit
(** Tracing hook: pushes, fast pops, flushes (with entry counts) and
    spills fire [Rs_*] events.  No-op when unset. *)

val push : t -> entry -> unit
(** Raises [Invalid_argument] when full — the caller must flush first. *)

val pop : t -> entry option
(** The fast return path; [None] means fall back to the general scheme. *)

val peek : t -> entry option

val to_list : t -> entry list
(** Oldest first. *)

val second_oldest : t -> entry option
(** The entry just above the oldest, i.e. the frame that was called from
    the oldest entry's context. *)

val drop_oldest : t -> entry option
(** Remove and return the {e bottom} entry, making room without touching
    the hot top — the engine performs its deferred stores (a partial
    spill).  Counted in {!spills}. *)

val flush : t -> f:(entry -> unit) -> unit
(** Drain every entry, {e newest first} (so the writer can chain each
    caller to the frame above it), emptying the stack.  Counted as one
    flush event. *)

(** {1 Statistics for experiment E1/E11} *)

val pushes : t -> int
val fast_pops : t -> int
val empty_pops : t -> int  (** returns that had to take the slow path *)

val flushes : t -> int
val flushed_entries : t -> int

val spills : t -> int
(** Oldest-entry spills caused by overflow. *)
