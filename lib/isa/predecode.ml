type t = {
  base : int;
  limit : int;
  ops : Opcode.t array;  (* indexed by pc - base; a placeholder where len = 0 *)
  lens : Bytes.t;  (* encoded length per slot; 0 = not decodable here *)
}

(* The placeholder stored in undecodable slots.  Never returned to a
   caller that respects the [len_at] = 0 contract. *)
let illegal_op = Opcode.Brk

let decode_range ~fetch ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Predecode.decode_range";
  let n = hi - lo in
  let ops = Array.make n illegal_op in
  let lens = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    match Opcode.decode ~fetch ~pc:(lo + i) with
    | op, len ->
      ops.(i) <- op;
      Bytes.unsafe_set lens i (Char.unsafe_chr len)
    | exception Invalid_argument _ -> ()
    (* an illegal opcode byte, or an operand fetch past the end of
       storage: the interpreter takes its live-decode trap path *)
  done;
  { base = lo; limit = hi; ops; lens }

let base t = t.base
let limit t = t.limit

let len_at t pc =
  let i = pc - t.base in
  if i < 0 || i >= t.limit - t.base then 0 else Char.code (Bytes.unsafe_get t.lens i)

let op_at t pc = Array.unsafe_get t.ops (pc - t.base)

let straight_run t ~pc ~cap ~ends =
  let rec go pc left acc =
    if left = 0 then None
    else
      match len_at t pc with
      | 0 -> None
      | len ->
        let op = op_at t pc in
        let acc = (pc, op, len) :: acc in
        if ends op then Some (List.rev acc) else go (pc + len) (left - 1) acc
  in
  go pc cap []

let decoded t =
  let rec go pc acc =
    if pc >= t.limit then List.rev acc
    else
      match len_at t pc with
      | 0 -> go (pc + 1) acc
      | len -> go (pc + 1) ((pc, op_at t pc, len) :: acc)
  in
  go t.base []
