open Fpc_machine
open Fpc_frames

(* A round-robin set of activities, each owning a stack of frames.  Root
   frames are never popped, so every activity always has a current
   context. *)
type 'f activities = {
  mutable ring : 'f list list; (* head = current activity's stack, top first *)
  limit : int;
}

let current acts =
  match acts.ring with
  | (top :: _) :: _ -> top
  | _ -> invalid_arg "Replay: empty activity"

let push_frame acts f =
  match acts.ring with
  | stack :: rest -> acts.ring <- (f :: stack) :: rest
  | [] -> acts.ring <- [ [ f ] ]

let pop_frame acts =
  match acts.ring with
  | (top :: (_ :: _ as stack)) :: rest ->
    acts.ring <- stack :: rest;
    Some top
  | _ -> None (* keep the root frame *)

(* Rotate to the next activity, creating a fresh one (via [spawn]) until
   [limit] activities exist. *)
let rotate acts ~spawn =
  let n = List.length acts.ring in
  if n < acts.limit then acts.ring <- [ spawn () ] :: acts.ring
  else
    match acts.ring with
    | first :: rest -> acts.ring <- rest @ [ first ]
    | [] -> ()

(* A recycling frame arena over simulated memory: quad-aligned blocks with
   a valid fsi word, so Bank_file.ensure_bank can size its shadow. *)
type arena = {
  mem : Memory.t;
  ladder : Size_class.t;
  mutable bump : int;
  free : (int, int list ref) Hashtbl.t; (* fsi -> free lfs *)
}

let make_arena ~mem ~ladder ~base = { mem; ladder; bump = base; free = Hashtbl.create 8 }

let arena_alloc a ~payload =
  let fsi =
    match Size_class.index_for_block a.ladder (Frame.block_words_for_locals payload) with
    | Some fsi -> fsi
    | None -> Size_class.class_count a.ladder - 1
  in
  match Hashtbl.find_opt a.free fsi with
  | Some ({ contents = lf :: rest } as cell) ->
    cell := rest;
    lf
  | Some _ | None ->
    let words = Size_class.block_words a.ladder fsi in
    let block = a.bump in
    if block + words > Memory.size a.mem then invalid_arg "Replay: arena exhausted";
    a.bump <- block + words;
    Memory.poke a.mem block fsi;
    Frame.lf_of_block block

let arena_free a ~lf =
  let fsi = Memory.peek a.mem (Frame.block_of_lf lf) in
  match Hashtbl.find_opt a.free fsi with
  | Some cell -> cell := lf :: !cell
  | None -> Hashtbl.add a.free fsi (ref [ lf ])

(* ------------------------------------------------------------------ *)

type bank_result = { bk_stats : Fpc_regbank.Bank_file.stats; bk_rate : float }

let replay_banks ?(bank_words = 16) ?(coroutines = 4) ~banks events =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 16) () in
  let ladder = Size_class.default in
  let arena = make_arena ~mem ~ladder ~base:1024 in
  let config =
    {
      Fpc_regbank.Bank_file.default_config with
      bank_count = banks;
      bank_words;
    }
  in
  let bf = Fpc_regbank.Bank_file.create ~config ~mem ~cost ~ladder () in
  let spawn () =
    let lf = arena_alloc arena ~payload:8 in
    (lf, 8)
  in
  let acts = { ring = [ [ spawn () ] ]; limit = max 1 coroutines } in
  Fpc_regbank.Bank_file.ensure_bank bf ~lf:(fst (current acts));
  List.iter
    (fun (e : Synthetic.event) ->
      match e with
      | Synthetic.Call payload ->
        let lf = arena_alloc arena ~payload in
        Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:payload
          ~args:[||];
        push_frame acts (lf, payload)
      | Synthetic.Return -> (
        match pop_frame acts with
        | None -> ()
        | Some (lf, _) ->
          Fpc_regbank.Bank_file.release_frame bf ~lf;
          arena_free arena ~lf;
          Fpc_regbank.Bank_file.ensure_bank bf ~lf:(fst (current acts)))
      | Synthetic.Coroutine_switch ->
        Fpc_regbank.Bank_file.on_leave bf ~lf:(fst (current acts));
        rotate acts ~spawn;
        Fpc_regbank.Bank_file.ensure_bank bf ~lf:(fst (current acts))
      | Synthetic.Process_switch ->
        Fpc_regbank.Bank_file.flush_all bf;
        rotate acts ~spawn;
        Fpc_regbank.Bank_file.ensure_bank bf ~lf:(fst (current acts)))
    events;
  let stats = Fpc_regbank.Bank_file.stats bf in
  let rate =
    if stats.xfers = 0 then 0.0
    else
      float_of_int (stats.overflows + stats.underflows) /. float_of_int stats.xfers
  in
  { bk_stats = stats; bk_rate = rate }

(* ------------------------------------------------------------------ *)

type return_stack_result = {
  rs_fast_returns : int;
  rs_slow_returns : int;
  rs_flushes : int;
  rs_flushed_entries : int;
  rs_fast_fraction : float;
}

let replay_return_stack ~depth ?(coroutines = 4) events =
  let open Fpc_ifu in
  let rs = Return_stack.create ~depth in
  let dummy =
    {
      Return_stack.r_lf = 4;
      r_gf = 0;
      r_cb = Return_stack.no_cb;
      r_pc_abs = 0;
      r_bank = Return_stack.no_bank;
    }
  in
  let flush () = Return_stack.flush rs ~f:(fun _ -> ()) in
  let make_room () = ignore (Return_stack.drop_oldest rs) in
  (* Depth bookkeeping per activity so a Return beyond an activity's root
     is ignored, mirroring the other replayers. *)
  let acts = { ring = [ [ 0 ] ]; limit = max 1 coroutines } in
  List.iter
    (fun (e : Synthetic.event) ->
      match e with
      | Synthetic.Call _ ->
        if Return_stack.is_full rs then make_room ();
        Return_stack.push_entry rs dummy;
        push_frame acts 0
      | Synthetic.Return -> (
        match pop_frame acts with
        | None -> ()
        | Some _ -> ignore (Return_stack.pop rs))
      | Synthetic.Coroutine_switch | Synthetic.Process_switch ->
        flush ();
        rotate acts ~spawn:(fun () -> 0))
    events;
  let fast = Return_stack.fast_pops rs in
  let slow = Return_stack.empty_pops rs in
  {
    rs_fast_returns = fast;
    rs_slow_returns = slow;
    rs_flushes = Return_stack.flushes rs;
    rs_flushed_entries = Return_stack.flushed_entries rs;
    rs_fast_fraction =
      (if fast + slow = 0 then 1.0 else float_of_int fast /. float_of_int (fast + slow));
  }

(* ------------------------------------------------------------------ *)

type alloc_result = {
  al_stats : Alloc_vector.stats;
  al_fragmentation : float;
  al_mem_refs_per_alloc : float;
  al_mem_refs_per_free : float;
}

let replay_allocator ?(ladder = Size_class.default) ?(coroutines = 4) events =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 18) () in
  let av_base = 16 in
  let heap_base = 1024 in
  let allocator =
    Alloc_vector.create ~mem ~ladder ~av_base ~heap_base ~heap_limit:(1 lsl 18) ()
  in
  let alloc payload = Alloc_vector.alloc_words allocator ~cost ~body_words:payload in
  let spawn () = alloc 8 in
  let acts = { ring = [ [ spawn () ] ]; limit = max 1 coroutines } in
  let allocs = ref 1 and frees = ref 0 in
  let alloc_reads = ref 0 and free_reads = ref 0 in
  List.iter
    (fun (e : Synthetic.event) ->
      match e with
      | Synthetic.Call payload ->
        let before = Cost.mem_refs cost in
        let lf = alloc (min payload (Size_class.max_block_words ladder - 8)) in
        alloc_reads := !alloc_reads + (Cost.mem_refs cost - before);
        incr allocs;
        push_frame acts lf
      | Synthetic.Return -> (
        match pop_frame acts with
        | None -> ()
        | Some lf ->
          let before = Cost.mem_refs cost in
          Alloc_vector.free allocator ~cost ~lf;
          free_reads := !free_reads + (Cost.mem_refs cost - before);
          incr frees)
      | Synthetic.Coroutine_switch | Synthetic.Process_switch ->
        rotate acts ~spawn)
    events;
  let stats = Alloc_vector.stats allocator in
  {
    al_stats = stats;
    al_fragmentation = Alloc_vector.internal_fragmentation allocator;
    al_mem_refs_per_alloc =
      (if !allocs = 0 then 0.0 else float_of_int !alloc_reads /. float_of_int !allocs);
    al_mem_refs_per_free =
      (if !frees = 0 then 0.0 else float_of_int !free_reads /. float_of_int !frees);
  }

(* ------------------------------------------------------------------ *)

type baseline_result = {
  bl_words_written : int;
  bl_words_read : int;
  bl_high_water_total : int;
  bl_calls : int;
}

let replay_baseline ?(config = Fpc_baseline.Stack_machine.default_config)
    ?(coroutines = 4) events =
  let open Fpc_baseline in
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 18) () in
  (* Partition storage into one contiguous stack region per activity —
     the LIFO architecture's requirement. *)
  let region = Memory.size mem / max 1 coroutines in
  let machines =
    Array.init (max 1 coroutines) (fun i ->
        Stack_machine.create ~config ~mem ~stack_base:(i * region)
          ~stack_limit:(((i + 1) * region) - 1) ())
  in
  let acts = { ring = [ [ 0 ] ]; limit = max 1 coroutines } in
  let next_id = ref 0 in
  let spawn () =
    incr next_id;
    !next_id
  in
  let depth_guard = Array.make (Array.length machines) 0 in
  List.iter
    (fun (e : Synthetic.event) ->
      let act = current acts in
      let sm = machines.(act mod Array.length machines) in
      match e with
      | Synthetic.Call payload ->
        Stack_machine.call sm ~nargs:(min 4 payload) ~locals_words:payload;
        depth_guard.(act mod Array.length machines) <-
          depth_guard.(act mod Array.length machines) + 1;
        push_frame acts act
      | Synthetic.Return -> (
        match pop_frame acts with
        | None -> ()
        | Some _ ->
          if depth_guard.(act mod Array.length machines) > 0 then begin
            Stack_machine.return_ sm;
            depth_guard.(act mod Array.length machines) <-
              depth_guard.(act mod Array.length machines) - 1
          end)
      | Synthetic.Coroutine_switch | Synthetic.Process_switch ->
        rotate acts ~spawn)
    events;
  let total_calls = Array.fold_left (fun acc sm -> acc + Stack_machine.calls sm) 0 machines in
  let hw = Array.fold_left (fun acc sm -> acc + Stack_machine.high_water sm) 0 machines in
  {
    bl_words_written = Cost.mem_writes cost;
    bl_words_read = Cost.mem_reads cost;
    bl_high_water_total = hw;
    bl_calls = total_calls;
  }
