lib/machine/memory.ml: Array Bytes Char Cost Fpc_util Printf
