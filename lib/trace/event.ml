type kind =
  | Begin
  | Call
  | Return
  | Coroutine
  | Switch
  | Fork
  | Trap of int
  | Frame_alloc of { words : int; via_ff : bool; software : bool }
  | Frame_free of { words : int; to_ff : bool }
  | Rs_push
  | Rs_hit
  | Rs_flush of int
  | Rs_spill
  | Bank_load of int
  | Bank_spill of int

type t = {
  mutable seq : int;
  mutable kind : kind;
  mutable pc : int;
  mutable target : int;
  mutable depth : int;
  mutable fast : bool;
  mutable cycles : int;
  mutable mem_refs : int;
  mutable d_cycles : int;
  mutable d_mem_refs : int;
}

let copy e = { e with seq = e.seq }

let is_transfer = function
  | Begin | Call | Return | Coroutine | Switch -> true
  | Fork | Trap _ | Frame_alloc _ | Frame_free _ | Rs_push | Rs_hit
  | Rs_flush _ | Rs_spill | Bank_load _ | Bank_spill _ ->
    false

let kind_name = function
  | Begin -> "begin"
  | Call -> "call"
  | Return -> "return"
  | Coroutine -> "coroutine"
  | Switch -> "switch"
  | Fork -> "fork"
  | Trap _ -> "trap"
  | Frame_alloc _ -> "frame-alloc"
  | Frame_free _ -> "frame-free"
  | Rs_push -> "rs-push"
  | Rs_hit -> "rs-hit"
  | Rs_flush _ -> "rs-flush"
  | Rs_spill -> "rs-spill"
  | Bank_load _ -> "bank-load"
  | Bank_spill _ -> "bank-spill"

let detail = function
  | Trap code -> Printf.sprintf " code=%d" code
  | Frame_alloc { words; via_ff; software } ->
    Printf.sprintf " words=%d%s%s" words
      (if via_ff then " via-ff" else "")
      (if software then " software" else "")
  | Frame_free { words; to_ff } ->
    Printf.sprintf " words=%d%s" words (if to_ff then " to-ff" else "")
  | Rs_flush n -> Printf.sprintf " entries=%d" n
  | Bank_load n | Bank_spill n -> Printf.sprintf " words=%d" n
  | Begin | Call | Return | Coroutine | Switch | Fork | Rs_push | Rs_hit
  | Rs_spill ->
    ""

let to_string e =
  let target = if e.target >= 0 then Printf.sprintf " -> %d" e.target else "" in
  let cost =
    if is_transfer e.kind then
      Printf.sprintf " +%dc/%dr%s" e.d_cycles e.d_mem_refs
        (if e.fast then " fast" else "")
    else ""
  in
  Printf.sprintf "%-10s pc=%d%s depth=%d%s%s" (kind_name e.kind) e.pc target
    e.depth (detail e.kind) cost

let zero =
  {
    seq = 0;
    kind = Begin;
    pc = 0;
    target = -1;
    depth = 0;
    fast = false;
    cycles = 0;
    mem_refs = 0;
    d_cycles = 0;
    d_mem_refs = 0;
  }
