let fib =
  {|
MODULE Main;
PROC fib(n: INT): INT =
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROC main() =
  OUTPUT fib(14);
END;
END;
|}

let ackermann =
  {|
MODULE Main;
PROC ack(m: INT, n: INT): INT =
  IF m = 0 THEN RETURN n + 1; END;
  IF n = 0 THEN RETURN ack(m - 1, 1); END;
  RETURN ack(m - 1, ack(m, n - 1));
END;
PROC main() =
  OUTPUT ack(2, 5);
  OUTPUT ack(3, 3);
END;
END;
|}

let sieve =
  {|
MODULE Main;
PROC sieve(n: INT): INT =
  VAR flags: ARRAY 180 OF INT;
  VAR i: INT := 0;
  VAR count: INT := 0;
  WHILE i < n DO
    flags[i] := 1;
    i := i + 1;
  END;
  i := 2;
  WHILE i < n DO
    IF flags[i] = 1 THEN
      count := count + 1;
      VAR j: INT := i + i;
      WHILE j < n DO
        flags[j] := 0;
        j := j + i;
      END;
    END;
    i := i + 1;
  END;
  RETURN count;
END;
PROC main() =
  OUTPUT sieve(180);
END;
END;
|}

let isort =
  {|
MODULE Main;
PROC main() =
  VAR a: ARRAY 40 OF INT;
  VAR seed: INT := 1234;
  VAR i: INT := 0;
  WHILE i < 40 DO
    seed := (seed * 31 + 17) MOD 997;
    a[i] := seed;
    i := i + 1;
  END;
  i := 1;
  WHILE i < 40 DO
    VAR key: INT := a[i];
    VAR j: INT := i;
    VAR moving: BOOL := TRUE;
    WHILE moving DO
      IF j > 0 THEN
        IF a[j - 1] > key THEN
          a[j] := a[j - 1];
          j := j - 1;
        ELSE
          moving := FALSE;
        END;
      ELSE
        moving := FALSE;
      END;
    END;
    a[j] := key;
    i := i + 1;
  END;
  OUTPUT a[0];
  OUTPUT a[39];
  VAR sum: INT := 0;
  i := 0;
  WHILE i < 40 DO
    sum := (sum + a[i]) MOD 10000;
    i := i + 1;
  END;
  OUTPUT sum;
END;
END;
|}

let callchain =
  {|
MODULE CLeaf;
VAR hits: INT := 0;
PROC leaf(x: INT): INT =
  hits := hits + 1;
  RETURN x + 1;
END;
PROC count(): INT =
  RETURN hits;
END;
END;

MODULE BMid;
IMPORT CLeaf;
PROC step(x: INT): INT =
  RETURN CLeaf.leaf(x) + CLeaf.leaf(x + 1);
END;
END;

MODULE AMid;
IMPORT BMid;
PROC step(x: INT): INT =
  RETURN BMid.step(x) + 1;
END;
END;

MODULE Main;
IMPORT AMid, CLeaf;
PROC main() =
  VAR i: INT := 0;
  VAR acc: INT := 0;
  WHILE i < 300 DO
    acc := (acc + AMid.step(i)) MOD 10000;
    i := i + 1;
  END;
  OUTPUT acc;
  OUTPUT CLeaf.count();
END;
END;
|}

let leafcalls =
  {|
MODULE Leaf;
PROC bump(x: INT): INT =
  RETURN x + 1;
END;
END;

MODULE Main;
IMPORT Leaf;
VAR total: INT := 0;
PROC main() =
  VAR i: INT := 0;
  WHILE i < 2000 DO
    total := (total + Leaf.bump(i)) MOD 30000;
    i := i + 1;
  END;
  OUTPUT total;
END;
END;
|}

let coroutine =
  {|
MODULE Main;
PROC producer(start: INT) =
  VAR who: CONTEXT := RETCTX;
  VAR n: INT := start;
  WHILE TRUE DO
    TRANSFER(who, n * n);
    who := RETCTX;
    n := n + 1;
  END;
END;
PROC main() =
  VAR sum: INT := 0;
  VAR i: INT := 1;
  VAR v: INT := TRANSFER(@producer, 1);
  VAR co: CONTEXT := RETCTX;
  sum := v;
  WHILE i < 20 DO
    v := TRANSFER(co, 0);
    co := RETCTX;
    sum := sum + v;
    i := i + 1;
  END;
  OUTPUT sum;
END;
END;
|}

let processes =
  {|
MODULE Main;
VAR finished: INT := 0;
PROC worker(id: INT, items: INT) =
  VAR i: INT := 0;
  WHILE i < items DO
    OUTPUT id * 100 + i;
    i := i + 1;
    YIELD;
  END;
  finished := finished + 1;
END;
PROC main() =
  FORK worker(1, 3);
  FORK worker(2, 3);
  FORK worker(3, 3);
  WHILE finished < 3 DO
    YIELD;
  END;
  OUTPUT finished;
END;
END;
|}

let mixed =
  {|
MODULE Main;
PROC gcd(a: INT, b: INT): INT =
  WHILE b # 0 DO
    VAR t: INT := b;
    b := a MOD b;
    a := t;
  END;
  RETURN a;
END;
PROC step(VAR n: INT, VAR steps: INT) =
  IF n MOD 2 = 0 THEN
    n := n / 2;
  ELSE
    n := 3 * n + 1;
  END;
  steps := steps + 1;
END;
PROC collatz(n0: INT): INT =
  VAR n: INT := n0;
  VAR s: INT := 0;
  WHILE n # 1 DO
    step(n, s);
  END;
  RETURN s;
END;
PROC main() =
  OUTPUT gcd(8064, 3528);
  OUTPUT collatz(27);
  OUTPUT gcd(collatz(97), 30);
END;
END;
|}

let deep =
  {|
MODULE Main;
PROC depth(n: INT): INT =
  IF n = 0 THEN
    RETURN 0;
  END;
  RETURN depth(n - 1) + 1;
END;
PROC main() =
  OUTPUT depth(200);
END;
END;
|}

let hanoi =
  {|
MODULE Main;
VAR moves: INT := 0;
PROC solve(n: INT, src: INT, dst: INT, via: INT) =
  IF n = 0 THEN
    RETURN;
  END;
  solve(n - 1, src, via, dst);
  moves := moves + 1;
  solve(n - 1, via, dst, src);
END;
PROC main() =
  solve(7, 1, 3, 2);
  OUTPUT moves;
END;
END;
|}

let bsearch =
  {|
MODULE Main;
PROC main() =
  VAR a: ARRAY 64 OF INT;
  VAR i: INT := 0;
  WHILE i < 64 DO
    a[i] := i * 3 + 1;
    i := i + 1;
  END;
  VAR probes: INT := 0;
  VAR target: INT := 0;
  WHILE target < 192 DO
    VAR lo: INT := 0;
    VAR hi: INT := 63;
    VAR found: INT := 0;
    WHILE lo <= hi DO
      VAR mid: INT := (lo + hi) / 2;
      probes := probes + 1;
      IF a[mid] = target THEN
        found := 1;
        lo := hi + 1;
      ELSE
        IF a[mid] < target THEN
          lo := mid + 1;
        ELSE
          hi := mid - 1;
        END;
      END;
    END;
    IF found = 1 THEN
      OUTPUT target;
    END;
    target := target + 37;
  END;
  OUTPUT probes;
END;
END;
|}

let matmul =
  {|
MODULE Main;
VAR a: ARRAY 36 OF INT;
VAR b: ARRAY 36 OF INT;
VAR c: ARRAY 36 OF INT;
PROC idx(r: INT, col: INT): INT =
  RETURN r * 6 + col;
END;
PROC main() =
  VAR i: INT := 0;
  WHILE i < 36 DO
    a[i] := i MOD 7;
    b[i] := (i * 5) MOD 11;
    i := i + 1;
  END;
  VAR r: INT := 0;
  WHILE r < 6 DO
    VAR col: INT := 0;
    WHILE col < 6 DO
      VAR acc: INT := 0;
      VAR k: INT := 0;
      WHILE k < 6 DO
        acc := acc + a[idx(r, k)] * b[idx(k, col)];
        k := k + 1;
      END;
      c[idx(r, col)] := acc;
      col := col + 1;
    END;
    r := r + 1;
  END;
  VAR sum: INT := 0;
  i := 0;
  WHILE i < 36 DO
    sum := (sum + c[i]) MOD 10000;
    i := i + 1;
  END;
  OUTPUT sum;
  OUTPUT c[0];
  OUTPUT c[35];
END;
END;
|}

let knapsack =
  {|
MODULE Main;
VAR weight: ARRAY 8 OF INT;
VAR value: ARRAY 8 OF INT;
PROC best(i: INT, cap: INT): INT =
  IF i = 8 THEN
    RETURN 0;
  END;
  VAR skip: INT := best(i + 1, cap);
  IF weight[i] > cap THEN
    RETURN skip;
  END;
  VAR take: INT := value[i] + best(i + 1, cap - weight[i]);
  IF take > skip THEN
    RETURN take;
  END;
  RETURN skip;
END;
PROC main() =
  VAR i: INT := 0;
  WHILE i < 8 DO
    weight[i] := (i * 7) MOD 9 + 1;
    value[i] := (i * 11) MOD 13 + 2;
    i := i + 1;
  END;
  OUTPUT best(0, 15);
END;
END;
|}

(* Call-dense kernels: tight loops whose work is almost entirely leaf
   procedure calls — the cross-call-fusion stress shapes.  Leaf bodies
   avoid DIV/MOD (trap-capable ops disqualify a body from splicing) and
   values wrap at the 16-bit word like every other arithmetic result, so
   no bounding arithmetic dilutes the call density.  [fibleaf] and
   [xleaf] are fully fusable; [ackerlite] keeps a MOD at the call
   boundary so the measurement set also covers a trap-capable op
   riding mid-node between fused batches. *)

let fibleaf =
  {|
MODULE Main;
PROC add2(a: INT, b: INT): INT =
  RETURN a + b;
END;
PROC main() =
  VAR a: INT := 0;
  VAR b: INT := 1;
  VAR i: INT := 0;
  WHILE i < 1250 DO
    a := add2(a, b);
    b := add2(b, a);
    i := i + 1;
  END;
  OUTPUT a;
  OUTPUT b;
END;
END;
|}

let ackerlite =
  {|
MODULE Main;
PROC inc(x: INT): INT =
  RETURN x + 1;
END;
PROC dbl(x: INT): INT =
  RETURN x + x;
END;
PROC mix(a: INT, b: INT): INT =
  RETURN a * 3 + b;
END;
PROC main() =
  VAR acc: INT := 1;
  VAR i: INT := 0;
  WHILE i < 1500 DO
    acc := mix(inc(acc), dbl(i)) MOD 30011;
    i := i + 1;
  END;
  OUTPUT acc;
END;
END;
|}

let xleaf =
  {|
MODULE XL;
PROC inc(x: INT): INT =
  RETURN x + 1;
END;
PROC sum3(a: INT, b: INT, c: INT): INT =
  RETURN a + b + c;
END;
END;

MODULE Main;
IMPORT XL;
PROC main() =
  VAR acc: INT := 0;
  VAR i: INT := 0;
  WHILE i < 1500 DO
    acc := XL.sum3(acc, XL.inc(i), 7);
    i := i + 1;
  END;
  OUTPUT acc;
END;
END;
|}

(* Richer leaves: the paper's §2 observation is a call every ~20
   instructions; [fibleaf]/[xleaf] are far denser than that (a call every
   4–6), which puts the bit-identical call/return machinery — shared with
   the interpreter — in the denominator of any speedup.  [polyleaf] keeps
   the loop just as thin but gives each leaf a realistic straight-line
   body (~14 compiled ops, still under the splice cap), so the fused
   batches carry enough prepaid work to show what fusion buys on
   paper-shaped code. *)

let polyleaf =
  {|
MODULE Main;
PROC horner3(x: INT, a: INT, b: INT, c: INT): INT =
  VAR t: INT := a * x + b;
  t := t * x + c;
  RETURN t;
END;
PROC blend(u: INT, v: INT): INT =
  VAR s: INT := u + v;
  VAR d: INT := u - v;
  RETURN s * 3 + d;
END;
PROC main() =
  VAR acc: INT := 1;
  VAR i: INT := 0;
  WHILE i < 900 DO
    acc := blend(horner3(i, acc, 7, 11), horner3(acc, 3, i, 5));
    i := i + 1;
  END;
  OUTPUT acc;
END;
END;
|}

let all =
  [
    ("fib", fib);
    ("ackermann", ackermann);
    ("sieve", sieve);
    ("isort", isort);
    ("callchain", callchain);
    ("leafcalls", leafcalls);
    ("coroutine", coroutine);
    ("processes", processes);
    ("mixed", mixed);
    ("deep", deep);
    ("hanoi", hanoi);
    ("bsearch", bsearch);
    ("matmul", matmul);
    ("knapsack", knapsack);
    ("fibleaf", fibleaf);
    ("ackerlite", ackerlite);
    ("xleaf", xleaf);
    ("polyleaf", polyleaf);
  ]

let find name = List.assoc name all
let names = List.map fst all

let call_intensive =
  [
    "fib"; "ackermann"; "callchain"; "leafcalls"; "deep"; "hanoi"; "knapsack";
    "fibleaf"; "ackerlite"; "xleaf"; "polyleaf";
  ]

let call_dense = [ "fibleaf"; "ackerlite"; "xleaf"; "polyleaf" ]

let sequential =
  [
    "fib"; "ackermann"; "sieve"; "isort"; "callchain"; "leafcalls"; "mixed";
    "deep"; "hanoi"; "bsearch"; "matmul"; "knapsack"; "fibleaf"; "ackerlite";
    "xleaf"; "polyleaf";
  ]
