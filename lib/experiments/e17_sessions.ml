(** E17 — thousands of sessions over coroutine XFER (extension).

    The paper's setting is a timesharing machine: "a large number of
    processes" multiplexed over one processor, with the frame heap holding
    only the frames that are actually live instead of reserving a
    contiguous stack per process (§5).  E17 streams 100 / 1 000 / 10 000
    generated sessions ({!Fpc_workload.Sessions}) through the green-thread
    scheduler ({!Fpc_sched.Sched}) on every engine under both execution
    tiers and holds the stack to three claims:

    - {e determinism}: the workload's OUTPUT is byte-identical across all
      four engines, both tiers and both scheduling policies at every
      scale, and every simulated meter is bit-identical between tiers per
      engine;
    - {e fast-path degradation is graceful}: under run-to-yield every
      switch point sits at a session's top level (all calls returned, so
      the return stack is empty and nothing flushes); under fuel
      preemption switches land mid-call-chain and the banked engines pay
      real return-stack flushes — but only a few per hundred transfers;
    - {e the frame heap beats LIFO reservation}: peak live frame-heap
      words stay well below what dedicated per-session stacks would
      reserve (peak live processes x worst per-session extent), except
      under I4 where the free-frame stack parks recycled frames and the
      measured peak is a documented over-count. *)

open Fpc_util

let fuel = 50_000_000

let fingerprint (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( m.instructions,
    Fpc_machine.Cost.cycles st.cost,
    Fpc_machine.Cost.mem_refs st.cost,
    (m.calls, m.returns, m.other_xfers, m.fast_transfers),
    (m.procs_forked, m.procs_ended, m.peak_live_procs) )

(* One engine x tier run: boot the compiled session workload, drive it with
   the scheduler, and return the output alongside the scheduling report. *)
let run_tier ~policy ~config ~image ~engine ~compiled =
  let image = Fpc_mesa.Image.clone image in
  let st =
    Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  let step =
    if compiled then (
      let tr = Fpc_tier.Tier.translate image in
      fun n st -> Fpc_tier.Tier.run ~max_steps:n tr st)
    else fun n st -> Fpc_interp.Interp.run ~max_steps:n st
  in
  let stats = Fpc_sched.Sched.run ~policy ~step ~fuel st in
  Harness.must_halt st;
  let lifo_reserved =
    st.metrics.peak_live_procs
    * Fpc_workload.Sessions.worst_extent_words config ~image
  in
  let report = Fpc_sched.Sched.report ~lifo_reserved ~stats st in
  (Fpc_core.State.output st, fingerprint st, report)

let scales = [ ("100", 100); ("1k", 1_000); ("10k", 10_000) ]
let preempt_quantum = 200

type acc = {
  mutable output_mismatches : int;
  mutable meter_mismatches : int;
  mutable ratios : (string * string * float) list;
  mutable flush_rates : (string * float) list;  (* preempt, per engine *)
}

(* Run all four engines under both tiers for one (policy, scale) point;
   render a table row per engine and fold mismatches into [acc].  Returns
   the run-to-yield reference output so the preempt pass can be held to
   the same bytes. *)
let run_point acc ~policy ~policy_label ~scale_label ~total ~reference =
  let config = Fpc_workload.Sessions.default ~total in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf "%s sessions (window %d, %s)" scale_label
           config.Fpc_workload.Sessions.window policy_label)
      ~columns:
        [
          ("engine", Tablefmt.Left);
          ("switch xfers", Tablefmt.Right);
          ("rs flush/xfer", Tablefmt.Right);
          ("bank ovf/call", Tablefmt.Right);
          ("frame peak", Tablefmt.Right);
          ("LIFO reserve", Tablefmt.Right);
          ("ratio", Tablefmt.Right);
        ]
  in
  let first = ref reference in
  List.iter
    (fun (name, engine) ->
      let convention = Fpc_compiler.Convention.for_engine engine in
      let src = Fpc_workload.Sessions.program config in
      let image =
        match Fpc_compiler.Compile.image ~convention src with
        | Ok i -> i
        | Error m -> failwith ("E17 compile: " ^ m)
      in
      let out_i, fp_i, report =
        run_tier ~policy ~config ~image ~engine ~compiled:false
      in
      let out_c, fp_c, _ =
        run_tier ~policy ~config ~image ~engine ~compiled:true
      in
      if out_i <> out_c then acc.output_mismatches <- acc.output_mismatches + 1;
      if fp_i <> fp_c then acc.meter_mismatches <- acc.meter_mismatches + 1;
      (match !first with
      | None -> first := Some out_i
      | Some o ->
        if out_i <> o then acc.output_mismatches <- acc.output_mismatches + 1);
      let r = report in
      acc.ratios <-
        (name, scale_label ^ "/" ^ policy_label, r.Fpc_sched.Sched.footprint_ratio)
        :: acc.ratios;
      (match policy with
      | Fpc_sched.Sched.Preempt _ ->
        acc.flush_rates <-
          (name, r.Fpc_sched.Sched.rs_flush_rate) :: acc.flush_rates
      | Fpc_sched.Sched.Run_to_yield -> ());
      Tablefmt.add_row t
        [
          name;
          Tablefmt.cell_int r.Fpc_sched.Sched.switch_xfers;
          Printf.sprintf "%.4f" r.Fpc_sched.Sched.rs_flush_rate;
          Printf.sprintf "%.4f" r.Fpc_sched.Sched.bank_overflow_rate;
          Printf.sprintf "%dw" r.Fpc_sched.Sched.frame_peak_words;
          Printf.sprintf "%dw" r.Fpc_sched.Sched.lifo_reserved_words;
          Printf.sprintf "%.4f" r.Fpc_sched.Sched.footprint_ratio;
        ])
    Harness.engines;
  Tablefmt.add_note t
    "ratio = peak live frame-heap words / LIFO per-session reservation; \
     I4's peak counts frames parked on the free-frame stack (bounded \
     over-count)";
  (Tablefmt.render t, !first)

let run () =
  let acc =
    {
      output_mismatches = 0;
      meter_mismatches = 0;
      ratios = [];
      flush_rates = [];
    }
  in
  let yield_tables = ref [] in
  let yield_out_1k = ref None in
  List.iter
    (fun (scale_label, total) ->
      let table, out =
        run_point acc ~policy:Fpc_sched.Sched.Run_to_yield
          ~policy_label:"run-to-yield" ~scale_label ~total ~reference:None
      in
      if total = 1_000 then yield_out_1k := out;
      yield_tables := table :: !yield_tables)
    scales;
  (* The preempt pass reuses the 1k run-to-yield output as its reference:
     statement-boundary injection preserves each session's sequential
     semantics and the checksum is commutative, so even host-chosen switch
     points must reproduce the same bytes. *)
  let preempt_table, _ =
    run_point acc
      ~policy:(Fpc_sched.Sched.Preempt { quantum = preempt_quantum })
      ~policy_label:(Printf.sprintf "preempt:%d" preempt_quantum)
      ~scale_label:"1k" ~total:1_000 ~reference:!yield_out_1k
  in
  let ratio_of engine point =
    let _, _, r =
      List.find (fun (n, p, _) -> n = engine && p = point) acc.ratios
    in
    r
  in
  {
    Exp.id = "E17";
    key = "sessions";
    title = "Session scheduler: the frame heap vs per-process stacks";
    paper_claim =
      "there may be a large number of processes, and the frame heap holds \
       only the frames that are actually live, instead of reserving a \
       maximum-size stack for every process (\xC2\xA75)";
    tables = List.rev !yield_tables @ [ preempt_table ];
    headlines =
      [
        ("output_mismatches", float_of_int acc.output_mismatches);
        ("meter_mismatches", float_of_int acc.meter_mismatches);
        ("footprint_ratio_i2_10k", ratio_of "I2" "10k/run-to-yield");
        ("footprint_ratio_i1_10k", ratio_of "I1" "10k/run-to-yield");
        ("footprint_ratio_i4_10k", ratio_of "I4" "10k/run-to-yield");
        ("i4_rs_flush_per_xfer_preempt", List.assoc "I4" acc.flush_rates);
        ("i3_rs_flush_per_xfer_preempt", List.assoc "I3" acc.flush_rates);
      ];
  }
