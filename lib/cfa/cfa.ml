open Fpc_machine
open Fpc_mesa

(* ---- store-hazard scan -------------------------------------------------

   A devirtualized site bakes the link-time resolution of an import into
   the code bytes.  That resolution reads, at call time, only words the
   linker wrote: the caller's LV entry, the target's GFT entries, the
   target's gf word 0 (code base), EV entries and — on the simple engine —
   its link-table pairs.  The rewrite is sound as long as no *program*
   store can reach any of those words before the site retires.

   The compiled language gives us strong static handles on stores:

   - [Sl n] / [Sg n] write a fixed slot of the current frame / global
     frame — the code generator only emits indices inside the declared
     local/global ranges, which the linker lays out strictly above the
     link vector, so they can never touch a link input;
   - [Rstore] writes through a computed address.  If the address was
     pushed by [Lla]/[Lga] it is the exact cell of a declared variable —
     safe for the same reason.  Any other provenance (a VAR parameter
     forwarded by [Ll], an arbitrary computed word) could name anything,
     including a link word;
   - [Slx]/[Sgx]/[Stfld] index with a runtime value and can escape the
     declared ranges.

   We run a linear abstract-stack scan over every procedure body in the
   image (one-pass, join-free: any jump or transfer resets the abstract
   stack, and popping from an empty abstract stack yields Unknown — both
   strictly conservative).  If any body contains a store we cannot prove
   harmless, the whole image abstains: the pass rewrites nothing rather
   than reason about which link words the store might hit.

   Deliberately out of scope (documented limitation): an interprocedural
   provenance analysis that would prove a forwarded VAR parameter safe.
   Such sites make the image abstain wholesale today. *)

type av = Safe | Unknown

let pop = function [] -> (Unknown, []) | x :: r -> (x, r)

(* [true] when every store in the body is provably unable to reach a
   link-time-resolved word.  [entry]/[len] delimit the body in absolute
   code bytes. *)
let body_store_safe ~fetch ~entry ~len =
  let limit = entry + len in
  let ok = ref true in
  let pc = ref entry in
  let stack = ref [] in
  while !ok && !pc < limit do
    match Fpc_isa.Opcode.decode ~fetch ~pc:!pc with
    | exception Invalid_argument _ -> ok := false
    | op, n ->
      pc := !pc + n;
      (match op with
      (* runtime-indexed stores can escape the declared ranges *)
      | Slx _ | Sgx _ | Stfld _ -> ok := false
      | Rstore ->
        let _value, s = pop !stack in
        let addr, s = pop s in
        (match addr with
        | Safe -> stack := s
        | Unknown -> ok := false)
      | Lla _ | Lga _ -> stack := Safe :: !stack
      | Li _ | Lpd _ | Ll _ | Lg _ | Lrc -> stack := Unknown :: !stack
      | Llx _ | Lgx _ | Rload | Ldfld _ | Neg | Bnot ->
        let _, s = pop !stack in
        stack := Unknown :: s
      | Newrec _ -> stack := Unknown :: !stack
      | Sl _ | Sg _ | Drop | Out | Freerec ->
        let _, s = pop !stack in
        stack := s
      | Dup -> (
        match !stack with
        | x :: _ -> stack := x :: !stack
        | [] -> stack := [ Unknown ])
      | Swap -> (
        match !stack with
        | a :: b :: r -> stack := b :: a :: r
        | _ -> stack := [])
      | Over -> (
        match !stack with
        | a :: b :: r -> stack := b :: a :: b :: r
        | _ -> stack := [])
      | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Lt | Le | Eq | Ne
      | Ge | Gt ->
        let _, s = pop !stack in
        let _, s = pop s in
        stack := Unknown :: s
      (* control transfers: values flow where the one-pass scan cannot
         follow, so forget everything (strictly conservative) *)
      | J _ | Jz _ | Jnz _ | Efc _ | Lfc _ | Dfc _ | Sdfc _ | Xf | Ret
      | Fork _ | Yield | Stopproc | Brk | Halt ->
        stack := []
      | Nop -> ())
  done;
  !ok

let instances_of (image : Image.t) module_name =
  List.length
    (List.filter
       (fun (ii : Image.instance_info) -> String.equal ii.ii_module module_name)
       image.dir.instances)

(* Every procedure body in the image, as (absolute entry byte, length).
   Code segments are shared by instances of a module, so the base
   instance (named like the module) covers everything once. *)
let all_bodies (image : Image.t) =
  List.concat_map
    (fun (m : Compiled.t) ->
      let ii = Image.find_instance image m.m_name in
      List.map
        (fun (p : Compiled.proc) ->
          let pi = Image.find_proc image ~instance:m.m_name ~proc:p.p_name in
          let entry = (2 * ii.ii_code_base) + pi.pi_entry_offset + 1 in
          (entry, pi.pi_body_bytes))
        m.m_procs)
    image.dir.source

let image_store_safe (image : Image.t) =
  let fetch pc = Memory.peek_code_byte image.mem ~code_base:0 ~pc in
  List.for_all (fun (entry, len) -> body_store_safe ~fetch ~entry ~len) (all_bodies image)

(* ---- the rewrite ------------------------------------------------------- *)

let poke (image : Image.t) pc b = Memory.poke_code_byte image.mem ~code_base:0 ~pc b
let peek (image : Image.t) pc = Memory.peek_code_byte image.mem ~code_base:0 ~pc

(* The 4-byte padded-EFC shape the compiler emitted (and the linker's D2
   fallback writes): wide EFC + two NOP pads.  Anything else at the site
   means the bytes are not what the compiler recorded — refuse to touch. *)
let site_is_padded_efc image ~site_abs ~lv =
  peek image site_abs = 0x90
  && peek image (site_abs + 1) = lv
  && peek image (site_abs + 2) = 0
  && peek image (site_abs + 3) = 0

(* Overwrite the padded EFC with a DIRECTCALL to [target_abs] — the 3-byte
   SHORTDIRECTCALL + pad when the displacement fits §6 D1's ±512 KB reach,
   the 4-byte absolute form otherwise.  Returns how it encoded. *)
let patch_site image ~site_abs ~target_abs =
  let lo, hi = Fpc_isa.Opcode.sdfc_range in
  let d = target_abs - site_abs in
  if d >= lo && d <= hi then begin
    let u = Fpc_util.Bits.unsigned_of_signed ~width:20 d in
    poke image site_abs (0xA0 lor (u lsr 16));
    poke image (site_abs + 1) ((u lsr 8) land 0xFF);
    poke image (site_abs + 2) (u land 0xFF);
    poke image (site_abs + 3) 0x00;
    `Short
  end
  else if target_abs >= 0 && target_abs <= 0xFFFFFF then begin
    poke image site_abs 0x92;
    poke image (site_abs + 1) ((target_abs lsr 16) land 0xFF);
    poke image (site_abs + 2) ((target_abs lsr 8) land 0xFF);
    poke image (site_abs + 3) (target_abs land 0xFF);
    `Long
  end
  else `Unreachable

(* Decode the patched bytes back and check they XFER to exactly the proven
   target — the same decode the interpreter and the relocation probes
   (E14) use, so a bad patch dies at link time, not at run time. *)
let verify_site image ~site_abs ~target_abs =
  let fetch pc = peek image pc in
  match Fpc_isa.Opcode.decode ~fetch ~pc:site_abs with
  | Fpc_isa.Opcode.Sdfc d, _ when site_abs + d = target_abs -> ()
  | Fpc_isa.Opcode.Dfc a, _ when a = target_abs -> ()
  | op, _ ->
    invalid_arg
      (Printf.sprintf "Cfa: bad rewrite at %d (decodes as %s, target %d)" site_abs
         (Fpc_isa.Opcode.to_string op) target_abs)

let devirtualize (image : Image.t) =
  (* Patches must land before the predecode table is derived from the
     code bytes; drop any table built early so it is rebuilt over the
     rewritten bytes. *)
  let store_safe = image_store_safe image in
  let sites = ref 0 and proven = ref 0 and rewritten = ref 0 and short = ref 0 in
  List.iter
    (fun (m : Compiled.t) ->
      let ii = Image.find_instance image m.m_name in
      List.iter
        (fun (p : Compiled.proc) ->
          let pi = Image.find_proc image ~instance:m.m_name ~proc:p.p_name in
          let body_abs = (2 * ii.ii_code_base) + pi.pi_entry_offset + 1 in
          List.iter
            (fun (pos, lv) ->
              incr sites;
              let site_abs = body_abs + pos in
              let tm, tp = m.m_imports.(lv) in
              (* Provably single target: the image is store-safe, the
                 target module has exactly one instance (several would
                 leave the binding to each caller's LV at run time) and
                 the target carries a DIRECTCALL header to land on.  The
                 site bytes must still be the recorded padded EFC. *)
              match Image.direct_address image ~instance:tm ~proc:tp with
              | Some target_abs
                when store_safe
                     && instances_of image tm = 1
                     && site_is_padded_efc image ~site_abs ~lv -> (
                incr proven;
                match patch_site image ~site_abs ~target_abs with
                | `Unreachable -> ()
                | (`Short | `Long) as enc ->
                  verify_site image ~site_abs ~target_abs;
                  incr rewritten;
                  if enc = `Short then incr short)
              | _ -> ())
            p.p_efc_sites)
        m.m_procs)
    image.dir.source;
  if !rewritten > 0 then image.dir.predecode <- None;
  let stats =
    {
      Image.dv_sites = !sites;
      dv_proven = !proven;
      dv_rewritten = !rewritten;
      dv_short = !short;
      dv_abstained = !sites - !rewritten;
    }
  in
  image.dir.devirt <- Some stats;
  stats
