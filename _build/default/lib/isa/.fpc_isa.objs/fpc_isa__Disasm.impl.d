lib/isa/disasm.ml: Bytes Char List Opcode Printf String
