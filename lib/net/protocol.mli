(** The few response and admin line shapes shared by both [fpc serve]
    transports (TCP and stdin), so the two behave identically.

    Requests are {!Fpc_svc.Job.parse_request} lines; everything that is
    {e not} a job result is built here: structured refusals (bad request,
    overlong line, shed) carry [id:null] so a client matching responses
    to requests can tell them from results, and the two admin commands
    ([/stats] and [shutdown]) are recognized in one place. *)

type admin =
  | Stats  (** ["/stats"]: one JSON line of pool + cache + limiter counters *)
  | Shutdown
      (** ["shutdown"]: begin a graceful drain — stop accepting, flush
          in-flight jobs, close *)

val admin_of_line : string -> admin option
(** [line] must already be trimmed. *)

val error_line : error:string -> message:string -> string
(** [{"id":null,"status":"error","error":...,"message":...}] *)

val shed_line : message:string -> string
(** [{"id":null,"status":"shed","message":...}] — the request was
    refused by admission control (or arrived during a drain) and was
    {e not} executed. *)

val draining_line : string
(** [{"status":"draining"}] — acknowledgement of a [shutdown] command. *)

val overlong_message : bytes_discarded:int -> limit:int -> string
(** The human half of the overlong-line refusal, shared verbatim by both
    transports. *)
