(** A content-addressed cache of linked program images.

    Keyed by the MD5 digest of the source text plus the calling
    convention (linkage × args-in-place) — the two inputs that determine
    the compiled image.  A hit skips the whole pipeline: lexer, parser,
    typechecker, lowering, codegen and linker.

    The cache stores {e pristine} images and never runs one: executing a
    program mutates its image (frames, globals, I1's link tables), so
    every lookup — hit or miss — hands back a private
    {!Fpc_mesa.Image.clone} that the caller may run and discard.

    All operations are thread-safe (one internal mutex); entries are
    LRU-evicted beyond [capacity].  Failed compilations are not cached —
    resubmitting a broken source pays the front-end again, which keeps
    error messages fresh and the cache free of dead entries. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64) is the maximum number of cached images; each
    holds a full simulated store (64 K words by default). *)

val capacity : t -> int

type stats = {
  hits : int;
  misses : int;  (** lookups that had to compile (including failures) *)
  evictions : int;
  entries : int;  (** currently cached *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0.0 when the cache is untouched. *)

val find_or_compile :
  ?devirt:bool ->
  t ->
  convention:Fpc_compiler.Convention.t ->
  source:string ->
  (Fpc_mesa.Image.t * bool * float, string) result
(** [(image, hit, compile_s)]: a private runnable clone, whether it was
    served from the cache, and the host seconds spent compiling (0.0 on a
    hit).  On a miss the compiled pristine image is inserted; two domains
    racing on the same key may both compile, and the loser's image is
    dropped — wasted work, never wrong results. *)

val find_pristine :
  ?tier:string ->
  ?devirt:bool ->
  t ->
  convention:Fpc_compiler.Convention.t ->
  source:string ->
  (Fpc_mesa.Image.t * string * bool * float, string) result
(** [(pristine, key, hit, compile_s)]: the cached pristine image itself
    (no clone) plus its cache key.  The caller must {e never run} the
    pristine — it is shared across domains; it is the blit source for
    {!Fpc_mesa.Image.clone} or the arena's [clone_into] reset.  The key
    is content-derived, so an arena slot keyed by it stays valid even if
    the entry is evicted and later recompiled: the recompiled pristine is
    word-identical.

    [tier] (default [""], untagged) is folded into the key, giving each
    execution tier its own pristine entry: the compiled tier attaches its
    translation to the image's shared directory, and the tag keeps that
    off the interpreter tier's entry (and off every arena slot keyed by
    it).

    [devirt] (default [false]) is likewise folded into the key and passed
    to {!Fpc_compiler.Compile.image}: the devirtualized variant has
    different code bytes (call sites rewritten to DIRECTCALL), so it gets
    its own pristine entry and its own arena slots — an arena reset
    replays operand patches against the slot's recorded pristine, which
    must be the same variant. *)
