type t = { linkage : Fpc_mesa.Image.linkage; args_in_place : bool }

let external_ = { linkage = Fpc_mesa.Image.External; args_in_place = false }
let direct = { linkage = Fpc_mesa.Image.Direct; args_in_place = false }
let short_direct = { linkage = Fpc_mesa.Image.Short_direct; args_in_place = false }

let banked ?(linkage = Fpc_mesa.Image.Direct) () = { linkage; args_in_place = true }

let for_engine (e : Fpc_core.Engine.t) =
  if Fpc_core.Engine.args_in_place e then banked ()
  else if e.return_stack_depth > 0 then direct
  else external_

let compatible t (e : Fpc_core.Engine.t) =
  Bool.equal t.args_in_place (Fpc_core.Engine.args_in_place e)
