(** The wire framing shared by every transport: newline-delimited lines
    with a maximum length, assembled from arbitrary partial reads.

    Both [fpc serve] transports (TCP and stdin) and the {!Client} read
    through this codec, so their tolerance is identical: a line longer
    than the limit is {e discarded to the next newline} and reported as
    {!item.Overlong} — the stream resynchronizes instead of wedging or
    buffering without bound, and the bytes of one bad line can never leak
    into the next request.  Trailing [\r] is stripped ([\r\n] clients
    work); a final unterminated line is returned before [Eof]. *)

type t

val default_max_line : int
(** 65536 bytes — comfortably above any suite request, far below any
    memory concern. *)

type item =
  | Line of string  (** one line, newline (and trailing [\r]) stripped *)
  | Overlong of int
      (** a line exceeded the limit; its [n] bytes (excluding the
          newline) were discarded and the stream is resynchronized *)
  | Eof

val create : ?max_line:int -> read:(bytes -> int -> int -> int) -> unit -> t
(** [read buf pos len] must behave like [Unix.read]: block until at least
    one byte is available, return [0] at end of stream.  Short reads are
    fine — that is the point.  A [read] may instead return a negative
    count to mean "no bytes right now" (see {!poll}); it will be called
    again on the next poll. *)

val of_fd : ?max_line:int -> Unix.file_descr -> t
(** Framing over a file descriptor.  [EINTR] is retried; connection-reset
    errors read as end-of-stream (a dead peer is an [Eof], not an
    exception). *)

val of_string : ?max_line:int -> string -> t
(** Framing over an in-memory string, delivered one byte per read — the
    worst-case partial-read schedule, for tests. *)

val next : t -> item
(** The next line, blocking on [read] as needed.  Raises
    [Invalid_argument] on a push-mode framing (whose reads cannot block);
    use {!poll} there. *)

val pushable : ?max_line:int -> unit -> t
(** A push-mode framing for readiness-driven callers (the reactor
    server): bytes are supplied with {!feed} as the transport delivers
    them, lines are drained with {!poll}, and {!input_closed} marks the
    end of the stream.  The line-assembly state machine — overlong
    discard and resync, [\r] stripping, final-unterminated-line flush —
    is byte-for-byte the same code the blocking transports run. *)

val feed : t -> string -> int -> int -> unit
(** [feed t s off len] appends bytes the transport just delivered.
    Raises [Invalid_argument] on a pull-mode framing, or after
    {!input_closed}. *)

val input_closed : t -> unit
(** No more bytes will ever be fed: the next {!poll} past the buffered
    data flushes any final unterminated line, then yields [Eof]. *)

val poll : t -> item option
(** The next complete item, or [None] when the framing needs more input
    (push mode with nothing buffered, and the stream still open). *)

val max_line : t -> int
