lib/machine/cost.ml:
