test/test_isa.ml: Alcotest Buffer Builder Bytes Char Disasm Fpc_isa Gen List Opcode Printf QCheck QCheck_alcotest
