let ( let* ) = Result.bind

let front_end src =
  let* prog = Fpc_lang.Parser.parse src in
  let* env = Fpc_lang.Typecheck.check prog in
  Ok (prog, env)

let modules ?(convention = Convention.external_) ?(devirt = false) src =
  let* prog, env = front_end src in
  let lowered = Lower.program prog in
  match List.map (Codegen.module_decl ~env ~convention ~devirt) lowered with
  | compiled -> Ok compiled
  | exception Invalid_argument msg -> Error msg

let image ?(convention = Convention.external_) ?(devirt = false) ?memory_words
    ?extra_instances src =
  let* compiled = modules ~convention ~devirt src in
  let* img =
    Fpc_mesa.Linker.link ~linkage:convention.Convention.linkage ~devirt ?memory_words
      ?extra_instances compiled
  in
  (* The rewrite happens on the pristine image, before any execution
     state (and thus the predecode table) is derived from it, so every
     clone — tier translations included — sees the rewritten sites. *)
  if devirt then
    match Fpc_cfa.Cfa.devirtualize img with
    | _stats -> Ok img
    | exception Invalid_argument msg -> Error msg
  else Ok img

let image_for_engine ~engine ?devirt ?memory_words src =
  image ~convention:(Convention.for_engine engine) ?devirt ?memory_words src

let run ?(engine = Fpc_core.Engine.i2) ?devirt ?max_steps ?(instance = "Main")
    ?(proc = "main") ?(args = []) src =
  let* img = image_for_engine ~engine ?devirt src in
  match
    Fpc_interp.Interp.run_program ?max_steps ~image:img ~engine ~instance ~proc
      ~args ()
  with
  | st -> Ok (Fpc_interp.Interp.outcome st)
  | exception Not_found ->
    Error (Printf.sprintf "no procedure %s.%s" instance proc)
