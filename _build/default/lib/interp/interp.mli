(** The byte-code interpreter: fetch, decode, dispatch.

    Instruction fetch itself is unmetered in every engine (the machines of
    interest all have an instruction-fetch unit; its bandwidth is not what
    the paper varies) — what distinguishes I1..I4 is the {e data}
    references and redirects performed by transfers, frame allocation and
    variable access, all charged through {!Fpc_core.Transfer} and
    {!Fpc_core.State}. *)

type outcome = {
  o_status : Fpc_core.State.status;
  o_output : int list;  (** words OUTput, in order *)
  o_stack : int list;  (** final evaluation stack, bottom first *)
  o_instructions : int;
  o_cycles : int;
  o_mem_refs : int;
}

val boot :
  image:Fpc_mesa.Image.t ->
  engine:Fpc_core.Engine.t ->
  instance:string ->
  proc:string ->
  args:int list ->
  Fpc_core.State.t
(** A machine ready to execute [instance.proc args].  Raises [Not_found]
    for an unknown procedure. *)

val step : Fpc_core.State.t -> unit
(** Execute one instruction (no-op unless the status is [Running]). *)

val run : ?max_steps:int -> Fpc_core.State.t -> unit
(** Step until the machine halts or traps; [max_steps] (default 20
    million) guards against runaways, recording a [Step_limit] trap. *)

val run_traced :
  ?max_steps:int ->
  Fpc_core.State.t ->
  on_step:(pc_abs:int -> Fpc_isa.Opcode.t -> Fpc_core.State.t -> unit) ->
  unit
(** As {!run}, invoking [on_step] with each instruction about to execute —
    the debugger/teaching hook behind [fpc trace]. *)

val outcome : Fpc_core.State.t -> outcome

val run_program :
  ?max_steps:int ->
  image:Fpc_mesa.Image.t ->
  engine:Fpc_core.Engine.t ->
  instance:string ->
  proc:string ->
  args:int list ->
  unit ->
  Fpc_core.State.t
(** [boot] then [run]; returns the final state for inspection. *)
