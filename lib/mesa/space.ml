open Fpc_machine

type call_sites = {
  efc_one_byte : int;
  efc_two_byte : int;
  lfc : int;
  dfc : int;
  sdfc : int;
  xf : int;
}

let call_site_bytes c =
  c.efc_one_byte + (2 * c.efc_two_byte) + (2 * c.lfc) + (4 * c.dfc) + (3 * c.sdfc)
  + c.xf

type report = {
  code_bytes : int;
  ev_bytes : int;
  header_bytes : int;
  fsi_bytes : int;
  body_bytes : int;
  lv_words : int;
  gft_entries_used : int;
  global_frame_overhead_words : int;
  call_sites : call_sites;
}

let empty_sites = { efc_one_byte = 0; efc_two_byte = 0; lfc = 0; dfc = 0; sdfc = 0; xf = 0 }

let scan_body image ~code_base ~(pi : Image.proc_info) sites =
  let fetch pc = Memory.peek_code_byte image.Image.mem ~code_base ~pc in
  let start = pi.pi_entry_offset + 1 in
  let stop = start + pi.pi_body_bytes in
  List.fold_left
    (fun acc (_, op) ->
      match (op : Fpc_isa.Opcode.t) with
      | Efc n when n <= Fpc_isa.Opcode.max_short_efc ->
        { acc with efc_one_byte = acc.efc_one_byte + 1 }
      | Efc _ -> { acc with efc_two_byte = acc.efc_two_byte + 1 }
      | Lfc _ -> { acc with lfc = acc.lfc + 1 }
      | Dfc _ -> { acc with dfc = acc.dfc + 1 }
      | Sdfc _ -> { acc with sdfc = acc.sdfc + 1 }
      | Xf -> { acc with xf = acc.xf + 1 }
      | _ -> acc)
    sites
    (Fpc_isa.Disasm.decode_range ~fetch ~start ~stop)

let measure (image : Image.t) =
  let modules =
    (* One representative instance per module: code is shared. *)
    List.filter
      (fun (ii : Image.instance_info) -> String.equal ii.ii_name ii.ii_module)
      image.dir.instances
  in
  let per_module (acc_code, acc_ev, acc_hdr, acc_fsi, acc_body, sites)
      (ii : Image.instance_info) =
    let m = Image.find_module image ii.ii_module in
    let nprocs = List.length m.m_procs in
    let ev = 2 * nprocs in
    let hdr, fsi, body, code_end, sites =
      List.fold_left
        (fun (hdr, fsi, body, code_end, sites) (p : Compiled.proc) ->
          let pi = Image.find_proc image ~instance:ii.ii_name ~proc:p.p_name in
          let hdr = hdr + match pi.pi_direct_offset with Some _ -> 2 | None -> 0 in
          let stop = pi.pi_entry_offset + 1 + pi.pi_body_bytes in
          let sites = scan_body image ~code_base:ii.ii_code_base ~pi sites in
          (hdr, fsi + 1, body + pi.pi_body_bytes, max code_end stop, sites))
        (0, 0, 0, ev, sites) m.m_procs
    in
    (acc_code + code_end, acc_ev + ev, acc_hdr + hdr, acc_fsi + fsi, acc_body + body, sites)
  in
  let code, ev, hdr, fsi, body, sites =
    List.fold_left per_module (0, 0, 0, 0, 0, empty_sites) modules
  in
  let lv_words =
    List.fold_left
      (fun acc (ii : Image.instance_info) -> acc + max 1 (Array.length ii.ii_imports))
      0 image.dir.instances
  in
  {
    code_bytes = code;
    ev_bytes = ev;
    header_bytes = hdr;
    fsi_bytes = fsi;
    body_bytes = body;
    lv_words;
    gft_entries_used = image.dir.gfi_cursor - 1;
    global_frame_overhead_words = 2 * List.length image.dir.instances;
    call_sites = sites;
  }

let render ~title r =
  let open Fpc_util.Tablefmt in
  let t = create ~title ~columns:[ ("component", Left); ("amount", Right) ] in
  add_row t [ "code bytes (total)"; cell_int r.code_bytes ];
  add_row t [ "  entry vectors"; cell_int r.ev_bytes ];
  add_row t [ "  direct-call headers"; cell_int r.header_bytes ];
  add_row t [ "  fsi bytes"; cell_int r.fsi_bytes ];
  add_row t [ "  instruction bytes"; cell_int r.body_bytes ];
  add_row t [ "link vector words"; cell_int r.lv_words ];
  add_row t [ "GFT entries used"; cell_int r.gft_entries_used ];
  add_row t [ "global frame overhead words"; cell_int r.global_frame_overhead_words ];
  add_row t [ "call sites: 1-byte EFC"; cell_int r.call_sites.efc_one_byte ];
  add_row t [ "call sites: 2-byte EFC"; cell_int r.call_sites.efc_two_byte ];
  add_row t [ "call sites: LFC"; cell_int r.call_sites.lfc ];
  add_row t [ "call sites: DFC"; cell_int r.call_sites.dfc ];
  add_row t [ "call sites: SDFC"; cell_int r.call_sites.sdfc ];
  add_row t [ "call sites: XF"; cell_int r.call_sites.xf ];
  add_row t [ "call-site bytes"; cell_int (call_site_bytes r.call_sites) ];
  Fpc_util.Tablefmt.render t
