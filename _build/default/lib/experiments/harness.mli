(** Shared machinery for the experiments: the engine roster and
    compile-and-run helpers over the {!Fpc_workload.Programs} suite. *)

val engines : (string * Fpc_core.Engine.t) list
(** [("I1", i1); ("I2", i2); ("I3", ...); ("I4", ...)]. *)

val engine : string -> Fpc_core.Engine.t
(** Raises [Not_found]. *)

val image_of :
  ?convention:Fpc_compiler.Convention.t -> program:string -> unit -> Fpc_mesa.Image.t
(** Compile a named suite program (failing loudly on compile errors). *)

val run_one :
  ?engine:Fpc_core.Engine.t -> program:string -> unit -> Fpc_core.State.t
(** Compile with the engine's natural convention and run [Main.main].
    Fails loudly on a trap. *)

val run_suite :
  ?engine:Fpc_core.Engine.t ->
  ?programs:string list ->
  unit ->
  (string * Fpc_core.State.t) list

val must_halt : Fpc_core.State.t -> unit
(** Raises [Failure] unless the run halted normally. *)

val ratio : int -> int -> float
(** [ratio a b] = a/b as float; 0 when [b] = 0. *)
