lib/workload/replay.ml: Alloc_vector Array Cost Fpc_baseline Fpc_frames Fpc_ifu Fpc_machine Fpc_regbank Frame Hashtbl List Memory Return_stack Size_class Stack_machine Synthetic
