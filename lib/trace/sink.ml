type t = {
  engine : string;
  ring : Event.t array;
  mutable next : int;  (* write cursor *)
  mutable len : int;  (* valid entries *)
  mutable seq : int;
  mutable dropped : int;
  mutable listener : (Event.t -> unit) option;
}

let create ?(capacity = 65536) ~engine () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    engine;
    ring = Array.make capacity Event.zero;
    next = 0;
    len = 0;
    seq = 0;
    dropped = 0;
    listener = None;
  }

let engine t = t.engine
let capacity t = Array.length t.ring

let emit t (e : Event.t) =
  let e = { e with Event.seq = t.seq } in
  t.seq <- t.seq + 1;
  (match t.listener with Some f -> f e | None -> ());
  let cap = Array.length t.ring in
  t.ring.(t.next) <- e;
  t.next <- (t.next + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let set_listener t f = t.listener <- f

let events t =
  let cap = Array.length t.ring in
  let first = (t.next - t.len + cap) mod cap in
  List.init t.len (fun i -> t.ring.((first + i) mod cap))

let total t = t.seq
let dropped t = t.dropped

let clear t =
  t.next <- 0;
  t.len <- 0;
  t.seq <- 0;
  t.dropped <- 0
