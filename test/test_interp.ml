(* End-to-end machine tests over hand-assembled modules: the interpreter,
   transfer engines, linker and allocator working together. *)

open Fpc_isa

let build_proc ops =
  let b = Builder.create () in
  List.iter (Builder.emit b) ops;
  Builder.to_bytes b

let proc ?(fixups = []) ?(lpd = []) ~name ~locals ~nargs ops =
  {
    Fpc_mesa.Compiled.p_name = name;
    p_body = build_proc ops;
    p_locals_words = locals;
    p_nargs = nargs;
    p_dfc_fixups = fixups;
    p_lpd_fixups = lpd;
    p_efc_sites = [];
  }

(* fib as hand-written byte code; fib is entry 1 of the module. *)
let fib_body ~args_in_place =
  let open Opcode in
  let prologue = if args_in_place then [] else [ Sl 0 ] in
  prologue
  @ [
      Ll 0; Li 2; Lt; Jz 5 (* -> else at +5 from this Jz *);
      (* then: return n *)
      Ll 0; Ret;
      (* else: t := fib(n-1); return fib(n-2) + t *)
      Ll 0; Li 1; Sub; Lfc 1; Sl 1;
      Ll 0; Li 2; Sub; Lfc 1;
      Ll 1; Add; Ret;
    ]

(* Jump displacements are relative to the first byte of the jump; compute
   the layout by hand is fragile, so use a builder with labels instead. *)
let fib_proc ~args_in_place =
  let open Opcode in
  let b = Builder.create () in
  let else_ = Builder.new_label b in
  if not args_in_place then Builder.emit b (Sl 0);
  Builder.emit b (Ll 0);
  Builder.emit b (Li 2);
  Builder.emit b Lt;
  Builder.jump b `Jz else_;
  Builder.emit b (Ll 0);
  Builder.emit b Ret;
  Builder.place b else_;
  List.iter (Builder.emit b)
    [ Ll 0; Li 1; Sub; Lfc 1; Sl 1; Ll 0; Li 2; Sub; Lfc 1; Ll 1; Add; Ret ];
  {
    Fpc_mesa.Compiled.p_name = "fib";
    p_body = Builder.to_bytes b;
    p_locals_words = 2;
    p_nargs = 1;
    p_dfc_fixups = [];
    p_lpd_fixups = [];
    p_efc_sites = [];
  }

let fib_module ~args_in_place =
  let open Opcode in
  let main =
    proc ~name:"main" ~locals:0 ~nargs:0 [ Li 10; Lfc 1; Out; Ret ]
  in
  {
    Fpc_mesa.Compiled.m_name = "Main";
    m_globals_words = 0;
    m_global_init = [];
    m_imports = [||];
    m_procs = [ main; fib_proc ~args_in_place ];
  }

let link_exn ?linkage modules =
  match Fpc_mesa.Linker.link ?linkage modules with
  | Ok image -> image
  | Error msg -> Alcotest.fail ("link failed: " ^ msg)

let run_fib engine ~args_in_place =
  let image = link_exn [ fib_module ~args_in_place ] in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  Fpc_interp.Interp.outcome st

let check_halted o =
  match o.Fpc_interp.Interp.o_status with
  | Fpc_core.State.Halted -> ()
  | Fpc_core.State.Running -> Alcotest.fail "still running"
  | Fpc_core.State.Trapped r ->
    Alcotest.fail ("trapped: " ^ Fpc_core.State.trap_reason_to_string r)

let test_fib_engine engine ~args_in_place () =
  let o = run_fib engine ~args_in_place in
  check_halted o;
  Alcotest.(check (list int)) "fib 10 output" [ 55 ] o.o_output

let test_fib_engines_agree () =
  let i2 = run_fib Fpc_core.Engine.i2 ~args_in_place:false in
  let i3 = run_fib (Fpc_core.Engine.i3 ()) ~args_in_place:false in
  let i1 = run_fib Fpc_core.Engine.i1 ~args_in_place:false in
  let i4 = run_fib (Fpc_core.Engine.i4 ()) ~args_in_place:true in
  Alcotest.(check (list int)) "I1 = I2 output" i2.o_output i1.o_output;
  Alcotest.(check (list int)) "I3 = I2 output" i2.o_output i3.o_output;
  Alcotest.(check (list int)) "I4 = I2 output" i2.o_output i4.o_output

let test_fib_costs_ordered () =
  let cycles e ~args_in_place = (run_fib e ~args_in_place).o_cycles in
  let i1 = cycles Fpc_core.Engine.i1 ~args_in_place:false in
  let i2 = cycles Fpc_core.Engine.i2 ~args_in_place:false in
  let i3 = cycles (Fpc_core.Engine.i3 ()) ~args_in_place:false in
  let i4 = cycles (Fpc_core.Engine.i4 ()) ~args_in_place:true in
  Alcotest.(check bool) "I2 cheaper than I1" true (i2 < i1);
  Alcotest.(check bool) "I3 cheaper than I2" true (i3 < i2);
  Alcotest.(check bool) "I4 cheaper than I3" true (i4 < i3)

(* ------------------------------------------------------------------ *)
(* Single-module machines for ISA-level behaviours. *)

let one_module ?(imports = [||]) ?(globals = 0) procs =
  { Fpc_mesa.Compiled.m_name = "M"; m_globals_words = globals; m_global_init = [];
    m_imports = imports; m_procs = procs }

let run_ops ?(engine = Fpc_core.Engine.i2) ?(locals = 4) ?(setup = fun _ -> ())
    ?(args = []) ops =
  let image = link_exn [ one_module [ proc ~name:"main" ~locals ~nargs:(List.length args) ops ] ] in
  setup image;
  let st =
    Fpc_interp.Interp.run_program ~image ~engine ~instance:"M" ~proc:"main" ~args ()
  in
  Fpc_interp.Interp.outcome st

let status_is expected (o : Fpc_interp.Interp.outcome) =
  match (expected, o.o_status) with
  | `Halted, Fpc_core.State.Halted -> ()
  | `Trap r, Fpc_core.State.Trapped r' when r = r' -> ()
  | _, Fpc_core.State.Halted -> Alcotest.fail "halted unexpectedly"
  | _, Fpc_core.State.Running -> Alcotest.fail "still running"
  | _, Fpc_core.State.Trapped r ->
    Alcotest.fail ("unexpected trap: " ^ Fpc_core.State.trap_reason_to_string r)

(* ---- arithmetic and 16-bit semantics ---- *)

let test_arithmetic_wraps () =
  let open Opcode in
  let o = run_ops [ Li 30000; Li 30000; Add; Out; Halt ] in
  status_is `Halted o;
  (* 60000 as a raw word. *)
  Alcotest.(check (list int)) "wraps to word" [ 60000 ] o.o_output;
  let o = run_ops [ Li 1; Li 2; Sub; Out; Halt ] in
  Alcotest.(check (list int)) "negative two's complement" [ 0xFFFF ] o.o_output

let test_signed_comparison () =
  let open Opcode in
  (* 0xFFFF is -1, so -1 < 1. *)
  let o = run_ops [ Li 0xFFFF; Li 1; Lt; Out; Halt ] in
  Alcotest.(check (list int)) "signed lt" [ 1 ] o.o_output

let test_division_signed () =
  let open Opcode in
  let o = run_ops [ Li 0xFFF9 (* -7 *); Li 2; Div; Out; Halt ] in
  (* OCaml-style truncation: -7 / 2 = -3 -> 0xFFFD *)
  Alcotest.(check (list int)) "signed division" [ 0xFFFD ] o.o_output

let test_indexed_locals () =
  let open Opcode in
  let o =
    run_ops ~locals:8
      [ Li 2; Li 77; Slx 3 (* local[3+2] := 77 *); Li 2; Llx 3; Out; Halt ]
  in
  Alcotest.(check (list int)) "indexed store/load" [ 77 ] o.o_output

(* ---- traps ---- *)

let test_div_zero_trap () =
  let open Opcode in
  let o = run_ops [ Li 4; Li 0; Div; Out; Halt ] in
  status_is (`Trap Fpc_core.State.Div_zero) o

let test_break_trap () =
  let o = run_ops [ Opcode.Brk; Opcode.Halt ] in
  status_is (`Trap Fpc_core.State.Break) o

let test_eval_overflow_trap () =
  let open Opcode in
  let b = Builder.create () in
  let loop = Builder.new_label b in
  Builder.place b loop;
  Builder.emit b (Li 1);
  Builder.jump b `J loop;
  let image =
    link_exn
      [ one_module
          [ { Fpc_mesa.Compiled.p_name = "main"; p_body = Builder.to_bytes b;
              p_locals_words = 1; p_nargs = 0; p_dfc_fixups = []; p_lpd_fixups = []; p_efc_sites = [] } ] ]
  in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  status_is (`Trap Fpc_core.State.Eval_overflow) (Fpc_interp.Interp.outcome st)

let test_trap_handler_resumes () =
  (* Install a handler that supplies 9999 for the failed division; the
     faulting context resumes after DIV with the handler's result — a trap
     is just another XFER (§5.1). *)
  let open Opcode in
  let handler = proc ~name:"handler" ~locals:1 ~nargs:1 [ Sl 0; Li 9999; Ret ] in
  let main =
    proc ~name:"main" ~locals:1 ~nargs:0 [ Li 4; Li 0; Div; Out; Li 5; Out; Halt ]
  in
  let image = link_exn [ one_module [ main; handler ] ] in
  Fpc_mesa.Image.set_trap_handler image
    (Fpc_mesa.Image.descriptor_of image ~instance:"M" ~proc:"handler");
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  let o = Fpc_interp.Interp.outcome st in
  status_is `Halted o;
  Alcotest.(check (list int)) "handler result replaces quotient" [ 9999; 5 ] o.o_output

let test_trap_handler_sees_code () =
  let open Opcode in
  (* The handler OUTPUTs the trap code it received as its argument. *)
  let handler = proc ~name:"handler" ~locals:1 ~nargs:1 [ Sl 0; Ll 0; Out; Li 0; Ret ] in
  let main = proc ~name:"main" ~locals:1 ~nargs:0 [ Brk; Drop; Halt ] in
  let image = link_exn [ one_module [ main; handler ] ] in
  Fpc_mesa.Image.set_trap_handler image
    (Fpc_mesa.Image.descriptor_of image ~instance:"M" ~proc:"handler");
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  let o = Fpc_interp.Interp.outcome st in
  status_is `Halted o;
  Alcotest.(check (list int)) "BRK code is 5"
    [ Fpc_core.State.trap_code Fpc_core.State.Break ]
    o.o_output

let test_illegal_instruction_fatal () =
  (* 0xFF is not an opcode; no handler can catch it. *)
  let body = Bytes.of_string "\xFF" in
  let image =
    link_exn
      [ one_module
          [ { Fpc_mesa.Compiled.p_name = "main"; p_body = body; p_locals_words = 1;
              p_nargs = 0; p_dfc_fixups = []; p_lpd_fixups = []; p_efc_sites = [] } ] ]
  in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  status_is (`Trap (Fpc_core.State.Illegal_instruction 0xFF))
    (Fpc_interp.Interp.outcome st)

let test_step_limit () =
  let open Opcode in
  let b = Builder.create () in
  let loop = Builder.new_label b in
  Builder.place b loop;
  Builder.emit b Nop;
  Builder.jump b `J loop;
  let image =
    link_exn
      [ one_module
          [ { Fpc_mesa.Compiled.p_name = "main"; p_body = Builder.to_bytes b;
              p_locals_words = 1; p_nargs = 0; p_dfc_fixups = []; p_lpd_fixups = []; p_efc_sites = [] } ] ]
  in
  let st =
    Fpc_interp.Interp.run_program ~max_steps:1000 ~image ~engine:Fpc_core.Engine.i2
      ~instance:"M" ~proc:"main" ~args:[] ()
  in
  status_is (`Trap Fpc_core.State.Step_limit) (Fpc_interp.Interp.outcome st)

(* ---- long argument records (§4) ---- *)

let test_long_argument_record () =
  let open Opcode in
  (* Caller builds a 3-field record on the frame heap and passes its
     address; the callee reads the fields and frees the record. *)
  let callee =
    proc ~name:"sum3" ~locals:2 ~nargs:1
      [
        Sl 0; (* record address *)
        Ll 0; Ldfld 0; Ll 0; Ldfld 1; Add; Ll 0; Ldfld 2; Add; Sl 1;
        Ll 0; Freerec;
        Ll 1; Ret;
      ]
  in
  let main =
    proc ~name:"main" ~locals:1 ~nargs:0
      [
        Newrec 3;
        Li 10; Stfld 0;
        Li 20; Stfld 1;
        Li 12; Stfld 2;
        Lfc 1; Out; Halt;
      ]
  in
  let image = link_exn [ one_module [ main; callee ] ] in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  let o = Fpc_interp.Interp.outcome st in
  status_is `Halted o;
  Alcotest.(check (list int)) "record fields summed" [ 42 ] o.o_output

(* ---- interface records (§3/§4: LOADLITERAL i; READFIELD f; XFER) ---- *)

let test_interface_record_call () =
  let open Opcode in
  (* Two procedures published through a two-slot interface record; the
     client calls slot 1 knowing only the record's address. *)
  let double = proc ~name:"double" ~locals:1 ~nargs:1 [ Sl 0; Ll 0; Li 2; Mul; Ret ] in
  let triple = proc ~name:"triple" ~locals:1 ~nargs:1 [ Sl 0; Ll 0; Li 3; Mul; Ret ] in
  let main =
    proc ~name:"main" ~locals:1 ~nargs:0
      [ Li 7; Li 8; Ldfld 1; Xf; Out; Halt ]
    (* stack: [7, iface@8+1 -> descriptor]; XF creates the activation *)
  in
  let image = link_exn [ one_module [ main; double; triple ] ] in
  (* Build the interface record in the reserved low words (8 and 9). *)
  let d1 = Fpc_mesa.Image.descriptor_of image ~instance:"M" ~proc:"double" in
  let d2 = Fpc_mesa.Image.descriptor_of image ~instance:"M" ~proc:"triple" in
  Fpc_machine.Memory.poke image.mem 8 (Fpc_mesa.Descriptor.pack d1);
  Fpc_machine.Memory.poke image.mem 9 (Fpc_mesa.Descriptor.pack d2);
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  let o = Fpc_interp.Interp.outcome st in
  status_is `Halted o;
  (* Slot 1 is triple; the procedure returns to main because XF set the
     returnContext, and RET follows it (F1/F3). *)
  Alcotest.(check (list int)) "triple via interface" [ 21 ] o.o_output

let test_interface_module_api () =
  let open Opcode in
  (* Same scenario through the public Fpc_core.Interface API, including a
     rebind between runs. *)
  let double = proc ~name:"double" ~locals:1 ~nargs:1 [ Sl 0; Ll 0; Li 2; Mul; Ret ] in
  let triple = proc ~name:"triple" ~locals:1 ~nargs:1 [ Sl 0; Ll 0; Li 3; Mul; Ret ] in
  (* The client body is assembled after the interface exists, since the
     record address is a literal in the call sequence. *)
  let dummy_main = proc ~name:"main" ~locals:1 ~nargs:0 [ Halt ] in
  let image = link_exn [ one_module [ dummy_main; double; triple ] ] in
  let iface =
    Fpc_core.Interface.create image
      ~slots:[| ("M", "double"); ("M", "triple") |]
  in
  Alcotest.(check int) "slot lookup" 1
    (Fpc_core.Interface.slot_index iface ~proc:"triple");
  (* Write a fresh client body; main's dummy body is 1 byte, so park the
     new one in fresh code space and repoint main's EV entry. *)
  let b = Builder.create () in
  Builder.emit b (Li 7);
  List.iter (Builder.emit b) (Fpc_core.Interface.call_sequence iface ~slot:0);
  Builder.emit b Out;
  Builder.emit b Halt;
  let body = Builder.to_bytes b in
  let pi = Fpc_mesa.Image.find_proc image ~instance:"M" ~proc:"main" in
  let cb = (Fpc_mesa.Image.find_instance image "M").ii_code_base in
  let words = Fpc_machine.Memory.words_for_bytes (Bytes.length body + 1) in
  let new_base = Fpc_mesa.Image.alloc_code image ~words in
  let new_off = (new_base * 2) - (cb * 2) in
  Fpc_machine.Memory.poke_code_byte image.mem ~code_base:new_base ~pc:0 pi.pi_fsi;
  Bytes.iteri
    (fun i c ->
      Fpc_machine.Memory.poke_code_byte image.mem ~code_base:new_base ~pc:(i + 1)
        (Char.code c))
    body;
  Fpc_machine.Memory.poke image.mem (cb + pi.pi_ev) new_off;
  Hashtbl.replace image.Fpc_mesa.Image.dir.Fpc_mesa.Image.procs ("M", "main")
    { pi with Fpc_mesa.Image.pi_entry_offset = new_off;
      pi_body_bytes = Bytes.length body };
  let run () =
    let st =
      Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
        ~proc:"main" ~args:[] ()
    in
    let o = Fpc_interp.Interp.outcome st in
    status_is `Halted o;
    o.o_output
  in
  Alcotest.(check (list int)) "slot 0 is double" [ 14 ] (run ());
  Fpc_core.Interface.rebind image iface ~slot:0 ~target:("M", "triple");
  Alcotest.(check (list int)) "rebound to triple, no code change" [ 21 ] (run ())

(* ---- F3: a rebound LV entry turns a call into a coroutine resume ---- *)

(* The partner context word lands in main's local 0; rebinding LV[0] to
   that frame mid-run exercises Linker.rebind_lv_to_frame: the subsequent
   EXTERNALCALL resumes the coroutine — the destination decides. *)
let test_lv_rebind_to_frame_full () =
  let open Opcode in
  let partner =
    proc ~name:"partner" ~locals:1 ~nargs:0
      [ Li 1; Out; Lrc; Xf; Li 2; Out; Halt ]
  in
  let main =
    proc ~name:"main" ~locals:1 ~nargs:0
      [ Lpd 0; Xf; Lrc; Sl 0 (* partner ctx *); Li 0; Out; Efc 0; Halt ]
  in
  let m =
    { Fpc_mesa.Compiled.m_name = "M"; m_globals_words = 0; m_global_init = [];
      m_imports = [| ("M", "partner") |];
      m_procs = [ { main with p_lpd_fixups = [ (0, 0) ] }; partner ] }
  in
  let image = link_exn [ m ] in
  let st =
    Fpc_interp.Interp.boot ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  (* Step until main has emitted the 0 marker (partner suspended). *)
  let rec go () =
    if Fpc_core.State.output st <> [ 1; 0 ] && st.status = Fpc_core.State.Running
    then begin
      Fpc_interp.Interp.step st;
      go ()
    end
  in
  go ();
  (* The partner's frame context is in main's local 0. *)
  let partner_lf = Fpc_machine.Memory.peek image.mem (st.lf + 0) in
  Fpc_mesa.Linker.rebind_lv_to_frame image ~instance:"M" ~lv_index:0 ~lf:partner_lf;
  Fpc_interp.Interp.run st;
  let o = Fpc_interp.Interp.outcome st in
  status_is `Halted o;
  Alcotest.(check (list int)) "EFC became a coroutine resume (F3)" [ 1; 0; 2 ]
    o.o_output

(* ---- retained frames: the coroutine partner outlives many returns ---- *)

let test_retained_frame_across_engines () =
  let open Opcode in
  let co =
    proc ~name:"co" ~locals:2 ~nargs:1
      [
        Sl 0; (* v *)
        Lrc; Sl 1; (* partner *)
        Ll 0; Li 1; Add; Ll 1; Xf; (* send v+1 back *)
        Sl 0; Lrc; Sl 1;
        Ll 0; Li 10; Mul; Ll 1; Xf;
        Drop; Li 0; Ret;
      ]
  in
  let main =
    proc ~name:"main" ~locals:1 ~nargs:0
      [
        Li 5; Lpd 0; Xf; (* start co with 5 -> get 6 *)
        Out;
        Li 7; Lrc; Xf; (* resume with 7 -> get 70 *)
        Out; Halt;
      ]
  in
  let m =
    { Fpc_mesa.Compiled.m_name = "M"; m_globals_words = 0; m_global_init = [];
      m_imports = [| ("M", "co") |];
      m_procs = [ { main with p_lpd_fixups = [ (1, 0) ] }; co ] }
  in
  List.iter
    (fun engine ->
      (* Hand-built code stores arguments itself, so only non-banked
         engines apply. *)
      let image = link_exn [ m ] in
      let st =
        Fpc_interp.Interp.run_program ~image ~engine ~instance:"M" ~proc:"main"
          ~args:[] ()
      in
      let o = Fpc_interp.Interp.outcome st in
      status_is `Halted o;
      Alcotest.(check (list int)) "retained frame" [ 6; 70 ] o.o_output)
    [ Fpc_core.Engine.i1; Fpc_core.Engine.i2; Fpc_core.Engine.i3 () ]

(* ---- arguments appear for boot ---- *)

let test_boot_args () =
  let open Opcode in
  let o = run_ops ~args:[ 30; 12 ] ~locals:2 [ Sl 1; Sl 0; Ll 0; Ll 1; Sub; Out; Halt ] in
  status_is `Halted o;
  Alcotest.(check (list int)) "args arrive" [ 18 ] o.o_output

(* ---- frame heap exhaustion is a clean stop ---- *)

let test_runaway_recursion_stops () =
  let open Opcode in
  let b = Builder.create () in
  Builder.emit b (Lfc 0);
  Builder.emit b Ret;
  let image =
    link_exn
      [ one_module
          [ { Fpc_mesa.Compiled.p_name = "main"; p_body = Builder.to_bytes b;
              p_locals_words = 1; p_nargs = 0; p_dfc_fixups = []; p_lpd_fixups = []; p_efc_sites = [] } ] ]
  in
  let st =
    Fpc_interp.Interp.run_program ~image ~engine:Fpc_core.Engine.i2 ~instance:"M"
      ~proc:"main" ~args:[] ()
  in
  status_is (`Trap Fpc_core.State.Frame_heap_exhausted) (Fpc_interp.Interp.outcome st)

let () =
  ignore fib_body;
  Alcotest.run "interp"
    [
      ( "fib",
        [
          Alcotest.test_case "I1" `Quick (test_fib_engine Fpc_core.Engine.i1 ~args_in_place:false);
          Alcotest.test_case "I2" `Quick (test_fib_engine Fpc_core.Engine.i2 ~args_in_place:false);
          Alcotest.test_case "I3" `Quick
            (test_fib_engine (Fpc_core.Engine.i3 ()) ~args_in_place:false);
          Alcotest.test_case "I4" `Quick
            (test_fib_engine (Fpc_core.Engine.i4 ()) ~args_in_place:true);
          Alcotest.test_case "engines agree" `Quick test_fib_engines_agree;
          Alcotest.test_case "cost ordering I4<I3<I2<I1" `Quick test_fib_costs_ordered;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "16-bit wrap" `Quick test_arithmetic_wraps;
          Alcotest.test_case "signed comparison" `Quick test_signed_comparison;
          Alcotest.test_case "signed division" `Quick test_division_signed;
          Alcotest.test_case "indexed locals" `Quick test_indexed_locals;
          Alcotest.test_case "boot args" `Quick test_boot_args;
        ] );
      ( "traps",
        [
          Alcotest.test_case "div by zero" `Quick test_div_zero_trap;
          Alcotest.test_case "BRK" `Quick test_break_trap;
          Alcotest.test_case "eval overflow" `Quick test_eval_overflow_trap;
          Alcotest.test_case "handler resumes" `Quick test_trap_handler_resumes;
          Alcotest.test_case "handler sees code" `Quick test_trap_handler_sees_code;
          Alcotest.test_case "illegal instruction" `Quick test_illegal_instruction_fatal;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "runaway recursion" `Quick test_runaway_recursion_stops;
        ] );
      ( "model",
        [
          Alcotest.test_case "long argument record" `Quick test_long_argument_record;
          Alcotest.test_case "interface record call" `Quick test_interface_record_call;
          Alcotest.test_case "Interface API + rebind" `Quick test_interface_module_api;
          Alcotest.test_case "LV rebound to frame (F3)" `Quick test_lv_rebind_to_frame_full;
          Alcotest.test_case "retained frames" `Quick test_retained_frame_across_engines;
        ] );
    ]
