type label = int

type jump_ref = { at : int; kind : [ `J | `Jz | `Jnz ]; target : label }

type t = {
  buf : Buffer.t;
  mutable labels : (label * int option) list;
  mutable next_label : int;
  mutable jumps : jump_ref list;
}

let create () = { buf = Buffer.create 64; labels = []; next_label = 0; jumps = [] }
let here t = Buffer.length t.buf
let emit t op = Opcode.encode op t.buf

let emit_placeholder t op =
  let pos = here t in
  emit t op;
  pos

(* EXTERNALCALL in the linker's D2 fallback shape: the wide (2-byte) EFC
   followed by two NOP pads, so the site occupies the 4 bytes a
   DIRECTCALL needs.  A link-time analysis that proves the site
   single-target can patch a [Dfc] (or [Sdfc] + NOP) over it in place;
   an unproven site simply executes the pads on return. *)
let emit_efc_padded t lv =
  if lv < 0 || lv > 0xFF then invalid_arg "Builder.emit_efc_padded: LV index";
  let pos = here t in
  Buffer.add_char t.buf '\x90';
  Buffer.add_char t.buf (Char.chr lv);
  Buffer.add_char t.buf '\000';
  Buffer.add_char t.buf '\000';
  pos

let new_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  t.labels <- (l, None) :: t.labels;
  l

let place t l =
  match List.assoc_opt l t.labels with
  | None -> invalid_arg "Builder.place: unknown label"
  | Some (Some _) -> invalid_arg "Builder.place: label placed twice"
  | Some None ->
    t.labels <- (l, Some (here t)) :: List.remove_assoc l t.labels

(* Wide jump encodings are opcode + 16-bit displacement; we emit with a
   zero displacement and patch in [to_bytes].  A displacement of zero would
   re-encode as the short form, so we force the wide opcode directly. *)
let wide_opcode = function `J -> 0x71 | `Jz -> 0x73 | `Jnz -> 0x75

let jump t kind target =
  let at = here t in
  Buffer.add_char t.buf (Char.chr (wide_opcode kind));
  Buffer.add_char t.buf '\000';
  Buffer.add_char t.buf '\000';
  t.jumps <- { at; kind; target } :: t.jumps

let to_bytes t =
  let code = Buffer.to_bytes t.buf in
  let resolve l =
    match List.assoc_opt l t.labels with
    | Some (Some off) -> off
    | Some None | None -> invalid_arg "Builder.to_bytes: unplaced label"
  in
  let patch { at; kind = _; target } =
    let d = resolve target - at in
    let u = Fpc_util.Bits.unsigned_of_signed ~width:16 d in
    Bytes.set code (at + 1) (Char.chr (u lsr 8));
    Bytes.set code (at + 2) (Char.chr (u land 0xFF))
  in
  List.iter patch t.jumps;
  code

let check_opcode bytes ~pos ~expected ~what =
  let b = Char.code (Bytes.get bytes pos) in
  if not (expected b) then
    invalid_arg (Printf.sprintf "Builder.%s: no such instruction at %d (byte 0x%02X)" what pos b)

let patch_dfc bytes ~pos ~target =
  check_opcode bytes ~pos ~expected:(fun b -> b = 0x92) ~what:"patch_dfc";
  if target < 0 || target > 0xFFFFFF then invalid_arg "Builder.patch_dfc: target out of range";
  Bytes.set bytes (pos + 1) (Char.chr ((target lsr 16) land 0xFF));
  Bytes.set bytes (pos + 2) (Char.chr ((target lsr 8) land 0xFF));
  Bytes.set bytes (pos + 3) (Char.chr (target land 0xFF))

let patch_sdfc bytes ~pos ~displacement =
  check_opcode bytes ~pos ~expected:(fun b -> b land 0xF0 = 0xA0) ~what:"patch_sdfc";
  let u = Fpc_util.Bits.unsigned_of_signed ~width:20 displacement in
  Bytes.set bytes pos (Char.chr (0xA0 lor (u lsr 16)));
  Bytes.set bytes (pos + 1) (Char.chr ((u lsr 8) land 0xFF));
  Bytes.set bytes (pos + 2) (Char.chr (u land 0xFF))

let rewrite_dfc_to_sdfc bytes ~pos ~displacement =
  check_opcode bytes ~pos ~expected:(fun b -> b = 0x92) ~what:"rewrite_dfc_to_sdfc";
  let u = Fpc_util.Bits.unsigned_of_signed ~width:20 displacement in
  Bytes.set bytes pos (Char.chr (0xA0 lor (u lsr 16)));
  Bytes.set bytes (pos + 1) (Char.chr ((u lsr 8) land 0xFF));
  Bytes.set bytes (pos + 2) (Char.chr (u land 0xFF));
  Bytes.set bytes (pos + 3) (Char.chr 0x00)
