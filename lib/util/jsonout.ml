type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let rec pretty_to buf indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        pretty_to buf (indent + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        escape_to buf k;
        Buffer.add_string buf ": ";
        pretty_to buf (indent + 1) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let pretty v =
  let buf = Buffer.create 256 in
  pretty_to buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
