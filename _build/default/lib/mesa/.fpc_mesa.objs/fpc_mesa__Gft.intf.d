lib/mesa/gft.mli: Fpc_machine
