(** Local-frame layout.

    An allocation block is [fsi; pc; returnLink; globalFrame; locals...];
    the frame pointer LF addresses the first local, so the overhead words
    sit at negative offsets.  Keeping the locals at LF+0.. is what lets a
    register bank shadow "the first 16 words of some local frame" (§7.1)
    and lets the renamed stack bank deliver arguments as the first locals
    with no data movement (§7.2).

    LF is always a multiple of four (quad-aligned blocks), so a frame
    context word has low bits 00 — the tag encoding of
    {!Fpc_mesa.Descriptor} relies on this. *)

val overhead_words : int
(** Words between the block base and LF (4: fsi, pc, returnLink,
    globalFrame). *)

val off_fsi : int  (** -4 *)

val off_pc : int  (** -3; saved byte PC relative to the code base (§5.3) *)

val off_return_link : int  (** -2; a context word *)

val off_global_frame : int  (** -1; word address of the global frame *)

val lf_of_block : int -> int
val block_of_lf : int -> int

val block_words_for_locals : int -> int
(** Block request (in words) for a frame with [n] local/argument words. *)

(** {1 Metered access (the running machine)} *)

val read_pc : Fpc_machine.Memory.t -> lf:int -> int
val write_pc : Fpc_machine.Memory.t -> lf:int -> int -> unit
val read_return_link : Fpc_machine.Memory.t -> lf:int -> int
val write_return_link : Fpc_machine.Memory.t -> lf:int -> int -> unit
val read_global_frame : Fpc_machine.Memory.t -> lf:int -> int
val write_global_frame : Fpc_machine.Memory.t -> lf:int -> int -> unit
val read_fsi : Fpc_machine.Memory.t -> lf:int -> int

(** {1 Unmetered access (linker, tests, display)} *)

val peek_pc : Fpc_machine.Memory.t -> lf:int -> int
val peek_return_link : Fpc_machine.Memory.t -> lf:int -> int
val peek_global_frame : Fpc_machine.Memory.t -> lf:int -> int
val peek_fsi : Fpc_machine.Memory.t -> lf:int -> int
