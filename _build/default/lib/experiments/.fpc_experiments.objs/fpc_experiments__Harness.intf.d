lib/experiments/harness.mli: Fpc_compiler Fpc_core Fpc_mesa
