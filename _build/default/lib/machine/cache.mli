(** A set-associative data-cache model with LRU replacement.

    §7.3 of the paper argues that register banks beat a cache for local
    variables: a bank reference takes one cycle against two for a cache hit,
    and removing local-variable traffic frees roughly half the cache
    bandwidth for other data.  Experiment E9 replays the data-reference
    stream of compiled programs through this model, once with all data
    references and once with local-frame references diverted to banks. *)

type config = {
  line_words : int;  (** words per cache line (power of two) *)
  sets : int;  (** number of sets (power of two) *)
  ways : int;  (** associativity *)
}

val default_config : config
(** 4-word lines, 64 sets, 2 ways: a small 1982-plausible data cache. *)

type t

val create : ?config:config -> unit -> t

val access : t -> address:int -> write:bool -> [ `Hit | `Miss ]
(** Touch the word at [address]; updates LRU state and counters and reports
    whether it hit. *)

val hits : t -> int
val misses : t -> int
val accesses : t -> int

val hit_rate : t -> float
(** 0 when no accesses yet. *)

val cycles : t -> params:Cost.params -> int
(** Total latency of all accesses so far: hits at [cache_hit_cycles], misses
    at [cache_hit_cycles + mem_ref_cycles * line_words] (fill the line). *)

val reset : t -> unit
