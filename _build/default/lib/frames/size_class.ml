type t = { sizes : int array }

let round_up_quad n = (n + 3) land lnot 3

let make ?(min_words = 8) ?(growth = 1.2) ?(max_words = 2048) () =
  if min_words <= 0 || max_words < min_words then invalid_arg "Size_class.make: bad sizes";
  if growth <= 1.0 then invalid_arg "Size_class.make: growth must exceed 1";
  let rec build acc exact =
    let size = round_up_quad (int_of_float (ceil exact)) in
    let size = max size (match acc with [] -> 0 | s :: _ -> s + 4) in
    if size >= max_words then List.rev (round_up_quad max_words :: acc)
    else build (size :: acc) (exact *. growth)
  in
  { sizes = Array.of_list (build [] (float_of_int (round_up_quad min_words))) }

let default = make ()
let class_count t = Array.length t.sizes

let block_words t fsi =
  if fsi < 0 || fsi >= Array.length t.sizes then
    invalid_arg (Printf.sprintf "Size_class.block_words: index %d out of range" fsi);
  t.sizes.(fsi)

let index_for_block t words =
  let n = Array.length t.sizes in
  let rec find i =
    if i >= n then None else if t.sizes.(i) >= words then Some i else find (i + 1)
  in
  find 0

let sizes t = Array.copy t.sizes
let max_block_words t = t.sizes.(Array.length t.sizes - 1)

let internal_waste t ~block_request =
  match index_for_block t block_request with
  | None -> invalid_arg "Size_class.internal_waste: request exceeds ladder"
  | Some fsi -> t.sizes.(fsi) - block_request
