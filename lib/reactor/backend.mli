(** The readiness API the event loop drives: register file descriptors,
    declare read/write interest, block until something is ready.

    A backend is a record of operations, so alternatives slot in without
    a functor dance: {!select} is the portable one ([Unix.select], fd
    numbers below FD_SETSIZE — 1024 on Linux — O(registered) per wait);
    an epoll backend would return the same record from C stubs and scale
    past that.  {!Loop.create} takes the backend as a parameter and
    never looks inside it. *)

type ready = {
  r_fd : Unix.file_descr;
  r_readable : bool;
  r_writable : bool;
}

type t = {
  name : string;
  add : Unix.file_descr -> unit;
      (** register with no interest; raises [Invalid_argument] if the fd
          is already registered *)
  modify : Unix.file_descr -> read:bool -> write:bool -> unit;
      (** replace the fd's interest set *)
  remove : Unix.file_descr -> unit;  (** forget the fd (idempotent) *)
  wait : float -> ready list;
      (** block up to [timeout] seconds (negative = forever) for
          readiness on the registered interest; an empty list is a
          legitimate timeout or spurious (EINTR) wake *)
}

val select : unit -> t
(** The [Unix.select] backend. *)

val default : unit -> t
(** The best backend available on this host (today: {!select}). *)
