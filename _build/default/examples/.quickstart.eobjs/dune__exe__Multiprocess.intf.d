examples/multiprocess.mli:
