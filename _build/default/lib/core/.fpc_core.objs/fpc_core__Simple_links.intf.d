lib/core/simple_links.mli: Fpc_mesa
