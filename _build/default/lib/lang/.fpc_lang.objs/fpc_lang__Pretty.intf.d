lib/lang/pretty.mli: Ast
