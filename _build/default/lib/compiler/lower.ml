open Fpc_lang.Ast

let is_temp name = String.length name > 0 && name.[0] = '$'

type ctx = { mutable next : int; mutable decls : stmt list }

let fresh ctx =
  let name = Printf.sprintf "$t%d" ctx.next in
  ctx.next <- ctx.next + 1;
  (* Temps carry Tint: lowered code is consumed by the code generator only,
     which treats every value as a word. *)
  ctx.decls <- Local (name, Tint, None) :: ctx.decls;
  name

(* [lower_expr] returns (prefix statements, expression) with any nested
   call hoisted; the expression itself may still BE a call (tail
   position).  [lower_inner] additionally hoists a top-level call, for use
   in operand positions. *)
let rec lower_expr ctx (e : expr) : stmt list * expr =
  match e with
  | Int _ | Bool _ | Nil | Var _ | Retctx | ProcVal _ -> ([], e)
  | Index (name, i) ->
    let p, i' = lower_inner ctx i in
    (p, Index (name, i'))
  | Unop (op, a) ->
    let p, a' = lower_inner ctx a in
    (p, Unop (op, a'))
  | Binop (op, a, b) ->
    let pa, a' = lower_inner ctx a in
    let pb, b' = lower_inner ctx b in
    (pa @ pb, Binop (op, a', b'))
  | Call (c, args) ->
    let p, args' = lower_args ctx args in
    (p, Call (c, args'))
  | Transfer (dest, values) ->
    let pd, dest' = lower_inner ctx dest in
    let pv, values' = lower_args ctx values in
    (pd @ pv, Transfer (dest', values'))

and lower_inner ctx e =
  match lower_expr ctx e with
  | p, ((Call _ | Transfer _) as call) ->
    let t = fresh ctx in
    (p @ [ Assign (t, call) ], Var t)
  | r -> r

and lower_args ctx args =
  let ps, args' = List.split (List.map (lower_inner ctx) args) in
  (List.concat ps, args')

let rec lower_stmt ctx (s : stmt) : stmt list =
  match s with
  | Local (x, t, Some e) ->
    let p, e' = lower_expr ctx e in
    p @ [ Local (x, t, Some e') ]
  | Local (_, _, None) -> [ s ]
  | Assign (x, e) ->
    let p, e' = lower_expr ctx e in
    p @ [ Assign (x, e') ]
  | AssignIdx (x, i, e) ->
    (* Both index and value must be call-free: SLX expects them stacked
       beneath each other. *)
    let pi, i' = lower_inner ctx i in
    let pe, e' = lower_inner ctx e in
    pi @ pe @ [ AssignIdx (x, i', e') ]
  | Return (Some e) ->
    let p, e' = lower_expr ctx e in
    p @ [ Return (Some e') ]
  | Return None -> [ s ]
  | Output e ->
    let p, e' = lower_expr ctx e in
    p @ [ Output e' ]
  | If (cond, then_, else_) ->
    let p, cond' = lower_inner ctx cond in
    p @ [ If (cond', lower_list ctx then_, lower_list ctx else_) ]
  | While (cond, body) ->
    (* The condition's hoisted prefix must rerun before each test, so it is
       replayed at the end of the body.  Temps are declared at procedure
       top, so the replay re-assigns rather than re-declares. *)
    let p, cond' = lower_inner ctx cond in
    p @ [ While (cond', lower_list ctx body @ p) ]
  | CallS (c, args) ->
    let p, args' = lower_args ctx args in
    p @ [ CallS (c, args') ]
  | TransferS (dest, values) ->
    let pd, dest' = lower_inner ctx dest in
    let pv, values' = lower_args ctx values in
    pd @ pv @ [ TransferS (dest', values') ]
  | ForkS (c, args) ->
    let p, args' = lower_args ctx args in
    p @ [ ForkS (c, args') ]
  | YieldS | StopS -> [ s ]

and lower_list ctx stmts = List.concat_map (lower_stmt ctx) stmts

let proc (p : proc) =
  let ctx = { next = 0; decls = [] } in
  let body = lower_list ctx p.pr_body in
  { p with pr_body = List.rev ctx.decls @ body }

let module_decl m = { m with md_procs = List.map proc m.md_procs }
let program prog = List.map module_decl prog
