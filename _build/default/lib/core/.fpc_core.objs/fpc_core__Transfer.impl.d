lib/core/transfer.ml: Alloc_vector Array Cost Descriptor Engine Eval_stack Fpc_frames Fpc_ifu Fpc_machine Fpc_mesa Fpc_regbank Frame Gft Image List Memory Queue Simple_links Size_class Stack State
