lib/machine/cache.ml: Array Cost
