lib/util/prng.mli:
