(** The linker: turns compiled modules into a runnable {!Image.t}.

    Besides initial placement, it implements the relocation freedoms §5.1
    credits to each level of indirection:

    - {!rebind_lv}: "LV permits external procedure references to be bound
      without any change to the code";
    - {!move_global_frame}: "GFT permits global frames to be moved";
    - {!move_code_segment}: "the global frame permits the code segment to
      be moved" (code swapping on unpaged machines);
    - {!move_procedure}: "EV permits a procedure to be moved in the code
      segment", e.g. replacing it by a new version of a different size;
    - {!instantiate}: a fresh instance of a module — new global frame and
      link vector, same code segment (§5.1's T3).

    Under [Direct] / [Short_direct] linkage, every single-instance
    procedure gets a two-byte global-frame header, and each import call
    compiled as a [Dfc] placeholder is bound to the target's absolute
    address ([Short_direct] additionally rewrites to the 3-byte PC-relative
    form when the target is within the ±512 KB reach).  Calls to modules
    with several instances fall back to the EXTERNALCALL path, exactly the
    D2 fallback of §6 — and images linked directly refuse the relocations
    above, which is D3. *)

val link :
  ?linkage:Image.linkage ->
  ?devirt:bool ->
  ?memory_words:int ->
  ?ladder:Fpc_frames.Size_class.t ->
  ?cost_params:Fpc_machine.Cost.params ->
  ?extra_instances:string list ->
  Compiled.t list ->
  (Image.t, string) result
(** [extra_instances] lists module names that get one additional instance
    each (repeat a name for more).  Modules listed there are linked with
    external calls even under direct linkage (D2).

    [~devirt:true] (default false) lays out DIRECTCALL headers for
    single-instance procedures even under [External] linkage, so the
    post-link devirtualization pass ({!Fpc_cfa.Cfa.devirtualize}) has
    landing pads to rewrite proven call sites onto. *)

val instantiate : Image.t -> module_name:string -> (string, string) result
(** Create another instance at run time; External-linkage images only.
    Returns the new instance name ("module#k"). *)

val rebind_lv :
  Image.t -> instance:string -> lv_index:int -> target:string * string -> unit
(** Point an LV entry at a different (instance, procedure).  No code
    changes.  Raises [Not_found] for unknown names. *)

val rebind_lv_to_frame : Image.t -> instance:string -> lv_index:int -> lf:int -> unit
(** Bind an LV entry to an {e existing frame} context: a subsequent
    EXTERNALCALL through it becomes a coroutine resume — the destination,
    not the caller, decides the discipline (F3). *)

val move_global_frame : Image.t -> instance:string -> (int, string) result
(** Copy the instance's global frame to fresh static space and update its
    GFT entries; returns the new address.  External linkage only. *)

val move_code_segment : Image.t -> module_name:string -> (int, string) result
(** Copy the module's code segment to fresh code space and update the code
    base in every instance's global frame; returns the new word address.
    External linkage only (D3: direct linkage freezes code addresses). *)

val move_procedure :
  Image.t -> module_name:string -> proc:string -> (int, string) result
(** Copy one procedure's fsi byte and body to fresh code space and repoint
    its EV entry; returns the new entry byte offset.  External linkage
    only. *)
