lib/experiments/exp.mli:
