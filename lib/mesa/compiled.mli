(** Compiler output: what the code generator hands to the linker.

    A compiled module is the unit of §5: procedures sharing a global frame,
    their code collected in one code segment with an entry vector, and a
    link vector naming the external procedures the module calls. *)

type proc = {
  p_name : string;
  p_body : bytes;  (** instruction bytes; the fsi header byte is added by the linker *)
  p_locals_words : int;  (** argument + local + temporary words (frame payload) *)
  p_nargs : int;
  p_dfc_fixups : (int * int) list;
      (** (byte offset of a [Dfc] placeholder within [p_body], LV index of
          the import it must reach) — patched at link time under direct
          linkage (§6) *)
  p_lpd_fixups : (int * int) list;
      (** (byte offset of an [Lpd] placeholder, LV index): the operand
          becomes the packed procedure descriptor of that import — the
          "procedure descriptor as a literal in the program" of §4, used
          for FORK and first-class procedure values *)
  p_efc_sites : (int * int) list;
      (** (byte offset of a padded 4-byte EXTERNALCALL within [p_body],
          LV index): sites the compiler left rewritable so a link-time
          control-flow analysis can devirtualize them to
          [Dfc]/[Sdfc] in place (see {!Builder.emit_efc_padded}) *)
}

type t = {
  m_name : string;
  m_globals_words : int;  (** user globals; the linker adds overhead words *)
  m_global_init : (int * int) list;  (** (global index, initial value) *)
  m_imports : (string * string) array;
      (** link-vector entries, in LV-index order: (module, procedure) *)
  m_procs : proc list;  (** in entry-vector order *)
}

val proc_index : t -> string -> int
(** Entry-vector index of a procedure.  Raises [Not_found]. *)

val validate : t -> (unit, string) result
(** Structural checks: distinct procedure names, at most 128 entry points
    (four biased GFT entries, §5.1), at most 256 imports, fixups inside
    bodies and naming real LV indices. *)

val max_entry_points : int
(** 128 = 4 bias values x 32 entry indices. *)
