lib/core/eval_stack.mli:
