(* Tests for the mini-Mesa front end: lexer, parser, typechecker,
   pretty-printer, and a few whole-pipeline edge cases. *)

open Fpc_lang

let qtest = QCheck_alcotest.to_alcotest

(* ---- lexer ---- *)

let toks src = List.map (fun p -> p.Lexer.tok) (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check bool) "tokens" true
    (toks "x := fib(2); -- comment\ny"
    = [
        Lexer.IDENT "x"; Lexer.PUNCT ":="; Lexer.IDENT "fib"; Lexer.PUNCT "(";
        Lexer.INT_LIT 2; Lexer.PUNCT ")"; Lexer.PUNCT ";"; Lexer.IDENT "y";
        Lexer.EOF;
      ])

let test_lexer_keywords_vs_idents () =
  Alcotest.(check bool) "IF is keyword" true (toks "IF" = [ Lexer.KW "IF"; Lexer.EOF ]);
  Alcotest.(check bool) "If is ident" true (toks "If" = [ Lexer.IDENT "If"; Lexer.EOF ]);
  Alcotest.(check bool) "MODab is ident" true
    (toks "MODab" = [ Lexer.IDENT "MODab"; Lexer.EOF ])

let test_lexer_two_char_puncts () =
  Alcotest.(check bool) "<= >= :=" true
    (toks "a<=b>=c:=d"
    = [
        Lexer.IDENT "a"; Lexer.PUNCT "<="; Lexer.IDENT "b"; Lexer.PUNCT ">=";
        Lexer.IDENT "c"; Lexer.PUNCT ":="; Lexer.IDENT "d"; Lexer.EOF;
      ])

let test_lexer_positions () =
  let ps = Lexer.tokenize "ab\n  cd" in
  match ps with
  | [ a; c; _eof ] ->
    Alcotest.(check (pair int int)) "first" (1, 1) (a.Lexer.line, a.Lexer.col);
    Alcotest.(check (pair int int)) "second" (2, 3) (c.Lexer.line, c.Lexer.col)
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_errors () =
  let rejects s =
    match Lexer.tokenize s with
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.fail ("should reject " ^ s)
  in
  rejects "a ? b";
  rejects "99999999";
  rejects "70000"

(* ---- parser ---- *)

let parse_exn src =
  match Parser.parse src with Ok p -> p | Error m -> Alcotest.fail m

let parse_expr_of src =
  (* Wrap in a minimal module to reuse the program parser. *)
  match parse_exn (Printf.sprintf "MODULE M; PROC f() = OUTPUT %s; END; END;" src) with
  | [ { md_procs = [ { pr_body = [ Ast.Output e ]; _ } ]; _ } ] -> e
  | _ -> Alcotest.fail "unexpected shape"

let test_parser_precedence () =
  let open Ast in
  Alcotest.(check bool) "mul binds tighter" true
    (parse_expr_of "1 + 2 * 3"
    = Binop (Badd, Int 1, Binop (Bmul, Int 2, Int 3)));
  Alcotest.(check bool) "left assoc" true
    (parse_expr_of "1 - 2 - 3"
    = Binop (Bsub, Binop (Bsub, Int 1, Int 2), Int 3));
  Alcotest.(check bool) "cmp above add" true
    (parse_expr_of "1 + 2 < 3 * 4"
    = Binop (Blt, Binop (Badd, Int 1, Int 2), Binop (Bmul, Int 3, Int 4)));
  Alcotest.(check bool) "AND above OR" true
    (parse_expr_of "TRUE OR FALSE AND TRUE"
    = Binop (Bor, Bool true, Binop (Band, Bool false, Bool true)));
  Alcotest.(check bool) "NOT above AND" true
    (parse_expr_of "NOT TRUE AND FALSE"
    = Binop (Band, Unop (Unot, Bool true), Bool false));
  Alcotest.(check bool) "unary minus" true
    (parse_expr_of "-1 * 2" = Binop (Bmul, Unop (Uneg, Int 1), Int 2));
  Alcotest.(check bool) "parens override" true
    (parse_expr_of "(1 + 2) * 3" = Binop (Bmul, Binop (Badd, Int 1, Int 2), Int 3))

let test_parser_calls_and_values () =
  let open Ast in
  Alcotest.(check bool) "qualified call" true
    (parse_expr_of "IO.read(1, 2)"
    = Call ({ c_module = Some "IO"; c_proc = "read" }, [ Int 1; Int 2 ]));
  Alcotest.(check bool) "proc value" true
    (parse_expr_of "@f" = ProcVal { c_module = None; c_proc = "f" });
  Alcotest.(check bool) "qualified proc value" true
    (parse_expr_of "@M.g" = ProcVal { c_module = Some "M"; c_proc = "g" });
  Alcotest.(check bool) "transfer" true
    (parse_expr_of "TRANSFER(NIL, 1)" = Transfer (Nil, [ Int 1 ]));
  Alcotest.(check bool) "index" true (parse_expr_of "a[i]" = Index ("a", Var "i"))

let test_parser_errors () =
  let rejects src =
    match Parser.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should reject: " ^ src)
  in
  rejects "MODULE M; PROC f() = x := ; END; END;";
  rejects "MODULE M; PROC f() = IF x THEN END END;";
  rejects "MODULE ; END;";
  rejects "MODULE M; PROC f( = END; END;";
  rejects "MODULE M; PROC f() = TRANSFER(); END; END;";
  rejects "MODULE M; VAR a: ARRAY 0 OF INT; END;"

(* ---- typecheck ---- *)

let check_ok src =
  match Parser.parse src with
  | Error m -> Alcotest.fail ("parse: " ^ m)
  | Ok prog -> (
    match Typecheck.check prog with
    | Ok _ -> ()
    | Error m -> Alcotest.fail ("typecheck: " ^ m))

let check_rejects src =
  match Parser.parse src with
  | Error _ -> Alcotest.fail ("should parse: " ^ src)
  | Ok prog -> (
    match Typecheck.check prog with
    | Ok _ -> Alcotest.fail ("should reject: " ^ src)
    | Error _ -> ())

let test_typecheck_positive () =
  check_ok
    {|
MODULE A;
VAR g: INT := 3;
PROC f(x: INT, VAR y: INT): INT =
  y := x + g;
  RETURN y * 2;
END;
END;
MODULE Main;
IMPORT A;
PROC main() =
  VAR v: INT := 0;
  OUTPUT A.f(1, v);
END;
END;
|};
  check_ok
    "MODULE M; PROC f() = VAR c: CONTEXT := NIL; IF c = NIL THEN OUTPUT 1; END; END; END;";
  check_ok "MODULE M; PROC f() = VAR a: ARRAY 4 OF INT; a[0] := a[1] + 2; END; END;"

let test_typecheck_negative () =
  check_rejects "MODULE M; PROC f() = OUTPUT TRUE + 1; END; END;";
  check_rejects "MODULE M; PROC f() = VAR b: BOOL := 3; END; END;";
  check_rejects "MODULE M; PROC f() = VAR c: CONTEXT := NIL; OUTPUT c + 1; END; END;";
  check_rejects "MODULE M; PROC f(x: INT) = x := TRUE; END; END;";
  check_rejects "MODULE M; PROC f() = WHILE 1 DO END; END; END;";
  check_rejects "MODULE M; PROC f(): INT = RETURN; END; END;";
  check_rejects "MODULE M; PROC f() = RETURN 3; END; END;";
  check_rejects "MODULE M; PROC f() = OUTPUT M2.g(); END; END;";
  check_rejects "MODULE M; VAR a: ARRAY 4 OF INT; PROC f() = OUTPUT a; END; END;";
  check_rejects "MODULE M; VAR a: ARRAY 4 OF INT; PROC f() = a := 1; END; END;";
  check_rejects "MODULE M; PROC f() = VAR x: INT := 0; VAR x: INT := 1; END; END;";
  check_rejects
    "MODULE M; PROC g(VAR x: INT) = END; PROC f() = FORK g(1); END; END;";
  check_rejects
    "MODULE A; PROC g() = END; END; MODULE M; PROC f() = A.g(); END; END;"
  (* A not imported *)

let test_typecheck_arrays_not_params () =
  check_rejects "MODULE M; PROC f(a: ARRAY 4 OF INT) = END; END;"

(* ---- pretty round trips on deliberately gnarly ASTs ---- *)

let gen_expr_arb =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Ast.Int v) (int_bound 65535);
        map (fun b -> Ast.Bool b) bool;
        return Ast.Nil;
        return Ast.Retctx;
        return (Ast.Var "x");
        return (Ast.Index ("arr", Ast.Int 1));
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl
                 Ast.[ Badd; Bsub; Bmul; Bdiv; Bmod; Blt; Beq; Band; Bor ])
              (go (depth - 1)) (go (depth - 1)) );
          (1, map (fun e -> Ast.Unop (Ast.Uneg, e)) (go (depth - 1)));
          (1, map (fun e -> Ast.Unop (Ast.Unot, e)) (go (depth - 1)));
          ( 1,
            map
              (fun args -> Ast.Call ({ c_module = None; c_proc = "f" }, args))
              (list_size (int_bound 3) (go (depth - 1))) );
          ( 1,
            map
              (fun vs -> Ast.Transfer (Ast.Var "x", vs))
              (list_size (int_bound 2) (go (depth - 1))) );
        ]
  in
  QCheck.make ~print:Pretty.expr_to_string (go 4)

let prop_pretty_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pretty: expression round trip" gen_expr_arb
    (fun e ->
      let src =
        Printf.sprintf "MODULE M; PROC f() = OUTPUT %s; END; END;"
          (Pretty.expr_to_string e)
      in
      match Parser.parse src with
      | Error _ -> false
      | Ok [ { md_procs = [ { pr_body = [ Ast.Output e' ]; _ } ]; _ } ] -> e = e'
      | Ok _ -> false)

(* ---- whole-pipeline edge cases ---- *)

let test_module_with_40_procs_runs () =
  (* Exercises the GFT bias machinery from source level: procedure 35 of a
     40-procedure module is called across a module boundary. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "MODULE Big;\n";
  for i = 0 to 39 do
    Buffer.add_string buf
      (Printf.sprintf "PROC p%d(x: INT): INT = RETURN x + %d; END;\n" i i)
  done;
  Buffer.add_string buf "END;\nMODULE Main;\nIMPORT Big;\nPROC main() =\n";
  Buffer.add_string buf "  OUTPUT Big.p35(1000);\n  OUTPUT Big.p0(1);\nEND;\nEND;\n";
  let src = Buffer.contents buf in
  List.iter
    (fun engine ->
      match Fpc_compiler.Compile.run ~engine src with
      | Error m -> Alcotest.fail m
      | Ok o -> Alcotest.(check (list int)) "outputs" [ 1035; 1 ] o.o_output)
    [ Fpc_core.Engine.i1; Fpc_core.Engine.i2; Fpc_core.Engine.i3 ();
      Fpc_core.Engine.i4 () ]

let test_deep_expression_spills () =
  (* A long left-leaning sum stays within the 16-word evaluation stack. *)
  let sum = String.concat " + " (List.init 40 string_of_int) in
  let src = Printf.sprintf "MODULE Main; PROC main() = OUTPUT %s; END; END;" sum in
  match Fpc_compiler.Compile.run src with
  | Error m -> Alcotest.fail m
  | Ok o -> Alcotest.(check (list int)) "sum 0..39" [ 780 ] o.o_output

let test_while_condition_with_call () =
  (* The lowering pass must replay the condition's hoisted call at the end
     of the loop body. *)
  let src =
    {|
MODULE Main;
VAR n: INT := 0;
PROC tick(): INT =
  n := n + 1;
  RETURN n;
END;
PROC main() =
  WHILE tick() < 4 DO
    OUTPUT n;
  END;
  OUTPUT 100 + n;
END;
END;
|}
  in
  match Fpc_compiler.Compile.run src with
  | Error m -> Alcotest.fail m
  | Ok o -> Alcotest.(check (list int)) "loop with call condition" [ 1; 2; 3; 104 ] o.o_output

let test_empty_procedure_bodies () =
  let src =
    "MODULE Main; PROC noop() = END; PROC main() = noop(); OUTPUT 1; END; END;"
  in
  match Fpc_compiler.Compile.run src with
  | Error m -> Alcotest.fail m
  | Ok o -> Alcotest.(check (list int)) "noop" [ 1 ] o.o_output

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "keywords vs idents" `Quick test_lexer_keywords_vs_idents;
          Alcotest.test_case "two-char puncts" `Quick test_lexer_two_char_puncts;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "calls and values" `Quick test_parser_calls_and_values;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "positive" `Quick test_typecheck_positive;
          Alcotest.test_case "negative" `Quick test_typecheck_negative;
          Alcotest.test_case "arrays not params" `Quick test_typecheck_arrays_not_params;
        ] );
      ( "pretty",
        [ qtest prop_pretty_expr_roundtrip ] );
      ( "pipeline",
        [
          Alcotest.test_case "40-proc module (bias)" `Quick test_module_with_40_procs_runs;
          Alcotest.test_case "deep expression" `Quick test_deep_expression_spills;
          Alcotest.test_case "call in WHILE condition" `Quick test_while_condition_with_call;
          Alcotest.test_case "empty bodies" `Quick test_empty_procedure_bodies;
        ] );
    ]
