type t =
  | Li of int
  | Lpd of int
  | Ll of int
  | Sl of int
  | Lg of int
  | Sg of int
  | Lla of int
  | Lga of int
  | Llx of int
  | Slx of int
  | Lgx of int
  | Sgx of int
  | Rload
  | Rstore
  | Ldfld of int
  | Stfld of int
  | Newrec of int
  | Freerec
  | Dup
  | Drop
  | Swap
  | Over
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Neg
  | Band
  | Bor
  | Bxor
  | Bnot
  | Lt
  | Le
  | Eq
  | Ne
  | Ge
  | Gt
  | J of int
  | Jz of int
  | Jnz of int
  | Efc of int
  | Lfc of int
  | Dfc of int
  | Sdfc of int
  | Xf
  | Ret
  | Lrc
  | Fork of int
  | Yield
  | Stopproc
  | Out
  | Nop
  | Brk
  | Halt

let max_short_efc = 15
let sdfc_range = (-(1 lsl 19), (1 lsl 19) - 1)

let fits_signed8 d = d >= -128 && d <= 127

let encoded_length = function
  | Nop | Halt | Brk | Out | Ret | Xf | Lrc | Yield | Stopproc | Dup | Drop
  | Swap | Over | Rload | Rstore | Freerec | Add | Sub | Mul | Div | Mod | Neg
  | Band | Bor | Bxor | Bnot | Lt | Le | Eq | Ne | Ge | Gt ->
    1
  | Li n -> if n >= 0 && n <= 10 then 1 else if n <= 255 then 2 else 3
  | Lpd _ -> 3
  | Ll n | Sl n | Lg n | Sg n -> if n <= 7 then 1 else 2
  | Lla _ | Lga _ | Llx _ | Slx _ | Lgx _ | Sgx _ | Ldfld _ | Stfld _ | Newrec _
  | Fork _ ->
    2
  | J d | Jz d | Jnz d -> if fits_signed8 d then 2 else 3
  | Efc n -> if n <= max_short_efc then 1 else 2
  | Lfc _ -> 2
  | Dfc _ -> 4
  | Sdfc _ -> 3

let check ~what ~lo ~hi n =
  if n < lo || n > hi then
    invalid_arg (Printf.sprintf "Opcode.encode: %s operand %d out of [%d,%d]" what n lo hi)

let byte buf b = Buffer.add_char buf (Char.chr (b land 0xFF))

let word16 buf w =
  byte buf (w lsr 8);
  byte buf w

let arith_base = 0x10

let arith_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4 | Neg -> 5
  | Band -> 6 | Bor -> 7 | Bxor -> 8 | Bnot -> 9 | Lt -> 10 | Le -> 11
  | Eq -> 12 | Ne -> 13 | Ge -> 14 | Gt -> 15
  | _ -> invalid_arg "arith_code"

let encode op buf =
  match op with
  | Nop -> byte buf 0x00
  | Halt -> byte buf 0x01
  | Brk -> byte buf 0x02
  | Out -> byte buf 0x03
  | Ret -> byte buf 0x04
  | Xf -> byte buf 0x05
  | Lrc -> byte buf 0x06
  | Yield -> byte buf 0x07
  | Stopproc -> byte buf 0x08
  | Fork n ->
    check ~what:"FORK" ~lo:0 ~hi:255 n;
    byte buf 0x09;
    byte buf n
  | Dup -> byte buf 0x0A
  | Drop -> byte buf 0x0B
  | Swap -> byte buf 0x0C
  | Over -> byte buf 0x0D
  | Rload -> byte buf 0x0E
  | Rstore -> byte buf 0x0F
  | (Add | Sub | Mul | Div | Mod | Neg | Band | Bor | Bxor | Bnot | Lt | Le
    | Eq | Ne | Ge | Gt) as a ->
    byte buf (arith_base + arith_code a)
  | Li n ->
    check ~what:"LI" ~lo:0 ~hi:0xFFFF n;
    if n <= 10 then byte buf (0x20 + n)
    else if n <= 255 then begin byte buf 0x2B; byte buf n end
    else begin byte buf 0x2C; word16 buf n end
  | Lpd w ->
    check ~what:"LPD" ~lo:0 ~hi:0xFFFF w;
    byte buf 0x2D;
    word16 buf w
  | Newrec n ->
    check ~what:"NEWREC" ~lo:1 ~hi:255 n;
    byte buf 0x2E;
    byte buf n
  | Freerec -> byte buf 0x2F
  | Ll n ->
    check ~what:"LL" ~lo:0 ~hi:255 n;
    if n <= 7 then byte buf (0x30 + n) else begin byte buf 0x38; byte buf n end
  | Sl n ->
    check ~what:"SL" ~lo:0 ~hi:255 n;
    if n <= 7 then byte buf (0x40 + n) else begin byte buf 0x48; byte buf n end
  | Lg n ->
    check ~what:"LG" ~lo:0 ~hi:255 n;
    if n <= 7 then byte buf (0x50 + n) else begin byte buf 0x58; byte buf n end
  | Sg n ->
    check ~what:"SG" ~lo:0 ~hi:255 n;
    if n <= 7 then byte buf (0x60 + n) else begin byte buf 0x68; byte buf n end
  | Lla n ->
    check ~what:"LLA" ~lo:0 ~hi:255 n;
    byte buf 0x69;
    byte buf n
  | Lga n ->
    check ~what:"LGA" ~lo:0 ~hi:255 n;
    byte buf 0x6A;
    byte buf n
  | Llx n ->
    check ~what:"LLX" ~lo:0 ~hi:255 n;
    byte buf 0x76;
    byte buf n
  | Slx n ->
    check ~what:"SLX" ~lo:0 ~hi:255 n;
    byte buf 0x77;
    byte buf n
  | Lgx n ->
    check ~what:"LGX" ~lo:0 ~hi:255 n;
    byte buf 0x78;
    byte buf n
  | Sgx n ->
    check ~what:"SGX" ~lo:0 ~hi:255 n;
    byte buf 0x79;
    byte buf n
  | Ldfld n ->
    check ~what:"LDFLD" ~lo:0 ~hi:255 n;
    byte buf 0x6B;
    byte buf n
  | Stfld n ->
    check ~what:"STFLD" ~lo:0 ~hi:255 n;
    byte buf 0x6C;
    byte buf n
  | J d ->
    if fits_signed8 d then begin
      byte buf 0x70;
      byte buf (Fpc_util.Bits.unsigned_of_signed ~width:8 d)
    end
    else begin
      check ~what:"JW" ~lo:(-32768) ~hi:32767 d;
      byte buf 0x71;
      word16 buf (Fpc_util.Bits.unsigned_of_signed ~width:16 d)
    end
  | Jz d ->
    if fits_signed8 d then begin
      byte buf 0x72;
      byte buf (Fpc_util.Bits.unsigned_of_signed ~width:8 d)
    end
    else begin
      check ~what:"JZW" ~lo:(-32768) ~hi:32767 d;
      byte buf 0x73;
      word16 buf (Fpc_util.Bits.unsigned_of_signed ~width:16 d)
    end
  | Jnz d ->
    if fits_signed8 d then begin
      byte buf 0x74;
      byte buf (Fpc_util.Bits.unsigned_of_signed ~width:8 d)
    end
    else begin
      check ~what:"JNZW" ~lo:(-32768) ~hi:32767 d;
      byte buf 0x75;
      word16 buf (Fpc_util.Bits.unsigned_of_signed ~width:16 d)
    end
  | Efc n ->
    check ~what:"EFC" ~lo:0 ~hi:255 n;
    if n <= max_short_efc then byte buf (0x80 + n)
    else begin byte buf 0x90; byte buf n end
  | Lfc n ->
    check ~what:"LFC" ~lo:0 ~hi:255 n;
    byte buf 0x91;
    byte buf n
  | Dfc a ->
    check ~what:"DFC" ~lo:0 ~hi:0xFFFFFF a;
    byte buf 0x92;
    byte buf (a lsr 16);
    byte buf (a lsr 8);
    byte buf a
  | Sdfc d ->
    let lo, hi = sdfc_range in
    check ~what:"SDFC" ~lo ~hi d;
    let u = Fpc_util.Bits.unsigned_of_signed ~width:20 d in
    byte buf (0xA0 lor (u lsr 16));
    byte buf (u lsr 8);
    byte buf u

let decode ~fetch ~pc =
  let b0 = fetch pc in
  let b1 () = fetch (pc + 1) in
  let b2 () = fetch (pc + 2) in
  let b3 () = fetch (pc + 3) in
  let w16 () = (b1 () lsl 8) lor b2 () in
  let s8 () = Fpc_util.Bits.signed_of_unsigned ~width:8 (b1 ()) in
  let s16 () = Fpc_util.Bits.signed_of_unsigned ~width:16 (w16 ()) in
  match b0 with
  | 0x00 -> (Nop, 1)
  | 0x01 -> (Halt, 1)
  | 0x02 -> (Brk, 1)
  | 0x03 -> (Out, 1)
  | 0x04 -> (Ret, 1)
  | 0x05 -> (Xf, 1)
  | 0x06 -> (Lrc, 1)
  | 0x07 -> (Yield, 1)
  | 0x08 -> (Stopproc, 1)
  | 0x09 -> (Fork (b1 ()), 2)
  | 0x0A -> (Dup, 1)
  | 0x0B -> (Drop, 1)
  | 0x0C -> (Swap, 1)
  | 0x0D -> (Over, 1)
  | 0x0E -> (Rload, 1)
  | 0x0F -> (Rstore, 1)
  | b when b >= 0x10 && b <= 0x1F ->
    let ops =
      [| Add; Sub; Mul; Div; Mod; Neg; Band; Bor; Bxor; Bnot; Lt; Le; Eq; Ne; Ge; Gt |]
    in
    (ops.(b - 0x10), 1)
  | b when b >= 0x20 && b <= 0x2A -> (Li (b - 0x20), 1)
  | 0x2B -> (Li (b1 ()), 2)
  | 0x2C -> (Li (w16 ()), 3)
  | 0x2D -> (Lpd (w16 ()), 3)
  | 0x2E -> (Newrec (b1 ()), 2)
  | 0x2F -> (Freerec, 1)
  | b when b >= 0x30 && b <= 0x37 -> (Ll (b - 0x30), 1)
  | 0x38 -> (Ll (b1 ()), 2)
  | b when b >= 0x40 && b <= 0x47 -> (Sl (b - 0x40), 1)
  | 0x48 -> (Sl (b1 ()), 2)
  | b when b >= 0x50 && b <= 0x57 -> (Lg (b - 0x50), 1)
  | 0x58 -> (Lg (b1 ()), 2)
  | b when b >= 0x60 && b <= 0x67 -> (Sg (b - 0x60), 1)
  | 0x68 -> (Sg (b1 ()), 2)
  | 0x69 -> (Lla (b1 ()), 2)
  | 0x6A -> (Lga (b1 ()), 2)
  | 0x6B -> (Ldfld (b1 ()), 2)
  | 0x6C -> (Stfld (b1 ()), 2)
  | 0x70 -> (J (s8 ()), 2)
  | 0x71 -> (J (s16 ()), 3)
  | 0x72 -> (Jz (s8 ()), 2)
  | 0x73 -> (Jz (s16 ()), 3)
  | 0x74 -> (Jnz (s8 ()), 2)
  | 0x75 -> (Jnz (s16 ()), 3)
  | 0x76 -> (Llx (b1 ()), 2)
  | 0x77 -> (Slx (b1 ()), 2)
  | 0x78 -> (Lgx (b1 ()), 2)
  | 0x79 -> (Sgx (b1 ()), 2)
  | b when b >= 0x80 && b <= 0x8F -> (Efc (b - 0x80), 1)
  | 0x90 -> (Efc (b1 ()), 2)
  | 0x91 -> (Lfc (b1 ()), 2)
  | 0x92 -> (Dfc ((b1 () lsl 16) lor (b2 () lsl 8) lor b3 ()), 4)
  | b when b >= 0xA0 && b <= 0xAF ->
    let u = ((b land 0xF) lsl 16) lor (b1 () lsl 8) lor b2 () in
    (Sdfc (Fpc_util.Bits.signed_of_unsigned ~width:20 u), 3)
  | b -> invalid_arg (Printf.sprintf "Opcode.decode: illegal opcode byte 0x%02X at %d" b pc)

let to_string = function
  | Li n -> Printf.sprintf "LI %d" n
  | Lpd w -> Printf.sprintf "LPD 0x%04X" w
  | Ll n -> Printf.sprintf "LL %d" n
  | Sl n -> Printf.sprintf "SL %d" n
  | Lg n -> Printf.sprintf "LG %d" n
  | Sg n -> Printf.sprintf "SG %d" n
  | Lla n -> Printf.sprintf "LLA %d" n
  | Lga n -> Printf.sprintf "LGA %d" n
  | Llx n -> Printf.sprintf "LLX %d" n
  | Slx n -> Printf.sprintf "SLX %d" n
  | Lgx n -> Printf.sprintf "LGX %d" n
  | Sgx n -> Printf.sprintf "SGX %d" n
  | Rload -> "RLOAD"
  | Rstore -> "RSTORE"
  | Ldfld n -> Printf.sprintf "LDFLD %d" n
  | Stfld n -> Printf.sprintf "STFLD %d" n
  | Newrec n -> Printf.sprintf "NEWREC %d" n
  | Freerec -> "FREEREC"
  | Dup -> "DUP"
  | Drop -> "DROP"
  | Swap -> "SWAP"
  | Over -> "OVER"
  | Add -> "ADD"
  | Sub -> "SUB"
  | Mul -> "MUL"
  | Div -> "DIV"
  | Mod -> "MOD"
  | Neg -> "NEG"
  | Band -> "AND"
  | Bor -> "OR"
  | Bxor -> "XOR"
  | Bnot -> "NOT"
  | Lt -> "LT"
  | Le -> "LE"
  | Eq -> "EQ"
  | Ne -> "NE"
  | Ge -> "GE"
  | Gt -> "GT"
  | J d -> Printf.sprintf "J %+d" d
  | Jz d -> Printf.sprintf "JZ %+d" d
  | Jnz d -> Printf.sprintf "JNZ %+d" d
  | Efc n -> Printf.sprintf "EFC %d" n
  | Lfc n -> Printf.sprintf "LFC %d" n
  | Dfc a -> Printf.sprintf "DFC 0x%06X" a
  | Sdfc d -> Printf.sprintf "SDFC %+d" d
  | Xf -> "XF"
  | Ret -> "RET"
  | Lrc -> "LRC"
  | Fork n -> Printf.sprintf "FORK %d" n
  | Yield -> "YIELD"
  | Stopproc -> "STOPPROC"
  | Out -> "OUT"
  | Nop -> "NOP"
  | Brk -> "BRK"
  | Halt -> "HALT"

let equal a b = a = b

let is_transfer = function
  | Efc _ | Lfc _ | Dfc _ | Sdfc _ | Xf | Ret -> true
  | Li _ | Lpd _ | Ll _ | Sl _ | Lg _ | Sg _ | Lla _ | Lga _ | Llx _ | Slx _
  | Lgx _ | Sgx _ | Rload | Rstore
  | Ldfld _ | Stfld _ | Newrec _ | Freerec | Dup | Drop | Swap | Over | Add
  | Sub | Mul | Div | Mod | Neg | Band | Bor | Bxor | Bnot | Lt | Le | Eq | Ne
  | Ge | Gt | J _ | Jz _ | Jnz _ | Lrc | Fork _ | Yield | Stopproc | Out | Nop
  | Brk | Halt ->
    false
