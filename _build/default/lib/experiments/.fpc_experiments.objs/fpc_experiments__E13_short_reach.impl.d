lib/experiments/e13_short_reach.ml: Exp Fpc_compiler Fpc_mesa Fpc_util Harness List Tablefmt
