lib/lang/lexer.mli:
