lib/experiments/e03_indirection_chain.ml: Buffer Convention Cost Descriptor Exp Fpc_compiler Fpc_core Fpc_interp Fpc_machine Fpc_mesa Fpc_util Gft Harness Image List Printf Tablefmt
