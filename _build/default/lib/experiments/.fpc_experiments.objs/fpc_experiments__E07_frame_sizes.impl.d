lib/experiments/e07_frame_sizes.ml: Exp Fpc_core Fpc_mesa Fpc_util Fpc_workload Harness Hashtbl Histogram List Printf Tablefmt
