type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: fast, well distributed, and trivially portable; exactly the
   reference constants. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t ~bound:(hi - lo + 1)

let float t = Stdlib.float_of_int (next t) /. 4611686018427387904.0
let bool t = next t land 1 = 1
let chance t ~p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t ~bound:(Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted: weights sum to zero";
  let x = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 choices

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  let rec loop n = if chance t ~p then n else loop (n + 1) in
  loop 0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
