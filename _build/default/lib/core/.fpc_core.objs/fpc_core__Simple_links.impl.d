lib/core/simple_links.ml: Array Compiled Fpc_machine Fpc_mesa Hashtbl Image List Memory
