(** Calling conventions: the compiler-visible half of an engine choice.

    [linkage] decides how inter-module calls are encoded (§5's compact
    EXTERNALCALL vs §6's early-bound DIRECTCALL / SHORTDIRECTCALL);
    [args_in_place] elides the argument-store prologue because the renamed
    stack bank already delivers arguments as the first locals (§7.2) — it
    must match the engine the image will run on ({!Fpc_core.Engine}).

    §2's point is exactly this split: changing the {e encoding} requires
    recompilation but not source changes; changing the {e interpreter}
    requires neither. *)

type t = { linkage : Fpc_mesa.Image.linkage; args_in_place : bool }

val external_ : t
(** §5 encoding with the prologue: pairs with engines I1, I2, I3. *)

val direct : t
(** §6 early binding, prologue kept: pairs with I2/I3 (the IFU makes it
    fast under I3). *)

val short_direct : t

val banked : ?linkage:Fpc_mesa.Image.linkage -> unit -> t
(** args-in-place for bank engines (I4); default linkage [Direct]. *)

val for_engine : Fpc_core.Engine.t -> t
(** The natural pairing: I1/I2 external, I3 direct, I4 banked-direct. *)

val compatible : t -> Fpc_core.Engine.t -> bool
(** True when an image compiled this way can run on that engine
    (args_in_place must agree with the engine's banks). *)
