(* lib/sched: scheduling must never change what a program computes.
   The qcheck property drives one session workload (random seed and
   shape) through the scheduler on all four engines under both execution
   tiers — plain and traced — and requires byte-identical outputs
   everywhere plus bit-identical meters between tiers per engine.  The
   unit tests pin the policy parser, fuel-slice resumability and the
   preemptive policy's determinism. *)

let engines =
  [
    ("i1", Fpc_core.Engine.i1);
    ("i2", Fpc_core.Engine.i2);
    ("i3", Fpc_core.Engine.i3 ());
    ("i4", Fpc_core.Engine.i4 ());
  ]

let image_for ~engine source =
  let convention = Fpc_compiler.Convention.for_engine engine in
  match Fpc_compiler.Compile.image ~convention source with
  | Ok i -> i
  | Error m -> failwith m

let fingerprint (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( Fpc_core.State.output st,
    m.instructions,
    Fpc_machine.Cost.cycles st.cost,
    Fpc_machine.Cost.mem_refs st.cost,
    (m.calls, m.returns, m.other_xfers, m.fast_transfers),
    (m.procs_forked, m.procs_ended, m.peak_live_procs) )

(* One scheduled run: boot a fresh clone, drive it with Sched.run under
   [policy] on the chosen tier, optionally traced, and require a clean
   halt.  Returns the fingerprint (plus the traced profile summary when
   tracing). *)
let sched_run ?(policy = Fpc_sched.Sched.Run_to_yield) ?(traced = false)
    ~engine ~compiled source =
  let image = Fpc_mesa.Image.clone (image_for ~engine source) in
  let profiler =
    if traced then Some (Fpc_interp.Profiler.create ~image ~engine ())
    else None
  in
  let st =
    Fpc_interp.Interp.boot
      ?tracer:(Option.map (fun p -> p.Fpc_interp.Profiler.sink) profiler)
      ~image ~engine ~instance:"Main" ~proc:"main" ~args:[] ()
  in
  let step =
    if compiled then (
      let tr = Fpc_tier.Tier.translate image in
      fun n st -> Fpc_tier.Tier.run ~max_steps:n tr st)
    else fun n st -> Fpc_interp.Interp.run ~max_steps:n st
  in
  let stats = Fpc_sched.Sched.run ~policy ~step ~fuel:5_000_000 st in
  (match st.Fpc_core.State.status with
  | Fpc_core.State.Halted -> ()
  | _ -> failwith "scheduled workload did not halt");
  let profile =
    Option.map
      (fun p ->
        ignore
          (Fpc_trace.Profile.finish p.Fpc_interp.Profiler.profile
             ~cycles:(Fpc_machine.Cost.cycles st.cost)
             ~mem_refs:(Fpc_machine.Cost.mem_refs st.cost));
        Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile)
      profiler
  in
  (fingerprint st, stats, profile)

let source_of ~seed ~total ~window =
  let c = Fpc_workload.Sessions.default ~total in
  Fpc_workload.Sessions.program
    { c with Fpc_workload.Sessions.window; seed }

(* ---- the determinism property ---- *)

let determinism_prop =
  QCheck.Test.make ~count:12
    ~name:
      "scheduler determinism: outputs across engines, meters across tiers \
       (incl. traced)"
    QCheck.(
      make
        ~print:(fun (s, t, w) -> Printf.sprintf "seed=%d total=%d window=%d" s t w)
        Gen.(triple (int_range 0 10_000) (int_range 4 48) (int_range 2 8)))
    (fun (seed, total, window) ->
      let source = source_of ~seed ~total ~window in
      let runs =
        List.map
          (fun (en, engine) ->
            let fp_i, _, _ = sched_run ~engine ~compiled:false source in
            let fp_c, _, _ = sched_run ~engine ~compiled:true source in
            let fp_it, _, p_i = sched_run ~traced:true ~engine ~compiled:false source in
            let fp_ct, _, p_c = sched_run ~traced:true ~engine ~compiled:true source in
            if fp_i <> fp_c then
              QCheck.Test.fail_reportf "tiers diverged under %s" en;
            if fp_it <> fp_i then
              QCheck.Test.fail_reportf "tracing changed the run under %s" en;
            if fp_ct <> fp_it || p_i <> p_c then
              QCheck.Test.fail_reportf
                "traced tier run diverged under %s" en;
            (en, fp_i))
          engines
      in
      let output (_, (o, _, _, _, _, _)) = o in
      match runs with
      | [] -> true
      | first :: rest ->
        List.for_all
          (fun r ->
            if output r <> output first then
              QCheck.Test.fail_reportf "outputs differ: %s vs %s" (fst first)
                (fst r)
            else true)
          rest)

(* Preemption must preserve per-engine tier identity (and, because the
   generated workload's checksum is interleaving-insensitive and injected
   yields sit at statement boundaries, the bytes of the output too). *)
let preempt_determinism_prop =
  QCheck.Test.make ~count:8
    ~name:"preempt: tier-identical meters, yield-identical output"
    QCheck.(
      make
        ~print:(fun (s, q) -> Printf.sprintf "seed=%d quantum=%d" s q)
        Gen.(pair (int_range 0 10_000) (int_range 50 800)))
    (fun (seed, quantum) ->
      let source = source_of ~seed ~total:24 ~window:4 in
      let policy = Fpc_sched.Sched.Preempt { quantum } in
      List.for_all
        (fun (en, engine) ->
          let fp_y, _, _ = sched_run ~engine ~compiled:false source in
          let fp_i, _, _ = sched_run ~policy ~engine ~compiled:false source in
          let fp_c, _, _ = sched_run ~policy ~engine ~compiled:true source in
          if fp_i <> fp_c then
            QCheck.Test.fail_reportf "preempt tiers diverged under %s" en
          else
            let output (o, _, _, _, _, _) = o in
            if output fp_i <> output fp_y then
              QCheck.Test.fail_reportf
                "preempt changed the output under %s" en
            else true)
        engines)

(* ---- unit tests ---- *)

let test_policy_strings () =
  let roundtrip p =
    match Fpc_sched.Sched.(policy_of_string (policy_to_string p)) with
    | Ok p' -> Alcotest.(check string) "round trip"
        (Fpc_sched.Sched.policy_to_string p)
        (Fpc_sched.Sched.policy_to_string p')
    | Error m -> Alcotest.fail m
  in
  roundtrip Fpc_sched.Sched.Run_to_yield;
  roundtrip (Fpc_sched.Sched.Preempt { quantum = 250 });
  (match Fpc_sched.Sched.policy_of_string "preempt" with
  | Ok (Fpc_sched.Sched.Preempt { quantum = 1000 }) -> ()
  | _ -> Alcotest.fail "bare preempt should use the default quantum");
  match Fpc_sched.Sched.policy_of_string "fifo" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy must be rejected"

(* Fuel exhaustion is a resumable boundary: a starved run is left
   Trapped Step_limit, and handing the same machine back to Sched.run
   with more fuel finishes the workload with the one-shot answer. *)
let test_fuel_exhaustion_resumes () =
  let source = source_of ~seed:7 ~total:16 ~window:4 in
  let engine = Fpc_core.Engine.i2 in
  let one_shot, _, _ = sched_run ~engine ~compiled:false source in
  let image = Fpc_mesa.Image.clone (image_for ~engine source) in
  let st =
    Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  let step n st = Fpc_interp.Interp.run ~max_steps:n st in
  ignore (Fpc_sched.Sched.run ~step ~fuel:300 st);
  (match st.Fpc_core.State.status with
  | Fpc_core.State.Trapped Fpc_core.State.Step_limit -> ()
  | _ -> Alcotest.fail "starved run should be left at the fuel boundary");
  ignore (Fpc_sched.Sched.run ~step ~fuel:5_000_000 st);
  Alcotest.(check bool) "resumed run matches the one-shot run" true
    (fingerprint st = one_shot)

(* The report is pure simulated meters; spot-check its arithmetic and the
   stable rendering the cram test pins. *)
let test_report_shape () =
  let source = source_of ~seed:3 ~total:12 ~window:3 in
  let engine = Fpc_core.Engine.i2 in
  let image = Fpc_mesa.Image.clone (image_for ~engine source) in
  let st =
    Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
      ~args:[] ()
  in
  let step n st = Fpc_interp.Interp.run ~max_steps:n st in
  let stats = Fpc_sched.Sched.run ~step ~fuel:5_000_000 st in
  let r = Fpc_sched.Sched.report ~lifo_reserved:1000 ~stats st in
  Alcotest.(check int) "every session forked" 12 r.Fpc_sched.Sched.forked;
  Alcotest.(check int) "every process retired (boot included)" 13
    r.Fpc_sched.Sched.ended;
  Alcotest.(check bool) "peak within the window (+driver)" true
    (r.Fpc_sched.Sched.peak_live <= 4);
  Alcotest.(check bool) "footprint ratio computed" true
    (r.Fpc_sched.Sched.footprint_ratio > 0.0);
  Alcotest.(check int) "four stable report lines" 4
    (List.length (Fpc_sched.Sched.report_lines r))

let () =
  Alcotest.run "sched"
    [
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest determinism_prop;
          QCheck_alcotest.to_alcotest preempt_determinism_prop;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "policy strings" `Quick test_policy_strings;
          Alcotest.test_case "fuel exhaustion resumes" `Quick
            test_fuel_exhaustion_resumes;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
    ]
