type entry = { image : Fpc_mesa.Image.t; mutable last_used : int }

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Image_cache.create: capacity must be positive";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.mutex;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let convention_tag (c : Fpc_compiler.Convention.t) =
  let linkage =
    match c.linkage with
    | Fpc_mesa.Image.External -> "ext"
    | Fpc_mesa.Image.Direct -> "dir"
    | Fpc_mesa.Image.Short_direct -> "short"
  in
  if c.args_in_place then linkage ^ "+aip" else linkage

(* The tier tag keeps per-tier pristine entries apart: the compiled
   tier's translation attaches to the image's shared directory, so
   tagging the key guarantees an interp-tier entry (and every arena slot
   keyed by it) never aliases a translated one.  The devirt tag does the
   same for the devirtualized variant: its code bytes differ (rewritten
   call sites), so it must never share an entry — or an arena slot, whose
   replay tape records operand patches against these exact bytes — with
   the late-bound baseline. *)
let key_of ~convention ~source ~tier ~devirt =
  Digest.to_hex (Digest.string source)
  ^ "/" ^ convention_tag convention
  ^ (if devirt then "+dv" else "")
  ^ (if tier = "" then "" else "@" ^ tier)

(* Under the mutex. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, oldest) when oldest <= e.last_used -> ()
      | _ -> victim := Some (key, e.last_used))
    t.table;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1
  | None -> ()

let lookup t key =
  Mutex.lock t.mutex;
  let found =
    match Hashtbl.find_opt t.table key with
    | Some e ->
      t.tick <- t.tick + 1;
      e.last_used <- t.tick;
      t.hits <- t.hits + 1;
      Some e.image
    | None ->
      t.misses <- t.misses + 1;
      None
  in
  Mutex.unlock t.mutex;
  found

(* Keeps an already-present entry (a racing domain beat us to it) so a hot
   image's recency is preserved; returns the image to clone from. *)
let insert t key image =
  Mutex.lock t.mutex;
  let kept =
    match Hashtbl.find_opt t.table key with
    | Some e ->
      t.tick <- t.tick + 1;
      e.last_used <- t.tick;
      e.image
    | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.table key { image; last_used = t.tick };
      image
  in
  Mutex.unlock t.mutex;
  kept

let find_pristine ?(tier = "") ?(devirt = false) t ~convention ~source =
  let key = key_of ~convention ~source ~tier ~devirt in
  match lookup t key with
  | Some image -> Ok (image, key, true, 0.0)
  | None -> (
    let t0 = Unix.gettimeofday () in
    match Fpc_compiler.Compile.image ~convention ~devirt source with
    | Error m -> Error m
    | Ok image ->
      let dt = Unix.gettimeofday () -. t0 in
      let image = insert t key image in
      Ok (image, key, false, dt))

let find_or_compile ?devirt t ~convention ~source =
  match find_pristine ?devirt t ~convention ~source with
  | Error m -> Error m
  | Ok (image, _key, hit, dt) -> Ok (Fpc_mesa.Image.clone image, hit, dt)
