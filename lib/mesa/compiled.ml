type proc = {
  p_name : string;
  p_body : bytes;
  p_locals_words : int;
  p_nargs : int;
  p_dfc_fixups : (int * int) list;
  p_lpd_fixups : (int * int) list;
  p_efc_sites : (int * int) list;
      (** [(pos, lv_index)]: EXTERNALCALL sites emitted in the 4-byte
          padded shape, eligible for a link-time devirtualizing rewrite *)
}

type t = {
  m_name : string;
  m_globals_words : int;
  m_global_init : (int * int) list;
  m_imports : (string * string) array;
  m_procs : proc list;
}

let max_entry_points = 128

let proc_index t name =
  let rec find i = function
    | [] -> raise Not_found
    | p :: _ when String.equal p.p_name name -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 t.m_procs

let validate t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error (t.m_name ^ ": " ^ s)) fmt in
  let* () =
    if List.length t.m_procs = 0 then err "module has no procedures" else Ok ()
  in
  let* () =
    if List.length t.m_procs > max_entry_points then
      err "more than %d entry points" max_entry_points
    else Ok ()
  in
  let* () =
    if Array.length t.m_imports > 256 then err "more than 256 imports" else Ok ()
  in
  let names = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        if Hashtbl.mem names p.p_name then err "duplicate procedure %s" p.p_name
        else begin
          Hashtbl.add names p.p_name ();
          Ok ()
        end)
      (Ok ()) t.m_procs
  in
  let* () =
    List.fold_left
      (fun acc (i, v) ->
        let* () = acc in
        if i < 0 || i >= t.m_globals_words then err "global init index %d out of range" i
        else if v < 0 || v > 0xFFFF then err "global init value %d not a word" v
        else Ok ())
      (Ok ()) t.m_global_init
  in
  List.fold_left
    (fun acc p ->
      let check_fixups acc ~width fixups =
        List.fold_left
          (fun acc (pos, lv) ->
            let* () = acc in
            if pos < 0 || pos + width > Bytes.length p.p_body then
              err "%s: fixup at %d outside body" p.p_name pos
            else if lv < 0 || lv >= Array.length t.m_imports then
              err "%s: fixup names LV index %d" p.p_name lv
            else Ok ())
          acc fixups
      in
      let acc = check_fixups acc ~width:4 p.p_dfc_fixups in
      let acc = check_fixups acc ~width:3 p.p_lpd_fixups in
      check_fixups acc ~width:4 p.p_efc_sites)
    (Ok ()) t.m_procs
