(* Tests for the workload machinery: distributions, synthetic traces,
   replayers, the baseline stack machine. *)

let qtest = QCheck_alcotest.to_alcotest

let test_frame_distribution_p95 () =
  let h = Fpc_workload.Distributions.sample_histogram ~seed:1 ~samples:50_000 in
  let frac =
    Fpc_util.Histogram.fraction_le h Fpc_workload.Distributions.paper_frame_p95_words
  in
  Alcotest.(check bool) "95% below 80 bytes (+-2%)" true (frac > 0.93 && frac < 0.97);
  Alcotest.(check bool) "has a large tail" true (Fpc_util.Histogram.max_value h > 200)

let test_trace_depth_bounds () =
  let profile = { Fpc_workload.Synthetic.default_profile with max_depth = 12 } in
  let trace = Fpc_workload.Synthetic.generate ~seed:2 ~profile ~length:20_000 () in
  let depth = ref 1 in
  List.iter
    (fun (e : Fpc_workload.Synthetic.event) ->
      (match e with
      | Call _ -> incr depth
      | Return -> decr depth
      | Coroutine_switch | Process_switch -> ());
      Alcotest.(check bool) "depth in bounds" true (!depth >= 0 && !depth <= 12))
    trace

let test_trace_deterministic () =
  let a = Fpc_workload.Synthetic.generate ~seed:3 ~length:1000 () in
  let b = Fpc_workload.Synthetic.generate ~seed:3 ~length:1000 () in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let c = Fpc_workload.Synthetic.generate ~seed:4 ~length:1000 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_trace_rates () =
  let profile =
    { Fpc_workload.Synthetic.default_profile with coroutine_rate = 0.1 }
  in
  let trace = Fpc_workload.Synthetic.generate ~seed:5 ~profile ~length:50_000 () in
  let co =
    List.length
      (List.filter (fun e -> e = Fpc_workload.Synthetic.Coroutine_switch) trace)
  in
  let rate = float_of_int co /. 50_000.0 in
  (* Leaf call/return pairs consume two slots per draw, diluting the
     nominal per-draw rate by roughly 1/(1+leaf_rate). *)
  Alcotest.(check bool) "coroutine rate in the diluted band" true
    (rate > 0.05 && rate < 0.12)

let test_replay_banks_monotone () =
  (* More banks never makes the over/underflow rate worse. *)
  let trace = Fpc_workload.Synthetic.generate ~seed:6 ~length:30_000 () in
  let rate banks = (Fpc_workload.Replay.replay_banks ~banks trace).bk_rate in
  let r2 = rate 2 and r4 = rate 4 and r8 = rate 8 in
  Alcotest.(check bool) "2 >= 4 >= 8" true (r2 >= r4 && r4 >= r8);
  Alcotest.(check bool) "8 banks under 1%" true (r8 < 0.01)

let test_replay_return_stack_perfect_when_deep () =
  (* With a stack deeper than the trace ever goes, every return is fast. *)
  let profile = { Fpc_workload.Synthetic.default_profile with max_depth = 10 } in
  let trace = Fpc_workload.Synthetic.generate ~seed:7 ~profile ~length:10_000 () in
  let r = Fpc_workload.Replay.replay_return_stack ~depth:16 trace in
  Alcotest.(check int) "no slow returns" 0 r.rs_slow_returns;
  Alcotest.(check (float 0.0001)) "fraction 1" 1.0 r.rs_fast_fraction

let test_replay_return_stack_coroutines_flush () =
  let profile =
    { Fpc_workload.Synthetic.default_profile with coroutine_rate = 0.05 }
  in
  let trace = Fpc_workload.Synthetic.generate ~seed:8 ~profile ~length:10_000 () in
  let r = Fpc_workload.Replay.replay_return_stack ~depth:16 trace in
  Alcotest.(check bool) "flushes happen" true (r.rs_flushes > 0);
  Alcotest.(check bool) "fast fraction degrades" true (r.rs_fast_fraction < 1.0)

let test_replay_allocator_refs () =
  let trace = Fpc_workload.Synthetic.generate ~seed:9 ~length:30_000 () in
  let r = Fpc_workload.Replay.replay_allocator trace in
  Alcotest.(check bool) "alloc ~3 refs" true
    (r.al_mem_refs_per_alloc >= 3.0 && r.al_mem_refs_per_alloc < 3.3);
  Alcotest.(check (float 0.001)) "free exactly 4" 4.0 r.al_mem_refs_per_free;
  Alcotest.(check bool) "fragmentation near 10%" true
    (r.al_fragmentation > 0.02 && r.al_fragmentation < 0.2)

let test_baseline_costs () =
  let open Fpc_baseline in
  let cost = Fpc_machine.Cost.create () in
  let mem = Fpc_machine.Memory.create ~cost ~size_words:4096 () in
  let sm = Stack_machine.create ~mem ~stack_base:0 ~stack_limit:4096 () in
  Stack_machine.call sm ~nargs:2 ~locals_words:5;
  let cfg = Stack_machine.default_config in
  Alcotest.(check int) "writes = args + linkage + saved"
    (2 + cfg.linkage_words + cfg.saved_registers)
    (Fpc_machine.Cost.mem_writes cost);
  Alcotest.(check int) "depth" 1 (Stack_machine.depth sm);
  Stack_machine.return_ sm;
  Alcotest.(check int) "restores read back"
    (cfg.linkage_words + cfg.saved_registers)
    (Fpc_machine.Cost.mem_reads cost);
  Alcotest.(check int) "sp restored" 0 (Stack_machine.sp sm)

let test_baseline_exhaustion () =
  let mem = Fpc_machine.Memory.create ~size_words:256 () in
  let sm = Fpc_baseline.Stack_machine.create ~mem ~stack_base:0 ~stack_limit:100 () in
  Alcotest.(check bool) "raises" true
    (match
       for _ = 1 to 50 do
         Fpc_baseline.Stack_machine.call sm ~nargs:1 ~locals_words:4
       done
     with
    | exception Fpc_baseline.Stack_machine.Stack_exhausted -> true
    | () -> false)

let test_suite_programs_compile_everywhere () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun conv ->
          match Fpc_compiler.Compile.image ~convention:conv src with
          | Ok _ -> ()
          | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" name m))
        [
          Fpc_compiler.Convention.external_;
          Fpc_compiler.Convention.direct;
          Fpc_compiler.Convention.short_direct;
          Fpc_compiler.Convention.banked ();
        ])
    Fpc_workload.Programs.all

let prop_depth_profile_consistent =
  QCheck.Test.make ~count:20 ~name:"trace: depth profile max respects bound"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let profile = { Fpc_workload.Synthetic.default_profile with max_depth = 20 } in
      let trace = Fpc_workload.Synthetic.generate ~seed ~profile ~length:5_000 () in
      Fpc_util.Histogram.max_value (Fpc_workload.Synthetic.depth_profile trace) <= 20)

(* OCaml reference implementations for the newer suite programs, checked
   against the machine on every engine. *)

let ref_hanoi () =
  let moves = ref 0 in
  let rec solve n = if n > 0 then begin solve (n - 1); incr moves; solve (n - 1) end in
  solve 7;
  [ !moves ]

let ref_bsearch () =
  let a = Array.init 64 (fun i -> (i * 3) + 1) in
  let out = ref [] and probes = ref 0 in
  let target = ref 0 in
  while !target < 192 do
    let lo = ref 0 and hi = ref 63 and found = ref false in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      incr probes;
      if a.(mid) = !target then begin
        found := true;
        lo := !hi + 1
      end
      else if a.(mid) < !target then lo := mid + 1
      else hi := mid - 1
    done;
    if !found then out := !target :: !out;
    target := !target + 37
  done;
  List.rev (!probes :: !out)

let ref_matmul () =
  let a = Array.init 36 (fun i -> i mod 7) in
  let b = Array.init 36 (fun i -> i * 5 mod 11) in
  let c = Array.make 36 0 in
  for r = 0 to 5 do
    for col = 0 to 5 do
      let acc = ref 0 in
      for k = 0 to 5 do
        acc := !acc + (a.((r * 6) + k) * b.((k * 6) + col))
      done;
      c.((r * 6) + col) <- !acc
    done
  done;
  let sum = Array.fold_left (fun s v -> (s + v) mod 10000) 0 c in
  [ sum; c.(0); c.(35) ]

let ref_knapsack () =
  let weight = Array.init 8 (fun i -> (i * 7 mod 9) + 1) in
  let value = Array.init 8 (fun i -> (i * 11 mod 13) + 2) in
  let rec best i cap =
    if i = 8 then 0
    else
      let skip = best (i + 1) cap in
      if weight.(i) > cap then skip
      else max skip (value.(i) + best (i + 1) (cap - weight.(i)))
  in
  [ best 0 15 ]

let test_new_programs_match_ocaml () =
  List.iter
    (fun (program, expected) ->
      List.iter
        (fun engine ->
          let convention = Fpc_compiler.Convention.for_engine engine in
          let src = Fpc_workload.Programs.find program in
          match Fpc_compiler.Compile.image ~convention src with
          | Error m -> Alcotest.fail m
          | Ok image ->
            let st =
              Fpc_interp.Interp.run_program ~image ~engine ~instance:"Main"
                ~proc:"main" ~args:[] ()
            in
            Alcotest.(check (list int)) program expected (Fpc_core.State.output st))
        [ Fpc_core.Engine.i1; Fpc_core.Engine.i2; Fpc_core.Engine.i3 ();
          Fpc_core.Engine.i4 () ])
    [
      ("hanoi", ref_hanoi ());
      ("bsearch", ref_bsearch ());
      ("matmul", ref_matmul ());
      ("knapsack", ref_knapsack ());
    ]

(* The predecode table must be an exact mirror of live decoding: for
   every byte position of every suite image, the table and
   [Opcode.decode] agree on (op, len), and positions that do not decode
   (the table's fallback contract) are exactly those where live decoding
   traps.  Clones must share the source image's table, not rebuild it. *)
let test_predecode_matches_live_decode () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (cname, conv) ->
          match Fpc_compiler.Compile.image ~convention:conv src with
          | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" name m)
          | Ok image ->
            let pd = Fpc_mesa.Image.predecode image in
            let lo = Fpc_isa.Predecode.base pd
            and hi = Fpc_isa.Predecode.limit pd in
            if hi <= lo then
              Alcotest.failf "%s/%s: empty predecode range" name cname;
            let fetch pc =
              Fpc_machine.Memory.peek_code_byte image.Fpc_mesa.Image.mem
                ~code_base:0 ~pc
            in
            for pc = lo to hi - 1 do
              let table_len = Fpc_isa.Predecode.len_at pd pc in
              match Fpc_isa.Opcode.decode ~fetch ~pc with
              | exception Invalid_argument _ ->
                if table_len <> 0 then
                  Alcotest.failf
                    "%s/%s pc=%d: live decode traps but table says len=%d"
                    name cname pc table_len
              | op, len ->
                if table_len <> len then
                  Alcotest.failf "%s/%s pc=%d: len %d (table) <> %d (live)"
                    name cname pc table_len len;
                if Fpc_isa.Predecode.op_at pd pc <> op then
                  Alcotest.failf "%s/%s pc=%d: table op disagrees with live"
                    name cname pc
            done;
            (* outside the covered range the table always defers *)
            Alcotest.(check int) "below range" 0
              (Fpc_isa.Predecode.len_at pd (lo - 1));
            Alcotest.(check int) "above range" 0
              (Fpc_isa.Predecode.len_at pd hi);
            (* a clone shares the table instead of rebuilding it *)
            let clone = Fpc_mesa.Image.clone image in
            Alcotest.(check bool) "clone shares the table" true
              (Fpc_mesa.Image.predecode clone == pd))
        [
          ("external", Fpc_compiler.Convention.external_);
          ("direct", Fpc_compiler.Convention.direct);
          ("short_direct", Fpc_compiler.Convention.short_direct);
          ("banked", Fpc_compiler.Convention.banked ());
        ])
    Fpc_workload.Programs.all

let () =
  Alcotest.run "workload"
    [
      ( "distributions",
        [ Alcotest.test_case "p95 at 80 bytes" `Quick test_frame_distribution_p95 ] );
      ( "synthetic",
        [
          Alcotest.test_case "depth bounds" `Quick test_trace_depth_bounds;
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "event rates" `Quick test_trace_rates;
          qtest prop_depth_profile_consistent;
        ] );
      ( "replay",
        [
          Alcotest.test_case "banks monotone" `Quick test_replay_banks_monotone;
          Alcotest.test_case "deep return stack perfect" `Quick
            test_replay_return_stack_perfect_when_deep;
          Alcotest.test_case "coroutines flush" `Quick
            test_replay_return_stack_coroutines_flush;
          Alcotest.test_case "allocator refs" `Quick test_replay_allocator_refs;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "call/return costs" `Quick test_baseline_costs;
          Alcotest.test_case "exhaustion" `Quick test_baseline_exhaustion;
        ] );
      ( "programs",
        [
          Alcotest.test_case "compile under all conventions" `Quick
            test_suite_programs_compile_everywhere;
          Alcotest.test_case "new programs match OCaml references" `Quick
            test_new_programs_match_ocaml;
          Alcotest.test_case "predecode mirrors live decode" `Quick
            test_predecode_matches_live_decode;
        ] );
    ]
