lib/mesa/compiled.ml: Array Bytes Hashtbl List Printf Result String
